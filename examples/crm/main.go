// CRM analytics: the paper's first use case (§2.1.1). Call-center
// transcripts (unstructured) are ingested next to customer master data
// (structured). Background annotators extract entities and sentiment;
// discovery links transcripts to profiles through resolved person
// entities; faceted search then answers "which enterprise customers are
// unhappy, and about which products?" — a question neither a DBMS nor a
// search engine answers alone.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"impliance"
	"impliance/internal/workload"
)

func main() {
	app, err := impliance.Open(impliance.Config{DataNodes: 4, GridNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	gen := workload.New(42)
	profiles := gen.CustomerProfiles(50)
	transcripts := gen.CallTranscripts(300, profiles, 0.9)

	// One batch: replica traffic is grouped per target node.
	items := make([]impliance.Item, 0, len(profiles)+len(transcripts))
	for _, it := range append(profiles, transcripts...) {
		items = append(items, impliance.Item{Body: it.Body, MediaType: it.MediaType, Source: it.Source})
	}
	if _, err := app.IngestBatchContext(ctx, items); err != nil {
		log.Fatal(err)
	}
	app.Drain()

	// Inter-document discovery: resolve entities, build join edges.
	rep, err := app.RunDiscoveryContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovery: %d mentions -> %d entities, %d edges, %d schema families\n",
		rep.Mentions, rep.EntityClusters, rep.EntityEdges, rep.SchemaFamilies)

	// Faceted search: negative calls, faceted by sentiment label via the
	// sentiment annotations exposed as a SQL view.
	res, err := app.ExecSQLContext(ctx,
		"SELECT label, count(*) FROM sentiments GROUP BY label ORDER BY label")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sentiment over all calls:")
	for _, row := range res.Rows {
		fmt.Printf("  %-8s %s\n", row[0].StringVal(), row[1])
	}

	// Keyword search enriched by annotations: "angry refund" surfaces the
	// unhappy transcripts.
	hits, err := app.SearchContext(ctx, "angry refund", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top unhappy calls (%d shown):\n", len(hits))
	for _, h := range hits {
		text := h.Docs[0].First("/text").StringVal()
		if len(text) > 70 {
			text = text[:70] + "..."
		}
		fmt.Printf("  %.2f  %s\n", h.Score, text)
	}

	// Connection query: how is this unhappy call connected to a customer
	// profile? (Entity edges discovered above answer it.)
	if len(hits) > 0 {
		call := hits[0].Docs[0]
		related := app.RelatedToContext(ctx, call.ID, 2)
		for _, id := range related {
			d, err := app.GetContext(ctx, id)
			if err != nil || !d.Root.Has("customer_id") {
				continue
			}
			path := app.ConnectContext(ctx, call.ID, id, 3)
			fmt.Printf("call %s connects to customer %s (%s) via %d hop(s)\n",
				call.ID, d.First("/customer_id").StringVal(), d.First("/name").StringVal(), len(path))
			break
		}
	}
}
