// Legal compliance / e-discovery: the paper's third use case (§2.1.3):
// "the court-ordered discovery process often requires each litigant to
// locate and preserve broad classes of information... the relevance of
// data may be due to indirect contractual relationships... and may
// require determining the transitive closure of relationships extracted
// from the content."
//
// A corporate mail archive is ingested; discovery resolves the people and
// partners named in it; a litigation hold then collects the transitive
// closure of everything connected to a suspect contract and preserves it
// with a regulatory-grade replicated update.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"impliance"
	"impliance/internal/workload"
)

func main() {
	app, err := impliance.Open(impliance.Config{DataNodes: 4, GridNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	gen := workload.New(99)
	mails := gen.Emails(500, 0.6)
	items := make([]impliance.Item, 0, len(mails))
	for _, m := range mails {
		items = append(items, impliance.Item{Body: m.Body, MediaType: m.MediaType, Source: m.Source})
	}
	if _, err := app.IngestBatchContext(ctx, items); err != nil {
		log.Fatal(err)
	}
	app.Drain()
	rep, err := app.RunDiscoveryContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovery over %d mails: %d entities, %d edges\n",
		len(mails), rep.EntityClusters, rep.JoinEdgesTotal)

	// Find messages about a partner's contracts.
	hits, err := app.SearchContext(ctx, "acme corp contract", 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("responsive messages for 'acme corp contract': %d\n", len(hits))
	if len(hits) == 0 {
		return
	}

	// Litigation hold: transitive closure around the top hit — reply
	// chains and shared people pull in indirectly related mail.
	seed := hits[0].Docs[0]
	closure := app.RelatedToContext(ctx, seed.ID, 3)
	fmt.Printf("transitive closure around %s (3 hops): %d documents\n", seed.ID, len(closure))

	// Preserve: stamp every related document with a hold marker as a NEW
	// VERSION (the paper's §4 versioning — originals stay immutable and
	// auditable).
	held := 0
	for _, id := range closure {
		d, err := app.GetContext(ctx, id)
		if err != nil {
			continue
		}
		if _, err := app.UpdateContext(ctx, id, d.Root.Set("legal_hold", impliance.String("matter-2026-117"))); err != nil {
			continue
		}
		held++
	}
	app.Drain()
	fmt.Printf("litigation hold applied to %d documents (as new versions)\n", held)

	// Audit: the pre-hold version of the seed is still readable.
	v1, err := app.GetVersionContext(ctx, impliance.VersionKey{Doc: seed.ID, Ver: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original (v1) of %s still readable: legal_hold present = %v\n",
		seed.ID, v1.Root.Has("legal_hold"))
	latest, _ := app.GetContext(ctx, seed.ID)
	fmt.Printf("latest (v%d) carries hold: %s\n",
		latest.Version, latest.First("/legal_hold").StringVal())

	// Continuous compliance: the hold is not a one-shot query. A live
	// tail (continuous query) watches the archive for NEW mail naming
	// the partner, so matter staff are alerted the moment responsive
	// material arrives — no re-running discovery, no polling.
	alerts, err := app.Tail(
		impliance.And(impliance.SourceIs("mail-archive"), impliance.Contains("", "acme")),
		impliance.WithTailPolicy(impliance.TailPolicyBlock))
	if err != nil {
		log.Fatal(err)
	}
	defer alerts.Close()
	late := gen.Emails(40, 0.6)
	for _, m := range late {
		if _, err := app.Ingest(impliance.Item{Body: m.Body, MediaType: m.MediaType, Source: m.Source}); err != nil {
			log.Fatal(err)
		}
	}
	alerted := 0
	for {
		evCtx, evCancel := context.WithTimeout(ctx, 2*time.Second)
		ev, err := alerts.Next(evCtx)
		evCancel()
		if err != nil {
			break // queue drained: the late batch is fully classified
		}
		alerted++
		if alerted <= 3 {
			fmt.Printf("live alert: new responsive mail %s (%s) subject %q\n",
				ev.Doc.ID, ev.Kind, ev.Doc.First("/subject").StringVal())
		}
	}
	fmt.Printf("continuous query flagged %d of %d late-arriving mails for the matter\n",
		alerted, len(late))

	// How is the seed connected to the last closure member? Show the path.
	if len(closure) > 1 {
		other := closure[len(closure)-1]
		if other == seed.ID && len(closure) > 1 {
			other = closure[0]
		}
		path := app.ConnectContext(ctx, seed.ID, other, 4)
		fmt.Printf("connection %s -> %s:\n", seed.ID, other)
		for _, e := range path {
			fmt.Printf("  %s -[%s]-> %s\n", e.From, e.Label, e.To)
		}
	}
}
