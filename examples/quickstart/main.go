// Quickstart: boot an appliance, throw heterogeneous data in with no
// schema or preparation (the paper's "stewing pot", §2.2), and retrieve
// it through keyword search, a streaming structured query, and SQL.
// Every call is bounded by a context — cancel it and the appliance
// abandons the node fan-out mid-flight.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"impliance"
)

func main() {
	app, err := impliance.Open(impliance.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	// One context bounds the whole session; per-call options refine it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Ingest three formats with zero preparation.
	if _, err := app.IngestBytesContext(ctx, "note.txt",
		[]byte("Grace Hopper reported the WidgetPro in Boston works great, excellent build")); err != nil {
		log.Fatal(err)
	}
	if _, err := app.IngestBytesContext(ctx, "order.json",
		[]byte(`{"customer": "CU-00001", "product": "WidgetPro", "total": 199.99}`)); err != nil {
		log.Fatal(err)
	}
	if _, err := app.IngestBytesContext(ctx, "claim.xml",
		[]byte(`<claim id="CL-7"><patient>Mary Codd</patient><amount>1200</amount></claim>`)); err != nil {
		log.Fatal(err)
	}
	app.Drain() // let background indexing and annotation finish

	// 1. Keyword search spans every format.
	hits, err := app.SearchContext(ctx, "widgetpro", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keyword 'widgetpro': %d hits\n", len(hits))
	for _, h := range hits {
		fmt.Printf("  %-8s score=%.2f  %s\n", h.Docs[0].ID, h.Score, h.Docs[0].MediaType)
	}

	// 2. Structured query as a stream: rows arrive as partition partials
	// do, and closing the cursor cancels any remaining fan-out.
	cur, err := app.RunStream(ctx, impliance.Query{
		Filter: impliance.Cmp("/claim/amount", impliance.OpGt, impliance.Int(1000)),
	})
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for cur.Next() {
		n++
		fmt.Printf("claim over $1000: %s\n", cur.Row().Docs[0].ID)
	}
	if err := cur.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d claims (plan: %s)\n", n, cur.Plan())

	// 3. SQL over a view (paper Figure 2), with a per-call deadline.
	app.RegisterView("orders", impliance.Exists("/customer"), map[string]string{
		"customer": "/customer",
		"product":  "/product",
		"total":    "/total",
	})
	sqlRes, err := app.ExecSQLContext(ctx,
		"SELECT customer, total FROM orders WHERE total > 100",
		impliance.WithDeadline(5*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range sqlRes.Rows {
		fmt.Printf("SQL row: customer=%s total=%s\n", row[0], row[1])
	}

	// 4. Annotations were derived automatically in the background.
	m := app.MetricsSnapshotContext(ctx)
	fmt.Printf("documents=%d annotations=%d joinEdges=%d\n", m.Documents, m.Annotations, m.JoinEdges)
}
