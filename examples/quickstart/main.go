// Quickstart: boot an appliance, throw heterogeneous data in with no
// schema or preparation (the paper's "stewing pot", §2.2), and retrieve
// it through keyword search, structured query, and SQL.
package main

import (
	"fmt"
	"log"

	"impliance"
)

func main() {
	app, err := impliance.Open(impliance.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	// Ingest three formats with zero preparation.
	if _, err := app.IngestBytes("note.txt",
		[]byte("Grace Hopper reported the WidgetPro in Boston works great, excellent build")); err != nil {
		log.Fatal(err)
	}
	if _, err := app.IngestBytes("order.json",
		[]byte(`{"customer": "CU-00001", "product": "WidgetPro", "total": 199.99}`)); err != nil {
		log.Fatal(err)
	}
	if _, err := app.IngestBytes("claim.xml",
		[]byte(`<claim id="CL-7"><patient>Mary Codd</patient><amount>1200</amount></claim>`)); err != nil {
		log.Fatal(err)
	}
	app.Drain() // let background indexing and annotation finish

	// 1. Keyword search spans every format.
	hits, err := app.Search("widgetpro", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keyword 'widgetpro': %d hits\n", len(hits))
	for _, h := range hits {
		fmt.Printf("  %-8s score=%.2f  %s\n", h.Docs[0].ID, h.Score, h.Docs[0].MediaType)
	}

	// 2. Structured query with a pushed-down predicate.
	res, err := app.Run(impliance.Query{
		Filter: impliance.Cmp("/claim/amount", impliance.OpGt, impliance.Int(1000)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claims over $1000: %d (plan: %s)\n", len(res.Rows), res.Plan)

	// 3. SQL over a view (paper Figure 2).
	app.RegisterView("orders", impliance.Exists("/customer"), map[string]string{
		"customer": "/customer",
		"product":  "/product",
		"total":    "/total",
	})
	sqlRes, err := app.ExecSQL("SELECT customer, total FROM orders WHERE total > 100")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range sqlRes.Rows {
		fmt.Printf("SQL row: customer=%s total=%s\n", row[0], row[1])
	}

	// 4. Annotations were derived automatically in the background.
	m := app.MetricsSnapshot()
	fmt.Printf("documents=%d annotations=%d joinEdges=%d\n", m.Documents, m.Annotations, m.JoinEdges)
}
