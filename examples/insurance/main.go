// Insurance fraud screening: the paper's content-and-data integration use
// case (§2.1.2): "insurance companies looking for fraudulent claims need
// to find the names of procedures or pharmaceuticals within the text of
// claim forms... and relate that to known, structured information about
// the patient, the provider, the procedure."
//
// Claims arrive as XML with free-text descriptions. The appliance indexes
// both, and SQL over a claims view combines structured predicates with
// CONTAINS over the narrative — one query across what would normally be a
// content manager plus a DBMS.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"impliance"
	"impliance/internal/workload"
)

func main() {
	app, err := impliance.Open(impliance.Config{DataNodes: 4, GridNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	gen := workload.New(7)
	claims := gen.InsuranceClaims(400, 0.15)
	items := make([]impliance.Item, 0, len(claims))
	for _, c := range claims {
		items = append(items, impliance.Item{Body: c.Body, MediaType: c.MediaType, Source: c.Source})
	}
	if _, err := app.IngestBatchContext(ctx, items); err != nil {
		log.Fatal(err)
	}
	app.Drain()

	app.RegisterView("claims", impliance.SourceIs("claims"), map[string]string{
		"id":        "/claim/@id",
		"patient":   "/claim/patient",
		"provider":  "/claim/provider",
		"procedure": "/claim/procedure",
		"amount":    "/claim/amount",
		"flagged":   "/claim/flagged",
		"narrative": "/claim/description",
	})

	// Structured + content in one query: expensive MRI claims whose
	// narrative mentions a same-day repeat (the synthetic fraud marker).
	res, err := app.ExecSQLContext(ctx,
		"SELECT id, patient, amount FROM claims "+
			"WHERE procedure = 'MRI scan' AND amount > 5000 AND narrative CONTAINS 'same day' "+
			"ORDER BY amount DESC LIMIT 10")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suspicious MRI claims: %d\n", len(res.Rows))
	for _, row := range res.Rows {
		fmt.Printf("  %-10s %-22s $%s\n", row[0], row[1], row[2])
	}

	// Aggregate view: cost per procedure, fraud-flag rate.
	agg, err := app.ExecSQLContext(ctx,
		"SELECT procedure, count(*), avg(amount), max(amount) FROM claims GROUP BY procedure ORDER BY procedure")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-procedure profile:")
	for _, row := range agg.Rows {
		fmt.Printf("  %-18s n=%-4s avg=$%-9.2f max=$%s\n",
			row[0].StringVal(), row[1], row[2].FloatVal(), row[3])
	}

	// Faceted exploration with per-bucket aggregates (paper §3.2.1's
	// "more sophisticated analytical capabilities than just counting").
	fr, err := app.FacetsContext(ctx, impliance.FacetRequest{
		Refine:     impliance.Cmp("/claim/flagged", impliance.OpEq, impliance.Bool(true)),
		Dimensions: []string{"/claim/procedure"},
		Aggregates: []impliance.AggSpec{{Kind: impliance.AggAvg, Path: "/claim/amount"}},
		FacetLimit: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flagged claims: %d; by procedure (avg amount per bucket):\n", fr.Total)
	for _, b := range fr.Dimensions[0].Buckets {
		avg := 0.0
		if len(b.Aggregates) > 0 {
			avg = b.Aggregates[0].FloatVal()
		}
		fmt.Printf("  %-18s %3d claims, avg $%.2f\n", b.Value.StringVal(), b.Count, avg)
	}
}
