package virt

import (
	"slices"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/fabric"
)

func TestRingSuccessorsDistinctAndStable(t *testing.T) {
	r := NewRing(0)
	for i := 1; i <= 5; i++ {
		r.Add(dataNode(i))
	}
	if r.Size() != 5 {
		t.Fatalf("size = %d", r.Size())
	}
	for key := uint64(0); key < 1000; key += 13 {
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("successors = %v", succ)
		}
		seen := map[fabric.NodeID]struct{}{}
		for _, n := range succ {
			if _, dup := seen[n]; dup {
				t.Fatalf("duplicate successor in %v", succ)
			}
			seen[n] = struct{}{}
		}
	}
	// n beyond membership returns everyone once.
	all := r.Successors(42, 10)
	if len(all) != 5 {
		t.Errorf("all successors = %v", all)
	}
	// Removing one node never changes the order among survivors.
	before := map[uint64][]fabric.NodeID{}
	for key := uint64(0); key < 500; key += 7 {
		before[key] = r.Successors(key, 5)
	}
	victim := dataNode(3)
	r.Remove(victim)
	for key, old := range before {
		var want []fabric.NodeID
		for _, n := range old {
			if n != victim {
				want = append(want, n)
			}
		}
		got := r.Successors(key, 4)
		if !slices.Equal(want, got) {
			t.Fatalf("key %d: survivors reordered %v -> %v", key, want, got)
		}
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(8)
	r.Add(dataNode(1))
	r.Add(dataNode(1))
	if r.Size() != 1 {
		t.Errorf("double add size = %d", r.Size())
	}
	if !r.Remove(dataNode(1)) {
		t.Error("remove existing failed")
	}
	if r.Remove(dataNode(1)) {
		t.Error("remove missing should be false")
	}
	if r.Successors(1, 1) != nil {
		t.Error("empty ring must have no successors")
	}
}

func TestPartitionMapBalanceAndIncrementalReassignment(t *testing.T) {
	pm := NewPartitionMap(0, 3, 0)
	nodes := []fabric.NodeID{dataNode(1), dataNode(2), dataNode(3), dataNode(4)}
	pm.SetNodes(nodes)
	if pm.Partitions() != DefaultPartitions {
		t.Fatalf("partitions = %d", pm.Partitions())
	}
	primaries := map[fabric.NodeID]int{}
	for p := 0; p < pm.Partitions(); p++ {
		owners := pm.Owners(p)
		if len(owners) != 3 {
			t.Fatalf("partition %d owners = %v", p, owners)
		}
		primaries[owners[0]]++
	}
	for _, n := range nodes {
		if primaries[n] == 0 {
			t.Errorf("node %v owns no partitions: %v", n, primaries)
		}
	}
	// Removing a node changes only the partitions it owned.
	dead := dataNode(2)
	var owned []int
	ownersBefore := make([][]fabric.NodeID, pm.Partitions())
	for p := 0; p < pm.Partitions(); p++ {
		ownersBefore[p] = pm.Owners(p)
		for _, n := range ownersBefore[p] {
			if n == dead {
				owned = append(owned, p)
				break
			}
		}
	}
	changed := pm.RemoveNode(dead)
	if len(changed) != len(owned) {
		t.Errorf("changed %d partitions, want exactly the dead node's %d", len(changed), len(owned))
	}
	changedSet := map[int]struct{}{}
	for _, p := range changed {
		changedSet[p] = struct{}{}
	}
	for _, p := range owned {
		if _, ok := changedSet[p]; !ok {
			t.Errorf("partition %d lost its owner but was not reassigned", p)
		}
	}
	// Surviving owners keep their relative order.
	for p := 0; p < pm.Partitions(); p++ {
		now := pm.Owners(p)
		var want []fabric.NodeID
		for _, n := range ownersBefore[p] {
			if n != dead {
				want = append(want, n)
			}
		}
		for i, n := range want {
			if now[i] != n {
				t.Fatalf("partition %d survivors reordered %v -> %v", p, ownersBefore[p], now)
			}
		}
	}
}

func TestPartitionOfIsVersionIndependentAndSpread(t *testing.T) {
	pm := NewPartitionMap(64, 2, 16)
	pm.SetNodes([]fabric.NodeID{dataNode(1), dataNode(2)})
	counts := make([]int, 64)
	for i := uint64(1); i <= 2000; i++ {
		id := docmodel.DocID{Origin: 7, Seq: i}
		p := pm.PartitionOf(id)
		if p < 0 || p >= 64 {
			t.Fatalf("partition out of range: %d", p)
		}
		counts[p]++
	}
	empty := 0
	for _, c := range counts {
		if c == 0 {
			empty++
		}
	}
	if empty > 0 {
		t.Errorf("%d/64 partitions empty over 2000 docs", empty)
	}
	if _, ok := pm.OwnerForKey(12345); !ok {
		t.Error("populated map must route any key")
	}
}
