package virt

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"impliance/internal/docmodel"
	"impliance/internal/fabric"
)

// ReplicaAccess is how the storage manager reaches node-local stores to
// repair replication. The core engine implements it over its data-node
// stores; tests implement it over maps.
type ReplicaAccess interface {
	// FetchVersions returns every stored version of the document held by
	// the node, oldest first.
	FetchVersions(node fabric.NodeID, id docmodel.DocID) ([]*docmodel.Document, error)
	// Install idempotently stores a replica version on the node.
	Install(node fabric.NodeID, doc *docmodel.Document) error
}

// StorageManager is the autonomic storage management of paper §3.4 ("Our
// goal is for Impliance to tune all these resources autonomically...").
// Placement is a consistent-hash partition map, not per-document state: a
// document's holders are hash(DocID) → partition → ring successors,
// truncated to the replication factor of its data class. The manager
// keeps only a doc → class registry; who holds what is derived from the
// partition map, so point operations route to at most RF nodes and a node
// failure reassigns only that node's partitions.
type StorageManager struct {
	policy ReplicationPolicy
	access ReplicaAccess
	pmap   *PartitionMap

	mu       sync.Mutex
	classes  map[docmodel.DocID]DataClass
	byPart   map[int][]docmodel.DocID    // partition → registered docs, registration order
	degraded map[docmodel.DocID]struct{} // repair could not restore full factor

	// Counters for the failure-recovery experiment (E13).
	Repaired   int // replicas re-created after failures
	Unrepaired int // documents left under-replicated (no source or target)
}

// NewStorageManager creates a manager with the given policy and access.
// Data-node membership is installed with SetDataNodes before use.
func NewStorageManager(policy ReplicationPolicy, access ReplicaAccess) *StorageManager {
	maxRF := 1
	for _, f := range policy.Factor {
		if f > maxRF {
			maxRF = f
		}
	}
	return &StorageManager{
		policy:   policy,
		access:   access,
		pmap:     NewPartitionMap(DefaultPartitions, maxRF, DefaultVnodes),
		classes:  map[docmodel.DocID]DataClass{},
		byPart:   map[int][]docmodel.DocID{},
		degraded: map[docmodel.DocID]struct{}{},
	}
}

// SetDataNodes installs the data-node membership the partition map
// routes over.
func (sm *StorageManager) SetDataNodes(nodes []fabric.NodeID) {
	sm.pmap.SetNodes(nodes)
}

// Partitions returns the partition count.
func (sm *StorageManager) Partitions() int { return sm.pmap.Partitions() }

// PartitionOf maps a document to its partition.
func (sm *StorageManager) PartitionOf(id docmodel.DocID) int { return sm.pmap.PartitionOf(id) }

// OwnersOf returns a partition's replica set in ring-successor order.
func (sm *StorageManager) OwnersOf(p int) []fabric.NodeID { return sm.pmap.Owners(p) }

// InRing reports whether the node is a current ring member.
func (sm *StorageManager) InRing(n fabric.NodeID) bool { return sm.pmap.Ring().Contains(n) }

// RingNodes lists current ring members.
func (sm *StorageManager) RingNodes() []fabric.NodeID { return sm.pmap.Ring().Nodes() }

// RouteKey returns the routing key the scheduler can use to co-locate
// document-keyed work with the document's partition.
func (sm *StorageManager) RouteKey(id docmodel.DocID) uint64 { return docKey(id) }

// OwnerForKey implements the scheduler's ring view: the primary data node
// for an arbitrary routing key.
func (sm *StorageManager) OwnerForKey(key uint64) (fabric.NodeID, bool) {
	return sm.pmap.OwnerForKey(key)
}

// PlaceDoc returns a new document's replica set — the first RF(class)
// owners of its partition, in ring-successor order, primary first. It is
// a pure placement query: callers Register the document once it is
// actually persisted, so a failed write never leaves a phantom
// registration behind.
func (sm *StorageManager) PlaceDoc(id docmodel.DocID, class DataClass) ([]fabric.NodeID, error) {
	holders := sm.holdersFor(id, class)
	if len(holders) == 0 {
		return nil, fmt.Errorf("virt: no data nodes for placement")
	}
	return holders, nil
}

// Register records an existing document's class (placement itself is
// derived from the partition map) and indexes it under its partition.
func (sm *StorageManager) Register(id docmodel.DocID, class DataClass) {
	p := sm.pmap.PartitionOf(id)
	sm.mu.Lock()
	if _, known := sm.classes[id]; !known {
		sm.byPart[p] = append(sm.byPart[p], id)
	}
	sm.classes[id] = class
	sm.mu.Unlock()
}

// Holders returns the nodes holding the document — the first RF(class)
// partition owners — or nil if the document was never registered.
func (sm *StorageManager) Holders(id docmodel.DocID) []fabric.NodeID {
	sm.mu.Lock()
	class, ok := sm.classes[id]
	sm.mu.Unlock()
	if !ok {
		return nil
	}
	return sm.holdersFor(id, class)
}

func (sm *StorageManager) holdersFor(id docmodel.DocID, class DataClass) []fabric.NodeID {
	owners := sm.pmap.Owners(sm.pmap.PartitionOf(id))
	rf := sm.policy.FactorFor(class)
	if rf > len(owners) {
		rf = len(owners)
	}
	return owners[:rf]
}

// AnsweringNode returns the partition's answering owner — the first owner
// the liveness probe accepts. Exactly one node answers scans, aggregates,
// and facet counts for each partition, so distributed results count every
// document once without per-document ownership state.
func (sm *StorageManager) AnsweringNode(p int, alive func(fabric.NodeID) bool) (fabric.NodeID, bool) {
	for _, n := range sm.pmap.Owners(p) {
		if alive(n) {
			return n, true
		}
	}
	return fabric.NodeID{}, false
}

// DocsInPartitions returns the registered documents of every partition
// the mask selects, in deterministic order. Scan-side handlers use it to
// visit only the documents a node answers for, skipping its replica
// copies without paying to evaluate them.
func (sm *StorageManager) DocsInPartitions(mask []bool) []docmodel.DocID {
	sm.mu.Lock()
	var out []docmodel.DocID
	for p, sel := range mask {
		if sel {
			out = append(out, sm.byPart[p]...)
		}
	}
	sm.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// DocsOn returns the registered documents whose replica set includes the
// node, in deterministic order. The walk is partition-driven: only
// partitions whose owner list contains the node are visited.
func (sm *StorageManager) DocsOn(node fabric.NodeID) []docmodel.DocID {
	var out []docmodel.DocID
	for p := 0; p < sm.pmap.Partitions(); p++ {
		pos := slices.Index(sm.pmap.Owners(p), node)
		if pos < 0 {
			continue
		}
		sm.mu.Lock()
		for _, id := range sm.byPart[p] {
			// The node holds the doc only if it sits inside the doc's
			// class-truncated owner prefix.
			if pos < sm.policy.FactorFor(sm.classes[id]) {
				out = append(out, id)
			}
		}
		sm.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// HandleNodeFailure removes a dead data node from the ring and repairs
// replication: every partition the node owned is reassigned to its ring
// successors (unrelated partitions keep their replica sets — the
// consistent-hashing guarantee), and each affected document is copied
// from a surviving holder onto the owners it gained. Derived-class
// documents whose only replica died are counted Unrepaired — by policy
// they are re-creatable, so losing them is acceptable (paper §3.4).
//
// Returns the number of replicas re-created.
func (sm *StorageManager) HandleNodeFailure(dead fabric.NodeID, alive []fabric.NodeID) (int, error) {
	aliveSet := map[fabric.NodeID]struct{}{}
	for _, n := range alive {
		aliveSet[n] = struct{}{}
	}

	// Snapshot the pre-failure owner sets of the partitions the dead node
	// participates in, then drop the node; only those partitions (and the
	// documents registered under them) need walking.
	oldOwners := map[int][]fabric.NodeID{}
	for p := 0; p < sm.pmap.Partitions(); p++ {
		if owners := sm.pmap.Owners(p); slices.Contains(owners, dead) {
			oldOwners[p] = owners
		}
	}
	sm.pmap.RemoveNode(dead)

	type docInfo struct {
		id    docmodel.DocID
		class DataClass
	}
	var docs []docInfo
	sm.mu.Lock()
	for p := range oldOwners {
		for _, id := range sm.byPart[p] {
			docs = append(docs, docInfo{id, sm.classes[id]})
		}
	}
	sm.mu.Unlock()
	sort.Slice(docs, func(i, j int) bool { return docs[i].id.Compare(docs[j].id) < 0 })

	repaired := 0
	for _, di := range docs {
		p := sm.pmap.PartitionOf(di.id)
		rf := sm.policy.FactorFor(di.class)
		old := truncate(oldOwners[p], rf)
		if !slices.Contains(old, dead) {
			continue // unaffected: the dead node was outside the doc's owner prefix
		}
		// Survivors are the old holders minus the dead node; new targets
		// are the holders the reassignment added.
		var survivors []fabric.NodeID
		for _, n := range old {
			if n != dead {
				survivors = append(survivors, n)
			}
		}
		if len(survivors) == 0 {
			sm.markUnrepaired(di.id)
			continue
		}
		src, ok := firstIn(survivors, aliveSet)
		if !ok {
			sm.markUnrepaired(di.id)
			continue
		}
		newHolders := sm.holdersFor(di.id, di.class)
		var versions []*docmodel.Document
		fullyRepaired := true
		for _, target := range newHolders {
			if slices.Contains(survivors, target) {
				continue // already holds a copy
			}
			if _, live := aliveSet[target]; !live {
				fullyRepaired = false
				continue
			}
			if versions == nil {
				var err error
				if versions, err = sm.access.FetchVersions(src, di.id); err != nil {
					fullyRepaired = false
					break
				}
			}
			installed := true
			for _, v := range versions {
				if err := sm.access.Install(target, v); err != nil {
					installed = false
					break
				}
			}
			if !installed {
				fullyRepaired = false
				continue
			}
			sm.mu.Lock()
			sm.Repaired++
			sm.mu.Unlock()
			repaired++
		}
		if fullyRepaired {
			sm.markRepaired(di.id)
		} else {
			sm.markUnrepaired(di.id)
		}
	}
	return repaired, nil
}

func (sm *StorageManager) markUnrepaired(id docmodel.DocID) {
	sm.mu.Lock()
	if _, dup := sm.degraded[id]; !dup {
		sm.degraded[id] = struct{}{}
		sm.Unrepaired++
	}
	sm.mu.Unlock()
}

// markRepaired heals the degraded record: a document an earlier pass
// could not fully repair may reach its factor on a later pass (e.g. its
// blocked target was recovered next).
func (sm *StorageManager) markRepaired(id docmodel.DocID) {
	sm.mu.Lock()
	delete(sm.degraded, id)
	sm.mu.Unlock()
}

// UnderReplicated lists documents whose most recent repair pass could
// not restore the full replication factor; a later pass that succeeds
// removes them again (monitoring hook). The aliveCount parameter is kept
// for callers that report against the current cluster size; factors are
// already capped by membership at placement time.
func (sm *StorageManager) UnderReplicated(aliveCount int) []docmodel.DocID {
	_ = aliveCount
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make([]docmodel.DocID, 0, len(sm.degraded))
	for id := range sm.degraded {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func truncate(nodes []fabric.NodeID, n int) []fabric.NodeID {
	if n > len(nodes) {
		n = len(nodes)
	}
	return nodes[:n]
}

func firstIn(nodes []fabric.NodeID, set map[fabric.NodeID]struct{}) (fabric.NodeID, bool) {
	for _, n := range nodes {
		if _, ok := set[n]; ok {
			return n, true
		}
	}
	return fabric.NodeID{}, false
}
