package virt

import (
	"fmt"
	"sync"

	"impliance/internal/docmodel"
	"impliance/internal/fabric"
)

// ReplicaAccess is how the storage manager reaches node-local stores to
// repair replication. The core engine implements it over its data-node
// stores; tests implement it over maps.
type ReplicaAccess interface {
	// FetchVersions returns every stored version of the document held by
	// the node, oldest first.
	FetchVersions(node fabric.NodeID, id docmodel.DocID) ([]*docmodel.Document, error)
	// Install idempotently stores a replica version on the node.
	Install(node fabric.NodeID, doc *docmodel.Document) error
}

// StorageManager tracks where every document's replicas live and repairs
// placement after node failures — the autonomic storage management of
// paper §3.4 ("Our goal is for Impliance to tune all these resources
// autonomically... to utilize resources well enough to deliver
// cost-effective performance").
type StorageManager struct {
	policy ReplicationPolicy
	access ReplicaAccess

	mu        sync.Mutex
	placement map[docmodel.DocID]*docPlacement
	rr        int

	// Counters for the failure-recovery experiment (E13).
	Repaired   int // replicas re-created after failures
	Unrepaired int // documents left under-replicated (no source or target)
}

type docPlacement struct {
	class DataClass
	nodes []fabric.NodeID
}

// NewStorageManager creates a manager with the given policy and access.
func NewStorageManager(policy ReplicationPolicy, access ReplicaAccess) *StorageManager {
	return &StorageManager{
		policy:    policy,
		access:    access,
		placement: map[docmodel.DocID]*docPlacement{},
	}
}

// PlaceNew chooses replica targets for a new document of the class,
// round-robin over the alive data nodes. The first target is the primary.
func (sm *StorageManager) PlaceNew(id docmodel.DocID, class DataClass, alive []fabric.NodeID) ([]fabric.NodeID, error) {
	if len(alive) == 0 {
		return nil, fmt.Errorf("virt: no data nodes for placement")
	}
	rf := sm.policy.FactorFor(class)
	if rf > len(alive) {
		rf = len(alive)
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	start := sm.rr
	sm.rr++
	targets := make([]fabric.NodeID, 0, rf)
	for i := 0; i < rf; i++ {
		targets = append(targets, alive[(start+i)%len(alive)])
	}
	sm.placement[id] = &docPlacement{class: class, nodes: append([]fabric.NodeID{}, targets...)}
	return targets, nil
}

// Register records existing placement (used when ingesting directly on a
// node or when loading state).
func (sm *StorageManager) Register(id docmodel.DocID, class DataClass, nodes ...fabric.NodeID) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.placement[id] = &docPlacement{class: class, nodes: append([]fabric.NodeID{}, nodes...)}
}

// Holders returns the nodes currently holding the document.
func (sm *StorageManager) Holders(id docmodel.DocID) []fabric.NodeID {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	p, ok := sm.placement[id]
	if !ok {
		return nil
	}
	return append([]fabric.NodeID{}, p.nodes...)
}

// DocsOn returns the documents with a replica on the node.
func (sm *StorageManager) DocsOn(node fabric.NodeID) []docmodel.DocID {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	var out []docmodel.DocID
	for id, p := range sm.placement {
		for _, n := range p.nodes {
			if n == node {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// HandleNodeFailure repairs replication after a data node dies: every
// document that had a replica there gets a new replica copied from a
// survivor onto an alive node not already holding it. Derived-class
// documents whose last replica died are counted Unrepaired — by policy
// they are re-creatable, so losing them is acceptable (paper §3.4).
//
// Returns the number of replicas re-created.
func (sm *StorageManager) HandleNodeFailure(dead fabric.NodeID, alive []fabric.NodeID) (int, error) {
	affected := sm.DocsOn(dead)
	repaired := 0
	for _, id := range affected {
		sm.mu.Lock()
		p := sm.placement[id]
		// Drop the dead holder.
		survivors := p.nodes[:0]
		for _, n := range p.nodes {
			if n != dead {
				survivors = append(survivors, n)
			}
		}
		p.nodes = survivors
		want := sm.policy.FactorFor(p.class)
		if want > len(alive) {
			want = len(alive)
		}
		need := want - len(p.nodes)
		sm.mu.Unlock()

		if need <= 0 {
			continue
		}
		if len(survivors) == 0 {
			sm.mu.Lock()
			sm.Unrepaired++
			sm.mu.Unlock()
			continue
		}
		src := survivors[0]
		versions, err := sm.access.FetchVersions(src, id)
		if err != nil {
			sm.mu.Lock()
			sm.Unrepaired++
			sm.mu.Unlock()
			continue
		}
		for i := 0; i < need; i++ {
			target, ok := pickTarget(alive, survivors)
			if !ok {
				sm.mu.Lock()
				sm.Unrepaired++
				sm.mu.Unlock()
				break
			}
			installed := true
			for _, v := range versions {
				if err := sm.access.Install(target, v); err != nil {
					installed = false
					break
				}
			}
			if !installed {
				sm.mu.Lock()
				sm.Unrepaired++
				sm.mu.Unlock()
				continue
			}
			survivors = append(survivors, target)
			sm.mu.Lock()
			p.nodes = append(p.nodes, target)
			sm.Repaired++
			sm.mu.Unlock()
			repaired++
		}
	}
	return repaired, nil
}

func pickTarget(alive, holding []fabric.NodeID) (fabric.NodeID, bool) {
	for _, a := range alive {
		held := false
		for _, h := range holding {
			if h == a {
				held = true
				break
			}
		}
		if !held {
			return a, true
		}
	}
	return fabric.NodeID{}, false
}

// UnderReplicated lists documents currently below their policy factor
// given the alive node set (monitoring hook).
func (sm *StorageManager) UnderReplicated(aliveCount int) []docmodel.DocID {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	var out []docmodel.DocID
	for id, p := range sm.placement {
		want := sm.policy.FactorFor(p.class)
		if want > aliveCount {
			want = aliveCount
		}
		if len(p.nodes) < want {
			out = append(out, id)
		}
	}
	return out
}
