package virt

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"impliance/internal/docmodel"
	"impliance/internal/fabric"
)

// ReplicaAccess is how the storage manager reaches node-local stores to
// repair replication. The core engine implements it over its data-node
// stores; tests implement it over maps.
type ReplicaAccess interface {
	// FetchVersions returns every stored version of the document held by
	// the node, oldest first.
	FetchVersions(node fabric.NodeID, id docmodel.DocID) ([]*docmodel.Document, error)
	// Install idempotently stores a replica version on the node.
	Install(node fabric.NodeID, doc *docmodel.Document) error
}

// StorageManager is the autonomic storage management of paper §3.4 ("Our
// goal is for Impliance to tune all these resources autonomically...").
// Placement is a consistent-hash partition map, not per-document state: a
// document's holders are hash(DocID) → partition → ring successors,
// truncated to the replication factor of its data class. The manager
// keeps only a doc → class registry; who holds what is derived from the
// partition map, so point operations route to at most RF nodes and a node
// failure reassigns only that node's partitions.
//
// Membership is bidirectional: HandleNodeFailure shrinks the ring and
// JoinNode grows it again. A join opens per-partition dual-ownership
// windows — reads route to the pre-join owners until a partition's
// hand-off completes, writes cover both sets — and produces a
// TransferPlan naming every document copy the catch-up must perform. The
// window closes partition-by-partition as catch-up work completes
// (CompleteHandoff), never cluster-wide.
type StorageManager struct {
	policy ReplicationPolicy
	access ReplicaAccess
	pmap   *PartitionMap

	mu       sync.Mutex
	classes  map[docmodel.DocID]DataClass
	byPart   map[int][]docmodel.DocID    // partition → registered docs, registration order
	degraded map[docmodel.DocID]struct{} // repair could not restore full factor

	// loads counts point operations routed per partition since the last
	// rebalance pass — the skew signal PlanRebalance consumes.
	loads []atomic.Uint64

	// Counters for the failure-recovery experiment (E13).
	Repaired   int // replicas re-created after failures
	Unrepaired int // documents left under-replicated (no source or target)

	// tr receives ownership decisions — window open/close, failure
	// reassignment, rebalance weight moves — when a tracing transport
	// (the simulator) is attached. Nil otherwise; emissions are free.
	tr fabric.Tracer
}

// SetTracer attaches a decision-trace sink; nil detaches it.
func (sm *StorageManager) SetTracer(t fabric.Tracer) { sm.tr = t }

func (sm *StorageManager) trace(format string, args ...any) {
	if sm.tr != nil {
		sm.tr.Event(format, args...)
	}
}

// DocMove is one document copy a hand-off must perform: every version of
// the document flows Source → Target.
type DocMove struct {
	ID     docmodel.DocID
	Source fabric.NodeID
	Target fabric.NodeID
}

// PartitionTransfer is one partition's share of a membership change: the
// ownership delta plus the document copies that close its dual-ownership
// window. Partitions with no moves still carry a window that must be
// completed.
type PartitionTransfer struct {
	Partition int
	Gen       uint64
	OldOwners []fabric.NodeID
	NewOwners []fabric.NodeID
	Moves     []DocMove
}

// TransferPlan is the full hand-off plan of one membership addition or
// weight change.
type TransferPlan struct {
	Node       fabric.NodeID
	Partitions []PartitionTransfer
}

// MoveCount returns the total number of document copies in the plan.
func (tp *TransferPlan) MoveCount() int {
	if tp == nil {
		return 0
	}
	n := 0
	for _, pt := range tp.Partitions {
		n += len(pt.Moves)
	}
	return n
}

// NewStorageManager creates a manager with the given policy and access.
// Data-node membership is installed with SetDataNodes before use.
func NewStorageManager(policy ReplicationPolicy, access ReplicaAccess) *StorageManager {
	maxRF := 1
	for _, f := range policy.Factor {
		if f > maxRF {
			maxRF = f
		}
	}
	return &StorageManager{
		policy:   policy,
		access:   access,
		pmap:     NewPartitionMap(DefaultPartitions, maxRF, DefaultVnodes),
		classes:  map[docmodel.DocID]DataClass{},
		byPart:   map[int][]docmodel.DocID{},
		degraded: map[docmodel.DocID]struct{}{},
		loads:    make([]atomic.Uint64, DefaultPartitions),
	}
}

// SetDataNodes installs the data-node membership the partition map
// routes over.
func (sm *StorageManager) SetDataNodes(nodes []fabric.NodeID) {
	sm.pmap.SetNodes(nodes)
}

// Partitions returns the partition count.
func (sm *StorageManager) Partitions() int { return sm.pmap.Partitions() }

// PartitionOf maps a document to its partition.
func (sm *StorageManager) PartitionOf(id docmodel.DocID) int { return sm.pmap.PartitionOf(id) }

// OwnersOf returns a partition's replica set under the current ring, in
// ring-successor order (the hand-off *target* set while a window is open).
func (sm *StorageManager) OwnersOf(p int) []fabric.NodeID { return sm.pmap.Owners(p) }

// InRing reports whether the node is a current ring member.
func (sm *StorageManager) InRing(n fabric.NodeID) bool { return sm.pmap.Ring().Contains(n) }

// InHandoff reports whether the partition's dual-ownership window is
// open (readers that consult per-node partition state must widen to a
// broadcast for such partitions — the state is mid-hand-over).
func (sm *StorageManager) InHandoff(p int) bool { return sm.pmap.InHandoff(p) }

// ReadOwnersOf returns the owner set reads of the partition route to:
// the pre-change owners while its hand-off window is open, the current
// owners otherwise.
func (sm *StorageManager) ReadOwnersOf(p int) []fabric.NodeID { return sm.pmap.ReadOwners(p) }

// MembershipGeneration exposes the partition map's membership-change
// counter; routers bracket plan → act with it to detect concurrent
// membership changes.
func (sm *StorageManager) MembershipGeneration() uint64 { return sm.pmap.Generation() }

// PartitionGen exposes the partition's routing generation — the fence
// cached per-partition read state is stamped with (see
// PartitionMap.PartitionGen).
func (sm *StorageManager) PartitionGen(p int) uint64 { return sm.pmap.PartitionGen(p) }

// RingNodes lists current ring members.
func (sm *StorageManager) RingNodes() []fabric.NodeID { return sm.pmap.Ring().Nodes() }

// NodeWeight reports a ring member's current vnode weight (0 when off
// the ring) — the observable a rebalance pass adjusts.
func (sm *StorageManager) NodeWeight(n fabric.NodeID) int { return sm.pmap.Ring().Weight(n) }

// HandoffPending reports how many partitions are mid-hand-off (their
// dual-ownership window is still open).
func (sm *StorageManager) HandoffPending() int { return sm.pmap.PendingHandoffs() }

// RouteKey returns the routing key the scheduler can use to co-locate
// document-keyed work with the document's partition.
func (sm *StorageManager) RouteKey(id docmodel.DocID) uint64 { return docKey(id) }

// OwnerForKey implements the scheduler's ring view: the primary data node
// for an arbitrary routing key.
func (sm *StorageManager) OwnerForKey(key uint64) (fabric.NodeID, bool) {
	return sm.pmap.OwnerForKey(key)
}

// RecordLoad charges one point operation to the document's partition —
// the load signal skew-aware rebalancing consumes.
func (sm *StorageManager) RecordLoad(id docmodel.DocID) {
	sm.loads[sm.pmap.PartitionOf(id)].Add(1)
}

// PartitionLoads snapshots the per-partition point-op counters.
func (sm *StorageManager) PartitionLoads() []uint64 {
	out := make([]uint64, len(sm.loads))
	for i := range sm.loads {
		out[i] = sm.loads[i].Load()
	}
	return out
}

// ResetLoads zeroes the load counters (after a rebalance pass consumed
// them, so the next pass measures the post-adjustment distribution).
func (sm *StorageManager) ResetLoads() {
	for i := range sm.loads {
		sm.loads[i].Store(0)
	}
}

// PlaceDoc returns a new document's *write* replica set, primary first.
// Outside a hand-off window this is the first RF(class) owners of its
// partition in ring-successor order. While the partition is mid-hand-off
// the set is the union of the pre-change and target holder sets (old
// first): writes must land on both sides of the window or the new owners
// would miss them. It is a pure placement query: callers Register the
// document once it is actually persisted, so a failed write never leaves
// a phantom registration behind.
func (sm *StorageManager) PlaceDoc(id docmodel.DocID, class DataClass) ([]fabric.NodeID, error) {
	holders := sm.writeHoldersFor(id, class)
	if len(holders) == 0 {
		return nil, fmt.Errorf("virt: no data nodes for placement")
	}
	return holders, nil
}

// Register records an existing document's class (placement itself is
// derived from the partition map) and indexes it under its partition.
func (sm *StorageManager) Register(id docmodel.DocID, class DataClass) {
	p := sm.pmap.PartitionOf(id)
	sm.mu.Lock()
	if _, known := sm.classes[id]; !known {
		sm.byPart[p] = append(sm.byPart[p], id)
	}
	sm.classes[id] = class
	sm.mu.Unlock()
}

// Holders returns the nodes a *read* of the document routes to — the
// class-truncated pre-change owners while its partition is mid-hand-off
// (their copies are complete), the current owners otherwise — or nil if
// the document was never registered.
func (sm *StorageManager) Holders(id docmodel.DocID) []fabric.NodeID {
	class, ok := sm.classOf(id)
	if !ok {
		return nil
	}
	return sm.readHoldersFor(id, class)
}

// WriteHolders returns the nodes a write (new version) of the document
// must reach: both sides of an open hand-off window, old first.
func (sm *StorageManager) WriteHolders(id docmodel.DocID) []fabric.NodeID {
	class, ok := sm.classOf(id)
	if !ok {
		return nil
	}
	return sm.writeHoldersFor(id, class)
}

// TargetHolders returns the document's holder set under the current ring,
// ignoring any open hand-off window — where the document is headed, used
// e.g. to pick the long-term index owner.
func (sm *StorageManager) TargetHolders(id docmodel.DocID) []fabric.NodeID {
	class, ok := sm.classOf(id)
	if !ok {
		return nil
	}
	return truncate(sm.pmap.Owners(sm.pmap.PartitionOf(id)), sm.policy.FactorFor(class))
}

func (sm *StorageManager) classOf(id docmodel.DocID) (DataClass, bool) {
	sm.mu.Lock()
	class, ok := sm.classes[id]
	sm.mu.Unlock()
	return class, ok
}

func (sm *StorageManager) readHoldersFor(id docmodel.DocID, class DataClass) []fabric.NodeID {
	owners := sm.pmap.ReadOwners(sm.pmap.PartitionOf(id))
	return truncate(owners, sm.policy.FactorFor(class))
}

func (sm *StorageManager) writeHoldersFor(id docmodel.DocID, class DataClass) []fabric.NodeID {
	read, target, pending := sm.pmap.OwnersPair(sm.pmap.PartitionOf(id))
	rf := sm.policy.FactorFor(class)
	out := truncate(read, rf)
	if pending {
		out = out[:len(out):len(out)]
		for _, n := range truncate(target, rf) {
			if !slices.Contains(out, n) {
				out = append(out, n)
			}
		}
	}
	return out
}

// writeMaskByRF reports, for each replication factor 1..maxOwners,
// whether the node is in the partition's write-holder set truncated to
// that factor — the per-partition precomputation DocsOn uses to avoid
// per-document owner walks.
func (sm *StorageManager) writeMaskByRF(p int, node fabric.NodeID) []bool {
	read, target, pending := sm.pmap.OwnersPair(p)
	mask := make([]bool, sm.pmap.maxOwners+1)
	for rf := 1; rf <= sm.pmap.maxOwners; rf++ {
		if slices.Contains(truncate(read, rf), node) {
			mask[rf] = true
			continue
		}
		if pending && slices.Contains(truncate(target, rf), node) {
			mask[rf] = true
		}
	}
	return mask
}

// AnsweringNode returns the partition's answering owner — the first owner
// the liveness probe accepts, drawn from the read-side owner set so that
// a mid-hand-off partition keeps answering from the owners whose data is
// complete. Exactly one node answers scans, aggregates, and facet counts
// for each partition, so distributed results count every document once
// without per-document ownership state.
func (sm *StorageManager) AnsweringNode(p int, alive func(fabric.NodeID) bool) (fabric.NodeID, bool) {
	for _, n := range sm.pmap.ReadOwners(p) {
		if alive(n) {
			return n, true
		}
	}
	return fabric.NodeID{}, false
}

// DocsInPartitions returns the registered documents of every partition
// the mask selects, in deterministic order. Scan-side handlers use it to
// visit only the documents a node answers for, skipping its replica
// copies without paying to evaluate them.
func (sm *StorageManager) DocsInPartitions(mask []bool) []docmodel.DocID {
	sm.mu.Lock()
	var out []docmodel.DocID
	for p, sel := range mask {
		if sel {
			out = append(out, sm.byPart[p]...)
		}
	}
	sm.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// DocsInPartition returns one partition's registered documents, in
// deterministic order.
// PartitionDocCount reports how many registered documents the partition
// holds — the partition-routed aggregate planner's cheap emptiness check.
func (sm *StorageManager) PartitionDocCount(p int) int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return len(sm.byPart[p])
}

func (sm *StorageManager) DocsInPartition(p int) []docmodel.DocID {
	sm.mu.Lock()
	out := append([]docmodel.DocID{}, sm.byPart[p]...)
	sm.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// DocsOn returns the registered documents whose replica set includes the
// node (either side of an open hand-off window), in deterministic order.
// The walk is partition-driven — only partitions whose owner list
// contains the node contribute — and the registry lock is taken once for
// the whole snapshot, not once per partition.
func (sm *StorageManager) DocsOn(node fabric.NodeID) []docmodel.DocID {
	parts := sm.pmap.Partitions()
	masks := make([][]bool, parts)
	for p := 0; p < parts; p++ {
		mask := sm.writeMaskByRF(p, node)
		if slices.Contains(mask, true) {
			masks[p] = mask
		}
	}
	var out []docmodel.DocID
	sm.mu.Lock()
	for p, mask := range masks {
		if mask == nil {
			continue
		}
		for _, id := range sm.byPart[p] {
			rf := sm.policy.FactorFor(sm.classes[id])
			if rf < len(mask) && mask[rf] {
				out = append(out, id)
			}
		}
	}
	sm.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// JoinNode adds a node (back) to the ring — the membership *addition*
// elastic scale-out needs. Every partition whose owner set changes gets a
// dual-ownership window and a PartitionTransfer naming the document
// copies that close it. Returns (nil, nil) when the node is already a
// member. The caller executes the plan (ExecuteMoves + CompleteHandoff),
// typically as background work, one partition at a time.
func (sm *StorageManager) JoinNode(n fabric.NodeID, alive []fabric.NodeID) (*TransferPlan, error) {
	windows, joined := sm.pmap.BeginJoin(n)
	if !joined {
		return nil, nil
	}
	return sm.planHandoff(n, windows, alive), nil
}

// AdjustNodeWeight changes a member's ring weight (vnode count), opening
// hand-off windows on the partitions whose ownership moved and returning
// the plan that closes them. Returns nil when the node is absent or the
// weight is unchanged.
func (sm *StorageManager) AdjustNodeWeight(n fabric.NodeID, vnodes int, alive []fabric.NodeID) *TransferPlan {
	windows := sm.pmap.SetNodeWeight(n, vnodes)
	if windows == nil {
		return nil
	}
	return sm.planHandoff(n, windows, alive)
}

// planHandoff turns freshly opened hand-off windows into a TransferPlan:
// for each affected document, the versions missing from the owners the
// change added are sourced from the first alive pre-change holder.
func (sm *StorageManager) planHandoff(n fabric.NodeID, windows []HandoffWindow, alive []fabric.NodeID) *TransferPlan {
	aliveSet := map[fabric.NodeID]struct{}{}
	for _, a := range alive {
		aliveSet[a] = struct{}{}
	}
	plan := &TransferPlan{Node: n}
	for _, w := range windows {
		newOwners := sm.pmap.Owners(w.Partition)
		pt := PartitionTransfer{
			Partition: w.Partition,
			Gen:       w.Gen,
			OldOwners: w.OldOwners,
			NewOwners: newOwners,
		}
		sm.mu.Lock()
		ids := append([]docmodel.DocID{}, sm.byPart[w.Partition]...)
		classes := make([]DataClass, len(ids))
		for i, id := range ids {
			classes[i] = sm.classes[id]
		}
		sm.mu.Unlock()
		for i, id := range ids {
			rf := sm.policy.FactorFor(classes[i])
			oldH := truncate(w.OldOwners, rf)
			newH := truncate(newOwners, rf)
			src, hasSrc := firstIn(oldH, aliveSet)
			for _, tgt := range newH {
				if slices.Contains(oldH, tgt) {
					continue // already holds a copy
				}
				if !hasSrc {
					sm.markUnrepaired(id)
					break
				}
				pt.Moves = append(pt.Moves, DocMove{ID: id, Source: src, Target: tgt})
			}
		}
		sm.trace("window open p=%d gen=%d moves=%d old=%v new=%v",
			pt.Partition, pt.Gen, len(pt.Moves), pt.OldOwners, pt.NewOwners)
		plan.Partitions = append(plan.Partitions, pt)
	}
	return plan
}

// ExecuteMoves performs one partition's document copies through the
// replica access: every stored version flows source → target. A move
// whose planned source fails falls back to the other pre-change owners.
// Returns the number of replicas created. The caller still owns closing
// the window with CompleteHandoff (after any indexing catch-up).
func (sm *StorageManager) ExecuteMoves(pt PartitionTransfer) int {
	created := 0
	var lastID docmodel.DocID
	var versions []*docmodel.Document
	for _, mv := range pt.Moves {
		if mv.ID != lastID {
			lastID = mv.ID
			versions = nil
			for _, src := range sourceOrder(mv.Source, pt.OldOwners) {
				if vs, err := sm.access.FetchVersions(src, mv.ID); err == nil {
					versions = vs
					break
				}
			}
		}
		if len(versions) == 0 {
			sm.markUnrepaired(mv.ID)
			continue
		}
		installed := true
		for _, v := range versions {
			if err := sm.access.Install(mv.Target, v); err != nil {
				installed = false
				break
			}
		}
		if !installed {
			sm.markUnrepaired(mv.ID)
			continue
		}
		sm.mu.Lock()
		sm.Repaired++
		sm.mu.Unlock()
		created++
	}
	return created
}

// CompleteHandoff closes the partition's dual-ownership window — the
// catch-up watermark for this partition has been reached, reads may now
// route to the new owners — and re-checks the degraded set: a document an
// earlier repair pass left under-replicated may have reached its factor
// through this hand-off (its blocked target re-joined).
func (sm *StorageManager) CompleteHandoff(pt PartitionTransfer) {
	if !sm.pmap.CompleteHandoff(pt.Partition, pt.Gen) {
		sm.trace("window close p=%d gen=%d refused (re-armed)", pt.Partition, pt.Gen)
		return
	}
	sm.trace("window close p=%d gen=%d", pt.Partition, pt.Gen)
	sm.healPartition(pt.Partition)
}

// healPartition removes partition members of the degraded set whose full
// holder set verifiably holds a copy again.
func (sm *StorageManager) healPartition(p int) {
	type cand struct {
		id    docmodel.DocID
		class DataClass
	}
	var cands []cand
	sm.mu.Lock()
	for _, id := range sm.byPart[p] {
		if _, bad := sm.degraded[id]; bad {
			cands = append(cands, cand{id, sm.classes[id]})
		}
	}
	sm.mu.Unlock()
	for _, c := range cands {
		holders := sm.readHoldersFor(c.id, c.class)
		if len(holders) == 0 {
			continue
		}
		healed := true
		for _, h := range holders {
			if _, err := sm.access.FetchVersions(h, c.id); err != nil {
				healed = false
				break
			}
		}
		if healed {
			sm.markRepaired(c.id)
		}
	}
}

// sourceOrder yields the planned source first, then the remaining
// candidates, without duplicates.
func sourceOrder(planned fabric.NodeID, rest []fabric.NodeID) []fabric.NodeID {
	out := []fabric.NodeID{planned}
	for _, n := range rest {
		if n != planned {
			out = append(out, n)
		}
	}
	return out
}

// HandleNodeFailure removes a dead data node from the ring and repairs
// replication: every partition the node owned is reassigned to its ring
// successors (unrelated partitions keep their replica sets — the
// consistent-hashing guarantee), and each affected document is copied
// from a surviving holder onto the owners it gained. Derived-class
// documents whose only replica died are counted Unrepaired — by policy
// they are re-creatable, so losing them is acceptable (paper §3.4).
//
// Returns the number of replicas re-created.
func (sm *StorageManager) HandleNodeFailure(dead fabric.NodeID, alive []fabric.NodeID) (int, error) {
	aliveSet := map[fabric.NodeID]struct{}{}
	for _, n := range alive {
		aliveSet[n] = struct{}{}
	}

	// Snapshot the pre-failure owner sets of the partitions the dead node
	// participates in (either side of an open hand-off window), then drop
	// the node; only those partitions (and the documents registered under
	// them) need walking.
	oldOwners := map[int][]fabric.NodeID{}
	for p := 0; p < sm.pmap.Partitions(); p++ {
		read, target, _ := sm.pmap.OwnersPair(p)
		if slices.Contains(read, dead) || slices.Contains(target, dead) {
			oldOwners[p] = read
		}
	}
	sm.pmap.RemoveNode(dead)

	type docInfo struct {
		id    docmodel.DocID
		class DataClass
	}
	var docs []docInfo
	sm.mu.Lock()
	for p := range oldOwners {
		for _, id := range sm.byPart[p] {
			docs = append(docs, docInfo{id, sm.classes[id]})
		}
	}
	sm.mu.Unlock()
	sort.Slice(docs, func(i, j int) bool { return docs[i].id.Compare(docs[j].id) < 0 })

	repaired := 0
	for _, di := range docs {
		p := sm.pmap.PartitionOf(di.id)
		rf := sm.policy.FactorFor(di.class)
		old := truncate(oldOwners[p], rf)
		if !slices.Contains(old, dead) {
			continue // unaffected: the dead node was outside the doc's owner prefix
		}
		// Survivors are the old holders minus the dead node; new targets
		// are the holders the reassignment added.
		var survivors []fabric.NodeID
		for _, n := range old {
			if n != dead {
				survivors = append(survivors, n)
			}
		}
		if len(survivors) == 0 {
			sm.markUnrepaired(di.id)
			continue
		}
		src, ok := firstIn(survivors, aliveSet)
		if !ok {
			sm.markUnrepaired(di.id)
			continue
		}
		newHolders := sm.readHoldersFor(di.id, di.class)
		var versions []*docmodel.Document
		fullyRepaired := true
		for _, target := range newHolders {
			if slices.Contains(survivors, target) {
				continue // already holds a copy
			}
			if _, live := aliveSet[target]; !live {
				fullyRepaired = false
				continue
			}
			if versions == nil {
				var err error
				if versions, err = sm.access.FetchVersions(src, di.id); err != nil {
					fullyRepaired = false
					break
				}
			}
			installed := true
			for _, v := range versions {
				if err := sm.access.Install(target, v); err != nil {
					installed = false
					break
				}
			}
			if !installed {
				fullyRepaired = false
				continue
			}
			sm.mu.Lock()
			sm.Repaired++
			sm.mu.Unlock()
			repaired++
		}
		if fullyRepaired {
			sm.markRepaired(di.id)
		} else {
			sm.markUnrepaired(di.id)
		}
	}
	sm.trace("failure %s: %d partitions reassigned, %d replicas repaired", dead, len(oldOwners), repaired)
	return repaired, nil
}

// ReplanHandoffs re-plans catch-up for every open hand-off window under
// the current ring. A node failure mid-window re-arms the surviving
// windows' generations (RemoveNode), fencing in-flight catch-up plans
// that may miss a promoted successor; the plan returned here carries the
// fresh generations and the complete move set, and must be executed or
// the windows never close. Returns nil when no windows are open.
func (sm *StorageManager) ReplanHandoffs(alive []fabric.NodeID) *TransferPlan {
	windows := sm.pmap.PendingWindows()
	if len(windows) == 0 {
		return nil
	}
	return sm.planHandoff(fabric.NodeID{}, windows, alive)
}

// RepairDegraded re-attempts replication repair for the degraded set: for
// each under-replicated document, versions are copied from the first
// alive holder onto the alive holders missing them. A document whose full
// holder set verifiably holds a copy leaves the degraded set — the
// "blocked target later came back" healing path. Returns the number of
// replicas created.
func (sm *StorageManager) RepairDegraded(alive []fabric.NodeID) int {
	aliveSet := map[fabric.NodeID]struct{}{}
	for _, n := range alive {
		aliveSet[n] = struct{}{}
	}
	created := 0
	for _, id := range sm.UnderReplicated() {
		class, ok := sm.classOf(id)
		if !ok {
			continue
		}
		holders := sm.readHoldersFor(id, class)
		if len(holders) == 0 {
			continue
		}
		var versions []*docmodel.Document
		var src fabric.NodeID
		for _, h := range holders {
			if _, live := aliveSet[h]; !live {
				continue
			}
			if vs, err := sm.access.FetchVersions(h, id); err == nil {
				src, versions = h, vs
				break
			}
		}
		if len(versions) == 0 {
			continue // still no alive source; data may be lost
		}
		healed := true
		for _, h := range holders {
			if h == src {
				continue
			}
			if _, err := sm.access.FetchVersions(h, id); err == nil {
				continue // already holds a copy
			}
			if _, live := aliveSet[h]; !live {
				healed = false
				continue
			}
			installed := true
			for _, v := range versions {
				if err := sm.access.Install(h, v); err != nil {
					installed = false
					break
				}
			}
			if !installed {
				healed = false
				continue
			}
			sm.mu.Lock()
			sm.Repaired++
			sm.mu.Unlock()
			created++
		}
		if healed {
			sm.markRepaired(id)
		}
	}
	return created
}

// NodeLoads aggregates the per-partition point-op counters onto the
// partition's answering (read-side) primary — the node that actually
// served the operations.
func (sm *StorageManager) NodeLoads() map[fabric.NodeID]uint64 {
	out := map[fabric.NodeID]uint64{}
	for p := 0; p < sm.pmap.Partitions(); p++ {
		owners := sm.pmap.ReadOwners(p)
		if len(owners) == 0 {
			continue
		}
		out[owners[0]] += sm.loads[p].Load()
	}
	return out
}

// minRebalanceVnodes is the floor a rebalance pass may shed a node's
// weight to: below this the node's arcs get too coarse to spread evenly.
const minRebalanceVnodes = 8

// PlanRebalance is the skew-aware rebalance pass: when the hottest node's
// point-op load exceeds skew× the mean, its ring weight is cut by a
// quarter — shrinking the keyspace share it attracts — and the resulting
// ownership moves come back as a TransferPlan for the same hand-off
// machinery a join uses. Symmetrically, when the load is not top-heavy
// but the coldest node sits below mean/skew, that node's weight grows by
// a quarter so it attracts a larger keyspace share (shedding the hottest
// node takes priority — it addresses the same skew with less churn).
// Returns nil while the load is balanced, the signal is empty, or the
// adjustment would cross the weight floor. Load counters reset after a
// plan is produced so the next pass measures the post-adjustment
// distribution.
func (sm *StorageManager) PlanRebalance(skew float64, alive []fabric.NodeID) *TransferPlan {
	if skew <= 1 {
		skew = 2
	}
	loads := sm.NodeLoads()
	if len(loads) < 2 {
		return nil
	}
	var total, max uint64
	min := uint64(0)
	first := true
	var hot, cold fabric.NodeID
	for n, l := range loads {
		total += l
		if l > max || (l == max && !hot.IsZero() && lessNodeID(n, hot)) {
			max, hot = l, n
		}
		if first || l < min || (l == min && lessNodeID(n, cold)) {
			min, cold = l, n
			first = false
		}
	}
	mean := float64(total) / float64(len(loads))
	if mean == 0 {
		return nil
	}
	var target fabric.NodeID
	var nw int
	switch {
	case float64(max) >= skew*mean:
		target = hot
		nw = sm.pmap.Ring().Weight(hot) * 3 / 4
		if nw < minRebalanceVnodes {
			return nil
		}
		sm.trace("rebalance: shed %s weight→%d (load=%d mean=%.1f)", hot, nw, max, mean)
	case float64(min)*skew < mean:
		target = cold
		w := sm.pmap.Ring().Weight(cold)
		if w < minRebalanceVnodes {
			return nil
		}
		nw = w * 5 / 4
		sm.trace("rebalance: grow %s weight→%d (load=%d mean=%.1f)", cold, nw, min, mean)
	default:
		return nil
	}
	plan := sm.AdjustNodeWeight(target, nw, alive)
	if plan != nil {
		sm.ResetLoads()
	}
	return plan
}

func lessNodeID(a, b fabric.NodeID) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Num < b.Num
}

func (sm *StorageManager) markUnrepaired(id docmodel.DocID) {
	sm.mu.Lock()
	if _, dup := sm.degraded[id]; !dup {
		sm.degraded[id] = struct{}{}
		sm.Unrepaired++
	}
	sm.mu.Unlock()
}

// markRepaired heals the degraded record: a document an earlier pass
// could not fully repair may reach its factor on a later pass (e.g. its
// blocked target was recovered next, or re-joined the ring).
func (sm *StorageManager) markRepaired(id docmodel.DocID) {
	sm.mu.Lock()
	delete(sm.degraded, id)
	sm.mu.Unlock()
}

// UnderReplicated lists documents whose most recent repair pass could
// not restore the full replication factor; a later pass (or a completed
// hand-off) that succeeds removes them again (monitoring hook).
func (sm *StorageManager) UnderReplicated() []docmodel.DocID {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make([]docmodel.DocID, 0, len(sm.degraded))
	for id := range sm.degraded {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func truncate(nodes []fabric.NodeID, n int) []fabric.NodeID {
	if n > len(nodes) {
		n = len(nodes)
	}
	return nodes[:n]
}

func firstIn(nodes []fabric.NodeID, set map[fabric.NodeID]struct{}) (fabric.NodeID, bool) {
	for _, n := range nodes {
		if _, ok := set[n]; ok {
			return n, true
		}
	}
	return fabric.NodeID{}, false
}
