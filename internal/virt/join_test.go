package virt

import (
	"slices"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/fabric"
)

// seedDocs places and registers n user-class docs, writing their copies
// into the map store, and returns the IDs.
func seedDocs(t *testing.T, sm *StorageManager, ma *mapAccess, n int) []docmodel.DocID {
	t.Helper()
	var ids []docmodel.DocID
	for i := uint64(1); i <= uint64(n); i++ {
		d := mkDoc(i)
		targets, err := sm.PlaceDoc(d.ID, ClassUser)
		if err != nil {
			t.Fatal(err)
		}
		sm.Register(d.ID, ClassUser)
		for _, tgt := range targets {
			ma.put(tgt, d)
		}
		ids = append(ids, d.ID)
	}
	return ids
}

// executePlan runs every partition transfer: copies plus window close.
func executePlan(sm *StorageManager, plan *TransferPlan) int {
	moved := 0
	for _, pt := range plan.Partitions {
		moved += sm.ExecuteMoves(pt)
		sm.CompleteHandoff(pt)
	}
	return moved
}

// TestJoinNodeDualOwnershipWindow is the elastic-membership acceptance
// check at the virt level: a node removed by HandleNodeFailure re-joins
// via JoinNode; while the hand-off windows are open, reads route only to
// pre-join owners (whose copies are complete), writes cover both sides;
// after execution every holder physically has its documents and the
// windows are closed.
func TestJoinNodeDualOwnershipWindow(t *testing.T) {
	nodes := []fabric.NodeID{dataNode(1), dataNode(2), dataNode(3), dataNode(4)}
	ma := newMapAccess(nodes...)
	sm := NewStorageManager(DefaultPolicy(), ma)
	sm.SetDataNodes(nodes)
	ids := seedDocs(t, sm, ma, 200)

	dead := dataNode(2)
	alive := []fabric.NodeID{dataNode(1), dataNode(3), dataNode(4)}
	if _, err := sm.HandleNodeFailure(dead, alive); err != nil {
		t.Fatal(err)
	}
	if sm.InRing(dead) {
		t.Fatal("failed node still on the ring")
	}

	// Re-join: the revived node comes back with whatever it had, and the
	// plan names every copy it is missing.
	all := append(alive, dead)
	plan, err := sm.JoinNode(dead, all)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || len(plan.Partitions) == 0 {
		t.Fatal("join produced no hand-off plan")
	}
	if sm.HandoffPending() == 0 {
		t.Fatal("join opened no dual-ownership windows")
	}
	if !sm.InRing(dead) {
		t.Fatal("joined node not a ring member")
	}

	// During the window: reads never route to the joining node (its data
	// is still catching up), while the write set covers it wherever it is
	// a target owner.
	joinTargeted := 0
	for _, id := range ids {
		readH := sm.Holders(id)
		if slices.Contains(readH, dead) {
			t.Fatalf("doc %v read-routes to mid-join node %v", id, readH)
		}
		writeH := sm.WriteHolders(id)
		for _, h := range readH {
			if !slices.Contains(writeH, h) {
				t.Fatalf("doc %v write set %v misses read holder %v", id, writeH, h)
			}
		}
		if slices.Contains(writeH, dead) {
			joinTargeted++
		}
	}
	if joinTargeted == 0 {
		t.Fatal("no document targets the joining node; join moved nothing")
	}

	// Execute the plan; windows close partition-by-partition.
	before := sm.HandoffPending()
	first := plan.Partitions[0]
	sm.ExecuteMoves(first)
	sm.CompleteHandoff(first)
	if sm.HandoffPending() != before-1 {
		t.Fatalf("completing one partition closed %d windows", before-sm.HandoffPending())
	}
	for _, pt := range plan.Partitions[1:] {
		sm.ExecuteMoves(pt)
		sm.CompleteHandoff(pt)
	}
	if sm.HandoffPending() != 0 {
		t.Fatalf("%d windows left open after full execution", sm.HandoffPending())
	}

	// Post-join: the node serves reads again, and every holder physically
	// has every document it is named for.
	servedByJoined := 0
	for _, id := range ids {
		holders := sm.Holders(id)
		if len(holders) != 2 {
			t.Fatalf("doc %v holders = %v, want RF2", id, holders)
		}
		if holders[0] == dead {
			servedByJoined++
		}
		for _, h := range holders {
			if _, err := ma.FetchVersions(h, id); err != nil {
				t.Errorf("doc %v missing on holder %v after hand-off: %v", id, h, err)
			}
		}
	}
	if servedByJoined == 0 {
		t.Error("re-joined node is primary for nothing; ring weight lost")
	}
	if sm.Unrepaired != 0 {
		t.Errorf("unrepaired after clean join = %d", sm.Unrepaired)
	}
}

// TestJoinNodeAlreadyMemberIsNoop: joining a current member opens no
// windows and returns no plan.
func TestJoinNodeAlreadyMemberIsNoop(t *testing.T) {
	nodes := []fabric.NodeID{dataNode(1), dataNode(2)}
	sm := NewStorageManager(DefaultPolicy(), newMapAccess(nodes...))
	sm.SetDataNodes(nodes)
	plan, err := sm.JoinNode(dataNode(1), nodes)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil || sm.HandoffPending() != 0 {
		t.Errorf("member re-join must be a no-op (plan=%v pending=%d)", plan, sm.HandoffPending())
	}
}

// TestHandoffCompletionIsGenerationFenced: when a second membership
// change re-arms a partition's window, the first change's completion must
// not close it — only the latest change's catch-up owns the close.
func TestHandoffCompletionIsGenerationFenced(t *testing.T) {
	nodes := []fabric.NodeID{dataNode(1), dataNode(2), dataNode(3)}
	ma := newMapAccess(nodes...)
	sm := NewStorageManager(DefaultPolicy(), ma)
	sm.SetDataNodes(nodes)
	seedDocs(t, sm, ma, 50)

	alive := []fabric.NodeID{dataNode(1), dataNode(2), dataNode(3)}
	if _, err := sm.HandleNodeFailure(dataNode(2), []fabric.NodeID{dataNode(1), dataNode(3)}); err != nil {
		t.Fatal(err)
	}
	plan1, err := sm.JoinNode(dataNode(2), alive)
	if err != nil {
		t.Fatal(err)
	}
	ma.data[dataNode(4)] = map[docmodel.DocID][]*docmodel.Document{}
	plan2, err := sm.JoinNode(dataNode(4), append(alive, dataNode(4)))
	if err != nil {
		t.Fatal(err)
	}
	// Find a partition re-armed by the second join.
	rearmed := map[int]PartitionTransfer{}
	for _, pt := range plan2.Partitions {
		rearmed[pt.Partition] = pt
	}
	var stale *PartitionTransfer
	for i := range plan1.Partitions {
		if _, ok := rearmed[plan1.Partitions[i].Partition]; ok {
			stale = &plan1.Partitions[i]
			break
		}
	}
	if stale == nil {
		t.Skip("no partition shared between the two joins (unlucky hash layout)")
	}
	before := sm.HandoffPending()
	sm.CompleteHandoff(*stale) // stale generation: must not close
	if sm.HandoffPending() != before {
		t.Fatal("stale-generation completion closed a re-armed window")
	}
	fresh := rearmed[stale.Partition]
	sm.ExecuteMoves(fresh)
	sm.CompleteHandoff(fresh)
	if sm.HandoffPending() != before-1 {
		t.Fatal("fresh-generation completion did not close the window")
	}
}

// TestRepairDegradedHealsWhenBlockedTargetServesAgain is the degraded-set
// healing check: a document left Unrepaired because its repair target was
// down must leave UnderReplicated once the target serves again and the
// next repair pass runs — with real copies installed, not just the record
// dropped.
func TestRepairDegradedHealsWhenBlockedTargetServesAgain(t *testing.T) {
	nodes := []fabric.NodeID{dataNode(1), dataNode(2), dataNode(3), dataNode(4)}
	ma := newMapAccess(nodes...)
	sm := NewStorageManager(DefaultPolicy(), ma)
	sm.SetDataNodes(nodes)
	ids := seedDocs(t, sm, ma, 120)

	// Node 1 dies while node 2 is also down (but still a ring member):
	// repairs targeting node 2 are blocked.
	dead := dataNode(1)
	if _, err := sm.HandleNodeFailure(dead, []fabric.NodeID{dataNode(3), dataNode(4)}); err != nil {
		t.Fatal(err)
	}
	degraded := sm.UnderReplicated()
	if len(degraded) == 0 {
		t.Fatal("no documents blocked on the down target; scenario degenerate")
	}

	// Node 2 comes back. The next repair pass copies the missing replicas
	// onto it and clears the degraded set.
	created := sm.RepairDegraded([]fabric.NodeID{dataNode(2), dataNode(3), dataNode(4)})
	if created == 0 {
		t.Fatal("repair pass created no replicas")
	}
	if left := sm.UnderReplicated(); len(left) != 0 {
		t.Fatalf("%d documents still under-replicated after the target served again", len(left))
	}
	for _, id := range ids {
		for _, h := range sm.Holders(id) {
			if _, err := ma.FetchVersions(h, id); err != nil {
				t.Errorf("doc %v missing on holder %v after healing: %v", id, h, err)
			}
		}
	}
}

// TestPlanRebalanceShedsHotNodeWeight: skewed point-op load on one node
// triggers a ring-weight cut for exactly that node, and the resulting
// hand-off keeps every document fully replicated.
func TestPlanRebalanceShedsHotNodeWeight(t *testing.T) {
	nodes := []fabric.NodeID{dataNode(1), dataNode(2), dataNode(3)}
	ma := newMapAccess(nodes...)
	sm := NewStorageManager(DefaultPolicy(), ma)
	sm.SetDataNodes(nodes)
	ids := seedDocs(t, sm, ma, 300)

	hot := dataNode(1)
	for _, id := range ids {
		if sm.Holders(id)[0] == hot {
			for i := 0; i < 10; i++ {
				sm.RecordLoad(id)
			}
		} else {
			sm.RecordLoad(id)
		}
	}
	w := sm.pmap.Ring().Weight(hot)
	plan := sm.PlanRebalance(2.0, nodes)
	if plan == nil {
		t.Fatal("skewed load produced no rebalance plan")
	}
	if plan.Node != hot {
		t.Fatalf("rebalance adjusted %v, want hot node %v", plan.Node, hot)
	}
	if nw := sm.pmap.Ring().Weight(hot); nw >= w {
		t.Fatalf("hot node weight %d -> %d; expected a cut", w, nw)
	}
	for _, l := range sm.PartitionLoads() {
		if l != 0 {
			t.Fatal("load counters must reset after a rebalance plan")
		}
	}
	executePlan(sm, plan)
	if sm.HandoffPending() != 0 {
		t.Fatal("rebalance windows left open")
	}
	for _, id := range ids {
		holders := sm.Holders(id)
		if len(holders) != 2 {
			t.Fatalf("doc %v holders = %v after rebalance", id, holders)
		}
		for _, h := range holders {
			if _, err := ma.FetchVersions(h, id); err != nil {
				t.Errorf("doc %v missing on holder %v after rebalance: %v", id, h, err)
			}
		}
	}
	// Balanced load (after reset) must not trigger another adjustment.
	if again := sm.PlanRebalance(2.0, nodes); again != nil {
		t.Error("balanced load produced a rebalance plan")
	}
}

// TestPlanRebalanceGrowsColdNodeWeight: when no node is hot but one node
// sits persistently below mean/skew, the pass grows that node's ring
// weight so it attracts a larger keyspace share, and the hand-off keeps
// every document fully replicated.
func TestPlanRebalanceGrowsColdNodeWeight(t *testing.T) {
	nodes := []fabric.NodeID{dataNode(1), dataNode(2), dataNode(3)}
	ma := newMapAccess(nodes...)
	sm := NewStorageManager(DefaultPolicy(), ma)
	sm.SetDataNodes(nodes)
	ids := seedDocs(t, sm, ma, 300)

	// Even-ish load on two nodes, a trickle on the third: nobody crosses
	// the skew*mean hot threshold, but the cold node sits below mean/skew.
	cold := dataNode(2)
	for _, id := range ids {
		n := 4
		if sm.Holders(id)[0] == cold {
			n = 1
		}
		for i := 0; i < n; i++ {
			sm.RecordLoad(id)
		}
	}
	w := sm.pmap.Ring().Weight(cold)
	plan := sm.PlanRebalance(2.0, nodes)
	if plan == nil {
		t.Fatal("underloaded node produced no rebalance plan")
	}
	if plan.Node != cold {
		t.Fatalf("rebalance adjusted %v, want cold node %v", plan.Node, cold)
	}
	if nw := sm.pmap.Ring().Weight(cold); nw <= w {
		t.Fatalf("cold node weight %d -> %d; expected growth", w, nw)
	}
	for _, l := range sm.PartitionLoads() {
		if l != 0 {
			t.Fatal("load counters must reset after a rebalance plan")
		}
	}
	executePlan(sm, plan)
	if sm.HandoffPending() != 0 {
		t.Fatal("rebalance windows left open")
	}
	for _, id := range ids {
		holders := sm.Holders(id)
		if len(holders) != 2 {
			t.Fatalf("doc %v holders = %v after rebalance", id, holders)
		}
		for _, h := range holders {
			if _, err := ma.FetchVersions(h, id); err != nil {
				t.Errorf("doc %v missing on holder %v after rebalance: %v", id, h, err)
			}
		}
	}
	// Balanced load (after reset) must not trigger another adjustment.
	if again := sm.PlanRebalance(2.0, nodes); again != nil {
		t.Error("balanced load produced a rebalance plan")
	}
}
