// Package virt implements compute and storage resource virtualization
// (paper §3.4): nodes are pooled into *resource groups* with assigned
// roles, *brokers* transfer resources between groups on failure or load
// ("when a group reports the failure or loss of a resource, it can
// contact a broker to help it acquire resources from some other group
// that is willing to relinquish them"), and *storage management* assigns
// replication by data class ("some data, especially data users have
// added, will require high reliability... other data can be re-created
// with varying amounts of effort, such as data derived by analytics").
//
// Ownership boundary: virt owns *placement truth* for the whole
// appliance. The consistent-hash ring (ring.go), the partition map with
// its open dual-ownership windows and generations (partition.go), the
// doc → data-class registry, the partition → docs index, and the
// per-partition load counters (storagemgr.go) live here and nowhere
// else. Everything a reader needs to answer "who holds this document",
// "who answers for this partition", or "is this partition mid-hand-off"
// is derived from this package's state: hash(DocID) → partition → ring
// owners, truncated to the class's replication factor, with reads
// routed to the pre-change owners while a partition's window is open
// and writes covering both sides. The core engine orchestrates data
// movement and indexing *against* these answers but records no
// placement of its own; per-node indexes key their postings by the same
// DocPartition function but hold only derived state.
package virt

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"impliance/internal/fabric"
)

// Role is the service a resource group provides (paper §3.4: groups "act
// together in the role of cluster service, grid service, or data storage
// service").
type Role uint8

// Group roles.
const (
	RoleData Role = iota
	RoleGrid
	RoleCluster
)

var roleNames = [...]string{"data", "grid", "cluster"}

// String names the role.
func (r Role) String() string {
	if int(r) < len(roleNames) {
		return roleNames[r]
	}
	return "role?"
}

// Group is a resource group: a set of nodes acting in one role, managing
// itself against a target size.
type Group struct {
	Name string
	Role Role
	// MinSize is the membership below which the group petitions the
	// broker; it will not relinquish members at or below MinSize.
	MinSize int

	mu      sync.Mutex
	members map[fabric.NodeID]struct{}
}

// NewGroup creates a group with initial members.
func NewGroup(name string, role Role, minSize int, members ...fabric.NodeID) *Group {
	g := &Group{Name: name, Role: role, MinSize: minSize, members: map[fabric.NodeID]struct{}{}}
	for _, m := range members {
		g.members[m] = struct{}{}
	}
	return g
}

// Members lists the group's nodes, sorted.
func (g *Group) Members() []fabric.NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]fabric.NodeID, 0, len(g.members))
	for m := range g.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Num < out[j].Num
	})
	return out
}

// Size returns the current membership count.
func (g *Group) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// Add inserts a member.
func (g *Group) Add(id fabric.NodeID) {
	g.mu.Lock()
	g.members[id] = struct{}{}
	g.mu.Unlock()
}

// Remove drops a member, reporting whether it was present.
func (g *Group) Remove(id fabric.NodeID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[id]; !ok {
		return false
	}
	delete(g.members, id)
	return true
}

// relinquish gives up one member if the group is willing (above MinSize).
func (g *Group) relinquish() (fabric.NodeID, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.members) <= g.MinSize {
		return fabric.NodeID{}, false
	}
	// Give up the highest-numbered member (deterministic).
	var victim fabric.NodeID
	found := false
	for m := range g.members {
		if !found || m.Num > victim.Num {
			victim, found = m, true
		}
	}
	delete(g.members, victim)
	return victim, true
}

// Broker mediates resource transfer between groups and a spare pool.
type Broker struct {
	mu     sync.Mutex
	groups map[string]*Group
	spares []fabric.NodeID

	// Transfers counts successful reassignments (experiment metric).
	Transfers int
}

// NewBroker creates an empty broker.
func NewBroker() *Broker { return &Broker{groups: map[string]*Group{}} }

// AddGroup registers a group with the broker.
func (b *Broker) AddGroup(g *Group) {
	b.mu.Lock()
	b.groups[g.Name] = g
	b.mu.Unlock()
}

// Offer contributes a fresh node to the spare pool (paper §3.4: "when new
// compute or storage resources are added, brokers offer these resources
// to the groups that will make best use of them").
func (b *Broker) Offer(id fabric.NodeID) {
	b.mu.Lock()
	b.spares = append(b.spares, id)
	b.mu.Unlock()
}

// Spares returns the free-pool size.
func (b *Broker) Spares() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.spares)
}

// ErrNoResources is returned when neither spares nor donors can help.
var ErrNoResources = errors.New("virt: no resources available")

// RequestReplacement handles a group's report of a lost node: the dead
// member is removed and a replacement is acquired from the spare pool or,
// failing that, from a willing donor group of the same role.
func (b *Broker) RequestReplacement(groupName string, lost fabric.NodeID) (fabric.NodeID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.groups[groupName]
	if !ok {
		return fabric.NodeID{}, fmt.Errorf("virt: unknown group %q", groupName)
	}
	g.Remove(lost)

	// Prefer a spare of the matching node kind.
	for i, s := range b.spares {
		if matchesRole(s.Kind, g.Role) {
			b.spares = append(b.spares[:i], b.spares[i+1:]...)
			g.Add(s)
			b.Transfers++
			return s, nil
		}
	}
	// Ask same-role donors, most populated first.
	var donors []*Group
	for _, other := range b.groups {
		if other != g && other.Role == g.Role {
			donors = append(donors, other)
		}
	}
	sort.Slice(donors, func(i, j int) bool {
		if donors[i].Size() != donors[j].Size() {
			return donors[i].Size() > donors[j].Size()
		}
		return donors[i].Name < donors[j].Name
	})
	for _, d := range donors {
		if id, ok := d.relinquish(); ok {
			g.Add(id)
			b.Transfers++
			return id, nil
		}
	}
	return fabric.NodeID{}, ErrNoResources
}

func matchesRole(kind fabric.NodeKind, role Role) bool {
	switch role {
	case RoleData:
		return kind == fabric.Data
	case RoleGrid:
		return kind == fabric.Grid
	case RoleCluster:
		return kind == fabric.Cluster
	}
	return false
}

// DataClass drives the replication policy (paper §3.4's storage
// management taxonomy).
type DataClass uint8

// Data classes.
const (
	// ClassUser is user-added data: high reliability.
	ClassUser DataClass = iota
	// ClassDerived is analytics output: re-creatable, minimal replication.
	ClassDerived
	// ClassRegulatory is compliance-mandated data: maximal protection.
	ClassRegulatory
)

var classNames = [...]string{"user", "derived", "regulatory"}

// String names the class.
func (c DataClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// ReplicationPolicy maps data classes to replica counts.
type ReplicationPolicy struct {
	Factor map[DataClass]int
}

// DefaultPolicy is the appliance's autonomic default: user data 2x,
// derived data 1x (recreatable), regulatory data 3x.
func DefaultPolicy() ReplicationPolicy {
	return ReplicationPolicy{Factor: map[DataClass]int{
		ClassUser:       2,
		ClassDerived:    1,
		ClassRegulatory: 3,
	}}
}

// FactorFor returns the replica count for a class (minimum 1).
func (p ReplicationPolicy) FactorFor(c DataClass) int {
	if f, ok := p.Factor[c]; ok && f > 0 {
		return f
	}
	return 1
}
