package virt

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"sync"

	"impliance/internal/fabric"
)

// Ring is a consistent-hash ring over data nodes (paper §3.4: storage
// management decides placement inside the appliance; clients never see
// it). Each node projects vnodes points onto a 64-bit circle, so removing
// one node redistributes only that node's arcs to its clockwise
// successors — the property that keeps replica sets stable when an
// unrelated node dies, which round-robin placement cannot offer.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []ringPoint // sorted ascending by hash
	weights map[fabric.NodeID]int
}

type ringPoint struct {
	hash uint64
	node fabric.NodeID
}

// DefaultVnodes is the virtual-node count per physical node: enough to
// even out arc lengths at appliance scale (tens of nodes) while keeping
// membership changes cheap.
const DefaultVnodes = 64

// NewRing creates an empty ring. vnodes <= 0 selects DefaultVnodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, weights: map[fabric.NodeID]int{}}
}

// Add inserts a node's vnode points at the default weight. Adding a
// present node is a no-op.
func (r *Ring) Add(n fabric.NodeID) { r.AddWeighted(n, 0) }

// AddWeighted inserts a node with an explicit vnode count — its ring
// weight, proportional to the share of the keyspace it attracts. vnodes
// <= 0 selects the ring default. Adding a present node is a no-op (use
// SetWeight to change an existing node's weight).
func (r *Ring) AddWeighted(n fabric.NodeID, vnodes int) {
	if vnodes <= 0 {
		vnodes = r.vnodes
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.weights[n]; ok {
		return
	}
	r.setWeightLocked(n, vnodes)
}

// SetWeight changes a member's vnode count, reporting whether the node
// was present. Vnode points are derived from (node, index), so shrinking
// a weight removes a stable suffix of the node's points and growing it
// adds new ones — movement is proportional to the weight delta only.
func (r *Ring) SetWeight(n fabric.NodeID, vnodes int) bool {
	if vnodes <= 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.weights[n]; !ok {
		return false
	}
	r.setWeightLocked(n, vnodes)
	return true
}

// setWeightLocked rebuilds the node's points at the given weight.
func (r *Ring) setWeightLocked(n fabric.NodeID, vnodes int) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != n {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.weights[n] = vnodes
	for i := 0; i < vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(n, i), node: n})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Weight returns a member's vnode count (0 if absent).
func (r *Ring) Weight(n fabric.NodeID) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.weights[n]
}

// DefaultWeight returns the ring's default vnode count per node.
func (r *Ring) DefaultWeight() int { return r.vnodes }

// Remove drops a node and its points, reporting whether it was present.
func (r *Ring) Remove(n fabric.NodeID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.weights[n]; !ok {
		return false
	}
	delete(r.weights, n)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != n {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Contains reports ring membership.
func (r *Ring) Contains(n fabric.NodeID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.weights[n]
	return ok
}

// Size returns the number of physical nodes on the ring.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.weights)
}

// Nodes lists ring members in deterministic (Kind, Num) order.
func (r *Ring) Nodes() []fabric.NodeID {
	r.mu.RLock()
	out := make([]fabric.NodeID, 0, len(r.weights))
	for n := range r.weights {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Num < out[j].Num
	})
	return out
}

// Successors walks clockwise from key and returns the first n distinct
// nodes. n <= 0 or n beyond the membership returns every node, ordered by
// ring position.
func (r *Ring) Successors(key uint64, n int) []fabric.NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.weights) {
		n = len(r.weights)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]fabric.NodeID, 0, n)
	seen := map[fabric.NodeID]struct{}{}
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// vnodeHash positions one virtual node on the circle.
func vnodeHash(n fabric.NodeID, vnode int) uint64 {
	h := fnv.New64a()
	var buf [17]byte
	buf[0] = byte(n.Kind)
	binary.BigEndian.PutUint64(buf[1:9], uint64(n.Num))
	binary.BigEndian.PutUint64(buf[9:17], uint64(vnode))
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style avalanche finalizer. FNV over inputs that
// differ only in trailing bytes yields clustered values — a node's vnodes
// would form one contiguous arc, defeating the ring — so every routing
// hash is passed through this mixer to scatter them.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
