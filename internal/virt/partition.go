package virt

import (
	"encoding/binary"
	"hash/fnv"
	"slices"
	"sync"

	"impliance/internal/docmodel"
	"impliance/internal/fabric"
)

// PartitionMap divides the document-ID space into a fixed number of
// partitions and assigns each partition an ordered replica set — the
// partition's owners — by walking the consistent-hash ring. Placement
// state is O(partitions), not O(documents): a document's holders are
// hash(DocID) → partition → owners, recomputed from the map on every
// lookup, so point operations route instead of broadcasting and a
// membership change rewrites at most the dead node's share of partitions.
type PartitionMap struct {
	mu        sync.RWMutex
	ring      *Ring
	parts     int
	maxOwners int
	owners    [][]fabric.NodeID // per partition, ring-successor order

	// pending tracks partitions inside a dual-ownership hand-off window:
	// a membership addition (or weight change) has rewritten owners, but
	// the data has not caught up yet. Until CompleteHandoff closes the
	// window, reads keep routing to the pre-change owners (whose copies
	// are complete) while writes cover both sets. gen fences stale
	// completions when windows stack on the same partition.
	pending map[int]*handoffState
	gen     uint64

	// pgens holds one generation counter per partition, advanced whenever
	// that partition's read routing may have changed: its owner set was
	// rewritten, a hand-off window opened, re-armed, or closed, or a dead
	// node was purged from its window. The global gen fences whole-map
	// plans; pgens fence per-partition state such as cached reads — an
	// entry stamped with a partition's generation is provably from the
	// current routing epoch of that partition only.
	pgens []uint64
}

// handoffState is one partition's open hand-off window.
type handoffState struct {
	owners []fabric.NodeID // pre-change owner set; reads route here
	gen    uint64          // generation of the latest membership change
}

// HandoffWindow describes one partition's freshly opened (or re-armed)
// dual-ownership window, returned by membership additions so callers can
// plan and execute the catch-up work.
type HandoffWindow struct {
	Partition int
	Gen       uint64
	OldOwners []fabric.NodeID
}

// DefaultPartitions balances granularity (rebalance unit ≈ corpus/parts)
// against map size. Appliance-scale node counts stay well below it.
const DefaultPartitions = 128

// NewPartitionMap creates an empty map. parts <= 0 selects
// DefaultPartitions; maxOwners <= 0 selects 3 (the widest default
// replication factor); vnodes is forwarded to the ring.
func NewPartitionMap(parts, maxOwners, vnodes int) *PartitionMap {
	if parts <= 0 {
		parts = DefaultPartitions
	}
	if maxOwners <= 0 {
		maxOwners = 3
	}
	return &PartitionMap{
		ring:      NewRing(vnodes),
		parts:     parts,
		maxOwners: maxOwners,
		owners:    make([][]fabric.NodeID, parts),
		pending:   map[int]*handoffState{},
		pgens:     make([]uint64, parts),
	}
}

// Partitions returns the partition count.
func (pm *PartitionMap) Partitions() int { return pm.parts }

// Ring exposes the underlying ring (schedulers consult it for
// data-affine placement).
func (pm *PartitionMap) Ring() *Ring { return pm.ring }

// SetNodes resets membership to exactly the given nodes and recomputes
// every partition's owners. Any open hand-off windows are discarded: this
// is the boot-time installer, not an incremental change.
func (pm *PartitionMap) SetNodes(nodes []fabric.NodeID) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	for _, n := range pm.ring.Nodes() {
		pm.ring.Remove(n)
	}
	for _, n := range nodes {
		pm.ring.Add(n)
	}
	for p := range pm.pending {
		pm.pgens[p]++ // discarded window: read routing flips to current owners
	}
	pm.pending = map[int]*handoffState{}
	pm.recomputeLocked()
}

// AddNode joins a node to the ring and returns the partitions whose owner
// set changed.
func (pm *PartitionMap) AddNode(n fabric.NodeID) []int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.ring.Contains(n) {
		return nil
	}
	pm.ring.Add(n)
	pm.gen++
	return pm.recomputeLocked()
}

// Generation returns the membership-change generation: a counter that
// advances whenever owner sets may have changed (node addition or
// removal, window opening or re-arming). Readers that plan work against
// a snapshot of the map re-read it after acting to detect a concurrent
// change and re-plan.
func (pm *PartitionMap) Generation() uint64 {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	return pm.gen
}

// BeginJoin adds a node to the ring and opens a dual-ownership window on
// every partition whose owner set changed: reads keep routing to the
// pre-join owners until the partition's catch-up completes, writes cover
// both sets. Returns the opened windows and whether the node was actually
// added (false = already a member, no windows opened). A changed
// partition that previously had no owners gets no window — there is
// nothing to hand off from.
func (pm *PartitionMap) BeginJoin(n fabric.NodeID) ([]HandoffWindow, bool) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.ring.Contains(n) {
		return nil, false
	}
	before := make([][]fabric.NodeID, pm.parts)
	copy(before, pm.owners)
	pm.ring.Add(n)
	return pm.openWindowsLocked(before, pm.recomputeLocked()), true
}

// SetNodeWeight changes a member's ring weight (vnode count) and opens
// dual-ownership windows on the partitions whose owner set changed,
// exactly like BeginJoin. Returns nil if the node is absent or the weight
// is unchanged.
func (pm *PartitionMap) SetNodeWeight(n fabric.NodeID, vnodes int) []HandoffWindow {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.ring.Weight(n) == vnodes {
		return nil
	}
	before := make([][]fabric.NodeID, pm.parts)
	copy(before, pm.owners)
	if !pm.ring.SetWeight(n, vnodes) {
		return nil
	}
	return pm.openWindowsLocked(before, pm.recomputeLocked())
}

// openWindowsLocked arms a hand-off window for each changed partition.
// A partition already mid-hand-off keeps its original (most complete)
// read owners and is re-armed under the new generation, so only the
// latest change's catch-up can close it.
func (pm *PartitionMap) openWindowsLocked(before [][]fabric.NodeID, changed []int) []HandoffWindow {
	pm.gen++
	var windows []HandoffWindow
	for _, p := range changed {
		old := before[p]
		if st, ok := pm.pending[p]; ok {
			st.gen = pm.gen
			old = st.owners
		} else {
			if len(old) == 0 {
				continue // first owners ever: nothing to hand off
			}
			pm.pending[p] = &handoffState{owners: old, gen: pm.gen}
		}
		windows = append(windows, HandoffWindow{Partition: p, Gen: pm.gen, OldOwners: append([]fabric.NodeID{}, old...)})
	}
	return windows
}

// CompleteHandoff closes a partition's dual-ownership window, reporting
// whether it actually closed. A stale generation (a newer membership
// change re-armed the window) is ignored: the newer change's catch-up
// owns the close.
func (pm *PartitionMap) CompleteHandoff(p int, gen uint64) bool {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	st, ok := pm.pending[p]
	if !ok || st.gen != gen {
		return false
	}
	delete(pm.pending, p)
	pm.pgens[p]++ // reads flip from the pre-change owners to the new set
	return true
}

// PartitionGen returns the partition's routing generation (see pgens).
// Cached per-partition state stamped with this value is invalid the
// moment the counter moves on: version writes are invalidated explicitly,
// membership movement implicitly through this fence.
func (pm *PartitionMap) PartitionGen(p int) uint64 {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	if p < 0 || p >= pm.parts {
		return 0
	}
	return pm.pgens[p]
}

// PendingHandoffs reports how many partitions are mid-hand-off.
func (pm *PartitionMap) PendingHandoffs() int {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	return len(pm.pending)
}

// InHandoff reports whether the partition's window is open.
func (pm *PartitionMap) InHandoff(p int) bool {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	_, ok := pm.pending[p]
	return ok
}

// RemoveNode drops a node from the ring and returns the partitions whose
// owner set changed (exactly the dead node's share — everything else is
// untouched, the consistent-hashing guarantee). The node is also purged
// from any open hand-off window's read-owner set — a dead node cannot
// serve the reads the window routes to it; a window left with no read
// owners closes immediately (reads fall through to the new owners).
// Surviving windows are re-armed under a fresh generation: the removal
// recomputed owner sets, so any in-flight catch-up's plan may now be
// incomplete (a promoted successor it never copies to) and must not be
// allowed to close the window — callers re-plan via PendingWindows.
func (pm *PartitionMap) RemoveNode(n fabric.NodeID) []int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if !pm.ring.Remove(n) {
		return nil
	}
	pm.gen++
	if len(pm.pending) > 0 {
		for p, st := range pm.pending {
			kept := st.owners[:0]
			for _, o := range st.owners {
				if o != n {
					kept = append(kept, o)
				}
			}
			st.owners = kept
			pm.pgens[p]++ // window closed or its read-owner set shrank
			if len(kept) == 0 {
				delete(pm.pending, p)
				continue
			}
			st.gen = pm.gen
		}
	}
	return pm.recomputeLocked()
}

// PendingWindows snapshots every open hand-off window (partition,
// current generation, read-side owners) so callers can re-plan catch-up
// after a membership event invalidated in-flight plans.
func (pm *PartitionMap) PendingWindows() []HandoffWindow {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	out := make([]HandoffWindow, 0, len(pm.pending))
	for p, st := range pm.pending {
		out = append(out, HandoffWindow{
			Partition: p,
			Gen:       st.gen,
			OldOwners: append([]fabric.NodeID{}, st.owners...),
		})
	}
	// Partition order, not map order: re-planned hand-offs must schedule
	// the same task sequence on every seeded replay.
	slices.SortFunc(out, func(a, b HandoffWindow) int { return a.Partition - b.Partition })
	return out
}

// recomputeLocked refreshes all owner lists, returning changed partitions.
func (pm *PartitionMap) recomputeLocked() []int {
	var changed []int
	for p := 0; p < pm.parts; p++ {
		next := pm.ring.Successors(partitionKey(p), pm.maxOwners)
		if !slices.Equal(pm.owners[p], next) {
			changed = append(changed, p)
			pm.pgens[p]++
		}
		pm.owners[p] = next
	}
	return changed
}

// Owners returns the partition's replica set in ring-successor order
// under the *current* ring: owners[0] is the primary, the rest are
// successors. Mid-hand-off this is the target set the data is moving
// onto, not necessarily where reads should go — see ReadOwners. The
// slice is a copy.
func (pm *PartitionMap) Owners(p int) []fabric.NodeID {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	if p < 0 || p >= pm.parts {
		return nil
	}
	return append([]fabric.NodeID{}, pm.owners[p]...)
}

// ReadOwners returns the owner set reads should route to: the pre-change
// owners while the partition's hand-off window is open (their copies are
// complete), the current owners otherwise. The slice is a copy.
func (pm *PartitionMap) ReadOwners(p int) []fabric.NodeID {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	if p < 0 || p >= pm.parts {
		return nil
	}
	if st, ok := pm.pending[p]; ok {
		return append([]fabric.NodeID{}, st.owners...)
	}
	return append([]fabric.NodeID{}, pm.owners[p]...)
}

// OwnersPair returns the read-side and target owner sets plus whether a
// hand-off window is open. When no window is open the two sets are equal.
// Both slices are copies.
func (pm *PartitionMap) OwnersPair(p int) (read, target []fabric.NodeID, pending bool) {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	if p < 0 || p >= pm.parts {
		return nil, nil, false
	}
	target = append([]fabric.NodeID{}, pm.owners[p]...)
	if st, ok := pm.pending[p]; ok {
		return append([]fabric.NodeID{}, st.owners...), target, true
	}
	return target, target, false
}

// PartitionOf maps a document ID to its partition. Versions of one
// document always land together (the hash covers Origin and Seq only).
func (pm *PartitionMap) PartitionOf(id docmodel.DocID) int {
	return DocPartition(id, pm.parts)
}

// DocPartition maps a document ID into a partition space of the given
// size — the pure function PartitionOf routes by, exported so per-node
// value indexes can key their postings identically without holding a
// partition map.
func DocPartition(id docmodel.DocID, parts int) int {
	return int(docKey(id) % uint64(parts))
}

// OwnerForKey returns the primary for an arbitrary routing key — the
// scheduler's view of the ring for data-affine task placement. Mid-
// hand-off the pre-change primary is reported (its data is complete).
func (pm *PartitionMap) OwnerForKey(key uint64) (fabric.NodeID, bool) {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	p := int(key % uint64(pm.parts))
	own := pm.owners[p]
	if st, ok := pm.pending[p]; ok {
		own = st.owners
	}
	if len(own) == 0 {
		return fabric.NodeID{}, false
	}
	return own[0], true
}

// docKey hashes a document ID onto the routing keyspace.
func docKey(id docmodel.DocID) uint64 {
	h := fnv.New64a()
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:4], id.Origin)
	binary.BigEndian.PutUint64(buf[4:12], id.Seq)
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// partitionKey positions a partition on the ring. Partitions hash like
// documents so vnode arcs split them evenly.
func partitionKey(p int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(p))
	h.Write(buf[:])
	return mix64(h.Sum64())
}
