package virt

import (
	"encoding/binary"
	"hash/fnv"
	"slices"
	"sync"

	"impliance/internal/docmodel"
	"impliance/internal/fabric"
)

// PartitionMap divides the document-ID space into a fixed number of
// partitions and assigns each partition an ordered replica set — the
// partition's owners — by walking the consistent-hash ring. Placement
// state is O(partitions), not O(documents): a document's holders are
// hash(DocID) → partition → owners, recomputed from the map on every
// lookup, so point operations route instead of broadcasting and a
// membership change rewrites at most the dead node's share of partitions.
type PartitionMap struct {
	mu        sync.RWMutex
	ring      *Ring
	parts     int
	maxOwners int
	owners    [][]fabric.NodeID // per partition, ring-successor order
}

// DefaultPartitions balances granularity (rebalance unit ≈ corpus/parts)
// against map size. Appliance-scale node counts stay well below it.
const DefaultPartitions = 128

// NewPartitionMap creates an empty map. parts <= 0 selects
// DefaultPartitions; maxOwners <= 0 selects 3 (the widest default
// replication factor); vnodes is forwarded to the ring.
func NewPartitionMap(parts, maxOwners, vnodes int) *PartitionMap {
	if parts <= 0 {
		parts = DefaultPartitions
	}
	if maxOwners <= 0 {
		maxOwners = 3
	}
	return &PartitionMap{
		ring:      NewRing(vnodes),
		parts:     parts,
		maxOwners: maxOwners,
		owners:    make([][]fabric.NodeID, parts),
	}
}

// Partitions returns the partition count.
func (pm *PartitionMap) Partitions() int { return pm.parts }

// Ring exposes the underlying ring (schedulers consult it for
// data-affine placement).
func (pm *PartitionMap) Ring() *Ring { return pm.ring }

// SetNodes resets membership to exactly the given nodes and recomputes
// every partition's owners.
func (pm *PartitionMap) SetNodes(nodes []fabric.NodeID) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	for _, n := range pm.ring.Nodes() {
		pm.ring.Remove(n)
	}
	for _, n := range nodes {
		pm.ring.Add(n)
	}
	pm.recomputeLocked()
}

// AddNode joins a node to the ring and returns the partitions whose owner
// set changed.
func (pm *PartitionMap) AddNode(n fabric.NodeID) []int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.ring.Contains(n) {
		return nil
	}
	pm.ring.Add(n)
	return pm.recomputeLocked()
}

// RemoveNode drops a node from the ring and returns the partitions whose
// owner set changed (exactly the dead node's share — everything else is
// untouched, the consistent-hashing guarantee).
func (pm *PartitionMap) RemoveNode(n fabric.NodeID) []int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if !pm.ring.Remove(n) {
		return nil
	}
	return pm.recomputeLocked()
}

// recomputeLocked refreshes all owner lists, returning changed partitions.
func (pm *PartitionMap) recomputeLocked() []int {
	var changed []int
	for p := 0; p < pm.parts; p++ {
		next := pm.ring.Successors(partitionKey(p), pm.maxOwners)
		if !slices.Equal(pm.owners[p], next) {
			changed = append(changed, p)
		}
		pm.owners[p] = next
	}
	return changed
}

// Owners returns the partition's replica set in ring-successor order:
// owners[0] is the primary, the rest are successors. The slice is a copy.
func (pm *PartitionMap) Owners(p int) []fabric.NodeID {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	if p < 0 || p >= pm.parts {
		return nil
	}
	return append([]fabric.NodeID{}, pm.owners[p]...)
}

// PartitionOf maps a document ID to its partition. Versions of one
// document always land together (the hash covers Origin and Seq only).
func (pm *PartitionMap) PartitionOf(id docmodel.DocID) int {
	return int(docKey(id) % uint64(pm.parts))
}

// OwnerForKey returns the primary for an arbitrary routing key — the
// scheduler's view of the ring for data-affine task placement.
func (pm *PartitionMap) OwnerForKey(key uint64) (fabric.NodeID, bool) {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	own := pm.owners[key%uint64(pm.parts)]
	if len(own) == 0 {
		return fabric.NodeID{}, false
	}
	return own[0], true
}

// docKey hashes a document ID onto the routing keyspace.
func docKey(id docmodel.DocID) uint64 {
	h := fnv.New64a()
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:4], id.Origin)
	binary.BigEndian.PutUint64(buf[4:12], id.Seq)
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// partitionKey positions a partition on the ring. Partitions hash like
// documents so vnode arcs split them evenly.
func partitionKey(p int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(p))
	h.Write(buf[:])
	return mix64(h.Sum64())
}
