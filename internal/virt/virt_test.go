package virt

import (
	"errors"
	"fmt"
	"slices"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/fabric"
)

func dataNode(n int) fabric.NodeID { return fabric.NodeID{Kind: fabric.Data, Num: n} }

func TestGroupMembership(t *testing.T) {
	g := NewGroup("dg1", RoleData, 1, dataNode(1), dataNode(2))
	if g.Size() != 2 {
		t.Errorf("size = %d", g.Size())
	}
	g.Add(dataNode(3))
	if !g.Remove(dataNode(1)) {
		t.Error("remove existing failed")
	}
	if g.Remove(dataNode(1)) {
		t.Error("remove missing should be false")
	}
	m := g.Members()
	if len(m) != 2 || m[0] != dataNode(2) || m[1] != dataNode(3) {
		t.Errorf("members = %v", m)
	}
}

func TestBrokerPrefersSpares(t *testing.T) {
	b := NewBroker()
	g := NewGroup("dg1", RoleData, 1, dataNode(1), dataNode(2))
	b.AddGroup(g)
	b.Offer(dataNode(10))
	b.Offer(fabric.NodeID{Kind: fabric.Grid, Num: 20}) // wrong kind spare

	got, err := b.RequestReplacement("dg1", dataNode(1))
	if err != nil {
		t.Fatal(err)
	}
	if got != dataNode(10) {
		t.Errorf("replacement = %v", got)
	}
	if g.Size() != 2 {
		t.Errorf("group size = %d", g.Size())
	}
	if b.Spares() != 1 {
		t.Errorf("spares = %d (grid spare must remain)", b.Spares())
	}
	if b.Transfers != 1 {
		t.Errorf("transfers = %d", b.Transfers)
	}
}

func TestBrokerBorrowsFromDonor(t *testing.T) {
	b := NewBroker()
	needy := NewGroup("needy", RoleData, 1, dataNode(1), dataNode(2))
	rich := NewGroup("rich", RoleData, 1, dataNode(5), dataNode(6), dataNode(7))
	gridG := NewGroup("grid", RoleGrid, 1, fabric.NodeID{Kind: fabric.Grid, Num: 1})
	b.AddGroup(needy)
	b.AddGroup(rich)
	b.AddGroup(gridG)

	got, err := b.RequestReplacement("needy", dataNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if got != dataNode(7) {
		t.Errorf("donor gave %v, want highest-numbered member", got)
	}
	if rich.Size() != 2 || needy.Size() != 2 {
		t.Errorf("sizes: rich=%d needy=%d", rich.Size(), needy.Size())
	}
}

func TestBrokerRespectsMinSize(t *testing.T) {
	b := NewBroker()
	needy := NewGroup("needy", RoleData, 1, dataNode(1))
	tight := NewGroup("tight", RoleData, 2, dataNode(5), dataNode(6))
	b.AddGroup(needy)
	b.AddGroup(tight)
	_, err := b.RequestReplacement("needy", dataNode(1))
	if !errors.Is(err, ErrNoResources) {
		t.Errorf("donor at MinSize must refuse: %v", err)
	}
	if tight.Size() != 2 {
		t.Error("tight group shrank")
	}
}

func TestBrokerUnknownGroup(t *testing.T) {
	b := NewBroker()
	if _, err := b.RequestReplacement("ghost", dataNode(1)); err == nil {
		t.Error("unknown group must fail")
	}
}

func TestReplicationPolicyFactors(t *testing.T) {
	p := DefaultPolicy()
	if p.FactorFor(ClassUser) != 2 || p.FactorFor(ClassDerived) != 1 || p.FactorFor(ClassRegulatory) != 3 {
		t.Error("default factors wrong")
	}
	var empty ReplicationPolicy
	if empty.FactorFor(ClassUser) != 1 {
		t.Error("missing policy should default to 1")
	}
}

// mapAccess is a test ReplicaAccess over in-memory maps.
type mapAccess struct {
	data map[fabric.NodeID]map[docmodel.DocID][]*docmodel.Document
}

func newMapAccess(nodes ...fabric.NodeID) *mapAccess {
	ma := &mapAccess{data: map[fabric.NodeID]map[docmodel.DocID][]*docmodel.Document{}}
	for _, n := range nodes {
		ma.data[n] = map[docmodel.DocID][]*docmodel.Document{}
	}
	return ma
}

func (ma *mapAccess) FetchVersions(node fabric.NodeID, id docmodel.DocID) ([]*docmodel.Document, error) {
	n, ok := ma.data[node]
	if !ok {
		return nil, fmt.Errorf("no node %v", node)
	}
	vs, ok := n[id]
	if !ok {
		return nil, fmt.Errorf("doc %v not on %v", id, node)
	}
	return vs, nil
}

func (ma *mapAccess) Install(node fabric.NodeID, doc *docmodel.Document) error {
	n, ok := ma.data[node]
	if !ok {
		return fmt.Errorf("no node %v", node)
	}
	n[doc.ID] = append(n[doc.ID], doc)
	return nil
}

func (ma *mapAccess) put(node fabric.NodeID, doc *docmodel.Document) {
	ma.data[node][doc.ID] = append(ma.data[node][doc.ID], doc)
}

func mkDoc(seq uint64) *docmodel.Document {
	return &docmodel.Document{
		ID: docmodel.DocID{Origin: 1, Seq: seq}, Version: 1,
		Root: docmodel.Object(docmodel.F("n", docmodel.Int(int64(seq)))),
	}
}

func TestPlaceDocHashRoutingAndFactor(t *testing.T) {
	nodes := []fabric.NodeID{dataNode(1), dataNode(2), dataNode(3)}
	sm := NewStorageManager(DefaultPolicy(), newMapAccess(nodes...))
	sm.SetDataNodes(nodes)
	primaries := map[fabric.NodeID]int{}
	for i := uint64(1); i <= 300; i++ {
		id := docmodel.DocID{Origin: 1, Seq: i}
		targets, err := sm.PlaceDoc(id, ClassUser)
		if err != nil {
			t.Fatal(err)
		}
		if len(targets) != 2 {
			t.Fatalf("user data RF = %d", len(targets))
		}
		if targets[0] == targets[1] {
			t.Error("replicas on same node")
		}
		// Placement is a pure function of the ID: once registered,
		// Holders must agree with the placement query.
		sm.Register(id, ClassUser)
		holders := sm.Holders(id)
		if len(holders) != 2 || holders[0] != targets[0] || holders[1] != targets[1] {
			t.Errorf("holders %v != placement %v", holders, targets)
		}
		primaries[targets[0]]++
	}
	for _, n := range nodes {
		if primaries[n] < 50 {
			t.Errorf("hash placement badly skewed: %v", primaries)
		}
	}
	// Derived data gets RF=1.
	targets, _ := sm.PlaceDoc(docmodel.DocID{Origin: 1, Seq: 1000}, ClassDerived)
	if len(targets) != 1 {
		t.Errorf("derived RF = %d", len(targets))
	}
	// Regulatory data gets RF=3.
	targets, _ = sm.PlaceDoc(docmodel.DocID{Origin: 1, Seq: 1001}, ClassRegulatory)
	if len(targets) != 3 {
		t.Errorf("regulatory RF = %d", len(targets))
	}
	// RF capped by cluster size.
	tiny := NewStorageManager(DefaultPolicy(), newMapAccess(dataNode(1)))
	tiny.SetDataNodes([]fabric.NodeID{dataNode(1)})
	targets, _ = tiny.PlaceDoc(docmodel.DocID{Origin: 1, Seq: 1}, ClassRegulatory)
	if len(targets) != 1 {
		t.Errorf("capped RF = %d", len(targets))
	}
	empty := NewStorageManager(DefaultPolicy(), newMapAccess())
	if _, err := empty.PlaceDoc(docmodel.DocID{Origin: 1, Seq: 1}, ClassUser); err == nil {
		t.Error("no nodes must fail")
	}
	// Unregistered documents have no holders.
	if sm.Holders(docmodel.DocID{Origin: 9, Seq: 9}) != nil {
		t.Error("unregistered doc must have nil holders")
	}
}

func TestHolderStabilityUnderUnrelatedFailure(t *testing.T) {
	nodes := []fabric.NodeID{dataNode(1), dataNode(2), dataNode(3), dataNode(4), dataNode(5)}
	ma := newMapAccess(nodes...)
	sm := NewStorageManager(DefaultPolicy(), ma)
	sm.SetDataNodes(nodes)
	before := map[docmodel.DocID][]fabric.NodeID{}
	for i := uint64(1); i <= 200; i++ {
		d := mkDoc(i)
		targets, err := sm.PlaceDoc(d.ID, ClassUser)
		if err != nil {
			t.Fatal(err)
		}
		sm.Register(d.ID, ClassUser)
		for _, n := range targets {
			ma.put(n, d)
		}
		before[d.ID] = targets
	}
	dead := dataNode(3)
	alive := []fabric.NodeID{dataNode(1), dataNode(2), dataNode(4), dataNode(5)}
	if _, err := sm.HandleNodeFailure(dead, alive); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for id, old := range before {
		now := sm.Holders(id)
		if slices.Contains(old, dead) {
			moved++
			continue
		}
		if !slices.Equal(old, now) {
			t.Errorf("doc %v holders changed %v -> %v though %v held no replica", id, old, now, dead)
		}
	}
	if moved == 0 {
		t.Fatal("dead node held nothing; placement broken")
	}
	if moved == len(before) {
		t.Error("every doc moved; ring reassignment not incremental")
	}
}

func TestHandleNodeFailureRepairs(t *testing.T) {
	nodes := []fabric.NodeID{dataNode(1), dataNode(2), dataNode(3)}
	ma := newMapAccess(nodes...)
	sm := NewStorageManager(DefaultPolicy(), ma)
	sm.SetDataNodes(nodes)

	// Place 50 user docs; write them into the map store accordingly.
	for i := uint64(1); i <= 50; i++ {
		d := mkDoc(i)
		targets, err := sm.PlaceDoc(d.ID, ClassUser)
		if err != nil {
			t.Fatal(err)
		}
		sm.Register(d.ID, ClassUser)
		for _, n := range targets {
			ma.put(n, d)
		}
	}
	dead := dataNode(1)
	affected := sm.DocsOn(dead)
	if len(affected) == 0 {
		t.Fatal("dead node held nothing; placement broken")
	}
	alive := []fabric.NodeID{dataNode(2), dataNode(3)}
	repaired, err := sm.HandleNodeFailure(dead, alive)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != len(affected) {
		t.Errorf("repaired %d, want %d", repaired, len(affected))
	}
	if sm.Unrepaired != 0 {
		t.Errorf("unrepaired = %d", sm.Unrepaired)
	}
	// Every doc is back at RF=2 on alive nodes only.
	for i := uint64(1); i <= 50; i++ {
		id := docmodel.DocID{Origin: 1, Seq: i}
		holders := sm.Holders(id)
		if len(holders) != 2 {
			t.Errorf("doc %v holders = %v", id, holders)
		}
		for _, h := range holders {
			if h == dead {
				t.Errorf("doc %v still placed on dead node", id)
			}
			if _, err := ma.FetchVersions(h, id); err != nil {
				t.Errorf("doc %v not actually present on %v", id, h)
			}
		}
	}
	if len(sm.UnderReplicated()) != 0 {
		t.Error("docs remain under-replicated")
	}
}

func TestHandleNodeFailureDerivedDataLost(t *testing.T) {
	nodes := []fabric.NodeID{dataNode(1), dataNode(2)}
	ma := newMapAccess(nodes...)
	sm := NewStorageManager(DefaultPolicy(), ma)
	sm.SetDataNodes(nodes)
	d := mkDoc(1)
	targets, err := sm.PlaceDoc(d.ID, ClassDerived) // RF=1
	if err != nil {
		t.Fatal(err)
	}
	sm.Register(d.ID, ClassDerived)
	ma.put(targets[0], d)

	var survivor fabric.NodeID
	for _, n := range nodes {
		if n != targets[0] {
			survivor = n
		}
	}
	repaired, err := sm.HandleNodeFailure(targets[0], []fabric.NodeID{survivor})
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 0 {
		t.Error("derived single-replica doc cannot be repaired")
	}
	if sm.Unrepaired != 1 {
		t.Errorf("unrepaired = %d, want 1 (recreatable loss)", sm.Unrepaired)
	}
	if len(sm.UnderReplicated()) != 1 {
		t.Errorf("lost doc must be reported under-replicated")
	}
}

func TestHandleFailureCopiesAllVersions(t *testing.T) {
	nodes := []fabric.NodeID{dataNode(1), dataNode(2), dataNode(3)}
	ma := newMapAccess(nodes...)
	sm := NewStorageManager(DefaultPolicy(), ma)
	sm.SetDataNodes(nodes)
	d1 := mkDoc(1)
	d2 := mkDoc(1)
	d2.Version = 2
	targets, err := sm.PlaceDoc(d1.ID, ClassUser)
	if err != nil {
		t.Fatal(err)
	}
	sm.Register(d1.ID, ClassUser)
	for _, n := range targets {
		ma.put(n, d1)
		ma.put(n, d2)
	}
	dead := targets[0]
	var alive []fabric.NodeID
	for _, n := range nodes {
		if n != dead {
			alive = append(alive, n)
		}
	}
	if _, err := sm.HandleNodeFailure(dead, alive); err != nil {
		t.Fatal(err)
	}
	holders := sm.Holders(d1.ID)
	if len(holders) != 2 {
		t.Fatalf("holders after repair = %v", holders)
	}
	for _, h := range holders {
		vs, err := ma.FetchVersions(h, d1.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 2 {
			t.Errorf("versions on %v = %d, want 2 (audit history preserved)", h, len(vs))
		}
	}
}
