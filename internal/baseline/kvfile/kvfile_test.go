package kvfile

import (
	"errors"
	"testing"
	"time"
)

func TestPutGetOverwrite(t *testing.T) {
	s := New()
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s.Put("/docs/a.txt", []byte("v1"), t0)
	s.Put("/docs/a.txt", []byte("v2"), t0.Add(time.Hour))
	got, err := s.Get("/docs/a.txt")
	if err != nil || string(got) != "v2" {
		t.Errorf("get: %q %v", got, err)
	}
	if s.Len() != 1 {
		t.Error("overwrite should not duplicate (no versioning — that's the point)")
	}
	if _, err := s.Get("/nope"); err == nil {
		t.Error("missing file must fail")
	}
}

func TestMetadataSearchOnly(t *testing.T) {
	s := New()
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s.Put("/claims/2026/c1.pdf", []byte("fraud keywords inside content"), t0)
	s.Put("/claims/2026/c2.pdf", []byte("benign"), t0.Add(2*time.Hour))
	s.Put("/hr/handbook.pdf", []byte("x"), t0)

	byName := s.FindByName("claims")
	if len(byName) != 2 {
		t.Errorf("FindByName = %v", byName)
	}
	since := s.FindModifiedSince(t0.Add(time.Hour))
	if len(since) != 1 || since[0].Path != "/claims/2026/c2.pdf" {
		t.Errorf("FindModifiedSince = %v", since)
	}
	// Content is invisible to search — the paper's point about file
	// systems as repositories of last resort.
	if err := s.ContentSearch("fraud"); !errors.Is(err, ErrUnsupported) {
		t.Error("content search must be unsupported")
	}
	if err := s.Join(); !errors.Is(err, ErrUnsupported) {
		t.Error("join must be unsupported")
	}
	if err := s.Aggregate(); !errors.Is(err, ErrUnsupported) {
		t.Error("aggregate must be unsupported")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put("/a", []byte("abc"), time.Now())
	got, _ := s.Get("/a")
	got[0] = 'X'
	again, _ := s.Get("/a")
	if string(again) != "abc" {
		t.Error("Get must return a defensive copy")
	}
}
