// Package kvfile is the file-server comparator for experiment E6 (paper
// Figure 4's NetApp corner): a plain "bag of bytes" repository. It scales
// trivially and stores anything, but — exactly as the paper says of file
// systems ("a 'repository of last resort'... without the powerful
// querying capability we take for granted in databases") — search reaches
// only file metadata, never content.
package kvfile

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrUnsupported marks capabilities a file server does not have.
var ErrUnsupported = errors.New("kvfile: operation not supported by a file store")

// FileInfo is the queryable metadata of one stored object.
type FileInfo struct {
	Path    string
	Size    int64
	ModTime time.Time
}

// Store is an in-memory file server.
type Store struct {
	mu    sync.RWMutex
	files map[string]*file
}

type file struct {
	info FileInfo
	data []byte
}

// New creates an empty store.
func New() *Store { return &Store{files: map[string]*file{}} }

// Put stores bytes at a path (overwriting — no versioning).
func (s *Store) Put(path string, data []byte, modTime time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := append([]byte{}, data...)
	s.files[path] = &file{
		info: FileInfo{Path: path, Size: int64(len(cp)), ModTime: modTime},
		data: cp,
	}
}

// Get retrieves bytes by exact path — the "unique identifier that is
// magically known by the requestor" retrieval mode of paper §2.2.
func (s *Store) Get(path string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("kvfile: %s not found", path)
	}
	return append([]byte{}, f.data...), nil
}

// Len returns the number of stored files.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// FindByName searches metadata only: substring match on path.
func (s *Store) FindByName(substr string) []FileInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []FileInfo
	for _, f := range s.files {
		if strings.Contains(f.info.Path, substr) {
			out = append(out, f.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// FindModifiedSince searches metadata only: files modified after t.
func (s *Store) FindModifiedSince(t time.Time) []FileInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []FileInfo
	for _, f := range s.files {
		if f.info.ModTime.After(t) {
			out = append(out, f.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ContentSearch is not a file-server capability.
func (s *Store) ContentSearch(string) error { return ErrUnsupported }

// Join is not a file-server capability.
func (s *Store) Join() error { return ErrUnsupported }

// Aggregate is not a file-server capability.
func (s *Store) Aggregate() error { return ErrUnsupported }
