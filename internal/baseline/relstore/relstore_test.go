package relstore

import (
	"errors"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/ingest"
)

func custSchema() []ingest.Column {
	return []ingest.Column{
		{Name: "id", Type: ingest.ColInt},
		{Name: "name", Type: ingest.ColString},
		{Name: "region", Type: ingest.ColString},
	}
}

func seededDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if err := db.CreateTable("customers", custSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		err := db.Insert("customers", []any{int64(i), "cust", []string{"e", "w"}[i%2]})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateTable("orders", []ingest.Column{
		{Name: "oid", Type: ingest.ColInt},
		{Name: "cust_id", Type: ingest.ColInt},
		{Name: "amount", Type: ingest.ColFloat},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Insert("orders", []any{int64(i), int64(i % 100), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCreateTableAndInsert(t *testing.T) {
	db := seededDB(t)
	n, err := db.RowCount("customers")
	if err != nil || n != 100 {
		t.Errorf("rows = %d, %v", n, err)
	}
	if err := db.CreateTable("customers", custSchema()); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate table: %v", err)
	}
	if err := db.Insert("ghost", nil); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing table: %v", err)
	}
	if err := db.Insert("customers", []any{int64(1)}); !errors.Is(err, ErrSchema) {
		t.Errorf("schema violation: %v", err)
	}
}

func TestSelectWithAndWithoutIndex(t *testing.T) {
	db := seededDB(t)
	filter := expr.Cmp("/region", expr.OpEq, docmodel.String("e"))
	rows, err := db.Select("customers", filter)
	if err != nil || len(rows) != 50 {
		t.Fatalf("scan select: %d, %v", len(rows), err)
	}
	if err := db.CreateIndex("customers", "region"); err != nil {
		t.Fatal(err)
	}
	rows, err = db.Select("customers", filter)
	if err != nil || len(rows) != 50 {
		t.Fatalf("indexed select: %d, %v", len(rows), err)
	}
	// Residual conjuncts still apply on the index path.
	rows, _ = db.Select("customers", expr.And(filter, expr.Cmp("/id", expr.OpLt, docmodel.Int(10))))
	if len(rows) != 5 {
		t.Errorf("residual filter: %d", len(rows))
	}
	if err := db.CreateIndex("customers", "nope"); err == nil {
		t.Error("index on missing column must fail")
	}
}

func TestJoin(t *testing.T) {
	db := seededDB(t)
	pairs, err := db.Join("orders", "cust_id", "customers", "id", expr.True(), expr.True())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 50 {
		t.Fatalf("join pairs = %d", len(pairs))
	}
	for _, p := range pairs {
		if p[0].Get("cust_id").IntVal() != p[1].Get("id").IntVal() {
			t.Error("join key mismatch")
		}
	}
}

func TestAggregate(t *testing.T) {
	db := seededDB(t)
	rows, err := db.Aggregate("customers", expr.True(), expr.GroupSpec{
		By:   []string{"/region"},
		Aggs: []expr.AggSpec{{Kind: expr.AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Aggs[0].IntVal() != 50 {
		t.Errorf("agg rows: %+v", rows)
	}
}

func TestCapabilityBoundaries(t *testing.T) {
	db := NewDB()
	if err := db.KeywordSearch("fraud", 10); !errors.Is(err, ErrUnsupported) {
		t.Error("keyword search must be unsupported")
	}
	if err := db.Connect("a", "b"); !errors.Is(err, ErrUnsupported) {
		t.Error("connection queries must be unsupported")
	}
	nested := &docmodel.Document{
		MediaType: ingest.MediaJSON,
		Root: docmodel.Object(docmodel.F("nested", docmodel.Object(
			docmodel.F("x", docmodel.Int(1))))),
	}
	if err := db.InsertDocument(nested); !errors.Is(err, ErrUnsupported) {
		t.Error("nested document must be rejected")
	}
}
