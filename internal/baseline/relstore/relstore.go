// Package relstore is the relational-only comparator used by experiment
// E6 (paper Figure 4's Netezza/Datallegro quadrant): a single-image
// engine that manages *only* schema-declared tables of typed rows. It is
// deliberately capable within that scope — typed columns, predicate
// filters, hash joins, grouped aggregation, secondary indexes — and
// deliberately incapable outside it: no schema-less ingestion, no keyword
// search over content, no nested documents, no annotations, no connection
// queries. The capability battery scores exactly these boundaries.
package relstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/ingest"
)

// Errors.
var (
	ErrNoTable     = errors.New("relstore: no such table")
	ErrSchema      = errors.New("relstore: row does not match schema")
	ErrUnsupported = errors.New("relstore: operation not supported by a relational-only engine")
	ErrTableExists = errors.New("relstore: table exists")
)

// DB is the relational engine.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
}

type table struct {
	name    string
	columns []ingest.Column
	rows    []docmodel.Value
	// indexes: column name -> sorted (value, rowIdx) pairs.
	indexes map[string][]indexEntry
}

type indexEntry struct {
	val docmodel.Value
	row int
}

// NewDB creates an empty relational store.
func NewDB() *DB { return &DB{tables: map[string]*table{}} }

// CreateTable declares a table schema — the up-front modelling step
// Impliance's stewing-pot ingestion avoids (and the TCO proxy counts).
func (db *DB) CreateTable(name string, columns []ingest.Column) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return fmt.Errorf("%w: %s", ErrTableExists, name)
	}
	if len(columns) == 0 {
		return fmt.Errorf("relstore: table %s needs columns", name)
	}
	db.tables[name] = &table{name: name, columns: columns, indexes: map[string][]indexEntry{}}
	return nil
}

// CreateIndex declares a secondary index on a column (another knob the
// TCO proxy counts).
func (db *DB) CreateIndex(tableName, column string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	if !t.hasColumn(column) {
		return fmt.Errorf("%w: column %s", ErrSchema, column)
	}
	entries := make([]indexEntry, 0, len(t.rows))
	for i, r := range t.rows {
		entries = append(entries, indexEntry{val: r.Get(column), row: i})
	}
	sortEntries(entries)
	t.indexes[column] = entries
	return nil
}

func (t *table) hasColumn(name string) bool {
	for _, c := range t.columns {
		if c.Name == name {
			return true
		}
	}
	return false
}

// Insert adds a row, enforcing the declared schema.
func (db *DB) Insert(tableName string, vals []any) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	row, err := ingest.Row(t.columns, vals)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSchema, err)
	}
	idx := len(t.rows)
	t.rows = append(t.rows, row)
	for col, entries := range t.indexes {
		entries = append(entries, indexEntry{val: row.Get(col), row: idx})
		sortEntries(entries)
		t.indexes[col] = entries
	}
	return nil
}

// InsertDocument rejects anything that is not a flat relational row — the
// capability boundary the battery probes.
func (db *DB) InsertDocument(d *docmodel.Document) error {
	for _, f := range d.Root.Fields() {
		switch f.Value.Kind() {
		case docmodel.KindObject, docmodel.KindArray, docmodel.KindRef:
			return fmt.Errorf("%w: nested or semi-structured data", ErrUnsupported)
		}
	}
	if d.MediaType != ingest.MediaRow {
		return fmt.Errorf("%w: media type %s", ErrUnsupported, d.MediaType)
	}
	return fmt.Errorf("%w: rows must be inserted into a declared table", ErrUnsupported)
}

// KeywordSearch is not a relational capability.
func (db *DB) KeywordSearch(string, int) error { return ErrUnsupported }

// Connect (graph connection queries) is not a relational capability.
func (db *DB) Connect(a, b string) error { return ErrUnsupported }

// rowFilter adapts expr predicates to rows (columns are root fields, so
// expr paths are "/col").
func rowDoc(row docmodel.Value) *docmodel.Document {
	return &docmodel.Document{Root: row}
}

// Select returns rows of the table matching the filter, using a column
// index when one applies to an equality conjunct.
func (db *DB) Select(tableName string, filter expr.Expr) ([]docmodel.Value, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	// Try an indexed equality access.
	for col, entries := range t.indexes {
		if v, ok := filter.EqualityOn("/" + col); ok {
			var out []docmodel.Value
			i := sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(v) >= 0 })
			for ; i < len(entries) && entries[i].val.Compare(v) == 0; i++ {
				row := t.rows[entries[i].row]
				if filter.Eval(rowDoc(row)) {
					out = append(out, row)
				}
			}
			return out, nil
		}
	}
	var out []docmodel.Value
	for _, row := range t.rows {
		if filter.Eval(rowDoc(row)) {
			out = append(out, row)
		}
	}
	return out, nil
}

// Join performs an equality hash join between two tables.
func (db *DB) Join(leftTable, leftCol, rightTable, rightCol string,
	leftFilter, rightFilter expr.Expr) ([][2]docmodel.Value, error) {
	left, err := db.Select(leftTable, leftFilter)
	if err != nil {
		return nil, err
	}
	right, err := db.Select(rightTable, rightFilter)
	if err != nil {
		return nil, err
	}
	ht := map[string][]docmodel.Value{}
	for _, r := range right {
		key := string(docmodel.EncodeValue(r.Get(rightCol)))
		ht[key] = append(ht[key], r)
	}
	var out [][2]docmodel.Value
	for _, l := range left {
		key := string(docmodel.EncodeValue(l.Get(leftCol)))
		for _, r := range ht[key] {
			out = append(out, [2]docmodel.Value{l, r})
		}
	}
	return out, nil
}

// Aggregate runs a grouped aggregation over a table.
func (db *DB) Aggregate(tableName string, filter expr.Expr, spec expr.GroupSpec) ([]expr.GroupRow, error) {
	rows, err := db.Select(tableName, filter)
	if err != nil {
		return nil, err
	}
	g := expr.NewGroupState(spec)
	for _, r := range rows {
		g.Update(rowDoc(r))
	}
	return g.Rows(), nil
}

// RowCount returns a table's cardinality.
func (db *DB) RowCount(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	return len(t.rows), nil
}

func sortEntries(entries []indexEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if c := entries[i].val.Compare(entries[j].val); c != 0 {
			return c < 0
		}
		return entries[i].row < entries[j].row
	})
}
