package costopt

import (
	"math"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/plan"
)

func uniformDocs(n int) []*docmodel.Document {
	docs := make([]*docmodel.Document, n)
	for i := 0; i < n; i++ {
		docs[i] = &docmodel.Document{
			ID: docmodel.DocID{Origin: 1, Seq: uint64(i + 1)}, Version: 1,
			Root: docmodel.Object(
				docmodel.F("v", docmodel.Int(int64(i))),
				docmodel.F("cat", docmodel.String([]string{"a", "b", "c", "d"}[i%4])),
			),
		}
	}
	return docs
}

func TestCollectStats(t *testing.T) {
	s := CollectStats(uniformDocs(1000))
	if s.Total != 1000 {
		t.Errorf("total = %d", s.Total)
	}
	vs := s.Paths["/v"]
	if vs == nil || vs.Docs != 1000 || vs.Distinct != 1000 {
		t.Fatalf("v stats = %+v", vs)
	}
	cs := s.Paths["/cat"]
	if cs.Distinct != 4 {
		t.Errorf("cat distinct = %d", cs.Distinct)
	}
	if len(vs.Bounds) == 0 {
		t.Error("histogram missing")
	}
}

func TestSelectivityEstimates(t *testing.T) {
	s := CollectStats(uniformDocs(1000))
	// Equality on cat: 1/4 of docs.
	sel := s.EstimateSelectivity(expr.Cmp("/cat", expr.OpEq, docmodel.String("a")))
	if math.Abs(sel-0.25) > 0.05 {
		t.Errorf("eq selectivity = %f, want ~0.25", sel)
	}
	// Range covering 10%.
	sel = s.EstimateSelectivity(expr.Cmp("/v", expr.OpLt, docmodel.Int(100)))
	if math.Abs(sel-0.1) > 0.07 {
		t.Errorf("range selectivity = %f, want ~0.1", sel)
	}
	// Conjunction multiplies.
	sel = s.EstimateSelectivity(expr.And(
		expr.Cmp("/cat", expr.OpEq, docmodel.String("a")),
		expr.Cmp("/v", expr.OpLt, docmodel.Int(100)),
	))
	if sel > 0.08 {
		t.Errorf("conjunctive selectivity = %f", sel)
	}
	// Unknown path assumed rare.
	if s.EstimateSelectivity(expr.Cmp("/nope", expr.OpEq, docmodel.Int(1))) > 0.05 {
		t.Error("unknown path should estimate rare")
	}
}

func TestOptimizerPicksIndexWhenSelective(t *testing.T) {
	s := CollectStats(uniformDocs(10000))
	o := NewOptimizer(s)
	// 1% range: index pays off.
	p := o.Plan(plan.Query{Filter: expr.Cmp("/v", expr.OpLt, docmodel.Int(100))})
	if p.Access.Kind != plan.AccessValueRange {
		t.Errorf("selective range should use index: %+v (%v)", p.Access, p.Explain)
	}
	// 90% range: scan pays off.
	p = o.Plan(plan.Query{Filter: expr.Cmp("/v", expr.OpLt, docmodel.Int(9000))})
	if p.Access.Kind != plan.AccessScan {
		t.Errorf("unselective range should scan: %+v (%v)", p.Access, p.Explain)
	}
}

func TestOptimizerMisledByStaleStats(t *testing.T) {
	// Stats built when /v spanned 0..9999; data later shifted to 0..99,
	// so "v < 100" now matches everything.
	stale := CollectStats(uniformDocs(10000))
	o := NewOptimizer(stale)
	p := o.Plan(plan.Query{Filter: expr.Cmp("/v", expr.OpLt, docmodel.Int(100))})
	if p.Access.Kind != plan.AccessValueRange {
		t.Fatalf("stale optimizer should (wrongly) pick the index: %v", p.Explain)
	}
	// This is the E7 mechanism: the plan index-fetches ~100% of documents
	// at random-access cost. The simple planner's scan never degrades.
}

func TestOptimizerJoinChoice(t *testing.T) {
	s := CollectStats(uniformDocs(10000))
	o := NewOptimizer(s)
	o.InnerCount = 10000
	j := &plan.JoinClause{LeftPath: "/cat", RightPath: "/id", RightFilter: expr.True()}
	// Tiny outer (top-k): INL.
	p := o.Plan(plan.Query{Filter: expr.True(), Join: j, K: 5})
	if p.Join != plan.JoinINL {
		t.Errorf("k=5 join = %s", p.Join)
	}
	// Huge outer: hash.
	p = o.Plan(plan.Query{Filter: expr.True(), Join: j})
	if p.Join != plan.JoinHash {
		t.Errorf("full join = %s", p.Join)
	}
}

func TestOptimizerKeywordPassThrough(t *testing.T) {
	o := NewOptimizer(CollectStats(uniformDocs(10)))
	p := o.Plan(plan.Query{Keyword: "x"})
	if p.Access.Kind != plan.AccessKeyword {
		t.Error("keyword access required")
	}
}

func TestEmptyStats(t *testing.T) {
	s := CollectStats(nil)
	if s.EstimateSelectivity(expr.True()) != 1 {
		t.Error("empty stats should estimate 1")
	}
	o := NewOptimizer(s)
	p := o.Plan(plan.Query{Filter: expr.Cmp("/v", expr.OpLt, docmodel.Int(5))})
	if p == nil {
		t.Fatal("plan must not be nil")
	}
}
