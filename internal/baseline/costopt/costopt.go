// Package costopt is the conventional cost-based optimizer that Impliance
// deliberately does *not* use (paper §3.3). It exists as the experimental
// comparator for the simple planner: it maintains per-path statistics
// (cardinalities, distinct counts, equi-depth histograms), estimates
// selectivities, and picks the cheapest access path and join method under
// a textbook cost model.
//
// With fresh statistics it beats the simple planner on selective range
// queries; when statistics go stale — the maintenance burden the paper's
// TCO argument targets — its estimates mislead it into index-fetching huge
// result sets or mis-choosing join methods, and latency becomes
// unpredictable. Experiment E7 measures exactly this spread.
package costopt

import (
	"sort"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/plan"
)

// Cost model constants: relative per-document costs. A random index fetch
// costs several sequential-scan touches, the classic 'clustered scan vs
// unclustered fetch' trade-off the paper alludes to in §3.1.
const (
	costScanDoc   = 1.0
	costIndexRead = 4.0
	costHashBuild = 1.5
	costHashProbe = 1.0
	costINLProbe  = 4.0
)

// PathStats summarizes one path's value distribution.
type PathStats struct {
	Count    int64 // leaf occurrences
	Docs     int64 // documents with the path
	Distinct int64
	// Bounds is an equi-depth histogram: sorted boundary values dividing
	// the observed values into equal-count buckets.
	Bounds []docmodel.Value
}

// Stats is a statistics snapshot for a document collection.
type Stats struct {
	Total int64 // total documents
	Paths map[string]*PathStats
}

// histBuckets is the equi-depth histogram resolution.
const histBuckets = 32

// CollectStats performs a full statistics pass over the documents — the
// maintenance work the simple planner avoids.
func CollectStats(docs []*docmodel.Document) *Stats {
	s := &Stats{Paths: map[string]*PathStats{}}
	values := map[string][]docmodel.Value{}
	for _, d := range docs {
		s.Total++
		seenPath := map[string]bool{}
		d.WalkLeaves(func(pv docmodel.PathVisit) bool {
			ps, ok := s.Paths[pv.Path]
			if !ok {
				ps = &PathStats{}
				s.Paths[pv.Path] = ps
			}
			ps.Count++
			if !seenPath[pv.Path] {
				ps.Docs++
				seenPath[pv.Path] = true
			}
			values[pv.Path] = append(values[pv.Path], pv.Value)
			return true
		})
	}
	for path, vals := range values {
		ps := s.Paths[path]
		sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
		distinct := int64(0)
		for i, v := range vals {
			if i == 0 || v.Compare(vals[i-1]) != 0 {
				distinct++
			}
		}
		ps.Distinct = distinct
		step := len(vals) / histBuckets
		if step < 1 {
			step = 1
		}
		for i := step; i < len(vals); i += step {
			ps.Bounds = append(ps.Bounds, vals[i])
		}
	}
	return s
}

// EstimateSelectivity estimates the fraction of documents matching the
// predicate using the collected statistics.
func (s *Stats) EstimateSelectivity(e expr.Expr) float64 {
	if s.Total == 0 {
		return 1
	}
	sel := 1.0
	for _, c := range e.Conjuncts() {
		sel *= s.conjunctSelectivity(c)
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

func (s *Stats) conjunctSelectivity(c expr.Expr) float64 {
	if c.IsTrue() {
		return 1
	}
	paths := c.Paths()
	if len(paths) == 0 {
		return 0.5 // metadata predicates: no stats kept
	}
	path := paths[0]
	ps, ok := s.Paths[path]
	if !ok {
		return 0.01 // unknown path: assume rare
	}
	frac := float64(ps.Docs) / float64(s.Total)
	if v, isEq := c.EqualityOn(path); isEq {
		_ = v
		if ps.Distinct == 0 {
			return frac
		}
		return frac / float64(ps.Distinct)
	}
	if lo, hi, loInc, hiInc, isRange := c.RangeOn(path); isRange {
		return frac * s.rangeFraction(ps, lo, hi, loInc, hiInc)
	}
	// Contains / Exists defaults.
	return frac * 0.1
}

// rangeFraction estimates the covered fraction via the histogram.
func (s *Stats) rangeFraction(ps *PathStats, lo, hi *docmodel.Value, loInc, hiInc bool) float64 {
	if len(ps.Bounds) == 0 {
		return 0.3
	}
	pos := func(v docmodel.Value, high bool) float64 {
		i := sort.Search(len(ps.Bounds), func(i int) bool {
			c := ps.Bounds[i].Compare(v)
			if high {
				return c > 0
			}
			return c >= 0
		})
		return float64(i) / float64(len(ps.Bounds))
	}
	start, end := 0.0, 1.0
	if lo != nil {
		start = pos(*lo, !loInc)
	}
	if hi != nil {
		end = pos(*hi, hiInc)
	}
	if end < start {
		return 0
	}
	frac := end - start
	if frac < 1e-4 {
		frac = 1e-4
	}
	return frac
}

// Optimizer picks plans by estimated cost.
type Optimizer struct {
	stats *Stats
	// InnerCount estimates the inner collection size for join costing.
	InnerCount int64
}

// NewOptimizer builds an optimizer over a statistics snapshot. The
// statistics may be arbitrarily stale relative to the data — deliberately:
// E7 exploits this.
func NewOptimizer(stats *Stats) *Optimizer { return &Optimizer{stats: stats} }

// Stats exposes the snapshot (for estimate assertions in tests).
func (o *Optimizer) Stats() *Stats { return o.stats }

// Plan chooses an access path and join method by comparing estimated
// costs, emitting the same Plan type the simple planner does.
func (o *Optimizer) Plan(q plan.Query) *plan.Plan {
	p := &plan.Plan{
		Residual: q.Filter,
		GroupBy:  q.GroupBy,
		OrderBy:  q.OrderBy,
		K:        q.K,
		JoinSpec: q.Join,
	}
	n := float64(o.stats.Total)
	if q.Keyword != "" {
		p.Access = plan.Access{Kind: plan.AccessKeyword, Keyword: q.Keyword}
		p.Explain = append(p.Explain, "cost: keyword must use full-text index")
	} else {
		scanCost := n * costScanDoc
		bestCost := scanCost
		best := plan.Access{Kind: plan.AccessScan}
		bestWhy := "cost: full scan"
		for _, path := range q.Filter.Paths() {
			if v, ok := q.Filter.EqualityOn(path); ok {
				sel := o.stats.EstimateSelectivity(expr.Cmp(path, expr.OpEq, v))
				c := sel*n*costIndexRead + 1
				if c < bestCost {
					bestCost = c
					best = plan.Access{Kind: plan.AccessValueEq, Path: path, Value: v}
					bestWhy = "cost: selective equality index on " + path
				}
				continue
			}
			if lo, hi, loInc, hiInc, ok := q.Filter.RangeOn(path); ok {
				sel := o.stats.EstimateSelectivity(rangeExprFor(path, lo, hi, loInc, hiInc))
				c := sel*n*costIndexRead + 1
				if c < bestCost {
					bestCost = c
					best = plan.Access{Kind: plan.AccessValueRange, Path: path, Lo: lo, Hi: hi, LoInc: loInc, HiInc: hiInc}
					bestWhy = "cost: selective range index on " + path
				}
			}
		}
		p.Access = best
		p.Explain = append(p.Explain, bestWhy)
	}

	if q.Join != nil {
		outerSel := o.stats.EstimateSelectivity(q.Filter)
		outerEst := outerSel * n
		if q.K > 0 && float64(q.K) < outerEst {
			outerEst = float64(q.K)
		}
		inner := float64(o.InnerCount)
		if inner <= 0 {
			inner = n
		}
		inlCost := outerEst * costINLProbe
		hashCost := inner*costHashBuild + outerEst*costHashProbe
		if inlCost <= hashCost {
			p.Join = plan.JoinINL
			p.Explain = append(p.Explain, "cost: INL join cheaper")
		} else {
			p.Join = plan.JoinHash
			p.Explain = append(p.Explain, "cost: hash join cheaper")
		}
	}
	return p
}

func rangeExprFor(path string, lo, hi *docmodel.Value, loInc, hiInc bool) expr.Expr {
	var kids []expr.Expr
	if lo != nil {
		op := expr.OpGt
		if loInc {
			op = expr.OpGe
		}
		kids = append(kids, expr.Cmp(path, op, *lo))
	}
	if hi != nil {
		op := expr.OpLt
		if hiInc {
			op = expr.OpLe
		}
		kids = append(kids, expr.Cmp(path, op, *hi))
	}
	return expr.And(kids...)
}
