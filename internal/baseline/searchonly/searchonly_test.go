package searchonly

import (
	"errors"
	"testing"

	"impliance/internal/docmodel"
)

func TestAddAndSearch(t *testing.T) {
	e := New()
	id1 := e.Add(docmodel.Object(docmodel.F("text", docmodel.String("insurance fraud detection"))))
	e.Add(docmodel.Object(docmodel.F("text", docmodel.String("cooking recipes"))))
	hits := e.Search("fraud", 10)
	if len(hits) != 1 || hits[0].ID != id1 {
		t.Errorf("hits = %v", hits)
	}
	if d, ok := e.Get(id1); !ok || d.First("/text").StringVal() == "" {
		t.Error("Get failed")
	}
	if e.Len() != 2 {
		t.Errorf("len = %d", e.Len())
	}
}

func TestFacets(t *testing.T) {
	e := New()
	for _, c := range []string{"news", "news", "blog"} {
		e.Add(docmodel.Object(
			docmodel.F("category", docmodel.String(c)),
			docmodel.F("text", docmodel.String("content words")),
		))
	}
	fc := e.Facets("/category", 10)
	if len(fc) != 2 || fc[0].Value.StringVal() != "news" || fc[0].Count != 2 {
		t.Errorf("facets = %v", fc)
	}
}

func TestCapabilityBoundaries(t *testing.T) {
	e := New()
	if err := e.Join(); !errors.Is(err, ErrUnsupported) {
		t.Error("join must be unsupported")
	}
	if err := e.Aggregate(); !errors.Is(err, ErrUnsupported) {
		t.Error("aggregate must be unsupported")
	}
	if err := e.Connect(); !errors.Is(err, ErrUnsupported) {
		t.Error("connect must be unsupported")
	}
	if err := e.UpdateVersioned(); !errors.Is(err, ErrUnsupported) {
		t.Error("versioned update must be unsupported")
	}
}
