// Package searchonly is the enterprise-search comparator for experiment
// E6 (paper Figure 4's OSES/OmniFind/Google Base region): documents of
// any shape can be thrown in and found by ranked keyword search with
// facet counts, but there is no structured composition — no joins, no
// grouped aggregation beyond facet counting, no versioned updates, and no
// discovered relationships.
package searchonly

import (
	"errors"
	"sync"

	"impliance/internal/docmodel"
	"impliance/internal/index"
)

// ErrUnsupported marks capabilities a search appliance does not have.
var ErrUnsupported = errors.New("searchonly: operation not supported by a search appliance")

// Engine is the search-only appliance.
type Engine struct {
	mu   sync.Mutex
	ix   *index.Index
	docs map[docmodel.DocID]*docmodel.Document
	seq  uint64
}

// New creates an empty engine.
func New() *Engine {
	return &Engine{ix: index.New(nil), docs: map[docmodel.DocID]*docmodel.Document{}}
}

// Add ingests a document body (any shape — search appliances crawl
// everything) and returns its ID.
func (e *Engine) Add(root docmodel.Value) docmodel.DocID {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seq++
	d := &docmodel.Document{
		ID:      docmodel.DocID{Origin: 1, Seq: e.seq},
		Version: 1,
		Root:    root,
	}
	e.docs[d.ID] = d
	e.ix.Add(d)
	return d.ID
}

// Get retrieves a document by ID.
func (e *Engine) Get(id docmodel.DocID) (*docmodel.Document, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.docs[id]
	return d, ok
}

// Len returns the corpus size.
func (e *Engine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.docs)
}

// Search runs ranked keyword retrieval.
func (e *Engine) Search(query string, k int) []index.Hit {
	return e.ix.Search(query, k)
}

// Facets counts distinct values at a path over the whole corpus (facet
// navigation is what separates Google Base from bare keyword search).
func (e *Engine) Facets(path string, limit int) []index.FacetCount {
	return e.ix.Facets(path, nil, limit)
}

// Join is not a search-appliance capability.
func (e *Engine) Join() error { return ErrUnsupported }

// Aggregate (beyond facet counts) is not a search-appliance capability.
func (e *Engine) Aggregate() error { return ErrUnsupported }

// Connect (relationship traversal) is not a search-appliance capability.
func (e *Engine) Connect() error { return ErrUnsupported }

// UpdateVersioned is not a search-appliance capability: re-adding a
// document replaces it with a new identity, losing history.
func (e *Engine) UpdateVersioned() error { return ErrUnsupported }
