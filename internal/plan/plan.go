// Package plan implements Impliance's *simple planner* (paper §3.3):
// "Instead of implementing a full-fledged cost-based optimizer as a
// conventional database system does, we propose to build a simple planner
// that allows only a few limited choices of the underlying physical
// operators. Such a planner is desirable because it offers predictable
// performance (as opposed to optimal performance) and obviates the need
// for maintaining complex statistics."
//
// The planner is a short, fixed rule list with no statistics:
//
//  1. a keyword query routes to the full-text index (top-k);
//  2. an equality conjunct on a path routes to the value index;
//  3. everything else is a pushed-down filtered scan, with adaptive
//     conjunct reordering as the runtime escape hatch;
//  4. with a top-k request, joins are indexed nested-loop ("indexed
//     nested-loop joins may always be the preferred join method");
//     without one, joins are hash joins.
//
// The output Plan is interpreted by the core engine against its stores and
// indexes. The cost-based comparator lives in internal/baseline/costopt
// and emits the same Plan type, so experiment E7 can execute both.
package plan

import (
	"fmt"
	"strings"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
)

// Query is the engine's logical query form: what the retrieval interfaces
// (keyword, faceted, SQL, graph) compile into.
type Query struct {
	// Keyword is a free-text ranked query ("" = none).
	Keyword string
	// Filter is the structured predicate (True when absent).
	Filter expr.Expr
	// Join optionally joins matching documents against a second
	// collection.
	Join *JoinClause
	// GroupBy optionally aggregates the results.
	GroupBy *expr.GroupSpec
	// OrderBy optionally orders the results.
	OrderBy *SortSpec
	// K caps the result count (0 = unlimited). A non-zero K marks the
	// query as a retrieval-interface query, which changes join choice.
	K int
}

// JoinClause describes an equality join from the query's documents to a
// second document collection.
type JoinClause struct {
	// LeftPath is evaluated on the outer documents.
	LeftPath string
	// RightPath is the join key path on the inner collection.
	RightPath string
	// RightFilter restricts the inner collection (True when absent).
	RightFilter expr.Expr
}

// SortSpec orders results by a path or by relevance score.
type SortSpec struct {
	Path    string
	Desc    bool
	ByScore bool
}

// AccessKind enumerates the planner's access methods.
type AccessKind uint8

// Access methods (deliberately few).
const (
	AccessScan       AccessKind = iota // pushed-down filtered scan
	AccessKeyword                      // full-text index, ranked
	AccessValueEq                      // value index equality probe
	AccessValueRange                   // value index range scan
	AccessPathIndex                    // structural path index
)

var accessNames = [...]string{"scan", "keyword-index", "value-index-eq", "value-index-range", "path-index"}

// String names the access method.
func (k AccessKind) String() string {
	if int(k) < len(accessNames) {
		return accessNames[k]
	}
	return "access?"
}

// Access is the chosen access path.
type Access struct {
	Kind    AccessKind
	Keyword string
	Path    string
	Value   docmodel.Value
	Lo, Hi  *docmodel.Value
	LoInc   bool
	HiInc   bool
}

// JoinMethod enumerates join implementations.
type JoinMethod uint8

// Join methods.
const (
	JoinNone JoinMethod = iota
	JoinINL
	JoinHash
)

var joinNames = [...]string{"none", "indexed-nl", "hash"}

// String names the join method.
func (m JoinMethod) String() string {
	if int(m) < len(joinNames) {
		return joinNames[m]
	}
	return "join?"
}

// Plan is an executable physical plan description.
type Plan struct {
	Access   Access
	Residual expr.Expr // applied after the access path
	Adaptive bool      // evaluate Residual with adaptive reordering

	Join     JoinMethod
	JoinSpec *JoinClause

	GroupBy *expr.GroupSpec
	OrderBy *SortSpec
	K       int

	// Explain records the rules that fired, for EXPLAIN output and tests.
	Explain []string
}

// String renders a one-line plan summary.
func (p *Plan) String() string {
	parts := []string{"access=" + p.Access.Kind.String()}
	if p.Join != JoinNone {
		parts = append(parts, "join="+p.Join.String())
	}
	if p.GroupBy != nil {
		parts = append(parts, "group-by")
	}
	if p.K > 0 {
		parts = append(parts, fmt.Sprintf("top-%d", p.K))
	}
	if p.Adaptive {
		parts = append(parts, "adaptive")
	}
	return strings.Join(parts, " ")
}

// Planner is the statistics-free rule planner.
type Planner struct {
	// HasValueIndex reports whether a value index exists for the path.
	// In Impliance every path is indexed automatically, so the default
	// (nil) treats all paths as indexed; the hook exists for ablations.
	HasValueIndex func(path string) bool
}

// NewPlanner creates a simple planner.
func NewPlanner() *Planner { return &Planner{} }

func (pl *Planner) indexed(path string) bool {
	if pl.HasValueIndex == nil {
		return true
	}
	return pl.HasValueIndex(path)
}

// Plan chooses the physical plan for the query by the fixed rules. It
// never consults data statistics, so the same query always yields the
// same plan — the predictability the paper argues for.
func (pl *Planner) Plan(q Query) *Plan {
	p := &Plan{
		Residual: q.Filter,
		GroupBy:  q.GroupBy,
		OrderBy:  q.OrderBy,
		K:        q.K,
		JoinSpec: q.Join,
	}
	if p.Residual.IsTrue() {
		p.Residual = expr.True()
	}

	switch {
	case q.Keyword != "":
		// Rule 1: free text goes to the full-text index.
		p.Access = Access{Kind: AccessKeyword, Keyword: q.Keyword}
		p.Explain = append(p.Explain, "rule1: keyword routed to full-text index")
	default:
		if path, v, ok := firstEquality(q.Filter, pl.indexed); ok {
			// Rule 2: equality probes the value index.
			p.Access = Access{Kind: AccessValueEq, Path: path, Value: v}
			p.Explain = append(p.Explain, "rule2: equality probes value index on "+path)
		} else {
			// Rule 3: pushed-down scan; range predicates are evaluated in
			// the scan (predictable O(N)) rather than gambling on index
			// clustering without statistics.
			p.Access = Access{Kind: AccessScan}
			p.Explain = append(p.Explain, "rule3: pushed-down filtered scan")
		}
	}

	if len(q.Filter.Conjuncts()) > 1 {
		p.Adaptive = true
		p.Explain = append(p.Explain, "rule3b: multi-conjunct residual uses adaptive reordering")
	}

	if q.Join != nil {
		if q.K > 0 {
			// Rule 4: top-k retrieval always joins by indexed nested loop.
			p.Join = JoinINL
			p.Explain = append(p.Explain, "rule4: top-k join uses indexed nested-loop")
		} else {
			p.Join = JoinHash
			p.Explain = append(p.Explain, "rule4b: full-result join uses hash join")
		}
	}
	return p
}

// firstEquality returns the lexicographically first equality conjunct on
// an indexed path — deterministic access choice with no statistics.
func firstEquality(e expr.Expr, indexed func(string) bool) (string, docmodel.Value, bool) {
	bestPath := ""
	var bestVal docmodel.Value
	found := false
	for _, path := range e.Paths() {
		if !indexed(path) {
			continue
		}
		if v, ok := e.EqualityOn(path); ok {
			if !found || path < bestPath {
				bestPath, bestVal, found = path, v, true
			}
		}
	}
	return bestPath, bestVal, found
}
