package plan

import (
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
)

func TestKeywordRoutesToFullText(t *testing.T) {
	p := NewPlanner().Plan(Query{Keyword: "fraud claims", K: 10})
	if p.Access.Kind != AccessKeyword || p.Access.Keyword != "fraud claims" {
		t.Errorf("plan = %s", p)
	}
	if p.K != 10 {
		t.Error("k lost")
	}
}

func TestEqualityRoutesToValueIndex(t *testing.T) {
	q := Query{Filter: expr.And(
		expr.Cmp("/state", expr.OpEq, docmodel.String("open")),
		expr.Cmp("/amount", expr.OpGt, docmodel.Int(100)),
	)}
	p := NewPlanner().Plan(q)
	if p.Access.Kind != AccessValueEq || p.Access.Path != "/amount" && p.Access.Path != "/state" {
		t.Fatalf("plan = %+v", p.Access)
	}
	// Deterministic: lexicographically first equality path.
	if p.Access.Path != "/state" {
		t.Errorf("access path = %s (only /state has equality)", p.Access.Path)
	}
	if !p.Adaptive {
		t.Error("multi-conjunct residual should be adaptive")
	}
}

func TestRangeStaysOnScan(t *testing.T) {
	q := Query{Filter: expr.Cmp("/amount", expr.OpGt, docmodel.Int(100))}
	p := NewPlanner().Plan(q)
	if p.Access.Kind != AccessScan {
		t.Errorf("simple planner must scan for ranges (predictability): %+v", p.Access)
	}
	if p.Adaptive {
		t.Error("single conjunct should not be adaptive")
	}
}

func TestSamePlanEveryTime(t *testing.T) {
	q := Query{Filter: expr.And(
		expr.Cmp("/a", expr.OpEq, docmodel.Int(1)),
		expr.Cmp("/b", expr.OpEq, docmodel.Int(2)),
	)}
	pl := NewPlanner()
	p1, p2 := pl.Plan(q), pl.Plan(q)
	if p1.Access.Path != p2.Access.Path || p1.Access.Kind != p2.Access.Kind {
		t.Error("planner must be deterministic")
	}
	if p1.Access.Path != "/a" {
		t.Errorf("first equality by path order: %s", p1.Access.Path)
	}
}

func TestJoinMethodByK(t *testing.T) {
	j := &JoinClause{LeftPath: "/cust", RightPath: "/id", RightFilter: expr.True()}
	topk := NewPlanner().Plan(Query{Filter: expr.True(), Join: j, K: 10})
	if topk.Join != JoinINL {
		t.Errorf("top-k join = %s, want indexed-nl", topk.Join)
	}
	full := NewPlanner().Plan(Query{Filter: expr.True(), Join: j})
	if full.Join != JoinHash {
		t.Errorf("full join = %s, want hash", full.Join)
	}
}

func TestHasValueIndexHook(t *testing.T) {
	pl := NewPlanner()
	pl.HasValueIndex = func(path string) bool { return path == "/b" }
	q := Query{Filter: expr.And(
		expr.Cmp("/a", expr.OpEq, docmodel.Int(1)),
		expr.Cmp("/b", expr.OpEq, docmodel.Int(2)),
	)}
	p := pl.Plan(q)
	if p.Access.Kind != AccessValueEq || p.Access.Path != "/b" {
		t.Errorf("unindexed path chosen: %+v", p.Access)
	}
}

func TestPlanString(t *testing.T) {
	j := &JoinClause{LeftPath: "/x", RightPath: "/y", RightFilter: expr.True()}
	p := NewPlanner().Plan(Query{
		Keyword: "q", Join: j, K: 5,
		GroupBy: &expr.GroupSpec{Aggs: []expr.AggSpec{{Kind: expr.AggCount}}},
		Filter:  expr.True(),
	})
	s := p.String()
	for _, want := range []string{"access=keyword-index", "join=indexed-nl", "group-by", "top-5"} {
		if !contains(s, want) {
			t.Errorf("plan string %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
