package ingest

import (
	"fmt"
	"strings"

	"impliance/internal/docmodel"
)

// Email maps an RFC 822-style message into the native model: parsed
// headers (from, to, cc, subject, date) as typed fields, remaining headers
// under /headers, and the body under /body. The legal-compliance use case
// (paper §2.1.3) queries e-mail alongside contracts and structured data;
// this mapper is what makes those messages first-class documents.
func Email(b []byte) (docmodel.Value, error) {
	s := strings.ReplaceAll(string(b), "\r\n", "\n")
	headerPart, body, found := strings.Cut(s, "\n\n")
	if !found {
		headerPart, body = s, ""
	}
	lines := strings.Split(headerPart, "\n")

	type hdr struct{ name, value string }
	var headers []hdr
	for _, line := range lines {
		if line == "" {
			continue
		}
		// Folded header continuation.
		if (strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t")) && len(headers) > 0 {
			headers[len(headers)-1].value += " " + strings.TrimSpace(line)
			continue
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return docmodel.Null, fmt.Errorf("ingest: malformed email header line %q", line)
		}
		headers = append(headers, hdr{strings.ToLower(strings.TrimSpace(name)), strings.TrimSpace(value)})
	}
	if len(headers) == 0 {
		return docmodel.Null, fmt.Errorf("ingest: email has no headers")
	}

	var fields []docmodel.Field
	var rest []docmodel.Field
	for _, h := range headers {
		switch h.name {
		case "from", "subject", "message-id", "in-reply-to":
			fields = append(fields, docmodel.F(h.name, docmodel.String(h.value)))
		case "to", "cc", "bcc":
			fields = append(fields, docmodel.F(h.name, addressList(h.value)))
		case "date":
			if t, err := parseAnyTime(h.value); err == nil {
				fields = append(fields, docmodel.F("date", docmodel.Time(t)))
			} else {
				fields = append(fields, docmodel.F("date", docmodel.String(h.value)))
			}
		default:
			rest = append(rest, docmodel.F(h.name, docmodel.String(h.value)))
		}
	}
	if len(rest) > 0 {
		fields = append(fields, docmodel.F("headers", docmodel.Object(rest...)))
	}
	fields = append(fields, docmodel.F("body", docmodel.String(strings.TrimSpace(body))))
	return docmodel.Object(fields...), nil
}

func addressList(v string) docmodel.Value {
	parts := strings.Split(v, ",")
	elems := make([]docmodel.Value, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			elems = append(elems, docmodel.String(p))
		}
	}
	if len(elems) == 1 {
		return elems[0]
	}
	return docmodel.Array(elems...)
}
