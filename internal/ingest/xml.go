package ingest

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"impliance/internal/docmodel"
)

// XML maps an XML document into the native model. The mapping follows the
// conventions used by native-XML database systems the paper cites (System
// RX, Oracle XMLDB):
//
//   - an element becomes an object field named after the element;
//   - attributes become fields prefixed with "@";
//   - text content becomes a "#text" field (or the element maps directly to
//     a string when it has neither attributes nor children);
//   - repeated sibling elements become repeated fields, which the path
//     index and At() treat as fan-out, matching XML semantics.
func XML(b []byte) (docmodel.Value, error) {
	dec := xml.NewDecoder(bytes.NewReader(b))
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return docmodel.Null, fmt.Errorf("ingest: xml has no root element")
		}
		if err != nil {
			return docmodel.Null, fmt.Errorf("ingest: parse xml: %w", err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			v, err := xmlElement(dec, start, 0)
			if err != nil {
				return docmodel.Null, err
			}
			return docmodel.Object(docmodel.F(start.Name.Local, v)), nil
		}
	}
}

const maxXMLDepth = 128

func xmlElement(dec *xml.Decoder, start xml.StartElement, depth int) (docmodel.Value, error) {
	if depth > maxXMLDepth {
		return docmodel.Null, fmt.Errorf("ingest: xml nested deeper than %d", maxXMLDepth)
	}
	var fields []docmodel.Field
	for _, attr := range start.Attr {
		fields = append(fields, docmodel.F("@"+attr.Name.Local, inferCell(attr.Value)))
	}
	var textParts []string
	for {
		tok, err := dec.Token()
		if err != nil {
			return docmodel.Null, fmt.Errorf("ingest: parse xml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			child, err := xmlElement(dec, t, depth+1)
			if err != nil {
				return docmodel.Null, err
			}
			fields = append(fields, docmodel.F(t.Name.Local, child))
		case xml.CharData:
			s := strings.TrimSpace(string(t))
			if s != "" {
				textParts = append(textParts, s)
			}
		case xml.EndElement:
			text := strings.Join(textParts, " ")
			if len(fields) == 0 {
				// Pure text element maps straight to a (typed) scalar.
				if text == "" {
					return docmodel.Null, nil
				}
				return inferCell(text), nil
			}
			if text != "" {
				fields = append(fields, docmodel.F("#text", docmodel.String(text)))
			}
			return docmodel.Object(fields...), nil
		}
	}
}

// ToXML renders a document body as XML for the system-supplied XML view
// (paper Figure 2). Scalars nest as elements; "@" fields become attributes;
// "#text" becomes character data. The rendering is for export fidelity of
// structure, not byte-identical round-tripping of the original input.
func ToXML(rootName string, v docmodel.Value) []byte {
	var sb strings.Builder
	writeXML(&sb, rootName, v)
	return []byte(sb.String())
}

func writeXML(sb *strings.Builder, name string, v docmodel.Value) {
	switch v.Kind() {
	case docmodel.KindObject:
		sb.WriteByte('<')
		sb.WriteString(name)
		var children []docmodel.Field
		var textVal string
		for _, f := range v.Fields() {
			switch {
			case strings.HasPrefix(f.Name, "@"):
				sb.WriteByte(' ')
				sb.WriteString(f.Name[1:])
				sb.WriteString(`="`)
				xmlEscape(sb, scalarText(f.Value))
				sb.WriteByte('"')
			case f.Name == "#text":
				textVal = f.Value.StringVal()
			default:
				children = append(children, f)
			}
		}
		if len(children) == 0 && textVal == "" {
			sb.WriteString("/>")
			return
		}
		sb.WriteByte('>')
		if textVal != "" {
			xmlEscape(sb, textVal)
		}
		for _, f := range children {
			writeXML(sb, f.Name, f.Value)
		}
		sb.WriteString("</")
		sb.WriteString(name)
		sb.WriteByte('>')
	case docmodel.KindArray:
		for _, e := range v.Elems() {
			writeXML(sb, name, e)
		}
	default:
		sb.WriteByte('<')
		sb.WriteString(name)
		sb.WriteByte('>')
		xmlEscape(sb, scalarText(v))
		sb.WriteString("</")
		sb.WriteString(name)
		sb.WriteByte('>')
	}
}

func scalarText(v docmodel.Value) string {
	switch v.Kind() {
	case docmodel.KindString:
		return v.StringVal()
	case docmodel.KindNull:
		return ""
	default:
		return v.String()
	}
}

func xmlEscape(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '&':
			sb.WriteString("&amp;")
		case '"':
			sb.WriteString("&quot;")
		default:
			sb.WriteRune(r)
		}
	}
}
