// Package ingest maps external data formats into the Impliance native
// document model (paper §2.2, Figure 1: "the data infused into Impliance is
// mapped from its initial format to a uniform data model"). Each mapper is
// lossless for the information the appliance queries: relational rows keep
// column order and types, XML keeps element order and attributes, e-mail
// keeps headers and body, binary content keeps its bytes plus extracted
// metadata.
//
// Mapping is the only format-specific code in the appliance; everything
// downstream (storage, indexing, discovery, query) sees only documents.
package ingest

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"

	"impliance/internal/docmodel"
)

// Media types assigned by the mappers. These are queryable document
// metadata, not dispatch keys: once mapped, all documents are equal.
const (
	MediaRow    = "relational/row"
	MediaJSON   = "application/json"
	MediaXML    = "application/xml"
	MediaEmail  = "message/rfc822"
	MediaText   = "text/plain"
	MediaBinary = "application/octet-stream"
)

// ColType is the declared type of a relational column.
type ColType uint8

// Column types supported by the relational mapper.
const (
	ColString ColType = iota
	ColInt
	ColFloat
	ColBool
	ColTime
)

// Column describes one relational column.
type Column struct {
	Name string
	Type ColType
}

// Row maps one relational row to a document body, preserving column order
// (paper §3.2: "consider the insertion of a relational row... The row can
// immediately be queried by SQL and retrieved without change").
func Row(cols []Column, vals []any) (docmodel.Value, error) {
	if len(cols) != len(vals) {
		return docmodel.Null, fmt.Errorf("ingest: row has %d values for %d columns", len(vals), len(cols))
	}
	fields := make([]docmodel.Field, 0, len(cols))
	for i, c := range cols {
		v, err := colValue(c, vals[i])
		if err != nil {
			return docmodel.Null, fmt.Errorf("ingest: column %q: %w", c.Name, err)
		}
		fields = append(fields, docmodel.F(c.Name, v))
	}
	return docmodel.Object(fields...), nil
}

func colValue(c Column, raw any) (docmodel.Value, error) {
	if raw == nil {
		return docmodel.Null, nil
	}
	switch c.Type {
	case ColString:
		switch x := raw.(type) {
		case string:
			return docmodel.String(x), nil
		default:
			return docmodel.String(fmt.Sprint(x)), nil
		}
	case ColInt:
		switch x := raw.(type) {
		case int:
			return docmodel.Int(int64(x)), nil
		case int64:
			return docmodel.Int(x), nil
		case string:
			i, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
			if err != nil {
				return docmodel.Null, err
			}
			return docmodel.Int(i), nil
		default:
			return docmodel.Null, fmt.Errorf("cannot map %T to int column", raw)
		}
	case ColFloat:
		switch x := raw.(type) {
		case float64:
			return docmodel.Float(x), nil
		case int:
			return docmodel.Float(float64(x)), nil
		case int64:
			return docmodel.Float(float64(x)), nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if err != nil {
				return docmodel.Null, err
			}
			return docmodel.Float(f), nil
		default:
			return docmodel.Null, fmt.Errorf("cannot map %T to float column", raw)
		}
	case ColBool:
		switch x := raw.(type) {
		case bool:
			return docmodel.Bool(x), nil
		case string:
			b, err := strconv.ParseBool(strings.TrimSpace(x))
			if err != nil {
				return docmodel.Null, err
			}
			return docmodel.Bool(b), nil
		default:
			return docmodel.Null, fmt.Errorf("cannot map %T to bool column", raw)
		}
	case ColTime:
		switch x := raw.(type) {
		case time.Time:
			return docmodel.Time(x), nil
		case string:
			t, err := parseAnyTime(strings.TrimSpace(x))
			if err != nil {
				return docmodel.Null, err
			}
			return docmodel.Time(t), nil
		default:
			return docmodel.Null, fmt.Errorf("cannot map %T to time column", raw)
		}
	}
	return docmodel.Null, fmt.Errorf("unknown column type %d", c.Type)
}

var timeLayouts = []string{
	time.RFC3339Nano, time.RFC3339, "2006-01-02 15:04:05", "2006-01-02",
	time.RFC1123Z, time.RFC1123, time.RFC822Z, time.RFC822,
	"Mon, 2 Jan 2006 15:04:05 -0700",
}

func parseAnyTime(s string) (time.Time, error) {
	for _, layout := range timeLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("unrecognized time %q", s)
}

// CSV maps comma-separated text with a header row into one document body
// per data row. Cell types are inferred (int, float, bool, time, string);
// empty cells map to null. A best-effort mapper for "throw your data in the
// stewing pot" ingestion (paper §2.2).
func CSV(data []byte) ([]docmodel.Value, error) {
	lines := splitCSVLines(string(data))
	if len(lines) == 0 {
		return nil, fmt.Errorf("ingest: empty csv")
	}
	header := splitCSVFields(lines[0])
	if len(header) == 0 || (len(header) == 1 && strings.TrimSpace(header[0]) == "") {
		return nil, fmt.Errorf("ingest: csv header empty")
	}
	var out []docmodel.Value
	for ln := 1; ln < len(lines); ln++ {
		if strings.TrimSpace(lines[ln]) == "" {
			continue
		}
		cells := splitCSVFields(lines[ln])
		if len(cells) != len(header) {
			return nil, fmt.Errorf("ingest: csv line %d has %d cells, header has %d", ln+1, len(cells), len(header))
		}
		fields := make([]docmodel.Field, 0, len(header))
		for i, h := range header {
			fields = append(fields, docmodel.F(strings.TrimSpace(h), inferCell(cells[i])))
		}
		out = append(out, docmodel.Object(fields...))
	}
	return out, nil
}

func splitCSVLines(s string) []string {
	s = strings.ReplaceAll(s, "\r\n", "\n")
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}

// splitCSVFields handles double-quoted cells with embedded commas and
// doubled quotes; it is intentionally a subset of RFC 4180 (no embedded
// newlines) — the workload generators emit within this subset.
func splitCSVFields(line string) []string {
	var out []string
	var sb strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuote:
			if c == '"' {
				if i+1 < len(line) && line[i+1] == '"' {
					sb.WriteByte('"')
					i++
				} else {
					inQuote = false
				}
			} else {
				sb.WriteByte(c)
			}
		case c == '"':
			inQuote = true
		case c == ',':
			out = append(out, sb.String())
			sb.Reset()
		default:
			sb.WriteByte(c)
		}
	}
	out = append(out, sb.String())
	return out
}

func inferCell(cell string) docmodel.Value {
	s := strings.TrimSpace(cell)
	if s == "" {
		return docmodel.Null
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return docmodel.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return docmodel.Float(f)
	}
	switch strings.ToLower(s) {
	case "true":
		return docmodel.Bool(true)
	case "false":
		return docmodel.Bool(false)
	}
	if t, err := parseAnyTime(s); err == nil {
		return docmodel.Time(t)
	}
	return docmodel.String(cell)
}

// JSON maps a JSON document into the native model.
func JSON(b []byte) (docmodel.Value, error) {
	return docmodel.FromJSON(b)
}

// Text maps unstructured text: the whole body lands under /text so the
// full-text indexer and annotators find it at a stable path.
func Text(s string) docmodel.Value {
	return docmodel.Object(docmodel.F("text", docmodel.String(s)))
}

// Binary maps opaque content (multimedia, PDFs) to a document holding the
// bytes plus extractable metadata. Search over such documents initially
// covers only this metadata — exactly the content-manager status quo the
// paper describes — until annotators enrich it.
func Binary(filename string, content []byte) docmodel.Value {
	return docmodel.Object(
		docmodel.F("filename", docmodel.String(filename)),
		docmodel.F("size", docmodel.Int(int64(len(content)))),
		docmodel.F("content", docmodel.Bytes(content)),
	)
}

// Sniff guesses the media type of raw bytes. Used by the "stewing pot"
// ingestion path where callers do not declare a format.
func Sniff(b []byte) string {
	trimmed := bytes.TrimLeft(b, " \t\r\n")
	switch {
	case len(trimmed) == 0:
		return MediaText
	case trimmed[0] == '{' || trimmed[0] == '[':
		return MediaJSON
	case trimmed[0] == '<':
		return MediaXML
	case looksLikeEmail(b):
		return MediaEmail
	case utf8.Valid(b) && printableRatio(b) > 0.95:
		return MediaText
	default:
		return MediaBinary
	}
}

func looksLikeEmail(b []byte) bool {
	head := b
	if len(head) > 2048 {
		head = head[:2048]
	}
	if !utf8.Valid(head) {
		return false
	}
	s := string(head)
	hits := 0
	for _, h := range []string{"From:", "To:", "Subject:", "Date:"} {
		if strings.HasPrefix(s, h) || strings.Contains(s, "\n"+h) {
			hits++
		}
	}
	return hits >= 2
}

func printableRatio(b []byte) float64 {
	if len(b) == 0 {
		return 1
	}
	printable := 0
	for _, c := range b {
		if c == '\n' || c == '\r' || c == '\t' || (c >= 0x20) {
			printable++
		}
	}
	return float64(printable) / float64(len(b))
}

// Auto sniffs and maps raw bytes, returning the body and assigned media
// type. Binary content gets the synthetic filename.
func Auto(filename string, b []byte) (docmodel.Value, string, error) {
	mt := Sniff(b)
	switch mt {
	case MediaJSON:
		v, err := JSON(b)
		if err != nil {
			// JSON-looking but malformed: fall back to text, as the stewing
			// pot accepts everything.
			return Text(string(b)), MediaText, nil
		}
		return v, MediaJSON, nil
	case MediaXML:
		v, err := XML(b)
		if err != nil {
			return Text(string(b)), MediaText, nil
		}
		return v, MediaXML, nil
	case MediaEmail:
		v, err := Email(b)
		if err != nil {
			return Text(string(b)), MediaText, nil
		}
		return v, MediaEmail, nil
	case MediaText:
		return Text(string(b)), MediaText, nil
	default:
		return Binary(filename, b), MediaBinary, nil
	}
}
