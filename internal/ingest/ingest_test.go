package ingest

import (
	"strings"
	"testing"
	"time"

	"impliance/internal/docmodel"
)

func TestRowPreservesColumnOrderAndTypes(t *testing.T) {
	cols := []Column{
		{"id", ColInt}, {"name", ColString}, {"balance", ColFloat},
		{"active", ColBool}, {"joined", ColTime},
	}
	v, err := Row(cols, []any{int64(7), "Ada", 12.5, true, "2026-01-02"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Field(0).Name != "id" || v.Field(4).Name != "joined" {
		t.Error("column order not preserved")
	}
	if v.Get("id").IntVal() != 7 || v.Get("name").StringVal() != "Ada" ||
		v.Get("balance").FloatVal() != 12.5 || !v.Get("active").BoolVal() {
		t.Errorf("typed values wrong: %s", v)
	}
	if v.Get("joined").Kind() != docmodel.KindTime {
		t.Error("time column should map to KindTime")
	}
}

func TestRowStringCoercions(t *testing.T) {
	cols := []Column{{"n", ColInt}, {"f", ColFloat}, {"b", ColBool}}
	v, err := Row(cols, []any{" 42 ", " 2.5 ", " true "})
	if err != nil {
		t.Fatal(err)
	}
	if v.Get("n").IntVal() != 42 || v.Get("f").FloatVal() != 2.5 || !v.Get("b").BoolVal() {
		t.Errorf("coercions wrong: %s", v)
	}
}

func TestRowErrors(t *testing.T) {
	if _, err := Row([]Column{{"a", ColInt}}, []any{1, 2}); err == nil {
		t.Error("arity mismatch must fail")
	}
	if _, err := Row([]Column{{"a", ColInt}}, []any{"xyz"}); err == nil {
		t.Error("unparsable int must fail")
	}
	if _, err := Row([]Column{{"a", ColTime}}, []any{"not a time"}); err == nil {
		t.Error("unparsable time must fail")
	}
	// Nil maps to Null regardless of type.
	v, err := Row([]Column{{"a", ColInt}}, []any{nil})
	if err != nil || !v.Get("a").IsNull() {
		t.Error("nil should map to Null")
	}
}

func TestCSV(t *testing.T) {
	data := []byte("id,name,price,note\n1,widget,9.99,\"big, red\"\n2,gadget,,plain\n")
	rows, err := CSV(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	r0 := rows[0]
	if r0.Get("id").IntVal() != 1 || r0.Get("name").StringVal() != "widget" {
		t.Errorf("row 0: %s", r0)
	}
	if r0.Get("price").FloatVal() != 9.99 {
		t.Errorf("price: %s", r0.Get("price"))
	}
	if r0.Get("note").StringVal() != "big, red" {
		t.Errorf("quoted cell: %q", r0.Get("note").StringVal())
	}
	if !rows[1].Get("price").IsNull() {
		t.Error("empty cell should be Null")
	}
}

func TestCSVQuotedQuotes(t *testing.T) {
	rows, err := CSV([]byte("a\n\"say \"\"hi\"\"\"\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0].Get("a").StringVal(); got != `say "hi"` {
		t.Errorf("doubled quotes: %q", got)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := CSV(nil); err == nil {
		t.Error("empty csv must fail")
	}
	if _, err := CSV([]byte("a,b\n1\n")); err == nil {
		t.Error("ragged row must fail")
	}
}

func TestXMLMapping(t *testing.T) {
	src := []byte(`<claim id="C-9" state="open">
		<patient><name>John Smith</name><age>44</age></patient>
		<item code="X1">MRI scan</item>
		<item code="X2">Consult</item>
	</claim>`)
	v, err := XML(src)
	if err != nil {
		t.Fatal(err)
	}
	doc := &docmodel.Document{Root: v}
	if got := doc.First("/claim/@id").StringVal(); got != "C-9" {
		t.Errorf("@id = %q", got)
	}
	if got := doc.First("/claim/patient/name").StringVal(); got != "John Smith" {
		t.Errorf("name = %q", got)
	}
	if got := doc.First("/claim/patient/age").IntVal(); got != 44 {
		t.Errorf("age should be typed int, got %s", doc.First("/claim/patient/age"))
	}
	items := doc.At("/claim/item/#text")
	if len(items) != 2 || items[0].StringVal() != "MRI scan" {
		t.Errorf("repeated elements: %v", items)
	}
	codes := doc.At("/claim/item/@code")
	if len(codes) != 2 || codes[1].StringVal() != "X2" {
		t.Errorf("attrs on repeated elements: %v", codes)
	}
}

func TestXMLErrors(t *testing.T) {
	if _, err := XML([]byte("")); err == nil {
		t.Error("empty xml must fail")
	}
	if _, err := XML([]byte("<a><b></a>")); err == nil {
		t.Error("mismatched tags must fail")
	}
	deep := strings.Repeat("<a>", 300) + strings.Repeat("</a>", 300)
	if _, err := XML([]byte(deep)); err == nil {
		t.Error("overly deep xml must fail")
	}
}

func TestToXMLRoundTripStructure(t *testing.T) {
	src := []byte(`<order id="1"><sku>A</sku><sku>B</sku><qty>2</qty></order>`)
	v, err := XML(src)
	if err != nil {
		t.Fatal(err)
	}
	out := string(ToXML("root", v))
	for _, want := range []string{`id="1"`, "<sku>A</sku>", "<sku>B</sku>", "<qty>2</qty>"} {
		if !strings.Contains(out, want) {
			t.Errorf("ToXML output %s missing %s", out, want)
		}
	}
	// Re-parse the export: structure must be stable.
	v2, err := XML([]byte(out))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	d2 := &docmodel.Document{Root: v2}
	if len(d2.At("/root/order/sku")) != 2 {
		t.Error("round-tripped structure lost repeated elements")
	}
}

func TestToXMLEscaping(t *testing.T) {
	v := docmodel.Object(docmodel.F("msg", docmodel.String(`a<b & "c"`)))
	out := string(ToXML("r", v))
	if !strings.Contains(out, "a&lt;b &amp; &quot;c&quot;") {
		t.Errorf("escaping wrong: %s", out)
	}
}

const sampleEmail = `From: alice@example.com
To: bob@example.com, carol@example.com
Cc: dan@example.com
Subject: Q3 contract renewal
Date: Mon, 2 Jan 2006 15:04:05 -0700
Message-Id: <abc@example.com>
X-Priority: 1

Bob,

please review the attached contract before Friday.

-- Alice`

func TestEmailMapping(t *testing.T) {
	v, err := Email([]byte(sampleEmail))
	if err != nil {
		t.Fatal(err)
	}
	d := &docmodel.Document{Root: v}
	if d.First("/from").StringVal() != "alice@example.com" {
		t.Errorf("from = %s", d.First("/from"))
	}
	tos := d.At("/to")
	if len(tos) != 2 || tos[1].StringVal() != "carol@example.com" {
		t.Errorf("to = %v", tos)
	}
	if d.First("/cc").StringVal() != "dan@example.com" {
		t.Error("single cc should be scalar")
	}
	if d.First("/subject").StringVal() != "Q3 contract renewal" {
		t.Errorf("subject = %s", d.First("/subject"))
	}
	if d.First("/date").Kind() != docmodel.KindTime {
		t.Error("date should parse to KindTime")
	}
	wantDate := time.Date(2006, 1, 2, 22, 4, 5, 0, time.UTC)
	if !d.First("/date").TimeVal().Equal(wantDate) {
		t.Errorf("date = %v, want %v", d.First("/date").TimeVal(), wantDate)
	}
	if d.First("/headers/x-priority").StringVal() != "1" {
		t.Error("extra headers should land under /headers")
	}
	if !strings.Contains(d.First("/body").StringVal(), "review the attached contract") {
		t.Errorf("body = %q", d.First("/body").StringVal())
	}
}

func TestEmailFoldedHeader(t *testing.T) {
	msg := "From: a@x.com\nSubject: one\n two three\n\nbody"
	v, err := Email([]byte(msg))
	if err != nil {
		t.Fatal(err)
	}
	d := &docmodel.Document{Root: v}
	if d.First("/subject").StringVal() != "one two three" {
		t.Errorf("folded subject = %q", d.First("/subject").StringVal())
	}
}

func TestEmailErrors(t *testing.T) {
	if _, err := Email([]byte("no headers here")); err == nil {
		t.Error("header-less text must fail email parse")
	}
}

func TestTextAndBinaryMapping(t *testing.T) {
	v := Text("hello world")
	if v.Get("text").StringVal() != "hello world" {
		t.Error("Text mapping")
	}
	b := Binary("pic.jpg", []byte{1, 2, 3})
	if b.Get("filename").StringVal() != "pic.jpg" || b.Get("size").IntVal() != 3 {
		t.Error("Binary metadata")
	}
	if len(b.Get("content").BytesVal()) != 3 {
		t.Error("Binary content")
	}
}

func TestSniff(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{`{"a":1}`, MediaJSON},
		{`  [1,2]`, MediaJSON},
		{`<doc/>`, MediaXML},
		{sampleEmail, MediaEmail},
		{"just some plain text\nwith lines", MediaText},
		{"", MediaText},
	}
	for _, c := range cases {
		if got := Sniff([]byte(c.in)); got != c.want {
			t.Errorf("Sniff(%.20q) = %s, want %s", c.in, got, c.want)
		}
	}
	if got := Sniff([]byte{0, 1, 2, 0xFF, 0xFE, 0, 0, 0}); got != MediaBinary {
		t.Errorf("Sniff(binary) = %s", got)
	}
}

func TestAutoFallsBackToTextOnMalformed(t *testing.T) {
	v, mt, err := Auto("x", []byte(`{"broken": `))
	if err != nil {
		t.Fatal(err)
	}
	if mt != MediaText {
		t.Errorf("malformed JSON should fall back to text, got %s", mt)
	}
	if !strings.Contains(v.Get("text").StringVal(), "broken") {
		t.Error("fallback should keep raw content")
	}
}

func TestAutoDispatch(t *testing.T) {
	v, mt, err := Auto("f", []byte(`{"k": 5}`))
	if err != nil || mt != MediaJSON || v.Get("k").IntVal() != 5 {
		t.Errorf("Auto json: %v %s %s", err, mt, v)
	}
	_, mt, _ = Auto("f", []byte(`<a>x</a>`))
	if mt != MediaXML {
		t.Errorf("Auto xml: %s", mt)
	}
	_, mt, _ = Auto("f", []byte(sampleEmail))
	if mt != MediaEmail {
		t.Errorf("Auto email: %s", mt)
	}
	_, mt, _ = Auto("f", []byte{0, 255, 254, 0, 0})
	if mt != MediaBinary {
		t.Errorf("Auto binary: %s", mt)
	}
}

func TestInferCell(t *testing.T) {
	if inferCell("42").Kind() != docmodel.KindInt {
		t.Error("int inference")
	}
	if inferCell("4.5").Kind() != docmodel.KindFloat {
		t.Error("float inference")
	}
	if inferCell("true").Kind() != docmodel.KindBool {
		t.Error("bool inference")
	}
	if inferCell("2026-06-11").Kind() != docmodel.KindTime {
		t.Error("time inference")
	}
	if inferCell("hello").Kind() != docmodel.KindString {
		t.Error("string fallback")
	}
	if !inferCell("  ").IsNull() {
		t.Error("blank is null")
	}
}
