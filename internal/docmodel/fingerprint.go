package docmodel

import (
	"hash/fnv"
	"sort"
)

// Structural fingerprinting groups documents that share a schema shape even
// though no schema was ever declared (paper §3.2: "using schema mapping
// technologies, structures from different sources can be consolidated").
// The fingerprint is insensitive to field order, array lengths, and the
// Int/Float distinction, so a purchase order ingested from e-mail and one
// ingested from a spreadsheet fingerprint identically when their leaf paths
// agree.

// Fingerprint is a 64-bit structural schema signature.
type Fingerprint uint64

// StructuralFingerprint computes the fingerprint of a document body.
func StructuralFingerprint(root Value) Fingerprint {
	sig := PathSignature(root)
	h := fnv.New64a()
	for _, e := range sig {
		h.Write([]byte(e))
		h.Write([]byte{0})
	}
	return Fingerprint(h.Sum64())
}

// PathSignature returns the sorted list of "path:kindclass" strings that
// defines the document's shape. Kind classes fold Int and Float into
// "num" and treat Time as its own class; arrays contribute their element
// shapes (repetition collapses).
func PathSignature(root Value) []string {
	seen := map[string]struct{}{}
	var visit func(prefix string, v Value)
	visit = func(prefix string, v Value) {
		switch v.Kind() {
		case KindObject:
			for _, f := range v.Fields() {
				visit(prefix+"/"+f.Name, f.Value)
			}
		case KindArray:
			for _, e := range v.Elems() {
				visit(prefix, e)
			}
		default:
			p := prefix
			if p == "" {
				p = "/"
			}
			seen[p+":"+kindClass(v.Kind())] = struct{}{}
		}
	}
	visit("", root)
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func kindClass(k Kind) string {
	switch k {
	case KindInt, KindFloat:
		return "num"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	case KindBytes:
		return "bytes"
	case KindRef:
		return "ref"
	case KindNull:
		return "null"
	default:
		return "str"
	}
}

// SignatureOverlap returns the Jaccard similarity of two path signatures,
// used by schema mapping to decide whether two document shapes describe the
// same real-world record type.
func SignatureOverlap(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[string]struct{}, len(a))
	for _, s := range a {
		set[s] = struct{}{}
	}
	inter := 0
	for _, s := range b {
		if _, ok := set[s]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
