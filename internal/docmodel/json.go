package docmodel

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// JSON interchange. The native model is richer than JSON (times, bytes,
// refs, int-vs-float), so the mapping is: times render as RFC 3339 strings,
// bytes as base64 strings, refs as {"$ref": "origin.seq"}. FromJSONValue
// maps JSON numbers to Int when integral, Float otherwise; it never
// produces Time/Bytes/Ref (those are re-derived by annotators).

// ToJSON renders the value as JSON text.
func ToJSON(v Value) []byte {
	b, err := json.Marshal(toJSONAny(v))
	if err != nil {
		// Only unencodable floats can fail; render them as null.
		return []byte("null")
	}
	return b
}

func toJSONAny(v Value) any {
	switch v.Kind() {
	case KindNull:
		return nil
	case KindBool:
		return v.BoolVal()
	case KindInt:
		return v.IntVal()
	case KindFloat:
		f := v.FloatVal()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil
		}
		return f
	case KindString:
		return v.StringVal()
	case KindBytes:
		return base64.StdEncoding.EncodeToString(v.BytesVal())
	case KindTime:
		return v.TimeVal().Format(time.RFC3339Nano)
	case KindRef:
		return map[string]any{"$ref": v.RefVal().String()}
	case KindArray:
		out := make([]any, 0, v.Len())
		for _, e := range v.Elems() {
			out = append(out, toJSONAny(e))
		}
		return out
	case KindObject:
		// Use an ordered rendering via json.RawMessage assembly to keep
		// field order; encoding/json maps would sort keys.
		return orderedObject(v)
	}
	return nil
}

// orderedObject marshals object fields preserving their order.
type orderedObject Value

// MarshalJSON implements json.Marshaler for ordered objects.
func (o orderedObject) MarshalJSON() ([]byte, error) {
	v := Value(o)
	buf := []byte{'{'}
	for i, f := range v.Fields() {
		if i > 0 {
			buf = append(buf, ',')
		}
		name, err := json.Marshal(f.Name)
		if err != nil {
			return nil, err
		}
		buf = append(buf, name...)
		buf = append(buf, ':')
		val, err := json.Marshal(toJSONAny(f.Value))
		if err != nil {
			return nil, err
		}
		buf = append(buf, val...)
	}
	return append(buf, '}'), nil
}

// FromJSON parses JSON text into a Value.
func FromJSON(b []byte) (Value, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return Null, fmt.Errorf("docmodel: parse json: %w", err)
	}
	return FromJSONValue(raw), nil
}

// FromJSONValue converts a decoded encoding/json value (any of nil, bool,
// string, json.Number, float64, []any, map[string]any) into a Value. Map
// key order is not preserved by encoding/json, so object fields come out
// sorted; ingestors that care about order build values directly.
func FromJSONValue(raw any) Value {
	switch x := raw.(type) {
	case nil:
		return Null
	case bool:
		return Bool(x)
	case string:
		return String(x)
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return Int(i)
		}
		f, _ := x.Float64()
		return Float(f)
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1<<53 {
			return Int(int64(x))
		}
		return Float(x)
	case []any:
		elems := make([]Value, 0, len(x))
		for _, e := range x {
			elems = append(elems, FromJSONValue(e))
		}
		return Array(elems...)
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sortStrings(keys)
		fields := make([]Field, 0, len(keys))
		for _, k := range keys {
			fields = append(fields, F(k, FromJSONValue(x[k])))
		}
		return Object(fields...)
	default:
		return String(fmt.Sprint(x))
	}
}
