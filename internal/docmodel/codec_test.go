package docmodel

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeDecodeDocumentRoundTrip(t *testing.T) {
	d := sampleDoc()
	d.Annotates = DocID{Origin: 8, Seq: 15}
	d.Annotator = "entity"
	d.Class = 2 // regulatory: the class must survive persistence
	b := EncodeDocument(d)
	got, err := DecodeDocument(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != d.ID || got.Version != d.Version || got.MediaType != d.MediaType ||
		got.Source != d.Source || !got.IngestedAt.Equal(d.IngestedAt) ||
		got.Annotates != d.Annotates || got.Annotator != d.Annotator || got.Class != d.Class {
		t.Errorf("header mismatch: %+v vs %+v", got, d)
	}
	if !got.Root.Equal(d.Root) {
		t.Errorf("body mismatch:\n got %s\nwant %s", got.Root, d.Root)
	}
}

// TestDecodeDocumentAcceptsLegacyV1: WAL stores persisted before the
// class byte was added (codec version 1) must stay replayable; their
// documents decode with Class 0.
func TestDecodeDocumentAcceptsLegacyV1(t *testing.T) {
	d := sampleDoc()
	d.Annotates = DocID{Origin: 8, Seq: 15}
	d.Annotator = "entity"
	legacy := []byte{1}
	legacy = appendUvarint(legacy, uint64(d.ID.Origin))
	legacy = appendUvarint(legacy, d.ID.Seq)
	legacy = appendUvarint(legacy, uint64(d.Version))
	legacy = appendString(legacy, d.MediaType)
	legacy = appendString(legacy, d.Source)
	legacy = appendUvarint(legacy, uint64(d.IngestedAt.UTC().UnixNano()))
	legacy = appendUvarint(legacy, uint64(d.Annotates.Origin))
	legacy = appendUvarint(legacy, d.Annotates.Seq)
	legacy = appendString(legacy, d.Annotator)
	legacy = appendValue(legacy, d.Root)
	got, err := DecodeDocument(legacy)
	if err != nil {
		t.Fatalf("legacy v1 buffer rejected: %v", err)
	}
	if got.ID != d.ID || got.Annotator != d.Annotator || !got.Root.Equal(d.Root) {
		t.Errorf("legacy decode mismatch: %+v vs %+v", got, d)
	}
	if got.Class != 0 {
		t.Errorf("legacy decode Class = %d, want 0", got.Class)
	}
}

func TestDecodeDocumentRejectsCorruption(t *testing.T) {
	d := sampleDoc()
	b := EncodeDocument(d)
	if _, err := DecodeDocument(nil); err == nil {
		t.Error("nil buffer must fail")
	}
	if _, err := DecodeDocument(b[:len(b)/2]); err == nil {
		t.Error("truncated buffer must fail")
	}
	bad := append([]byte{}, b...)
	bad[0] = 99 // wrong codec version
	if _, err := DecodeDocument(bad); err == nil {
		t.Error("wrong version byte must fail")
	}
	// Trailing garbage must be detected.
	if _, err := DecodeDocument(append(append([]byte{}, b...), 0xFF)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestDecodeValueFuzzDoesNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	valid := EncodeValue(sampleDoc().Root)
	for i := 0; i < 2000; i++ {
		b := append([]byte{}, valid...)
		// Flip a few random bytes; decoder must either succeed or error,
		// never panic or loop.
		for j := 0; j < 3; j++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
		}
		_, _ = DecodeValue(b)
	}
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		_, _ = DecodeValue(b)
	}
}

// randomValue builds an arbitrary document tree for property testing.
func randomValue(rng *rand.Rand, depth int) Value {
	if depth > 4 {
		return Int(rng.Int63())
	}
	switch rng.Intn(10) {
	case 0:
		return Null
	case 1:
		return Bool(rng.Intn(2) == 0)
	case 2:
		return Int(rng.Int63() - math.MaxInt64/2)
	case 3:
		return Float(rng.NormFloat64() * 1e6)
	case 4:
		return String(randomString(rng))
	case 5:
		b := make([]byte, rng.Intn(16))
		rng.Read(b)
		return Bytes(b)
	case 6:
		return Time(time.Unix(rng.Int63n(4e9)-2e9, rng.Int63n(1e9)).UTC())
	case 7:
		return Ref(DocID{Origin: rng.Uint32(), Seq: rng.Uint64()})
	case 8:
		n := rng.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(rng, depth+1)
		}
		return Array(elems...)
	default:
		n := rng.Intn(4)
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = F(randomString(rng), randomValue(rng, depth+1))
		}
		return Object(fields...)
	}
}

func randomString(rng *rand.Rand) string {
	n := rng.Intn(12)
	b := make([]rune, n)
	letters := []rune("abcdefghij κλμ 日本語/with.specials-")
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		v := randomValue(rng, 0)
		got, err := DecodeValue(EncodeValue(v))
		if err != nil {
			t.Fatalf("iteration %d: decode failed: %v for %s", i, err, v)
		}
		if !got.Equal(v) {
			t.Fatalf("iteration %d: round trip mismatch:\n got %s\nwant %s", i, got, v)
		}
	}
}

func TestPropertyCompareConsistentWithEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 500; i++ {
		a := randomValue(rng, 0)
		b := randomValue(rng, 0)
		if a.Equal(b) && a.Compare(b) != 0 {
			t.Fatalf("Equal but Compare != 0: %s vs %s", a, b)
		}
		if a.Compare(b) == 0 && isNumeric(a.Kind()) == isNumeric(b.Kind()) &&
			a.Kind() == b.Kind() && !a.Equal(b) {
			// Same-kind Compare==0 must imply Equal except float -0/+0.
			if a.Kind() == KindFloat {
				continue
			}
			t.Fatalf("Compare==0 but !Equal: %s vs %s", a, b)
		}
	}
}

func TestPropertyContentHashEqualDocsViaQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomValue(rng, 0)
		d1 := &Document{ID: DocID{1, 1}, Version: 1, Root: v}
		d2 := &Document{ID: DocID{2, 9}, Version: 5, Root: v}
		// Hash covers the body only, so same body => same hash.
		return d1.ContentHash() == d2.ContentHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyZigzagRoundTrip(t *testing.T) {
	f := func(i int64) bool { return unzigzag(zigzag(i)) == i }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	v := Object(
		F("s", String("hi")),
		F("i", Int(42)),
		F("f", Float(1.25)),
		F("b", Bool(true)),
		F("n", Null),
		F("a", Array(Int(1), Int(2))),
	)
	j := ToJSON(v)
	got, err := FromJSON(j)
	if err != nil {
		t.Fatal(err)
	}
	// encoding/json does not preserve map key order, so FromJSON returns
	// objects with sorted fields (documented); compare modulo field order.
	if !got.Equal(v.SortFields()) {
		t.Errorf("JSON round trip:\n got %s\nwant %s\njson %s", got, v.SortFields(), j)
	}
}

func TestJSONFieldOrderPreservedOnOutput(t *testing.T) {
	v := Object(F("zebra", Int(1)), F("apple", Int(2)))
	j := string(ToJSON(v))
	if j != `{"zebra":1,"apple":2}` {
		t.Errorf("field order not preserved: %s", j)
	}
}

func TestJSONSpecialRenderings(t *testing.T) {
	ts := time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC)
	v := Object(
		F("t", Time(ts)),
		F("raw", Bytes([]byte{0xDE, 0xAD})),
		F("r", Ref(DocID{2, 5})),
		F("nan", Float(math.NaN())),
	)
	j := string(ToJSON(v))
	for _, want := range []string{`"2026-03-04T05:06:07Z"`, `"3q0="`, `{"$ref":"2.5"}`, `"nan":null`} {
		if !contains(j, want) {
			t.Errorf("JSON %s missing %s", j, want)
		}
	}
}

func TestFromJSONNumberClassification(t *testing.T) {
	v, err := FromJSON([]byte(`{"i": 7, "f": 7.5, "big": 1e300}`))
	if err != nil {
		t.Fatal(err)
	}
	if v.Get("i").Kind() != KindInt {
		t.Error("integral JSON number should map to Int")
	}
	if v.Get("f").Kind() != KindFloat || v.Get("big").Kind() != KindFloat {
		t.Error("fractional/huge JSON numbers should map to Float")
	}
}

func TestFromJSONMalformed(t *testing.T) {
	if _, err := FromJSON([]byte(`{"x": `)); err == nil {
		t.Error("malformed JSON must fail")
	}
}

func TestFingerprintInsensitiveToOrderAndRepetition(t *testing.T) {
	a := Object(F("name", String("x")), F("qty", Int(1)),
		F("items", Array(Object(F("sku", String("a"))))))
	b := Object(F("qty", Float(2.5)), F("name", String("y")),
		F("items", Array(Object(F("sku", String("b"))), Object(F("sku", String("c"))))))
	if StructuralFingerprint(a) != StructuralFingerprint(b) {
		t.Error("fingerprint should ignore field order, int/float class, repetition")
	}
	c := Object(F("name", String("x")), F("extra", Bool(true)))
	if StructuralFingerprint(a) == StructuralFingerprint(c) {
		t.Error("different shapes should fingerprint differently")
	}
}

func TestSignatureOverlap(t *testing.T) {
	a := PathSignature(Object(F("a", Int(1)), F("b", String("x"))))
	b := PathSignature(Object(F("a", Int(2)), F("c", String("y"))))
	got := SignatureOverlap(a, b)
	if math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("overlap = %f, want 1/3", got)
	}
	if SignatureOverlap(nil, nil) != 1 {
		t.Error("two empty signatures are identical")
	}
	if SignatureOverlap(a, nil) != 0 {
		t.Error("empty vs non-empty should be 0")
	}
	if SignatureOverlap(a, a) != 1 {
		t.Error("self overlap should be 1")
	}
}

func TestEncodedSizeReasonable(t *testing.T) {
	d := sampleDoc()
	b := EncodeDocument(d)
	if len(b) > 400 {
		t.Errorf("encoding unexpectedly large: %d bytes", len(b))
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

var _ = reflect.DeepEqual // keep reflect import if quick usage changes
