// Package docmodel implements Impliance's uniform document model (paper
// §3.2, Figure 2): a single native representation into which every kind of
// input — relational rows, XML, JSON, e-mail, plain text, multimedia
// metadata — is mapped on ingestion.
//
// A document is an immutable, versioned tree of typed values. Object fields
// are ordered (so XML and relational column order survive round-trips), and
// every leaf is addressable by a structural path such as
// "/claim/patient/name". The model deliberately carries no schema: schema
// is discovered later by the annotation and discovery subsystems.
package docmodel

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The kinds of value a document tree may contain.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
	KindTime
	KindArray
	KindObject
	KindRef // reference to another document (annotation links, join edges)
)

var kindNames = [...]string{
	KindNull:   "null",
	KindBool:   "bool",
	KindInt:    "int",
	KindFloat:  "float",
	KindString: "string",
	KindBytes:  "bytes",
	KindTime:   "time",
	KindArray:  "array",
	KindObject: "object",
	KindRef:    "ref",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Value is a node in a document tree. The zero Value is null.
//
// Values are treated as immutable once attached to a Document; mutating
// helpers (Set, Append) return new trees sharing unchanged substructure.
type Value struct {
	kind Kind
	num  uint64 // bool/int/float/time payload
	str  string // string payload
	by   []byte // bytes payload
	arr  []Value
	obj  []Field
	ref  DocID
	sec  int64 // time seconds; num holds nanos
}

// Field is a single named member of an object value. Field order is
// significant and preserved.
type Field struct {
	Name  string
	Value Value
}

// Null is the null value.
var Null = Value{}

// Bool returns a boolean value.
func Bool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, num: math.Float64bits(f)} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Bytes returns a binary value. The slice is not copied; callers must not
// mutate it afterwards.
func Bytes(b []byte) Value { return Value{kind: KindBytes, by: b} }

// Time returns a timestamp value with nanosecond precision (UTC).
func Time(t time.Time) Value {
	t = t.UTC()
	return Value{kind: KindTime, sec: t.Unix(), num: uint64(t.Nanosecond())}
}

// Array returns an array value from the given elements.
func Array(elems ...Value) Value { return Value{kind: KindArray, arr: elems} }

// Object returns an object value from the given fields, preserving order.
func Object(fields ...Field) Value { return Value{kind: KindObject, obj: fields} }

// Ref returns a reference to another document. References are how
// annotation documents point at their base document and how discovered
// relationships link entities (paper §3.2).
func Ref(id DocID) Value { return Value{kind: KindRef, ref: id} }

// F is shorthand for constructing a Field.
func F(name string, v Value) Field { return Field{Name: name, Value: v} }

// Kind reports the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// BoolVal returns the boolean payload (false if not a bool).
func (v Value) BoolVal() bool { return v.kind == KindBool && v.num != 0 }

// IntVal returns the integer payload (0 if not an int).
func (v Value) IntVal() int64 {
	if v.kind != KindInt {
		return 0
	}
	return int64(v.num)
}

// FloatVal returns the float payload; integer values are widened.
func (v Value) FloatVal() float64 {
	switch v.kind {
	case KindFloat:
		return math.Float64frombits(v.num)
	case KindInt:
		return float64(int64(v.num))
	default:
		return 0
	}
}

// StringVal returns the string payload ("" if not a string).
func (v Value) StringVal() string {
	if v.kind != KindString {
		return ""
	}
	return v.str
}

// BytesVal returns the bytes payload (nil if not bytes).
func (v Value) BytesVal() []byte {
	if v.kind != KindBytes {
		return nil
	}
	return v.by
}

// TimeVal returns the timestamp payload (zero time if not a time).
func (v Value) TimeVal() time.Time {
	if v.kind != KindTime {
		return time.Time{}
	}
	return time.Unix(v.sec, int64(v.num)).UTC()
}

// RefVal returns the referenced document ID (zero if not a ref).
func (v Value) RefVal() DocID {
	if v.kind != KindRef {
		return DocID{}
	}
	return v.ref
}

// Len returns the number of elements (array) or fields (object), else 0.
func (v Value) Len() int {
	switch v.kind {
	case KindArray:
		return len(v.arr)
	case KindObject:
		return len(v.obj)
	default:
		return 0
	}
}

// Elem returns the i-th array element; Null if out of range or not array.
func (v Value) Elem(i int) Value {
	if v.kind != KindArray || i < 0 || i >= len(v.arr) {
		return Null
	}
	return v.arr[i]
}

// Elems returns the backing element slice of an array (nil otherwise).
// Callers must not mutate it.
func (v Value) Elems() []Value {
	if v.kind != KindArray {
		return nil
	}
	return v.arr
}

// Field returns the i-th field of an object.
func (v Value) Field(i int) Field {
	if v.kind != KindObject || i < 0 || i >= len(v.obj) {
		return Field{}
	}
	return v.obj[i]
}

// Fields returns the backing field slice of an object (nil otherwise).
// Callers must not mutate it.
func (v Value) Fields() []Field {
	if v.kind != KindObject {
		return nil
	}
	return v.obj
}

// Get returns the first field with the given name, or Null.
func (v Value) Get(name string) Value {
	if v.kind != KindObject {
		return Null
	}
	for _, f := range v.obj {
		if f.Name == name {
			return f.Value
		}
	}
	return Null
}

// Has reports whether an object has a field with the given name.
func (v Value) Has(name string) bool {
	if v.kind != KindObject {
		return false
	}
	for _, f := range v.obj {
		if f.Name == name {
			return true
		}
	}
	return false
}

// Set returns a copy of the object with the named field replaced (or
// appended if absent). The receiver is unchanged.
func (v Value) Set(name string, val Value) Value {
	if v.kind != KindObject {
		return Object(F(name, val))
	}
	out := make([]Field, len(v.obj), len(v.obj)+1)
	copy(out, v.obj)
	for i := range out {
		if out[i].Name == name {
			out[i].Value = val
			return Value{kind: KindObject, obj: out}
		}
	}
	out = append(out, F(name, val))
	return Value{kind: KindObject, obj: out}
}

// Append returns a copy of the array with elems appended.
func (v Value) Append(elems ...Value) Value {
	if v.kind != KindArray {
		return Array(elems...)
	}
	out := make([]Value, 0, len(v.arr)+len(elems))
	out = append(out, v.arr...)
	out = append(out, elems...)
	return Value{kind: KindArray, arr: out}
}

// Equal reports deep structural equality, including field order.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool, KindInt:
		return v.num == w.num
	case KindFloat:
		return math.Float64frombits(v.num) == math.Float64frombits(w.num)
	case KindString:
		return v.str == w.str
	case KindBytes:
		return string(v.by) == string(w.by)
	case KindTime:
		return v.sec == w.sec && v.num == w.num
	case KindRef:
		return v.ref == w.ref
	case KindArray:
		if len(v.arr) != len(w.arr) {
			return false
		}
		for i := range v.arr {
			if !v.arr[i].Equal(w.arr[i]) {
				return false
			}
		}
		return true
	case KindObject:
		if len(v.obj) != len(w.obj) {
			return false
		}
		for i := range v.obj {
			if v.obj[i].Name != w.obj[i].Name || !v.obj[i].Value.Equal(w.obj[i].Value) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders two values. Values of different kinds order by kind; this
// gives the value index a total order. Arrays/objects compare element-wise.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		// Numeric kinds compare cross-kind so that Int(3) < Float(3.5).
		if isNumeric(v.kind) && isNumeric(w.kind) {
			return cmpFloat(v.FloatVal(), w.FloatVal())
		}
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return int(v.num) - int(w.num)
	case KindInt:
		a, b := int64(v.num), int64(w.num)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case KindFloat:
		return cmpFloat(math.Float64frombits(v.num), math.Float64frombits(w.num))
	case KindString:
		return strings.Compare(v.str, w.str)
	case KindBytes:
		return strings.Compare(string(v.by), string(w.by))
	case KindTime:
		switch {
		case v.sec != w.sec:
			if v.sec < w.sec {
				return -1
			}
			return 1
		case v.num != w.num:
			if v.num < w.num {
				return -1
			}
			return 1
		}
		return 0
	case KindRef:
		return v.ref.Compare(w.ref)
	case KindArray:
		n := min(len(v.arr), len(w.arr))
		for i := 0; i < n; i++ {
			if c := v.arr[i].Compare(w.arr[i]); c != 0 {
				return c
			}
		}
		return len(v.arr) - len(w.arr)
	case KindObject:
		n := min(len(v.obj), len(w.obj))
		for i := 0; i < n; i++ {
			if c := strings.Compare(v.obj[i].Name, w.obj[i].Name); c != 0 {
				return c
			}
			if c := v.obj[i].Value.Compare(w.obj[i].Value); c != 0 {
				return c
			}
		}
		return len(v.obj) - len(w.obj)
	}
	return 0
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// String renders the value in a compact JSON-like form for debugging.
func (v Value) String() string {
	var sb strings.Builder
	v.render(&sb)
	return sb.String()
}

func (v Value) render(sb *strings.Builder) {
	switch v.kind {
	case KindNull:
		sb.WriteString("null")
	case KindBool:
		if v.num != 0 {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case KindInt:
		sb.WriteString(strconv.FormatInt(int64(v.num), 10))
	case KindFloat:
		sb.WriteString(strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64))
	case KindString:
		sb.WriteString(strconv.Quote(v.str))
	case KindBytes:
		fmt.Fprintf(sb, "bytes[%d]", len(v.by))
	case KindTime:
		sb.WriteString(v.TimeVal().Format(time.RFC3339Nano))
	case KindRef:
		sb.WriteString("ref:")
		sb.WriteString(v.ref.String())
	case KindArray:
		sb.WriteByte('[')
		for i, e := range v.arr {
			if i > 0 {
				sb.WriteByte(',')
			}
			e.render(sb)
		}
		sb.WriteByte(']')
	case KindObject:
		sb.WriteByte('{')
		for i, f := range v.obj {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Quote(f.Name))
			sb.WriteByte(':')
			f.Value.render(sb)
		}
		sb.WriteByte('}')
	}
}

// SortFields returns a copy of an object with fields sorted by name; used
// by structural fingerprinting so field order does not fragment schemas.
func (v Value) SortFields() Value {
	if v.kind != KindObject {
		return v
	}
	out := make([]Field, len(v.obj))
	copy(out, v.obj)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return Value{kind: KindObject, obj: out}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
