package docmodel

import (
	"math"
	"testing"
	"time"
)

func sampleDoc() *Document {
	return &Document{
		ID:         DocID{Origin: 3, Seq: 42},
		Version:    2,
		MediaType:  "application/json",
		Source:     "unit-test",
		IngestedAt: time.Date(2026, 6, 11, 10, 0, 0, 0, time.UTC),
		Root: Object(
			F("customer", Object(
				F("name", String("Ada Lovelace")),
				F("age", Int(36)),
				F("vip", Bool(true)),
			)),
			F("orders", Array(
				Object(F("sku", String("A-1")), F("qty", Int(2)), F("price", Float(19.5))),
				Object(F("sku", String("B-9")), F("qty", Int(1)), F("price", Float(7.25))),
			)),
			F("note", Null),
			F("blob", Bytes([]byte{1, 2, 3})),
			F("when", Time(time.Date(2026, 1, 2, 3, 4, 5, 6, time.UTC))),
			F("base", Ref(DocID{Origin: 1, Seq: 7})),
		),
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Bool(true).BoolVal() || Bool(false).BoolVal() {
		t.Error("BoolVal mismatch")
	}
	if Int(-17).IntVal() != -17 {
		t.Errorf("IntVal = %d, want -17", Int(-17).IntVal())
	}
	if Float(2.5).FloatVal() != 2.5 {
		t.Error("FloatVal mismatch")
	}
	if Int(4).FloatVal() != 4.0 {
		t.Error("Int should widen through FloatVal")
	}
	if String("x").StringVal() != "x" {
		t.Error("StringVal mismatch")
	}
	if string(Bytes([]byte("ab")).BytesVal()) != "ab" {
		t.Error("BytesVal mismatch")
	}
	ts := time.Date(2020, 5, 6, 7, 8, 9, 10, time.UTC)
	if !Time(ts).TimeVal().Equal(ts) {
		t.Error("TimeVal mismatch")
	}
	id := DocID{Origin: 9, Seq: 100}
	if Ref(id).RefVal() != id {
		t.Error("RefVal mismatch")
	}
	// Wrong-kind accessors return zero values.
	if String("x").IntVal() != 0 || Int(1).StringVal() != "" || Null.BytesVal() != nil {
		t.Error("cross-kind accessors should return zero values")
	}
}

func TestObjectGetSetHas(t *testing.T) {
	o := Object(F("a", Int(1)), F("b", Int(2)))
	if o.Get("a").IntVal() != 1 || o.Get("b").IntVal() != 2 {
		t.Fatal("Get mismatch")
	}
	if !o.Get("zzz").IsNull() {
		t.Error("missing field should be Null")
	}
	if !o.Has("a") || o.Has("zzz") {
		t.Error("Has mismatch")
	}
	o2 := o.Set("a", Int(10))
	if o.Get("a").IntVal() != 1 {
		t.Error("Set must not mutate receiver")
	}
	if o2.Get("a").IntVal() != 10 {
		t.Error("Set replacement failed")
	}
	o3 := o.Set("c", Int(3))
	if o3.Len() != 3 || o3.Get("c").IntVal() != 3 {
		t.Error("Set append failed")
	}
	if o3.Field(2).Name != "c" {
		t.Error("appended field must preserve order at the end")
	}
}

func TestArrayAppendAndElems(t *testing.T) {
	a := Array(Int(1))
	b := a.Append(Int(2), Int(3))
	if a.Len() != 1 {
		t.Error("Append must not mutate receiver")
	}
	if b.Len() != 3 || b.Elem(2).IntVal() != 3 {
		t.Error("Append failed")
	}
	if !b.Elem(99).IsNull() {
		t.Error("out-of-range Elem should be Null")
	}
	if Null.Append(Int(5)).Len() != 1 {
		t.Error("Append to non-array should create an array")
	}
}

func TestEqualAndCompare(t *testing.T) {
	d1 := sampleDoc().Root
	d2 := sampleDoc().Root
	if !d1.Equal(d2) {
		t.Fatal("identical trees must be Equal")
	}
	if d1.Compare(d2) != 0 {
		t.Fatal("identical trees must Compare 0")
	}
	if Int(1).Equal(Float(1)) {
		t.Error("Int and Float are distinct kinds for Equal")
	}
	if Int(1).Compare(Float(1.5)) >= 0 {
		t.Error("cross-numeric compare should order Int(1) < Float(1.5)")
	}
	if Int(2).Compare(Float(1.5)) <= 0 {
		t.Error("cross-numeric compare should order Int(2) > Float(1.5)")
	}
	if String("a").Compare(String("b")) >= 0 {
		t.Error("string compare broken")
	}
	if Array(Int(1)).Compare(Array(Int(1), Int(2))) >= 0 {
		t.Error("shorter array should order first")
	}
	if Bool(false).Compare(Bool(true)) >= 0 {
		t.Error("false < true")
	}
	ts1, ts2 := Time(time.Unix(10, 0)), Time(time.Unix(20, 0))
	if ts1.Compare(ts2) >= 0 {
		t.Error("time ordering broken")
	}
}

func TestCompareIsTotalOrderOnKinds(t *testing.T) {
	vals := []Value{
		Null, Bool(true), Int(5), Float(2.5), String("s"),
		Bytes([]byte("b")), Time(time.Unix(0, 0)),
		Array(Int(1)), Object(F("k", Int(1))), Ref(DocID{1, 1}),
	}
	for i := range vals {
		for j := range vals {
			c1, c2 := vals[i].Compare(vals[j]), vals[j].Compare(vals[i])
			if sign(c1) != -sign(c2) {
				t.Errorf("Compare not antisymmetric for %v vs %v", vals[i], vals[j])
			}
			if i == j && c1 != 0 {
				t.Errorf("Compare(x,x) != 0 for %v", vals[i])
			}
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestWalkLeavesAndPaths(t *testing.T) {
	d := sampleDoc()
	paths := d.Paths()
	want := []string{
		"/base", "/blob", "/customer/age", "/customer/name", "/customer/vip",
		"/note", "/orders/price", "/orders/qty", "/orders/sku", "/when",
	}
	if len(paths) != len(want) {
		t.Fatalf("Paths() = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("Paths()[%d] = %q, want %q", i, paths[i], want[i])
		}
	}
	// Array elements repeat the same path: /orders/sku appears twice in leaves.
	n := 0
	for _, pv := range d.Leaves() {
		if pv.Path == "/orders/sku" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("expected 2 leaves at /orders/sku, got %d", n)
	}
}

func TestWalkLeavesEarlyStop(t *testing.T) {
	d := sampleDoc()
	count := 0
	d.WalkLeaves(func(pv PathVisit) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d leaves, want 3", count)
	}
}

func TestAt(t *testing.T) {
	d := sampleDoc()
	if got := d.First("/customer/name").StringVal(); got != "Ada Lovelace" {
		t.Errorf("At /customer/name = %q", got)
	}
	skus := d.At("/orders/sku")
	if len(skus) != 2 || skus[0].StringVal() != "A-1" || skus[1].StringVal() != "B-9" {
		t.Errorf("At /orders/sku = %v", skus)
	}
	if d.At("/missing/path") != nil {
		t.Error("missing path should return nil")
	}
	if len(d.At("/")) != 1 || d.At("/")[0].Kind() != KindObject {
		t.Error("root path should return root")
	}
	if !d.First("/nope").IsNull() {
		t.Error("First on missing path should be Null")
	}
}

func TestRefs(t *testing.T) {
	d := sampleDoc()
	refs := d.Refs()
	if len(refs) != 1 || refs[0] != (DocID{Origin: 1, Seq: 7}) {
		t.Errorf("Refs = %v", refs)
	}
}

func TestContentHashStability(t *testing.T) {
	a, b := sampleDoc(), sampleDoc()
	if a.ContentHash() != b.ContentHash() {
		t.Error("identical documents must hash identically")
	}
	c := sampleDoc()
	c.Root = c.Root.Set("extra", Int(1))
	if a.ContentHash() == c.ContentHash() {
		t.Error("different documents should (almost surely) hash differently")
	}
}

func TestDocIDStringRoundTrip(t *testing.T) {
	id := DocID{Origin: 12, Seq: 987654321}
	got, err := ParseDocID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Errorf("round trip %v != %v", got, id)
	}
	for _, bad := range []string{"", "12", "a.b", "1.", ".2", "1.x", "99999999999999.1"} {
		if _, err := ParseDocID(bad); err == nil {
			t.Errorf("ParseDocID(%q) should fail", bad)
		}
	}
}

func TestVersionKeyString(t *testing.T) {
	k := VersionKey{Doc: DocID{1, 2}, Ver: 3}
	if k.String() != "1.2@3" {
		t.Errorf("VersionKey.String() = %q", k.String())
	}
}

func TestKindString(t *testing.T) {
	if KindString.String() != "string" || KindObject.String() != "object" {
		t.Error("Kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestValueStringRendering(t *testing.T) {
	v := Object(F("a", Array(Int(1), Float(2.5))), F("b", String("x")))
	got := v.String()
	want := `{"a":[1,2.5],"b":"x"}`
	if got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
	if Bool(true).String() != "true" || Null.String() != "null" {
		t.Error("scalar rendering broken")
	}
}

func TestSortFields(t *testing.T) {
	v := Object(F("b", Int(2)), F("a", Int(1)))
	s := v.SortFields()
	if s.Field(0).Name != "a" || s.Field(1).Name != "b" {
		t.Error("SortFields did not sort")
	}
	if v.Field(0).Name != "b" {
		t.Error("SortFields must not mutate receiver")
	}
	if !Int(1).SortFields().Equal(Int(1)) {
		t.Error("SortFields on non-object should be identity")
	}
}

func TestFloatSpecialValues(t *testing.T) {
	if !Float(math.NaN()).Equal(Float(math.NaN())) {
		// NaN equality via bit comparison is intentional for storage dedup.
		t.Skip("NaN bit-equality not guaranteed across NaN payloads")
	}
}

func TestAnnotationFlag(t *testing.T) {
	d := sampleDoc()
	if d.IsAnnotation() {
		t.Error("base doc must not be annotation")
	}
	d.Annotates = DocID{1, 1}
	if !d.IsAnnotation() {
		t.Error("doc with Annotates set must be annotation")
	}
}

func TestClone(t *testing.T) {
	d := sampleDoc()
	c := d.Clone()
	c.Version = 99
	if d.Version == 99 {
		t.Error("Clone must not share header")
	}
	if !c.Root.Equal(d.Root) {
		t.Error("Clone should share body")
	}
}
