package docmodel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Binary codec for documents. This is the appliance's native persisted
// format (paper §3.2: "when data is persisted, it is first persisted in
// Impliance's native format"). The encoding is self-describing,
// length-prefixed, and varint-based, so storage nodes can apply pushed-down
// predicates without a schema catalog.

var (
	// ErrCorrupt is returned when decoding malformed bytes.
	ErrCorrupt = errors.New("docmodel: corrupt encoding")
)

// codecVersion 2 added the data-class byte to the header; version 3
// added the flags byte (bit0 = tombstone) behind it.
const codecVersion = 3

// Header flag bits (codec version 3+).
const hdrFlagDeleted = 1

// EncodeDocument serializes a document version into a fresh buffer.
func EncodeDocument(d *Document) []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, codecVersion)
	buf = appendUvarint(buf, uint64(d.ID.Origin))
	buf = appendUvarint(buf, d.ID.Seq)
	buf = appendUvarint(buf, uint64(d.Version))
	buf = appendString(buf, d.MediaType)
	buf = appendString(buf, d.Source)
	buf = appendUvarint(buf, uint64(d.IngestedAt.UTC().UnixNano()))
	buf = appendUvarint(buf, uint64(d.Annotates.Origin))
	buf = appendUvarint(buf, d.Annotates.Seq)
	buf = appendString(buf, d.Annotator)
	buf = append(buf, d.Class)
	var flags byte
	if d.Deleted {
		flags |= hdrFlagDeleted
	}
	buf = append(buf, flags)
	buf = appendValue(buf, d.Root)
	return buf
}

// DecodeDocument parses a buffer produced by EncodeDocument. Version-1
// buffers (no class byte) remain decodable so WAL stores persisted by
// earlier builds replay: their documents default to Class 0 (user), and
// restart recovery's annotation heuristic re-derives the rest.
func DecodeDocument(b []byte) (*Document, error) {
	h, r, err := decodeHeaderPrefix(b)
	if err != nil {
		return nil, err
	}
	d := Document{
		ID: h.ID, Version: h.Version,
		MediaType: h.MediaType, Source: h.Source,
		IngestedAt: h.IngestedAt,
		Annotates:  h.Annotates, Annotator: h.Annotator,
		Class: h.Class, Deleted: h.Deleted,
	}
	d.Root = r.value(0)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-r.off)
	}
	return &d, nil
}

// decodeHeaderPrefix is the one parser of the document header layout,
// returning the reader positioned at the body. DecodeDocument and
// DecodeDocumentHeader both build on it so the two can never drift.
func decodeHeaderPrefix(b []byte) (DocHeader, *reader, error) {
	if len(b) == 0 || b[0] < 1 || b[0] > codecVersion {
		return DocHeader{}, nil, fmt.Errorf("%w: bad codec version", ErrCorrupt)
	}
	ver := b[0]
	r := &reader{b: b, off: 1}
	var h DocHeader
	h.ID.Origin = uint32(r.uvarint())
	h.ID.Seq = r.uvarint()
	h.Version = uint32(r.uvarint())
	h.MediaType = r.str()
	h.Source = r.str()
	h.IngestedAt = time.Unix(0, int64(r.uvarint())).UTC()
	h.Annotates.Origin = uint32(r.uvarint())
	h.Annotates.Seq = r.uvarint()
	h.Annotator = r.str()
	if ver >= 2 {
		h.Class = r.byte()
	}
	if ver >= 3 {
		flags := r.byte()
		h.Deleted = flags&hdrFlagDeleted != 0
	}
	if r.err != nil {
		return DocHeader{}, nil, r.err
	}
	return h, r, nil
}

// DocHeader is the fixed prefix of an encoded document: identity,
// provenance, and storage-management metadata — everything a store needs
// to place a version in its chains without materializing the body.
// Storage backends decode headers during replay so recovery cost is
// bounded by header size, not document size.
type DocHeader struct {
	ID         DocID
	Version    uint32
	MediaType  string
	Source     string
	IngestedAt time.Time
	Annotates  DocID
	Annotator  string
	Class      uint8
	Deleted    bool
}

// IsAnnotation mirrors Document.IsAnnotation for header-only decodes.
func (h DocHeader) IsAnnotation() bool { return !h.Annotates.IsZero() }

// DecodeDocumentHeader parses just the header prefix of a buffer produced
// by EncodeDocument, skipping the body. Unlike DecodeDocument it does not
// verify trailing bytes — the body is deliberately left unparsed.
func DecodeDocumentHeader(b []byte) (DocHeader, error) {
	h, _, err := decodeHeaderPrefix(b)
	return h, err
}

// EncodeValue serializes a single value (used by index payloads).
func EncodeValue(v Value) []byte {
	return appendValue(make([]byte, 0, 32), v)
}

// DecodeValue parses a buffer produced by EncodeValue.
func DecodeValue(b []byte) (Value, error) {
	r := reader{b: b}
	v := r.value(0)
	if r.err != nil {
		return Null, r.err
	}
	if r.off != len(b) {
		return Null, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return v, nil
}

func appendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Kind()))
	switch v.Kind() {
	case KindNull:
	case KindBool:
		if v.BoolVal() {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindInt:
		buf = appendUvarint(buf, zigzag(v.IntVal()))
	case KindFloat:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.FloatVal()))
		buf = append(buf, tmp[:]...)
	case KindString:
		buf = appendString(buf, v.StringVal())
	case KindBytes:
		buf = appendUvarint(buf, uint64(len(v.BytesVal())))
		buf = append(buf, v.BytesVal()...)
	case KindTime:
		t := v.TimeVal()
		buf = appendUvarint(buf, zigzag(t.Unix()))
		buf = appendUvarint(buf, uint64(t.Nanosecond()))
	case KindRef:
		buf = appendUvarint(buf, uint64(v.RefVal().Origin))
		buf = appendUvarint(buf, v.RefVal().Seq)
	case KindArray:
		buf = appendUvarint(buf, uint64(v.Len()))
		for _, e := range v.Elems() {
			buf = appendValue(buf, e)
		}
	case KindObject:
		buf = appendUvarint(buf, uint64(v.Len()))
		for _, f := range v.Fields() {
			buf = appendString(buf, f.Name)
			buf = appendValue(buf, f.Value)
		}
	}
	return buf
}

// maxDepth bounds recursion when decoding untrusted bytes.
const maxDepth = 256

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}

func (r *reader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return u
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)-r.off) < n {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)-r.off) < n {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

func (r *reader) value(depth int) Value {
	if r.err != nil {
		return Null
	}
	if depth > maxDepth {
		r.fail()
		return Null
	}
	k := Kind(r.byte())
	switch k {
	case KindNull:
		return Null
	case KindBool:
		return Bool(r.byte() != 0)
	case KindInt:
		return Int(unzigzag(r.uvarint()))
	case KindFloat:
		if r.off+8 > len(r.b) {
			r.fail()
			return Null
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
		return Float(f)
	case KindString:
		return String(r.str())
	case KindBytes:
		return Bytes(r.bytes())
	case KindTime:
		sec := unzigzag(r.uvarint())
		nsec := r.uvarint()
		if nsec >= 1e9 {
			r.fail()
			return Null
		}
		return Time(time.Unix(sec, int64(nsec)).UTC())
	case KindRef:
		origin := r.uvarint()
		seq := r.uvarint()
		if origin > math.MaxUint32 {
			r.fail()
			return Null
		}
		return Ref(DocID{Origin: uint32(origin), Seq: seq})
	case KindArray:
		n := r.uvarint()
		if r.err != nil || n > uint64(len(r.b)) {
			r.fail()
			return Null
		}
		elems := make([]Value, 0, n)
		for i := uint64(0); i < n; i++ {
			elems = append(elems, r.value(depth+1))
			if r.err != nil {
				return Null
			}
		}
		return Array(elems...)
	case KindObject:
		n := r.uvarint()
		if r.err != nil || n > uint64(len(r.b)) {
			r.fail()
			return Null
		}
		fields := make([]Field, 0, n)
		for i := uint64(0); i < n; i++ {
			name := r.str()
			fields = append(fields, F(name, r.value(depth+1)))
			if r.err != nil {
				return Null
			}
		}
		return Object(fields...)
	default:
		r.fail()
		return Null
	}
}

func appendUvarint(buf []byte, u uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], u)
	return append(buf, tmp[:n]...)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func zigzag(i int64) uint64   { return uint64((i << 1) ^ (i >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
