package docmodel

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DocID identifies a logical document within an appliance. The node that
// first persisted the document contributes Origin, and Seq is that node's
// monotonically increasing sequence number; together they are unique
// without any global coordination, matching the paper's requirement that
// ingest never blocks on a central authority.
type DocID struct {
	Origin uint32
	Seq    uint64
}

// IsZero reports whether the ID is the zero (invalid) ID.
func (id DocID) IsZero() bool { return id.Origin == 0 && id.Seq == 0 }

// Compare orders IDs by (Origin, Seq).
func (id DocID) Compare(other DocID) int {
	switch {
	case id.Origin < other.Origin:
		return -1
	case id.Origin > other.Origin:
		return 1
	case id.Seq < other.Seq:
		return -1
	case id.Seq > other.Seq:
		return 1
	}
	return 0
}

// String renders the ID as "origin.seq".
func (id DocID) String() string {
	return strconv.FormatUint(uint64(id.Origin), 10) + "." + strconv.FormatUint(id.Seq, 10)
}

// ParseDocID parses the "origin.seq" form produced by String.
func ParseDocID(s string) (DocID, error) {
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return DocID{}, fmt.Errorf("docmodel: malformed doc id %q", s)
	}
	o, err := strconv.ParseUint(s[:dot], 10, 32)
	if err != nil {
		return DocID{}, fmt.Errorf("docmodel: malformed doc id %q: %v", s, err)
	}
	q, err := strconv.ParseUint(s[dot+1:], 10, 64)
	if err != nil {
		return DocID{}, fmt.Errorf("docmodel: malformed doc id %q: %v", s, err)
	}
	return DocID{Origin: uint32(o), Seq: q}, nil
}

// VersionKey identifies one immutable version of a document. Versions are
// numbered from 1; version n+1 supersedes version n. Updates never happen
// in place (paper §4): a new version is appended and replicas converge
// asynchronously.
type VersionKey struct {
	Doc DocID
	Ver uint32
}

// String renders the key as "origin.seq@ver".
func (k VersionKey) String() string {
	return k.Doc.String() + "@" + strconv.FormatUint(uint64(k.Ver), 10)
}

// Document is one immutable version of a document: the unit of ingestion,
// storage, indexing, annotation, and retrieval.
type Document struct {
	ID      DocID
	Version uint32 // 1 for the initially infused version

	// MediaType records the original external format, e.g. "relational/row",
	// "application/xml", "message/rfc822", "text/plain", "application/json".
	MediaType string

	// Source names the ingestion source (a feed, table, or mailbox); it is
	// queryable metadata, not an access path.
	Source string

	// IngestedAt is when this version entered the appliance.
	IngestedAt time.Time

	// Root is the document body. For most formats this is an object.
	Root Value

	// Annotates, when non-zero, marks this document as an annotation
	// document derived from the given base document (paper §3.2: annotators
	// "create new annotation documents that refer to the initial
	// document"). Base documents leave it zero.
	Annotates DocID

	// Annotator names the annotator that produced an annotation document.
	Annotator string

	// Class records the document's storage-management data class (the
	// numeric value of virt.DataClass: 0 user, 1 derived, 2 regulatory).
	// It is persisted in the header so restart recovery re-registers the
	// document at its original replication factor instead of inferring
	// the class from the document shape.
	Class uint8

	// Deleted marks this version as a tombstone: the document is gone as
	// of this version. Deletion is itself an append (the store never
	// updates in place), so tombstones replicate and replay like any
	// other version; segment merge is what eventually reclaims fully
	// tombstoned chains from disk.
	Deleted bool
}

// Key returns the version key for this document version.
func (d *Document) Key() VersionKey { return VersionKey{Doc: d.ID, Ver: d.Version} }

// IsAnnotation reports whether this is a derived annotation document.
func (d *Document) IsAnnotation() bool { return !d.Annotates.IsZero() }

// Clone returns a shallow copy of the document with a deep-shared body
// (values are immutable, so sharing is safe).
func (d *Document) Clone() *Document {
	cp := *d
	return &cp
}

// A PathVisit is one leaf (or ref) reached during a structural walk: the
// slash-separated path from the root and the value found there. Array
// elements repeat the same path, as in XML element repetition, so the path
// index naturally groups repeated substructure.
type PathVisit struct {
	Path  string
	Value Value
}

// WalkLeaves calls fn for every leaf value in the tree, depth-first, with
// its structural path. Object traversal follows field order. fn returning
// false stops the walk early.
func (d *Document) WalkLeaves(fn func(PathVisit) bool) {
	walk("", d.Root, fn)
}

func walk(prefix string, v Value, fn func(PathVisit) bool) bool {
	switch v.Kind() {
	case KindObject:
		for _, f := range v.Fields() {
			if !walk(prefix+"/"+f.Name, f.Value, fn) {
				return false
			}
		}
		// An empty object is itself observable at its path.
		if v.Len() == 0 {
			return fn(PathVisit{Path: orRoot(prefix), Value: v})
		}
		return true
	case KindArray:
		if v.Len() == 0 {
			return fn(PathVisit{Path: orRoot(prefix), Value: v})
		}
		for _, e := range v.Elems() {
			if !walk(prefix, e, fn) {
				return false
			}
		}
		return true
	default:
		return fn(PathVisit{Path: orRoot(prefix), Value: v})
	}
}

func orRoot(p string) string {
	if p == "" {
		return "/"
	}
	return p
}

// Leaves collects every PathVisit in the document.
func (d *Document) Leaves() []PathVisit {
	var out []PathVisit
	d.WalkLeaves(func(pv PathVisit) bool {
		out = append(out, pv)
		return true
	})
	return out
}

// Paths returns the sorted set of distinct structural paths in the
// document. The appliance indexes every one of these automatically
// (paper §3.2: "indexes each document by its values as well as its
// structures (e.g., every path in the document)").
func (d *Document) Paths() []string {
	seen := map[string]struct{}{}
	d.WalkLeaves(func(pv PathVisit) bool {
		seen[pv.Path] = struct{}{}
		return true
	})
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sortStrings(out)
	return out
}

// At returns the values found at the given slash-separated path. Array
// elements fan out — both along the path and at its end — matching the
// leaf-walk semantics the path index uses, so At("/to") on a document whose
// "to" field is an array yields the individual addresses. A path of "/"
// returns the root unexpanded.
func (d *Document) At(path string) []Value {
	if path == "" || path == "/" {
		return []Value{d.Root}
	}
	segs := strings.Split(strings.TrimPrefix(path, "/"), "/")
	cur := []Value{d.Root}
	for _, seg := range segs {
		var next []Value
		for _, v := range cur {
			next = appendAtSegment(next, v, seg)
		}
		if len(next) == 0 {
			return nil
		}
		cur = next
	}
	return flattenArrays(nil, cur)
}

func flattenArrays(dst []Value, vs []Value) []Value {
	for _, v := range vs {
		if v.Kind() == KindArray {
			dst = flattenArrays(dst, v.Elems())
		} else {
			dst = append(dst, v)
		}
	}
	return dst
}

func appendAtSegment(dst []Value, v Value, seg string) []Value {
	switch v.Kind() {
	case KindArray:
		for _, e := range v.Elems() {
			dst = appendAtSegment(dst, e, seg)
		}
	case KindObject:
		for _, f := range v.Fields() {
			if f.Name == seg {
				dst = append(dst, f.Value)
			}
		}
	}
	return dst
}

// First returns the first value at path, or Null.
func (d *Document) First(path string) Value {
	vs := d.At(path)
	if len(vs) == 0 {
		return Null
	}
	return vs[0]
}

// Refs returns every document reference contained in the tree, in walk
// order. The connection-query engine treats these as graph edges.
func (d *Document) Refs() []DocID {
	var out []DocID
	d.WalkLeaves(func(pv PathVisit) bool {
		if pv.Value.Kind() == KindRef {
			out = append(out, pv.Value.RefVal())
		}
		return true
	})
	return out
}

// ContentHash returns a 64-bit structural hash of the document body,
// stable across processes. Identical bodies hash identically; it is used
// for replica verification and deduplication, not for security.
func (d *Document) ContentHash() uint64 {
	h := fnv.New64a()
	hashValue(h, d.Root)
	return h.Sum64()
}

type hash64 interface {
	Write([]byte) (int, error)
	Sum64() uint64
}

func hashValue(h hash64, v Value) {
	var tag [1]byte
	tag[0] = byte(v.Kind())
	h.Write(tag[:])
	switch v.Kind() {
	case KindBool:
		if v.BoolVal() {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	case KindInt:
		writeU64(h, uint64(v.IntVal()))
	case KindFloat:
		writeU64(h, mathFloat64bits(v.FloatVal()))
	case KindString:
		h.Write([]byte(v.StringVal()))
	case KindBytes:
		h.Write(v.BytesVal())
	case KindTime:
		t := v.TimeVal()
		writeU64(h, uint64(t.Unix()))
		writeU64(h, uint64(t.Nanosecond()))
	case KindRef:
		writeU64(h, uint64(v.RefVal().Origin))
		writeU64(h, v.RefVal().Seq)
	case KindArray:
		for _, e := range v.Elems() {
			hashValue(h, e)
		}
	case KindObject:
		for _, f := range v.Fields() {
			h.Write([]byte(f.Name))
			h.Write([]byte{0})
			hashValue(h, f.Value)
		}
	}
}

func writeU64(h hash64, u uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	h.Write(b[:])
}

func sortStrings(s []string) { sort.Strings(s) }

func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }
