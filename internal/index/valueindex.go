package index

import (
	"sort"

	"impliance/internal/docmodel"
)

// valueIndex is the typed per-path value index: a lazily-sorted run of
// (value, docID) pairs ordered by the document model's total value order,
// supporting equality and range lookups. Removals tombstone and the run is
// rebuilt when tombstones dominate — the incremental-maintenance strategy
// the paper calls for when annotations stream in continuously (§3.3).
type valueIndex struct {
	entries []valueEntry
	removed map[docmodel.DocID]struct{}
	dirty   bool // true when entries need re-sorting
}

type valueEntry struct {
	val docmodel.Value
	id  docmodel.DocID
}

func newValueIndex() *valueIndex {
	return &valueIndex{removed: map[docmodel.DocID]struct{}{}}
}

// add records a value occurrence. Caller holds the index write lock.
func (vi *valueIndex) add(v docmodel.Value, id docmodel.DocID) {
	// Re-adding a doc that was tombstoned is a new version arriving:
	// purge the old version's entries before clearing the tombstone, or
	// clearing it would resurrect them and lookups on the *old* values
	// would keep matching the document.
	if _, dead := vi.removed[id]; dead {
		kept := vi.entries[:0]
		for _, e := range vi.entries {
			if e.id != id {
				kept = append(kept, e)
			}
		}
		vi.entries = kept
		delete(vi.removed, id)
	}
	vi.entries = append(vi.entries, valueEntry{val: v, id: id})
	vi.dirty = true
}

// remove tombstones every entry of the doc. Caller holds the write lock.
func (vi *valueIndex) remove(id docmodel.DocID) {
	vi.removed[id] = struct{}{}
	if len(vi.removed)*4 > len(vi.entries) && len(vi.entries) > 64 {
		vi.compact()
	}
}

func (vi *valueIndex) compact() {
	out := vi.entries[:0]
	for _, e := range vi.entries {
		if _, dead := vi.removed[e.id]; !dead {
			out = append(out, e)
		}
	}
	vi.entries = out
	vi.removed = map[docmodel.DocID]struct{}{}
}

func (vi *valueIndex) ensureSorted() {
	if !vi.dirty {
		return
	}
	sort.Slice(vi.entries, func(i, j int) bool {
		if c := vi.entries[i].val.Compare(vi.entries[j].val); c != 0 {
			return c < 0
		}
		return vi.entries[i].id.Compare(vi.entries[j].id) < 0
	})
	vi.dirty = false
}

// lookup returns sorted unique doc IDs having exactly v.
func (vi *valueIndex) lookup(v docmodel.Value) []docmodel.DocID {
	vi.ensureSorted()
	lo := sort.Search(len(vi.entries), func(i int) bool { return vi.entries[i].val.Compare(v) >= 0 })
	var out []docmodel.DocID
	for i := lo; i < len(vi.entries) && vi.entries[i].val.Compare(v) == 0; i++ {
		if _, dead := vi.removed[vi.entries[i].id]; dead {
			continue
		}
		out = append(out, vi.entries[i].id)
	}
	return dedupIDs(out)
}

// rangeLookup returns sorted unique doc IDs with a value in the bounds.
func (vi *valueIndex) rangeLookup(lo, hi *docmodel.Value, loInc, hiInc bool) []docmodel.DocID {
	vi.ensureSorted()
	start := 0
	if lo != nil {
		start = sort.Search(len(vi.entries), func(i int) bool {
			c := vi.entries[i].val.Compare(*lo)
			if loInc {
				return c >= 0
			}
			return c > 0
		})
	}
	var out []docmodel.DocID
	for i := start; i < len(vi.entries); i++ {
		if hi != nil {
			c := vi.entries[i].val.Compare(*hi)
			if c > 0 || (c == 0 && !hiInc) {
				break
			}
		}
		if _, dead := vi.removed[vi.entries[i].id]; dead {
			continue
		}
		out = append(out, vi.entries[i].id)
	}
	return dedupIDs(out)
}

// facets buckets live entries by distinct value.
func (vi *valueIndex) facets(candidates map[docmodel.DocID]struct{}, limit int) []FacetCount {
	vi.ensureSorted()
	var out []FacetCount
	seenInBucket := map[docmodel.DocID]struct{}{}
	for i := 0; i < len(vi.entries); i++ {
		e := vi.entries[i]
		if _, dead := vi.removed[e.id]; dead {
			continue
		}
		if candidates != nil {
			if _, ok := candidates[e.id]; !ok {
				continue
			}
		}
		if len(out) > 0 && out[len(out)-1].Value.Compare(e.val) == 0 {
			if _, dup := seenInBucket[e.id]; !dup {
				out[len(out)-1].Count++
				seenInBucket[e.id] = struct{}{}
			}
		} else {
			out = append(out, FacetCount{Value: e.val, Count: 1})
			seenInBucket = map[docmodel.DocID]struct{}{e.id: {}}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value.Compare(out[j].Value) < 0
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func dedupIDs(ids []docmodel.DocID) []docmodel.DocID {
	sortIDs(ids)
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}
