package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"impliance/internal/docmodel"
)

func doc(seq uint64, fields ...docmodel.Field) *docmodel.Document {
	return &docmodel.Document{
		ID:      docmodel.DocID{Origin: 1, Seq: seq},
		Version: 1,
		Root:    docmodel.Object(fields...),
	}
}

func textDoc(seq uint64, body string) *docmodel.Document {
	return doc(seq, docmodel.F("text", docmodel.String(body)))
}

func TestSearchRanksRelevantFirst(t *testing.T) {
	ix := New(nil)
	ix.Add(textDoc(1, "databases store structured data in tables"))
	ix.Add(textDoc(2, "the appliance manages databases databases databases"))
	ix.Add(textDoc(3, "cats chase mice"))

	hits := ix.Search("databases", 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].ID.Seq != 2 {
		t.Errorf("doc with higher tf should rank first: %v", hits)
	}
	if hits[0].Score <= hits[1].Score {
		t.Error("scores must be descending")
	}
}

func TestSearchTopK(t *testing.T) {
	ix := New(nil)
	for i := uint64(1); i <= 50; i++ {
		ix.Add(textDoc(i, "impliance appliance information"))
	}
	hits := ix.Search("impliance", 5)
	if len(hits) != 5 {
		t.Errorf("top-k should cap hits: %d", len(hits))
	}
	if got := ix.Search("impliance", 0); len(got) != 50 {
		t.Errorf("k=0 returns all: %d", len(got))
	}
}

func TestSearchStemmingAndStopwords(t *testing.T) {
	ix := New(nil)
	ix.Add(textDoc(1, "the system was running quickly"))
	if len(ix.Search("run", 10)) != 1 {
		t.Error("stemming should match run/running")
	}
	if len(ix.Search("the was", 10)) != 0 {
		t.Error("stopword-only query should match nothing")
	}
}

func TestSearchMissingTerm(t *testing.T) {
	ix := New(nil)
	ix.Add(textDoc(1, "hello world"))
	if len(ix.Search("zebra", 10)) != 0 {
		t.Error("missing term should return no hits")
	}
	if len(ix.Search("", 10)) != 0 {
		t.Error("empty query should return no hits")
	}
}

func TestSearchAllTermsConjunctive(t *testing.T) {
	ix := New(nil)
	ix.Add(textDoc(1, "alpha beta"))
	ix.Add(textDoc(2, "alpha gamma"))
	ix.Add(textDoc(3, "alpha beta gamma"))
	hits := ix.SearchAllTerms([]string{"alpha", "beta"}, 0)
	if len(hits) != 2 {
		t.Fatalf("conjunctive hits = %v", hits)
	}
	for _, h := range hits {
		if h.ID.Seq == 2 {
			t.Error("doc 2 lacks beta")
		}
	}
	if hits := ix.SearchAllTerms([]string{"alpha", "zzz"}, 0); len(hits) != 0 {
		t.Error("absent term makes conjunction empty")
	}
}

func TestMatchPhrase(t *testing.T) {
	ix := New(nil)
	ix.Add(textDoc(1, "information management appliance"))
	ix.Add(textDoc(2, "management of appliance information"))
	ids := ix.MatchPhrase("information management")
	if len(ids) != 1 || ids[0].Seq != 1 {
		t.Errorf("phrase hits = %v", ids)
	}
	// Phrases never span fields.
	ix.Add(doc(3,
		docmodel.F("a", docmodel.String("information")),
		docmodel.F("b", docmodel.String("management")),
	))
	ids = ix.MatchPhrase("information management")
	if len(ids) != 1 {
		t.Errorf("cross-field phrase should not match: %v", ids)
	}
}

func TestPathIndex(t *testing.T) {
	ix := New(nil)
	ix.Add(doc(1, docmodel.F("customer", docmodel.Object(docmodel.F("name", docmodel.String("Ada"))))))
	ix.Add(doc(2, docmodel.F("order", docmodel.Object(docmodel.F("sku", docmodel.String("X"))))))
	ids := ix.PathLookup("/customer/name")
	if len(ids) != 1 || ids[0].Seq != 1 {
		t.Errorf("PathLookup = %v", ids)
	}
	paths := ix.PathList()
	if len(paths) != 2 || paths[0] != "/customer/name" || paths[1] != "/order/sku" {
		t.Errorf("PathList = %v", paths)
	}
	if ix.PathLookup("/nope") != nil {
		t.Error("unknown path should be nil")
	}
}

func TestValueLookupTyped(t *testing.T) {
	ix := New(nil)
	ix.Add(doc(1, docmodel.F("age", docmodel.Int(30))))
	ix.Add(doc(2, docmodel.F("age", docmodel.Int(40))))
	ix.Add(doc(3, docmodel.F("age", docmodel.String("40"))))
	ids := ix.ValueLookup("/age", docmodel.Int(40))
	if len(ids) != 1 || ids[0].Seq != 2 {
		t.Errorf("typed equality: %v", ids)
	}
	ids = ix.ValueLookup("/age", docmodel.String("40"))
	if len(ids) != 1 || ids[0].Seq != 3 {
		t.Errorf("string 40 is distinct from int 40: %v", ids)
	}
}

func TestValueRange(t *testing.T) {
	ix := New(nil)
	for i := uint64(1); i <= 10; i++ {
		ix.Add(doc(i, docmodel.F("n", docmodel.Int(int64(i)))))
	}
	lo, hi := docmodel.Int(3), docmodel.Int(6)
	ids := ix.ValueRange("/n", &lo, &hi, true, true)
	if len(ids) != 4 {
		t.Errorf("[3,6] = %v", ids)
	}
	ids = ix.ValueRange("/n", &lo, &hi, false, false)
	if len(ids) != 2 {
		t.Errorf("(3,6) = %v", ids)
	}
	ids = ix.ValueRange("/n", &lo, nil, true, false)
	if len(ids) != 8 {
		t.Errorf("[3,inf) = %v", ids)
	}
	ids = ix.ValueRange("/n", nil, &hi, false, true)
	if len(ids) != 6 {
		t.Errorf("(-inf,6] = %v", ids)
	}
	if ix.ValueRange("/missing", &lo, &hi, true, true) != nil {
		t.Error("unknown path range should be nil")
	}
}

func TestValueRangeMixedKindsOrdered(t *testing.T) {
	ix := New(nil)
	ix.Add(doc(1, docmodel.F("v", docmodel.Int(5))))
	ix.Add(doc(2, docmodel.F("v", docmodel.Float(5.5))))
	ix.Add(doc(3, docmodel.F("v", docmodel.String("zzz"))))
	lo := docmodel.Int(5)
	hi := docmodel.Int(6)
	ids := ix.ValueRange("/v", &lo, &hi, true, true)
	// int 5 and float 5.5 are both in [5,6]; the string is not numeric.
	if len(ids) != 2 {
		t.Errorf("numeric range over mixed kinds: %v", ids)
	}
}

func TestIncrementalRemoveThenAddNewVersion(t *testing.T) {
	ix := New(nil)
	v1 := textDoc(1, "old content about turtles")
	ix.Add(v1)
	if len(ix.Search("turtles", 10)) != 1 {
		t.Fatal("v1 should be searchable")
	}
	// New version replaces the old one in the index.
	v2 := textDoc(1, "new content about rockets")
	v2.Version = 2
	ix.Remove(v1)
	ix.Add(v2)
	if len(ix.Search("turtles", 10)) != 0 {
		t.Error("old version terms must be gone")
	}
	if len(ix.Search("rockets", 10)) != 1 {
		t.Error("new version terms must be live")
	}
	if ix.DocCount() != 1 {
		t.Errorf("doc count = %d", ix.DocCount())
	}
}

// TestValueLookupAfterUpdateDropsOldValue: replacing a document version
// must not leave the old version's values matchable — re-adding a
// tombstoned doc purges its stale entries instead of resurrecting them.
func TestValueLookupAfterUpdateDropsOldValue(t *testing.T) {
	ix := New(nil)
	v1 := doc(1, docmodel.F("a", docmodel.Int(1)))
	ix.Add(v1)
	v2 := doc(1, docmodel.F("a", docmodel.Int(2)))
	v2.Version = 2
	ix.Remove(v1)
	ix.Add(v2)
	if got := ix.ValueLookup("/a", docmodel.Int(1)); len(got) != 0 {
		t.Errorf("stale value still matches after update: %v", got)
	}
	if got := ix.ValueLookup("/a", docmodel.Int(2)); len(got) != 1 {
		t.Errorf("new value not matchable: %v", got)
	}
}

func TestRemoveUnknownIsNoop(t *testing.T) {
	ix := New(nil)
	ix.Add(textDoc(1, "keep me"))
	ix.Remove(textDoc(99, "never added"))
	if ix.DocCount() != 1 || len(ix.Search("keep", 1)) != 1 {
		t.Error("removing unknown doc must not disturb index")
	}
}

func TestRemoveCleansEmptyPostings(t *testing.T) {
	ix := New(nil)
	d := textDoc(1, "unique_term_xyz")
	ix.Add(d)
	ix.Remove(d)
	if ix.TermCount() != 0 {
		t.Errorf("empty postings should be deleted: %d terms", ix.TermCount())
	}
	if len(ix.PathList()) != 0 {
		t.Error("empty path sets should be deleted")
	}
}

func TestFacets(t *testing.T) {
	ix := New(nil)
	regions := []string{"west", "west", "west", "east", "east", "north"}
	for i, r := range regions {
		ix.Add(doc(uint64(i+1), docmodel.F("region", docmodel.String(r))))
	}
	fc := ix.Facets("/region", nil, 0)
	if len(fc) != 3 {
		t.Fatalf("facets = %v", fc)
	}
	if fc[0].Value.StringVal() != "west" || fc[0].Count != 3 {
		t.Errorf("top facet = %+v", fc[0])
	}
	if fc[1].Value.StringVal() != "east" || fc[1].Count != 2 {
		t.Errorf("second facet = %+v", fc[1])
	}
	// Candidate restriction (drill-down).
	cands := map[docmodel.DocID]struct{}{
		{Origin: 1, Seq: 4}: {}, {Origin: 1, Seq: 5}: {}, {Origin: 1, Seq: 6}: {},
	}
	fc = ix.Facets("/region", cands, 0)
	if len(fc) != 2 || fc[0].Value.StringVal() != "east" || fc[0].Count != 2 {
		t.Errorf("drill-down facets = %v", fc)
	}
	// Limit.
	fc = ix.Facets("/region", nil, 1)
	if len(fc) != 1 {
		t.Errorf("limited facets = %v", fc)
	}
}

func TestFacetsCountDocsNotOccurrences(t *testing.T) {
	ix := New(nil)
	// One doc with the same tag twice must count once.
	ix.Add(doc(1, docmodel.F("tags", docmodel.Array(docmodel.String("x"), docmodel.String("x")))))
	ix.Add(doc(2, docmodel.F("tags", docmodel.String("x"))))
	fc := ix.Facets("/tags", nil, 0)
	if len(fc) != 1 || fc[0].Count != 2 {
		t.Errorf("facet doc-count = %v", fc)
	}
}

func TestValueIndexCompaction(t *testing.T) {
	ix := New(nil)
	docs := make([]*docmodel.Document, 0, 200)
	for i := uint64(1); i <= 200; i++ {
		d := doc(i, docmodel.F("n", docmodel.Int(int64(i))))
		docs = append(docs, d)
		ix.Add(d)
	}
	for _, d := range docs[:150] {
		ix.Remove(d)
	}
	lo := docmodel.Int(1)
	hi := docmodel.Int(200)
	ids := ix.ValueRange("/n", &lo, &hi, true, true)
	if len(ids) != 50 {
		t.Errorf("after mass removal: %d live ids", len(ids))
	}
}

func TestConcurrentIndexingAndSearch(t *testing.T) {
	ix := New(nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				seq := uint64(w*1000 + i + 1)
				ix.Add(doc(seq,
					docmodel.F("text", docmodel.String(fmt.Sprintf("worker %d item %d common", w, i))),
					docmodel.F("n", docmodel.Int(int64(i))),
				))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			ix.Search("common", 10)
			ix.Facets("/n", nil, 5)
			lo := docmodel.Int(0)
			hi := docmodel.Int(50)
			ix.ValueRange("/n", &lo, &hi, true, true)
		}
	}()
	wg.Wait()
	if ix.DocCount() != 400 {
		t.Errorf("doc count = %d", ix.DocCount())
	}
	if len(ix.Search("common", 0)) != 400 {
		t.Error("all docs should match common")
	}
}

func TestPropertyAddRemoveRestoresEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	ix := New(nil)
	var docs []*docmodel.Document
	for i := uint64(1); i <= 100; i++ {
		n := rng.Intn(5) + 1
		body := ""
		for j := 0; j < n; j++ {
			body += words[rng.Intn(len(words))] + " "
		}
		d := doc(i,
			docmodel.F("text", docmodel.String(body)),
			docmodel.F("n", docmodel.Int(rng.Int63n(50))),
		)
		docs = append(docs, d)
		ix.Add(d)
	}
	for _, d := range docs {
		ix.Remove(d)
	}
	if ix.DocCount() != 0 || ix.TermCount() != 0 || len(ix.PathList()) != 0 {
		t.Errorf("index not empty after removing everything: docs=%d terms=%d paths=%d",
			ix.DocCount(), ix.TermCount(), len(ix.PathList()))
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	ix := New(nil)
	ix.Add(textDoc(5, "same words here"))
	ix.Add(textDoc(2, "same words here"))
	ix.Add(textDoc(9, "same words here"))
	hits := ix.Search("words", 0)
	if len(hits) != 3 {
		t.Fatal("three hits expected")
	}
	if hits[0].ID.Seq != 2 || hits[1].ID.Seq != 5 || hits[2].ID.Seq != 9 {
		t.Errorf("tie-break should order by ID: %v", hits)
	}
}
