// Package index implements the appliance's automatic indexing of every
// document (paper §3.2: "Impliance automatically indexes each document by
// its values as well as its structures (e.g., every path in the document)
// for efficient keyword and structural search").
//
// Three index families are maintained per data node:
//
//   - a positional full-text inverted index with BM25 ranking over every
//     string leaf;
//   - a structural path index mapping each distinct path to the documents
//     containing it;
//   - a typed value index supporting equality and range lookups with the
//     document model's total value order, keyed by (partition, path,
//     value) so probes can be restricted to the partitions a router
//     selects.
//
// Ownership boundary: an Index owns only *derived*, node-local state —
// postings, path sets, and the per-partition path statistics
// (PartitionStats) the engine's value-probe router consults. It owns no
// placement truth: which documents a node indexes is decided by the
// engine against internal/virt's partition map, and the partition of a
// posting is a pure function of the document ID supplied at construction
// (virt.DocPartition). Because statistics are part of the index, the
// membership hand-off machinery that re-indexes a partition on its new
// owner (core.Engine.catchUpPartition) moves the statistics with it;
// nothing here needs separate transfer.
//
// Indexing is incremental (paper §3.3: "it is important to be able to
// incrementally maintain the index") and decoupled from ingestion: the
// core engine feeds documents through an asynchronous pipeline, and a new
// version's terms replace the old version's. The index is derived data —
// rebuildable from the store — so it is deliberately not persisted
// (paper §3.4 storage management: derived data "can be re-created").
package index

import (
	"math"
	"sort"
	"sync"

	"impliance/internal/docmodel"
	"impliance/internal/text"
)

// BM25 constants (standard Robertson/Spärck Jones defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// Hit is one ranked search result.
type Hit struct {
	ID    docmodel.DocID
	Score float64
}

// Index is a thread-safe per-node index over the latest document versions.
type Index struct {
	analyzer *text.Analyzer
	parts    int
	partOf   func(docmodel.DocID) int

	mu       sync.RWMutex
	terms    map[string]*postingList
	paths    map[string]map[docmodel.DocID]struct{}
	values   map[string]map[int]*valueIndex // path → partition → postings run
	stats    map[int]*partitionStats        // partition → path statistics
	docLen   map[docmodel.DocID]int
	totalLen int64
}

type postingList struct {
	docs map[docmodel.DocID]*posting
}

type posting struct {
	tf        int
	positions []int32
}

// New creates an empty single-partition index using the given analyzer
// (nil for the appliance default). Every value posting lands in partition
// 0 — the right shape for baseline engines and anything that does not run
// over the virt partition layer.
func New(analyzer *text.Analyzer) *Index {
	return NewPartitioned(analyzer, 1, nil)
}

// NewPartitioned creates an empty index whose value postings and path
// statistics are keyed by the partition of the owning document: partOf
// maps a document ID into [0, parts). The engine passes the same hash the
// partition map routes by, so "which of this node's partitions could
// match (path, value)" is answerable locally and probe requests can carry
// a partition filter. A nil partOf (or parts <= 1) degenerates to a
// single partition.
func NewPartitioned(analyzer *text.Analyzer, parts int, partOf func(docmodel.DocID) int) *Index {
	if analyzer == nil {
		analyzer = text.DefaultAnalyzer
	}
	if parts <= 1 || partOf == nil {
		parts = 1
		partOf = func(docmodel.DocID) int { return 0 }
	}
	return &Index{
		analyzer: analyzer,
		parts:    parts,
		partOf:   partOf,
		terms:    map[string]*postingList{},
		paths:    map[string]map[docmodel.DocID]struct{}{},
		values:   map[string]map[int]*valueIndex{},
		stats:    map[int]*partitionStats{},
		docLen:   map[docmodel.DocID]int{},
	}
}

// Partitions returns the partition count the value index is keyed by.
func (ix *Index) Partitions() int { return ix.parts }

// Add indexes a document version. If an older version of the same document
// is currently indexed, the caller must Remove it first (the core engine
// tracks which version is live).
func (ix *Index) Add(d *docmodel.Document) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	part := ix.partOf(d.ID)
	stats := ix.statsFor(part)
	pos := int32(0)
	length := 0
	d.WalkLeaves(func(pv docmodel.PathVisit) bool {
		// Structural path index.
		set, ok := ix.paths[pv.Path]
		if !ok {
			set = map[docmodel.DocID]struct{}{}
			ix.paths[pv.Path] = set
		}
		set[d.ID] = struct{}{}

		// Typed value index (scalars only; arrays fan out in the walk),
		// keyed by the document's partition; the partition's path
		// statistics move in lockstep with the postings.
		switch pv.Value.Kind() {
		case docmodel.KindObject, docmodel.KindArray:
		default:
			ix.valueIndexFor(pv.Path, part).add(pv.Value, d.ID)
			stats.bump(pv.Path, pv.Value.Kind(), +1)
			stats.widen(pv.Path, pv.Value)
		}

		// Full-text postings over string leaves. Positions run across the
		// whole document so phrase matching never spans fields (a gap is
		// inserted between fields).
		if pv.Value.Kind() == docmodel.KindString {
			maxPos := int32(-1)
			ix.analyzer.TokenizeFunc(pv.Value.StringVal(), func(tok text.Token) {
				pl, ok := ix.terms[tok.Term]
				if !ok {
					pl = &postingList{docs: map[docmodel.DocID]*posting{}}
					ix.terms[tok.Term] = pl
				}
				p, ok := pl.docs[d.ID]
				if !ok {
					p = &posting{}
					pl.docs[d.ID] = p
				}
				p.tf++
				p.positions = append(p.positions, pos+int32(tok.Pos))
				if int32(tok.Pos) > maxPos {
					maxPos = int32(tok.Pos)
				}
				length++
			})
			pos += maxPos + 1 + 8 // gap so phrases never span fields
		}
		return true
	})
	ix.totalLen += int64(length)
	ix.docLen[d.ID] = length
}

// Remove unindexes a document version (pass the exact version that was
// added). Removing a never-added document is a no-op.
func (ix *Index) Remove(d *docmodel.Document) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docLen[d.ID]; !ok {
		return
	}
	part := ix.partOf(d.ID)
	stats := ix.statsFor(part)
	d.WalkLeaves(func(pv docmodel.PathVisit) bool {
		if set, ok := ix.paths[pv.Path]; ok {
			delete(set, d.ID)
			if len(set) == 0 {
				delete(ix.paths, pv.Path)
			}
		}
		switch pv.Value.Kind() {
		case docmodel.KindObject, docmodel.KindArray:
		default:
			if vi := ix.values[pv.Path][part]; vi != nil {
				vi.remove(d.ID)
				stats.bump(pv.Path, pv.Value.Kind(), -1)
			}
		}
		if pv.Value.Kind() == docmodel.KindString {
			ix.analyzer.TokenizeFunc(pv.Value.StringVal(), func(tok text.Token) {
				if pl, ok := ix.terms[tok.Term]; ok {
					delete(pl.docs, d.ID)
					if len(pl.docs) == 0 {
						delete(ix.terms, tok.Term)
					}
				}
			})
		}
		return true
	})
	ix.totalLen -= int64(ix.docLen[d.ID])
	delete(ix.docLen, d.ID)
}

// DocCount returns the number of indexed documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docLen)
}

// TermCount returns the number of distinct terms.
func (ix *Index) TermCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.terms)
}

// Search runs a ranked keyword query: documents matching any query term,
// scored with BM25, top k returned (k <= 0 means all). This is the paper's
// out-of-the-box retrieval interface (§3.2.1).
func (ix *Index) Search(query string, k int) []Hit {
	terms := ix.analyzer.Terms(query)
	return ix.SearchTerms(terms, k)
}

// SearchTerms is Search over pre-analyzed terms.
func (ix *Index) SearchTerms(terms []string, k int) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(terms) == 0 {
		return nil
	}
	n := len(ix.docLen)
	if n == 0 {
		return nil
	}
	avg := float64(ix.totalLen) / float64(n)
	if avg == 0 {
		avg = 1
	}
	scores := map[docmodel.DocID]float64{}
	for _, term := range terms {
		pl, ok := ix.terms[term]
		if !ok {
			continue
		}
		idf := math.Log(1 + (float64(n)-float64(len(pl.docs))+0.5)/(float64(len(pl.docs))+0.5))
		for id, p := range pl.docs {
			dl := float64(ix.docLen[id])
			tf := float64(p.tf)
			scores[id] += idf * (tf * (bm25K1 + 1)) / (tf + bm25K1*(1-bm25B+bm25B*dl/avg))
		}
	}
	hits := make([]Hit, 0, len(scores))
	for id, s := range scores {
		hits = append(hits, Hit{ID: id, Score: s})
	}
	sortHits(hits)
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// SearchAllTerms returns documents containing every term (conjunctive),
// ranked by BM25. Used by the Contains predicate's index route.
func (ix *Index) SearchAllTerms(terms []string, k int) []Hit {
	ix.mu.RLock()
	candidates := ix.intersect(terms)
	ix.mu.RUnlock()
	if candidates == nil {
		return nil
	}
	hits := ix.SearchTerms(terms, 0)
	out := hits[:0]
	for _, h := range hits {
		if _, ok := candidates[h.ID]; ok {
			out = append(out, h)
		}
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// intersect returns the docs containing every term; caller holds RLock.
// Returns nil when any term is absent.
func (ix *Index) intersect(terms []string) map[docmodel.DocID]struct{} {
	if len(terms) == 0 {
		return nil
	}
	// Start from the rarest term for cheap intersection.
	lists := make([]*postingList, len(terms))
	for i, t := range terms {
		pl, ok := ix.terms[t]
		if !ok {
			return nil
		}
		lists[i] = pl
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i].docs) < len(lists[j].docs) })
	out := map[docmodel.DocID]struct{}{}
	for id := range lists[0].docs {
		out[id] = struct{}{}
	}
	for _, pl := range lists[1:] {
		for id := range out {
			if _, ok := pl.docs[id]; !ok {
				delete(out, id)
			}
		}
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// MatchPhrase returns documents where the terms appear consecutively (in
// analyzer positions). Stopwords removed by the analyzer leave gaps, so
// phrases are matched over surviving terms.
func (ix *Index) MatchPhrase(phrase string) []docmodel.DocID {
	toks := ix.analyzer.Tokenize(phrase)
	if len(toks) == 0 {
		return nil
	}
	terms := make([]string, len(toks))
	for i, tk := range toks {
		terms[i] = tk.Term
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	candidates := ix.intersect(terms)
	var out []docmodel.DocID
	for id := range candidates {
		if ix.phraseAt(id, toks) {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

func (ix *Index) phraseAt(id docmodel.DocID, toks []text.Token) bool {
	first := ix.terms[toks[0].Term].docs[id]
	for _, start := range first.positions {
		ok := true
		for i := 1; i < len(toks); i++ {
			want := start + int32(toks[i].Pos-toks[0].Pos)
			if !hasPosition(ix.terms[toks[i].Term].docs[id].positions, want) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func hasPosition(positions []int32, want int32) bool {
	i := sort.Search(len(positions), func(i int) bool { return positions[i] >= want })
	return i < len(positions) && positions[i] == want
}

// PathLookup returns documents containing the structural path, sorted.
func (ix *Index) PathLookup(path string) []docmodel.DocID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	set := ix.paths[path]
	if len(set) == 0 {
		return nil
	}
	out := make([]docmodel.DocID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// PathList returns every indexed structural path, sorted. This powers
// schema exploration without any declared schema.
func (ix *Index) PathList() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.paths))
	for p := range ix.paths {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ValueLookup returns documents having exactly v at path, sorted, across
// every partition.
func (ix *Index) ValueLookup(path string, v docmodel.Value) []docmodel.DocID {
	return ix.ValueLookupIn(nil, path, v)
}

// ValueLookupIn is ValueLookup restricted to the given partitions (nil =
// all). A routed probe carries the partitions the engine's router
// selected for this node, so the node consults only those postings runs.
func (ix *Index) ValueLookupIn(parts []int, path string, v docmodel.Value) []docmodel.DocID {
	// Write lock: value-index reads may lazily sort/compact.
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var out []docmodel.DocID
	for _, vi := range ix.runsFor(path, parts) {
		out = append(out, vi.lookup(v)...)
	}
	sortIDs(out)
	return out
}

// ValueRange returns documents with a value at path in [lo, hi] (nil
// bounds are open), sorted by document ID, across every partition.
func (ix *Index) ValueRange(path string, lo, hi *docmodel.Value, loInc, hiInc bool) []docmodel.DocID {
	return ix.ValueRangeIn(nil, path, lo, hi, loInc, hiInc)
}

// ValueRangeIn is ValueRange restricted to the given partitions (nil =
// all).
func (ix *Index) ValueRangeIn(parts []int, path string, lo, hi *docmodel.Value, loInc, hiInc bool) []docmodel.DocID {
	// Write lock: value-index reads may lazily sort/compact.
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var out []docmodel.DocID
	for _, vi := range ix.runsFor(path, parts) {
		out = append(out, vi.rangeLookup(lo, hi, loInc, hiInc)...)
	}
	sortIDs(out)
	return out
}

// runsFor selects the postings runs of a path for the requested
// partitions (nil = all, ascending partition order). Caller holds the
// write lock. Each document hashes to exactly one partition, so runs are
// disjoint and concatenating their sorted results needs only a re-sort,
// never a dedup.
func (ix *Index) runsFor(path string, parts []int) []*valueIndex {
	byPart := ix.values[path]
	if len(byPart) == 0 {
		return nil
	}
	var out []*valueIndex
	if parts == nil {
		keys := make([]int, 0, len(byPart))
		for p := range byPart {
			keys = append(keys, p)
		}
		sort.Ints(keys)
		for _, p := range keys {
			out = append(out, byPart[p])
		}
		return out
	}
	for _, p := range parts {
		if vi, ok := byPart[p]; ok {
			out = append(out, vi)
		}
	}
	return out
}

// FacetCount is one facet bucket: a distinct value and its document count.
type FacetCount struct {
	Value docmodel.Value
	Count int
}

// Facets computes the distinct values at path over an optional candidate
// set (nil = all docs), sorted by descending count then value — the
// building block of the multi-faceted search interface (paper §3.2.1).
// Buckets are merged across the path's partitions; a document contributes
// to exactly one partition, so counts never double.
func (ix *Index) Facets(path string, candidates map[docmodel.DocID]struct{}, limit int) []FacetCount {
	return ix.FacetsIn(nil, path, candidates, limit)
}

// FacetsIn is Facets restricted to the given partitions (nil = all). A
// routed facet fan-out carries the partitions the engine selected this
// node for, so the node counts only those postings runs instead of its
// whole value index.
func (ix *Index) FacetsIn(parts []int, path string, candidates map[docmodel.DocID]struct{}, limit int) []FacetCount {
	// Write lock: value-index reads may lazily sort/compact.
	ix.mu.Lock()
	defer ix.mu.Unlock()
	runs := ix.runsFor(path, parts)
	if len(runs) == 0 {
		return nil
	}
	if len(runs) == 1 {
		return runs[0].facets(candidates, limit)
	}
	var all []FacetCount
	for _, vi := range runs {
		all = append(all, vi.facets(candidates, 0)...)
	}
	// Combine buckets with equal values across partitions, then restore
	// the count-descending order.
	sort.SliceStable(all, func(i, j int) bool { return all[i].Value.Compare(all[j].Value) < 0 })
	merged := all[:0]
	for _, fc := range all {
		if n := len(merged); n > 0 && merged[n-1].Value.Compare(fc.Value) == 0 {
			merged[n-1].Count += fc.Count
			continue
		}
		merged = append(merged, fc)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Count != merged[j].Count {
			return merged[i].Count > merged[j].Count
		}
		return merged[i].Value.Compare(merged[j].Value) < 0
	})
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	return merged
}

func (ix *Index) valueIndexFor(path string, part int) *valueIndex {
	byPart, ok := ix.values[path]
	if !ok {
		byPart = map[int]*valueIndex{}
		ix.values[path] = byPart
	}
	vi, ok := byPart[part]
	if !ok {
		vi = newValueIndex()
		byPart[part] = vi
	}
	return vi
}

func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID.Compare(hits[j].ID) < 0
	})
}

func sortIDs(ids []docmodel.DocID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
}
