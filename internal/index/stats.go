package index

import (
	"sort"

	"impliance/internal/docmodel"
)

// Per-partition path statistics: for each partition a node holds value
// postings for, which structural paths have live postings and the
// histogram of their value kinds. The engine's value-probe router reads
// these to compute the minimal node set that can answer a (path, value)
// predicate — a partition that has never observed the path (or never the
// queried kind) cannot match and is pruned from the fan-out.
//
// The statistics are maintained inside Add/Remove, in lockstep with the
// postings themselves, so the membership hand-off machinery that
// re-indexes a partition on its new owner moves them implicitly: after a
// hand-off the old owner's counters for the partition drain to zero and
// the new owner's grow, with no separate transfer protocol.

// partitionStats is one partition's path statistics. Guarded by the
// index mutex.
type partitionStats struct {
	paths map[string]*pathStats
}

// pathStats counts one (partition, path)'s live value postings by kind
// and tracks the observed value bounds.
type pathStats struct {
	postings int // live scalar leaf postings under the path
	kinds    [maxKinds]int

	// Observed value range, widen-only: Remove never narrows the bounds
	// (the true extremum may have left), so they are conservative — safe
	// for pruning, never for answering. They reset naturally when the
	// path's postings drain to zero and the entry is deleted.
	bounded  bool
	min, max docmodel.Value
}

// maxKinds bounds the docmodel.Kind histogram (kinds are a small enum;
// Object/Array never reach the value index).
const maxKinds = 16

func (ix *Index) statsFor(part int) *partitionStats {
	ps, ok := ix.stats[part]
	if !ok {
		ps = &partitionStats{paths: map[string]*pathStats{}}
		ix.stats[part] = ps
	}
	return ps
}

// bump adjusts the (path, kind) counters by delta. Caller holds the
// index write lock. A path whose postings drain to zero is forgotten, so
// "has the partition observed this path" means live postings, not
// history.
func (ps *partitionStats) bump(path string, k docmodel.Kind, delta int) {
	st, ok := ps.paths[path]
	if !ok {
		if delta <= 0 {
			return
		}
		st = &pathStats{}
		ps.paths[path] = st
	}
	st.postings += delta
	if int(k) < maxKinds {
		st.kinds[k] += delta
	}
	if st.postings <= 0 {
		delete(ps.paths, path)
	}
}

// widen grows the (path)'s observed value bounds to cover v. Caller
// holds the index write lock; the path entry must exist (bump with a
// positive delta precedes every widen).
func (ps *partitionStats) widen(path string, v docmodel.Value) {
	st, ok := ps.paths[path]
	if !ok {
		return
	}
	if !st.bounded {
		st.min, st.max, st.bounded = v, v, true
		return
	}
	if v.Compare(st.min) < 0 {
		st.min = v
	}
	if v.Compare(st.max) > 0 {
		st.max = v
	}
}

// Admits is the router's single-lock admission check: whether the
// partition has a live value posting under the path — and, when a kind
// hint is supplied, of a kind the probe could match (Int/Float as one
// numeric class). False means probing this node for the partition
// cannot return results.
func (ix *Index) Admits(part int, path string, k docmodel.Kind, kindKnown bool) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ps, ok := ix.stats[part]
	if !ok {
		return false
	}
	st, ok := ps.paths[path]
	if !ok {
		return false
	}
	if !kindKnown {
		return true
	}
	return st.admitsKind(k)
}

func (st *pathStats) admitsKind(k docmodel.Kind) bool {
	if numericKind(k) {
		return st.kinds[docmodel.KindInt] > 0 || st.kinds[docmodel.KindFloat] > 0
	}
	if int(k) >= maxKinds {
		return st.postings > 0
	}
	return st.kinds[k] > 0
}

func numericKind(k docmodel.Kind) bool {
	return k == docmodel.KindInt || k == docmodel.KindFloat
}

// AdmitsValueRange reports whether the interval [lo, hi] (nil bounds
// open, inclusivity as given) can overlap the partition's observed value
// bounds for the path — the router consults it so a range probe skips
// partitions whose values provably lie outside the interval, and an
// equality probe (lo = hi = v, both inclusive) skips partitions whose
// bounds exclude v. The bounds are widen-only, so false is definitive
// while true merely means "cannot rule out". Comparison uses the same
// cross-kind total order the range lookup scans by, so pruning is
// consistent with what the probe would return.
func (ix *Index) AdmitsValueRange(part int, path string, lo, hi *docmodel.Value, loInc, hiInc bool) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ps, ok := ix.stats[part]
	if !ok {
		return false
	}
	st, ok := ps.paths[path]
	if !ok || !st.bounded {
		return ok // no bounds observed yet: nothing to prune by
	}
	if lo != nil {
		if c := st.max.Compare(*lo); c < 0 || (c == 0 && !loInc) {
			return false
		}
	}
	if hi != nil {
		if c := st.min.Compare(*hi); c > 0 || (c == 0 && !hiInc) {
			return false
		}
	}
	return true
}

// MayContainPath reports whether the partition has any live value
// posting under the path on this node. False means a probe of this
// node's partition cannot return results for any predicate on the path.
func (ix *Index) MayContainPath(part int, path string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ps, ok := ix.stats[part]
	if !ok {
		return false
	}
	_, ok = ps.paths[path]
	return ok
}

// MayContainKind reports whether the partition has a live value posting
// of the kind (or, for numeric kinds, of either numeric kind — the value
// order compares Int and Float cross-kind, so an Int probe can match a
// Float posting) under the path on this node.
func (ix *Index) MayContainKind(part int, path string, k docmodel.Kind) bool {
	return ix.Admits(part, path, k, true)
}

// PartitionsWithPath lists the partitions that have live value postings
// under the path on this node, ascending (diagnostics and tests).
func (ix *Index) PartitionsWithPath(path string) []int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []int
	for p, ps := range ix.stats {
		if _, ok := ps.paths[path]; ok {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// PathCountIn reports how many distinct paths the partition has live
// value postings for on this node (monitoring hook: the "distinct paths
// seen" statistic).
func (ix *Index) PathCountIn(part int) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ps, ok := ix.stats[part]
	if !ok {
		return 0
	}
	return len(ps.paths)
}
