package index

import (
	"reflect"
	"testing"

	"impliance/internal/docmodel"
)

// seqMod4 partitions test docs by Seq so each doc's partition is known.
func seqMod4(id docmodel.DocID) int { return int(id.Seq % 4) }

func TestValueLookupInFiltersByPartition(t *testing.T) {
	ix := NewPartitioned(nil, 4, seqMod4)
	for seq := uint64(1); seq <= 8; seq++ {
		ix.Add(doc(seq, docmodel.F("k", docmodel.Int(7))))
	}
	all := ix.ValueLookupIn(nil, "/k", docmodel.Int(7))
	if len(all) != 8 {
		t.Fatalf("all-partition lookup = %d docs, want 8", len(all))
	}
	// Partition 1 holds Seq 1 and 5 only.
	got := ix.ValueLookupIn([]int{1}, "/k", docmodel.Int(7))
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 5 {
		t.Fatalf("partition-1 lookup = %v, want Seq 1 and 5", got)
	}
	// A partition filter spanning two partitions unions their runs.
	got = ix.ValueLookupIn([]int{2, 3}, "/k", docmodel.Int(7))
	if len(got) != 4 {
		t.Fatalf("partition-{2,3} lookup = %v, want 4 docs", got)
	}
	// Ranges honor the same filter.
	lo, hi := docmodel.Int(0), docmodel.Int(100)
	got = ix.ValueRangeIn([]int{0}, "/k", &lo, &hi, true, true)
	if len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 8 {
		t.Fatalf("partition-0 range = %v, want Seq 4 and 8", got)
	}
}

func TestPartitionStatsTrackPathsAndKinds(t *testing.T) {
	ix := NewPartitioned(nil, 4, seqMod4)
	d := doc(5, // partition 1
		docmodel.F("name", docmodel.String("ada")),
		docmodel.F("score", docmodel.Float(9.5)),
	)
	ix.Add(d)

	if !ix.MayContainPath(1, "/name") {
		t.Error("partition 1 should admit /name")
	}
	if ix.MayContainPath(2, "/name") {
		t.Error("partition 2 never observed /name")
	}
	if !ix.MayContainKind(1, "/name", docmodel.KindString) {
		t.Error("partition 1 should admit string at /name")
	}
	if ix.MayContainKind(1, "/name", docmodel.KindInt) {
		t.Error("no numeric posting at /name")
	}
	// Int and Float are one numeric class: an Int probe can match the
	// Float posting at /score (the value order compares them cross-kind).
	if !ix.MayContainKind(1, "/score", docmodel.KindInt) {
		t.Error("Int probe must admit the Float posting at /score")
	}
	if got := ix.PartitionsWithPath("/name"); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("PartitionsWithPath(/name) = %v, want [1]", got)
	}
	if got := ix.PathCountIn(1); got != 2 {
		t.Errorf("PathCountIn(1) = %d, want 2", got)
	}

	// Removal drains the statistics with the postings: "observed" means
	// live postings, not history.
	ix.Remove(d)
	if ix.MayContainPath(1, "/name") || ix.PathCountIn(1) != 0 {
		t.Error("statistics must drain to zero after removal")
	}
	if got := ix.ValueLookupIn(nil, "/name", docmodel.String("ada")); len(got) != 0 {
		t.Errorf("lookup after removal = %v", got)
	}
}

func TestPartitionedFacetsMergeAcrossPartitions(t *testing.T) {
	part := NewPartitioned(nil, 4, seqMod4)
	single := New(nil)
	for seq := uint64(1); seq <= 12; seq++ {
		d := doc(seq, docmodel.F("cat", docmodel.String([]string{"a", "b", "c"}[seq%3])))
		part.Add(d)
		single.Add(d)
	}
	got := part.Facets("/cat", nil, 0)
	want := single.Facets("/cat", nil, 0)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("partitioned facets = %v, want %v", got, want)
	}
	if limited := part.Facets("/cat", nil, 2); len(limited) != 2 {
		t.Errorf("facet limit ignored: %v", limited)
	}
}

func TestSinglePartitionDegenerate(t *testing.T) {
	ix := New(nil)
	ix.Add(doc(9, docmodel.F("k", docmodel.Int(1))))
	if ix.Partitions() != 1 {
		t.Fatalf("New must be single-partition, got %d", ix.Partitions())
	}
	if !ix.MayContainPath(0, "/k") {
		t.Error("single-partition stats should land in partition 0")
	}
	if got := ix.ValueLookupIn([]int{0}, "/k", docmodel.Int(1)); len(got) != 1 {
		t.Errorf("partition-0 lookup = %v", got)
	}
}
