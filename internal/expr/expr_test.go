package expr

import (
	"math/rand"
	"testing"

	"impliance/internal/docmodel"
)

func testDoc() *docmodel.Document {
	return &docmodel.Document{
		ID:        docmodel.DocID{Origin: 1, Seq: 1},
		Version:   1,
		MediaType: "application/json",
		Source:    "feed-a",
		Root: docmodel.Object(
			docmodel.F("name", docmodel.String("Grace Hopper")),
			docmodel.F("age", docmodel.Int(52)),
			docmodel.F("score", docmodel.Float(9.5)),
			docmodel.F("active", docmodel.Bool(true)),
			docmodel.F("tags", docmodel.Array(docmodel.String("navy"), docmodel.String("compiler"))),
			docmodel.F("bio", docmodel.String("Invented the first compiler and popularized machine-independent languages")),
		),
	}
}

func TestCmpEval(t *testing.T) {
	d := testDoc()
	cases := []struct {
		e    Expr
		want bool
	}{
		{Cmp("/age", OpEq, docmodel.Int(52)), true},
		{Cmp("/age", OpNe, docmodel.Int(52)), false},
		{Cmp("/age", OpGt, docmodel.Int(50)), true},
		{Cmp("/age", OpGe, docmodel.Int(52)), true},
		{Cmp("/age", OpLt, docmodel.Int(52)), false},
		{Cmp("/age", OpLe, docmodel.Int(52)), true},
		// Numeric cross-kind: int field vs float literal.
		{Cmp("/age", OpGt, docmodel.Float(51.5)), true},
		{Cmp("/score", OpLt, docmodel.Int(10)), true},
		// Kind-gated: int field never matches string literal.
		{Cmp("/age", OpEq, docmodel.String("52")), false},
		// Array fan-out: existential match.
		{Cmp("/tags", OpEq, docmodel.String("navy")), true},
		{Cmp("/tags", OpEq, docmodel.String("army")), false},
		// Missing path never matches.
		{Cmp("/missing", OpEq, docmodel.Int(1)), false},
	}
	for i, c := range cases {
		if got := c.e.Eval(d); got != c.want {
			t.Errorf("case %d %s: got %v, want %v", i, c.e, got, c.want)
		}
	}
}

func TestBooleanCombinators(t *testing.T) {
	d := testDoc()
	tru := Cmp("/age", OpEq, docmodel.Int(52))
	fls := Cmp("/age", OpEq, docmodel.Int(1))
	if !And(tru, tru).Eval(d) || And(tru, fls).Eval(d) {
		t.Error("And broken")
	}
	if !Or(fls, tru).Eval(d) || Or(fls, fls).Eval(d) {
		t.Error("Or broken")
	}
	if Not(tru).Eval(d) || !Not(fls).Eval(d) {
		t.Error("Not broken")
	}
	if !And().Eval(d) {
		t.Error("empty And is True")
	}
	if Or().Eval(d) {
		t.Error("empty Or is False")
	}
	if !True().Eval(d) {
		t.Error("True broken")
	}
}

func TestContainsEval(t *testing.T) {
	d := testDoc()
	if !Contains("/bio", "compiler").Eval(d) {
		t.Error("single term")
	}
	if !Contains("/bio", "machine independent LANGUAGES").Eval(d) {
		t.Error("multi term with case and stemming")
	}
	if Contains("/bio", "compiler unicorn").Eval(d) {
		t.Error("all terms must be present")
	}
	// Empty path searches all text.
	if !Contains("", "grace navy").Eval(d) {
		t.Error("whole-document search should span fields")
	}
	if !Contains("/bio", "").Eval(d) {
		t.Error("empty query matches")
	}
	if Contains("/age", "52").Eval(d) {
		t.Error("contains only applies to strings")
	}
}

func TestExistsAndMetadata(t *testing.T) {
	d := testDoc()
	if !Exists("/name").Eval(d) || Exists("/nope").Eval(d) {
		t.Error("Exists broken")
	}
	if !MediaTypeIs("application/json").Eval(d) || MediaTypeIs("text/plain").Eval(d) {
		t.Error("MediaTypeIs broken")
	}
	if !SourceIs("feed-a").Eval(d) || SourceIs("feed-b").Eval(d) {
		t.Error("SourceIs broken")
	}
}

func TestConjunctsFlattening(t *testing.T) {
	e := And(Cmp("/a", OpEq, docmodel.Int(1)), And(Exists("/b"), Exists("/c")))
	cs := e.Conjuncts()
	if len(cs) != 3 {
		t.Errorf("Conjuncts = %d, want 3", len(cs))
	}
	single := Exists("/x")
	if len(single.Conjuncts()) != 1 {
		t.Error("non-And should be single conjunct")
	}
}

func TestPathsAndEqualityOn(t *testing.T) {
	e := And(Cmp("/a", OpEq, docmodel.Int(1)), Contains("/b", "x"), Exists("/c"), Contains("", "y"))
	paths := e.Paths()
	want := []string{"/a", "/b", "/c"}
	if len(paths) != len(want) {
		t.Fatalf("Paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("Paths[%d] = %s", i, paths[i])
		}
	}
	v, ok := e.EqualityOn("/a")
	if !ok || v.IntVal() != 1 {
		t.Error("EqualityOn /a")
	}
	if _, ok := e.EqualityOn("/b"); ok {
		t.Error("EqualityOn should not match Contains")
	}
	qs := e.ContainsQueries()
	if len(qs) != 2 || qs[0] != "x" || qs[1] != "y" {
		t.Errorf("ContainsQueries = %v", qs)
	}
}

func TestExprString(t *testing.T) {
	e := And(Cmp("/age", OpGt, docmodel.Int(30)), Not(Exists("/deleted")))
	s := e.String()
	if s != "(/age > 30) AND (NOT (exists(/deleted)))" {
		t.Errorf("String = %q", s)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	exprs := []Expr{
		True(),
		Cmp("/a/b", OpLe, docmodel.Float(3.5)),
		Contains("/text", "hello world"),
		Contains("", "anywhere"),
		Exists("/x"),
		Not(Exists("/x")),
		MediaTypeIs("application/xml"),
		SourceIs("mail"),
		And(Cmp("/a", OpEq, docmodel.Int(1)), Or(Exists("/b"), Not(True())), Contains("/c", "q")),
	}
	for i, e := range exprs {
		got, err := Decode(e.Encode())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !got.Equal(e) {
			t.Errorf("case %d: round trip %s != %s", i, got, e)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	valid := And(Cmp("/a", OpEq, docmodel.Int(1)), Contains("/b", "x")).Encode()
	panics := 0
	for i := 0; i < 1000; i++ {
		b := append([]byte{}, valid...)
		for j := 0; j < 2; j++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			_, _ = Decode(b)
		}()
	}
	if panics != 0 {
		t.Errorf("decoder panicked %d times on corrupted input", panics)
	}
	if _, err := Decode([]byte{255}); err == nil {
		t.Error("unknown kind must fail")
	}
}

func TestPartialUpdateAndFinal(t *testing.T) {
	var p Partial
	for _, v := range []int64{5, 1, 9, 3} {
		p.Update(docmodel.Int(v))
	}
	if p.Final(AggCount).IntVal() != 4 {
		t.Error("count")
	}
	if p.Final(AggSum).FloatVal() != 18 {
		t.Error("sum")
	}
	if p.Final(AggAvg).FloatVal() != 4.5 {
		t.Error("avg")
	}
	if p.Final(AggMin).IntVal() != 1 || p.Final(AggMax).IntVal() != 9 {
		t.Error("min/max")
	}
	var empty Partial
	if !empty.Final(AggMin).IsNull() || !empty.Final(AggAvg).IsNull() {
		t.Error("empty partial should finalize Null for min/avg")
	}
	if empty.Final(AggCount).IntVal() != 0 {
		t.Error("empty count is 0")
	}
}

func TestPartialMergeEquivalentToCombinedUpdates(t *testing.T) {
	vals := []float64{1.5, -2, 7, 0.25, 100, -3.5}
	var whole Partial
	for _, v := range vals {
		whole.Update(docmodel.Float(v))
	}
	var a, b Partial
	for i, v := range vals {
		if i%2 == 0 {
			a.Update(docmodel.Float(v))
		} else {
			b.Update(docmodel.Float(v))
		}
	}
	a.Merge(&b)
	for _, k := range []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax} {
		if !a.Final(k).Equal(whole.Final(k)) {
			t.Errorf("%s: merged %s != whole %s", k, a.Final(k), whole.Final(k))
		}
	}
	// Merging an empty partial is a no-op.
	var empty Partial
	a2 := a
	a2.Merge(&empty)
	if a2.Final(AggSum).FloatVal() != a.Final(AggSum).FloatVal() {
		t.Error("merging empty changed state")
	}
	// Merging INTO an empty partial adopts the other side.
	var fresh Partial
	fresh.Merge(&whole)
	if !fresh.Final(AggMin).Equal(whole.Final(AggMin)) {
		t.Error("merge into empty lost min")
	}
}

func makeOrderDoc(region string, amount float64) *docmodel.Document {
	return &docmodel.Document{Root: docmodel.Object(
		docmodel.F("region", docmodel.String(region)),
		docmodel.F("amount", docmodel.Float(amount)),
	)}
}

func TestGroupStateGroupsAndSorts(t *testing.T) {
	spec := GroupSpec{
		By:   []string{"/region"},
		Aggs: []AggSpec{{AggCount, ""}, {AggSum, "/amount"}},
	}
	g := NewGroupState(spec)
	g.Update(makeOrderDoc("west", 10))
	g.Update(makeOrderDoc("east", 5))
	g.Update(makeOrderDoc("west", 7))
	rows := g.Rows()
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	if rows[0].Key[0].StringVal() != "east" || rows[1].Key[0].StringVal() != "west" {
		t.Errorf("rows not sorted by key: %v %v", rows[0].Key, rows[1].Key)
	}
	if rows[1].Aggs[0].IntVal() != 2 || rows[1].Aggs[1].FloatVal() != 17 {
		t.Errorf("west aggs = %v", rows[1].Aggs)
	}
}

func TestGroupStateMergeMatchesSingle(t *testing.T) {
	spec := GroupSpec{By: []string{"/region"}, Aggs: []AggSpec{{AggAvg, "/amount"}, {AggMax, "/amount"}}}
	whole := NewGroupState(spec)
	a, b := NewGroupState(spec), NewGroupState(spec)
	rng := rand.New(rand.NewSource(11))
	regions := []string{"n", "s", "e", "w"}
	for i := 0; i < 200; i++ {
		d := makeOrderDoc(regions[rng.Intn(4)], rng.Float64()*100)
		whole.Update(d)
		if i%2 == 0 {
			a.Update(d)
		} else {
			b.Update(d)
		}
	}
	a.Merge(b)
	wr, ar := whole.Rows(), a.Rows()
	if len(wr) != len(ar) {
		t.Fatalf("group counts differ: %d vs %d", len(wr), len(ar))
	}
	for i := range wr {
		for j := range wr[i].Aggs {
			// Sums/averages accumulate in different orders when split, so
			// compare floats with a relative tolerance.
			w, a := wr[i].Aggs[j], ar[i].Aggs[j]
			if w.Kind() == docmodel.KindFloat {
				diff := w.FloatVal() - a.FloatVal()
				if diff < 0 {
					diff = -diff
				}
				if diff > 1e-9*(1+absF(w.FloatVal())) {
					t.Errorf("group %d agg %d: %s vs %s", i, j, w, a)
				}
			} else if !w.Equal(a) {
				t.Errorf("group %d agg %d: %s vs %s", i, j, w, a)
			}
		}
	}
}

func absF(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func TestGroupPartialsWireRoundTrip(t *testing.T) {
	spec := GroupSpec{By: []string{"/region"}, Aggs: []AggSpec{{AggCount, ""}, {AggSum, "/amount"}, {AggMin, "/amount"}}}
	g := NewGroupState(spec)
	g.Update(makeOrderDoc("west", 10))
	g.Update(makeOrderDoc("east", 2.5))
	g.Update(makeOrderDoc("west", -4))

	got, err := DecodePartials(spec, g.EncodePartials())
	if err != nil {
		t.Fatal(err)
	}
	wr, gr := g.Rows(), got.Rows()
	if len(wr) != len(gr) {
		t.Fatalf("rows %d vs %d", len(wr), len(gr))
	}
	for i := range wr {
		for j := range wr[i].Aggs {
			if !wr[i].Aggs[j].Equal(gr[i].Aggs[j]) {
				t.Errorf("row %d agg %d mismatch: %s vs %s", i, j, wr[i].Aggs[j], gr[i].Aggs[j])
			}
		}
	}
	if _, err := DecodePartials(spec, []byte{1, 2, 3}); err == nil {
		t.Error("garbage partials must fail")
	}
}

func TestGroupCountPathCountsValues(t *testing.T) {
	spec := GroupSpec{Aggs: []AggSpec{{AggCount, "/tags"}}}
	g := NewGroupState(spec)
	g.Update(testDoc()) // two tags
	rows := g.Rows()
	if rows[0].Aggs[0].IntVal() != 2 {
		t.Errorf("count(/tags) = %s, want 2", rows[0].Aggs[0])
	}
}
