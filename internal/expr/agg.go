package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"impliance/internal/docmodel"
)

// Aggregation specs and mergeable partial state. Data nodes compute
// partials locally (paper §3.1 pushdown), grid nodes merge them — the
// standard two-phase aggregation the paper's node topology implies.

// AggKind selects an aggregate function.
type AggKind uint8

// Aggregate functions.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

var aggNames = [...]string{"count", "sum", "min", "max", "avg"}

// String returns the SQL-style name of the aggregate.
func (k AggKind) String() string {
	if int(k) < len(aggNames) {
		return aggNames[k]
	}
	return "agg?"
}

// AggSpec is one aggregate over a document path. For AggCount the path may
// be empty (count rows); otherwise only documents with a value at the path
// contribute.
type AggSpec struct {
	Kind AggKind
	Path string
}

// String renders the spec as e.g. "sum(/orders/price)".
func (a AggSpec) String() string { return fmt.Sprintf("%s(%s)", a.Kind, a.Path) }

// GroupSpec is a grouped aggregation: group documents by the values at the
// By paths and compute each aggregate per group. Empty By means one global
// group.
type GroupSpec struct {
	By   []string
	Aggs []AggSpec
}

// Partial is the mergeable state of one aggregate in one group.
type Partial struct {
	Count int64
	Sum   float64
	Min   docmodel.Value
	Max   docmodel.Value
	seen  bool
}

// Update folds one value into the partial.
func (p *Partial) Update(v docmodel.Value) {
	p.Count++
	switch v.Kind() {
	case docmodel.KindInt, docmodel.KindFloat:
		p.Sum += v.FloatVal()
	}
	if !p.seen {
		p.Min, p.Max, p.seen = v, v, true
		return
	}
	if v.Compare(p.Min) < 0 {
		p.Min = v
	}
	if v.Compare(p.Max) > 0 {
		p.Max = v
	}
}

// Merge folds another partial into this one. Partials from different data
// nodes merge associatively and commutatively.
func (p *Partial) Merge(o *Partial) {
	if o.Count == 0 {
		return
	}
	p.Count += o.Count
	p.Sum += o.Sum
	if !p.seen {
		p.Min, p.Max, p.seen = o.Min, o.Max, o.seen
		return
	}
	if o.seen {
		if o.Min.Compare(p.Min) < 0 {
			p.Min = o.Min
		}
		if o.Max.Compare(p.Max) > 0 {
			p.Max = o.Max
		}
	}
}

// Final produces the aggregate's result value.
func (p *Partial) Final(kind AggKind) docmodel.Value {
	switch kind {
	case AggCount:
		return docmodel.Int(p.Count)
	case AggSum:
		return docmodel.Float(p.Sum)
	case AggAvg:
		if p.Count == 0 {
			return docmodel.Null
		}
		return docmodel.Float(p.Sum / float64(p.Count))
	case AggMin:
		if !p.seen {
			return docmodel.Null
		}
		return p.Min
	case AggMax:
		if !p.seen {
			return docmodel.Null
		}
		return p.Max
	}
	return docmodel.Null
}

// GroupState accumulates grouped partials; it is itself mergeable.
type GroupState struct {
	Spec   GroupSpec
	groups map[string]*groupEntry
}

type groupEntry struct {
	key      []docmodel.Value
	partials []Partial
}

// NewGroupState creates an empty accumulator for the spec.
func NewGroupState(spec GroupSpec) *GroupState {
	return &GroupState{Spec: spec, groups: map[string]*groupEntry{}}
}

// Update folds one document into the accumulator.
func (g *GroupState) Update(d *docmodel.Document) {
	keyVals := make([]docmodel.Value, len(g.Spec.By))
	for i, path := range g.Spec.By {
		keyVals[i] = d.First(path)
	}
	entry := g.entryFor(keyVals)
	for i, spec := range g.Spec.Aggs {
		if spec.Kind == AggCount && spec.Path == "" {
			entry.partials[i].Update(docmodel.Int(1))
			continue
		}
		for _, v := range d.At(spec.Path) {
			if !v.IsNull() {
				entry.partials[i].Update(v)
			}
		}
	}
}

func (g *GroupState) entryFor(keyVals []docmodel.Value) *groupEntry {
	k := encodeKey(keyVals)
	entry, ok := g.groups[k]
	if !ok {
		entry = &groupEntry{key: keyVals, partials: make([]Partial, len(g.Spec.Aggs))}
		g.groups[k] = entry
	}
	return entry
}

func encodeKey(vals []docmodel.Value) string {
	var sb strings.Builder
	for _, v := range vals {
		b := docmodel.EncodeValue(v)
		sb.WriteString(fmt.Sprintf("%d:", len(b)))
		sb.Write(b)
	}
	return sb.String()
}

// Merge folds another accumulator (same spec) into this one.
func (g *GroupState) Merge(o *GroupState) {
	for k, oe := range o.groups {
		entry, ok := g.groups[k]
		if !ok {
			entry = &groupEntry{key: oe.key, partials: make([]Partial, len(g.Spec.Aggs))}
			g.groups[k] = entry
		}
		for i := range oe.partials {
			entry.partials[i].Merge(&oe.partials[i])
		}
	}
}

// GroupRow is one finalized output group.
type GroupRow struct {
	Key  []docmodel.Value // values of the By paths
	Aggs []docmodel.Value // finalized aggregates, parallel to Spec.Aggs
}

// Rows finalizes the accumulator into output rows, sorted by group key for
// determinism.
func (g *GroupState) Rows() []GroupRow {
	out := make([]GroupRow, 0, len(g.groups))
	for _, e := range g.groups {
		row := GroupRow{Key: e.key, Aggs: make([]docmodel.Value, len(g.Spec.Aggs))}
		for i, spec := range g.Spec.Aggs {
			row.Aggs[i] = e.partials[i].Final(spec.Kind)
		}
		out = append(out, row)
	}
	sortRows(out)
	return out
}

// Len reports the number of groups accumulated so far.
func (g *GroupState) Len() int { return len(g.groups) }

func sortRows(rows []GroupRow) {
	sort.Slice(rows, func(i, j int) bool { return compareKeys(rows[i].Key, rows[j].Key) < 0 })
}

func compareKeys(a, b []docmodel.Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// EncodePartials serializes a GroupState for interconnect transfer (data
// node → grid node). The encoding carries group keys and raw partials so
// merging on the receiver is exact.
func (g *GroupState) EncodePartials() []byte {
	buf := make([]byte, 0, 256)
	buf = appendUvarint(buf, uint64(len(g.groups)))
	for _, e := range g.groups {
		buf = appendUvarint(buf, uint64(len(e.key)))
		for _, v := range e.key {
			vb := docmodel.EncodeValue(v)
			buf = appendUvarint(buf, uint64(len(vb)))
			buf = append(buf, vb...)
		}
		for i := range e.partials {
			p := &e.partials[i]
			buf = appendUvarint(buf, uint64(p.Count))
			buf = appendUvarint(buf, math.Float64bits(p.Sum))
			if p.seen {
				buf = append(buf, 1)
				mb := docmodel.EncodeValue(p.Min)
				buf = appendUvarint(buf, uint64(len(mb)))
				buf = append(buf, mb...)
				xb := docmodel.EncodeValue(p.Max)
				buf = appendUvarint(buf, uint64(len(xb)))
				buf = append(buf, xb...)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// DecodePartials parses bytes produced by EncodePartials into a GroupState
// with the given spec.
func DecodePartials(spec GroupSpec, b []byte) (*GroupState, error) {
	g := NewGroupState(spec)
	d := decoder{b: b}
	nGroups := d.uvarint()
	for i := uint64(0); i < nGroups && d.err == nil; i++ {
		nKey := d.uvarint()
		key := make([]docmodel.Value, 0, nKey)
		for j := uint64(0); j < nKey && d.err == nil; j++ {
			key = append(key, d.value())
		}
		entry := g.entryFor(key)
		for j := range entry.partials {
			p := &entry.partials[j]
			var np Partial
			np.Count = int64(d.uvarint())
			np.Sum = math.Float64frombits(d.uvarint())
			if d.byte() == 1 {
				np.Min = d.value()
				np.Max = d.value()
				np.seen = true
			}
			p.Merge(&np)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: trailing bytes in partials", ErrCorrupt)
	}
	return g, nil
}

func (d *decoder) value() docmodel.Value {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)-d.off) < n {
		d.fail()
		return docmodel.Null
	}
	v, err := docmodel.DecodeValue(d.b[d.off : d.off+int(n)])
	if err != nil {
		d.err = err
		return docmodel.Null
	}
	d.off += int(n)
	return v
}
