package expr

import (
	"encoding/binary"
	"errors"
	"fmt"

	"impliance/internal/docmodel"
)

// Wire encoding of predicate trees. Interconnect messages carry encoded
// predicates, so the fabric's byte accounting — which the pushdown
// experiments measure — reflects their true size.

// ErrCorrupt reports malformed predicate bytes.
var ErrCorrupt = errors.New("expr: corrupt encoding")

// Encode serializes the predicate.
func (e Expr) Encode() []byte {
	return e.appendTo(make([]byte, 0, 64))
}

func (e Expr) appendTo(buf []byte) []byte {
	buf = append(buf, byte(e.kind))
	switch e.kind {
	case kTrue:
	case kCmp:
		buf = appendString(buf, e.path)
		buf = append(buf, byte(e.op))
		val := docmodel.EncodeValue(e.val)
		buf = appendUvarint(buf, uint64(len(val)))
		buf = append(buf, val...)
	case kContains:
		buf = appendString(buf, e.path)
		buf = appendString(buf, e.str)
	case kExists:
		buf = appendString(buf, e.path)
	case kAnd, kOr:
		buf = appendUvarint(buf, uint64(len(e.kids)))
		for _, k := range e.kids {
			buf = k.appendTo(buf)
		}
	case kNot:
		buf = e.kids[0].appendTo(buf)
	case kMediaType, kSource:
		buf = appendString(buf, e.str)
	}
	return buf
}

// Decode parses bytes produced by Encode.
func Decode(b []byte) (Expr, error) {
	d := decoder{b: b}
	e := d.expr(0)
	if d.err != nil {
		return True(), d.err
	}
	if d.off != len(b) {
		return True(), fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return e, nil
}

type decoder struct {
	b   []byte
	off int
	err error
}

const maxExprDepth = 64

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail()
		return 0
	}
	c := d.b[d.off]
	d.off++
	return c
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return u
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)-d.off) < n {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) expr(depth int) Expr {
	if d.err != nil || depth > maxExprDepth {
		d.fail()
		return True()
	}
	kind := exprKind(d.byte())
	switch kind {
	case kTrue:
		return True()
	case kCmp:
		path := d.str()
		op := Op(d.byte())
		if op > OpGe {
			d.fail()
			return True()
		}
		n := d.uvarint()
		if d.err != nil || uint64(len(d.b)-d.off) < n {
			d.fail()
			return True()
		}
		val, err := docmodel.DecodeValue(d.b[d.off : d.off+int(n)])
		if err != nil {
			d.err = err
			return True()
		}
		d.off += int(n)
		return Cmp(path, op, val)
	case kContains:
		path := d.str()
		return Contains(path, d.str())
	case kExists:
		return Exists(d.str())
	case kAnd, kOr:
		n := d.uvarint()
		if d.err != nil || n > uint64(len(d.b)) {
			d.fail()
			return True()
		}
		kids := make([]Expr, 0, n)
		for i := uint64(0); i < n; i++ {
			kids = append(kids, d.expr(depth+1))
			if d.err != nil {
				return True()
			}
		}
		if kind == kAnd {
			return Expr{kind: kAnd, kids: kids}
		}
		return Expr{kind: kOr, kids: kids}
	case kNot:
		return Not(d.expr(depth + 1))
	case kMediaType:
		return MediaTypeIs(d.str())
	case kSource:
		return SourceIs(d.str())
	default:
		d.fail()
		return True()
	}
}

func appendUvarint(buf []byte, u uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], u)
	return append(buf, tmp[:n]...)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Equal reports structural equality of two predicates (used in tests and
// plan caching).
func (e Expr) Equal(o Expr) bool {
	if e.kind != o.kind || e.path != o.path || e.op != o.op || e.str != o.str {
		return false
	}
	if !e.val.Equal(o.val) {
		return false
	}
	if len(e.kids) != len(o.kids) {
		return false
	}
	for i := range e.kids {
		if !e.kids[i].Equal(o.kids[i]) {
			return false
		}
	}
	return true
}
