// Package expr defines the serializable predicate and aggregation
// specifications that flow between Impliance components. Because the
// appliance controls its whole software stack, higher layers hand these
// specs *down* to the storage software for early data reduction (paper
// §3.1: "higher-level functionality such as aggregation and predicate
// application can be more easily 'pushed down' closer to the storage").
// Specs are plain data — encodable for interconnect transfer and byte
// accounting — not Go closures.
package expr

import (
	"fmt"
	"strings"

	"impliance/internal/docmodel"
	"impliance/internal/text"
)

// Op is a comparison operator.
type Op uint8

// Comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var opNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

// String returns the SQL-style spelling of the operator.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "?"
}

// Expr is a predicate over documents. The zero-value-free constructors
// below build the tree; Eval applies it.
type Expr struct {
	kind exprKind
	path string
	op   Op
	val  docmodel.Value
	str  string
	kids []Expr
}

type exprKind uint8

const (
	kTrue exprKind = iota
	kCmp
	kContains
	kExists
	kAnd
	kOr
	kNot
	kMediaType
	kSource
)

// True matches every document.
func True() Expr { return Expr{kind: kTrue} }

// Cmp matches documents having any value at path that compares to v under
// op. Array fan-out gives existential semantics, as in XPath.
func Cmp(path string, op Op, v docmodel.Value) Expr {
	return Expr{kind: kCmp, path: path, op: op, val: v}
}

// Contains matches documents whose string values at path contain every
// term of the analyzed query string. An empty path searches all text in
// the document.
func Contains(path, query string) Expr {
	return Expr{kind: kContains, path: path, str: query}
}

// Exists matches documents that have at least one value at path.
func Exists(path string) Expr { return Expr{kind: kExists, path: path} }

// And matches when all children match. And() is True.
func And(kids ...Expr) Expr {
	if len(kids) == 1 {
		return kids[0]
	}
	return Expr{kind: kAnd, kids: kids}
}

// Or matches when any child matches. Or() is False (Not True).
func Or(kids ...Expr) Expr {
	if len(kids) == 1 {
		return kids[0]
	}
	return Expr{kind: kOr, kids: kids}
}

// Not negates its child.
func Not(kid Expr) Expr { return Expr{kind: kNot, kids: []Expr{kid}} }

// MediaTypeIs matches documents whose ingestion media type equals mt.
func MediaTypeIs(mt string) Expr { return Expr{kind: kMediaType, str: mt} }

// SourceIs matches documents ingested from the named source.
func SourceIs(src string) Expr { return Expr{kind: kSource, str: src} }

// Eval reports whether the document satisfies the predicate.
func (e Expr) Eval(d *docmodel.Document) bool {
	switch e.kind {
	case kTrue:
		return true
	case kCmp:
		for _, v := range d.At(e.path) {
			if compatible(v, e.val) && applyOp(v.Compare(e.val), e.op) {
				return true
			}
		}
		return false
	case kContains:
		return containsTerms(d, e.path, e.str)
	case kExists:
		return len(d.At(e.path)) > 0
	case kAnd:
		for _, k := range e.kids {
			if !k.Eval(d) {
				return false
			}
		}
		return true
	case kOr:
		for _, k := range e.kids {
			if k.Eval(d) {
				return true
			}
		}
		return false
	case kNot:
		return !e.kids[0].Eval(d)
	case kMediaType:
		return d.MediaType == e.str
	case kSource:
		return d.Source == e.str
	}
	return false
}

// compatible gates comparisons to same-kind (or numeric cross-kind) pairs
// so that e.g. age > 30 never matches a string "thirty".
func compatible(a, b docmodel.Value) bool {
	if a.Kind() == b.Kind() {
		return true
	}
	an := a.Kind() == docmodel.KindInt || a.Kind() == docmodel.KindFloat
	bn := b.Kind() == docmodel.KindInt || b.Kind() == docmodel.KindFloat
	return an && bn
}

func applyOp(cmp int, op Op) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

func containsTerms(d *docmodel.Document, path, query string) bool {
	terms := text.DefaultAnalyzer.Terms(query)
	if len(terms) == 0 {
		return true
	}
	need := make(map[string]bool, len(terms))
	for _, t := range terms {
		need[t] = true
	}
	remaining := len(need)
	check := func(v docmodel.Value) bool {
		if v.Kind() != docmodel.KindString {
			return false
		}
		text.DefaultAnalyzer.TokenizeFunc(v.StringVal(), func(tok text.Token) {
			if need[tok.Term] {
				need[tok.Term] = false
				remaining--
			}
		})
		return remaining == 0
	}
	if path == "" {
		done := false
		d.WalkLeaves(func(pv docmodel.PathVisit) bool {
			if check(pv.Value) {
				done = true
				return false
			}
			return true
		})
		return done || remaining == 0
	}
	for _, v := range d.At(path) {
		if check(v) {
			return true
		}
	}
	return remaining == 0
}

// String renders the predicate for plans and debugging.
func (e Expr) String() string {
	switch e.kind {
	case kTrue:
		return "true"
	case kCmp:
		return fmt.Sprintf("%s %s %s", e.path, e.op, e.val)
	case kContains:
		if e.path == "" {
			return fmt.Sprintf("contains(%q)", e.str)
		}
		return fmt.Sprintf("contains(%s, %q)", e.path, e.str)
	case kExists:
		return fmt.Sprintf("exists(%s)", e.path)
	case kAnd:
		return joinKids(e.kids, " AND ")
	case kOr:
		return joinKids(e.kids, " OR ")
	case kNot:
		return "NOT (" + e.kids[0].String() + ")"
	case kMediaType:
		return fmt.Sprintf("mediatype = %q", e.str)
	case kSource:
		return fmt.Sprintf("source = %q", e.str)
	}
	return "?"
}

func joinKids(kids []Expr, sep string) string {
	if len(kids) == 0 {
		if sep == " AND " {
			return "true"
		}
		return "false"
	}
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = "(" + k.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Conjuncts flattens nested ANDs into a conjunct list; used by the planner
// and the adaptive filter-reordering operator.
func (e Expr) Conjuncts() []Expr {
	if e.kind != kAnd {
		return []Expr{e}
	}
	var out []Expr
	for _, k := range e.kids {
		out = append(out, k.Conjuncts()...)
	}
	return out
}

// IsTrue reports whether the predicate is the constant True.
func (e Expr) IsTrue() bool { return e.kind == kTrue }

// Paths returns every path mentioned in the predicate (deduplicated).
// The simple planner uses this to pick an index.
func (e Expr) Paths() []string {
	seen := map[string]struct{}{}
	e.collectPaths(seen)
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sortStrings(out)
	return out
}

func (e Expr) collectPaths(seen map[string]struct{}) {
	switch e.kind {
	case kCmp, kExists:
		seen[e.path] = struct{}{}
	case kContains:
		if e.path != "" {
			seen[e.path] = struct{}{}
		}
	}
	for _, k := range e.kids {
		k.collectPaths(seen)
	}
}

// EqualityOn returns (value, true) when the predicate — or one of its
// top-level conjuncts — is an equality comparison on the given path.
func (e Expr) EqualityOn(path string) (docmodel.Value, bool) {
	for _, c := range e.Conjuncts() {
		if c.kind == kCmp && c.op == OpEq && c.path == path {
			return c.val, true
		}
	}
	return docmodel.Null, false
}

// RangeOn extracts range bounds on the given path from the top-level
// conjuncts: <, <=, >, >= (and = as a closed point range). ok is false
// when no conjunct constrains the path. Both planners use this to decide
// whether a value-index range access applies.
func (e Expr) RangeOn(path string) (lo, hi *docmodel.Value, loInc, hiInc, ok bool) {
	for _, c := range e.Conjuncts() {
		if c.kind != kCmp || c.path != path {
			continue
		}
		v := c.val
		switch c.op {
		case OpEq:
			return &v, &v, true, true, true
		case OpLt:
			if hi == nil || v.Compare(*hi) < 0 {
				hi, hiInc = &v, false
			}
			ok = true
		case OpLe:
			if hi == nil || v.Compare(*hi) < 0 {
				hi, hiInc = &v, true
			}
			ok = true
		case OpGt:
			if lo == nil || v.Compare(*lo) > 0 {
				lo, loInc = &v, false
			}
			ok = true
		case OpGe:
			if lo == nil || v.Compare(*lo) > 0 {
				lo, loInc = &v, true
			}
			ok = true
		}
	}
	return lo, hi, loInc, hiInc, ok
}

// ContainsQueries returns the keyword queries of every Contains conjunct,
// which the planner routes to the full-text index.
func (e Expr) ContainsQueries() []string {
	var out []string
	for _, c := range e.Conjuncts() {
		if c.kind == kContains {
			out = append(out, c.str)
		}
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
