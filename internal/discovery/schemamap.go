package discovery

import (
	"sort"
	"strings"

	"impliance/internal/docmodel"
	"impliance/internal/text"
)

// Schema mapping (paper §3.2: "using schema mapping technologies,
// structures from different sources can be consolidated. Thus, customer
// purchase orders can all be searched together, whether they are ingested
// into Impliance via e-mail, a spreadsheet, a Microsoft Word document, a
// relational row, or other formats").
//
// No schema is ever declared, so mapping works from structure alone:
// documents are grouped by structural fingerprint, fingerprint groups with
// overlapping path signatures form a *schema family*, and within a family
// each concrete path maps to a canonical attribute derived from its
// normalized leaf name. A query against the canonical attribute fans out
// to every concrete path mapped to it.

// SchemaGroup is one exact structural shape and the documents having it.
type SchemaGroup struct {
	Fingerprint docmodel.Fingerprint
	Signature   []string // sorted path:kindclass entries
	Docs        []docmodel.DocID
	Sources     map[string]int // ingestion sources seen, with counts
}

// SchemaFamily is a set of groups judged to describe the same record type.
type SchemaFamily struct {
	ID     int
	Groups []SchemaGroup
	// AttrToPaths maps each canonical attribute to the concrete paths that
	// realize it across the family's groups.
	AttrToPaths map[string][]string
}

// Docs returns all document IDs in the family, sorted.
func (f *SchemaFamily) Docs() []docmodel.DocID {
	var out []docmodel.DocID
	for _, g := range f.Groups {
		out = append(out, g.Docs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// PathsFor returns the concrete paths realizing a canonical attribute.
func (f *SchemaFamily) PathsFor(attr string) []string {
	return f.AttrToPaths[CanonicalAttr(attr)]
}

// SchemaMapper clusters document shapes into families.
type SchemaMapper struct {
	// MinOverlap is the signature Jaccard similarity above which two
	// groups join the same family (default 0.5).
	MinOverlap float64
}

// NewSchemaMapper returns a mapper with default thresholds.
func NewSchemaMapper() *SchemaMapper { return &SchemaMapper{MinOverlap: 0.5} }

// NewShapeAccumulator creates an accumulator for incremental observation.
func NewShapeAccumulator() *ShapeAccumulator {
	return &ShapeAccumulator{groups: map[docmodel.Fingerprint]*SchemaGroup{}}
}

// ShapeAccumulator folds documents into exact structural groups; it is the
// streaming front half of schema mapping (runs as documents are ingested).
type ShapeAccumulator struct {
	groups map[docmodel.Fingerprint]*SchemaGroup
}

// Observe adds one document to its shape group. Annotation documents are
// skipped — their shapes are system-defined, not source schemas.
func (sa *ShapeAccumulator) Observe(d *docmodel.Document) {
	if d.IsAnnotation() {
		return
	}
	fp := docmodel.StructuralFingerprint(d.Root)
	g, ok := sa.groups[fp]
	if !ok {
		g = &SchemaGroup{
			Fingerprint: fp,
			Signature:   docmodel.PathSignature(d.Root),
			Sources:     map[string]int{},
		}
		sa.groups[fp] = g
	}
	g.Docs = append(g.Docs, d.ID)
	g.Sources[d.Source]++
}

// Groups returns the accumulated exact-shape groups, largest first.
func (sa *ShapeAccumulator) Groups() []SchemaGroup {
	out := make([]SchemaGroup, 0, len(sa.groups))
	for _, g := range sa.groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Docs) != len(out[j].Docs) {
			return len(out[i].Docs) > len(out[j].Docs)
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Map clusters shape groups into schema families and derives the
// attribute mapping for each family.
func (m *SchemaMapper) Map(groups []SchemaGroup) []SchemaFamily {
	minOverlap := m.MinOverlap
	if minOverlap <= 0 {
		minOverlap = 0.5
	}
	n := len(groups)
	uf := newUnionFind(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if docmodel.SignatureOverlap(groups[i].Signature, groups[j].Signature) >= minOverlap {
				uf.union(i, j)
			} else if attrOverlap(groups[i].Signature, groups[j].Signature) >= minOverlap {
				// Same attributes under different concrete paths (e.g. the
				// XML order vs the CSV order): still the same record type.
				uf.union(i, j)
			}
		}
	}
	members := map[int][]int{}
	for i := 0; i < n; i++ {
		members[uf.find(i)] = append(members[uf.find(i)], i)
	}
	roots := make([]int, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	// Deterministic family order: biggest families first.
	sort.Slice(roots, func(a, b int) bool {
		da, db := 0, 0
		for _, i := range members[roots[a]] {
			da += len(groups[i].Docs)
		}
		for _, i := range members[roots[b]] {
			db += len(groups[i].Docs)
		}
		if da != db {
			return da > db
		}
		return groups[roots[a]].Fingerprint < groups[roots[b]].Fingerprint
	})

	var fams []SchemaFamily
	for fi, root := range roots {
		fam := SchemaFamily{ID: fi, AttrToPaths: map[string][]string{}}
		for _, i := range members[root] {
			fam.Groups = append(fam.Groups, groups[i])
			for _, sig := range groups[i].Signature {
				path := sig[:strings.LastIndexByte(sig, ':')]
				attr := CanonicalAttr(path)
				if !containsStr(fam.AttrToPaths[attr], path) {
					fam.AttrToPaths[attr] = append(fam.AttrToPaths[attr], path)
				}
			}
		}
		for attr := range fam.AttrToPaths {
			sort.Strings(fam.AttrToPaths[attr])
		}
		fams = append(fams, fam)
	}
	return fams
}

// CanonicalAttr normalizes a path (or bare attribute name) to a canonical
// attribute: the last path segment, lower-cased, punctuation stripped,
// stemmed. "/po/Customer_Name", "/order/customerName" and "customer-names"
// all map to the same attribute.
func CanonicalAttr(path string) string {
	seg := path
	if i := strings.LastIndexByte(seg, '/'); i >= 0 {
		seg = seg[i+1:]
	}
	seg = strings.TrimPrefix(seg, "@")
	seg = strings.TrimPrefix(seg, "#")
	var sb strings.Builder
	for _, r := range seg {
		switch {
		case r >= 'A' && r <= 'Z':
			sb.WriteRune(r - 'A' + 'a')
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			sb.WriteRune(r)
		}
	}
	return text.Stem(sb.String())
}

// attrOverlap is Jaccard similarity over canonical attribute:kindclass
// pairs — path-shape-insensitive comparison of two signatures.
func attrOverlap(a, b []string) float64 {
	return docmodel.SignatureOverlap(attrSig(a), attrSig(b))
}

func attrSig(sig []string) []string {
	seen := map[string]struct{}{}
	for _, s := range sig {
		i := strings.LastIndexByte(s, ':')
		seen[CanonicalAttr(s[:i])+":"+s[i+1:]] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
