// Package discovery implements the inter-document analyses of paper §3.2:
// consolidating structures from different sources (schema mapping),
// resolving entity mentions across documents (entity resolution), and
// identifying relationships "by running various analyses on all pairs of
// documents (conceptually)" — materialized as join indexes that the query
// layer exploits ("Discovered relationships can be stored as join indexes
// and utilized at query time").
//
// In the node topology of §3.3, these are grid-node analyses: their inputs
// are the entity annotations that data nodes produced intra-document, and
// their outputs are persisted via cluster nodes.
package discovery

import (
	"fmt"
	"sort"
	"strings"

	"impliance/internal/docmodel"
	"impliance/internal/text"
)

// Mention is one entity mention to resolve: a normalized surface form
// found in a document.
type Mention struct {
	Doc  docmodel.DocID
	Type string // entity class ("person", "product", ...)
	Norm string // normalized surface form
}

// EntityCluster is a resolved real-world entity: the set of mentions the
// resolver decided are the same thing.
type EntityCluster struct {
	ID        int
	Type      string
	Canonical string   // most frequent norm in the cluster
	Norms     []string // distinct norms, sorted
	Docs      []docmodel.DocID
}

// Resolver groups mentions into entity clusters using blocking plus
// string similarity — the "entity relationship resolution" analysis the
// paper cites (Jonas, SIGMOD 2006) scaled down to dictionary workloads.
type Resolver struct {
	// MinSimilarity is the trigram similarity above which two norms are
	// considered the same entity (default 0.55).
	MinSimilarity float64
	// MaxEditDistance also merges pairs within this Levenshtein distance
	// (default 1; catches short-name typos trigram similarity misses).
	MaxEditDistance int
	// Window is the sorted-neighborhood comparison window (default 8).
	Window int
}

// NewResolver returns a resolver with default thresholds.
func NewResolver() *Resolver {
	return &Resolver{MinSimilarity: 0.55, MaxEditDistance: 1, Window: 8}
}

// Resolve clusters the mentions. Mentions of different types never merge.
// The algorithm is sorted-neighborhood: within each type block, norms are
// sorted and each norm is compared against the next Window norms; matches
// union. Deterministic for a given input set.
func (r *Resolver) Resolve(mentions []Mention) []EntityCluster {
	// Distinct norms per type, with doc sets.
	type key struct{ typ, norm string }
	docsByNorm := map[key]map[docmodel.DocID]struct{}{}
	countByNorm := map[key]int{}
	for _, m := range mentions {
		k := key{m.Type, m.Norm}
		set, ok := docsByNorm[k]
		if !ok {
			set = map[docmodel.DocID]struct{}{}
			docsByNorm[k] = set
		}
		set[m.Doc] = struct{}{}
		countByNorm[k]++
	}
	// Group norms by type.
	normsByType := map[string][]string{}
	for k := range docsByNorm {
		normsByType[k.typ] = append(normsByType[k.typ], k.norm)
	}

	var clusters []EntityCluster
	types := make([]string, 0, len(normsByType))
	for t := range normsByType {
		types = append(types, t)
	}
	sort.Strings(types)

	for _, typ := range types {
		norms := normsByType[typ]
		sort.Strings(norms)
		uf := newUnionFind(len(norms))
		w := r.Window
		if w <= 0 {
			w = 8
		}
		for i := range norms {
			for j := i + 1; j < len(norms) && j <= i+w; j++ {
				if r.same(norms[i], norms[j]) {
					uf.union(i, j)
				}
			}
		}
		// Materialize clusters.
		members := map[int][]int{}
		for i := range norms {
			root := uf.find(i)
			members[root] = append(members[root], i)
		}
		roots := make([]int, 0, len(members))
		for root := range members {
			roots = append(roots, root)
		}
		sort.Ints(roots)
		for _, root := range roots {
			var c EntityCluster
			c.Type = typ
			docSet := map[docmodel.DocID]struct{}{}
			bestCount := -1
			for _, i := range members[root] {
				norm := norms[i]
				c.Norms = append(c.Norms, norm)
				k := key{typ, norm}
				if countByNorm[k] > bestCount {
					bestCount = countByNorm[k]
					c.Canonical = norm
				}
				for d := range docsByNorm[k] {
					docSet[d] = struct{}{}
				}
			}
			for d := range docSet {
				c.Docs = append(c.Docs, d)
			}
			sort.Slice(c.Docs, func(i, j int) bool { return c.Docs[i].Compare(c.Docs[j]) < 0 })
			sort.Strings(c.Norms)
			c.ID = len(clusters)
			clusters = append(clusters, c)
		}
	}
	return clusters
}

func (r *Resolver) same(a, b string) bool {
	if a == b {
		return true
	}
	if text.TrigramSimilarity(a, b) >= r.MinSimilarity {
		return true
	}
	if r.MaxEditDistance > 0 &&
		text.Levenshtein(a, b, r.MaxEditDistance) <= r.MaxEditDistance {
		return true
	}
	return false
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}

// ClusterLabel renders a stable label for a resolved entity, used as the
// join-edge label.
func ClusterLabel(c EntityCluster) string {
	return fmt.Sprintf("entity:%s:%s", c.Type, strings.ReplaceAll(c.Canonical, " ", "_"))
}
