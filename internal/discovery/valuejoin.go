package discovery

import (
	"fmt"
	"sort"

	"impliance/internal/docmodel"
)

// Value-join discovery: finding foreign-key-like relationships between
// paths of different document shapes by value overlap — the paper's
// example that "a purchase order can be identified to reference several
// master data records, including detailed information about a certain
// customer and product" (§3.2). Discovered joins become join-index edges.

// PathJoin is a discovered joinable path pair.
type PathJoin struct {
	PathA, PathB string
	Overlap      float64 // containment of the smaller side's values
	Matches      int     // distinct values appearing on both sides
}

// Label renders the join-edge label.
func (pj PathJoin) Label() string { return fmt.Sprintf("join:%s=%s", pj.PathA, pj.PathB) }

// ValueJoinDiscoverer scans documents' scalar leaves and proposes joins.
type ValueJoinDiscoverer struct {
	// MinOverlap is the value-containment threshold (default 0.3): the
	// fraction of the smaller side's distinct values that appear on the
	// other side.
	MinOverlap float64
	// MinMatches is the minimum number of distinct shared values
	// (default 2) so singleton coincidences do not become joins.
	MinMatches int
	// MaxFanout bounds edges added per shared value (default 16).
	MaxFanout int
}

// NewValueJoinDiscoverer returns a discoverer with default thresholds.
func NewValueJoinDiscoverer() *ValueJoinDiscoverer {
	return &ValueJoinDiscoverer{MinOverlap: 0.3, MinMatches: 2, MaxFanout: 16}
}

type pathValues struct {
	path string
	// distinct scalar value (encoded) -> docs containing it at this path
	vals map[string][]docmodel.DocID
}

// Discover proposes path joins over the documents and, when ji is
// non-nil, adds an edge for every document pair sharing a join value.
// Only cross-shape joins are proposed: joining a path to itself within
// one homogeneous collection is the self-join case the query layer
// handles without discovery.
func (vj *ValueJoinDiscoverer) Discover(docs []*docmodel.Document, ji *JoinIndex) []PathJoin {
	minOverlap := vj.MinOverlap
	if minOverlap <= 0 {
		minOverlap = 0.3
	}
	minMatches := vj.MinMatches
	if minMatches <= 0 {
		minMatches = 2
	}
	maxFanout := vj.MaxFanout
	if maxFanout <= 0 {
		maxFanout = 16
	}

	// Collect per (shape, path) distinct values. Shape separation keeps
	// /id of customers distinct from /id of orders.
	type shapedPath struct {
		shape docmodel.Fingerprint
		path  string
	}
	collected := map[shapedPath]*pathValues{}
	for _, d := range docs {
		if d.IsAnnotation() {
			continue
		}
		shape := docmodel.StructuralFingerprint(d.Root)
		d.WalkLeaves(func(pv docmodel.PathVisit) bool {
			switch pv.Value.Kind() {
			case docmodel.KindString, docmodel.KindInt:
			default:
				return true // joins over floats/times are noise
			}
			key := shapedPath{shape, pv.Path}
			pvs, ok := collected[key]
			if !ok {
				pvs = &pathValues{path: pv.Path, vals: map[string][]docmodel.DocID{}}
				collected[key] = pvs
			}
			enc := string(docmodel.EncodeValue(pv.Value))
			ids := pvs.vals[enc]
			if len(ids) == 0 || ids[len(ids)-1] != d.ID {
				pvs.vals[enc] = append(ids, d.ID)
			}
			return true
		})
	}

	keys := make([]shapedPath, 0, len(collected))
	for k := range collected {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].shape != keys[j].shape {
			return keys[i].shape < keys[j].shape
		}
		return keys[i].path < keys[j].path
	})

	var joins []PathJoin
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			a, b := keys[i], keys[j]
			if a.shape == b.shape {
				continue // only cross-shape joins
			}
			pa, pb := collected[a], collected[b]
			matches := 0
			small := len(pa.vals)
			if len(pb.vals) < small {
				small = len(pb.vals)
			}
			if small == 0 {
				continue
			}
			for enc := range pa.vals {
				if _, ok := pb.vals[enc]; ok {
					matches++
				}
			}
			overlap := float64(matches) / float64(small)
			if matches < minMatches || overlap < minOverlap {
				continue
			}
			pj := PathJoin{PathA: pa.path, PathB: pb.path, Overlap: overlap, Matches: matches}
			joins = append(joins, pj)
			if ji != nil {
				addJoinEdges(ji, pa, pb, pj.Label(), maxFanout)
			}
		}
	}
	sort.Slice(joins, func(i, j int) bool {
		if joins[i].Matches != joins[j].Matches {
			return joins[i].Matches > joins[j].Matches
		}
		if joins[i].PathA != joins[j].PathA {
			return joins[i].PathA < joins[j].PathA
		}
		return joins[i].PathB < joins[j].PathB
	})
	return joins
}

func addJoinEdges(ji *JoinIndex, pa, pb *pathValues, label string, maxFanout int) {
	for enc, aDocs := range pa.vals {
		bDocs, ok := pb.vals[enc]
		if !ok {
			continue
		}
		n := 0
		for _, ad := range aDocs {
			for _, bd := range bDocs {
				ji.AddEdge(ad, bd, label)
				n++
				if n >= maxFanout {
					break
				}
			}
			if n >= maxFanout {
				break
			}
		}
	}
}
