package discovery

import (
	"fmt"
	"testing"

	"impliance/internal/docmodel"
)

func id(seq uint64) docmodel.DocID { return docmodel.DocID{Origin: 1, Seq: seq} }

func TestResolverMergesVariants(t *testing.T) {
	r := NewResolver()
	mentions := []Mention{
		{Doc: id(1), Type: "person", Norm: "john smith"},
		{Doc: id(2), Type: "person", Norm: "john smith"},
		{Doc: id(3), Type: "person", Norm: "john smyth"}, // typo variant
		{Doc: id(4), Type: "person", Norm: "mary jones"},
		{Doc: id(5), Type: "location", Norm: "john smith"}, // different type never merges
	}
	clusters := r.Resolve(mentions)
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d: %+v", len(clusters), clusters)
	}
	var johns *EntityCluster
	for i := range clusters {
		if clusters[i].Type == "person" && clusters[i].Canonical == "john smith" {
			johns = &clusters[i]
		}
	}
	if johns == nil {
		t.Fatal("john smith cluster missing")
	}
	if len(johns.Docs) != 3 {
		t.Errorf("john cluster docs = %v", johns.Docs)
	}
	if len(johns.Norms) != 2 {
		t.Errorf("john cluster norms = %v", johns.Norms)
	}
}

func TestResolverCanonicalIsMostFrequent(t *testing.T) {
	r := NewResolver()
	mentions := []Mention{
		{Doc: id(1), Type: "person", Norm: "jon smith"},
		{Doc: id(2), Type: "person", Norm: "john smith"},
		{Doc: id(3), Type: "person", Norm: "john smith"},
	}
	clusters := r.Resolve(mentions)
	if len(clusters) != 1 || clusters[0].Canonical != "john smith" {
		t.Errorf("canonical = %+v", clusters)
	}
}

func TestResolverKeepsDistinctApart(t *testing.T) {
	r := NewResolver()
	mentions := []Mention{
		{Doc: id(1), Type: "product", Norm: "widgetpro"},
		{Doc: id(2), Type: "product", Norm: "gadgetmax"},
		{Doc: id(3), Type: "product", Norm: "thingamajig"},
	}
	if clusters := r.Resolve(mentions); len(clusters) != 3 {
		t.Errorf("distinct products merged: %+v", clusters)
	}
}

func TestResolverDeterministic(t *testing.T) {
	r := NewResolver()
	var mentions []Mention
	for i := uint64(0); i < 50; i++ {
		mentions = append(mentions, Mention{Doc: id(i), Type: "person", Norm: fmt.Sprintf("person %c", 'a'+i%10)})
	}
	a := r.Resolve(mentions)
	b := r.Resolve(mentions)
	if len(a) != len(b) {
		t.Fatal("non-deterministic cluster count")
	}
	for i := range a {
		if a[i].Canonical != b[i].Canonical || len(a[i].Docs) != len(b[i].Docs) {
			t.Fatal("non-deterministic clusters")
		}
	}
}

func TestJoinIndexEdgesAndNeighbors(t *testing.T) {
	ji := NewJoinIndex()
	ji.AddEdge(id(1), id(2), "x")
	ji.AddEdge(id(1), id(2), "x")    // duplicate ignored
	ji.AddEdge(id(1), id(2), "y")    // different label kept
	ji.AddEdge(id(1), id(1), "self") // self loop ignored
	if ji.EdgeCount() != 2 {
		t.Errorf("edges = %d", ji.EdgeCount())
	}
	n := ji.Neighbors(id(1))
	if len(n) != 2 || n[0].Label != "x" || n[1].Label != "y" {
		t.Errorf("neighbors = %v", n)
	}
	// Undirected: reverse direction visible.
	if len(ji.Neighbors(id(2))) != 2 {
		t.Error("reverse edges missing")
	}
}

func TestConnectFindsShortestPath(t *testing.T) {
	ji := NewJoinIndex()
	// Chain 1-2-3-4 plus shortcut 1-4 via another edge? No: test shortest.
	ji.AddEdge(id(1), id(2), "a")
	ji.AddEdge(id(2), id(3), "b")
	ji.AddEdge(id(3), id(4), "c")
	path := ji.Connect(id(1), id(4), 6)
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	if path[0].Label != "a" || path[2].Label != "c" {
		t.Errorf("path order: %v", path)
	}
	// Add a shortcut and verify BFS prefers it.
	ji.AddEdge(id(1), id(4), "direct")
	path = ji.Connect(id(1), id(4), 6)
	if len(path) != 1 || path[0].Label != "direct" {
		t.Errorf("shortcut not used: %v", path)
	}
	// Hop bound respected.
	ji2 := NewJoinIndex()
	ji2.AddEdge(id(1), id(2), "a")
	ji2.AddEdge(id(2), id(3), "b")
	if p := ji2.Connect(id(1), id(3), 1); p != nil {
		t.Errorf("hop bound violated: %v", p)
	}
	// Unreachable.
	if p := ji.Connect(id(1), id(99), 6); p != nil {
		t.Errorf("unreachable should be nil: %v", p)
	}
	// Self connection is empty path.
	if p := ji.Connect(id(1), id(1), 6); p == nil || len(p) != 0 {
		t.Errorf("self path: %v", p)
	}
}

func TestConnectedComponent(t *testing.T) {
	ji := NewJoinIndex()
	ji.AddEdge(id(1), id(2), "a")
	ji.AddEdge(id(2), id(3), "a")
	ji.AddEdge(id(10), id(11), "b")
	comp := ji.ConnectedComponent(id(1), 0)
	if len(comp) != 3 {
		t.Errorf("component = %v", comp)
	}
	comp = ji.ConnectedComponent(id(1), 1)
	if len(comp) != 2 {
		t.Errorf("bounded component = %v", comp)
	}
}

func TestBuildEntityEdgesCliqueAndStar(t *testing.T) {
	ji := NewJoinIndex()
	small := EntityCluster{Type: "person", Canonical: "a b", Docs: []docmodel.DocID{id(1), id(2), id(3)}}
	added := BuildEntityEdges(ji, []EntityCluster{small}, 32)
	if added != 3 { // 3 choose 2
		t.Errorf("clique edges = %d", added)
	}
	// Hub cluster uses star topology.
	var docs []docmodel.DocID
	for i := uint64(100); i < 150; i++ {
		docs = append(docs, id(i))
	}
	big := EntityCluster{Type: "location", Canonical: "metropolis", Docs: docs}
	ji2 := NewJoinIndex()
	added = BuildEntityEdges(ji2, []EntityCluster{big}, 32)
	if added != 49 {
		t.Errorf("star edges = %d, want 49", added)
	}
	// Still connected through the hub.
	if p := ji2.Connect(id(120), id(140), 4); p == nil {
		t.Error("star cluster should stay connected")
	}
}

func TestBuildRefEdges(t *testing.T) {
	ji := NewJoinIndex()
	d := &docmodel.Document{
		ID:        id(5),
		Version:   1,
		Annotates: id(1),
		Root: docmodel.Object(
			docmodel.F("base", docmodel.Ref(id(1))),
			docmodel.F("other", docmodel.Ref(id(2))),
		),
	}
	BuildRefEdges(ji, d)
	n := ji.Neighbors(id(5))
	if len(n) != 3 { // ref to 1, ref to 2, annotates 1
		t.Errorf("ref edges = %v", n)
	}
}

func orderDoc(seq uint64, source string, fields ...docmodel.Field) *docmodel.Document {
	return &docmodel.Document{ID: id(seq), Version: 1, Source: source, Root: docmodel.Object(fields...)}
}

func TestShapeAccumulatorAndSchemaMapping(t *testing.T) {
	sa := NewShapeAccumulator()
	// Purchase orders from a CSV feed.
	for i := uint64(1); i <= 5; i++ {
		sa.Observe(orderDoc(i, "csv",
			docmodel.F("customer_name", docmodel.String("x")),
			docmodel.F("total", docmodel.Int(int64(i))),
		))
	}
	// The same record type from e-mail ingestion: different field casing.
	for i := uint64(10); i <= 12; i++ {
		sa.Observe(orderDoc(i, "mail",
			docmodel.F("CustomerName", docmodel.String("y")),
			docmodel.F("Total", docmodel.Int(3)),
		))
	}
	// A completely different shape.
	sa.Observe(orderDoc(20, "hr",
		docmodel.F("employee", docmodel.Object(docmodel.F("badge", docmodel.Int(7)))),
		docmodel.F("department", docmodel.String("z")),
		docmodel.F("floor", docmodel.Int(3)),
	))

	groups := sa.Groups()
	if len(groups) != 3 {
		t.Fatalf("shape groups = %d", len(groups))
	}
	if len(groups[0].Docs) != 5 {
		t.Error("largest group first")
	}

	fams := NewSchemaMapper().Map(groups)
	if len(fams) != 2 {
		t.Fatalf("families = %d: %+v", len(fams), fams)
	}
	// The order family unifies both shapes.
	orders := fams[0]
	if len(orders.Groups) != 2 {
		t.Fatalf("order family groups = %d", len(orders.Groups))
	}
	paths := orders.PathsFor("customername")
	if len(paths) != 2 {
		t.Errorf("customer name paths = %v (attrs: %v)", paths, orders.AttrToPaths)
	}
	if len(orders.Docs()) != 8 {
		t.Errorf("order family docs = %d", len(orders.Docs()))
	}
}

func TestCanonicalAttr(t *testing.T) {
	cases := map[string]string{
		"/po/Customer_Name": "customername",
		"customerName":      "customername",
		"/a/@id":            "id",
		"/item/#text":       "text",
		"/orders/skus":      "sku",
	}
	for in, want := range cases {
		if got := CanonicalAttr(in); got != want {
			t.Errorf("CanonicalAttr(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSchemaMapperSkipsAnnotations(t *testing.T) {
	sa := NewShapeAccumulator()
	ann := orderDoc(1, "sys", docmodel.F("score", docmodel.Float(0.5)))
	ann.Annotates = id(99)
	sa.Observe(ann)
	if len(sa.Groups()) != 0 {
		t.Error("annotations must not form schema groups")
	}
}

func TestValueJoinDiscovery(t *testing.T) {
	// Customers (shape A) and purchase orders (shape B) share customer ids.
	var docs []*docmodel.Document
	for i := uint64(1); i <= 4; i++ {
		docs = append(docs, orderDoc(i, "mdm",
			docmodel.F("id", docmodel.String(fmt.Sprintf("C-%d", i))),
			docmodel.F("name", docmodel.String("cust")),
		))
	}
	for i := uint64(10); i <= 15; i++ {
		docs = append(docs, orderDoc(i, "po",
			docmodel.F("po_no", docmodel.Int(int64(i))),
			docmodel.F("cust_ref", docmodel.String(fmt.Sprintf("C-%d", i%4+1))),
			docmodel.F("amount", docmodel.Int(100)),
		))
	}
	ji := NewJoinIndex()
	joins := NewValueJoinDiscoverer().Discover(docs, ji)
	if len(joins) == 0 {
		t.Fatal("no joins discovered")
	}
	found := false
	for _, j := range joins {
		if (j.PathA == "/id" && j.PathB == "/cust_ref") || (j.PathA == "/cust_ref" && j.PathB == "/id") {
			found = true
			if j.Matches != 4 {
				t.Errorf("matches = %d, want 4", j.Matches)
			}
		}
	}
	if !found {
		t.Fatalf("id/cust_ref join missing: %+v", joins)
	}
	// Edges let a connection query walk PO -> customer.
	if p := ji.Connect(id(10), id(3), 2); p == nil {
		t.Error("join edges should connect PO 10 to customer C-3")
	}
}

func TestValueJoinIgnoresSameShape(t *testing.T) {
	var docs []*docmodel.Document
	for i := uint64(1); i <= 6; i++ {
		docs = append(docs, orderDoc(i, "x",
			docmodel.F("k", docmodel.String(fmt.Sprintf("v%d", i%2))),
		))
	}
	joins := NewValueJoinDiscoverer().Discover(docs, nil)
	if len(joins) != 0 {
		t.Errorf("same-shape joins proposed: %+v", joins)
	}
}

func TestValueJoinThresholds(t *testing.T) {
	// One shared value only: below MinMatches.
	docs := []*docmodel.Document{
		orderDoc(1, "a", docmodel.F("x", docmodel.String("shared")), docmodel.F("pad", docmodel.Int(1))),
		orderDoc(2, "b", docmodel.F("y", docmodel.String("shared"))),
	}
	joins := NewValueJoinDiscoverer().Discover(docs, nil)
	if len(joins) != 0 {
		t.Errorf("singleton coincidence became a join: %+v", joins)
	}
}
