package discovery

import (
	"sort"
	"sync"

	"impliance/internal/docmodel"
)

// Edge is one discovered relationship between two documents.
type Edge struct {
	From  docmodel.DocID
	To    docmodel.DocID
	Label string // e.g. "ref", "entity:person:john_smith", "join:/po/cust=/cust/id"
}

// JoinIndex stores discovered relationships as an adjacency structure —
// the paper's "join indexes" (§3.2) that connection queries traverse at
// query time instead of recomputing pairwise analyses.
type JoinIndex struct {
	mu    sync.RWMutex
	adj   map[docmodel.DocID][]Edge
	edges int
}

// NewJoinIndex creates an empty join index.
func NewJoinIndex() *JoinIndex {
	return &JoinIndex{adj: map[docmodel.DocID][]Edge{}}
}

// AddEdge records an undirected relationship (stored as two directed
// entries). Duplicate (from,to,label) edges are ignored.
func (ji *JoinIndex) AddEdge(a, b docmodel.DocID, label string) {
	if a == b {
		return
	}
	ji.mu.Lock()
	defer ji.mu.Unlock()
	if ji.hasLocked(a, b, label) {
		return
	}
	ji.adj[a] = append(ji.adj[a], Edge{From: a, To: b, Label: label})
	ji.adj[b] = append(ji.adj[b], Edge{From: b, To: a, Label: label})
	ji.edges++
}

func (ji *JoinIndex) hasLocked(a, b docmodel.DocID, label string) bool {
	for _, e := range ji.adj[a] {
		if e.To == b && e.Label == label {
			return true
		}
	}
	return false
}

// Neighbors returns the edges incident to the document, sorted by target
// then label for determinism.
func (ji *JoinIndex) Neighbors(id docmodel.DocID) []Edge {
	ji.mu.RLock()
	defer ji.mu.RUnlock()
	out := append([]Edge{}, ji.adj[id]...)
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].To.Compare(out[j].To); c != 0 {
			return c < 0
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// EdgeCount returns the number of undirected edges stored.
func (ji *JoinIndex) EdgeCount() int {
	ji.mu.RLock()
	defer ji.mu.RUnlock()
	return ji.edges
}

// Connect finds a shortest path between two documents through discovered
// relationships, up to maxHops edges — the paper's flagship structured
// query: "given two pieces of data, we should be able to ask how they are
// connected" (§3.2.1). Returns nil when no connection exists within the
// bound.
func (ji *JoinIndex) Connect(a, b docmodel.DocID, maxHops int) []Edge {
	if a == b {
		return []Edge{}
	}
	if maxHops <= 0 {
		maxHops = 6
	}
	ji.mu.RLock()
	defer ji.mu.RUnlock()

	parents := map[docmodel.DocID]visit{a: {id: a}}
	frontier := []docmodel.DocID{a}
	for depth := 0; depth < maxHops && len(frontier) > 0; depth++ {
		var next []docmodel.DocID
		for _, cur := range frontier {
			// Deterministic expansion order.
			edges := append([]Edge{}, ji.adj[cur]...)
			sort.Slice(edges, func(i, j int) bool {
				if c := edges[i].To.Compare(edges[j].To); c != 0 {
					return c < 0
				}
				return edges[i].Label < edges[j].Label
			})
			for _, e := range edges {
				if _, seen := parents[e.To]; seen {
					continue
				}
				parents[e.To] = visit{id: e.To, via: e, prev: cur}
				if e.To == b {
					return reconstruct(parents, a, b)
				}
				next = append(next, e.To)
			}
		}
		frontier = next
	}
	return nil
}

func reconstruct(parents map[docmodel.DocID]visit, a, b docmodel.DocID) []Edge {
	var path []Edge
	cur := b
	for cur != a {
		v := parents[cur]
		path = append(path, v.via)
		cur = v.prev
	}
	// Reverse into a→b order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

type visit struct {
	id   docmodel.DocID
	via  Edge
	prev docmodel.DocID
}

// ConnectedComponent returns every document reachable from id within
// maxHops (the legal-compliance "transitive closure of relationships",
// paper §2.1.3), sorted.
func (ji *JoinIndex) ConnectedComponent(id docmodel.DocID, maxHops int) []docmodel.DocID {
	if maxHops <= 0 {
		maxHops = 16
	}
	ji.mu.RLock()
	defer ji.mu.RUnlock()
	seen := map[docmodel.DocID]struct{}{id: {}}
	frontier := []docmodel.DocID{id}
	for depth := 0; depth < maxHops && len(frontier) > 0; depth++ {
		var next []docmodel.DocID
		for _, cur := range frontier {
			for _, e := range ji.adj[cur] {
				if _, ok := seen[e.To]; !ok {
					seen[e.To] = struct{}{}
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	out := make([]docmodel.DocID, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// BuildEntityEdges adds relationship edges for every resolved entity
// cluster: documents mentioning the same entity are connected. Clusters
// touching more than maxFanout documents use a star topology around the
// first document to bound edge count (hub entities like a big city would
// otherwise add O(n²) edges).
func BuildEntityEdges(ji *JoinIndex, clusters []EntityCluster, maxFanout int) int {
	if maxFanout <= 0 {
		maxFanout = 32
	}
	added := 0
	for _, c := range clusters {
		if len(c.Docs) < 2 {
			continue
		}
		label := ClusterLabel(c)
		if len(c.Docs) <= maxFanout {
			for i := 0; i < len(c.Docs); i++ {
				for j := i + 1; j < len(c.Docs); j++ {
					ji.AddEdge(c.Docs[i], c.Docs[j], label)
					added++
				}
			}
		} else {
			hub := c.Docs[0]
			for _, d := range c.Docs[1:] {
				ji.AddEdge(hub, d, label)
				added++
			}
		}
	}
	return added
}

// BuildRefEdges adds an edge for every document reference (annotation →
// base links and any ingested refs).
func BuildRefEdges(ji *JoinIndex, d *docmodel.Document) int {
	n := 0
	for _, ref := range d.Refs() {
		ji.AddEdge(d.ID, ref, "ref")
		n++
	}
	if d.IsAnnotation() {
		ji.AddEdge(d.ID, d.Annotates, "annotates")
		n++
	}
	return n
}
