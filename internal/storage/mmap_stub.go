//go:build !unix

package storage

import "errors"

// Non-unix platforms get the mmap backend's interface with the segment
// backend's pread reads: mmapFile always fails, the mmap layer caches
// the failure, and every ReadAt falls back.
func mmapFile(string) ([]byte, error) {
	return nil, errors.New("storage: mmap unsupported on this platform")
}

func munmapBytes([]byte) {}
