//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps a whole file read-only and shared (page cache, no
// private copy). Returns a nil slice for an empty file — mapping zero
// bytes is an error on most kernels and there is nothing to read anyway.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("storage: segment too large to map: %d bytes", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapBytes(b []byte) { _ = syscall.Munmap(b) }
