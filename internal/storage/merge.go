// Segment merge/GC for the segment (and mmap) backend: fold every
// sealed segment into one, carrying forward only the frames the Store's
// plan keeps. Compaction (compact in segment.go) re-frames in place and
// drops nothing; merge is the reclamation half — superseded duplicate
// frames, retention-expired history, and fully tombstoned chains stop
// occupying disk.
//
// Crash-safety is a roll-forward journal around one atomic commit point:
//
//  1. The merged data file and its index are staged as
//     "seg-%04d.log.mrg" / "seg-%04d.idx.mrg" at the LOWEST merged
//     ordinal (preserving replay order, and keeping the active segment
//     the highest ordinal so open's active-detection is undisturbed).
//  2. A "merge-commit" marker naming the destination and every merged
//     ordinal is written tmp+sync+rename. The rename is the commit.
//  3. rollForward renames the staged files into place and removes the
//     other merged segments' files, then the marker. Every step is
//     idempotent, so a crash anywhere after (2) is finished by the next
//     open; without a marker, stray *.mrg files are dead staging and are
//     deleted.
package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"impliance/internal/docmodel"
	"impliance/internal/storage/compress"
)

func (s *segmentBackend) markerPath() string {
	return filepath.Join(s.dir, "merge-commit")
}

// Merge implements the mergeable seam used by Store.Merge. The stream
// runs with no lock held (sealed segments are immutable and appends land
// in the active segment); only the swap — marker write, renames, state
// update — runs inside the caller's commit lock.
func (s *segmentBackend) Merge(minSegments int, planKeep func(segs []int) func(Locator) bool,
	commit func(merged []int, remap map[Locator]Locator, swap func() error) error) (bool, error) {
	if minSegments < 2 {
		minSegments = 2
	}
	s.mu.Lock()
	merged := append([]int{}, s.sealed...)
	s.mu.Unlock()
	if len(merged) < minSegments {
		return false, nil
	}
	dest := merged[0]
	keep := planKeep(merged)

	logTmp := s.segPath(dest) + ".mrg"
	idxTmp := s.idxPath(dest) + ".mrg"
	out, err := os.Create(logTmp)
	if err != nil {
		return false, fmt.Errorf("storage: merge: %w", err)
	}
	fail := func(err error) (bool, error) {
		out.Close()
		os.Remove(logTmp)
		os.Remove(idxTmp)
		return false, err
	}
	remap := map[Locator]Locator{}
	var entries []segIdxEntry
	var newOff int64
	for _, seg := range merged {
		src, err := os.Open(s.segPath(seg))
		if err != nil {
			return fail(fmt.Errorf("storage: merge: %w", err))
		}
		fr := compress.NewFrameReader(src)
		var off int64
		for {
			raw, n, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				src.Close()
				return fail(fmt.Errorf("storage: merge segment %d: %w", seg, err))
			}
			old := Locator{Seg: seg, Off: off}
			off += int64(n)
			if !keep(old) {
				continue
			}
			hdr, err := docmodel.DecodeDocumentHeader(raw)
			if err != nil {
				src.Close()
				return fail(fmt.Errorf("storage: merge segment %d: %w", seg, err))
			}
			frame, err := compress.EncodeFrame(s.codec, raw)
			if err != nil {
				src.Close()
				return fail(err)
			}
			if _, err := out.Write(frame); err != nil {
				src.Close()
				return fail(fmt.Errorf("storage: merge write: %w", err))
			}
			remap[old] = Locator{Seg: dest, Off: newOff}
			entries = append(entries, segIdxEntry{off: newOff, info: FrameInfo{
				ID: hdr.ID, Ver: hdr.Version, Class: hdr.Class, Ann: hdr.IsAnnotation(), Del: hdr.Deleted,
			}})
			newOff += int64(len(frame))
		}
		src.Close()
	}
	if err := out.Sync(); err != nil {
		return fail(fmt.Errorf("storage: merge sync: %w", err))
	}
	if err := out.Close(); err != nil {
		os.Remove(logTmp)
		return false, fmt.Errorf("storage: merge close: %w", err)
	}
	if err := s.writeIndexTo(idxTmp, entries); err != nil {
		os.Remove(logTmp)
		return false, err
	}

	err = commit(merged, remap, func() error {
		if err := s.writeMarker(dest, merged); err != nil {
			os.Remove(logTmp)
			os.Remove(idxTmp)
			return err
		}
		// Committed: from here failures are surfaced but the merge stands —
		// the next open's roll-forward finishes whatever rename was missed.
		if err := s.rollForward(dest, merged); err != nil {
			return err
		}
		in := map[int]bool{}
		for _, g := range merged {
			in[g] = true
		}
		s.mu.Lock()
		// Segments sealed while the merge streamed stay sealed behind the
		// merged one; the ordinal order (dest is lowest) is preserved.
		kept := []int{dest}
		for _, n := range s.sealed {
			if !in[n] {
				kept = append(kept, n)
			}
		}
		s.sealed = kept
		s.mu.Unlock()
		for _, seg := range merged {
			s.dropReader(seg)
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	return true, nil
}

// writeMarker atomically publishes the merge-commit marker. Its rename
// is the merge's single commit point.
func (s *segmentBackend) writeMarker(dest int, merged []int) error {
	var buf bytes.Buffer
	buf.WriteString(strconv.Itoa(dest))
	for _, n := range merged {
		buf.WriteByte(' ')
		buf.WriteString(strconv.Itoa(n))
	}
	buf.WriteByte('\n')
	tmp := s.markerPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: merge marker: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err == nil {
		err = f.Sync()
	} else {
		f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: merge marker: %w", err)
	}
	if err := os.Rename(tmp, s.markerPath()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: merge marker: %w", err)
	}
	return nil
}

// rollForward completes a committed merge. Idempotent: every step is
// skip-if-absent, so it can run once in-process right after the marker
// rename and again at the next open if a crash interrupted it.
func (s *segmentBackend) rollForward(dest int, merged []int) error {
	if _, err := os.Stat(s.segPath(dest) + ".mrg"); err == nil {
		// The stale index must go before the data rename: a crash in
		// between leaves a segment with no index (rebuilt by scan), never
		// a valid-CRC index describing the wrong layout.
		if err := os.Remove(s.idxPath(dest)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("storage: merge drop index: %w", err)
		}
		if err := os.Rename(s.segPath(dest)+".mrg", s.segPath(dest)); err != nil {
			return fmt.Errorf("storage: merge rename: %w", err)
		}
	}
	if _, err := os.Stat(s.idxPath(dest) + ".mrg"); err == nil {
		if err := os.Rename(s.idxPath(dest)+".mrg", s.idxPath(dest)); err != nil {
			return fmt.Errorf("storage: merge rename index: %w", err)
		}
	}
	for _, seg := range merged {
		if seg == dest {
			continue
		}
		if err := os.Remove(s.segPath(seg)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("storage: merge remove: %w", err)
		}
		if err := os.Remove(s.idxPath(seg)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("storage: merge remove index: %w", err)
		}
	}
	if err := os.Remove(s.markerPath()); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("storage: merge unmark: %w", err)
	}
	return nil
}

// recoverMerge runs at open, before segment discovery: finish a
// committed merge the crash interrupted, or sweep dead staging files
// from an uncommitted one.
func (s *segmentBackend) recoverMerge() error {
	data, err := os.ReadFile(s.markerPath())
	if errors.Is(err, os.ErrNotExist) {
		for _, pat := range []string{"seg-*.log.mrg", "seg-*.idx.mrg"} {
			matches, _ := filepath.Glob(filepath.Join(s.dir, pat))
			for _, m := range matches {
				_ = os.Remove(m)
			}
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: merge marker: %w", err)
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return fmt.Errorf("storage: malformed merge marker %q", string(data))
	}
	nums := make([]int, len(fields))
	for i, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			return fmt.Errorf("storage: malformed merge marker %q", string(data))
		}
		nums[i] = n
	}
	return s.rollForward(nums[0], nums[1:])
}

// DiskBytes sums the segment data files (indexes and staging excluded):
// the on-disk footprint StorageFootprint compares against live bytes.
func (s *segmentBackend) DiskBytes() (uint64, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, "seg-*.log"))
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, m := range matches {
		if st, err := os.Stat(m); err == nil {
			total += uint64(st.Size())
		}
	}
	return total, nil
}
