// Package storage implements the per-data-node document store: an
// append-only, versioned repository of native-format documents (paper
// §3.2: "Impliance treats each such new version of a data item as
// immutable"; §4: "Impliance does not update data in-place. Instead,
// changes are implemented as the addition of a new version").
//
// The store is the software half of a paper §3.3 *data node*. It owns a
// subset of the appliance's persistent storage, evaluates pushed-down
// predicates and partial aggregates locally (paper §3.1), and compresses
// blocks inside the storage software (ditto). Durability comes from a
// write-ahead log of checksummed frames; recovery tolerates a torn tail.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/storage/compress"
)

// Errors returned by the store.
var (
	ErrNotFound      = errors.New("storage: document not found")
	ErrVersionExists = errors.New("storage: version already exists")
	ErrVersionGap    = errors.New("storage: version gap")
	ErrClosed        = errors.New("storage: store closed")
	ErrWrongOrigin   = errors.New("storage: document id minted by another store")
)

// Options configures a store.
type Options struct {
	// Dir is the directory for the write-ahead log; empty means the store
	// is memory-only (used heavily by simulations and tests).
	Dir string
	// Codec compresses log frames; nil means compress.None.
	Codec compress.Codec
	// SyncEveryWrite fsyncs after each append. Off by default: the
	// appliance model batches syncs, and the simulator measures relative
	// costs, not disk latencies.
	SyncEveryWrite bool
}

// Stats are cumulative operation and byte counters, readable concurrently.
type Stats struct {
	Puts        atomic.Uint64
	Gets        atomic.Uint64
	ScannedDocs atomic.Uint64
	RawBytes    atomic.Uint64 // pre-compression document bytes
	StoredBytes atomic.Uint64 // post-compression frame bytes
}

// Store is a single data node's document repository.
type Store struct {
	origin uint32
	opts   Options

	mu     sync.RWMutex
	chains map[docmodel.DocID][]*docmodel.Document // version chains, index = ver-1
	order  []docmodel.DocID                        // insertion order for scans
	seq    uint64
	wal    *os.File
	closed bool

	stats Stats
}

// Open creates or recovers a store. origin is the node's unique ID-minting
// prefix; it must be non-zero and stable across restarts of the same node.
func Open(origin uint32, opts Options) (*Store, error) {
	if origin == 0 {
		return nil, fmt.Errorf("storage: origin must be non-zero")
	}
	if opts.Codec == nil {
		opts.Codec = compress.None
	}
	s := &Store{
		origin: origin,
		opts:   opts,
		chains: map[docmodel.DocID][]*docmodel.Document{},
	}
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	path := s.walPath()
	if err := s.replay(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	s.wal = f
	return s, nil
}

func (s *Store) walPath() string { return filepath.Join(s.opts.Dir, "store.wal") }

// replay loads every recoverable frame; a torn tail (truncated last frame)
// is tolerated and trimmed.
func (s *Store) replay(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: read wal: %w", err)
	}
	off := 0
	for off < len(data) {
		raw, n, err := compress.DecodeFrame(data[off:])
		if err != nil {
			// Torn tail: keep everything before it, truncate the rest.
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return fmt.Errorf("storage: truncate torn wal: %w", terr)
			}
			break
		}
		doc, err := docmodel.DecodeDocument(raw)
		if err != nil {
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return fmt.Errorf("storage: truncate bad wal record: %w", terr)
			}
			break
		}
		s.applyLocked(doc)
		off += n
	}
	return nil
}

// applyLocked inserts a replayed/replicated document version; caller holds
// no lock during replay (single-threaded) — name kept for the Put path.
func (s *Store) applyLocked(doc *docmodel.Document) {
	chain := s.chains[doc.ID]
	for uint32(len(chain)) < doc.Version {
		chain = append(chain, nil)
	}
	if chain[doc.Version-1] == nil {
		chain[doc.Version-1] = doc
	}
	if _, existed := s.chains[doc.ID]; !existed {
		s.order = append(s.order, doc.ID)
	}
	s.chains[doc.ID] = chain
	if doc.ID.Origin == s.origin && doc.ID.Seq > s.seq {
		s.seq = doc.ID.Seq
	}
}

// NewDocID mints a fresh document ID local to this store. IDs are unique
// appliance-wide because origins are unique per node (paper §3.3: ingest
// must not serialize through a central coordinator).
func (s *Store) NewDocID() docmodel.DocID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return docmodel.DocID{Origin: s.origin, Seq: s.seq}
}

// Put appends a document version.
//
//   - A zero ID mints a new document (version 1).
//   - A non-zero ID with Version 0 appends the next version of that
//     document.
//   - A non-zero ID with an explicit Version must extend the chain by
//     exactly one (no gaps, no overwrites) — immutability is enforced.
//
// The stored document is the caller's; callers must not mutate it after
// Put (values are immutable by convention).
func (s *Store) Put(doc *docmodel.Document) (docmodel.VersionKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return docmodel.VersionKey{}, ErrClosed
	}
	d := doc.Clone()
	if d.ID.IsZero() {
		s.seq++
		d.ID = docmodel.DocID{Origin: s.origin, Seq: s.seq}
		if d.Version != 0 && d.Version != 1 {
			return docmodel.VersionKey{}, fmt.Errorf("%w: new document with version %d", ErrVersionGap, d.Version)
		}
		d.Version = 1
	} else {
		chain := s.chains[d.ID]
		next := uint32(len(chain)) + 1
		switch {
		case d.Version == 0:
			d.Version = next
		case d.Version < next:
			return docmodel.VersionKey{}, fmt.Errorf("%w: %s", ErrVersionExists, docmodel.VersionKey{Doc: d.ID, Ver: d.Version})
		case d.Version > next:
			return docmodel.VersionKey{}, fmt.Errorf("%w: have %d versions, got version %d", ErrVersionGap, len(chain), d.Version)
		}
	}
	if err := s.append(d); err != nil {
		return docmodel.VersionKey{}, err
	}
	s.stats.Puts.Add(1)
	return d.Key(), nil
}

// PutReplica installs a document version replicated from another node,
// preserving its identity. It is idempotent: re-delivering a version is a
// no-op (replica convergence, paper §3.2: versioning "obviates the need to
// update all replicas of a document consistently and synchronously").
func (s *Store) PutReplica(doc *docmodel.Document) error {
	if doc.ID.IsZero() || doc.Version == 0 {
		return fmt.Errorf("storage: replica must carry id and version")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	chain := s.chains[doc.ID]
	if uint32(len(chain)) >= doc.Version && chain[doc.Version-1] != nil {
		return nil // already have it
	}
	return s.append(doc.Clone())
}

// append writes the version to the WAL and installs it in memory.
// Caller holds s.mu.
func (s *Store) append(d *docmodel.Document) error {
	raw := docmodel.EncodeDocument(d)
	if s.wal != nil {
		frame, err := compress.EncodeFrame(s.opts.Codec, raw)
		if err != nil {
			return err
		}
		if _, err := s.wal.Write(frame); err != nil {
			return fmt.Errorf("storage: append wal: %w", err)
		}
		if s.opts.SyncEveryWrite {
			if err := s.wal.Sync(); err != nil {
				return fmt.Errorf("storage: sync wal: %w", err)
			}
		}
		s.stats.StoredBytes.Add(uint64(len(frame)))
	} else {
		// Memory-only stores still account frame size so experiments can
		// compare codecs without touching disk.
		frame, err := compress.EncodeFrame(s.opts.Codec, raw)
		if err != nil {
			return err
		}
		s.stats.StoredBytes.Add(uint64(len(frame)))
	}
	s.stats.RawBytes.Add(uint64(len(raw)))
	s.applyLocked(d)
	return nil
}

// Get returns the latest version of the document.
func (s *Store) Get(id docmodel.DocID) (*docmodel.Document, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[id]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i] != nil {
			s.stats.Gets.Add(1)
			return chain[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
}

// GetVersion returns one specific immutable version.
func (s *Store) GetVersion(key docmodel.VersionKey) (*docmodel.Document, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[key.Doc]
	if key.Ver == 0 || uint32(len(chain)) < key.Ver || chain[key.Ver-1] == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	s.stats.Gets.Add(1)
	return chain[key.Ver-1], nil
}

// VersionCount returns the number of stored versions of the document
// (0 when unknown).
func (s *Store) VersionCount(id docmodel.DocID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chains[id])
}

// Len returns the number of distinct documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chains)
}

// Scan streams the latest version of every document in insertion order.
// fn returning false stops the scan.
func (s *Store) Scan(fn func(*docmodel.Document) bool) {
	s.mu.RLock()
	ids := make([]docmodel.DocID, len(s.order))
	copy(ids, s.order)
	s.mu.RUnlock()
	for _, id := range ids {
		d, err := s.Get(id)
		if err != nil {
			continue
		}
		s.stats.ScannedDocs.Add(1)
		if !fn(d) {
			return
		}
	}
}

// ScanSubset streams the latest version of each listed document, in list
// order, applying the pushed-down filter. Data nodes use it to scan only
// the documents they own, skipping replica copies without paying to
// evaluate them.
func (s *Store) ScanSubset(ids []docmodel.DocID, filter expr.Expr, fn func(*docmodel.Document) bool) {
	for _, id := range ids {
		d, err := s.Get(id)
		if err != nil {
			continue
		}
		s.stats.ScannedDocs.Add(1)
		if filter.Eval(d) {
			if !fn(d) {
				return
			}
		}
	}
}

// ScanFiltered streams latest versions matching the pushed-down predicate.
// This is paper §3.1 early data reduction: the filter runs inside the
// storage component so only qualifying documents cross the interconnect.
func (s *Store) ScanFiltered(filter expr.Expr, fn func(*docmodel.Document) bool) {
	s.Scan(func(d *docmodel.Document) bool {
		if filter.Eval(d) {
			return fn(d)
		}
		return true
	})
}

// AggregateLocal evaluates a pushed-down grouped aggregation over matching
// documents and returns the mergeable partial state (two-phase
// aggregation: partials here, merge on a grid node).
func (s *Store) AggregateLocal(filter expr.Expr, spec expr.GroupSpec) *expr.GroupState {
	g := expr.NewGroupState(spec)
	s.ScanFiltered(filter, func(d *docmodel.Document) bool {
		g.Update(d)
		return true
	})
	return g
}

// EachVersion streams every stored version (for replication and audits),
// oldest first within each document, documents in insertion order.
func (s *Store) EachVersion(fn func(*docmodel.Document) bool) {
	s.mu.RLock()
	ids := make([]docmodel.DocID, len(s.order))
	copy(ids, s.order)
	s.mu.RUnlock()
	for _, id := range ids {
		s.mu.RLock()
		chain := append([]*docmodel.Document{}, s.chains[id]...)
		s.mu.RUnlock()
		for _, d := range chain {
			if d == nil {
				continue
			}
			if !fn(d) {
				return
			}
		}
	}
}

// StatsSnapshot returns a point-in-time copy of the counters.
func (s *Store) StatsSnapshot() (puts, gets, scanned, rawBytes, storedBytes uint64) {
	return s.stats.Puts.Load(), s.stats.Gets.Load(), s.stats.ScannedDocs.Load(),
		s.stats.RawBytes.Load(), s.stats.StoredBytes.Load()
}

// Compact rewrites the WAL, dropping nothing (all versions are retained
// for audit, paper §4) but re-framing with the current codec and removing
// torn garbage. The rewrite is atomic via rename.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal == nil {
		return nil
	}
	tmp := s.walPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	for _, id := range s.order {
		for _, d := range s.chains[id] {
			if d == nil {
				continue
			}
			frame, err := compress.EncodeFrame(s.opts.Codec, docmodel.EncodeDocument(d))
			if err != nil {
				f.Close()
				os.Remove(tmp)
				return err
			}
			if _, err := f.Write(frame); err != nil {
				f.Close()
				os.Remove(tmp)
				return fmt.Errorf("storage: compact write: %w", err)
			}
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: compact close: %w", err)
	}
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("storage: compact swap: %w", err)
	}
	if err := os.Rename(tmp, s.walPath()); err != nil {
		return fmt.Errorf("storage: compact rename: %w", err)
	}
	w, err := os.OpenFile(s.walPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact reopen: %w", err)
	}
	s.wal = w
	return nil
}

// Close flushes and closes the WAL. The store rejects writes afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		if err := s.wal.Sync(); err != nil {
			s.wal.Close()
			return fmt.Errorf("storage: close sync: %w", err)
		}
		return s.wal.Close()
	}
	return nil
}

// Origin returns the store's ID-minting prefix.
func (s *Store) Origin() uint32 { return s.origin }
