// Package storage implements the per-data-node document store: an
// append-only, versioned repository of native-format documents (paper
// §3.2: "Impliance treats each such new version of a data item as
// immutable"; §4: "Impliance does not update data in-place. Instead,
// changes are implemented as the addition of a new version").
//
// The store is the software half of a paper §3.3 *data node*. It owns a
// subset of the appliance's persistent storage, evaluates pushed-down
// predicates and partial aggregates locally (paper §3.1), and compresses
// blocks inside the storage software (ditto). Durability comes from a
// write-ahead log of checksummed frames; recovery tolerates a torn tail.
//
// The Store itself is a façade: version-chain semantics, ID minting, and
// scan order live here, while the physical frame layout is a pluggable
// Backend (backend.go). The "heapwal" backend is the original single-log
// layout with every decoded version pinned on the heap; the "segment"
// backend stores frames in sealed segment files with sidecar indexes and
// decodes lazily, so memory tracks the hot set instead of total history.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/storage/compress"
)

// Errors returned by the store.
var (
	ErrNotFound      = errors.New("storage: document not found")
	ErrVersionExists = errors.New("storage: version already exists")
	ErrVersionGap    = errors.New("storage: version gap")
	ErrClosed        = errors.New("storage: store closed")
	ErrWrongOrigin   = errors.New("storage: document id minted by another store")
	// ErrMergeUnsupported is returned by Merge on backends without
	// physical segment GC (heapwal, memory).
	ErrMergeUnsupported = errors.New("storage: backend does not support merge")

	errNoRandomAccess = errors.New("storage: backend does not support random reads")
)

// Backend names accepted by Options.Backend.
const (
	BackendHeapWAL = "heapwal"
	BackendSegment = "segment"
	// BackendMmap is the segment layout read through read-only memory
	// maps: sealed segments live in the page cache and cold reads decode
	// zero-copy views instead of pread+buffer copies. On-disk format is
	// identical to BackendSegment — the two open each other's directories.
	BackendMmap = "mmap"
)

// Options configures a store.
type Options struct {
	// Dir is the directory for the persistent log; empty means the store
	// is memory-only (used heavily by simulations and tests) regardless
	// of the configured Backend.
	Dir string
	// Backend selects the physical layout: BackendHeapWAL (default, the
	// original single-log layout with all versions decoded on the heap)
	// or BackendSegment (sealed segment files, lazy decode).
	Backend string
	// SegmentBytes is the segment backend's roll-over threshold (default
	// 1 MiB). Ignored by other backends.
	SegmentBytes int64
	// HotCacheDocs bounds the segment backend's cache of decoded
	// document versions (default 1024). Ignored by non-lazy backends,
	// which pin everything.
	HotCacheDocs int
	// Codec compresses log frames; nil means compress.None.
	Codec compress.Codec
	// SyncEveryWrite fsyncs after each append. Off by default: the
	// appliance model batches syncs, and the simulator measures relative
	// costs, not disk latencies.
	SyncEveryWrite bool
	// MergeMinSegments is the fewest sealed segments Merge will fold
	// (default 2; a single sealed segment has nothing to fold with).
	MergeMinSegments int
	// RetainVersions bounds how many trailing versions of each chain a
	// Merge keeps on disk: versions at or below head−RetainVersions are
	// dropped. 0 (the default) keeps every version — Merge then only
	// reclaims fully tombstoned chains and re-frames, never GCs history.
	RetainVersions int
}

// Stats are cumulative operation and byte counters, readable concurrently.
type Stats struct {
	Puts        atomic.Uint64
	Gets        atomic.Uint64
	ScannedDocs atomic.Uint64
	RawBytes    atomic.Uint64 // pre-compression document bytes
	StoredBytes atomic.Uint64 // post-compression frame bytes

	// CompactNanos and CompactStallNanos account compaction: total wall
	// time vs time spent holding the store's write lock (the writer
	// stall). Snapshot-then-swap keeps the stall a small fraction of the
	// total.
	CompactNanos      atomic.Uint64
	CompactStallNanos atomic.Uint64

	// ReadErrors counts present documents whose frame could not be
	// re-read or decoded (lazy-backend I/O failure or on-disk
	// corruption). Point reads surface these as errors; scans skip the
	// document and rely on this counter to make the loss observable.
	ReadErrors atomic.Uint64

	// LiveBytes is the stored (framed, compressed) size of every version
	// still referenced by a chain, as of when each frame was written.
	// Disk bytes ÷ LiveBytes is the store's current space amplification;
	// Merge closes the gap by dropping frames no chain references.
	LiveBytes atomic.Uint64

	// Merges counts completed segment merges (no-op calls excluded).
	Merges atomic.Uint64
}

// centry is one version slot in a chain: where the frame lives, plus the
// decoded document when the backend is non-lazy (pinned forever) — lazy
// backends leave doc nil and decoded copies live in the hot cache.
type centry struct {
	doc   *docmodel.Document
	loc   Locator
	size  int // stored frame bytes, for live-byte accounting
	class uint8
	ann   bool
	del   bool // tombstone version
}

// Store is a single data node's document repository.
type Store struct {
	origin uint32
	opts   Options
	be     Backend
	lazy   bool
	hot    *hotCache // nil unless lazy

	mu     sync.RWMutex
	chains map[docmodel.DocID][]*centry // version chains, index = ver-1
	order  []docmodel.DocID             // insertion order for scans
	seq    uint64
	closed bool

	// compactMu serializes Compact against itself: the rewrite streams
	// outside s.mu by design, so two concurrent compactions would race
	// on the backends' shared temp files.
	compactMu sync.Mutex

	stats Stats
}

// Open creates or recovers a store. origin is the node's unique ID-minting
// prefix; it must be non-zero and stable across restarts of the same node.
func Open(origin uint32, opts Options) (*Store, error) {
	if origin == 0 {
		return nil, fmt.Errorf("storage: origin must be non-zero")
	}
	if opts.Codec == nil {
		opts.Codec = compress.None
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	if opts.HotCacheDocs <= 0 {
		opts.HotCacheDocs = 1024
	}
	if opts.MergeMinSegments <= 0 {
		opts.MergeMinSegments = 2
	}
	switch opts.Backend {
	case "", BackendHeapWAL, BackendSegment, BackendMmap:
	default:
		// Validate the name even for memory-only stores, so a typo fails
		// in the simulation that wrote it, not at first deployment.
		return nil, fmt.Errorf("storage: unknown backend %q", opts.Backend)
	}
	s := &Store{
		origin: origin,
		opts:   opts,
		chains: map[docmodel.DocID][]*centry{},
	}
	if opts.Dir == "" {
		s.be = &memBackend{codec: opts.Codec}
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	// openableBackend is a Backend with the one-shot recovery entry point
	// the Store drives before taking ownership.
	type openableBackend interface {
		Backend
		open(fn func(FrameMeta) error) error
	}
	var be openableBackend
	switch opts.Backend {
	case "", BackendHeapWAL:
		if err := rejectForeignLayout(opts.Dir, "seg-*.log", BackendHeapWAL, BackendSegment); err != nil {
			return nil, err
		}
		be = newHeapWAL(opts.Dir, opts.Codec, opts.SyncEveryWrite)
	case BackendSegment:
		if err := rejectForeignLayout(opts.Dir, "store.wal", BackendSegment, BackendHeapWAL); err != nil {
			return nil, err
		}
		be = newSegmentBackend(opts.Dir, opts.Codec, opts.SyncEveryWrite, opts.SegmentBytes)
	case BackendMmap:
		// Same on-disk layout as the segment backend, so only heapwal
		// directories are foreign.
		if err := rejectForeignLayout(opts.Dir, "store.wal", BackendMmap, BackendHeapWAL); err != nil {
			return nil, err
		}
		be = newMmapBackend(opts.Dir, opts.Codec, opts.SyncEveryWrite, opts.SegmentBytes)
	default:
		return nil, fmt.Errorf("storage: unknown backend %q", opts.Backend)
	}
	if s.lazy = be.Lazy(); s.lazy {
		s.hot = newHotCache(opts.HotCacheDocs)
	}
	if err := be.open(s.replayFrame); err != nil {
		return nil, err
	}
	s.be = be
	return s, nil
}

// rejectForeignLayout fails fast when the directory holds the other
// backend's files: silently opening an empty store over an invisible
// corpus would orphan the data and re-mint colliding DocIDs. Switching
// backends requires a fresh directory (or an explicit migration).
func rejectForeignLayout(dir, foreignGlob, want, holds string) error {
	matches, err := filepath.Glob(filepath.Join(dir, foreignGlob))
	if err == nil && len(matches) > 0 {
		return fmt.Errorf("storage: %s holds %s-backend data; open it with Backend=%q or point %q at a fresh directory",
			dir, holds, holds, want)
	}
	return nil
}

// replayFrame installs one recovered frame. During replay the store is
// single-threaded, so no lock is taken. Lazy backends supply header
// identity (and, for scanned frames, raw bytes we deliberately do not
// decode); non-lazy backends supply raw bytes the store decodes and
// pins — the original recovery behavior.
func (s *Store) replayFrame(m FrameMeta) error {
	if s.lazy {
		s.installEntry(m.ID, m.Ver, &centry{loc: m.Loc, size: m.Size, class: m.Class, ann: m.Ann, del: m.Del})
		return nil
	}
	doc, err := docmodel.DecodeDocument(m.Raw)
	if err != nil {
		// A checksummed frame that is not a document: skip it rather than
		// dropping everything after it.
		return nil
	}
	s.installEntry(doc.ID, doc.Version, &centry{
		doc: doc, loc: m.Loc, size: m.Size,
		class: doc.Class, ann: doc.IsAnnotation(), del: doc.Deleted,
	})
	return nil
}

// installEntry places a version entry in its chain, growing the chain
// with nil gap slots as needed; first write wins. Caller holds s.mu
// (or is single-threaded replay).
func (s *Store) installEntry(id docmodel.DocID, ver uint32, ce *centry) {
	if ver == 0 {
		return
	}
	chain := s.chains[id]
	for uint32(len(chain)) < ver {
		chain = append(chain, nil)
	}
	if chain[ver-1] == nil {
		chain[ver-1] = ce
		s.stats.LiveBytes.Add(uint64(ce.size))
	}
	if _, existed := s.chains[id]; !existed {
		s.order = append(s.order, id)
	}
	s.chains[id] = chain
	if id.Origin == s.origin && id.Seq > s.seq {
		s.seq = id.Seq
	}
}

// NewDocID mints a fresh document ID local to this store. IDs are unique
// appliance-wide because origins are unique per node (paper §3.3: ingest
// must not serialize through a central coordinator).
func (s *Store) NewDocID() docmodel.DocID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return docmodel.DocID{Origin: s.origin, Seq: s.seq}
}

// Put appends a document version.
//
//   - A zero ID mints a new document (version 1).
//   - A non-zero ID with Version 0 appends the next version of that
//     document.
//   - A non-zero ID with an explicit Version must extend the chain by
//     exactly one (no gaps, no overwrites) — immutability is enforced.
//
// The stored document is the caller's; callers must not mutate it after
// Put (values are immutable by convention).
func (s *Store) Put(doc *docmodel.Document) (docmodel.VersionKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return docmodel.VersionKey{}, ErrClosed
	}
	d := doc.Clone()
	if d.ID.IsZero() {
		s.seq++
		d.ID = docmodel.DocID{Origin: s.origin, Seq: s.seq}
		if d.Version != 0 && d.Version != 1 {
			return docmodel.VersionKey{}, fmt.Errorf("%w: new document with version %d", ErrVersionGap, d.Version)
		}
		d.Version = 1
	} else {
		chain := s.chains[d.ID]
		next := uint32(len(chain)) + 1
		switch {
		case d.Version == 0:
			d.Version = next
		case d.Version < next:
			return docmodel.VersionKey{}, fmt.Errorf("%w: %s", ErrVersionExists, docmodel.VersionKey{Doc: d.ID, Ver: d.Version})
		case d.Version > next:
			return docmodel.VersionKey{}, fmt.Errorf("%w: have %d versions, got version %d", ErrVersionGap, len(chain), d.Version)
		}
	}
	if err := s.append(d); err != nil {
		return docmodel.VersionKey{}, err
	}
	s.stats.Puts.Add(1)
	return d.Key(), nil
}

// PutReplica installs a document version replicated from another node,
// preserving its identity. It is idempotent: re-delivering a version is a
// no-op (replica convergence, paper §3.2: versioning "obviates the need to
// update all replicas of a document consistently and synchronously").
func (s *Store) PutReplica(doc *docmodel.Document) error {
	if doc.ID.IsZero() || doc.Version == 0 {
		return fmt.Errorf("storage: replica must carry id and version")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	chain := s.chains[doc.ID]
	if uint32(len(chain)) >= doc.Version && chain[doc.Version-1] != nil {
		return nil // already have it
	}
	return s.append(doc.Clone())
}

// append writes the version through the backend and installs it in the
// chains. Caller holds s.mu.
func (s *Store) append(d *docmodel.Document) error {
	raw := docmodel.EncodeDocument(d)
	loc, stored, err := s.be.Append(raw, frameInfoOf(d))
	if err != nil {
		return err
	}
	s.stats.StoredBytes.Add(uint64(stored))
	s.stats.RawBytes.Add(uint64(len(raw)))
	ce := &centry{loc: loc, size: stored, class: d.Class, ann: d.IsAnnotation(), del: d.Deleted}
	if s.lazy {
		// Fresh writes are the hottest reads (the indexer fetches them
		// right back); cache the decoded form instead of pinning it.
		s.hot.add(d.Key(), d)
	} else {
		ce.doc = d
	}
	s.installEntry(d.ID, d.Version, ce)
	return nil
}

// materializeLocked turns a chain entry into a decoded document: pinned
// (non-lazy), hot-cached, or re-read from its frame. Caller holds s.mu
// in at least read mode — that is what keeps the locator valid against a
// concurrent compaction swap. cache controls hot-cache admission (only
// chain heads are cached; cold history reads stay cold).
func (s *Store) materializeLocked(key docmodel.VersionKey, ce *centry, cache bool) (*docmodel.Document, error) {
	if ce.doc != nil {
		return ce.doc, nil
	}
	if s.hot != nil {
		if d := s.hot.get(key); d != nil {
			return d, nil
		}
	}
	raw, err := s.be.ReadAt(ce.loc)
	if err != nil {
		s.stats.ReadErrors.Add(1)
		return nil, fmt.Errorf("storage: %s: %w", key, err)
	}
	d, err := docmodel.DecodeDocument(raw)
	if err != nil {
		s.stats.ReadErrors.Add(1)
		return nil, fmt.Errorf("storage: %s: %w", key, err)
	}
	if cache && s.hot != nil {
		s.hot.add(key, d)
	}
	return d, nil
}

// headOf returns the highest present version in the chain (0 if none).
func headOf(chain []*centry) uint32 {
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i] != nil {
			return uint32(i + 1)
		}
	}
	return 0
}

// Get returns the latest version of the document.
func (s *Store) Get(id docmodel.DocID) (*docmodel.Document, error) {
	d, err := s.getDoc(id, true)
	if err != nil {
		return nil, err
	}
	s.stats.Gets.Add(1)
	return d, nil
}

// getDoc materializes the latest version; cache controls hot-cache
// admission (point reads admit, scans read through without evicting the
// genuine hot set).
func (s *Store) getDoc(id docmodel.DocID, cache bool) (*docmodel.Document, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[id]
	// A tombstoned head means the document is deleted: point reads and
	// scans treat it as absent, while GetVersion/EachVersion still serve
	// the tombstone itself (replication and audit see every version).
	if head := headOf(chain); head > 0 && !chain[head-1].del {
		return s.materializeLocked(docmodel.VersionKey{Doc: id, Ver: head}, chain[head-1], cache)
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
}

// Delete appends a tombstone version for the document: deletion is an
// append like any other change (paper §4 — no in-place updates), so it
// replicates, replays, and is audit-visible via GetVersion/EachVersion.
// After Delete, Get and scans report the document as absent; segment
// merge eventually reclaims fully tombstoned chains from disk. Deleting
// an already deleted document is a no-op returning the tombstone's key.
func (s *Store) Delete(id docmodel.DocID) (docmodel.VersionKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return docmodel.VersionKey{}, ErrClosed
	}
	chain := s.chains[id]
	head := headOf(chain)
	if head == 0 {
		return docmodel.VersionKey{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if chain[head-1].del {
		return docmodel.VersionKey{Doc: id, Ver: head}, nil
	}
	d := &docmodel.Document{
		ID:         id,
		Version:    uint32(len(chain)) + 1,
		IngestedAt: time.Now().UTC(),
		Root:       docmodel.Null,
		Class:      chain[head-1].class,
		Deleted:    true,
	}
	// Carry the head's identity metadata onto the tombstone when the head
	// is readable, so annotation linkage and provenance survive in the
	// version history; a read failure still lets the delete proceed.
	if hd, err := s.materializeLocked(docmodel.VersionKey{Doc: id, Ver: head}, chain[head-1], false); err == nil {
		d.MediaType, d.Source = hd.MediaType, hd.Source
		d.Annotates, d.Annotator = hd.Annotates, hd.Annotator
	}
	if err := s.append(d); err != nil {
		return docmodel.VersionKey{}, err
	}
	s.stats.Puts.Add(1)
	return d.Key(), nil
}

// GetVersion returns one specific immutable version.
func (s *Store) GetVersion(key docmodel.VersionKey) (*docmodel.Document, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[key.Doc]
	if key.Ver == 0 || uint32(len(chain)) < key.Ver || chain[key.Ver-1] == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	d, err := s.materializeLocked(key, chain[key.Ver-1], key.Ver == headOf(chain))
	if err != nil {
		return nil, err
	}
	s.stats.Gets.Add(1)
	return d, nil
}

// VersionCount returns the number of stored versions of the document
// (0 when unknown).
func (s *Store) VersionCount(id docmodel.DocID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chains[id])
}

// Len returns the number of distinct documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chains)
}

// ResidentDecoded reports how many decoded document versions are
// resident on the heap: everything ever stored for a non-lazy backend,
// the hot cache's population for a lazy one. It is the E20 scalability
// metric — a freshly re-opened segment store reports 0.
func (s *Store) ResidentDecoded() int {
	if s.hot != nil {
		return s.hot.size()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, chain := range s.chains {
		for _, ce := range chain {
			if ce != nil && ce.doc != nil {
				n++
			}
		}
	}
	return n
}

// BackendName reports which physical layout backs the store.
func (s *Store) BackendName() string { return s.be.Name() }

// DocMeta summarizes one stored document without decoding bodies.
type DocMeta struct {
	ID         docmodel.DocID
	Versions   int
	Class      uint8
	Annotation bool
	Deleted    bool // head version is a tombstone
}

// EachMeta streams per-document metadata — identity, version count, data
// class, annotation flag — in insertion order, without materializing any
// document. Recovery registration runs on this instead of Scan, so
// re-registering a segment store's corpus costs header reads, not
// decodes. fn returning false stops the stream.
func (s *Store) EachMeta(fn func(DocMeta) bool) {
	s.mu.RLock()
	ids := make([]docmodel.DocID, len(s.order))
	copy(ids, s.order)
	s.mu.RUnlock()
	for _, id := range ids {
		s.mu.RLock()
		chain := s.chains[id]
		m := DocMeta{ID: id, Versions: len(chain)}
		if head := headOf(chain); head > 0 {
			m.Class = chain[head-1].class
			m.Annotation = chain[head-1].ann
			m.Deleted = chain[head-1].del
		}
		s.mu.RUnlock()
		if !fn(m) {
			return
		}
	}
}

// Scan streams the latest version of every document in insertion order.
// fn returning false stops the scan. A document whose frame cannot be
// re-read (lazy backend, corrupt or unreadable segment) is skipped; the
// failure is counted in ReadErrorCount rather than aborting the scan.
func (s *Store) Scan(fn func(*docmodel.Document) bool) {
	s.mu.RLock()
	ids := make([]docmodel.DocID, len(s.order))
	copy(ids, s.order)
	s.mu.RUnlock()
	for _, id := range ids {
		d, err := s.getDoc(id, false)
		if err != nil {
			continue
		}
		s.stats.ScannedDocs.Add(1)
		if !fn(d) {
			return
		}
	}
}

// ScanSubset streams the latest version of each listed document, in list
// order, applying the pushed-down filter. Data nodes use it to scan only
// the documents they own, skipping replica copies without paying to
// evaluate them.
func (s *Store) ScanSubset(ids []docmodel.DocID, filter expr.Expr, fn func(*docmodel.Document) bool) {
	for _, id := range ids {
		d, err := s.getDoc(id, false)
		if err != nil {
			continue
		}
		s.stats.ScannedDocs.Add(1)
		if filter.Eval(d) {
			if !fn(d) {
				return
			}
		}
	}
}

// ScanFiltered streams latest versions matching the pushed-down predicate.
// This is paper §3.1 early data reduction: the filter runs inside the
// storage component so only qualifying documents cross the interconnect.
func (s *Store) ScanFiltered(filter expr.Expr, fn func(*docmodel.Document) bool) {
	s.Scan(func(d *docmodel.Document) bool {
		if filter.Eval(d) {
			return fn(d)
		}
		return true
	})
}

// AggregateLocal evaluates a pushed-down grouped aggregation over matching
// documents and returns the mergeable partial state (two-phase
// aggregation: partials here, merge on a grid node).
func (s *Store) AggregateLocal(filter expr.Expr, spec expr.GroupSpec) *expr.GroupState {
	g := expr.NewGroupState(spec)
	s.ScanFiltered(filter, func(d *docmodel.Document) bool {
		g.Update(d)
		return true
	})
	return g
}

// EachVersion streams every stored version (for replication and audits),
// oldest first within each document, documents in insertion order. Cold
// versions are materialized one chain at a time, so memory tracks the
// longest chain, not total history.
func (s *Store) EachVersion(fn func(*docmodel.Document) bool) {
	s.mu.RLock()
	ids := make([]docmodel.DocID, len(s.order))
	copy(ids, s.order)
	s.mu.RUnlock()
	for _, id := range ids {
		s.mu.RLock()
		chain := s.chains[id]
		head := headOf(chain)
		docs := make([]*docmodel.Document, 0, len(chain))
		for i, ce := range chain {
			if ce == nil {
				continue
			}
			d, err := s.materializeLocked(docmodel.VersionKey{Doc: id, Ver: uint32(i + 1)}, ce, uint32(i+1) == head)
			if err != nil {
				continue
			}
			docs = append(docs, d)
		}
		s.mu.RUnlock()
		for _, d := range docs {
			if !fn(d) {
				return
			}
		}
	}
}

// StatsSnapshot returns a point-in-time copy of the counters.
func (s *Store) StatsSnapshot() (puts, gets, scanned, rawBytes, storedBytes uint64) {
	return s.stats.Puts.Load(), s.stats.Gets.Load(), s.stats.ScannedDocs.Load(),
		s.stats.RawBytes.Load(), s.stats.StoredBytes.Load()
}

// ReadErrorCount reports how many materializations of present documents
// have failed (I/O error or corruption on a lazy backend's cold-read
// path) — non-zero means scans may have silently skipped documents.
func (s *Store) ReadErrorCount() uint64 { return s.stats.ReadErrors.Load() }

// CompactStats reports cumulative compaction wall time and the portion
// spent stalling writers (holding the store's write lock).
func (s *Store) CompactStats() (total, stall time.Duration) {
	return time.Duration(s.stats.CompactNanos.Load()), time.Duration(s.stats.CompactStallNanos.Load())
}

// Compact rewrites persistent storage, dropping nothing (all versions
// are retained for audit, paper §4) but re-framing with the current
// codec and removing torn garbage. The heavy rewrite streams outside the
// store's write lock; only the backend's commit points — tail copy and
// rename for heapwal, per-segment rename for the segment backend — stall
// writers, and the stall is accounted in CompactStats.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	start := time.Now()
	err := s.be.Compact(func(remap map[Locator]Locator, swap func() error) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		t0 := time.Now()
		if err := swap(); err != nil {
			return err
		}
		if len(remap) > 0 {
			// One commit's remap covers exactly one segment (heapwal: the
			// single log); pre-filtering on the ordinal keeps the locked
			// walk to an integer compare per entry instead of a map probe.
			seg := -1
			for old := range remap {
				if seg >= 0 && old.Seg != seg {
					seg = -1
					break
				}
				seg = old.Seg
			}
			for _, chain := range s.chains {
				for _, ce := range chain {
					if ce == nil || (seg >= 0 && ce.loc.Seg != seg) {
						continue
					}
					if nl, ok := remap[ce.loc]; ok {
						ce.loc = nl
					}
				}
			}
		}
		s.stats.CompactStallNanos.Add(uint64(time.Since(t0)))
		return nil
	})
	s.stats.CompactNanos.Add(uint64(time.Since(start)))
	return err
}

// mergeable is implemented by backends with physical segment merge:
// fold the sealed segments into one, keeping only the frames the
// caller's plan retains. planKeep runs once with the merged ordinals and
// returns the per-frame keep decision; commit mirrors Compact's
// contract, with the merged ordinals added so the caller can drop chain
// entries whose frames were not carried forward.
type mergeable interface {
	Merge(minSegments int, planKeep func(segs []int) func(Locator) bool,
		commit func(merged []int, remap map[Locator]Locator, swap func() error) error) (bool, error)
}

// diskSizer is implemented by backends whose frames live in real files.
type diskSizer interface {
	DiskBytes() (uint64, error)
}

// StorageFootprint reports the store's live bytes (stored frame size of
// every chain-referenced version) against its on-disk data bytes.
// disk−live is reclaimable garbage: superseded duplicate frames,
// retention-expired history, and tombstoned chains; Merge reclaims it.
// disk is 0 for the memory backend.
func (s *Store) StorageFootprint() (live, disk uint64) {
	live = s.stats.LiveBytes.Load()
	if ds, ok := s.be.(diskSizer); ok {
		if d, err := ds.DiskBytes(); err == nil {
			disk = d
		}
	}
	return live, disk
}

// Merge folds the backend's sealed segments into one, dropping frames no
// chain references, versions beyond the RetainVersions horizon, and
// fully tombstoned chains. Like Compact, the heavy rewrite streams
// outside the store's write lock; only the backend's single commit swap
// stalls writers. Returns whether a fold happened (false when there are
// fewer than MergeMinSegments sealed segments). Backends without
// physical segments return ErrMergeUnsupported.
func (s *Store) Merge() (bool, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	mb, ok := s.be.(mergeable)
	if !ok {
		return false, ErrMergeUnsupported
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return false, ErrClosed
	}
	start := time.Now()
	merged, err := mb.Merge(s.opts.MergeMinSegments, s.mergeKeep,
		func(mergedSegs []int, remap map[Locator]Locator, swap func() error) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.closed {
				return ErrClosed
			}
			t0 := time.Now()
			if err := swap(); err != nil {
				return err
			}
			in := map[int]bool{}
			for _, g := range mergedSegs {
				in[g] = true
			}
			var removed map[docmodel.DocID]bool
			for id, chain := range s.chains {
				empty := true
				for i, ce := range chain {
					if ce == nil {
						continue
					}
					if in[ce.loc.Seg] {
						nl, kept := remap[ce.loc]
						if !kept {
							// The frame was not carried into the merged
							// segment: this version is gone from disk, so
							// drop it from the chain too.
							s.stats.LiveBytes.Add(^uint64(ce.size) + 1)
							chain[i] = nil
							continue
						}
						ce.loc = nl
					}
					empty = false
				}
				if empty {
					if removed == nil {
						removed = map[docmodel.DocID]bool{}
					}
					removed[id] = true
					delete(s.chains, id)
				}
			}
			if len(removed) > 0 {
				kept := s.order[:0]
				for _, id := range s.order {
					if !removed[id] {
						kept = append(kept, id)
					}
				}
				s.order = kept
			}
			s.stats.CompactStallNanos.Add(uint64(time.Since(t0)))
			return nil
		})
	s.stats.CompactNanos.Add(uint64(time.Since(start)))
	if merged && err == nil {
		s.stats.Merges.Add(1)
	}
	return merged, err
}

// mergeKeep snapshots, under the read lock, which frames of the merged
// segments survive the fold:
//
//   - frames no chain references (superseded duplicates from replica
//     races) are dropped;
//   - with RetainVersions = R > 0, versions at or below head−R are
//     dropped;
//   - a fully tombstoned chain whose every frame sits inside the merged
//     set is dropped whole — disk reclamation for deletes. If any of its
//     frames live elsewhere (active segment, later seal), the chain is
//     kept; a later merge gets it.
//
// Concurrent appends only land in the active segment and only raise
// heads, so a stale snapshot errs toward keeping more, never dropping a
// frame a reader could still want.
func (s *Store) mergeKeep(segs []int) func(Locator) bool {
	in := map[int]bool{}
	for _, g := range segs {
		in[g] = true
	}
	keep := map[Locator]bool{}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, chain := range s.chains {
		head := headOf(chain)
		if head == 0 {
			continue
		}
		if chain[head-1].del {
			allInside := true
			for _, ce := range chain {
				if ce != nil && !in[ce.loc.Seg] {
					allInside = false
					break
				}
			}
			if allInside {
				continue // keep nothing: the whole chain is reclaimed
			}
		}
		var floor uint32
		if r := uint32(s.opts.RetainVersions); r > 0 && head > r {
			floor = head - r // drop versions ≤ floor
		}
		for i, ce := range chain {
			if ce == nil || !in[ce.loc.Seg] || uint32(i+1) <= floor {
				continue
			}
			keep[ce.loc] = true
		}
	}
	return func(loc Locator) bool { return keep[loc] }
}

// Close flushes and closes the backend. The store rejects writes
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.be.Close()
}

// Origin returns the store's ID-minting prefix.
func (s *Store) Origin() uint32 { return s.origin }
