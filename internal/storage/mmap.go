// The mmap backend: the segment layout read through read-only memory
// maps. Sealed segments are immutable, so mapping them MAP_SHARED turns
// every cold read into a page-cache access with no read(2) round trip
// and no heap buffer for the compressed frame — with the "none" codec
// the frame payload is returned as a zero-copy view of the mapping.
//
// Safety of the views rests on the Store's locking contract (backend.go):
// ReadAt runs under the Store's read lock and its result is fully copied
// by DecodeDocument before the lock is released, while munmap only
// happens inside compaction/merge swaps (under the write lock) or Close.
// A view therefore never outlives its mapping.
//
// The on-disk format is byte-identical to the segment backend — the two
// open each other's directories — so everything but the read path is
// inherited: append/seal/replay, compaction, merge, crash recovery.
package storage

import (
	"fmt"
	"sync"

	"impliance/internal/storage/compress"
)

type mmapBackend struct {
	*segmentBackend

	// maps caches one read-only mapping per sealed segment, built lazily
	// on first cold read. A nil value is a negative entry: the segment
	// could not be mapped (platform without mmap, empty or oversized
	// file) and reads fall back to pread permanently, not per call.
	mapsMu sync.Mutex
	maps   map[int][]byte
}

func newMmapBackend(dir string, codec compress.Codec, syncEvery bool, segBytes int64) *mmapBackend {
	m := &mmapBackend{
		segmentBackend: newSegmentBackend(dir, codec, syncEvery, segBytes),
		maps:           map[int][]byte{},
	}
	// Compaction and merge rename new data over a sealed segment inside
	// their commit swaps; the hook drops our mapping of the old inode
	// along with the pread handle.
	m.segmentBackend.onInvalidate = m.unmapSeg
	return m
}

func (m *mmapBackend) Name() string { return "mmap" }

func (m *mmapBackend) ReadAt(loc Locator) ([]byte, error) {
	b, ok := m.mapping(loc.Seg)
	if !ok {
		// Active segment (still growing, never mapped) or unmappable.
		return m.segmentBackend.ReadAt(loc)
	}
	if loc.Off < 0 || loc.Off >= int64(len(b)) {
		return nil, fmt.Errorf("storage: segment %d read at %d: offset beyond mapping (%d bytes)", loc.Seg, loc.Off, len(b))
	}
	raw, _, err := compress.DecodeFrameAt(b[loc.Off:])
	if err != nil {
		return nil, fmt.Errorf("storage: segment %d read at %d: %w", loc.Seg, loc.Off, err)
	}
	return raw, nil
}

// mapping returns the cached mapping for a sealed segment, building it
// on first use. ok=false routes the read to the pread path.
func (m *mmapBackend) mapping(seg int) ([]byte, bool) {
	m.mapsMu.Lock()
	defer m.mapsMu.Unlock()
	if b, cached := m.maps[seg]; cached {
		return b, b != nil
	}
	if !m.segmentBackend.isSealed(seg) {
		// Not negatively cached: the segment may seal later.
		return nil, false
	}
	b, err := mmapFile(m.segPath(seg))
	if err != nil || len(b) == 0 {
		b = nil
	}
	m.maps[seg] = b
	return b, b != nil
}

// unmapSeg drops a segment's mapping. Called under readersMu from
// dropReader, which itself runs inside a commit swap holding the Store's
// write lock — no reader can hold a view of the old mapping.
func (m *mmapBackend) unmapSeg(seg int) {
	m.mapsMu.Lock()
	defer m.mapsMu.Unlock()
	if b, ok := m.maps[seg]; ok {
		if b != nil {
			munmapBytes(b)
		}
		delete(m.maps, seg)
	}
}

func (m *mmapBackend) Close() error {
	m.mapsMu.Lock()
	for seg, b := range m.maps {
		if b != nil {
			munmapBytes(b)
		}
		delete(m.maps, seg)
	}
	m.mapsMu.Unlock()
	return m.segmentBackend.Close()
}
