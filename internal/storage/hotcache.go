package storage

import (
	"container/list"
	"sync"

	"impliance/internal/docmodel"
)

// hotCache is the lazy backends' bounded LRU of decoded document
// versions, keyed by version key (versions are immutable, so a cached
// decode never goes stale). It is a leaf lock: acquired under the
// store's mutex, never the other way around.
type hotCache struct {
	mu  sync.Mutex
	cap int
	m   map[docmodel.VersionKey]*list.Element
	l   *list.List // front = most recently used
}

type hotEntry struct {
	key docmodel.VersionKey
	doc *docmodel.Document
}

func newHotCache(capacity int) *hotCache {
	return &hotCache{
		cap: capacity,
		m:   make(map[docmodel.VersionKey]*list.Element, capacity),
		l:   list.New(),
	}
}

func (c *hotCache) get(key docmodel.VersionKey) *docmodel.Document {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil
	}
	c.l.MoveToFront(el)
	return el.Value.(*hotEntry).doc
}

func (c *hotCache) add(key docmodel.VersionKey, doc *docmodel.Document) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*hotEntry).doc = doc
		c.l.MoveToFront(el)
		return
	}
	c.m[key] = c.l.PushFront(&hotEntry{key: key, doc: doc})
	for c.l.Len() > c.cap {
		back := c.l.Back()
		c.l.Remove(back)
		delete(c.m, back.Value.(*hotEntry).key)
	}
}

func (c *hotCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}
