// Backend seam: the Store façade owns document semantics (version
// chains, ID minting, immutability checks, scan order, statistics); a
// Backend owns the physical layout of the frames those semantics persist
// to. The paper's data node is "storage plus enough processing power"
// (§3.1/§3.3) whose software half decides layout and compression — this
// interface is that half's replaceable core, with two implementations:
// heapwal (one append-only log, every version pinned decoded on the heap)
// and segment (sealed segment files with frame indexes and lazy decode).
package storage

import (
	"impliance/internal/docmodel"
	"impliance/internal/storage/compress"
)

// Locator names a frame's physical position within a backend: the
// segment ordinal and the byte offset of the frame in that segment. The
// heapwal backend uses segment 0 for its single log. Locators are stable
// until a Compact remaps them; the Store keeps them consistent with its
// chains by applying remaps inside the compaction commit.
type Locator struct {
	Seg int
	Off int64
}

// FrameInfo is a frame's document identity: what a backend needs to
// index a frame without decoding it — the Store supplies it on Append
// (it holds the decoded document anyway), backends recover it from
// sidecar indexes or header parses on replay.
type FrameInfo struct {
	ID    docmodel.DocID
	Ver   uint32
	Class uint8
	Ann   bool
	Del   bool // tombstone version
}

// frameInfoOf extracts a document's frame identity.
func frameInfoOf(d *docmodel.Document) FrameInfo {
	return FrameInfo{ID: d.ID, Ver: d.Version, Class: d.Class, Ann: d.IsAnnotation(), Del: d.Deleted}
}

// FrameMeta describes one frame surfaced during Replay.
//
// Raw is the encoded document when the backend read the frame's bytes
// (always for heapwal; for the segment backend only when a segment had
// to be scanned). A lazy backend replaying from a sealed segment's frame
// index sets Raw nil and fills FrameInfo instead — that is the point:
// re-opening a sealed store costs index reads, not document decodes.
// Lazy backends always fill FrameInfo; the heapwal backend leaves it
// zero and the Store takes identity from the decoded document.
type FrameMeta struct {
	Loc Locator
	Raw []byte
	// Size is the frame's on-disk (framed, compressed) byte count — the
	// replay-side twin of Append's stored return, so the Store's live-byte
	// accounting survives restarts without re-reading data files (index
	// replay derives it from offset deltas).
	Size int
	FrameInfo
}

// Backend is the physical storage layer beneath a Store. Each backend
// also exposes a one-shot unexported open(fn) the Store drives at
// construction: it recovers the on-disk state and streams every
// recoverable frame — oldest first, bounded memory, torn tail in the
// newest appendable file trimmed — before any other method is called.
//
// Locking contract: the Store serializes Append/Close against each
// other and holds its read lock across ReadAt calls; Compact's commit
// callback runs under the Store's write lock, so a backend may swap
// files inside commit knowing no ReadAt is in flight. Backends still
// guard their own file state with an internal mutex so the contract is
// defense-in-depth, not a correctness dependency.
type Backend interface {
	// Name identifies the backend ("heapwal", "segment", "memory").
	Name() string
	// Lazy reports whether ReadAt is supported and cheap enough that the
	// Store may drop decoded documents and re-read them on demand. A
	// non-lazy backend's locators are advisory: the Store never re-reads
	// them, and Compact may leave post-snapshot appends un-remapped.
	Lazy() bool
	// Append durably adds one frame wrapping the encoded document raw;
	// info is the document's identity (the caller just encoded it, so no
	// backend re-parses the header on the write path). Returns the
	// frame's locator and its stored (framed, compressed) size for byte
	// accounting.
	Append(raw []byte, info FrameInfo) (Locator, int, error)
	// ReadAt re-reads and verifies the raw document bytes of the frame
	// at loc.
	ReadAt(loc Locator) ([]byte, error)
	// Compact rewrites storage with the current codec, dropping nothing.
	// At each atomic transition point the backend calls commit with the
	// locator remapping of the affected frames and a swap function that
	// performs the file swap; the caller invokes swap under whatever lock
	// keeps its locators consistent with concurrent reads, then applies
	// the remap. The heapwal backend commits once (snapshot-then-swap:
	// the rewrite streams outside the lock, only the tail copy and
	// rename stall writers); the segment backend commits once per sealed
	// segment, so the stall is bounded by one segment's swap.
	Compact(commit func(remap map[Locator]Locator, swap func() error) error) error
	// Close syncs and releases file handles.
	Close() error
}

// memBackend backs memory-only stores (Options.Dir == ""): nothing is
// persisted, but Append still pays frame encoding so experiments can
// compare codec footprints without touching disk.
type memBackend struct {
	codec compress.Codec
}

func (m *memBackend) Name() string { return "memory" }
func (m *memBackend) Lazy() bool   { return false }

func (m *memBackend) Append(raw []byte, _ FrameInfo) (Locator, int, error) {
	frame, err := compress.EncodeFrame(m.codec, raw)
	if err != nil {
		return Locator{}, 0, err
	}
	return Locator{}, len(frame), nil
}

func (m *memBackend) ReadAt(Locator) ([]byte, error) {
	return nil, errNoRandomAccess
}

func (m *memBackend) Compact(func(map[Locator]Locator, func() error) error) error {
	return nil
}

func (m *memBackend) open(func(FrameMeta) error) error { return nil }
func (m *memBackend) Close() error                     { return nil }
