package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/storage/compress"
)

func memStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func docWith(fields ...docmodel.Field) *docmodel.Document {
	return &docmodel.Document{MediaType: "application/json", Source: "t", Root: docmodel.Object(fields...)}
}

func TestPutAssignsIDsAndVersions(t *testing.T) {
	s := memStore(t)
	k1, err := s.Put(docWith(docmodel.F("n", docmodel.Int(1))))
	if err != nil {
		t.Fatal(err)
	}
	if k1.Doc.Origin != 1 || k1.Doc.Seq != 1 || k1.Ver != 1 {
		t.Errorf("first key = %s", k1)
	}
	k2, _ := s.Put(docWith(docmodel.F("n", docmodel.Int(2))))
	if k2.Doc.Seq != 2 {
		t.Errorf("second doc seq = %d", k2.Doc.Seq)
	}
	// Append a new version of doc 1.
	upd := docWith(docmodel.F("n", docmodel.Int(10)))
	upd.ID = k1.Doc
	k3, err := s.Put(upd)
	if err != nil {
		t.Fatal(err)
	}
	if k3.Ver != 2 {
		t.Errorf("update version = %d, want 2", k3.Ver)
	}
	got, err := s.Get(k1.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.First("/n").IntVal() != 10 {
		t.Error("Get should return latest version")
	}
	v1, err := s.GetVersion(docmodel.VersionKey{Doc: k1.Doc, Ver: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v1.First("/n").IntVal() != 1 {
		t.Error("old version must remain readable (immutability)")
	}
	if s.VersionCount(k1.Doc) != 2 || s.Len() != 2 {
		t.Errorf("counts: versions=%d docs=%d", s.VersionCount(k1.Doc), s.Len())
	}
}

func TestPutRejectsOverwriteAndGap(t *testing.T) {
	s := memStore(t)
	k, _ := s.Put(docWith(docmodel.F("a", docmodel.Int(1))))
	over := docWith(docmodel.F("a", docmodel.Int(2)))
	over.ID, over.Version = k.Doc, 1
	if _, err := s.Put(over); !errors.Is(err, ErrVersionExists) {
		t.Errorf("overwrite: %v", err)
	}
	gap := docWith(docmodel.F("a", docmodel.Int(3)))
	gap.ID, gap.Version = k.Doc, 5
	if _, err := s.Put(gap); !errors.Is(err, ErrVersionGap) {
		t.Errorf("gap: %v", err)
	}
}

func TestGetMissing(t *testing.T) {
	s := memStore(t)
	if _, err := s.Get(docmodel.DocID{Origin: 9, Seq: 9}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing get: %v", err)
	}
	if _, err := s.GetVersion(docmodel.VersionKey{Doc: docmodel.DocID{Origin: 1, Seq: 1}, Ver: 3}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing version: %v", err)
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	s := memStore(t)
	for i := 0; i < 5; i++ {
		s.Put(docWith(docmodel.F("i", docmodel.Int(int64(i)))))
	}
	var seen []int64
	s.Scan(func(d *docmodel.Document) bool {
		seen = append(seen, d.First("/i").IntVal())
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Errorf("scan order/early-stop: %v", seen)
	}
}

func TestScanFilteredPushdown(t *testing.T) {
	s := memStore(t)
	for i := 0; i < 100; i++ {
		s.Put(docWith(docmodel.F("i", docmodel.Int(int64(i)))))
	}
	n := 0
	s.ScanFiltered(expr.Cmp("/i", expr.OpLt, docmodel.Int(10)), func(d *docmodel.Document) bool {
		n++
		return true
	})
	if n != 10 {
		t.Errorf("pushdown filter matched %d, want 10", n)
	}
}

func TestAggregateLocal(t *testing.T) {
	s := memStore(t)
	for i := 0; i < 10; i++ {
		s.Put(docWith(
			docmodel.F("region", docmodel.String([]string{"e", "w"}[i%2])),
			docmodel.F("amt", docmodel.Int(int64(i))),
		))
	}
	g := s.AggregateLocal(expr.True(), expr.GroupSpec{
		By:   []string{"/region"},
		Aggs: []expr.AggSpec{{Kind: expr.AggSum, Path: "/amt"}},
	})
	rows := g.Rows()
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	// e: 0+2+4+6+8=20, w: 1+3+5+7+9=25
	if rows[0].Aggs[0].FloatVal() != 20 || rows[1].Aggs[0].FloatVal() != 25 {
		t.Errorf("sums: %v %v", rows[0].Aggs[0], rows[1].Aggs[0])
	}
}

func TestPutReplicaIdempotent(t *testing.T) {
	primary := memStore(t)
	k, _ := primary.Put(docWith(docmodel.F("x", docmodel.Int(1))))
	doc, _ := primary.Get(k.Doc)

	replica, _ := Open(2, Options{})
	if err := replica.PutReplica(doc); err != nil {
		t.Fatal(err)
	}
	if err := replica.PutReplica(doc); err != nil {
		t.Fatal("redelivery must be a no-op, got", err)
	}
	got, err := replica.Get(k.Doc)
	if err != nil || got.First("/x").IntVal() != 1 {
		t.Errorf("replica content: %v %v", got, err)
	}
	if replica.Len() != 1 || replica.VersionCount(k.Doc) != 1 {
		t.Error("replica should hold exactly one version")
	}
	// Replica without identity is rejected.
	if err := replica.PutReplica(docWith()); err == nil {
		t.Error("identity-less replica must fail")
	}
}

func TestReplicaOutOfOrderVersions(t *testing.T) {
	primary := memStore(t)
	k, _ := primary.Put(docWith(docmodel.F("v", docmodel.Int(1))))
	u := docWith(docmodel.F("v", docmodel.Int(2)))
	u.ID = k.Doc
	primary.Put(u)
	v1, _ := primary.GetVersion(docmodel.VersionKey{Doc: k.Doc, Ver: 1})
	v2, _ := primary.GetVersion(docmodel.VersionKey{Doc: k.Doc, Ver: 2})

	replica, _ := Open(3, Options{})
	// Deliver v2 before v1 — replicas converge regardless of order.
	if err := replica.PutReplica(v2); err != nil {
		t.Fatal(err)
	}
	got, err := replica.Get(k.Doc)
	if err != nil || got.First("/v").IntVal() != 2 {
		t.Fatal("latest should be v2 after out-of-order delivery")
	}
	if err := replica.PutReplica(v1); err != nil {
		t.Fatal(err)
	}
	gv1, err := replica.GetVersion(docmodel.VersionKey{Doc: k.Doc, Ver: 1})
	if err != nil || gv1.First("/v").IntVal() != 1 {
		t.Error("backfilled v1 must be readable")
	}
}

func TestWALPersistenceAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(7, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var keys []docmodel.VersionKey
	for i := 0; i < 20; i++ {
		k, err := s.Put(docWith(docmodel.F("i", docmodel.Int(int64(i)))))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	u := docWith(docmodel.F("i", docmodel.Int(100)))
	u.ID = keys[0].Doc
	s.Put(u)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(7, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 20 {
		t.Fatalf("recovered %d docs, want 20", s2.Len())
	}
	if s2.VersionCount(keys[0].Doc) != 2 {
		t.Error("recovered version chain wrong")
	}
	got, _ := s2.Get(keys[0].Doc)
	if got.First("/i").IntVal() != 100 {
		t.Error("recovered latest version wrong")
	}
	// Sequence continues without collision after recovery.
	k, err := s2.Put(docWith(docmodel.F("i", docmodel.Int(999))))
	if err != nil {
		t.Fatal(err)
	}
	if k.Doc.Seq <= 20 {
		t.Errorf("sequence reused after recovery: %v", k)
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(7, Options{Dir: dir})
	for i := 0; i < 10; i++ {
		s.Put(docWith(docmodel.F("i", docmodel.Int(int64(i)))))
	}
	s.Close()

	path := filepath.Join(dir, "store.wal")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-frame to simulate a crash during append.
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(7, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 9 {
		t.Errorf("torn-tail recovery kept %d docs, want 9", s2.Len())
	}
	// Store keeps working after trim.
	if _, err := s2.Put(docWith(docmodel.F("i", docmodel.Int(42)))); err != nil {
		t.Fatal(err)
	}
}

func TestCompactPreservesAllVersions(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(7, Options{Dir: dir, Codec: compress.Flate})
	k, _ := s.Put(docWith(docmodel.F("v", docmodel.Int(1))))
	for i := 2; i <= 5; i++ {
		u := docWith(docmodel.F("v", docmodel.Int(int64(i))))
		u.ID = k.Doc
		if _, err := s.Put(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Writes still work after compaction.
	if _, err := s.Put(docWith(docmodel.F("v", docmodel.Int(99)))); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(7, Options{Dir: dir, Codec: compress.Flate})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.VersionCount(k.Doc) != 5 {
		t.Errorf("compaction lost versions: %d", s2.VersionCount(k.Doc))
	}
	if s2.Len() != 2 {
		t.Errorf("docs after compact+put: %d", s2.Len())
	}
}

func TestCompressionReducesStoredBytes(t *testing.T) {
	text := strings.Repeat("all work and no play makes jack a dull boy. ", 50)
	mk := func(codec compress.Codec) uint64 {
		s, _ := Open(1, Options{Codec: codec})
		for i := 0; i < 20; i++ {
			s.Put(docWith(docmodel.F("text", docmodel.String(text))))
		}
		_, _, _, _, stored := s.StatsSnapshot()
		return stored
	}
	plain := mk(compress.None)
	packed := mk(compress.Flate)
	if packed*3 > plain {
		t.Errorf("flate should shrink repetitive docs >3x: %d vs %d", packed, plain)
	}
}

func TestEachVersionOrder(t *testing.T) {
	s := memStore(t)
	k, _ := s.Put(docWith(docmodel.F("v", docmodel.Int(1))))
	u := docWith(docmodel.F("v", docmodel.Int(2)))
	u.ID = k.Doc
	s.Put(u)
	s.Put(docWith(docmodel.F("v", docmodel.Int(3))))
	var got []int64
	s.EachVersion(func(d *docmodel.Document) bool {
		got = append(got, d.First("/v").IntVal())
		return true
	})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("EachVersion order: %v", got)
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	s := memStore(t)
	s.Close()
	if _, err := s.Put(docWith()); !errors.Is(err, ErrClosed) {
		t.Errorf("put after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Error("double close should be nil")
	}
}

func TestOpenRejectsZeroOrigin(t *testing.T) {
	if _, err := Open(0, Options{}); err == nil {
		t.Error("zero origin must fail")
	}
}

func TestConcurrentPutsAndReads(t *testing.T) {
	s := memStore(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k, err := s.Put(docWith(docmodel.F("w", docmodel.Int(int64(w)))))
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(k.Doc); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Scan(func(d *docmodel.Document) bool { return true })
		}
	}()
	wg.Wait()
	if s.Len() != 1600 {
		t.Errorf("docs = %d, want 1600", s.Len())
	}
	// All IDs distinct.
	seen := map[docmodel.DocID]bool{}
	dup := false
	s.Scan(func(d *docmodel.Document) bool {
		if seen[d.ID] {
			dup = true
		}
		seen[d.ID] = true
		return true
	})
	if dup {
		t.Error("duplicate doc IDs under concurrency")
	}
}

func TestStatsCounters(t *testing.T) {
	s := memStore(t)
	k, _ := s.Put(docWith(docmodel.F("a", docmodel.Int(1))))
	s.Get(k.Doc)
	s.Scan(func(*docmodel.Document) bool { return true })
	puts, gets, scanned, raw, stored := s.StatsSnapshot()
	if puts != 1 || gets < 1 || scanned != 1 {
		t.Errorf("counters: puts=%d gets=%d scanned=%d", puts, gets, scanned)
	}
	if raw == 0 || stored == 0 {
		t.Error("byte counters should be non-zero")
	}
}

func TestManyDocsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := memStore(t)
	const n = 5000
	for i := 0; i < n; i++ {
		_, err := s.Put(docWith(
			docmodel.F("i", docmodel.Int(int64(i))),
			docmodel.F("name", docmodel.String(fmt.Sprintf("doc-%d", i))),
		))
		if err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("len = %d", s.Len())
	}
	count := 0
	s.ScanFiltered(expr.Cmp("/i", expr.OpGe, docmodel.Int(n-100)), func(*docmodel.Document) bool {
		count++
		return true
	})
	if count != 100 {
		t.Errorf("filtered scan matched %d", count)
	}
}
