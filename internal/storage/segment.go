package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"impliance/internal/docmodel"
	"impliance/internal/storage/compress"
)

// segmentBackend is the scalable layout: one active append segment plus
// immutable sealed segments ("seg-000N.log", size-based roll-over). Each
// sealed segment carries a sidecar frame index ("seg-000N.idx") listing
// every frame's offset and document identity, so re-opening the store
// reads indexes — not documents — for everything but the active tail.
// It is lazy: the Store drops decoded bodies and re-reads cold versions
// through ReadAt, keeping resident decoded documents bounded by the hot
// cache instead of total history.
//
// Crash-safety discipline:
//
//   - Only the active segment can have a torn tail; it is trimmed on
//     open. Sealing syncs the data file before the index is written, so
//     sealed segments are always complete.
//   - The index is written tmp + rename; a crash between data sync and
//     index rename leaves a sealed segment without an index, which open
//     rebuilds from its frames.
//   - Compaction rewrites one sealed segment at a time to "*.tmp" and
//     renames over the original inside the commit; a crash mid-compact
//     leaves only tmp files, removed on open.
type segmentBackend struct {
	mu        sync.Mutex
	dir       string
	codec     compress.Codec
	syncEvery bool
	segBytes  int64

	active    *os.File
	activeSeg int
	activeOff int64
	pending   []segIdxEntry // frames in the active segment, for seal time
	sealed    []int         // sealed segment ordinals, ascending

	// readers caches read-only handles for cold reads (segments append
	// or stay immutable, so a handle never goes stale except across a
	// compaction swap, which drops it). Guarded by its own leaf mutex so
	// concurrent ReadAt calls — pread-based and safe on a shared handle —
	// never serialize on be.mu.
	readersMu sync.Mutex
	readers   map[int]*os.File

	// onInvalidate, when set, is called (under readersMu) whenever a
	// segment's cached state must be dropped because its file was renamed
	// over (compaction/merge swap). The mmap backend hooks it to unmap.
	onInvalidate func(seg int)
}

// segIdxEntry is one frame's record in a segment index.
type segIdxEntry struct {
	off  int64
	info FrameInfo
}

func newSegmentBackend(dir string, codec compress.Codec, syncEvery bool, segBytes int64) *segmentBackend {
	return &segmentBackend{
		dir: dir, codec: codec, syncEvery: syncEvery, segBytes: segBytes,
		readers: map[int]*os.File{},
	}
}

func (s *segmentBackend) Name() string { return "segment" }
func (s *segmentBackend) Lazy() bool   { return true }

func (s *segmentBackend) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%04d.log", n))
}

func (s *segmentBackend) idxPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%04d.idx", n))
}

// open discovers segments, replays them (indexes where possible, frame
// scans otherwise), and readies the active segment for appends.
func (s *segmentBackend) open(fn func(FrameMeta) error) error {
	// A committed-but-interrupted merge is finished (and uncommitted
	// staging swept) before discovery, so replay only ever sees the
	// pre-merge or post-merge file set, never a mix.
	if err := s.recoverMerge(); err != nil {
		return err
	}
	segs, err := s.discover()
	if err != nil {
		return err
	}
	activeSeg := -1
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		if _, err := os.Stat(s.idxPath(last)); errors.Is(err, os.ErrNotExist) {
			// The newest segment has no index: it is the active tail.
			activeSeg = last
		}
	}
	for _, seg := range segs {
		isActive := seg == activeSeg
		entries, fromIndex, err := s.loadSegment(seg, isActive, fn)
		if err != nil {
			return err
		}
		switch {
		case isActive:
			s.pending = entries
		case !fromIndex:
			// Sealed segment whose index was missing or corrupt: the scan
			// above rebuilt the entries — persist them so the next open is
			// an index read again.
			if err := s.writeIndex(seg, entries); err != nil {
				return err
			}
			s.sealed = append(s.sealed, seg)
		default:
			s.sealed = append(s.sealed, seg)
		}
	}
	if activeSeg < 0 {
		activeSeg = 0
		if len(segs) > 0 {
			activeSeg = segs[len(segs)-1] + 1
		}
	}
	f, err := os.OpenFile(s.segPath(activeSeg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("storage: stat segment: %w", err)
	}
	s.active, s.activeSeg, s.activeOff = f, activeSeg, st.Size()
	return nil
}

// discover lists segment ordinals ascending and removes crash leftovers.
func (s *segmentBackend) discover() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var segs []int
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Crash mid-compact or mid-seal: the tmp was never renamed, so
			// the original (or the data file alone) is still authoritative.
			_ = os.Remove(filepath.Join(s.dir, name))
			continue
		}
		num, ok := strings.CutPrefix(name, "seg-")
		if !ok {
			continue
		}
		num, ok = strings.CutSuffix(num, ".log")
		if !ok {
			continue
		}
		if n, err := strconv.Atoi(num); err == nil && n >= 0 {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// loadSegment replays one segment. Sealed segments with a valid index
// emit header-only metas (no data read at all); otherwise the frames are
// scanned, headers parsed, and — for the active segment — a torn tail
// trimmed.
func (s *segmentBackend) loadSegment(seg int, isActive bool, fn func(FrameMeta) error) (entries []segIdxEntry, fromIndex bool, err error) {
	if !isActive {
		if entries, err := s.readIndex(seg); err == nil {
			// Frame sizes fall out of the offset deltas (frames are laid
			// out back to back); the last entry runs to end of file.
			st, err := os.Stat(s.segPath(seg))
			if err != nil {
				return nil, false, fmt.Errorf("storage: %w", err)
			}
			for i, e := range entries {
				end := st.Size()
				if i+1 < len(entries) {
					end = entries[i+1].off
				}
				m := FrameMeta{Loc: Locator{Seg: seg, Off: e.off}, Size: int(end - e.off), FrameInfo: e.info}
				if err := fn(m); err != nil {
					return nil, false, err
				}
			}
			return entries, true, nil
		}
	}
	f, err := os.Open(s.segPath(seg))
	if err != nil {
		return nil, false, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	fr := compress.NewFrameReader(f)
	var off int64
	for {
		raw, n, err := fr.Next()
		if err == io.EOF {
			return entries, false, nil
		}
		if err != nil {
			if isActive {
				// Torn tail from a crash mid-append: trim it.
				if terr := os.Truncate(s.segPath(seg), off); terr != nil {
					return nil, false, fmt.Errorf("storage: truncate torn segment: %w", terr)
				}
				return entries, false, nil
			}
			// Sealed segments are synced before their index is written;
			// an unreadable frame is real corruption, not a crash artifact.
			return nil, false, fmt.Errorf("storage: sealed segment %d corrupt at %d: %w", seg, off, err)
		}
		hdr, err := docmodel.DecodeDocumentHeader(raw)
		if err != nil {
			if isActive {
				if terr := os.Truncate(s.segPath(seg), off); terr != nil {
					return nil, false, fmt.Errorf("storage: truncate bad segment record: %w", terr)
				}
				return entries, false, nil
			}
			return nil, false, fmt.Errorf("storage: sealed segment %d undecodable at %d: %w", seg, off, err)
		}
		e := segIdxEntry{off: off, info: FrameInfo{
			ID: hdr.ID, Ver: hdr.Version, Class: hdr.Class, Ann: hdr.IsAnnotation(), Del: hdr.Deleted,
		}}
		entries = append(entries, e)
		if err := fn(FrameMeta{Loc: Locator{Seg: seg, Off: off}, Raw: raw, Size: n, FrameInfo: e.info}); err != nil {
			return nil, false, err
		}
		off += int64(n)
	}
}

func (s *segmentBackend) Append(raw []byte, info FrameInfo) (Locator, int, error) {
	frame, err := compress.EncodeFrame(s.codec, raw)
	if err != nil {
		return Locator{}, 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.activeOff > 0 && s.activeOff+int64(len(frame)) > s.segBytes {
		if err := s.sealLocked(); err != nil {
			return Locator{}, 0, err
		}
	}
	loc := Locator{Seg: s.activeSeg, Off: s.activeOff}
	if _, err := s.active.Write(frame); err != nil {
		return Locator{}, 0, fmt.Errorf("storage: append segment: %w", err)
	}
	s.pending = append(s.pending, segIdxEntry{off: s.activeOff, info: info})
	s.activeOff += int64(len(frame))
	if s.syncEvery {
		if err := s.active.Sync(); err != nil {
			return Locator{}, 0, fmt.Errorf("storage: sync segment: %w", err)
		}
	}
	return loc, len(frame), nil
}

// sealLocked closes the active segment into a sealed one: sync the
// data, persist the frame index, open the next segment, then swap.
//
// The order carries two invariants. Crash-safety: an index only ever
// exists for a fully synced file (so "has an index" ⇒ "cannot be torn",
// and the next segment file only exists after that index — the highest
// index-less segment really is the only appendable one). Availability:
// every failure before the swap leaves the active segment open and
// state unchanged, so a transient error (e.g. disk full) is retried by
// the next Append instead of wedging the store; a retry after the index
// was already written simply rewrites it, and no frame can sneak in
// between (the roll check runs before the frame write, under s.mu).
// Caller holds s.mu.
func (s *segmentBackend) sealLocked() error {
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("storage: seal sync: %w", err)
	}
	if err := s.writeIndex(s.activeSeg, s.pending); err != nil {
		return err
	}
	next := s.activeSeg + 1
	f, err := os.OpenFile(s.segPath(next), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: roll segment: %w", err)
	}
	old := s.active
	s.sealed = append(s.sealed, s.activeSeg)
	s.active, s.activeSeg, s.activeOff, s.pending = f, next, 0, nil
	// The data is already synced; a close failure must not undo the seal.
	if err := old.Close(); err != nil {
		return fmt.Errorf("storage: seal close: %w", err)
	}
	return nil
}

func (s *segmentBackend) ReadAt(loc Locator) ([]byte, error) {
	f, err := s.reader(loc.Seg)
	if err != nil {
		return nil, fmt.Errorf("storage: segment read: %w", err)
	}
	// The section's upper bound only caps the reader; EOF past the real
	// end surfaces as a (torn-)frame error below. Small buffer: this is
	// a single-frame point read, not a replay.
	raw, _, err := compress.NewFrameReaderSize(io.NewSectionReader(f, loc.Off, 1<<62), 4<<10).Next()
	if err != nil {
		return nil, fmt.Errorf("storage: segment %d read at %d: %w", loc.Seg, loc.Off, err)
	}
	return raw, nil
}

// reader returns the cached read-only handle for a segment, opening it
// on first use.
func (s *segmentBackend) reader(seg int) (*os.File, error) {
	s.readersMu.Lock()
	defer s.readersMu.Unlock()
	if f, ok := s.readers[seg]; ok {
		return f, nil
	}
	f, err := os.Open(s.segPath(seg))
	if err != nil {
		return nil, err
	}
	s.readers[seg] = f
	return f, nil
}

// isSealed reports whether the ordinal names a sealed segment.
func (s *segmentBackend) isSealed(seg int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.sealed {
		if n == seg {
			return true
		}
	}
	return false
}

// dropReader invalidates a segment's cached handle (its file was just
// renamed over by compaction or merge; the old inode's offsets no longer
// match the remapped locators).
func (s *segmentBackend) dropReader(seg int) {
	s.readersMu.Lock()
	if f, ok := s.readers[seg]; ok {
		f.Close()
		delete(s.readers, seg)
	}
	if s.onInvalidate != nil {
		s.onInvalidate(seg)
	}
	s.readersMu.Unlock()
}

// Compact rewrites each sealed segment with the current codec, one
// commit per segment: the rewrite streams with no lock held (sealed
// segments are immutable), and only the rename + locator swap run inside
// the caller's lock. The active segment is the live WAL tail and is left
// alone.
func (s *segmentBackend) Compact(commit func(remap map[Locator]Locator, swap func() error) error) error {
	s.mu.Lock()
	sealed := append([]int{}, s.sealed...)
	s.mu.Unlock()
	for _, seg := range sealed {
		if err := s.compactSegment(seg, commit); err != nil {
			return err
		}
	}
	return nil
}

func (s *segmentBackend) compactSegment(seg int, commit func(remap map[Locator]Locator, swap func() error) error) error {
	src, err := os.Open(s.segPath(seg))
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	defer src.Close()
	tmpPath := s.segPath(seg) + ".tmp"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	remap := map[Locator]Locator{}
	var entries []segIdxEntry
	fr := compress.NewFrameReader(src)
	var off, newOff int64
	for {
		raw, n, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(fmt.Errorf("storage: compact segment %d: %w", seg, err))
		}
		hdr, err := docmodel.DecodeDocumentHeader(raw)
		if err != nil {
			return fail(fmt.Errorf("storage: compact segment %d: %w", seg, err))
		}
		frame, err := compress.EncodeFrame(s.codec, raw)
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(frame); err != nil {
			return fail(fmt.Errorf("storage: compact write: %w", err))
		}
		remap[Locator{Seg: seg, Off: off}] = Locator{Seg: seg, Off: newOff}
		entries = append(entries, segIdxEntry{off: newOff, info: FrameInfo{
			ID: hdr.ID, Ver: hdr.Version, Class: hdr.Class, Ann: hdr.IsAnnotation(), Del: hdr.Deleted,
		}})
		off += int64(n)
		newOff += int64(len(frame))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("storage: compact sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("storage: compact close: %w", err)
	}
	// The replacement index is built here, outside the commit — the
	// stall window below holds only three renames.
	idxTmpPath := s.idxPath(seg) + ".tmp"
	if err := s.writeIndexTo(idxTmpPath, entries); err != nil {
		os.Remove(tmpPath)
		return err
	}
	return commit(remap, func() error {
		// Invalidate the sidecar before touching the data file: a crash
		// (or index-rename failure) between the renames must leave a
		// segment whose index is *missing* — rebuilt from frames on the
		// next open — never one whose valid-CRC index describes the old
		// layout at stale offsets.
		if err := os.Remove(s.idxPath(seg)); err != nil && !errors.Is(err, os.ErrNotExist) {
			os.Remove(tmpPath)
			os.Remove(idxTmpPath)
			return fmt.Errorf("storage: compact drop index: %w", err)
		}
		if err := os.Rename(tmpPath, s.segPath(seg)); err != nil {
			os.Remove(idxTmpPath)
			return fmt.Errorf("storage: compact rename: %w", err)
		}
		s.dropReader(seg)
		// Best-effort: a failed index rename costs the next open a frame
		// scan, not correctness.
		_ = os.Rename(idxTmpPath, s.idxPath(seg))
		return nil
	})
}

func (s *segmentBackend) Close() error {
	s.readersMu.Lock()
	for seg, f := range s.readers {
		f.Close()
		delete(s.readers, seg)
	}
	s.readersMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		s.active.Close()
		s.active = nil
		return fmt.Errorf("storage: close sync: %w", err)
	}
	err := s.active.Close()
	s.active = nil
	return err
}

// Segment index sidecar format:
//
//	magic "ISGX" | version 1 | count uvarint | entries... | crc32(le)
//	entry: off uvarint | origin uvarint | seq uvarint | ver uvarint |
//	       class byte | flags byte (bit0 = annotation, bit1 = tombstone)
//
// The crc covers everything before it; a short or mismatching file is
// treated as missing and rebuilt from the segment's frames.
var segIdxMagic = []byte("ISGX")

const segIdxVersion = 1

func (s *segmentBackend) writeIndex(seg int, entries []segIdxEntry) error {
	tmpPath := s.idxPath(seg) + ".tmp"
	if err := s.writeIndexTo(tmpPath, entries); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, s.idxPath(seg)); err != nil {
		return fmt.Errorf("storage: rename segment index: %w", err)
	}
	return nil
}

// writeIndexTo encodes and writes an index file at an arbitrary path —
// the tmp half of writeIndex, also used by compaction to build the
// replacement index outside the commit lock.
func (s *segmentBackend) writeIndexTo(path string, entries []segIdxEntry) error {
	var buf bytes.Buffer
	buf.Write(segIdxMagic)
	buf.WriteByte(segIdxVersion)
	var tmp [binary.MaxVarintLen64]byte
	put := func(u uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], u)]) }
	put(uint64(len(entries)))
	for _, e := range entries {
		put(uint64(e.off))
		put(uint64(e.info.ID.Origin))
		put(e.info.ID.Seq)
		put(uint64(e.info.Ver))
		buf.WriteByte(e.info.Class)
		var flags byte
		if e.info.Ann {
			flags |= 1
		}
		if e.info.Del {
			flags |= 2
		}
		buf.WriteByte(flags)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crc[:])
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("storage: write segment index: %w", err)
	}
	return nil
}

func (s *segmentBackend) readIndex(seg int) ([]segIdxEntry, error) {
	data, err := os.ReadFile(s.idxPath(seg))
	if err != nil {
		return nil, err
	}
	if len(data) < len(segIdxMagic)+1+4 || !bytes.Equal(data[:4], segIdxMagic) || data[4] != segIdxVersion {
		return nil, fmt.Errorf("storage: bad segment index %d", seg)
	}
	body, crc := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("storage: segment index %d checksum mismatch", seg)
	}
	r := bytes.NewReader(body[5:])
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("storage: segment index %d: %w", seg, err)
	}
	entries := make([]segIdxEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		var e segIdxEntry
		vals := [4]uint64{}
		for j := range vals {
			if vals[j], err = binary.ReadUvarint(r); err != nil {
				return nil, fmt.Errorf("storage: segment index %d: %w", seg, err)
			}
		}
		class, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("storage: segment index %d: %w", seg, err)
		}
		flags, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("storage: segment index %d: %w", seg, err)
		}
		e.off = int64(vals[0])
		e.info = FrameInfo{
			ID:    docmodel.DocID{Origin: uint32(vals[1]), Seq: vals[2]},
			Ver:   uint32(vals[3]),
			Class: class,
			Ann:   flags&1 != 0,
			Del:   flags&2 != 0,
		}
		entries = append(entries, e)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("storage: segment index %d trailing bytes", seg)
	}
	return entries, nil
}
