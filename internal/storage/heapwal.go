package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"impliance/internal/storage/compress"
)

// heapWAL is the extracted original layout: one append-only log
// ("store.wal") of checksummed frames. It is non-lazy — the Store pins
// every decoded version on the heap — so its locators exist for
// compaction bookkeeping, never for re-reads.
type heapWAL struct {
	mu        sync.Mutex
	dir       string
	codec     compress.Codec
	syncEvery bool

	f    *os.File // O_APPEND write handle
	size int64    // current append offset
}

func newHeapWAL(dir string, codec compress.Codec, syncEvery bool) *heapWAL {
	return &heapWAL{dir: dir, codec: codec, syncEvery: syncEvery}
}

func (w *heapWAL) Name() string { return "heapwal" }
func (w *heapWAL) Lazy() bool   { return false }

func (w *heapWAL) path() string { return filepath.Join(w.dir, "store.wal") }

// open replays existing frames, trims a torn tail, and readies the log
// for appends. Called once by the Store before any other method.
func (w *heapWAL) open(fn func(FrameMeta) error) error {
	// A crash mid-compact may leave the rewrite temp behind; it was never
	// renamed, so it holds nothing the log doesn't.
	_ = os.Remove(w.path() + ".tmp")
	if err := w.replay(fn); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("storage: stat wal: %w", err)
	}
	w.f, w.size = f, st.Size()
	return nil
}

func (w *heapWAL) replay(fn func(FrameMeta) error) error {
	f, err := os.Open(w.path())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: read wal: %w", err)
	}
	defer f.Close()
	fr := compress.NewFrameReader(f)
	var off int64
	for {
		raw, n, err := fr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// Torn tail: keep everything before it, truncate the rest.
			if terr := os.Truncate(w.path(), off); terr != nil {
				return fmt.Errorf("storage: truncate torn wal: %w", terr)
			}
			return nil
		}
		if err := fn(FrameMeta{Loc: Locator{Off: off}, Raw: raw, Size: n}); err != nil {
			return err
		}
		off += int64(n)
	}
}

func (w *heapWAL) Append(raw []byte, _ FrameInfo) (Locator, int, error) {
	frame, err := compress.EncodeFrame(w.codec, raw)
	if err != nil {
		return Locator{}, 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	loc := Locator{Off: w.size}
	if _, err := w.f.Write(frame); err != nil {
		return Locator{}, 0, fmt.Errorf("storage: append wal: %w", err)
	}
	w.size += int64(len(frame))
	if w.syncEvery {
		if err := w.f.Sync(); err != nil {
			return Locator{}, 0, fmt.Errorf("storage: sync wal: %w", err)
		}
	}
	return loc, len(frame), nil
}

// ReadAt is unsupported: the Store pins every decoded version of a
// non-lazy backend and never re-reads, and Compact leaves post-snapshot
// tail locators un-remapped — an offset read here could return the wrong
// frame, so refuse rather than trap a future caller.
func (w *heapWAL) ReadAt(Locator) ([]byte, error) {
	return nil, errNoRandomAccess
}

// Compact rewrites the log with the current codec using
// snapshot-then-swap: the prefix up to the size observed at entry is
// streamed and re-framed with no lock held (appends keep landing beyond
// the boundary), then a single commit copies the short tail, fsyncs, and
// renames — the only window writers stall for.
func (w *heapWAL) Compact(commit func(remap map[Locator]Locator, swap func() error) error) error {
	w.mu.Lock()
	boundary := w.size
	w.mu.Unlock()

	src, err := os.Open(w.path())
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	defer src.Close()
	tmpPath := w.path() + ".tmp"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	remap := map[Locator]Locator{}
	fr := compress.NewFrameReader(io.NewSectionReader(src, 0, boundary))
	var off, newOff int64
	for {
		raw, n, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Every snapshot-prefix frame must be readable: replay trimmed
			// any torn tail at open and appends are whole frames, so an
			// unreadable frame here is real corruption. Abort — rewriting
			// would silently drop every durable frame after it.
			return fail(fmt.Errorf("storage: compact: log corrupt at %d: %w", off, err))
		}
		frame, err := compress.EncodeFrame(w.codec, raw)
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(frame); err != nil {
			return fail(fmt.Errorf("storage: compact write: %w", err))
		}
		remap[Locator{Off: off}] = Locator{Off: newOff}
		off += int64(n)
		newOff += int64(len(frame))
	}
	return commit(remap, func() error {
		w.mu.Lock()
		defer w.mu.Unlock()
		// Copy frames appended since the snapshot, verbatim.
		tail := w.size - boundary
		if tail > 0 {
			if _, err := io.Copy(tmp, io.NewSectionReader(src, boundary, tail)); err != nil {
				return fail(fmt.Errorf("storage: compact tail: %w", err))
			}
		}
		if err := tmp.Sync(); err != nil {
			return fail(fmt.Errorf("storage: compact sync: %w", err))
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmpPath)
			return fmt.Errorf("storage: compact close: %w", err)
		}
		// Acquire the replacement append handle before touching the live
		// one: any failure from here aborts the compaction with the old
		// handle (and the old file, pre-rename) intact, so the store
		// stays writable instead of wedging on a closed w.f.
		nf, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			os.Remove(tmpPath)
			return fmt.Errorf("storage: compact reopen: %w", err)
		}
		if err := os.Rename(tmpPath, w.path()); err != nil {
			nf.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("storage: compact rename: %w", err)
		}
		// The old inode is no longer reachable at the path; its handle's
		// close result is irrelevant.
		_ = w.f.Close()
		w.f = nf
		w.size = newOff + tail
		return nil
	})
}

// DiskBytes reports the log's on-disk size for StorageFootprint.
func (w *heapWAL) DiskBytes() (uint64, error) {
	st, err := os.Stat(w.path())
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return uint64(st.Size()), nil
}

func (w *heapWAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		w.f = nil
		return fmt.Errorf("storage: close sync: %w", err)
	}
	err := w.f.Close()
	w.f = nil
	return err
}
