package storage

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/storage/compress"
)

// The backend conformance suite: every persistent backend must provide
// identical Store semantics — versioning, recovery, torn-tail trimming,
// compaction crash-safety — regardless of physical layout. Each test
// runs against every configuration in conformanceBackends.

type backendConfig struct {
	name string
	opts func(dir string) Options
}

func conformanceBackends() []backendConfig {
	return []backendConfig{
		{"heapwal", func(dir string) Options {
			return Options{Dir: dir}
		}},
		{"heapwal-flate", func(dir string) Options {
			return Options{Dir: dir, Codec: compress.Flate}
		}},
		// Tiny segments force frequent roll-over so every test crosses
		// sealed-segment boundaries.
		{"segment", func(dir string) Options {
			return Options{Dir: dir, Backend: BackendSegment, SegmentBytes: 2048}
		}},
		{"segment-flate", func(dir string) Options {
			return Options{Dir: dir, Backend: BackendSegment, SegmentBytes: 2048, Codec: compress.Flate}
		}},
		{"mmap", func(dir string) Options {
			return Options{Dir: dir, Backend: BackendMmap, SegmentBytes: 2048}
		}},
		{"mmap-flate", func(dir string) Options {
			return Options{Dir: dir, Backend: BackendMmap, SegmentBytes: 2048, Codec: compress.Flate}
		}},
	}
}

func forEachBackend(t *testing.T, fn func(t *testing.T, bc backendConfig)) {
	t.Helper()
	for _, bc := range conformanceBackends() {
		bc := bc
		t.Run(bc.name, func(t *testing.T) { fn(t, bc) })
	}
}

func confDoc(i int) *docmodel.Document {
	return docWith(
		docmodel.F("i", docmodel.Int(int64(i))),
		docmodel.F("pad", docmodel.String(strings.Repeat("conformance payload ", 8))),
	)
}

// newestDataFile returns the backend's newest (appendable) data file —
// the WAL for heapwal, the active segment for the segment backend — the
// only file a crash mid-append can tear.
func newestDataFile(t *testing.T, dir string) string {
	t.Helper()
	wal := filepath.Join(dir, "store.wal")
	if _, err := os.Stat(wal); err == nil {
		return wal
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no data files in %s", dir)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

func TestConformanceVersionSemantics(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendConfig) {
		s, err := Open(1, bc.opts(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		k1, err := s.Put(confDoc(1))
		if err != nil {
			t.Fatal(err)
		}
		upd := confDoc(10)
		upd.ID = k1.Doc
		k2, err := s.Put(upd)
		if err != nil {
			t.Fatal(err)
		}
		if k2.Ver != 2 {
			t.Fatalf("update version = %d", k2.Ver)
		}
		over := confDoc(99)
		over.ID, over.Version = k1.Doc, 1
		if _, err := s.Put(over); !errors.Is(err, ErrVersionExists) {
			t.Errorf("overwrite: %v", err)
		}
		gap := confDoc(99)
		gap.ID, gap.Version = k1.Doc, 5
		if _, err := s.Put(gap); !errors.Is(err, ErrVersionGap) {
			t.Errorf("gap: %v", err)
		}
		if d, err := s.Get(k1.Doc); err != nil || d.First("/i").IntVal() != 10 {
			t.Errorf("latest = %v, %v", d, err)
		}
		if d, err := s.GetVersion(docmodel.VersionKey{Doc: k1.Doc, Ver: 1}); err != nil || d.First("/i").IntVal() != 1 {
			t.Errorf("v1 = %v, %v", d, err)
		}
	})
}

func TestConformanceReplicaIdempotentOutOfOrder(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendConfig) {
		primary, err := Open(1, bc.opts(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		defer primary.Close()
		k, _ := primary.Put(confDoc(1))
		u := confDoc(2)
		u.ID = k.Doc
		primary.Put(u)
		v1, _ := primary.GetVersion(docmodel.VersionKey{Doc: k.Doc, Ver: 1})
		v2, _ := primary.GetVersion(docmodel.VersionKey{Doc: k.Doc, Ver: 2})

		replica, err := Open(2, bc.opts(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		defer replica.Close()
		// v2 before v1; re-delivery is a no-op.
		if err := replica.PutReplica(v2); err != nil {
			t.Fatal(err)
		}
		if err := replica.PutReplica(v2); err != nil {
			t.Fatal(err)
		}
		if d, err := replica.Get(k.Doc); err != nil || d.First("/i").IntVal() != 2 {
			t.Fatalf("latest after out-of-order: %v, %v", d, err)
		}
		if err := replica.PutReplica(v1); err != nil {
			t.Fatal(err)
		}
		if d, err := replica.GetVersion(docmodel.VersionKey{Doc: k.Doc, Ver: 1}); err != nil || d.First("/i").IntVal() != 1 {
			t.Errorf("backfilled v1: %v, %v", d, err)
		}
		if replica.VersionCount(k.Doc) != 2 {
			t.Errorf("replica versions = %d", replica.VersionCount(k.Doc))
		}
	})
}

func TestConformancePersistenceAndRecovery(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendConfig) {
		dir := t.TempDir()
		s, err := Open(7, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		var keys []docmodel.VersionKey
		for i := 0; i < 40; i++ {
			k, err := s.Put(confDoc(i))
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, k)
		}
		u := confDoc(1000)
		u.ID = keys[0].Doc
		s.Put(u)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		s2, err := Open(7, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if s2.Len() != 40 {
			t.Fatalf("recovered %d docs, want 40", s2.Len())
		}
		if s2.VersionCount(keys[0].Doc) != 2 {
			t.Error("recovered version chain wrong")
		}
		for i, k := range keys {
			want := int64(i)
			if i == 0 {
				want = 1000
			}
			d, err := s2.Get(k.Doc)
			if err != nil {
				t.Fatalf("Get(%s): %v", k.Doc, err)
			}
			if d.First("/i").IntVal() != want {
				t.Errorf("doc %d = %d, want %d", i, d.First("/i").IntVal(), want)
			}
		}
		if d, err := s2.GetVersion(docmodel.VersionKey{Doc: keys[0].Doc, Ver: 1}); err != nil || d.First("/i").IntVal() != 0 {
			t.Errorf("old version after recovery: %v, %v", d, err)
		}
		// Sequence continues without collision after recovery.
		k, err := s2.Put(confDoc(9999))
		if err != nil {
			t.Fatal(err)
		}
		if k.Doc.Seq <= 40 {
			t.Errorf("sequence reused after recovery: %v", k)
		}
	})
}

func TestConformanceTornTailRecovery(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendConfig) {
		dir := t.TempDir()
		s, err := Open(7, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			if _, err := s.Put(confDoc(i)); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()

		// Chop mid-frame in the newest data file to simulate a crash
		// during append.
		path := newestDataFile(t, dir)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() < 8 {
			t.Fatalf("newest data file too small to tear: %d", info.Size())
		}
		if err := os.Truncate(path, info.Size()-7); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(7, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if s2.Len() != 29 {
			t.Errorf("torn-tail recovery kept %d docs, want 29", s2.Len())
		}
		// Store keeps working after the trim.
		if _, err := s2.Put(confDoc(42)); err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceCompactPreservesEverything(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendConfig) {
		dir := t.TempDir()
		s, err := Open(7, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		k, _ := s.Put(confDoc(1))
		for i := 2; i <= 5; i++ {
			u := confDoc(i)
			u.ID = k.Doc
			if _, err := s.Put(u); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 30; i++ {
			if _, err := s.Put(confDoc(100 + i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		// Reads and writes still work after compaction (locators remapped).
		for v := 1; v <= 5; v++ {
			d, err := s.GetVersion(docmodel.VersionKey{Doc: k.Doc, Ver: uint32(v)})
			if err != nil || d.First("/i").IntVal() != int64(v) {
				t.Fatalf("post-compact v%d: %v, %v", v, d, err)
			}
		}
		if _, err := s.Put(confDoc(999)); err != nil {
			t.Fatal(err)
		}
		total, stall := s.CompactStats()
		if total == 0 {
			t.Error("compact accounted no wall time")
		}
		if stall > total {
			t.Errorf("stall %v exceeds total %v", stall, total)
		}
		s.Close()

		s2, err := Open(7, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if s2.VersionCount(k.Doc) != 5 {
			t.Errorf("compaction lost versions: %d", s2.VersionCount(k.Doc))
		}
		if s2.Len() != 32 {
			t.Errorf("docs after compact+put = %d, want 32", s2.Len())
		}
	})
}

// TestConformanceCrashMidCompactLeftovers: a crash mid-compact leaves
// temp files that were never renamed. Re-open must ignore and remove
// them, with the original data intact.
func TestConformanceCrashMidCompactLeftovers(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendConfig) {
		dir := t.TempDir()
		s, err := Open(7, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		var keys []docmodel.VersionKey
		for i := 0; i < 25; i++ {
			k, err := s.Put(confDoc(i))
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, k)
		}
		s.Close()

		// Manufacture the crash artifacts: half-written rewrite temps for
		// every data file (and, for segments, an index temp).
		files, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if err := os.WriteFile(filepath.Join(dir, f.Name()+".tmp"), []byte("partial rewrite"), 0o644); err != nil {
				t.Fatal(err)
			}
		}

		s2, err := Open(7, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		for i, k := range keys {
			d, err := s2.Get(k.Doc)
			if err != nil || d.First("/i").IntVal() != int64(i) {
				t.Fatalf("doc %d after crash-leftover open: %v, %v", i, d, err)
			}
		}
		leftover, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
		if len(leftover) != 0 {
			t.Errorf("tmp leftovers survived open: %v", leftover)
		}
	})
}

// TestSegmentMissingIndexRebuilt: deleting a sealed segment's index
// sidecar must not lose data — open rebuilds the index from the
// segment's frames and re-persists it.
func TestSegmentMissingIndexRebuilt(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Backend: BackendSegment, SegmentBytes: 2048}
	s, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	var keys []docmodel.VersionKey
	for i := 0; i < 40; i++ {
		k, err := s.Put(confDoc(i))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	s.Close()

	idxs, err := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
	if err != nil || len(idxs) == 0 {
		t.Fatalf("no sealed segment indexes written (idxs=%v err=%v)", idxs, err)
	}
	sort.Strings(idxs)
	victim := idxs[0]
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, k := range keys {
		d, err := s2.Get(k.Doc)
		if err != nil || d.First("/i").IntVal() != int64(i) {
			t.Fatalf("doc %d after index loss: %v, %v", i, d, err)
		}
	}
	if _, err := os.Stat(victim); err != nil {
		t.Errorf("rebuilt index not persisted: %v", err)
	}
}

// TestSegmentCorruptIndexRebuilt: a corrupt (checksum-failing) index is
// treated as missing, not trusted.
func TestSegmentCorruptIndexRebuilt(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Backend: BackendSegment, SegmentBytes: 2048}
	s, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	var keys []docmodel.VersionKey
	for i := 0; i < 40; i++ {
		k, err := s.Put(confDoc(i))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	s.Close()

	idxs, _ := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
	if len(idxs) == 0 {
		t.Fatal("no sealed segment indexes written")
	}
	data, err := os.ReadFile(idxs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(idxs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, k := range keys {
		d, err := s2.Get(k.Doc)
		if err != nil || d.First("/i").IntVal() != int64(i) {
			t.Fatalf("doc %d after index corruption: %v, %v", i, d, err)
		}
	}
}

// TestSegmentLazyReopen: the segment backend's defining property — a
// re-opened store holds zero decoded documents, decodes on demand, and
// the hot cache bounds residency below the corpus.
func TestSegmentLazyReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Backend: BackendSegment, SegmentBytes: 8192, HotCacheDocs: 32}
	s, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	var keys []docmodel.VersionKey
	for i := 0; i < n; i++ {
		k, err := s.Put(confDoc(i))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if res := s.ResidentDecoded(); res > 32 {
		t.Errorf("resident during ingest = %d, want <= hot cache cap 32", res)
	}
	s.Close()

	s2, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if res := s2.ResidentDecoded(); res != 0 {
		t.Fatalf("resident after reopen = %d, want 0 (lazy replay)", res)
	}
	for i, k := range keys {
		d, err := s2.Get(k.Doc)
		if err != nil || d.First("/i").IntVal() != int64(i) {
			t.Fatalf("lazy Get doc %d: %v, %v", i, d, err)
		}
	}
	if res := s2.ResidentDecoded(); res == 0 || res > 32 {
		t.Errorf("resident after reads = %d, want in (0, 32]", res)
	}
	if s2.BackendName() != "segment" {
		t.Errorf("backend = %q", s2.BackendName())
	}
}

// TestSegmentEachMetaDoesNotDecode: recovery registration must be
// possible without materializing documents.
func TestSegmentEachMetaDoesNotDecode(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Backend: BackendSegment, SegmentBytes: 2048}
	s, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d := confDoc(i)
		d.Class = uint8(i % 3)
		if _, err := s.Put(d); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, err := Open(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	count := 0
	classes := map[uint8]int{}
	s2.EachMeta(func(m DocMeta) bool {
		count++
		classes[m.Class]++
		if m.Versions != 1 {
			t.Errorf("doc %s versions = %d", m.ID, m.Versions)
		}
		return true
	})
	if count != 50 {
		t.Errorf("EachMeta visited %d docs, want 50", count)
	}
	if classes[0] == 0 || classes[1] == 0 || classes[2] == 0 {
		t.Errorf("classes not recovered from headers: %v", classes)
	}
	if res := s2.ResidentDecoded(); res != 0 {
		t.Errorf("EachMeta decoded %d documents; must decode none", res)
	}
}

// TestConformanceConcurrentPutsGetsCompact: compaction runs while
// writers and readers hammer the store; everything stays consistent and
// the writer stall is bounded by the commit windows (run under -race in
// CI).
func TestConformanceConcurrentPutsGetsCompact(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendConfig) {
		s, err := Open(1, bc.opts(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		// Seed history so compaction has real work.
		for i := 0; i < 200; i++ {
			if _, err := s.Put(confDoc(i)); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		done := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					k, err := s.Put(confDoc(w*1000 + i))
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := s.Get(k.Doc); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		go func() { wg.Wait(); close(done) }()
		for {
			if err := s.Compact(); err != nil {
				t.Error(err)
				break
			}
			select {
			case <-done:
			default:
				continue
			}
			break
		}
		wg.Wait()
		// Every document readable after the dust settles.
		misses := 0
		s.EachMeta(func(m DocMeta) bool {
			if _, err := s.Get(m.ID); err != nil {
				misses++
			}
			return true
		})
		if misses != 0 {
			t.Errorf("%d docs unreadable after concurrent compaction", misses)
		}
	})
}

// TestSegmentCompactAfterCodecChange: re-framing with a different codec
// moves every frame offset, so this exercises the full locator-remap and
// index-rewrite path (sidecar invalidated before the data rename, then
// rewritten), across a restart.
func TestSegmentCompactAfterCodecChange(t *testing.T) {
	dir := t.TempDir()
	plain := Options{Dir: dir, Backend: BackendSegment, SegmentBytes: 2048}
	packed := plain
	packed.Codec = compress.Flate

	s, err := Open(7, plain)
	if err != nil {
		t.Fatal(err)
	}
	var keys []docmodel.VersionKey
	for i := 0; i < 40; i++ {
		k, err := s.Put(confDoc(i))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	s.Close()

	s2, err := Open(7, packed)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	// Cold reads against the remapped locators, live.
	for i, k := range keys {
		d, err := s2.Get(k.Doc)
		if err != nil || d.First("/i").IntVal() != int64(i) {
			t.Fatalf("doc %d after codec-change compact: %v, %v", i, d, err)
		}
	}
	s2.Close()

	// And across a restart (rewritten indexes must describe the new
	// layout).
	s3, err := Open(7, packed)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	for i, k := range keys {
		d, err := s3.Get(k.Doc)
		if err != nil || d.First("/i").IntVal() != int64(i) {
			t.Fatalf("doc %d after restart: %v, %v", i, d, err)
		}
	}
}

// TestSegmentRollOver: appends past the threshold roll into new sealed
// segments with indexes.
func TestSegmentRollOver(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(7, Options{Dir: dir, Backend: BackendSegment, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := s.Put(confDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	logs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	idxs, _ := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
	if len(logs) < 3 {
		t.Fatalf("expected roll-over into >= 3 segments, got %d", len(logs))
	}
	if len(idxs) != len(logs)-1 {
		t.Errorf("sealed indexes = %d, want one per sealed segment (%d)", len(idxs), len(logs)-1)
	}
}

// TestOpenRejectsForeignLayout: opening a directory persisted by the
// other backend must fail fast — silently presenting an empty store
// would orphan the corpus and re-mint colliding DocIDs.
func TestOpenRejectsForeignLayout(t *testing.T) {
	heapDir := t.TempDir()
	s, err := Open(7, Options{Dir: heapDir})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(confDoc(1))
	s.Close()
	if _, err := Open(7, Options{Dir: heapDir, Backend: BackendSegment}); err == nil {
		t.Error("segment open over heapwal data must fail, not present an empty store")
	}

	segDir := t.TempDir()
	s2, err := Open(7, Options{Dir: segDir, Backend: BackendSegment})
	if err != nil {
		t.Fatal(err)
	}
	s2.Put(confDoc(1))
	s2.Close()
	if _, err := Open(7, Options{Dir: segDir}); err == nil {
		t.Error("heapwal open over segment data must fail, not present an empty store")
	}
}

func TestOpenRejectsUnknownBackend(t *testing.T) {
	if _, err := Open(1, Options{Dir: t.TempDir(), Backend: "bogus"}); err == nil {
		t.Error("unknown backend must fail")
	}
	// Even memory-only stores validate the name, so a typo fails in the
	// simulation that wrote it, not at first deployment with a Dir.
	if _, err := Open(1, Options{Backend: "segmet"}); err == nil {
		t.Error("unknown backend must fail for memory-only stores too")
	}
}

func TestMemoryStoreIgnoresBackendSelection(t *testing.T) {
	// Dir == "" is memory-only regardless of backend request; simulations
	// construct stores this way with cluster-level config applied.
	s, err := Open(1, Options{Backend: BackendSegment})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.BackendName() != "memory" {
		t.Errorf("backend = %q", s.BackendName())
	}
	k, err := s.Put(confDoc(1))
	if err != nil {
		t.Fatal(err)
	}
	if d, err := s.Get(k.Doc); err != nil || d.First("/i").IntVal() != 1 {
		t.Errorf("memory get: %v, %v", d, err)
	}
}
