package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/storage/compress"
)

// Delete/tombstone and segment-merge semantics. Merge-capable
// configurations (segment and mmap share the layout and the merge
// implementation) are exercised for both; tombstone semantics run on the
// full conformance matrix.

func mergeBackends() []backendConfig {
	return []backendConfig{
		{"segment", func(dir string) Options {
			return Options{Dir: dir, Backend: BackendSegment, SegmentBytes: 2048}
		}},
		{"mmap", func(dir string) Options {
			return Options{Dir: dir, Backend: BackendMmap, SegmentBytes: 2048}
		}},
		// Flate shrinks the repetitive test docs ~10×; a smaller segment
		// threshold keeps the roll-over count comparable.
		{"mmap-flate", func(dir string) Options {
			return Options{Dir: dir, Backend: BackendMmap, SegmentBytes: 512, Codec: compress.Flate}
		}},
	}
}

func forEachMergeBackend(t *testing.T, fn func(t *testing.T, bc backendConfig)) {
	t.Helper()
	for _, bc := range mergeBackends() {
		bc := bc
		t.Run(bc.name, func(t *testing.T) { fn(t, bc) })
	}
}

// padToSeal appends enough throwaway documents to roll every earlier
// frame into a sealed segment (2048-byte segments, ~200-byte docs).
func padToSeal(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Put(confDoc(100000 + i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeleteTombstoneSemantics(t *testing.T) {
	forEachBackend(t, func(t *testing.T, bc backendConfig) {
		dir := t.TempDir()
		s, err := Open(1, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		k1, _ := s.Put(confDoc(1))
		k2, _ := s.Put(confDoc(2))

		// Delete of a missing document fails.
		if _, err := s.Delete(docmodel.DocID{Origin: 9, Seq: 9}); !errors.Is(err, ErrNotFound) {
			t.Errorf("delete missing: %v", err)
		}
		tk, err := s.Delete(k1.Doc)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Ver != 2 {
			t.Errorf("tombstone version = %d, want 2", tk.Ver)
		}
		// Idempotent.
		if tk2, err := s.Delete(k1.Doc); err != nil || tk2 != tk {
			t.Errorf("re-delete: %v, %v", tk2, err)
		}
		// Point reads see absence; the version history keeps the tombstone.
		if _, err := s.Get(k1.Doc); !errors.Is(err, ErrNotFound) {
			t.Errorf("get deleted: %v", err)
		}
		if d, err := s.GetVersion(tk); err != nil || !d.Deleted {
			t.Errorf("tombstone version: %v, %v", d, err)
		}
		if d, err := s.GetVersion(docmodel.VersionKey{Doc: k1.Doc, Ver: 1}); err != nil || d.Deleted {
			t.Errorf("pre-delete version: %v, %v", d, err)
		}
		// Scans and metadata reflect the deletion.
		seen := 0
		s.Scan(func(d *docmodel.Document) bool {
			if d.ID == k1.Doc {
				t.Error("scan surfaced a deleted document")
			}
			seen++
			return true
		})
		if seen != 1 {
			t.Errorf("scan saw %d docs, want 1", seen)
		}
		dels := map[docmodel.DocID]bool{}
		s.EachMeta(func(m DocMeta) bool {
			dels[m.ID] = m.Deleted
			return true
		})
		if !dels[k1.Doc] || dels[k2.Doc] {
			t.Errorf("EachMeta deleted flags = %v", dels)
		}
		// A new version resurrects the document.
		re := confDoc(42)
		re.ID = k1.Doc
		rk, err := s.Put(re)
		if err != nil {
			t.Fatal(err)
		}
		if rk.Ver != 3 {
			t.Errorf("resurrect version = %d, want 3", rk.Ver)
		}
		if d, err := s.Get(k1.Doc); err != nil || d.First("/i").IntVal() != 42 {
			t.Errorf("resurrected get: %v, %v", d, err)
		}
		// And delete again, persisting this time across a restart.
		if _, err := s.Delete(k1.Doc); err != nil {
			t.Fatal(err)
		}
		s.Close()
		if bc.opts(dir).Dir == "" {
			return
		}
		s2, err := Open(1, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if _, err := s2.Get(k1.Doc); !errors.Is(err, ErrNotFound) {
			t.Errorf("deleted doc visible after restart: %v", err)
		}
		if d, err := s2.Get(k2.Doc); err != nil || d.First("/i").IntVal() != 2 {
			t.Errorf("surviving doc after restart: %v, %v", d, err)
		}
	})
}

func TestMergeUnsupportedBackends(t *testing.T) {
	s, err := Open(1, Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Merge(); !errors.Is(err, ErrMergeUnsupported) {
		t.Errorf("heapwal merge: %v", err)
	}
	m, err := Open(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Merge(); !errors.Is(err, ErrMergeUnsupported) {
		t.Errorf("memory merge: %v", err)
	}
}

func TestMergeNoopBelowThreshold(t *testing.T) {
	s, err := Open(1, Options{Dir: t.TempDir(), Backend: BackendSegment, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Put(confDoc(1)); err != nil {
		t.Fatal(err)
	}
	merged, err := s.Merge()
	if err != nil || merged {
		t.Errorf("merge with no sealed segments = %v, %v", merged, err)
	}
}

func TestMergeReclaimsTombstonedChains(t *testing.T) {
	forEachMergeBackend(t, func(t *testing.T, bc backendConfig) {
		dir := t.TempDir()
		s, err := Open(1, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		var keys []docmodel.VersionKey
		for i := 0; i < 30; i++ {
			k, err := s.Put(confDoc(i))
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, k)
		}
		for i := 0; i < 10; i++ {
			if _, err := s.Delete(keys[i].Doc); err != nil {
				t.Fatal(err)
			}
		}
		// Roll the tombstones into sealed segments so the whole chain is
		// inside the merged set.
		padToSeal(t, s, 30)
		preLive, preDisk := s.StorageFootprint()
		if preDisk < preLive {
			t.Fatalf("disk %d < live %d before merge", preDisk, preLive)
		}
		merged, err := s.Merge()
		if err != nil {
			t.Fatal(err)
		}
		if !merged {
			t.Fatal("merge did not fold")
		}
		postLive, postDisk := s.StorageFootprint()
		if postDisk >= preDisk {
			t.Errorf("disk after merge %d, want < %d", postDisk, preDisk)
		}
		if postLive >= preLive {
			t.Errorf("live after merge %d, want < %d (tombstoned chains dropped)", postLive, preLive)
		}
		check := func(s *Store, when string) {
			t.Helper()
			for i, k := range keys {
				d, err := s.Get(k.Doc)
				if i < 10 {
					if !errors.Is(err, ErrNotFound) {
						t.Fatalf("%s: reclaimed doc %d resurfaced: %v, %v", when, i, d, err)
					}
					continue
				}
				if err != nil || d.First("/i").IntVal() != int64(i) {
					t.Fatalf("%s: survivor %d: %v, %v", when, i, d, err)
				}
			}
		}
		check(s, "live")
		// Writes keep working after the fold.
		if _, err := s.Put(confDoc(777)); err != nil {
			t.Fatal(err)
		}
		s.Close()

		// A merged-away chain must never be resurrected by replay.
		s2, err := Open(1, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		check(s2, "after restart")
		if got, want := s2.Len(), 30-10+30+1; got != want {
			t.Errorf("Len after restart = %d, want %d", got, want)
		}
	})
}

func TestMergeRetentionDropsOldVersions(t *testing.T) {
	forEachMergeBackend(t, func(t *testing.T, bc backendConfig) {
		dir := t.TempDir()
		opts := bc.opts(dir)
		opts.RetainVersions = 2
		s, err := Open(1, opts)
		if err != nil {
			t.Fatal(err)
		}
		k, err := s.Put(confDoc(1))
		if err != nil {
			t.Fatal(err)
		}
		for v := 2; v <= 6; v++ {
			u := confDoc(v)
			u.ID = k.Doc
			if _, err := s.Put(u); err != nil {
				t.Fatal(err)
			}
		}
		padToSeal(t, s, 30)
		if merged, err := s.Merge(); err != nil || !merged {
			t.Fatalf("merge = %v, %v", merged, err)
		}
		check := func(s *Store, when string) {
			t.Helper()
			for v := uint32(1); v <= 4; v++ {
				if _, err := s.GetVersion(docmodel.VersionKey{Doc: k.Doc, Ver: v}); !errors.Is(err, ErrNotFound) {
					t.Errorf("%s: v%d survived retention: %v", when, v, err)
				}
			}
			for v := uint32(5); v <= 6; v++ {
				d, err := s.GetVersion(docmodel.VersionKey{Doc: k.Doc, Ver: v})
				if err != nil || d.First("/i").IntVal() != int64(v) {
					t.Errorf("%s: retained v%d: %v, %v", when, v, d, err)
				}
			}
			if d, err := s.Get(k.Doc); err != nil || d.First("/i").IntVal() != 6 {
				t.Errorf("%s: head: %v, %v", when, d, err)
			}
		}
		check(s, "live")
		s.Close()
		// Retention must hold across restart: dropped versions stay gone.
		s2, err := Open(1, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		check(s2, "after restart")
	})
}

// TestMergeCrashAtCommitRollsForward simulates a crash immediately after
// the merge-commit marker rename (the commit point): the staged merged
// segment and the marker exist, the input segments are still in place.
// Open must roll the merge forward — staged file renamed in, inputs
// removed, marker gone — and serve the full corpus.
func TestMergeCrashAtCommitRollsForward(t *testing.T) {
	forEachMergeBackend(t, func(t *testing.T, bc backendConfig) {
		dir := t.TempDir()
		s, err := Open(1, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		var keys []docmodel.VersionKey
		for i := 0; i < 30; i++ {
			k, err := s.Put(confDoc(i))
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, k)
		}
		s.Close()

		// Stage what Merge would have staged: all sealed segments (the
		// ones with indexes) concatenated at the lowest ordinal. Frames
		// are copied verbatim — a keep-everything merge.
		idxs, _ := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
		if len(idxs) < 2 {
			t.Fatalf("need >= 2 sealed segments, have %d", len(idxs))
		}
		sort.Strings(idxs)
		var merged []int
		staged, err := os.Create(filepath.Join(dir, "staging"))
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range idxs {
			name := filepath.Base(idx)
			n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".idx"))
			if err != nil {
				t.Fatalf("parse %q: %v", name, err)
			}
			merged = append(merged, n)
			f, err := os.Open(strings.TrimSuffix(idx, ".idx") + ".log")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.Copy(staged, f); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
		staged.Close()
		dest := merged[0]
		be := newSegmentBackend(dir, compress.None, false, 2048)
		if err := os.Rename(filepath.Join(dir, "staging"), be.segPath(dest)+".mrg"); err != nil {
			t.Fatal(err)
		}
		// No staged index: roll-forward must cope (the segment is scanned
		// and its index rebuilt on open).
		if err := be.writeMarker(dest, merged); err != nil {
			t.Fatal(err)
		}

		s2, err := Open(1, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		for i, k := range keys {
			d, err := s2.Get(k.Doc)
			if err != nil || d.First("/i").IntVal() != int64(i) {
				t.Fatalf("doc %d after roll-forward: %v, %v", i, d, err)
			}
		}
		if _, err := os.Stat(filepath.Join(dir, "merge-commit")); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("marker survived roll-forward: %v", err)
		}
		for _, n := range merged[1:] {
			if _, err := os.Stat(be.segPath(n)); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("merged input segment %d survived roll-forward", n)
			}
		}
		if strays, _ := filepath.Glob(filepath.Join(dir, "*.mrg")); len(strays) != 0 {
			t.Errorf("staging leftovers: %v", strays)
		}
	})
}

// TestMergeStagingSweptWithoutMarker: staged .mrg files with no commit
// marker are a dead uncommitted merge; open deletes them and the
// original segments stay authoritative.
func TestMergeStagingSweptWithoutMarker(t *testing.T) {
	forEachMergeBackend(t, func(t *testing.T, bc backendConfig) {
		dir := t.TempDir()
		s, err := Open(1, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		var keys []docmodel.VersionKey
		for i := 0; i < 30; i++ {
			k, err := s.Put(confDoc(i))
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, k)
		}
		s.Close()
		for _, name := range []string{"seg-0000.log.mrg", "seg-0000.idx.mrg"} {
			if err := os.WriteFile(filepath.Join(dir, name), []byte("partial merge"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s2, err := Open(1, bc.opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		for i, k := range keys {
			d, err := s2.Get(k.Doc)
			if err != nil || d.First("/i").IntVal() != int64(i) {
				t.Fatalf("doc %d after stray sweep: %v, %v", i, d, err)
			}
		}
		if strays, _ := filepath.Glob(filepath.Join(dir, "*.mrg")); len(strays) != 0 {
			t.Errorf("stray staging survived open: %v", strays)
		}
	})
}

// TestMmapColdReads: the mmap backend's defining property — a re-opened
// store decodes on demand through the mappings, and the segment and mmap
// backends open each other's directories (identical layout).
func TestMmapColdReads(t *testing.T) {
	dir := t.TempDir()
	segOpts := Options{Dir: dir, Backend: BackendSegment, SegmentBytes: 2048}
	s, err := Open(1, segOpts)
	if err != nil {
		t.Fatal(err)
	}
	var keys []docmodel.VersionKey
	for i := 0; i < 60; i++ {
		k, err := s.Put(confDoc(i))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	s.Close()

	mmapOpts := segOpts
	mmapOpts.Backend = BackendMmap
	s2, err := Open(1, mmapOpts)
	if err != nil {
		t.Fatal(err)
	}
	if s2.BackendName() != "mmap" {
		t.Fatalf("backend = %q", s2.BackendName())
	}
	if res := s2.ResidentDecoded(); res != 0 {
		t.Fatalf("resident after reopen = %d, want 0", res)
	}
	for i, k := range keys {
		d, err := s2.Get(k.Doc)
		if err != nil || d.First("/i").IntVal() != int64(i) {
			t.Fatalf("mmap cold read %d: %v, %v", i, d, err)
		}
	}
	// Keep writing through the mmap store (active segment is pread) and
	// reopen with the plain segment backend.
	if _, err := s2.Put(confDoc(999)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(1, segOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Len(); got != 61 {
		t.Errorf("Len after round trip = %d, want 61", got)
	}
}
