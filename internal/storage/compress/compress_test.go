package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodecsRoundTrip(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte(""),
		[]byte("hello"),
		[]byte(strings.Repeat("the quick brown fox ", 200)),
		randomBytes(4096, 1),
	}
	for _, c := range []Codec{None, Flate, FlateFast} {
		for i, in := range inputs {
			comp, err := c.Compress(in)
			if err != nil {
				t.Fatalf("%s input %d: %v", c.Name(), i, err)
			}
			out, err := c.Decompress(comp)
			if err != nil {
				t.Fatalf("%s input %d: %v", c.Name(), i, err)
			}
			if !bytes.Equal(out, in) {
				t.Errorf("%s input %d: round trip mismatch", c.Name(), i)
			}
		}
	}
}

func TestFlateActuallyCompresses(t *testing.T) {
	in := []byte(strings.Repeat("impliance stores all your data. ", 500))
	comp, err := Flate.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(in)/4 {
		t.Errorf("flate should compress repetitive text >4x: %d -> %d", len(in), len(comp))
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, c := range []Codec{None, Flate, FlateFast} {
		raw := []byte(strings.Repeat("abc123", 100))
		frame, err := EncodeFrame(c, raw)
		if err != nil {
			t.Fatal(err)
		}
		got, consumed, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if consumed != len(frame) {
			t.Errorf("%s: consumed %d of %d", c.Name(), consumed, len(frame))
		}
		if !bytes.Equal(got, raw) {
			t.Errorf("%s: frame round trip mismatch", c.Name())
		}
	}
}

func TestFrameConcatenation(t *testing.T) {
	a, _ := EncodeFrame(Flate, []byte("first block"))
	b, _ := EncodeFrame(None, []byte("second block"))
	joined := append(append([]byte{}, a...), b...)
	r1, n1, err := DecodeFrame(joined)
	if err != nil || string(r1) != "first block" {
		t.Fatalf("first: %v %q", err, r1)
	}
	r2, _, err := DecodeFrame(joined[n1:])
	if err != nil || string(r2) != "second block" {
		t.Fatalf("second: %v %q", err, r2)
	}
}

func TestFrameStoresIncompressibleRaw(t *testing.T) {
	raw := randomBytes(2048, 2)
	frame, err := EncodeFrame(Flate, raw)
	if err != nil {
		t.Fatal(err)
	}
	// Incompressible data must not blow up the frame beyond header costs.
	if len(frame) > len(raw)+32 {
		t.Errorf("incompressible frame grew: %d -> %d", len(raw), len(frame))
	}
	got, _, err := DecodeFrame(frame)
	if err != nil || !bytes.Equal(got, raw) {
		t.Error("incompressible round trip failed")
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	raw := []byte(strings.Repeat("data", 100))
	frame, _ := EncodeFrame(Flate, raw)
	rng := rand.New(rand.NewSource(3))
	detected := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		b := append([]byte{}, frame...)
		b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		got, _, err := DecodeFrame(b)
		if err != nil || !bytes.Equal(got, raw) {
			detected++
		}
	}
	// CRC + flate structure catch essentially all single-byte flips.
	if detected < trials*99/100 {
		t.Errorf("only %d/%d corruptions detected", detected, trials)
	}
}

func TestFrameErrors(t *testing.T) {
	if _, _, err := DecodeFrame(nil); err == nil {
		t.Error("nil frame must fail")
	}
	if _, _, err := DecodeFrame([]byte{1, 2, 3}); err == nil {
		t.Error("bad magic must fail")
	}
	frame, _ := EncodeFrame(Flate, []byte("hello world"))
	if _, _, err := DecodeFrame(frame[:len(frame)-2]); err == nil {
		t.Error("truncated frame must fail")
	}
}

func TestPropertyFrameRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		frame, err := EncodeFrame(Flate, data)
		if err != nil {
			return false
		}
		got, n, err := DecodeFrame(frame)
		return err == nil && n == len(frame) && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randomBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestFrameReaderStreamsConcatenatedFrames(t *testing.T) {
	var log bytes.Buffer
	var want [][]byte
	var sizes []int
	for i := 0; i < 50; i++ {
		raw := append([]byte(strings.Repeat("frame payload ", i%7+1)), byte(i))
		codec := []Codec{None, Flate, FlateFast}[i%3]
		frame, err := EncodeFrame(codec, raw)
		if err != nil {
			t.Fatal(err)
		}
		log.Write(frame)
		want = append(want, raw)
		sizes = append(sizes, len(frame))
	}
	fr := NewFrameReader(bytes.NewReader(log.Bytes()))
	for i := range want {
		raw, n, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(raw, want[i]) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
		if n != sizes[i] {
			t.Fatalf("frame %d: consumed %d, want %d", i, n, sizes[i])
		}
	}
	if _, _, err := fr.Next(); err == nil {
		t.Fatal("expected EOF at clean boundary")
	} else if err.Error() != "EOF" {
		t.Fatalf("want io.EOF at clean boundary, got %v", err)
	}
}

func TestFrameReaderReportsTornTail(t *testing.T) {
	frame, err := EncodeFrame(None, []byte("complete frame body"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut++ {
		log := append(append([]byte{}, frame...), frame[:cut]...)
		fr := NewFrameReader(bytes.NewReader(log))
		if _, _, err := fr.Next(); err != nil {
			t.Fatalf("cut %d: first frame should decode: %v", cut, err)
		}
		if _, _, err := fr.Next(); err == nil || err.Error() == "EOF" {
			t.Fatalf("cut %d: torn tail must error distinctly from EOF, got %v", cut, err)
		}
	}
}

func TestFrameReaderMatchesDecodeFrame(t *testing.T) {
	raw := []byte(strings.Repeat("parity between stream and slice decode ", 20))
	frame, err := EncodeFrame(Flate, raw)
	if err != nil {
		t.Fatal(err)
	}
	sliceRaw, sliceN, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	streamRaw, streamN, err := NewFrameReader(bytes.NewReader(frame)).Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sliceRaw, streamRaw) || sliceN != streamN {
		t.Fatalf("stream/slice divergence: n=%d/%d", streamN, sliceN)
	}
}
