// Package compress provides the block compression codec that runs inside
// the storage node software (paper §3.1: "the push-down logic is
// implemented in the software component of a storage unit, and thus can be
// deployed on any type of commodity hardware" — compression named as a key
// example). Frames are self-describing and checksummed so a storage node
// can verify replicas without decoding documents.
package compress

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Codec compresses and decompresses byte blocks.
type Codec interface {
	// Name identifies the codec in frame headers.
	Name() string
	// Compress returns the compressed form of src.
	Compress(src []byte) ([]byte, error)
	// Decompress expands a block produced by Compress.
	Decompress(src []byte) ([]byte, error)
}

// None is the identity codec.
var None Codec = noneCodec{}

type noneCodec struct{}

func (noneCodec) Name() string                          { return "none" }
func (noneCodec) Compress(src []byte) ([]byte, error)   { return src, nil }
func (noneCodec) Decompress(src []byte) ([]byte, error) { return src, nil }

// Flate is a DEFLATE codec at the default compression level.
var Flate Codec = flateCodec{level: flate.DefaultCompression}

// FlateFast is DEFLATE at the fastest level, for throughput-bound stores.
var FlateFast Codec = flateCodec{level: flate.BestSpeed}

type flateCodec struct{ level int }

func (c flateCodec) Name() string {
	if c.level == flate.BestSpeed {
		return "flate-fast"
	}
	return "flate"
}

func (c flateCodec) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, c.level)
	if err != nil {
		return nil, fmt.Errorf("compress: %w", err)
	}
	if _, err := w.Write(src); err != nil {
		return nil, fmt.Errorf("compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("compress: %w", err)
	}
	return buf.Bytes(), nil
}

func (c flateCodec) Decompress(src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("decompress: %w", err)
	}
	return out, nil
}

// ErrFrame reports a malformed or corrupted frame.
var ErrFrame = errors.New("compress: bad frame")

// Frame layout:
//
//	magic[2] codecID[1] rawLen[uvarint] compLen[uvarint] crc32[4] payload...
//
// crc covers the *raw* bytes so corruption is caught after decompression.
const (
	magic0 = 0xC4
	magic1 = 0x5E
)

var codecIDs = map[string]byte{"none": 0, "flate": 1, "flate-fast": 2}

var codecByID = map[byte]Codec{0: None, 1: Flate, 2: FlateFast}

// EncodeFrame wraps raw bytes into a checksummed frame using the codec.
func EncodeFrame(c Codec, raw []byte) ([]byte, error) {
	id, ok := codecIDs[c.Name()]
	if !ok {
		return nil, fmt.Errorf("%w: unknown codec %q", ErrFrame, c.Name())
	}
	payload, err := c.Compress(raw)
	if err != nil {
		return nil, err
	}
	// If compression expands the block (incompressible data), store raw.
	if len(payload) >= len(raw) {
		id = codecIDs["none"]
		payload = raw
	}
	buf := make([]byte, 0, len(payload)+24)
	buf = append(buf, magic0, magic1, id)
	buf = binary.AppendUvarint(buf, uint64(len(raw)))
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(raw))
	buf = append(buf, crc[:]...)
	buf = append(buf, payload...)
	return buf, nil
}

// maxFrameLen bounds a single frame's raw and compressed payload so a
// corrupt length prefix cannot drive an unbounded allocation.
const maxFrameLen = 1 << 30

// FrameReader streams concatenated frames from an io.Reader with bounded
// memory: only one frame's payload is resident at a time. It is the
// shared replay path of every storage backend — recovery cost no longer
// scales the heap with total log size.
type FrameReader struct {
	br *bufio.Reader
}

// NewFrameReader wraps r (buffered internally) for frame iteration,
// sized for sequential replay.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// NewFrameReaderSize is NewFrameReader with an explicit buffer size —
// single-frame random reads want a small buffer, not replay's 64 KiB.
func NewFrameReaderSize(r io.Reader, size int) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, size)}
}

// Next returns the next frame's verified raw bytes and the number of
// encoded bytes the frame occupied. It returns io.EOF at a clean frame
// boundary; any other error (including an EOF inside a frame) marks a
// torn or corrupt tail at the current position.
func (fr *FrameReader) Next() (raw []byte, consumed int, err error) {
	head, err := fr.br.ReadByte()
	if err == io.EOF {
		return nil, 0, io.EOF
	}
	if err != nil {
		return nil, 0, err
	}
	head2, err := fr.br.ReadByte()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: torn magic", ErrFrame)
	}
	if head != magic0 || head2 != magic1 {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrFrame)
	}
	codecID, err := fr.br.ReadByte()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: torn header", ErrFrame)
	}
	codec, ok := codecByID[codecID]
	if !ok {
		return nil, 0, fmt.Errorf("%w: unknown codec id %d", ErrFrame, codecID)
	}
	n := 3
	rawLen, rn, err := readUvarint(fr.br)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: bad rawLen", ErrFrame)
	}
	n += rn
	compLen, cn, err := readUvarint(fr.br)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: bad compLen", ErrFrame)
	}
	n += cn
	if rawLen > maxFrameLen || compLen > maxFrameLen {
		return nil, 0, fmt.Errorf("%w: oversized frame", ErrFrame)
	}
	var crc [4]byte
	if _, err := io.ReadFull(fr.br, crc[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated crc", ErrFrame)
	}
	n += 4
	payload := make([]byte, compLen)
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated payload", ErrFrame)
	}
	n += int(compLen)
	raw, err = codec.Decompress(payload)
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(raw)) != rawLen {
		return nil, 0, fmt.Errorf("%w: raw length mismatch", ErrFrame)
	}
	if crc32.ChecksumIEEE(raw) != binary.LittleEndian.Uint32(crc[:]) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrFrame)
	}
	return raw, n, nil
}

// readUvarint reads a uvarint reporting how many bytes it consumed.
func readUvarint(br io.ByteReader) (uint64, int, error) {
	var u uint64
	var shift, n int
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, n, err
		}
		n++
		if shift >= 64 {
			return 0, n, ErrFrame
		}
		u |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return u, n, nil
		}
		shift += 7
	}
}

// DecodeFrame parses and verifies a frame held in memory, returning the
// raw bytes and the total number of frame bytes consumed (frames may be
// concatenated). The returned raw bytes are always an owned copy; use
// DecodeFrameAt when the input slice outlives the call and a view is
// enough.
func DecodeFrame(b []byte) (raw []byte, consumed int, err error) {
	if len(b) == 0 {
		return nil, 0, fmt.Errorf("%w: empty frame", ErrFrame)
	}
	return NewFrameReader(bytes.NewReader(b)).Next()
}

// DecodeFrameAt parses and verifies the frame at the start of b without
// copying the payload when the codec allows it: for uncompressed frames
// the returned raw bytes are a sub-slice of b (the zero-copy path the
// mmap backend reads sealed segments through — the page cache is the
// buffer), for compressed frames the decompression output is the only
// copy. Callers must not retain raw past b's lifetime; the storage layer
// decodes into owned document values before releasing its read lock.
func DecodeFrameAt(b []byte) (raw []byte, consumed int, err error) {
	if len(b) < 3 {
		return nil, 0, fmt.Errorf("%w: torn magic", ErrFrame)
	}
	if b[0] != magic0 || b[1] != magic1 {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrFrame)
	}
	codec, ok := codecByID[b[2]]
	if !ok {
		return nil, 0, fmt.Errorf("%w: unknown codec id %d", ErrFrame, b[2])
	}
	n := 3
	rawLen, rn := binary.Uvarint(b[n:])
	if rn <= 0 {
		return nil, 0, fmt.Errorf("%w: bad rawLen", ErrFrame)
	}
	n += rn
	compLen, cn := binary.Uvarint(b[n:])
	if cn <= 0 {
		return nil, 0, fmt.Errorf("%w: bad compLen", ErrFrame)
	}
	n += cn
	if rawLen > maxFrameLen || compLen > maxFrameLen {
		return nil, 0, fmt.Errorf("%w: oversized frame", ErrFrame)
	}
	if len(b)-n < 4 {
		return nil, 0, fmt.Errorf("%w: truncated crc", ErrFrame)
	}
	crc := binary.LittleEndian.Uint32(b[n:])
	n += 4
	if uint64(len(b)-n) < compLen {
		return nil, 0, fmt.Errorf("%w: truncated payload", ErrFrame)
	}
	payload := b[n : n+int(compLen)]
	n += int(compLen)
	if codec == None {
		raw = payload // zero-copy view into b
	} else if raw, err = codec.Decompress(payload); err != nil {
		return nil, 0, err
	}
	if uint64(len(raw)) != rawLen {
		return nil, 0, fmt.Errorf("%w: raw length mismatch", ErrFrame)
	}
	if crc32.ChecksumIEEE(raw) != crc {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrFrame)
	}
	return raw, n, nil
}
