// Package workload generates the synthetic enterprise corpora the
// experiments run on (DESIGN.md substitution table: the paper's use cases
// assume proprietary CRM transcripts, insurance claims, and legal e-mail
// that we cannot have). Every generator is seeded and deterministic, and
// entity mentions are drawn from the same dictionaries the annotators use,
// so extraction quality is controlled by construction.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"impliance/internal/annot"
	"impliance/internal/docmodel"
)

// Item is one ingest-ready piece of data.
type Item struct {
	Body      docmodel.Value
	MediaType string
	Source    string
}

// Gen is a seeded workload generator.
type Gen struct {
	rng *rand.Rand
}

// New creates a generator with a deterministic seed.
func New(seed int64) *Gen { return &Gen{rng: rand.New(rand.NewSource(seed))} }

// LastNames complements annot.DefaultFirstNames for person generation.
var LastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hopper", "Lovelace", "Turing",
	"Codd", "Gray", "Stonebraker", "Park", "Chen", "Patel", "Kim",
}

// Products is the default product catalog used across scenarios.
var Products = []string{
	"WidgetPro", "GadgetMax", "ThingamaBox", "ServicePlus", "DataVault",
	"CloudSync", "TurboHub", "SmartSensor",
}

var procedures = []string{
	"MRI scan", "X-ray", "physical therapy", "blood panel", "CT scan",
	"ultrasound", "consultation", "surgery",
}

var complaintPhrases = []string{
	"the device is broken and useless, I want a refund",
	"terrible experience, very disappointed with the slow response",
	"awful product, it stopped working after a week, I am angry",
	"this is the worst purchase I have made, cancel my subscription",
}

var praisePhrases = []string{
	"I love the product, it works great and support was excellent",
	"fantastic quality, very happy and satisfied with my purchase",
	"wonderful service, thank you so much, I would recommend it",
	"perfect device, best purchase this year, amazing battery",
}

var neutralPhrases = []string{
	"I called to update my shipping address for the next delivery",
	"please send me the invoice for last month",
	"what are the store opening hours during the holidays",
	"I would like to know the warranty period for my device",
}

var fillerWords = []string{
	"report", "meeting", "quarter", "revenue", "pipeline", "schedule",
	"update", "review", "deadline", "project", "budget", "proposal",
	"inventory", "shipment", "invoice", "contract", "renewal", "audit",
}

// Person returns a deterministic random "First Last" name.
func (g *Gen) Person() string {
	first := annot.DefaultFirstNames[g.rng.Intn(len(annot.DefaultFirstNames))]
	last := LastNames[g.rng.Intn(len(LastNames))]
	return strings.ToUpper(first[:1]) + first[1:] + " " + last
}

// City returns a deterministic random location from the shared dictionary.
func (g *Gen) City() string {
	c := annot.DefaultLocations[g.rng.Intn(len(annot.DefaultLocations))]
	return strings.Title(c)
}

// Zipf returns n ints in [0, max) with Zipf skew s > 1.
func (g *Gen) Zipf(n int, max uint64, s float64) []int64 {
	z := rand.NewZipf(g.rng, s, 1, max-1)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}

// Words returns n space-separated filler words.
func (g *Gen) Words(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fillerWords[g.rng.Intn(len(fillerWords))]
	}
	return strings.Join(parts, " ")
}

// CustomerProfiles generates master-data customer rows: the structured
// side of the CRM use case (§2.1.1).
func (g *Gen) CustomerProfiles(n int) []Item {
	out := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		name := g.Person()
		out = append(out, Item{
			MediaType: "relational/row",
			Source:    "crm-profiles",
			Body: docmodel.Object(
				docmodel.F("customer_id", docmodel.String(fmt.Sprintf("CU-%05d", i+1))),
				docmodel.F("name", docmodel.String(name)),
				docmodel.F("city", docmodel.String(g.City())),
				docmodel.F("segment", docmodel.String([]string{"consumer", "smb", "enterprise"}[g.rng.Intn(3)])),
				docmodel.F("lifetime_value", docmodel.Float(float64(g.rng.Intn(100000))/10)),
				docmodel.F("phone", docmodel.String(fmt.Sprintf("%03d-%03d-%04d",
					200+g.rng.Intn(700), 200+g.rng.Intn(700), g.rng.Intn(10000)))),
			),
		})
	}
	return out
}

// CallTranscripts generates call-center transcripts mentioning the given
// customers (by name) and products, with skewed sentiment: the
// unstructured side of the CRM use case. mentionRate controls how often a
// transcript names a known customer (vs an unknown caller).
func (g *Gen) CallTranscripts(n int, customers []Item, mentionRate float64) []Item {
	out := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		var who string
		if len(customers) > 0 && g.rng.Float64() < mentionRate {
			c := customers[g.rng.Intn(len(customers))]
			who = c.Body.Get("name").StringVal()
		} else {
			who = g.Person()
		}
		product := Products[g.rng.Intn(len(Products))]
		var mood string
		switch g.rng.Intn(3) {
		case 0:
			mood = complaintPhrases[g.rng.Intn(len(complaintPhrases))]
		case 1:
			mood = praisePhrases[g.rng.Intn(len(praisePhrases))]
		default:
			mood = neutralPhrases[g.rng.Intn(len(neutralPhrases))]
		}
		text := fmt.Sprintf("Caller %s about %s: %s. Case %s-%04d, amount due $%d.%02d, callback %03d-%03d-%04d.",
			who, product, mood,
			[]string{"CS", "TK", "RQ"}[g.rng.Intn(3)], g.rng.Intn(10000),
			g.rng.Intn(2000), g.rng.Intn(100),
			200+g.rng.Intn(700), 200+g.rng.Intn(700), g.rng.Intn(10000))
		out = append(out, Item{
			MediaType: "text/plain",
			Source:    "callcenter",
			Body:      docmodel.Object(docmodel.F("text", docmodel.String(text))),
		})
	}
	return out
}

// PurchaseOrders generates orders referencing customer IDs. A fraction
// arrive in an alternate field-naming (as if ingested from spreadsheets
// vs e-mail), exercising schema mapping (§3.2).
func (g *Gen) PurchaseOrders(n int, customers []Item, altShapeRate float64) []Item {
	out := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		custRef := fmt.Sprintf("CU-%05d", g.rng.Intn(maxInt(len(customers), 1))+1)
		product := Products[g.rng.Intn(len(Products))]
		amount := float64(g.rng.Intn(500000)) / 100
		if g.rng.Float64() < altShapeRate {
			out = append(out, Item{
				MediaType: "application/json",
				Source:    "po-mail",
				Body: docmodel.Object(
					docmodel.F("OrderNo", docmodel.Int(int64(100000+i))),
					docmodel.F("CustomerRef", docmodel.String(custRef)),
					docmodel.F("Product", docmodel.String(product)),
					docmodel.F("Amount", docmodel.Float(amount)),
				),
			})
		} else {
			out = append(out, Item{
				MediaType: "relational/row",
				Source:    "po-feed",
				Body: docmodel.Object(
					docmodel.F("order_no", docmodel.Int(int64(100000+i))),
					docmodel.F("customer_ref", docmodel.String(custRef)),
					docmodel.F("product", docmodel.String(product)),
					docmodel.F("amount", docmodel.Float(amount)),
				),
			})
		}
	}
	return out
}

// InsuranceClaims generates claim documents: structured header plus free
// text naming patients, providers and procedures (§2.1.2).
func (g *Gen) InsuranceClaims(n int, fraudRate float64) []Item {
	out := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		patient := g.Person()
		provider := g.Person()
		proc := procedures[g.rng.Intn(len(procedures))]
		amount := 100 + g.rng.Intn(20000)
		fraud := g.rng.Float64() < fraudRate
		desc := fmt.Sprintf("Patient %s was seen by Dr %s for %s in %s. Billed $%d.00.",
			patient, provider, proc, g.City(), amount)
		if fraud {
			// Fraudulent claims repeat the same high-priced procedure.
			desc += fmt.Sprintf(" Additional %s billed at $%d.00 same day.", proc, amount)
		}
		out = append(out, Item{
			MediaType: "application/xml",
			Source:    "claims",
			Body: docmodel.Object(docmodel.F("claim", docmodel.Object(
				docmodel.F("@id", docmodel.String(fmt.Sprintf("CL-%06d", i+1))),
				docmodel.F("patient", docmodel.String(patient)),
				docmodel.F("provider", docmodel.String(provider)),
				docmodel.F("procedure", docmodel.String(proc)),
				docmodel.F("amount", docmodel.Int(int64(amount))),
				docmodel.F("flagged", docmodel.Bool(fraud)),
				docmodel.F("description", docmodel.String(desc)),
			))),
		})
	}
	return out
}

// Emails generates a corporate mail corpus with reply chains and partner
// mentions for the legal-compliance scenario (§2.1.3). Roughly chainRate
// of messages reply to an earlier one.
func (g *Gen) Emails(n int, chainRate float64) []Item {
	out := make([]Item, 0, n)
	people := make([]string, 12)
	for i := range people {
		first := strings.ToLower(strings.Fields(g.Person())[0])
		people[i] = fmt.Sprintf("%s%d@example.com", first, i)
	}
	partners := []string{"Acme Corp", "Globex", "Initech", "Umbrella Holdings"}
	var subjects []string
	for i := 0; i < n; i++ {
		from := people[g.rng.Intn(len(people))]
		to := people[g.rng.Intn(len(people))]
		var subject string
		if len(subjects) > 0 && g.rng.Float64() < chainRate {
			subject = "Re: " + strings.TrimPrefix(subjects[g.rng.Intn(len(subjects))], "Re: ")
		} else {
			subject = fmt.Sprintf("%s contract %s-%04d",
				partners[g.rng.Intn(len(partners))],
				[]string{"MSA", "SOW", "NDA"}[g.rng.Intn(3)], g.rng.Intn(10000))
			subjects = append(subjects, subject)
		}
		body := fmt.Sprintf("Regarding %s. %s. Please review with %s before the renewal. %s.",
			subject, g.Words(6), g.Person(), g.Words(5))
		out = append(out, Item{
			MediaType: "message/rfc822",
			Source:    "mail-archive",
			Body: docmodel.Object(
				docmodel.F("from", docmodel.String(from)),
				docmodel.F("to", docmodel.String(to)),
				docmodel.F("subject", docmodel.String(subject)),
				docmodel.F("body", docmodel.String(body)),
			),
		})
	}
	return out
}

// UniformRows generates flat rows with an integer key in [0, keyMax), a
// category of given cardinality, and padding text — the parametric
// workload for the planner and pushdown experiments.
func (g *Gen) UniformRows(n int, keyMax int64, categories int, padWords int) []Item {
	out := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Item{
			MediaType: "relational/row",
			Source:    "uniform",
			Body: docmodel.Object(
				docmodel.F("k", docmodel.Int(g.rng.Int63n(keyMax))),
				docmodel.F("cat", docmodel.String(fmt.Sprintf("c%02d", g.rng.Intn(categories)))),
				docmodel.F("val", docmodel.Float(g.rng.Float64()*1000)),
				docmodel.F("pad", docmodel.String(g.Words(padWords))),
			),
		})
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
