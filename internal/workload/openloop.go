package workload

import (
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Open-loop load generation (implbench E25). A closed-loop driver —
// N workers, each waiting for its previous call — measures a system
// that can never be offered more than it absorbs: back-pressure slows
// the clients, so overload never happens and p99 looks flat by
// construction. Real traffic is open-loop: arrivals come from the
// outside world on their own schedule, whether or not the appliance is
// keeping up. The generator here produces seeded, deterministic arrival
// schedules (Poisson or Gamma inter-arrivals, Zipfian key skew) and the
// runner fires each operation at its scheduled instant regardless of
// completions, which is exactly what makes goodput-vs-offered-load a
// measurable curve with a knee.

// Arrivals is a seeded arrival-time process: Next returns successive
// inter-arrival gaps whose mean is 1/rate seconds.
type Arrivals struct {
	rng   *rand.Rand
	rate  float64
	shape float64 // 1 = Poisson; <1 burstier, >1 smoother (Gamma)
}

// PoissonArrivals builds the memoryless process: exponential gaps —
// the classic open-system model of many independent clients.
func PoissonArrivals(seed int64, ratePerSec float64) *Arrivals {
	return GammaArrivals(seed, ratePerSec, 1)
}

// GammaArrivals builds a Gamma-renewal process with the given shape:
// the squared coefficient of variation of the gaps is 1/shape, so
// shape < 1 models bursty traffic (batch-y clients), shape > 1 smooth
// paced traffic, shape 1 is Poisson.
func GammaArrivals(seed int64, ratePerSec, shape float64) *Arrivals {
	if ratePerSec <= 0 {
		ratePerSec = 1
	}
	if shape <= 0 {
		shape = 1
	}
	return &Arrivals{rng: rand.New(rand.NewSource(seed)), rate: ratePerSec, shape: shape}
}

// Next draws the next inter-arrival gap.
func (a *Arrivals) Next() time.Duration {
	// Gamma(shape, scale) with scale chosen so the mean gap is 1/rate.
	g := gammaSample(a.rng, a.shape) / (a.shape * a.rate)
	return time.Duration(g * float64(time.Second))
}

// Record materializes the process's arrival offsets over a run of the
// given duration — a recorded trace. Feeding the result to a class's
// Schedule replays exactly these arrivals (trace replay), so two runs
// compare systems under the identical offered load rather than two
// draws of the same distribution. Recording consumes the generator's
// stream, the same way RunOpenLoop would.
func (a *Arrivals) Record(duration time.Duration) []time.Duration {
	var offsets []time.Duration
	for offset := a.Next(); offset <= duration; offset += a.Next() {
		offsets = append(offsets, offset)
	}
	return offsets
}

// gammaSample draws Gamma(shape, 1) via Marsaglia–Tsang, with the
// boost transform for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// LatencyHist is a concurrent log-bucketed latency histogram: bucket i
// counts samples in [2^(i-1), 2^i) microseconds.
type LatencyHist struct {
	buckets [40]atomic.Uint64
	count   atomic.Uint64
	sumUs   atomic.Uint64
}

// Observe records one sample.
func (h *LatencyHist) Observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUs.Add(us)
}

// Count returns how many samples were observed.
func (h *LatencyHist) Count() uint64 { return h.count.Load() }

// Mean returns the average sample.
func (h *LatencyHist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumUs.Load()/n) * time.Microsecond
}

// Quantile estimates the q-th sample by locating its bucket and
// interpolating linearly by rank within the bucket's [2^(i-1), 2^i)
// range, 0 when empty.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		seen += n
		if seen > rank {
			if i == 0 {
				return time.Microsecond
			}
			lo := uint64(1) << uint(i-1)
			frac := float64(rank-(seen-n)+1) / float64(n)
			return time.Duration(float64(lo)*(1+frac)) * time.Microsecond
		}
	}
	return 0
}

// OpenLoopClass is one SLO class's traffic in an open-loop run.
type OpenLoopClass struct {
	// Name labels the class in the report.
	Name string
	// Arrivals schedules the class's operations.
	Arrivals *Arrivals
	// Schedule, when non-nil, replays these recorded arrival offsets
	// instead of drawing from Arrivals (see Arrivals.Record) — trace
	// replay for apples-to-apples comparisons across configurations.
	Schedule []time.Duration
	// SLO is the latency bound that defines goodput for this class: an
	// operation that completes without error within SLO is good.
	SLO time.Duration
	// Op executes the i-th operation. The implementation carries its
	// own key/tenant choice (pre-draw Zipf keys for determinism).
	Op func(i int) error
	// IsReject classifies errors that are admission fast-rejects
	// (counted separately from failures; optional).
	IsReject func(error) bool
}

// OpenLoopReport is one class's outcome.
type OpenLoopReport struct {
	Name     string
	Offered  int // operations fired
	Good     int // completed without error within SLO
	Late     int // completed without error past SLO
	Rejected int // admission fast-rejects
	Failed   int // errors (deadline exceeded, queue full, ...)
	// Goodput is good operations per second of driven wall time.
	Goodput float64
	// Hist holds completed-operation latencies (including late ones);
	// rejects and failures are not latency samples.
	Hist *LatencyHist
}

// RunOpenLoop drives every class's schedule concurrently for the given
// duration and reports per-class outcomes. Operations are fired at
// their scheduled instants regardless of earlier completions (the
// driver never waits on the system under test between arrivals); the
// call returns once every fired operation has come back.
func RunOpenLoop(duration time.Duration, classes ...*OpenLoopClass) []OpenLoopReport {
	reports := make([]OpenLoopReport, len(classes))
	var wg sync.WaitGroup
	for ci, cl := range classes {
		ci, cl := ci, cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ops sync.WaitGroup
			var good, late, rejected, failed atomic.Int64
			hist := &LatencyHist{}
			// A replayed trace and a generated schedule drive the same
			// firing loop: Record materializes exactly the offsets the
			// generator-driven loop used to produce inline, so replaying
			// a recording reproduces the original run's offered load.
			schedule := cl.Schedule
			if schedule == nil {
				schedule = cl.Arrivals.Record(duration)
			}
			start := time.Now()
			offered := 0
			for _, offset := range schedule {
				if d := time.Until(start.Add(offset)); d > 0 {
					time.Sleep(d)
				}
				i := offered
				offered++
				ops.Add(1)
				go func() {
					defer ops.Done()
					t0 := time.Now()
					err := cl.Op(i)
					lat := time.Since(t0)
					switch {
					case err == nil && lat <= cl.SLO:
						good.Add(1)
						hist.Observe(lat)
					case err == nil:
						late.Add(1)
						hist.Observe(lat)
					case cl.IsReject != nil && cl.IsReject(err):
						rejected.Add(1)
					default:
						failed.Add(1)
					}
				}()
			}
			ops.Wait()
			elapsed := time.Since(start).Seconds()
			if elapsed <= 0 {
				elapsed = duration.Seconds()
			}
			reports[ci] = OpenLoopReport{
				Name:     cl.Name,
				Offered:  offered,
				Good:     int(good.Load()),
				Late:     int(late.Load()),
				Rejected: int(rejected.Load()),
				Failed:   int(failed.Load()),
				Goodput:  float64(good.Load()) / elapsed,
				Hist:     hist,
			}
		}()
	}
	wg.Wait()
	return reports
}
