package workload

import (
	"strings"
	"testing"

	"impliance/internal/annot"
	"impliance/internal/docmodel"
)

func TestDeterminism(t *testing.T) {
	a := New(7).CustomerProfiles(10)
	b := New(7).CustomerProfiles(10)
	for i := range a {
		if !a[i].Body.Equal(b[i].Body) {
			t.Fatalf("profile %d differs across same-seed runs", i)
		}
	}
	c := New(8).CustomerProfiles(10)
	same := true
	for i := range a {
		if !a[i].Body.Equal(c[i].Body) {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestCustomerProfilesShape(t *testing.T) {
	profiles := New(1).CustomerProfiles(50)
	if len(profiles) != 50 {
		t.Fatal("count")
	}
	for _, p := range profiles {
		d := &docmodel.Document{Root: p.Body}
		if !strings.HasPrefix(d.First("/customer_id").StringVal(), "CU-") {
			t.Fatal("customer_id shape")
		}
		if len(strings.Fields(d.First("/name").StringVal())) != 2 {
			t.Fatal("name should be First Last")
		}
		if p.Source != "crm-profiles" {
			t.Fatal("source")
		}
	}
}

func TestTranscriptsMentionKnownCustomersAndAreExtractable(t *testing.T) {
	g := New(2)
	profiles := g.CustomerProfiles(20)
	calls := g.CallTranscripts(100, profiles, 1.0)
	ann := annot.NewDefaultEntityAnnotator(Products)
	known := map[string]bool{}
	for _, p := range profiles {
		known[strings.ToLower(p.Body.Get("name").StringVal())] = true
	}
	matched := 0
	for _, c := range calls {
		d := &docmodel.Document{Root: c.Body}
		anns := ann.Annotate(d)
		if len(anns) == 0 {
			continue
		}
		for _, e := range annot.EntitiesFromAnnotation(&docmodel.Document{Root: anns[0]}) {
			if e.Type == "person" && known[e.Norm] {
				matched++
				break
			}
		}
	}
	// With mentionRate=1 and dictionary-seeded names, extraction should
	// recover the customer in the large majority of transcripts.
	if matched < 80 {
		t.Errorf("only %d/100 transcripts yielded a known customer entity", matched)
	}
}

func TestPurchaseOrdersShapes(t *testing.T) {
	g := New(3)
	profiles := g.CustomerProfiles(10)
	orders := g.PurchaseOrders(200, profiles, 0.4)
	alt, std := 0, 0
	for _, o := range orders {
		if o.Body.Has("CustomerRef") {
			alt++
		} else if o.Body.Has("customer_ref") {
			std++
		} else {
			t.Fatal("order without customer reference")
		}
	}
	if alt == 0 || std == 0 {
		t.Errorf("both shapes expected: alt=%d std=%d", alt, std)
	}
	if alt+std != 200 {
		t.Error("count")
	}
}

func TestInsuranceClaimsFraudRate(t *testing.T) {
	claims := New(4).InsuranceClaims(500, 0.2)
	flagged := 0
	for _, c := range claims {
		d := &docmodel.Document{Root: c.Body}
		if d.First("/claim/flagged").BoolVal() {
			flagged++
		}
		if d.First("/claim/@id").StringVal() == "" {
			t.Fatal("claim id missing")
		}
	}
	if flagged < 60 || flagged > 140 {
		t.Errorf("fraud rate off: %d/500", flagged)
	}
}

func TestEmailsChains(t *testing.T) {
	mails := New(5).Emails(200, 0.5)
	replies := 0
	for _, m := range mails {
		if strings.HasPrefix(m.Body.Get("subject").StringVal(), "Re: ") {
			replies++
		}
	}
	if replies < 50 || replies > 150 {
		t.Errorf("reply chain rate off: %d/200", replies)
	}
}

func TestUniformRowsAndZipf(t *testing.T) {
	rows := New(6).UniformRows(100, 1000, 10, 3)
	for _, r := range rows {
		k := r.Body.Get("k").IntVal()
		if k < 0 || k >= 1000 {
			t.Fatal("key out of range")
		}
	}
	z := New(6).Zipf(1000, 100, 1.5)
	low, high := 0, 0
	for _, v := range z {
		if v < 10 {
			low++
		} else {
			high++
		}
	}
	if low <= high {
		t.Errorf("zipf should skew low: low=%d high=%d", low, high)
	}
}
