package workload

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// Same seed, same schedule: the arrival process is deterministic.
func TestArrivalsDeterministic(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 4} {
		a := GammaArrivals(7, 200, shape)
		b := GammaArrivals(7, 200, shape)
		for i := 0; i < 1000; i++ {
			if ga, gb := a.Next(), b.Next(); ga != gb {
				t.Fatalf("shape %v: gap %d diverged: %v vs %v", shape, i, ga, gb)
			}
		}
	}
}

// Mean inter-arrival gap must track 1/rate for every shape.
func TestArrivalsMeanRate(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 4} {
		a := GammaArrivals(42, 1000, shape) // mean gap 1ms
		var sum time.Duration
		const n = 20000
		for i := 0; i < n; i++ {
			sum += a.Next()
		}
		mean := float64(sum) / n / float64(time.Millisecond)
		if math.Abs(mean-1) > 0.08 {
			t.Fatalf("shape %v: mean gap %.3fms, want ~1ms", shape, mean)
		}
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	h := &LatencyHist{}
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	if p50 := h.Quantile(0.5); p50 > time.Millisecond {
		t.Fatalf("p50=%v, want ~128µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 10*time.Millisecond {
		t.Fatalf("p99=%v, want ≥ 32ms bucket", p99)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
}

// The runner fires on schedule, classifies outcomes, and waits for
// every fired op before reporting.
func TestRunOpenLoopClassifies(t *testing.T) {
	rejectErr := errors.New("overloaded")
	failErr := errors.New("deadline")
	reports := RunOpenLoop(300*time.Millisecond,
		&OpenLoopClass{
			Name:     "mixed",
			Arrivals: PoissonArrivals(1, 400),
			SLO:      time.Second,
			Op: func(i int) error {
				switch i % 4 {
				case 0:
					return rejectErr
				case 1:
					return failErr
				default:
					return nil
				}
			},
			IsReject: func(err error) bool { return errors.Is(err, rejectErr) },
		})
	r := reports[0]
	if r.Offered < 50 || r.Offered > 250 {
		t.Fatalf("offered=%d, want ~120 at 400/s over 300ms", r.Offered)
	}
	if r.Good+r.Late+r.Rejected+r.Failed != r.Offered {
		t.Fatalf("outcomes %d+%d+%d+%d don't sum to offered %d", r.Good, r.Late, r.Rejected, r.Failed, r.Offered)
	}
	if r.Rejected == 0 || r.Failed == 0 || r.Good == 0 {
		t.Fatalf("classification missing a bucket: %+v", r)
	}
	if r.Goodput <= 0 {
		t.Fatalf("goodput=%v", r.Goodput)
	}
	if int(r.Hist.Count()) != r.Good+r.Late {
		t.Fatalf("hist samples %d, want %d", r.Hist.Count(), r.Good+r.Late)
	}
}

// Record materializes exactly the offsets the generator would drive
// inline, and a class replaying the recording fires the identical
// arrival count — the trace-replay round trip.
func TestArrivalsRecordReplayRoundTrip(t *testing.T) {
	const dur = 200 * time.Millisecond
	trace := PoissonArrivals(7, 500).Record(dur)
	if len(trace) == 0 {
		t.Fatal("empty recording at 500/s over 200ms")
	}
	// The recording is what the same seed generates step by step.
	gen := PoissonArrivals(7, 500)
	var offset time.Duration
	for i := range trace {
		offset += gen.Next()
		if trace[i] != offset {
			t.Fatalf("trace[%d]=%v, generator says %v", i, trace[i], offset)
		}
	}
	// Replaying the trace offers exactly its arrivals — no draws, no
	// duration cutoff — and both runs see the same offered count as a
	// fresh same-seed generator run.
	var replayFired, genFired atomic.Int64
	RunOpenLoop(dur,
		&OpenLoopClass{
			Name: "replay", Schedule: trace, SLO: time.Second,
			Op: func(int) error { replayFired.Add(1); return nil },
		},
		&OpenLoopClass{
			Name: "generated", Arrivals: PoissonArrivals(7, 500), SLO: time.Second,
			Op: func(int) error { genFired.Add(1); return nil },
		})
	if int(replayFired.Load()) != len(trace) {
		t.Fatalf("replay fired %d ops, trace has %d", replayFired.Load(), len(trace))
	}
	if replayFired.Load() != genFired.Load() {
		t.Fatalf("replay fired %d, same-seed generator fired %d", replayFired.Load(), genFired.Load())
	}
}
