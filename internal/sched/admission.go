package sched

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Admission is the facade's overload gate: a token bucket per
// (class, tenant) key, consulted before any pool dispatch or fabric
// traffic. A rejected request costs one map lookup and returns an
// *OverloadError carrying a retry-after hint, so clients back off with
// information instead of queueing work the appliance cannot finish in
// time.
//
// Time comes from the scheduler Clock, so under the deterministic
// simulator's virtual clock admission decisions are a pure function of
// the call sequence — the property test in admission_test.go pins that
// down.

// ErrOverloaded is the sentinel for admission rejection; match with
// errors.Is. The concrete error is *OverloadError.
var ErrOverloaded = errors.New("sched: overloaded")

// OverloadError reports an admission rejection.
type OverloadError struct {
	Class  Class
	Tenant string
	// RetryAfter estimates when the bucket will hold a token again at
	// the configured refill rate — the backoff hint for clients.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("sched: overloaded (class=%s tenant=%q retry after %v)",
		e.Class, e.Tenant, e.RetryAfter)
}

// Unwrap lets errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// AdmissionConfig sets per-class token rates. A class with Rate 0 is
// not gated.
type AdmissionConfig struct {
	// Clock is the time source (nil = wall clock).
	Clock Clock
	// Rates is tokens/second granted to each (class, tenant) bucket.
	Rates [NumClasses]float64
	// Bursts caps each bucket's accumulated tokens (0 = one second of
	// refill, minimum 1).
	Bursts [NumClasses]float64
}

// AdmissionStats counts decisions per class.
type AdmissionStats struct {
	Admitted [NumClasses]uint64
	Rejected [NumClasses]uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

type bucketKey struct {
	class  Class
	tenant string
}

// maxBuckets bounds tenant-key cardinality; at the cap, stale full
// buckets are discarded (they carry no debt — rebuilding one is free).
const maxBuckets = 8192

// Admission is safe for concurrent use. A nil *Admission admits
// everything (the gate disabled).
type Admission struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	buckets map[bucketKey]*bucket
	stats   AdmissionStats
	// admitted counts admissions per (class, tenant) — the input to the
	// cross-tenant fairness index. Unlike buckets it is never evicted:
	// fairness is judged over the whole run, not the hot set.
	admitted map[bucketKey]uint64
}

// NewAdmission builds the gate.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	for c := range cfg.Bursts {
		if cfg.Bursts[c] <= 0 {
			cfg.Bursts[c] = cfg.Rates[c]
		}
		if cfg.Bursts[c] < 1 {
			cfg.Bursts[c] = 1
		}
	}
	return &Admission{cfg: cfg, buckets: map[bucketKey]*bucket{}, admitted: map[bucketKey]uint64{}}
}

// Admit takes one token for (c, tenant), or rejects with *OverloadError.
func (a *Admission) Admit(c Class, tenant string) error {
	return a.AdmitN(c, tenant, 1)
}

// AdmitN takes n tokens atomically — a batch admits or rejects whole.
func (a *Admission) AdmitN(c Class, tenant string, n int) error {
	if a == nil || n <= 0 {
		return nil
	}
	rate := a.cfg.Rates[c]
	if rate <= 0 {
		return nil
	}
	burst := a.cfg.Bursts[c]
	now := a.cfg.Clock.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	key := bucketKey{class: c, tenant: tenant}
	b := a.buckets[key]
	if b == nil {
		if len(a.buckets) >= maxBuckets {
			a.evictFullLocked()
		}
		b = &bucket{tokens: burst, last: now}
		a.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * rate
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		a.stats.Admitted[c]++
		a.admitted[key] += uint64(n)
		return nil
	}
	a.stats.Rejected[c]++
	retry := time.Duration((need - b.tokens) / rate * float64(time.Second))
	return &OverloadError{Class: c, Tenant: tenant, RetryAfter: retry}
}

// Refund returns n tokens to a bucket (a multi-source batch that
// admitted some sources and then failed another puts the heads back).
func (a *Admission) Refund(c Class, tenant string, n int) {
	if a == nil || n <= 0 || a.cfg.Rates[c] <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if b := a.buckets[bucketKey{class: c, tenant: tenant}]; b != nil {
		b.tokens += float64(n)
		if b.tokens > a.cfg.Bursts[c] {
			b.tokens = a.cfg.Bursts[c]
		}
	}
}

// evictFullLocked drops buckets whose tokens are at burst — tenants not
// seen for at least a full refill period.
func (a *Admission) evictFullLocked() {
	for k, b := range a.buckets {
		if dt := a.cfg.Clock.Now().Sub(b.last).Seconds(); b.tokens+dt*a.cfg.Rates[k.class] >= a.cfg.Bursts[k.class] {
			delete(a.buckets, k)
		}
	}
}

// Stats snapshots admission decisions.
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// TenantAdmitted snapshots admitted operations per tenant for one
// class's buckets.
func (a *Admission) TenantAdmitted(c Class) map[string]uint64 {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := map[string]uint64{}
	for k, n := range a.admitted {
		if k.class == c {
			out[k.tenant] = n
		}
	}
	return out
}

// FairnessIndex is Jain's fairness index over the interactive class's
// per-tenant admitted counts: (Σx)² / (n·Σx²). It is 1.0 when every
// tenant got the same share and 1/n when one tenant took everything.
// The interactive buckets are the *tenant* buckets (ingest buckets are
// keyed by source, a different population); an ungated or
// single-tenant gate is vacuously fair (1.0) — the index only means
// something when distinct tenants competed for tokens.
func (a *Admission) FairnessIndex() float64 {
	if a == nil {
		return 1.0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var sum, sumSq float64
	n := 0
	for k, x := range a.admitted {
		if k.class != Interactive || x == 0 {
			continue
		}
		f := float64(x)
		sum += f
		sumSq += f * f
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1.0
	}
	return sum * sum / (float64(n) * sumSq)
}
