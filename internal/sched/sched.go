// Package sched implements Impliance's execution management: assigning
// operators to node kinds and interleaving long-running background
// analysis with latency-sensitive interactive queries.
//
// Placement follows paper §3.3: "the scheduler assigns operators to
// compute nodes based on which operators execute more efficiently — or
// with greater scalability — on a particular node type"; because the
// appliance knows its own operators and nodes, the mapping is static
// knowledge, not a tuning knob. Interleaving follows §3.4: "scheduling
// prioritized tasks, i.e., managing queues of long-running analysis tasks
// and properly interleaving these analysis tasks with the execution of
// queries with more stringent response-time requirements."
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"impliance/internal/fabric"
)

// TaskKind classifies the work being placed.
type TaskKind uint8

// Task kinds the appliance schedules.
const (
	TaskScan          TaskKind = iota // storage-local scans and index probes
	TaskIndexSearch                   // full-text / value index search
	TaskIntraAnalysis                 // per-document annotators
	TaskJoin                          // joins
	TaskSort                          // sorts
	TaskAgg                           // aggregation merge phases
	TaskInterAnalysis                 // cross-document discovery
	TaskPersist                       // persisting discovered structures
	TaskCoordinate                    // locking / consistency decisions
)

var taskNames = [...]string{
	"scan", "index-search", "intra-analysis", "join", "sort", "agg",
	"inter-analysis", "persist", "coordinate",
}

// String names the task kind.
func (k TaskKind) String() string {
	if int(k) < len(taskNames) {
		return taskNames[k]
	}
	return "task?"
}

// PreferredNodeKind returns the node flavor each task kind runs best on —
// the affinity table of paper §3.3's example query flow (index search on
// data nodes → join/sort/aggregate on grid nodes → consistent updates on
// cluster nodes).
func PreferredNodeKind(k TaskKind) fabric.NodeKind {
	switch k {
	case TaskScan, TaskIndexSearch, TaskIntraAnalysis:
		return fabric.Data
	case TaskJoin, TaskSort, TaskAgg, TaskInterAnalysis:
		return fabric.Grid
	case TaskPersist, TaskCoordinate:
		return fabric.Cluster
	default:
		return fabric.Grid
	}
}

// ErrNoNodes is returned when no alive node can host a task.
var ErrNoNodes = errors.New("sched: no alive nodes")

// Clock abstracts the scheduler's time source. The wall clock is the
// default; the deterministic simulator (fabric/sim) provides a virtual
// clock so simulated runs mint reproducible timestamps and measure
// queue waits in virtual time.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// RealClock returns the wall-clock time source.
func RealClock() Clock { return realClock{} }

// Placer chooses a node for a task.
type Placer interface {
	Place(k TaskKind) (fabric.NodeID, error)
}

// DataRouter is the scheduler's view of the storage partition ring: the
// data node that owns a routing key. The virtualization layer's partition
// map implements it, so placers can co-locate document-keyed work
// (storage-local scans, index probes, per-document annotators) with the
// document's partition instead of spraying it across the kind.
type DataRouter interface {
	OwnerForKey(key uint64) (fabric.NodeID, bool)
}

// KeyedPlacer extends Placer with data-affine placement for work that is
// keyed to a document or partition.
type KeyedPlacer interface {
	Placer
	PlaceKeyed(k TaskKind, key uint64) (fabric.NodeID, error)
}

// AffinityPlacer places tasks on their preferred node kind, round-robin
// over alive nodes, falling back to any alive node when the preferred
// kind has none (paper §3.3: "for better resource utilization, each
// operation could be executed on any of the node types").
type AffinityPlacer struct {
	f  fabric.Transport
	mu sync.Mutex
	rr map[fabric.NodeKind]int
	// router, when set, routes storage-local keyed tasks to the data node
	// owning the key's partition.
	router DataRouter
	// Fallbacks counts placements that missed their preferred kind.
	Fallbacks atomic.Uint64
}

// NewAffinityPlacer creates the placer over a transport.
func NewAffinityPlacer(f fabric.Transport) *AffinityPlacer {
	return &AffinityPlacer{f: f, rr: map[fabric.NodeKind]int{}}
}

// SetRouter installs the partition ring consulted by PlaceKeyed.
func (p *AffinityPlacer) SetRouter(r DataRouter) {
	p.mu.Lock()
	p.router = r
	p.mu.Unlock()
}

// PlaceKeyed implements KeyedPlacer: storage-local task kinds go to the
// alive data node owning the key's partition; everything else (and any
// miss) falls back to kind-affine placement.
func (p *AffinityPlacer) PlaceKeyed(k TaskKind, key uint64) (fabric.NodeID, error) {
	if PreferredNodeKind(k) == fabric.Data {
		p.mu.Lock()
		r := p.router
		p.mu.Unlock()
		if r != nil {
			if id, ok := r.OwnerForKey(key); ok {
				if n, up := p.f.Node(id); up && n.Alive() {
					return id, nil
				}
			}
		}
	}
	return p.Place(k)
}

// Place implements Placer.
func (p *AffinityPlacer) Place(k TaskKind) (fabric.NodeID, error) {
	pref := PreferredNodeKind(k)
	if id, ok := p.pick(pref); ok {
		return id, nil
	}
	p.Fallbacks.Add(1)
	for _, kind := range []fabric.NodeKind{fabric.Grid, fabric.Data, fabric.Cluster} {
		if kind == pref {
			continue
		}
		if id, ok := p.pick(kind); ok {
			return id, nil
		}
	}
	return fabric.NodeID{}, ErrNoNodes
}

func (p *AffinityPlacer) pick(kind fabric.NodeKind) (fabric.NodeID, bool) {
	alive := p.f.AliveOf(kind)
	if len(alive) == 0 {
		return fabric.NodeID{}, false
	}
	p.mu.Lock()
	i := p.rr[kind] % len(alive)
	p.rr[kind]++
	p.mu.Unlock()
	return alive[i], true
}

// RandomPlacer ignores affinity entirely — the E5 ablation: operators land
// on uniformly random alive nodes.
type RandomPlacer struct {
	f   fabric.Transport
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandomPlacer creates the ablation placer with a deterministic seed.
func NewRandomPlacer(f fabric.Transport, seed int64) *RandomPlacer {
	return &RandomPlacer{f: f, rng: rand.New(rand.NewSource(seed))}
}

// PlaceKeyed implements KeyedPlacer. The ablation ignores the ring the
// same way it ignores kind affinity.
func (p *RandomPlacer) PlaceKeyed(k TaskKind, _ uint64) (fabric.NodeID, error) { return p.Place(k) }

// Place implements Placer.
func (p *RandomPlacer) Place(TaskKind) (fabric.NodeID, error) {
	var all []fabric.NodeID
	for _, kind := range []fabric.NodeKind{fabric.Data, fabric.Grid, fabric.Cluster} {
		all = append(all, p.f.AliveOf(kind)...)
	}
	if len(all) == 0 {
		return fabric.NodeID{}, ErrNoNodes
	}
	p.mu.Lock()
	id := all[p.rng.Intn(len(all))]
	p.mu.Unlock()
	return id, nil
}

// Priority separates latency-sensitive from background work.
type Priority uint8

// Priorities.
const (
	Interactive Priority = iota
	Background
)

// QueueStats reports wait-time accounting for one priority class.
type QueueStats struct {
	Tasks     uint64
	TotalWait time.Duration
	MaxWait   time.Duration
}

// MeanWait returns the average queue wait.
func (qs QueueStats) MeanWait() time.Duration {
	if qs.Tasks == 0 {
		return 0
	}
	return qs.TotalWait / time.Duration(qs.Tasks)
}

// Pool executes submitted tasks on a fixed worker set. In priority mode
// (the Impliance design) workers always prefer interactive tasks; in FIFO
// mode (the E11 ablation) all tasks share one queue.
type Pool struct {
	fifo    bool
	workers int
	clock   Clock

	interactive chan poolTask
	background  chan poolTask
	single      chan poolTask
	quit        chan struct{}
	wg          sync.WaitGroup

	mu     sync.Mutex
	stats  map[Priority]*QueueStats
	closed bool

	drainMu sync.Mutex // serializes Drain barriers (two batches would interleave and park all workers)

	// Pause gate (see Pause): workers hold here between tasks while a
	// deterministic driver acts alone.
	pauseMu   sync.Mutex
	paused    bool
	pauseCond *sync.Cond
}

type poolTask struct {
	fn       func()
	pr       Priority
	enqueued time.Time
	done     chan time.Duration // closed after run; receives queue wait
}

// NewPool starts workers. fifo=true disables priority interleaving.
func NewPool(workers int, fifo bool) *Pool {
	if workers <= 0 {
		workers = 1
	}
	p := &Pool{
		fifo:        fifo,
		workers:     workers,
		clock:       realClock{},
		interactive: make(chan poolTask, 4096),
		background:  make(chan poolTask, 65536),
		single:      make(chan poolTask, 65536),
		quit:        make(chan struct{}),
		stats: map[Priority]*QueueStats{
			Interactive: {},
			Background:  {},
		},
	}
	p.pauseCond = sync.NewCond(&p.pauseMu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Pause holds workers between tasks: any task already running finishes,
// but nothing new starts until Resume. Deterministic simulation drivers
// use the gate to act alone — membership ticks and scripted faults must
// not interleave with background catch-up work, or the virtual-time
// schedule stops being a pure function of the seed. Pair every Pause
// with a Resume before any Drain or Close.
func (p *Pool) Pause() {
	p.pauseMu.Lock()
	p.paused = true
	p.pauseMu.Unlock()
}

// Resume releases workers held by Pause.
func (p *Pool) Resume() {
	p.pauseMu.Lock()
	p.paused = false
	p.pauseMu.Unlock()
	p.pauseCond.Broadcast()
}

// gateWait blocks while the pool is paused; Close lifts the gate so a
// racing shutdown cannot strand workers.
func (p *Pool) gateWait() {
	p.pauseMu.Lock()
	for p.paused {
		p.pauseCond.Wait()
	}
	p.pauseMu.Unlock()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.gateWait()
		if p.fifo {
			select {
			case t := <-p.single:
				p.run(t)
			case <-p.quit:
				return
			}
			continue
		}
		// Priority mode: drain interactive first.
		select {
		case t := <-p.interactive:
			p.run(t)
			continue
		default:
		}
		select {
		case t := <-p.interactive:
			p.run(t)
		case t := <-p.background:
			p.run(t)
		case <-p.quit:
			return
		}
	}
}

// SetClock replaces the pool's time source for queue-wait accounting.
// Call it before submitting work (the simulator installs its virtual
// clock right after constructing the pool).
func (p *Pool) SetClock(c Clock) {
	p.mu.Lock()
	if c != nil {
		p.clock = c
	}
	p.mu.Unlock()
}

func (p *Pool) now() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clock.Now()
}

func (p *Pool) run(t poolTask) {
	wait := p.now().Sub(t.enqueued)
	if wait < 0 {
		wait = 0
	}
	p.mu.Lock()
	st := p.stats[t.pr]
	st.Tasks++
	st.TotalWait += wait
	if wait > st.MaxWait {
		st.MaxWait = wait
	}
	p.mu.Unlock()
	t.fn()
	if t.done != nil {
		t.done <- wait
		close(t.done)
	}
}

// Submit enqueues a task; it returns false if the pool is closed.
func (p *Pool) Submit(pr Priority, fn func()) bool {
	return p.submit(poolTask{fn: fn, pr: pr, enqueued: p.now()})
}

// SubmitWait enqueues a task, blocks until it has run, and returns the
// time it spent queued (the latency experiments' measurement).
func (p *Pool) SubmitWait(pr Priority, fn func()) (time.Duration, error) {
	done := make(chan time.Duration, 1)
	if !p.submit(poolTask{fn: fn, pr: pr, enqueued: p.now(), done: done}) {
		return 0, fmt.Errorf("sched: pool closed")
	}
	return <-done, nil
}

func (p *Pool) submit(t poolTask) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	p.mu.Unlock()
	if p.fifo {
		select {
		case p.single <- t:
			return true
		case <-p.quit:
			return false
		}
	}
	var q chan poolTask
	if t.pr == Interactive {
		q = p.interactive
	} else {
		q = p.background
	}
	select {
	case q <- t:
		return true
	case <-p.quit:
		return false
	}
}

// Stats snapshots the per-priority queue accounting.
func (p *Pool) Stats(pr Priority) QueueStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return *p.stats[pr]
}

// Backlog returns the number of queued-but-unstarted tasks.
func (p *Pool) Backlog() int {
	if p.fifo {
		return len(p.single)
	}
	return len(p.interactive) + len(p.background)
}

// Drain blocks until all queued tasks at the time of the call have
// started and finished. Queued==0 does not mean running==0, so it then
// parks one barrier sentinel on every worker: once all sentinels have
// arrived, every previously started task has finished. The rendezvous
// aborts on Close (quit), so a racing shutdown can neither strand parked
// workers nor hang this call. It is a test/experiment convenience, not a
// production barrier.
func (p *Pool) Drain() {
	p.drainMu.Lock()
	defer p.drainMu.Unlock()
	for p.Backlog() > 0 {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return // queued tasks are abandoned at Close; nothing to fence
		}
		time.Sleep(time.Millisecond)
	}
	arrived := make(chan struct{}, p.workers)
	release := make(chan struct{})
	pending := 0
	for i := 0; i < p.workers; i++ {
		ok := p.Submit(Background, func() {
			arrived <- struct{}{}
			select {
			case <-release:
			case <-p.quit:
			}
		})
		if ok {
			pending++
		}
	}
	for got := 0; got < pending; got++ {
		select {
		case <-arrived:
		case <-p.quit: // shutdown: queued sentinels may never run
			close(release)
			return
		}
	}
	close(release)
}

// Close stops the workers after the current tasks finish. Queued tasks
// are abandoned.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.quit)
	p.Resume() // lift a standing pause so workers can observe quit
	p.wg.Wait()
}
