// Package sched implements Impliance's execution management: assigning
// operators to node kinds and interleaving long-running background
// analysis with latency-sensitive interactive queries.
//
// Placement follows paper §3.3: "the scheduler assigns operators to
// compute nodes based on which operators execute more efficiently — or
// with greater scalability — on a particular node type"; because the
// appliance knows its own operators and nodes, the mapping is static
// knowledge, not a tuning knob. Interleaving follows §3.4: "scheduling
// prioritized tasks, i.e., managing queues of long-running analysis tasks
// and properly interleaving these analysis tasks with the execution of
// queries with more stringent response-time requirements."
package sched

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"impliance/internal/fabric"
)

// TaskKind classifies the work being placed.
type TaskKind uint8

// Task kinds the appliance schedules.
const (
	TaskScan          TaskKind = iota // storage-local scans and index probes
	TaskIndexSearch                   // full-text / value index search
	TaskIntraAnalysis                 // per-document annotators
	TaskJoin                          // joins
	TaskSort                          // sorts
	TaskAgg                           // aggregation merge phases
	TaskInterAnalysis                 // cross-document discovery
	TaskPersist                       // persisting discovered structures
	TaskCoordinate                    // locking / consistency decisions
)

var taskNames = [...]string{
	"scan", "index-search", "intra-analysis", "join", "sort", "agg",
	"inter-analysis", "persist", "coordinate",
}

// String names the task kind.
func (k TaskKind) String() string {
	if int(k) < len(taskNames) {
		return taskNames[k]
	}
	return "task?"
}

// PreferredNodeKind returns the node flavor each task kind runs best on —
// the affinity table of paper §3.3's example query flow (index search on
// data nodes → join/sort/aggregate on grid nodes → consistent updates on
// cluster nodes).
func PreferredNodeKind(k TaskKind) fabric.NodeKind {
	switch k {
	case TaskScan, TaskIndexSearch, TaskIntraAnalysis:
		return fabric.Data
	case TaskJoin, TaskSort, TaskAgg, TaskInterAnalysis:
		return fabric.Grid
	case TaskPersist, TaskCoordinate:
		return fabric.Cluster
	default:
		return fabric.Grid
	}
}

// ErrNoNodes is returned when no alive node can host a task.
var ErrNoNodes = errors.New("sched: no alive nodes")

// Clock abstracts the scheduler's time source. The wall clock is the
// default; the deterministic simulator (fabric/sim) provides a virtual
// clock so simulated runs mint reproducible timestamps and measure
// queue waits in virtual time.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// RealClock returns the wall-clock time source.
func RealClock() Clock { return realClock{} }

// Placer chooses a node for a task.
type Placer interface {
	Place(k TaskKind) (fabric.NodeID, error)
}

// DataRouter is the scheduler's view of the storage partition ring: the
// data node that owns a routing key. The virtualization layer's partition
// map implements it, so placers can co-locate document-keyed work
// (storage-local scans, index probes, per-document annotators) with the
// document's partition instead of spraying it across the kind.
type DataRouter interface {
	OwnerForKey(key uint64) (fabric.NodeID, bool)
}

// KeyedPlacer extends Placer with data-affine placement for work that is
// keyed to a document or partition.
type KeyedPlacer interface {
	Placer
	PlaceKeyed(k TaskKind, key uint64) (fabric.NodeID, error)
}

// AffinityPlacer places tasks on their preferred node kind, round-robin
// over alive nodes, falling back to any alive node when the preferred
// kind has none (paper §3.3: "for better resource utilization, each
// operation could be executed on any of the node types").
type AffinityPlacer struct {
	f  fabric.Transport
	mu sync.Mutex
	rr map[fabric.NodeKind]int
	// router, when set, routes storage-local keyed tasks to the data node
	// owning the key's partition.
	router DataRouter
	// Fallbacks counts placements that missed their preferred kind.
	Fallbacks atomic.Uint64
}

// NewAffinityPlacer creates the placer over a transport.
func NewAffinityPlacer(f fabric.Transport) *AffinityPlacer {
	return &AffinityPlacer{f: f, rr: map[fabric.NodeKind]int{}}
}

// SetRouter installs the partition ring consulted by PlaceKeyed.
func (p *AffinityPlacer) SetRouter(r DataRouter) {
	p.mu.Lock()
	p.router = r
	p.mu.Unlock()
}

// PlaceKeyed implements KeyedPlacer: storage-local task kinds go to the
// alive data node owning the key's partition; everything else (and any
// miss) falls back to kind-affine placement.
func (p *AffinityPlacer) PlaceKeyed(k TaskKind, key uint64) (fabric.NodeID, error) {
	if PreferredNodeKind(k) == fabric.Data {
		p.mu.Lock()
		r := p.router
		p.mu.Unlock()
		if r != nil {
			if id, ok := r.OwnerForKey(key); ok {
				if n, up := p.f.Node(id); up && n.Alive() {
					return id, nil
				}
			}
		}
	}
	return p.Place(k)
}

// Place implements Placer.
func (p *AffinityPlacer) Place(k TaskKind) (fabric.NodeID, error) {
	pref := PreferredNodeKind(k)
	if id, ok := p.pick(pref); ok {
		return id, nil
	}
	p.Fallbacks.Add(1)
	for _, kind := range []fabric.NodeKind{fabric.Grid, fabric.Data, fabric.Cluster} {
		if kind == pref {
			continue
		}
		if id, ok := p.pick(kind); ok {
			return id, nil
		}
	}
	return fabric.NodeID{}, ErrNoNodes
}

func (p *AffinityPlacer) pick(kind fabric.NodeKind) (fabric.NodeID, bool) {
	alive := p.f.AliveOf(kind)
	if len(alive) == 0 {
		return fabric.NodeID{}, false
	}
	p.mu.Lock()
	i := p.rr[kind] % len(alive)
	p.rr[kind]++
	p.mu.Unlock()
	return alive[i], true
}

// RandomPlacer ignores affinity entirely — the E5 ablation: operators land
// on uniformly random alive nodes.
type RandomPlacer struct {
	f   fabric.Transport
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandomPlacer creates the ablation placer with a deterministic seed.
func NewRandomPlacer(f fabric.Transport, seed int64) *RandomPlacer {
	return &RandomPlacer{f: f, rng: rand.New(rand.NewSource(seed))}
}

// PlaceKeyed implements KeyedPlacer. The ablation ignores the ring the
// same way it ignores kind affinity.
func (p *RandomPlacer) PlaceKeyed(k TaskKind, _ uint64) (fabric.NodeID, error) { return p.Place(k) }

// Place implements Placer.
func (p *RandomPlacer) Place(TaskKind) (fabric.NodeID, error) {
	var all []fabric.NodeID
	for _, kind := range []fabric.NodeKind{fabric.Data, fabric.Grid, fabric.Cluster} {
		all = append(all, p.f.AliveOf(kind)...)
	}
	if len(all) == 0 {
		return fabric.NodeID{}, ErrNoNodes
	}
	p.mu.Lock()
	id := all[p.rng.Intn(len(all))]
	p.mu.Unlock()
	return id, nil
}

// Class is the SLO class of submitted pool work. It separates
// latency-sensitive query work (Interactive) from deferrable analysis
// (Background) and from work whose loss would violate the appliance's
// write guarantees (Durability: replication, catch-up, repair).
type Class uint8

// SLO classes.
const (
	Interactive Class = iota
	Background
	Durability

	// NumClasses sizes per-class arrays.
	NumClasses = 3
)

// Priority is the pre-class name for Class, kept for older call sites.
type Priority = Class

var classNames = [NumClasses]string{"interactive", "background", "durability"}

// String names the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// Classes lists every class in scheduling order (metrics iteration).
func Classes() [NumClasses]Class { return [NumClasses]Class{Interactive, Background, Durability} }

// Weights are the deficit-round-robin quanta, in tasks per rotation,
// indexed by Class. A class with backlog is guaranteed its quantum out
// of every rotation's total, so no class can be starved and no class
// can claim more than its share while others have work waiting.
type Weights [NumClasses]int

// DefaultWeights is the appliance policy: interactive work dominates a
// contended pool without monopolizing it, durability work (replication,
// catch-up) outranks deferrable analysis, and background analysis is
// guaranteed forward progress.
func DefaultWeights() Weights {
	return Weights{Interactive: 16, Background: 1, Durability: 4}
}

func (w Weights) normalized() Weights {
	d := DefaultWeights()
	for c := range w {
		if w[c] <= 0 {
			w[c] = d[c]
		}
	}
	return w
}

// Pool errors.
var (
	// ErrPoolClosed is returned for submissions after Close.
	ErrPoolClosed = errors.New("sched: pool closed")
	// ErrQueueFull is returned when a class queue is saturated — the
	// caller (or the admission layer above it) distinguishes "shed by
	// policy" (ErrShed, ErrOverloaded) from "queue saturated".
	ErrQueueFull = errors.New("sched: queue full")
	// ErrShed is returned/reported when a task is dropped because its
	// caller's ctx was already dead — at submit time or at dequeue.
	ErrShed = errors.New("sched: task shed")
)

// QueueStats reports accounting for one SLO class.
type QueueStats struct {
	Tasks     uint64 // tasks executed
	TotalWait time.Duration
	MaxWait   time.Duration

	// Shed accounting: tasks dropped because the caller's ctx was dead
	// at submit time / at dequeue, and tasks rejected because the class
	// queue was full.
	ShedAtSubmit  uint64
	ShedAtDequeue uint64
	RejectedFull  uint64

	// Depth is the instantaneous queued-but-unstarted count.
	Depth int

	// Wait-time distribution of executed tasks (log-bucketed histogram
	// upper bounds, resolution 2×).
	WaitP50 time.Duration
	WaitP99 time.Duration
}

// MeanWait returns the average queue wait.
func (qs QueueStats) MeanWait() time.Duration {
	if qs.Tasks == 0 {
		return 0
	}
	return qs.TotalWait / time.Duration(qs.Tasks)
}

// waitHist is a log-bucketed wait-time histogram: bucket i counts waits
// in [2^(i-1), 2^i) microseconds (bucket 0 is <1µs).
type waitHist struct {
	buckets [40]uint64
	count   uint64
}

func (h *waitHist) observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us) // 0 for 0µs
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.count++
}

// quantile returns the upper bound of the bucket holding the q-th
// sample (2^i µs), 0 when empty.
func (h *waitHist) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen > rank {
			if i == 0 {
				return time.Microsecond
			}
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return 0
}

// Task is one unit of pool work.
type Task struct {
	// Class is the task's SLO class (default Interactive — the zero
	// value fails safe toward latency, not loss).
	Class Class
	// Run executes the work.
	Run func()
	// Ctx, when set, is the caller's request lifecycle: a task whose
	// ctx is already dead is rejected at submit time and shed (counted,
	// not executed) at dequeue. Durability tasks ignore it — work the
	// write path promised must run even after the caller gave up.
	Ctx context.Context
	// OnShed, when set, is invoked instead of Run if the task is shed
	// at dequeue, so producers (streaming cursors) can settle their
	// consumers. It is not called for submit-time rejections — the
	// submitter already has the error in hand.
	OnShed func(error)
}

type poolTask struct {
	fn       func()
	class    Class
	ctx      context.Context
	onShed   func(error)
	enqueued time.Time
	done     chan time.Duration // closed after run; receives queue wait
}

// PoolConfig sizes a pool beyond the NewPool defaults.
type PoolConfig struct {
	Workers int
	// FIFO disables class scheduling: one shared queue (E11/E25
	// ablation).
	FIFO bool
	// Weights overrides the per-class DRR quanta (zero entries take
	// defaults).
	Weights Weights
	// QueueCap overrides per-class queue capacities (zero entries take
	// defaults: 4096 interactive, 65536 background/durability).
	QueueCap [NumClasses]int
}

// Pool executes submitted tasks on a fixed worker set. In class mode
// (the Impliance design) workers pick the next task by weighted deficit
// round-robin across SLO classes — preemption happens at task
// boundaries, so a background flood cannot hold workers once its
// quantum is spent. In FIFO mode (the ablation) all tasks share one
// queue.
type Pool struct {
	fifo    bool
	workers int
	clock   Clock

	queues [NumClasses]chan poolTask
	single chan poolTask
	quit   chan struct{}
	wg     sync.WaitGroup

	// DRR state: cur is the class currently spending its quantum;
	// credits[cur] is what remains of it. Rotating to a class refills
	// its quantum.
	schedMu sync.Mutex
	weights Weights
	credits [NumClasses]int
	cur     Class

	depth [NumClasses]atomic.Int64

	mu     sync.Mutex
	stats  [NumClasses]*QueueStats
	hists  [NumClasses]*waitHist
	closed bool

	drainMu sync.Mutex // serializes Drain barriers (two batches would interleave and park all workers)

	// Pause gate (see Pause): workers hold here between tasks while a
	// deterministic driver acts alone.
	pauseMu   sync.Mutex
	paused    bool
	pauseCond *sync.Cond
}

// NewPool starts workers with default queue sizing and weights.
// fifo=true disables class scheduling.
func NewPool(workers int, fifo bool) *Pool {
	return NewPoolConfig(PoolConfig{Workers: workers, FIFO: fifo})
}

// NewPoolConfig starts workers with explicit sizing.
func NewPoolConfig(cfg PoolConfig) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	caps := cfg.QueueCap
	defCaps := [NumClasses]int{Interactive: 4096, Background: 65536, Durability: 65536}
	for c := range caps {
		if caps[c] <= 0 {
			caps[c] = defCaps[c]
		}
	}
	p := &Pool{
		fifo:    cfg.FIFO,
		workers: cfg.Workers,
		clock:   realClock{},
		single:  make(chan poolTask, 65536),
		quit:    make(chan struct{}),
		weights: cfg.Weights.normalized(),
	}
	for c := range p.queues {
		p.queues[c] = make(chan poolTask, caps[c])
		p.stats[c] = &QueueStats{}
		p.hists[c] = &waitHist{}
	}
	p.cur = Interactive
	p.credits[Interactive] = p.weights[Interactive]
	p.pauseCond = sync.NewCond(&p.pauseMu)
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Pause holds workers between tasks: any task already running finishes,
// but nothing new starts until Resume. Deterministic simulation drivers
// use the gate to act alone — membership ticks and scripted faults must
// not interleave with background catch-up work, or the virtual-time
// schedule stops being a pure function of the seed. Pair every Pause
// with a Resume before any Drain or Close.
func (p *Pool) Pause() {
	p.pauseMu.Lock()
	p.paused = true
	p.pauseMu.Unlock()
}

// Resume releases workers held by Pause.
func (p *Pool) Resume() {
	p.pauseMu.Lock()
	p.paused = false
	p.pauseMu.Unlock()
	p.pauseCond.Broadcast()
}

// gateWait blocks while the pool is paused; Close lifts the gate so a
// racing shutdown cannot strand workers.
func (p *Pool) gateWait() {
	p.pauseMu.Lock()
	for p.paused {
		p.pauseCond.Wait()
	}
	p.pauseMu.Unlock()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.gateWait()
		t, ok := p.take()
		if !ok {
			return
		}
		p.run(t)
	}
}

// take returns the next task under the scheduling policy, blocking
// until one arrives or the pool quits.
func (p *Pool) take() (poolTask, bool) {
	if p.fifo {
		select {
		case t := <-p.single:
			return t, true
		case <-p.quit:
			return poolTask{}, false
		}
	}
	for {
		if t, ok := p.pickWeighted(); ok {
			return t, true
		}
		// Every queue was empty at scan time: block until anything
		// arrives, charging whichever class it belongs to.
		select {
		case t := <-p.queues[Interactive]:
			p.charge(Interactive)
			return t, true
		case t := <-p.queues[Background]:
			p.charge(Background)
			return t, true
		case t := <-p.queues[Durability]:
			p.charge(Durability)
			return t, true
		case <-p.quit:
			return poolTask{}, false
		}
	}
}

// pickWeighted is one deficit-round-robin scheduling decision: serve
// the current class while its quantum lasts and its queue has work;
// rotating to the next class refills that class's quantum. At most one
// full rotation — if every queue is empty the caller blocks instead of
// spinning.
func (p *Pool) pickWeighted() (poolTask, bool) {
	p.schedMu.Lock()
	defer p.schedMu.Unlock()
	for i := 0; i < NumClasses; i++ {
		c := p.cur
		if p.credits[c] > 0 {
			select {
			case t := <-p.queues[c]:
				p.credits[c]--
				return t, true
			default:
			}
		}
		p.cur = (p.cur + 1) % NumClasses
		p.credits[p.cur] = p.weights[p.cur]
	}
	return poolTask{}, false
}

// charge decrements a class's quantum for a task taken on the blocking
// path (queues were empty; the select picked the arrival directly).
func (p *Pool) charge(c Class) {
	p.schedMu.Lock()
	if p.cur == c && p.credits[c] > 0 {
		p.credits[c]--
	}
	p.schedMu.Unlock()
}

// SetClock replaces the pool's time source for queue-wait accounting.
// Call it before submitting work (the simulator installs its virtual
// clock right after constructing the pool).
func (p *Pool) SetClock(c Clock) {
	p.mu.Lock()
	if c != nil {
		p.clock = c
	}
	p.mu.Unlock()
}

func (p *Pool) now() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clock.Now()
}

func (p *Pool) run(t poolTask) {
	wait := p.now().Sub(t.enqueued)
	if wait < 0 {
		wait = 0
	}
	p.depth[t.class].Add(-1)
	// Deadline shedding: a queued task whose caller already gave up is
	// dropped, not executed — except durability work, which the write
	// path promised regardless of any caller's lifetime.
	if t.ctx != nil && t.class != Durability && t.ctx.Err() != nil {
		p.mu.Lock()
		p.stats[t.class].ShedAtDequeue++
		p.mu.Unlock()
		if t.onShed != nil {
			t.onShed(fmt.Errorf("%w at dequeue: %w", ErrShed, t.ctx.Err()))
		}
		if t.done != nil {
			t.done <- wait
			close(t.done)
		}
		return
	}
	p.mu.Lock()
	st := p.stats[t.class]
	st.Tasks++
	st.TotalWait += wait
	if wait > st.MaxWait {
		st.MaxWait = wait
	}
	p.hists[t.class].observe(wait)
	p.mu.Unlock()
	t.fn()
	if t.done != nil {
		t.done <- wait
		close(t.done)
	}
}

// Submit enqueues a task with the legacy blocking semantics: a full
// class queue applies backpressure to the submitter instead of
// rejecting. It returns false if the pool is closed. New overload-aware
// callers use Enqueue, which rejects with typed errors instead.
func (p *Pool) Submit(c Class, fn func()) bool {
	return p.submit(poolTask{fn: fn, class: c, enqueued: p.now()}, true) == nil
}

// SubmitWait enqueues a task, blocks until it has run, and returns the
// time it spent queued (the latency experiments' measurement).
func (p *Pool) SubmitWait(c Class, fn func()) (time.Duration, error) {
	done := make(chan time.Duration, 1)
	if err := p.submit(poolTask{fn: fn, class: c, enqueued: p.now(), done: done}, true); err != nil {
		return 0, err
	}
	return <-done, nil
}

// Enqueue submits a Task under the overload policy:
//
//   - A dead Ctx rejects at submit time with ErrShed (cheap check — no
//     queue slot, no worker) unless the class is Durability.
//   - A full Interactive or Background queue rejects with ErrQueueFull
//     so callers can tell saturation from policy shedding. Durability
//     submissions block instead: backpressure, never loss.
//   - After Close every submission returns ErrPoolClosed.
func (p *Pool) Enqueue(t Task) error {
	if t.Ctx != nil && t.Class != Durability {
		if err := t.Ctx.Err(); err != nil {
			p.mu.Lock()
			p.stats[t.Class].ShedAtSubmit++
			p.mu.Unlock()
			return fmt.Errorf("%w at submit: %w", ErrShed, err)
		}
	}
	return p.submit(poolTask{
		fn:       t.Run,
		class:    t.Class,
		ctx:      t.Ctx,
		onShed:   t.OnShed,
		enqueued: p.now(),
	}, t.Class == Durability)
}

// SubmitCtx enqueues fn under class c bound to the caller's ctx — the
// Enqueue policy without shed notification.
func (p *Pool) SubmitCtx(ctx context.Context, c Class, fn func()) error {
	return p.Enqueue(Task{Class: c, Ctx: ctx, Run: fn})
}

func (p *Pool) submit(t poolTask, block bool) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	p.mu.Unlock()
	q := p.queues[t.class]
	if p.fifo {
		q = p.single
	}
	if block {
		select {
		case q <- t:
			p.depth[t.class].Add(1)
			return nil
		case <-p.quit:
			return ErrPoolClosed
		}
	}
	select {
	case q <- t:
		p.depth[t.class].Add(1)
		return nil
	case <-p.quit:
		return ErrPoolClosed
	default:
		p.mu.Lock()
		p.stats[t.class].RejectedFull++
		p.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrQueueFull, t.class)
	}
}

// Stats snapshots one class's queue accounting.
func (p *Pool) Stats(c Class) QueueStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.statsLocked(c)
}

func (p *Pool) statsLocked(c Class) QueueStats {
	st := *p.stats[c]
	st.Depth = int(p.depth[c].Load())
	st.WaitP50 = p.hists[c].quantile(0.50)
	st.WaitP99 = p.hists[c].quantile(0.99)
	return st
}

// StatsAll snapshots every class at once, indexed by Class.
func (p *Pool) StatsAll() [NumClasses]QueueStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out [NumClasses]QueueStats
	for c := range out {
		out[c] = p.statsLocked(Class(c))
	}
	return out
}

// Backlog returns the number of queued-but-unstarted tasks.
func (p *Pool) Backlog() int {
	if p.fifo {
		return len(p.single)
	}
	n := 0
	for _, q := range p.queues {
		n += len(q)
	}
	return n
}

// Drain blocks until all queued tasks at the time of the call have
// started and finished. Queued==0 does not mean running==0, so it then
// parks one barrier sentinel on every worker: once all sentinels have
// arrived, every previously started task has finished. The rendezvous
// aborts on Close (quit), so a racing shutdown can neither strand parked
// workers nor hang this call. It is a test/experiment convenience, not a
// production barrier.
func (p *Pool) Drain() {
	p.drainMu.Lock()
	defer p.drainMu.Unlock()
	for p.Backlog() > 0 {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return // queued tasks are abandoned at Close; nothing to fence
		}
		time.Sleep(time.Millisecond)
	}
	arrived := make(chan struct{}, p.workers)
	release := make(chan struct{})
	pending := 0
	for i := 0; i < p.workers; i++ {
		ok := p.Submit(Background, func() {
			arrived <- struct{}{}
			select {
			case <-release:
			case <-p.quit:
			}
		})
		if ok {
			pending++
		}
	}
	for got := 0; got < pending; got++ {
		select {
		case <-arrived:
		case <-p.quit: // shutdown: queued sentinels may never run
			close(release)
			return
		}
	}
	close(release)
}

// Close stops the workers after the current tasks finish. Queued tasks
// are abandoned.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.quit)
	p.Resume() // lift a standing pause so workers can observe quit
	p.wg.Wait()
}
