package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"impliance/internal/fabric"
)

func testFabric(t *testing.T, data, grid, cluster int) *fabric.Fabric {
	t.Helper()
	f := fabric.New()
	t.Cleanup(f.Close)
	for i := 0; i < data; i++ {
		f.AddNode(fabric.Data)
	}
	for i := 0; i < grid; i++ {
		f.AddNode(fabric.Grid)
	}
	for i := 0; i < cluster; i++ {
		f.AddNode(fabric.Cluster)
	}
	return f
}

func TestPreferredNodeKindTable(t *testing.T) {
	cases := map[TaskKind]fabric.NodeKind{
		TaskScan:          fabric.Data,
		TaskIndexSearch:   fabric.Data,
		TaskIntraAnalysis: fabric.Data,
		TaskJoin:          fabric.Grid,
		TaskSort:          fabric.Grid,
		TaskAgg:           fabric.Grid,
		TaskInterAnalysis: fabric.Grid,
		TaskPersist:       fabric.Cluster,
		TaskCoordinate:    fabric.Cluster,
	}
	for task, want := range cases {
		if got := PreferredNodeKind(task); got != want {
			t.Errorf("%s -> %s, want %s", task, got, want)
		}
	}
}

func TestAffinityPlacerRoundRobin(t *testing.T) {
	f := testFabric(t, 3, 2, 1)
	p := NewAffinityPlacer(f)
	seen := map[fabric.NodeID]int{}
	for i := 0; i < 9; i++ {
		id, err := p.Place(TaskScan)
		if err != nil {
			t.Fatal(err)
		}
		if id.Kind != fabric.Data {
			t.Errorf("scan placed on %s", id)
		}
		seen[id]++
	}
	for id, n := range seen {
		if n != 3 {
			t.Errorf("round robin uneven: %s ran %d", id, n)
		}
	}
	if p.Fallbacks.Load() != 0 {
		t.Error("no fallbacks expected")
	}
}

func TestAffinityPlacerFallback(t *testing.T) {
	f := testFabric(t, 2, 0, 0) // no grid nodes at all
	p := NewAffinityPlacer(f)
	id, err := p.Place(TaskJoin)
	if err != nil {
		t.Fatal(err)
	}
	if id.Kind != fabric.Data {
		t.Errorf("fallback landed on %s", id)
	}
	if p.Fallbacks.Load() != 1 {
		t.Error("fallback not counted")
	}
}

func TestAffinityPlacerSkipsDeadNodes(t *testing.T) {
	f := testFabric(t, 2, 0, 0)
	dead := f.NodesOf(fabric.Data)[0]
	f.Kill(dead)
	p := NewAffinityPlacer(f)
	for i := 0; i < 4; i++ {
		id, err := p.Place(TaskScan)
		if err != nil {
			t.Fatal(err)
		}
		if id == dead {
			t.Error("placed on dead node")
		}
	}
}

func TestPlacerNoNodes(t *testing.T) {
	f := fabric.New()
	defer f.Close()
	if _, err := NewAffinityPlacer(f).Place(TaskScan); err != ErrNoNodes {
		t.Errorf("expected ErrNoNodes, got %v", err)
	}
	if _, err := NewRandomPlacer(f, 1).Place(TaskScan); err != ErrNoNodes {
		t.Errorf("expected ErrNoNodes, got %v", err)
	}
}

func TestRandomPlacerIgnoresAffinity(t *testing.T) {
	f := testFabric(t, 2, 2, 2)
	p := NewRandomPlacer(f, 42)
	kinds := map[fabric.NodeKind]int{}
	for i := 0; i < 300; i++ {
		id, err := p.Place(TaskScan)
		if err != nil {
			t.Fatal(err)
		}
		kinds[id.Kind]++
	}
	// A random placer must place scans on non-data nodes a lot.
	if kinds[fabric.Grid] == 0 || kinds[fabric.Cluster] == 0 {
		t.Errorf("random placement not random: %v", kinds)
	}
}

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(4, false)
	defer p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		ok := p.Submit(Background, func() {
			n.Add(1)
			wg.Done()
		})
		if !ok {
			t.Fatal("submit failed")
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Errorf("ran %d tasks", n.Load())
	}
	st := p.Stats(Background)
	if st.Tasks != 100 {
		t.Errorf("stats tasks = %d", st.Tasks)
	}
}

func TestPriorityInterleavingBeatsFIFO(t *testing.T) {
	// Flood with slow background tasks, then measure interactive wait.
	run := func(fifo bool) time.Duration {
		p := NewPool(2, fifo)
		defer p.Close()
		for i := 0; i < 200; i++ {
			p.Submit(Background, func() { time.Sleep(500 * time.Microsecond) })
		}
		var worst time.Duration
		for i := 0; i < 10; i++ {
			w, err := p.SubmitWait(Interactive, func() {})
			if err != nil {
				t.Fatal(err)
			}
			if w > worst {
				worst = w
			}
		}
		return worst
	}
	prio := run(false)
	fifo := run(true)
	if prio >= fifo {
		t.Errorf("priority worst-wait %v should beat FIFO %v", prio, fifo)
	}
	// Priority mode should keep interactive waits near one task slice.
	if prio > 20*time.Millisecond {
		t.Errorf("interactive wait too high under priority mode: %v", prio)
	}
}

func TestPoolDrain(t *testing.T) {
	p := NewPool(2, false)
	defer p.Close()
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		p.Submit(Background, func() { n.Add(1) })
	}
	p.Drain()
	if n.Load() != 50 {
		t.Errorf("drain returned with %d/50 done", n.Load())
	}
	if p.Backlog() != 0 {
		t.Error("backlog after drain")
	}
}

func TestPoolCloseRejectsSubmits(t *testing.T) {
	p := NewPool(1, false)
	p.Close()
	if p.Submit(Interactive, func() {}) {
		t.Error("submit after close should fail")
	}
	if _, err := p.SubmitWait(Interactive, func() {}); err == nil {
		t.Error("submitwait after close should fail")
	}
	p.Close() // double close safe
}

func TestQueueStatsMeanWait(t *testing.T) {
	qs := QueueStats{Tasks: 4, TotalWait: 8 * time.Millisecond}
	if qs.MeanWait() != 2*time.Millisecond {
		t.Errorf("mean = %v", qs.MeanWait())
	}
	var empty QueueStats
	if empty.MeanWait() != 0 {
		t.Error("empty mean should be 0")
	}
}

// TestDrainCloseRace: a Close racing a Drain barrier must not deadlock —
// parked sentinel workers abort on quit and Drain returns.
func TestDrainCloseRace(t *testing.T) {
	for i := 0; i < 25; i++ {
		p := NewPool(4, i%2 == 1)
		for j := 0; j < 50; j++ {
			p.Submit(Background, func() { time.Sleep(50 * time.Microsecond) })
		}
		done := make(chan struct{})
		go func() {
			p.Drain()
			close(done)
		}()
		time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
		p.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("Drain deadlocked against Close")
		}
	}
}
