package sched

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// logPool builds a paused single-worker pool whose executed tasks append
// their class to a shared log — scheduling order becomes inspectable.
func logPool(t *testing.T, cfg PoolConfig) (*Pool, func() []Class, func(Class)) {
	t.Helper()
	cfg.Workers = 1
	p := NewPoolConfig(cfg)
	t.Cleanup(p.Close)
	var mu sync.Mutex
	var log []Class
	submit := func(c Class) {
		if !p.Submit(c, func() {
			mu.Lock()
			log = append(log, c)
			mu.Unlock()
		}) {
			t.Fatalf("submit %v failed", c)
		}
	}
	snapshot := func() []Class {
		mu.Lock()
		defer mu.Unlock()
		return append([]Class(nil), log...)
	}
	return p, snapshot, submit
}

// A background flood must not starve interactive past its weight share:
// with quanta 16:1:4, every rotation serves 16 interactive tasks while
// interactive backlog lasts — and background still makes progress.
func TestWeightedShareUnderBackgroundFlood(t *testing.T) {
	p, snapshot, submit := logPool(t, PoolConfig{})
	p.Pause()
	for i := 0; i < 500; i++ {
		submit(Background)
	}
	for i := 0; i < 200; i++ {
		submit(Interactive)
	}
	p.Resume()
	p.Drain()

	log := snapshot()
	if len(log) != 700 {
		t.Fatalf("executed %d tasks, want 700", len(log))
	}
	lastInteractive := 0
	for i, c := range log {
		if c == Interactive {
			lastInteractive = i
		}
	}
	// 200 interactive at quantum 16 need ceil(200/16)=13 rotations, each
	// costing at most 1 background slot (durability queue is empty) —
	// so the last interactive task lands by position ~215. Anything
	// near the tail would mean the flood starved the class.
	if lastInteractive > 260 {
		t.Fatalf("interactive starved: last interactive task at position %d of %d", lastInteractive, len(log))
	}
	// Weighted, not strict: background must appear inside the
	// interactive backlog window, at roughly 1 per 17 slots.
	bg := 0
	for _, c := range log[:200] {
		if c == Background {
			bg++
		}
	}
	if bg < 5 {
		t.Fatalf("background fully starved during interactive backlog: %d of first 200", bg)
	}
	if bg > 60 {
		t.Fatalf("interactive did not get its weight share: %d background in first 200", bg)
	}
}

// Durability work outranks background analysis but cannot shut it out.
func TestDurabilityOutranksBackground(t *testing.T) {
	p, snapshot, submit := logPool(t, PoolConfig{})
	p.Pause()
	for i := 0; i < 300; i++ {
		submit(Background)
	}
	for i := 0; i < 100; i++ {
		submit(Durability)
	}
	p.Resume()
	p.Drain()
	log := snapshot()
	last := 0
	for i, c := range log {
		if c == Durability {
			last = i
		}
	}
	// 100 durability at quantum 4 need 25 rotations × ≤1 background slot
	// (interactive empty) — done by ~position 130.
	if last > 200 {
		t.Fatalf("durability starved: last at position %d of %d", last, len(log))
	}
}

// Durability tasks are never shed by caller deadlines — not at submit,
// not at dequeue — because the write path promised the work.
func TestDurabilityNeverShed(t *testing.T) {
	p := NewPoolConfig(PoolConfig{Workers: 1})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // caller is already gone

	p.Pause()
	var ran int
	var mu sync.Mutex
	for i := 0; i < 10; i++ {
		if err := p.Enqueue(Task{Class: Durability, Ctx: ctx, Run: func() {
			mu.Lock()
			ran++
			mu.Unlock()
		}}); err != nil {
			t.Fatalf("durability submit with dead ctx rejected: %v", err)
		}
	}
	p.Resume()
	p.Drain()

	mu.Lock()
	defer mu.Unlock()
	if ran != 10 {
		t.Fatalf("durability tasks ran %d of 10", ran)
	}
	st := p.Stats(Durability)
	if st.ShedAtSubmit != 0 || st.ShedAtDequeue != 0 {
		t.Fatalf("durability shed: submit=%d dequeue=%d", st.ShedAtSubmit, st.ShedAtDequeue)
	}
}

// Tasks with an already-dead ctx are rejected at submit time (cheap
// check, no queue slot); tasks whose ctx dies while queued are shed at
// dequeue — counted, not executed, with the OnShed notification fired.
func TestShedAtBothPoints(t *testing.T) {
	p := NewPoolConfig(PoolConfig{Workers: 1})
	defer p.Close()

	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	err := p.SubmitCtx(dead, Interactive, func() { t.Error("shed task ran") })
	if !errors.Is(err, ErrShed) {
		t.Fatalf("submit with dead ctx: got %v, want ErrShed", err)
	}
	if st := p.Stats(Interactive); st.ShedAtSubmit != 1 {
		t.Fatalf("ShedAtSubmit=%d, want 1", st.ShedAtSubmit)
	}

	// Queue tasks while paused, then kill their ctx before any dequeue.
	ctx, cancel := context.WithCancel(context.Background())
	p.Pause()
	var shedErrs []error
	var mu sync.Mutex
	for i := 0; i < 5; i++ {
		if err := p.Enqueue(Task{Class: Interactive, Ctx: ctx,
			Run:    func() { t.Error("dead-ctx task executed") },
			OnShed: func(e error) { mu.Lock(); shedErrs = append(shedErrs, e); mu.Unlock() },
		}); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	cancel()
	p.Resume()
	p.Drain()

	st := p.Stats(Interactive)
	if st.ShedAtDequeue != 5 {
		t.Fatalf("ShedAtDequeue=%d, want 5", st.ShedAtDequeue)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(shedErrs) != 5 {
		t.Fatalf("OnShed fired %d times, want 5", len(shedErrs))
	}
	for _, e := range shedErrs {
		if !errors.Is(e, ErrShed) {
			t.Fatalf("OnShed error %v does not wrap ErrShed", e)
		}
	}
}

// A full interactive queue rejects with typed ErrQueueFull instead of
// silently blocking the submitter; durability applies backpressure.
func TestQueueFullTyped(t *testing.T) {
	p := NewPoolConfig(PoolConfig{Workers: 1, QueueCap: [NumClasses]int{Interactive: 2, Background: 2, Durability: 2}})
	defer p.Close()
	p.Pause()

	for i := 0; i < 2; i++ {
		if err := p.SubmitCtx(context.Background(), Interactive, func() {}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	err := p.SubmitCtx(context.Background(), Interactive, func() {})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue: got %v, want ErrQueueFull", err)
	}
	if st := p.Stats(Interactive); st.RejectedFull != 1 {
		t.Fatalf("RejectedFull=%d, want 1", st.RejectedFull)
	}

	// Durability never fast-fails: a full queue blocks until a worker
	// frees a slot.
	for i := 0; i < 2; i++ {
		if err := p.Enqueue(Task{Class: Durability, Run: func() {}}); err != nil {
			t.Fatalf("durability fill %d: %v", i, err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- p.Enqueue(Task{Class: Durability, Run: func() {}}) }()
	select {
	case err := <-done:
		t.Fatalf("durability enqueue returned %v while queue full; want backpressure", err)
	case <-time.After(50 * time.Millisecond):
	}
	p.Resume()
	if err := <-done; err != nil {
		t.Fatalf("durability enqueue after resume: %v", err)
	}
	p.Drain()
}

// Depth and wait percentiles surface through Stats.
func TestStatsDepthAndPercentiles(t *testing.T) {
	p := NewPoolConfig(PoolConfig{Workers: 1})
	defer p.Close()
	p.Pause()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		p.Submit(Background, func() { wg.Done() })
	}
	if d := p.Stats(Background).Depth; d != 8 {
		t.Fatalf("Depth=%d, want 8", d)
	}
	p.Resume()
	wg.Wait()
	st := p.Stats(Background)
	if st.Depth != 0 {
		t.Fatalf("Depth after drain=%d, want 0", st.Depth)
	}
	if st.Tasks != 8 {
		t.Fatalf("Tasks=%d, want 8", st.Tasks)
	}
	if st.WaitP99 < st.WaitP50 {
		t.Fatalf("WaitP99 %v < WaitP50 %v", st.WaitP99, st.WaitP50)
	}
	if st.WaitP50 <= 0 {
		t.Fatalf("WaitP50=%v, want > 0", st.WaitP50)
	}
}

// manualClock is a hand-stepped Clock for deterministic admission tests.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestAdmissionBucketBasics(t *testing.T) {
	clk := newManualClock()
	a := NewAdmission(AdmissionConfig{
		Clock:  clk,
		Rates:  [NumClasses]float64{Interactive: 10}, // 10 tokens/s
		Bursts: [NumClasses]float64{Interactive: 2},  // burst of 2
	})
	if err := a.Admit(Interactive, "t1"); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if err := a.Admit(Interactive, "t1"); err != nil {
		t.Fatalf("second admit (burst): %v", err)
	}
	err := a.Admit(Interactive, "t1")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("empty bucket: got %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 || oe.RetryAfter > 150*time.Millisecond {
		t.Fatalf("retry-after hint out of range: %+v", oe)
	}
	// Tenants are isolated, ungated classes are free.
	if err := a.Admit(Interactive, "t2"); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
	if err := a.Admit(Background, "t1"); err != nil {
		t.Fatalf("ungated class: %v", err)
	}
	// Refill at 10/s: one token back after 100ms.
	clk.advance(100 * time.Millisecond)
	if err := a.Admit(Interactive, "t1"); err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}
	st := a.Stats()
	if st.Rejected[Interactive] != 1 {
		t.Fatalf("Rejected=%d, want 1", st.Rejected[Interactive])
	}
}

// Seeded property test: under a virtual clock, admission decisions are
// a pure function of the call sequence — two gates fed the identical
// seeded op stream decide identically, call for call.
func TestAdmissionDeterministicUnderSimClock(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		run := func() []string {
			rng := rand.New(rand.NewSource(seed))
			clk := newManualClock()
			a := NewAdmission(AdmissionConfig{
				Clock:  clk,
				Rates:  [NumClasses]float64{Interactive: 50, Background: 20},
				Bursts: [NumClasses]float64{Interactive: 5, Background: 3},
			})
			tenants := []string{"", "alpha", "beta", "gamma"}
			var decisions []string
			for i := 0; i < 400; i++ {
				clk.advance(time.Duration(rng.Intn(40)) * time.Millisecond)
				c := Class(rng.Intn(2))
				tn := tenants[rng.Intn(len(tenants))]
				n := 1 + rng.Intn(3)
				err := a.AdmitN(c, tn, n)
				if err == nil {
					decisions = append(decisions, "ok")
				} else {
					var oe *OverloadError
					if !errors.As(err, &oe) {
						t.Fatalf("seed %d op %d: non-overload error %v", seed, i, err)
					}
					decisions = append(decisions, oe.Error())
				}
			}
			return decisions
		}
		first, second := run(), run()
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("seed %d: decision %d diverged: %q vs %q", seed, i, first[i], second[i])
			}
		}
	}
}

// Jain's index over the interactive tenant buckets: 1.0 for an even
// split, approaching 1/n when one tenant takes everything; ingest
// (Background) buckets are a different population and must not skew it.
func TestAdmissionFairnessIndex(t *testing.T) {
	var none *Admission
	if got := none.FairnessIndex(); got != 1.0 {
		t.Fatalf("nil gate fairness %v, want 1.0", got)
	}
	clk := newManualClock()
	newGate := func() *Admission {
		return NewAdmission(AdmissionConfig{
			Clock:  clk,
			Rates:  [NumClasses]float64{Interactive: 1000, Background: 1000},
			Bursts: [NumClasses]float64{Interactive: 1000, Background: 1000},
		})
	}
	a := newGate()
	if got := a.FairnessIndex(); got != 1.0 {
		t.Fatalf("empty gate fairness %v, want vacuous 1.0", got)
	}
	for i := 0; i < 100; i++ {
		_ = a.Admit(Interactive, "t0")
		_ = a.Admit(Interactive, "t1")
	}
	// Background traffic keyed by source must not enter the index.
	for i := 0; i < 500; i++ {
		_ = a.Admit(Background, "bulk-source")
	}
	if got := a.FairnessIndex(); got < 0.999 {
		t.Fatalf("even two-tenant split fairness %v, want ~1.0", got)
	}
	adm := a.TenantAdmitted(Interactive)
	if adm["t0"] != 100 || adm["t1"] != 100 || len(adm) != 2 {
		t.Fatalf("TenantAdmitted(Interactive) = %v", adm)
	}

	b := newGate()
	for i := 0; i < 99; i++ {
		_ = b.Admit(Interactive, "hog")
	}
	_ = b.Admit(Interactive, "starved")
	// (100)^2 / (2 * (99^2+1)) ≈ 0.51 — a lopsided split reads unfair.
	if got := b.FairnessIndex(); got > 0.6 {
		t.Fatalf("lopsided split fairness %v, want well below even", got)
	}
}
