package text

import (
	"testing"
	"testing/quick"
)

func TestTokenizePositionsAndOffsets(t *testing.T) {
	a := KeywordAnalyzer
	toks := a.Tokenize("Hello, world! Go-lang rocks")
	terms := []string{"hello", "world", "go", "lang", "rocks"}
	if len(toks) != len(terms) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(terms), toks)
	}
	for i, want := range terms {
		if toks[i].Term != want {
			t.Errorf("token %d = %q, want %q", i, toks[i].Term, want)
		}
		if toks[i].Pos != i {
			t.Errorf("token %d pos = %d", i, toks[i].Pos)
		}
	}
	if toks[0].Start != 0 || toks[0].End != 5 {
		t.Errorf("offsets of first token: %d..%d", toks[0].Start, toks[0].End)
	}
	if toks[1].Start != 7 || toks[1].End != 12 {
		t.Errorf("offsets of second token: %d..%d", toks[1].Start, toks[1].End)
	}
}

func TestStopwordsDropButPositionsAdvance(t *testing.T) {
	toks := DefaultAnalyzer.Tokenize("the cat and the hat")
	// "the", "and" are stopwords; cat=1, hat=4 positions preserved.
	if len(toks) != 2 {
		t.Fatalf("got %v", toks)
	}
	if toks[0].Term != "cat" || toks[0].Pos != 1 {
		t.Errorf("first = %+v", toks[0])
	}
	if toks[1].Term != "hat" || toks[1].Pos != 4 {
		t.Errorf("second = %+v", toks[1])
	}
}

func TestMinLenFilter(t *testing.T) {
	a := &Analyzer{MinLen: 3}
	terms := a.Terms("a bb ccc dddd")
	if len(terms) != 2 || terms[0] != "ccc" || terms[1] != "dddd" {
		t.Errorf("MinLen filter: %v", terms)
	}
}

func TestUnicodeTokenization(t *testing.T) {
	terms := KeywordAnalyzer.Terms("café Zürich 東京 data123")
	want := []string{"café", "zürich", "東京", "data123"}
	if len(terms) != len(want) {
		t.Fatalf("got %v, want %v", terms, want)
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Errorf("term %d = %q, want %q", i, terms[i], want[i])
		}
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"running":   "run",
		"databases": "database",
		"cities":    "city",
		"walked":    "walk",
		"stopped":   "stop",
		"quickly":   "quick",
		"boxes":     "boxe", // light stemmer: es -> e(s) strip one char
		"cats":      "cat",
		"pass":      "pass",
		"go":        "go",
		"glasses":   "glass",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemConflatesInflections(t *testing.T) {
	if Stem("claims") != Stem("claim") {
		t.Error("claims/claim should conflate")
	}
	if Stem("annotations") != Stem("annotation") {
		t.Error("annotations/annotation should conflate")
	}
}

func TestStemNeverGrows(t *testing.T) {
	f := func(s string) bool { return len(Stem(s)) <= len(s) }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPossessiveNormalization(t *testing.T) {
	terms := KeywordAnalyzer.Terms("Alice's book")
	if terms[0] != "alice" {
		t.Errorf("possessive: %v", terms)
	}
}

func TestTrigramSimilarity(t *testing.T) {
	if TrigramSimilarity("smith", "smith") != 1 {
		t.Error("self similarity must be 1")
	}
	if s := TrigramSimilarity("smith", "smyth"); s <= 0.2 || s >= 1 {
		t.Errorf("smith/smyth similarity = %f, want moderate", s)
	}
	if s := TrigramSimilarity("smith", "zebra"); s > 0.1 {
		t.Errorf("smith/zebra similarity = %f, want ~0", s)
	}
	if TrigramSimilarity("", "") != 1 {
		t.Error("empty strings are identical")
	}
	// Similarity is symmetric.
	if TrigramSimilarity("jonathan", "johnathan") != TrigramSimilarity("johnathan", "jonathan") {
		t.Error("similarity must be symmetric")
	}
}

func TestTrigramSimilaritySymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		return TrigramSimilarity(a, b) == TrigramSimilarity(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		max  int
		want int
	}{
		{"kitten", "sitting", 10, 3},
		{"", "abc", 5, 3},
		{"same", "same", 2, 0},
		{"abcdef", "abcdef", 0, 0},
		{"a", "z", 3, 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b, c.max); got != c.want {
			t.Errorf("Levenshtein(%q,%q,%d) = %d, want %d", c.a, c.b, c.max, got, c.want)
		}
	}
	// Cap exceeded returns max+1.
	if got := Levenshtein("aaaaaaaa", "bbbbbbbb", 2); got != 3 {
		t.Errorf("capped distance = %d, want 3", got)
	}
	if got := Levenshtein("short", "muchlongerstring", 2); got != 3 {
		t.Errorf("length-gap early-out = %d, want 3", got)
	}
}

func TestLevenshteinSymmetricProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		return Levenshtein(a, b, 50) == Levenshtein(b, a, 50)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTokenizeEmptyAndPunctOnly(t *testing.T) {
	if toks := DefaultAnalyzer.Tokenize(""); len(toks) != 0 {
		t.Error("empty input should give no tokens")
	}
	if toks := DefaultAnalyzer.Tokenize("!!! ... ???"); len(toks) != 0 {
		t.Error("punctuation-only input should give no tokens")
	}
}

func TestTokenizeFuncStreamsSameAsTokenize(t *testing.T) {
	in := "The quick brown fox jumps over the lazy dog's 42 fences"
	var streamed []Token
	DefaultAnalyzer.TokenizeFunc(in, func(tok Token) { streamed = append(streamed, tok) })
	direct := DefaultAnalyzer.Tokenize(in)
	if len(streamed) != len(direct) {
		t.Fatalf("stream %d vs direct %d", len(streamed), len(direct))
	}
	for i := range direct {
		if streamed[i] != direct[i] {
			t.Errorf("token %d: %+v vs %+v", i, streamed[i], direct[i])
		}
	}
}
