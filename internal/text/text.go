// Package text provides the lexical analysis substrate shared by the
// full-text index (paper §3.3: an embedded indexer in the spirit of
// Lucene/Indri, built in-repo because the appliance is self-contained) and
// by the annotators. It offers position-tracked tokenization, stopword
// filtering, light suffix stemming, and n-gram similarity used by entity
// resolution.
package text

import (
	"strings"
	"unicode"
)

// Token is one term occurrence in a text field.
type Token struct {
	Term  string // normalized term (lower-cased, stemmed if enabled)
	Pos   int    // token position (0-based, counting all tokens pre-filter)
	Start int    // byte offset of the raw token in the input
	End   int    // byte offset one past the raw token
}

// Analyzer converts raw text into index terms.
type Analyzer struct {
	// Stopwords, when non-nil, drops listed terms (positions still advance).
	Stopwords map[string]struct{}
	// Stem enables light suffix stemming.
	Stem bool
	// MinLen drops terms shorter than this many runes (after normalizing).
	MinLen int
}

// DefaultAnalyzer is the appliance-wide analyzer: English stopwords, light
// stemming, 2-rune minimum.
var DefaultAnalyzer = &Analyzer{Stopwords: DefaultStopwords, Stem: true, MinLen: 2}

// KeywordAnalyzer performs no filtering or stemming: raw lower-cased terms.
var KeywordAnalyzer = &Analyzer{}

// DefaultStopwords is a compact English stopword list.
var DefaultStopwords = toSet([]string{
	"a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from",
	"has", "have", "he", "in", "is", "it", "its", "of", "on", "or", "she",
	"that", "the", "their", "they", "this", "to", "was", "we", "were",
	"which", "will", "with", "you", "your", "not", "no", "so", "if", "then",
	"than", "there", "been", "being", "do", "does", "did", "can", "could",
	"would", "should", "i", "my", "me", "our", "us", "his", "her", "him",
})

func toSet(words []string) map[string]struct{} {
	m := make(map[string]struct{}, len(words))
	for _, w := range words {
		m[w] = struct{}{}
	}
	return m
}

// Tokenize analyzes the input and returns the surviving tokens.
func (a *Analyzer) Tokenize(s string) []Token {
	var out []Token
	a.TokenizeFunc(s, func(t Token) { out = append(out, t) })
	return out
}

// TokenizeFunc analyzes the input and streams surviving tokens to fn,
// avoiding slice allocation on hot indexing paths.
func (a *Analyzer) TokenizeFunc(s string, fn func(Token)) {
	pos := 0
	i := 0
	n := len(s)
	for i < n {
		// Skip non-token runes.
		r, size := decodeRune(s[i:])
		if !isTokenRune(r) {
			i += size
			continue
		}
		start := i
		for i < n {
			r, size = decodeRune(s[i:])
			if !isTokenRune(r) {
				break
			}
			i += size
		}
		raw := s[start:i]
		term := normalize(raw)
		p := pos
		pos++
		if a.MinLen > 0 && runeLen(term) < a.MinLen {
			continue
		}
		if a.Stopwords != nil {
			if _, stop := a.Stopwords[term]; stop {
				continue
			}
		}
		if a.Stem {
			term = Stem(term)
		}
		fn(Token{Term: term, Pos: p, Start: start, End: start + len(raw)})
	}
}

// Terms returns just the normalized terms of the input.
func (a *Analyzer) Terms(s string) []string {
	var out []string
	a.TokenizeFunc(s, func(t Token) { out = append(out, t.Term) })
	return out
}

func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' || r == '_'
}

func normalize(s string) string {
	s = strings.ToLower(s)
	// Strip possessive apostrophes and stray quotes.
	s = strings.Trim(s, "'")
	s = strings.TrimSuffix(s, "'s")
	return s
}

func decodeRune(s string) (rune, int) {
	if len(s) == 0 {
		return 0, 0
	}
	if s[0] < 0x80 {
		return rune(s[0]), 1
	}
	for _, r := range s {
		return r, runeByteLen(r)
	}
	return 0, 1
}

func runeByteLen(r rune) int {
	switch {
	case r < 0x80:
		return 1
	case r < 0x800:
		return 2
	case r < 0x10000:
		return 3
	default:
		return 4
	}
}

func runeLen(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// Stem applies a light Porter-style suffix stripper: enough to conflate
// common inflections (running→run, databases→databas) without a full
// stemmer's tables. It is deterministic and never grows the term.
func Stem(term string) string {
	n := len(term)
	if n <= 3 {
		return term
	}
	switch {
	case strings.HasSuffix(term, "ies") && n > 4:
		return term[:n-3] + "y"
	case strings.HasSuffix(term, "sses"):
		return term[:n-2]
	case strings.HasSuffix(term, "ing") && n > 5:
		stem := term[:n-3]
		return undouble(stem)
	case strings.HasSuffix(term, "edly") && n > 6:
		return term[:n-4]
	case strings.HasSuffix(term, "ed") && n > 4:
		return undouble(term[:n-2])
	case strings.HasSuffix(term, "ly") && n > 4:
		return term[:n-2]
	case strings.HasSuffix(term, "es") && n > 4:
		return term[:n-1]
	case strings.HasSuffix(term, "s") && !strings.HasSuffix(term, "ss") && n > 3:
		return term[:n-1]
	}
	return term
}

func undouble(s string) string {
	n := len(s)
	if n >= 2 && s[n-1] == s[n-2] && isConsonant(s[n-1]) && s[n-1] != 'l' && s[n-1] != 's' {
		return s[:n-1]
	}
	return s
}

func isConsonant(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	}
	return c >= 'a' && c <= 'z'
}

// Trigrams returns the set of letter trigrams of the normalized input,
// padded with boundary markers. Used for fuzzy name matching in entity
// resolution.
func Trigrams(s string) map[string]struct{} {
	s = "\x02" + strings.ToLower(s) + "\x03"
	out := map[string]struct{}{}
	runes := []rune(s)
	if len(runes) < 3 {
		out[string(runes)] = struct{}{}
		return out
	}
	for i := 0; i+3 <= len(runes); i++ {
		out[string(runes[i:i+3])] = struct{}{}
	}
	return out
}

// TrigramSimilarity returns the Jaccard similarity of two strings' trigram
// sets, in [0,1].
func TrigramSimilarity(a, b string) float64 {
	ta, tb := Trigrams(a), Trigrams(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	inter := 0
	for g := range ta {
		if _, ok := tb[g]; ok {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Levenshtein returns the edit distance between two strings, capped at max
// (returns max+1 when exceeded) so callers can early-out on hopeless pairs.
func Levenshtein(a, b string, max int) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if abs(la-lb) > max {
		return max + 1
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(minInt(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > max {
			return max + 1
		}
		prev, cur = cur, prev
	}
	if prev[lb] > max {
		return max + 1
	}
	return prev[lb]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
