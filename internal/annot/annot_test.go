package annot

import (
	"testing"

	"impliance/internal/docmodel"
)

func transcript(seq uint64, body string) *docmodel.Document {
	return &docmodel.Document{
		ID:        docmodel.DocID{Origin: 1, Seq: seq},
		Version:   1,
		MediaType: "text/plain",
		Source:    "callcenter",
		Root:      docmodel.Object(docmodel.F("text", docmodel.String(body))),
	}
}

func entityTypesOf(ents []Entity) map[string][]string {
	out := map[string][]string{}
	for _, e := range ents {
		out[e.Type] = append(out[e.Type], e.Norm)
	}
	return out
}

func TestEntityAnnotatorExtractsAllClasses(t *testing.T) {
	a := NewDefaultEntityAnnotator([]string{"widgetpro", "gadget max"})
	d := transcript(1, "John Smith from San Jose called about WidgetPro. "+
		"Billed $1,299.50 to card, callback 408-555-1212, "+
		"email john.smith@example.com, case ID CS-4417. He also wants Gadget Max.")
	anns := a.Annotate(d)
	if len(anns) != 1 {
		t.Fatalf("annotations = %d", len(anns))
	}
	ad := &docmodel.Document{Root: anns[0]}
	ents := EntitiesFromAnnotation(ad)
	byType := entityTypesOf(ents)

	if got := byType["person"]; len(got) != 1 || got[0] != "john smith" {
		t.Errorf("person = %v", got)
	}
	if got := byType["location"]; len(got) != 1 || got[0] != "san jose" {
		t.Errorf("location = %v", got)
	}
	if got := byType["money"]; len(got) != 1 || got[0] != "$1,299.50" {
		t.Errorf("money = %v", got)
	}
	if got := byType["phone"]; len(got) != 1 || got[0] != "408-555-1212" {
		t.Errorf("phone = %v", got)
	}
	if got := byType["email"]; len(got) != 1 || got[0] != "john.smith@example.com" {
		t.Errorf("email = %v", got)
	}
	if got := byType["code"]; len(got) != 1 || got[0] != "cs-4417" {
		t.Errorf("code = %v", got)
	}
	if got := byType["product"]; len(got) != 2 {
		t.Errorf("products = %v", got)
	}
	if ad.First("/count").IntVal() != int64(len(ents)) {
		t.Error("count field mismatch")
	}
}

func TestEntityAnnotatorNoFalsePersons(t *testing.T) {
	a := NewDefaultEntityAnnotator(nil)
	// "Big Sur" has no dictionary first name; "John" alone is not a bigram.
	d := transcript(1, "Big Sur is nice. John was here. The Thing happened.")
	if anns := a.Annotate(d); len(anns) != 0 {
		ents := EntitiesFromAnnotation(&docmodel.Document{Root: anns[0]})
		for _, e := range ents {
			if e.Type == "person" {
				t.Errorf("false person: %+v", e)
			}
		}
	}
}

func TestEntityDedupe(t *testing.T) {
	a := NewDefaultEntityAnnotator(nil)
	d := transcript(1, "Mary Jones met Mary Jones in London. London again.")
	anns := a.Annotate(d)
	ents := EntitiesFromAnnotation(&docmodel.Document{Root: anns[0]})
	byType := entityTypesOf(ents)
	if len(byType["person"]) != 1 {
		t.Errorf("duplicate person mentions should dedupe: %v", byType["person"])
	}
	if len(byType["location"]) != 1 {
		t.Errorf("duplicate locations should dedupe: %v", byType["location"])
	}
}

func TestEntityWordBoundaries(t *testing.T) {
	a := NewEntityAnnotator(Dictionaries{Locations: []string{"rome"}})
	d := transcript(1, "The chrome browser is not in rome.")
	anns := a.Annotate(d)
	if len(anns) != 1 {
		t.Fatal("expected one annotation")
	}
	ents := EntitiesFromAnnotation(&docmodel.Document{Root: anns[0]})
	if len(ents) != 1 || ents[0].Norm != "rome" {
		t.Errorf("boundary matching: %v", ents)
	}
}

func TestEntityInterested(t *testing.T) {
	a := NewDefaultEntityAnnotator(nil)
	if !a.Interested(transcript(1, "text here")) {
		t.Error("text doc should interest entity annotator")
	}
	numeric := &docmodel.Document{Root: docmodel.Object(docmodel.F("n", docmodel.Int(5)))}
	if a.Interested(numeric) {
		t.Error("numeric-only doc should not interest entity annotator")
	}
}

func TestEntityPathRecorded(t *testing.T) {
	a := NewDefaultEntityAnnotator(nil)
	d := &docmodel.Document{
		ID: docmodel.DocID{Origin: 1, Seq: 2}, Version: 1,
		Root: docmodel.Object(
			docmodel.F("subject", docmodel.String("meeting with Grace Hopper")),
			docmodel.F("body", docmodel.String("see you in Tokyo")),
		),
	}
	ents := EntitiesFromAnnotation(&docmodel.Document{Root: a.Annotate(d)[0]})
	paths := map[string]string{}
	for _, e := range ents {
		paths[e.Type] = e.Path
	}
	if paths["person"] != "/subject" || paths["location"] != "/body" {
		t.Errorf("paths = %v", paths)
	}
}

func TestSentimentScoring(t *testing.T) {
	a := NewSentimentAnnotator()
	pos := transcript(1, "I love this product, it is excellent and wonderful, thank you so much for the great help")
	anns := a.Annotate(pos)
	if len(anns) != 1 {
		t.Fatal("no sentiment annotation")
	}
	ad := &docmodel.Document{Root: anns[0]}
	if ad.First("/label").StringVal() != "positive" {
		t.Errorf("label = %s", ad.First("/label"))
	}
	if ad.First("/score").FloatVal() <= 0 {
		t.Error("positive score expected")
	}

	neg := transcript(2, "terrible awful broken useless product, very angry and disappointed, want a refund now because of this problem")
	ad = &docmodel.Document{Root: a.Annotate(neg)[0]}
	if ad.First("/label").StringVal() != "negative" {
		t.Errorf("label = %s", ad.First("/label"))
	}

	mixed := transcript(3, "good product but terrible support, happy with device, angry about the billing problem though")
	ad = &docmodel.Document{Root: a.Annotate(mixed)[0]}
	if got := ad.First("/label").StringVal(); got != "neutral" && got != "negative" {
		t.Errorf("mixed label = %s", got)
	}
}

func TestSentimentStemsInflections(t *testing.T) {
	a := NewSentimentAnnotator()
	d := transcript(1, "totally loved it, recommending to everyone, thanks so much indeed friends")
	anns := a.Annotate(d)
	if len(anns) == 0 {
		t.Fatal("stemmed lexicon should match loved/recommending/thanks")
	}
	ad := &docmodel.Document{Root: anns[0]}
	if ad.First("/positive_hits").IntVal() < 2 {
		t.Errorf("positive hits = %s", ad.First("/positive_hits"))
	}
}

func TestSentimentNoHitsNoAnnotation(t *testing.T) {
	a := NewSentimentAnnotator()
	if anns := a.Annotate(transcript(1, "the delivery arrived on tuesday afternoon as scheduled")); len(anns) != 0 {
		t.Error("neutral factual text should yield no sentiment annotation")
	}
}

func TestSentimentInterestedThreshold(t *testing.T) {
	a := NewSentimentAnnotator()
	if a.Interested(transcript(1, "ok")) {
		t.Error("tiny text should not interest sentiment")
	}
	if !a.Interested(transcript(1, "this is a longer piece of customer feedback text")) {
		t.Error("prose should interest sentiment")
	}
}

func TestRegistryRunWrapsAnnotationDocs(t *testing.T) {
	reg := NewRegistry(NewDefaultEntityAnnotator(nil), NewSentimentAnnotator())
	base := transcript(7, "Linda Park from Boston says the product is excellent and she is very happy with everything")
	anns := reg.Run(base)
	if len(anns) != 2 {
		t.Fatalf("annotation docs = %d, want 2 (entity + sentiment)", len(anns))
	}
	for _, ad := range anns {
		if ad.Annotates != base.ID {
			t.Errorf("annotation must reference base: %v", ad.Annotates)
		}
		if ad.MediaType != MediaAnnotation {
			t.Errorf("media type = %s", ad.MediaType)
		}
		if ad.Root.Get("base").RefVal() != base.ID {
			t.Error("body must embed base ref")
		}
		if ad.Root.Get("base_version").IntVal() != 1 {
			t.Error("body must record base version")
		}
		refs := ad.Refs()
		if len(refs) != 1 || refs[0] != base.ID {
			t.Errorf("Refs = %v", refs)
		}
	}
	if reg.Names()[0] != "entity" || reg.Names()[1] != "sentiment" {
		t.Errorf("names = %v", reg.Names())
	}
}

func TestRegistryNeverAnnotatesAnnotations(t *testing.T) {
	reg := NewRegistry(NewDefaultEntityAnnotator(nil))
	base := transcript(7, "Linda Park visited Boston")
	anns := reg.Run(base)
	if len(anns) == 0 {
		t.Fatal("expected annotations")
	}
	anns[0].ID = docmodel.DocID{Origin: 1, Seq: 99}
	if again := reg.Run(anns[0]); len(again) != 0 {
		t.Error("annotation documents must not be re-annotated (feedback loop)")
	}
}

func TestRegistryRegisterAppends(t *testing.T) {
	reg := NewRegistry()
	reg.Register(NewSentimentAnnotator())
	if len(reg.Names()) != 1 {
		t.Error("Register failed")
	}
}
