package annot

import (
	"regexp"
	"strings"

	"impliance/internal/docmodel"
)

// EntityAnnotator extracts typed entity mentions from the text of a
// document: person names (dictionary-seeded capitalized bigrams),
// locations and products (dictionaries), and pattern entities (money,
// phone numbers, e-mail addresses, reference codes). This is the
// intra-document half of the paper's discovery pipeline (§3.3).
type EntityAnnotator struct {
	firstNames map[string]struct{}
	locations  map[string]struct{}
	products   map[string]struct{}
}

// Dictionaries seed the entity annotator. Empty slices disable that
// entity class. The workload generators draw from the same lists so
// synthetic corpora and extraction agree (DESIGN.md substitution table).
type Dictionaries struct {
	FirstNames []string
	Locations  []string
	Products   []string
}

// DefaultFirstNames is a compact seed dictionary of given names.
var DefaultFirstNames = []string{
	"james", "mary", "john", "patricia", "robert", "jennifer", "michael",
	"linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "grace",
	"ada", "alan", "edsger", "donald", "barbara", "niklaus", "tony",
}

// DefaultLocations is a compact seed dictionary of place names.
var DefaultLocations = []string{
	"almaden", "san jose", "new york", "london", "tokyo", "paris",
	"zurich", "austin", "boston", "seattle", "chicago", "denver",
	"portland", "atlanta", "dallas", "miami",
}

// NewEntityAnnotator builds an entity annotator over the dictionaries.
func NewEntityAnnotator(dicts Dictionaries) *EntityAnnotator {
	return &EntityAnnotator{
		firstNames: lowerSet(dicts.FirstNames),
		locations:  lowerSet(dicts.Locations),
		products:   lowerSet(dicts.Products),
	}
}

// NewDefaultEntityAnnotator uses the package's default name and location
// dictionaries plus the given product catalog.
func NewDefaultEntityAnnotator(products []string) *EntityAnnotator {
	return NewEntityAnnotator(Dictionaries{
		FirstNames: DefaultFirstNames,
		Locations:  DefaultLocations,
		Products:   products,
	})
}

func lowerSet(words []string) map[string]struct{} {
	m := make(map[string]struct{}, len(words))
	for _, w := range words {
		m[strings.ToLower(w)] = struct{}{}
	}
	return m
}

// Name implements Annotator.
func (a *EntityAnnotator) Name() string { return "entity" }

// Interested implements Annotator: any non-annotation document with text.
func (a *EntityAnnotator) Interested(d *docmodel.Document) bool {
	has := false
	d.WalkLeaves(func(pv docmodel.PathVisit) bool {
		if pv.Value.Kind() == docmodel.KindString && pv.Value.StringVal() != "" {
			has = true
			return false
		}
		return true
	})
	return has
}

var (
	moneyRe = regexp.MustCompile(`\$[0-9][0-9,]*(?:\.[0-9]{2})?`)
	phoneRe = regexp.MustCompile(`\b[0-9]{3}[-. ][0-9]{3}[-. ][0-9]{4}\b`)
	emailRe = regexp.MustCompile(`\b[A-Za-z0-9._%+\-]+@[A-Za-z0-9.\-]+\.[A-Za-z]{2,}\b`)
	codeRe  = regexp.MustCompile(`\b[A-Z]{2,4}-[0-9]{2,8}\b`)
	// capWord matches a capitalized word for person-name bigrams.
	capWordRe = regexp.MustCompile(`\b[A-Z][a-z]+\b`)
)

// Annotate implements Annotator: one annotation document carrying every
// entity found in the base document.
func (a *EntityAnnotator) Annotate(d *docmodel.Document) []docmodel.Value {
	var ents []Entity
	stringLeaves(d, func(path, s string) {
		ents = append(ents, a.extract(path, s)...)
	})
	ents = dedupeEntities(ents)
	if len(ents) == 0 {
		return nil
	}
	vals := make([]docmodel.Value, len(ents))
	for i, e := range ents {
		vals[i] = e.EntityValue()
	}
	return []docmodel.Value{docmodel.Object(
		docmodel.F("entities", docmodel.Array(vals...)),
		docmodel.F("count", docmodel.Int(int64(len(vals)))),
	)}
}

func (a *EntityAnnotator) extract(path, s string) []Entity {
	var out []Entity
	add := func(typ, text string) {
		out = append(out, Entity{Type: typ, Text: text, Norm: strings.ToLower(text), Path: path})
	}
	for _, m := range moneyRe.FindAllString(s, -1) {
		add("money", m)
	}
	for _, m := range phoneRe.FindAllString(s, -1) {
		add("phone", m)
	}
	for _, m := range emailRe.FindAllString(s, -1) {
		add("email", m)
	}
	for _, m := range codeRe.FindAllString(s, -1) {
		add("code", m)
	}

	// Person names: a dictionary first name followed by a capitalized word.
	caps := capWordRe.FindAllStringIndex(s, -1)
	for i := 0; i+1 < len(caps); i++ {
		first := s[caps[i][0]:caps[i][1]]
		if _, ok := a.firstNames[strings.ToLower(first)]; !ok {
			continue
		}
		// The next capitalized word must be adjacent (whitespace only).
		gap := s[caps[i][1]:caps[i+1][0]]
		if strings.TrimSpace(gap) != "" || len(gap) > 2 {
			continue
		}
		last := s[caps[i+1][0]:caps[i+1][1]]
		add("person", first+" "+last)
	}

	// Locations and products: dictionary scan over lower-cased text,
	// longest phrases first (multi-word entries like "san jose").
	low := strings.ToLower(s)
	for loc := range a.locations {
		if containsWord(low, loc) {
			add("location", loc)
		}
	}
	for p := range a.products {
		if containsWord(low, p) {
			add("product", p)
		}
	}
	return out
}

// containsWord reports whether phrase occurs in s on word boundaries.
func containsWord(s, phrase string) bool {
	idx := 0
	for {
		i := strings.Index(s[idx:], phrase)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(phrase)
		leftOK := start == 0 || !isWordByte(s[start-1])
		rightOK := end == len(s) || !isWordByte(s[end])
		if leftOK && rightOK {
			return true
		}
		idx = start + 1
		if idx >= len(s) {
			return false
		}
	}
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
