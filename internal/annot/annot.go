// Package annot implements the annotator framework of paper §3.2: "the
// row is annotated by annotators that have expressed an interest in this
// type of data... The annotators create new annotation documents that
// refer to the initial row document, and contain information extracted
// from the row."
//
// Annotators run asynchronously after ingestion (scheduled by the core
// engine as background work on data nodes — intra-document analysis per
// paper §3.3) and produce *annotation documents*: ordinary documents whose
// Annotates field references the base document. Because annotations are
// documents, they are themselves indexed, searchable, and versioned, and
// the query engine needs no special understanding of them (paper §2.2:
// "the query processing engine does not 'understand' the annotations").
//
// Substitution note (DESIGN.md §2): the paper envisions UIMA-scale NLP.
// The built-in annotators here are dictionary/regex/lexicon based — enough
// to exercise the discovery dataflow end to end with controllable
// precision on synthetic corpora.
package annot

import (
	"sort"

	"impliance/internal/docmodel"
)

// MediaAnnotation is the media type assigned to annotation documents.
const MediaAnnotation = "application/x-impliance-annotation"

// AnnotationSource is the ingestion source recorded on annotation
// documents. Annotations do not inherit the base document's source, so
// source-scoped queries over user data never double-count derived
// documents; provenance is preserved through the base reference.
const AnnotationSource = "impliance:annotations"

// Annotator is an intra-document analysis (paper §3.3: "Data nodes
// perform intra-document analyses: tasks like entity extraction and
// sentiment detection within a single document").
type Annotator interface {
	// Name identifies the annotator; it is recorded on every annotation
	// document it produces.
	Name() string
	// Interested reports whether the annotator wants this document
	// ("annotators that have expressed an interest in this type of data").
	Interested(d *docmodel.Document) bool
	// Annotate returns annotation bodies extracted from the document.
	// Returning no bodies is normal (nothing found).
	Annotate(d *docmodel.Document) []docmodel.Value
}

// Registry holds the appliance's installed annotators.
type Registry struct {
	annotators []Annotator
}

// NewRegistry creates a registry with the given annotators.
func NewRegistry(annotators ...Annotator) *Registry {
	return &Registry{annotators: annotators}
}

// Register appends an annotator.
func (r *Registry) Register(a Annotator) { r.annotators = append(r.annotators, a) }

// Names lists registered annotator names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.annotators))
	for i, a := range r.annotators {
		out[i] = a.Name()
	}
	return out
}

// Run applies every interested annotator to the document and returns the
// resulting annotation documents (without IDs — the engine persists them
// and assigns identity). Annotation documents are never re-annotated,
// preventing feedback loops.
func (r *Registry) Run(base *docmodel.Document) []*docmodel.Document {
	if base.IsAnnotation() {
		return nil
	}
	var out []*docmodel.Document
	for _, a := range r.annotators {
		if !a.Interested(base) {
			continue
		}
		for _, body := range a.Annotate(base) {
			out = append(out, &docmodel.Document{
				MediaType: MediaAnnotation,
				Source:    AnnotationSource,
				Annotates: base.ID,
				Annotator: a.Name(),
				Root: body.Set("base", docmodel.Ref(base.ID)).
					Set("base_version", docmodel.Int(int64(base.Version))),
			})
		}
	}
	return out
}

// Entity is one extracted entity mention.
type Entity struct {
	Type string // "person", "location", "product", "money", "phone", "email", "code"
	Text string // surface form
	Norm string // normalized form used for resolution
	Path string // document path the mention was found at
}

// EntityValue renders the entity as a document value.
func (e Entity) EntityValue() docmodel.Value {
	return docmodel.Object(
		docmodel.F("type", docmodel.String(e.Type)),
		docmodel.F("text", docmodel.String(e.Text)),
		docmodel.F("norm", docmodel.String(e.Norm)),
		docmodel.F("path", docmodel.String(e.Path)),
	)
}

// EntitiesFromAnnotation re-parses entities out of an entity annotation
// document (the inverse of EntityValue); the discovery layer uses this.
func EntitiesFromAnnotation(d *docmodel.Document) []Entity {
	var out []Entity
	for _, v := range d.At("/entities") {
		if v.Kind() != docmodel.KindObject {
			continue
		}
		out = append(out, Entity{
			Type: v.Get("type").StringVal(),
			Text: v.Get("text").StringVal(),
			Norm: v.Get("norm").StringVal(),
			Path: v.Get("path").StringVal(),
		})
	}
	return out
}

// stringLeaves walks every string leaf of a document with its path.
func stringLeaves(d *docmodel.Document, fn func(path, s string)) {
	d.WalkLeaves(func(pv docmodel.PathVisit) bool {
		if pv.Value.Kind() == docmodel.KindString {
			fn(pv.Path, pv.Value.StringVal())
		}
		return true
	})
}

func dedupeEntities(ents []Entity) []Entity {
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].Type != ents[j].Type {
			return ents[i].Type < ents[j].Type
		}
		if ents[i].Norm != ents[j].Norm {
			return ents[i].Norm < ents[j].Norm
		}
		return ents[i].Path < ents[j].Path
	})
	out := ents[:0]
	for i, e := range ents {
		if i == 0 || e != ents[i-1] {
			out = append(out, e)
		}
	}
	return out
}
