package annot

import (
	"strings"

	"impliance/internal/docmodel"
	"impliance/internal/text"
)

// SentimentAnnotator scores document text with a polarity lexicon — the
// paper's example of sentiment detection as an intra-document analysis
// (§3.3). The CRM use case (§2.1.1) correlates this with customer
// profiles to drive offers.
type SentimentAnnotator struct {
	positive map[string]struct{}
	negative map[string]struct{}
}

// Default polarity lexicons (stemmed at load so inflections match).
var (
	defaultPositive = []string{
		"good", "great", "excellent", "happy", "love", "wonderful", "best",
		"fantastic", "satisfied", "pleased", "helpful", "recommend",
		"amazing", "perfect", "thanks", "thank", "awesome", "delighted",
	}
	defaultNegative = []string{
		"bad", "terrible", "awful", "unhappy", "hate", "worst", "angry",
		"disappointed", "broken", "refund", "complaint", "problem",
		"useless", "slow", "cancel", "frustrated", "horrible", "defective",
	}
)

// NewSentimentAnnotator builds the annotator with the default lexicons.
func NewSentimentAnnotator() *SentimentAnnotator {
	return NewSentimentAnnotatorWithLexicon(defaultPositive, defaultNegative)
}

// NewSentimentAnnotatorWithLexicon builds the annotator with custom
// polarity word lists.
func NewSentimentAnnotatorWithLexicon(positive, negative []string) *SentimentAnnotator {
	a := &SentimentAnnotator{positive: map[string]struct{}{}, negative: map[string]struct{}{}}
	for _, w := range positive {
		a.positive[text.Stem(strings.ToLower(w))] = struct{}{}
	}
	for _, w := range negative {
		a.negative[text.Stem(strings.ToLower(w))] = struct{}{}
	}
	return a
}

// Name implements Annotator.
func (a *SentimentAnnotator) Name() string { return "sentiment" }

// Interested implements Annotator: documents with a reasonable amount of
// prose (at least five tokens across string fields).
func (a *SentimentAnnotator) Interested(d *docmodel.Document) bool {
	tokens := 0
	d.WalkLeaves(func(pv docmodel.PathVisit) bool {
		if pv.Value.Kind() == docmodel.KindString {
			tokens += len(text.DefaultAnalyzer.Terms(pv.Value.StringVal()))
		}
		return tokens < 5
	})
	return tokens >= 5
}

// Annotate implements Annotator: one annotation with the polarity score in
// [-1, 1], a label, and the raw hit counts.
func (a *SentimentAnnotator) Annotate(d *docmodel.Document) []docmodel.Value {
	pos, neg := 0, 0
	stringLeaves(d, func(_, s string) {
		text.DefaultAnalyzer.TokenizeFunc(s, func(tok text.Token) {
			if _, ok := a.positive[tok.Term]; ok {
				pos++
			}
			if _, ok := a.negative[tok.Term]; ok {
				neg++
			}
		})
	})
	if pos == 0 && neg == 0 {
		return nil
	}
	score := float64(pos-neg) / float64(pos+neg)
	label := "neutral"
	switch {
	case score > 0.25:
		label = "positive"
	case score < -0.25:
		label = "negative"
	}
	return []docmodel.Value{docmodel.Object(
		docmodel.F("score", docmodel.Float(score)),
		docmodel.F("label", docmodel.String(label)),
		docmodel.F("positive_hits", docmodel.Int(int64(pos))),
		docmodel.F("negative_hits", docmodel.Int(int64(neg))),
	)}
}
