package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/index"
	"impliance/internal/tail"
)

// Wire formats for fabric messages. Documents travel in their native
// binary encoding; small control structures travel as JSON. Every byte is
// accounted by the fabric, which is what the pushdown and scale-out
// experiments measure.

// encodeDocs concatenates length-prefixed document encodings.
func encodeDocs(docs []*docmodel.Document) []byte {
	buf := make([]byte, 0, 256*len(docs)+8)
	buf = binary.AppendUvarint(buf, uint64(len(docs)))
	for _, d := range docs {
		b := docmodel.EncodeDocument(d)
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		buf = append(buf, b...)
	}
	return buf
}

// decodeDocs parses encodeDocs output.
func decodeDocs(b []byte) ([]*docmodel.Document, error) {
	n, off := binary.Uvarint(b)
	if off <= 0 {
		return nil, fmt.Errorf("core: bad doc batch header")
	}
	// Each document costs at least one length byte, so a count beyond the
	// remaining payload is corrupt; checking before the preallocation
	// keeps a hostile header from sizing the slice.
	if n > uint64(len(b)-off) {
		return nil, fmt.Errorf("core: doc batch count %d exceeds payload", n)
	}
	out := make([]*docmodel.Document, 0, n)
	for i := uint64(0); i < n; i++ {
		l, m := binary.Uvarint(b[off:])
		if m <= 0 || uint64(len(b)-off-m) < l {
			return nil, fmt.Errorf("core: truncated doc batch")
		}
		off += m
		d, err := docmodel.DecodeDocument(b[off : off+int(l)])
		if err != nil {
			return nil, err
		}
		off += int(l)
		out = append(out, d)
	}
	if off != len(b) {
		return nil, fmt.Errorf("core: trailing bytes in doc batch")
	}
	return out, nil
}

// Paged scan protocol. A scan request names the pushed-down filter and a
// page bound; the node replies with up to Page matching documents plus a
// resume token (the position and ID of the last document it *examined*,
// matching or not). The caller re-calls with the token until more=false,
// so peak reply size — and the caller's peak undecoded buffer — is
// O(page), not O(corpus). The token is position-hinted but ID-verified:
// if membership or registration changed under the cursor the node falls
// back to searching for the ID, and a vanished ID restarts the node's
// scan from the top (the caller's cross-node dedup absorbs re-delivery).

type scanReq struct {
	Filter   []byte `json:"filter,omitempty"` // expr.Encode; absent for scan-all
	Page     int    `json:"page,omitempty"`   // max docs per reply; <= 0 = everything
	AfterPos int    `json:"after_pos,omitempty"`
	AfterID  string `json:"after_id,omitempty"`
}

// encodeScanPage frames one scan reply:
// flags byte (bit0 = more) | pos+1 uvarint | origin uvarint | seq uvarint | doc batch.
func encodeScanPage(docs []*docmodel.Document, more bool, pos int, lastID docmodel.DocID) []byte {
	var flags byte
	if more {
		flags = 1
	}
	buf := make([]byte, 0, 32)
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(pos+1)) // -1 (nothing examined) → 0
	buf = binary.AppendUvarint(buf, uint64(lastID.Origin))
	buf = binary.AppendUvarint(buf, lastID.Seq)
	return append(buf, encodeDocs(docs)...)
}

// decodeScanPage parses encodeScanPage output.
func decodeScanPage(b []byte) (docs []*docmodel.Document, more bool, pos int, lastID docmodel.DocID, err error) {
	if len(b) < 1 {
		return nil, false, 0, docmodel.DocID{}, fmt.Errorf("core: empty scan page")
	}
	more = b[0]&1 != 0
	off := 1
	vals := [3]uint64{}
	for i := range vals {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, false, 0, docmodel.DocID{}, fmt.Errorf("core: truncated scan page header")
		}
		vals[i], off = v, off+n
	}
	pos = int(vals[0]) - 1
	lastID = docmodel.DocID{Origin: uint32(vals[1]), Seq: vals[2]}
	docs, err = decodeDocs(b[off:])
	return docs, more, pos, lastID, err
}

// wire control structs (JSON).

type searchReq struct {
	Terms []string `json:"terms"`
	K     int      `json:"k"`
}

type searchHit struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

type valueLookupReq struct {
	Path  string `json:"path"`
	Value []byte `json:"value,omitempty"` // docmodel.EncodeValue
	Lo    []byte `json:"lo,omitempty"`
	Hi    []byte `json:"hi,omitempty"`
	LoInc bool   `json:"lo_inc,omitempty"`
	HiInc bool   `json:"hi_inc,omitempty"`
	Range bool   `json:"range,omitempty"`
	// Parts restricts the probe to these partitions of the node's value
	// index (nil = all). The engine's router fills it with the partitions
	// it selected this node for.
	Parts []int `json:"parts,omitempty"`
}

type idListResp struct {
	IDs []string `json:"ids"`
}

type getBatchReq struct {
	IDs []string `json:"ids"`
}

type aggReq struct {
	Filter []byte        `json:"filter"` // expr.Encode
	By     []string      `json:"by"`
	Aggs   []aggSpecWire `json:"aggs"`
	// Parts requests per-partition partials for exactly these partitions
	// instead of one node-level partial over the node's whole answering
	// set. With Parts set the reply is JSON []aggPartialWire; without it
	// the reply is a single raw partials blob (the broadcast fallback).
	Parts []int `json:"parts,omitempty"`
}

// aggPartialWire is one partition's aggregate partial in a routed
// (Parts-carrying) aggregation reply.
type aggPartialWire struct {
	Part    int    `json:"part"`
	Partial []byte `json:"partial"` // expr EncodePartials blob
}

type aggSpecWire struct {
	Kind uint8  `json:"kind"`
	Path string `json:"path,omitempty"`
}

func specToWire(spec expr.GroupSpec) aggReq {
	r := aggReq{By: spec.By}
	for _, a := range spec.Aggs {
		r.Aggs = append(r.Aggs, aggSpecWire{Kind: uint8(a.Kind), Path: a.Path})
	}
	return r
}

func (r aggReq) spec() expr.GroupSpec {
	spec := expr.GroupSpec{By: r.By}
	for _, a := range r.Aggs {
		spec.Aggs = append(spec.Aggs, expr.AggSpec{Kind: expr.AggKind(a.Kind), Path: a.Path})
	}
	return spec
}

type mergeReq struct {
	By       []string      `json:"by"`
	Aggs     []aggSpecWire `json:"aggs"`
	Partials [][]byte      `json:"partials"`
}

type facetsReq struct {
	Path  string   `json:"path"`
	IDs   []string `json:"ids,omitempty"` // nil = all docs on the node
	All   bool     `json:"all,omitempty"`
	Limit int      `json:"limit"`
	// Parts restricts the count to these partitions of the node's index.
	// With Parts set the reply is []facetPartialWire (per partition, so
	// the engine can cache each partition's partial separately); without
	// it the reply is flat []facetBucketWire over the node's whole index
	// (the broadcast fallback).
	Parts []int `json:"parts,omitempty"`
}

// facetPartialWire is one partition's facet buckets in a routed
// (Parts-carrying) facet reply.
type facetPartialWire struct {
	Part    int               `json:"part"`
	Buckets []facetBucketWire `json:"buckets"`
}

type facetBucketWire struct {
	Value []byte `json:"value"`
	Count int    `json:"count"`
}

type lockReq struct {
	Name  string `json:"name"`
	Owner string `json:"owner"`
}

type lockResp struct {
	Token uint64 `json:"token"`
	OK    bool   `json:"ok"`
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("core: marshal wire struct: %v", err))
	}
	return b
}

func unmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }

func parseIDs(ids []string) ([]docmodel.DocID, error) {
	out := make([]docmodel.DocID, 0, len(ids))
	for _, s := range ids {
		id, err := docmodel.ParseDocID(s)
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}

func idStrings(ids []docmodel.DocID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = id.String()
	}
	return out
}

// Tail wire protocol. A tail subscription crosses process boundaries
// (the HTTP SSE endpoint, implctl tail), so its three control messages
// have stable wire forms: the subscribe carries a filter and an optional
// resume token, each delivery is one TailFrame, and the acknowledgement
// is implicit in the frame — Resume on frame N is the token that resumes
// delivery exactly after N (per-partition acknowledged watermarks,
// encoded "part:watermark" pairs joined by commas).

// TailFrame is one delivered tail event in wire form.
type TailFrame struct {
	Partition int             `json:"part"`
	Seq       uint64          `json:"seq"`
	Gen       uint64          `json:"gen"`
	Kind      string          `json:"kind"` // ingest | update | delete
	ID        string          `json:"id"`
	Version   uint32          `json:"version"`
	MediaType string          `json:"media_type,omitempty"`
	Source    string          `json:"source,omitempty"`
	Body      json.RawMessage `json:"body,omitempty"`
	// Resume is the token that resumes the subscription exactly after
	// this frame (the cursor's acknowledged watermarks at delivery).
	Resume string `json:"resume"`
}

// TailFrameOf converts a delivered event plus the cursor's current
// watermarks into its wire frame.
func TailFrameOf(ev tail.Event, marks map[int]uint64) TailFrame {
	f := TailFrame{
		Partition: ev.Partition,
		Seq:       ev.Seq,
		Gen:       ev.Gen,
		Kind:      ev.Kind.String(),
		Resume:    EncodeTailResume(marks),
	}
	if ev.Doc != nil {
		f.ID = ev.Doc.ID.String()
		f.Version = ev.Doc.Version
		f.MediaType = ev.Doc.MediaType
		f.Source = ev.Doc.Source
		f.Body = docmodel.ToJSON(ev.Doc.Root)
	}
	return f
}

// EncodeTailResume renders per-partition watermarks as a resume token:
// "part:watermark" pairs in ascending partition order, comma-joined.
// Zero watermarks are omitted (nothing acknowledged, nothing to skip).
func EncodeTailResume(marks map[int]uint64) string {
	parts := make([]int, 0, len(marks))
	for p, w := range marks {
		if w > 0 {
			parts = append(parts, p)
		}
	}
	sort.Ints(parts)
	var sb strings.Builder
	for i, p := range parts {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d:%d", p, marks[p])
	}
	return sb.String()
}

// DecodeTailResume parses EncodeTailResume output. An empty token is a
// fresh subscription (nil map). Parsing is strict — trailing garbage in
// a pair or a repeated partition rejects the whole token, because a
// silently misread watermark skips (or replays) committed events.
func DecodeTailResume(tok string) (map[int]uint64, error) {
	if tok == "" {
		return nil, nil
	}
	marks := map[int]uint64{}
	for _, pair := range strings.Split(tok, ",") {
		ps, ws, ok := strings.Cut(pair, ":")
		if !ok {
			return nil, fmt.Errorf("core: bad tail resume token %q", tok)
		}
		p, perr := strconv.Atoi(ps)
		w, werr := strconv.ParseUint(ws, 10, 64)
		if perr != nil || werr != nil || p < 0 {
			return nil, fmt.Errorf("core: bad tail resume token %q", tok)
		}
		if _, dup := marks[p]; dup {
			return nil, fmt.Errorf("core: bad tail resume token %q: partition %d repeated", tok, p)
		}
		marks[p] = w
	}
	return marks, nil
}

func hitsToWire(hits []index.Hit) []searchHit {
	out := make([]searchHit, len(hits))
	for i, h := range hits {
		out[i] = searchHit{ID: h.ID.String(), Score: h.Score}
	}
	return out
}

func hitsFromWire(ws []searchHit) ([]index.Hit, error) {
	out := make([]index.Hit, len(ws))
	for i, w := range ws {
		id, err := docmodel.ParseDocID(w.ID)
		if err != nil {
			return nil, err
		}
		out[i] = index.Hit{ID: id, Score: w.Score}
	}
	return out, nil
}
