package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/index"
)

// Wire formats for fabric messages. Documents travel in their native
// binary encoding; small control structures travel as JSON. Every byte is
// accounted by the fabric, which is what the pushdown and scale-out
// experiments measure.

// encodeDocs concatenates length-prefixed document encodings.
func encodeDocs(docs []*docmodel.Document) []byte {
	buf := make([]byte, 0, 256*len(docs)+8)
	buf = binary.AppendUvarint(buf, uint64(len(docs)))
	for _, d := range docs {
		b := docmodel.EncodeDocument(d)
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		buf = append(buf, b...)
	}
	return buf
}

// decodeDocs parses encodeDocs output.
func decodeDocs(b []byte) ([]*docmodel.Document, error) {
	n, off := binary.Uvarint(b)
	if off <= 0 {
		return nil, fmt.Errorf("core: bad doc batch header")
	}
	// Each document costs at least one length byte, so a count beyond the
	// remaining payload is corrupt; checking before the preallocation
	// keeps a hostile header from sizing the slice.
	if n > uint64(len(b)-off) {
		return nil, fmt.Errorf("core: doc batch count %d exceeds payload", n)
	}
	out := make([]*docmodel.Document, 0, n)
	for i := uint64(0); i < n; i++ {
		l, m := binary.Uvarint(b[off:])
		if m <= 0 || uint64(len(b)-off-m) < l {
			return nil, fmt.Errorf("core: truncated doc batch")
		}
		off += m
		d, err := docmodel.DecodeDocument(b[off : off+int(l)])
		if err != nil {
			return nil, err
		}
		off += int(l)
		out = append(out, d)
	}
	if off != len(b) {
		return nil, fmt.Errorf("core: trailing bytes in doc batch")
	}
	return out, nil
}

// wire control structs (JSON).

type searchReq struct {
	Terms []string `json:"terms"`
	K     int      `json:"k"`
}

type searchHit struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

type valueLookupReq struct {
	Path  string `json:"path"`
	Value []byte `json:"value,omitempty"` // docmodel.EncodeValue
	Lo    []byte `json:"lo,omitempty"`
	Hi    []byte `json:"hi,omitempty"`
	LoInc bool   `json:"lo_inc,omitempty"`
	HiInc bool   `json:"hi_inc,omitempty"`
	Range bool   `json:"range,omitempty"`
	// Parts restricts the probe to these partitions of the node's value
	// index (nil = all). The engine's router fills it with the partitions
	// it selected this node for.
	Parts []int `json:"parts,omitempty"`
}

type idListResp struct {
	IDs []string `json:"ids"`
}

type getBatchReq struct {
	IDs []string `json:"ids"`
}

type aggReq struct {
	Filter []byte        `json:"filter"` // expr.Encode
	By     []string      `json:"by"`
	Aggs   []aggSpecWire `json:"aggs"`
	// Parts requests per-partition partials for exactly these partitions
	// instead of one node-level partial over the node's whole answering
	// set. With Parts set the reply is JSON []aggPartialWire; without it
	// the reply is a single raw partials blob (the broadcast fallback).
	Parts []int `json:"parts,omitempty"`
}

// aggPartialWire is one partition's aggregate partial in a routed
// (Parts-carrying) aggregation reply.
type aggPartialWire struct {
	Part    int    `json:"part"`
	Partial []byte `json:"partial"` // expr EncodePartials blob
}

type aggSpecWire struct {
	Kind uint8  `json:"kind"`
	Path string `json:"path,omitempty"`
}

func specToWire(spec expr.GroupSpec) aggReq {
	r := aggReq{By: spec.By}
	for _, a := range spec.Aggs {
		r.Aggs = append(r.Aggs, aggSpecWire{Kind: uint8(a.Kind), Path: a.Path})
	}
	return r
}

func (r aggReq) spec() expr.GroupSpec {
	spec := expr.GroupSpec{By: r.By}
	for _, a := range r.Aggs {
		spec.Aggs = append(spec.Aggs, expr.AggSpec{Kind: expr.AggKind(a.Kind), Path: a.Path})
	}
	return spec
}

type mergeReq struct {
	By       []string      `json:"by"`
	Aggs     []aggSpecWire `json:"aggs"`
	Partials [][]byte      `json:"partials"`
}

type facetsReq struct {
	Path  string   `json:"path"`
	IDs   []string `json:"ids,omitempty"` // nil = all docs on the node
	All   bool     `json:"all,omitempty"`
	Limit int      `json:"limit"`
	// Parts restricts the count to these partitions of the node's index.
	// With Parts set the reply is []facetPartialWire (per partition, so
	// the engine can cache each partition's partial separately); without
	// it the reply is flat []facetBucketWire over the node's whole index
	// (the broadcast fallback).
	Parts []int `json:"parts,omitempty"`
}

// facetPartialWire is one partition's facet buckets in a routed
// (Parts-carrying) facet reply.
type facetPartialWire struct {
	Part    int               `json:"part"`
	Buckets []facetBucketWire `json:"buckets"`
}

type facetBucketWire struct {
	Value []byte `json:"value"`
	Count int    `json:"count"`
}

type lockReq struct {
	Name  string `json:"name"`
	Owner string `json:"owner"`
}

type lockResp struct {
	Token uint64 `json:"token"`
	OK    bool   `json:"ok"`
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("core: marshal wire struct: %v", err))
	}
	return b
}

func unmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }

func parseIDs(ids []string) ([]docmodel.DocID, error) {
	out := make([]docmodel.DocID, 0, len(ids))
	for _, s := range ids {
		id, err := docmodel.ParseDocID(s)
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}

func idStrings(ids []docmodel.DocID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = id.String()
	}
	return out
}

func hitsToWire(hits []index.Hit) []searchHit {
	out := make([]searchHit, len(hits))
	for i, h := range hits {
		out[i] = searchHit{ID: h.ID.String(), Score: h.Score}
	}
	return out
}

func hitsFromWire(ws []searchHit) ([]index.Hit, error) {
	out := make([]index.Hit, len(ws))
	for i, w := range ws {
		id, err := docmodel.ParseDocID(w.ID)
		if err != nil {
			return nil, err
		}
		out[i] = index.Hit{ID: id, Score: w.Score}
	}
	return out, nil
}
