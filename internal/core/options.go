package core

import (
	"context"
	"time"
)

// Per-call request options. The engine's Config holds appliance-wide
// policy; a CallOption tunes one request — the Dynamo-style per-call
// knobs (consistency, staleness) and the request-lifecycle ones (row
// limit, deadline) that a multi-tenant appliance needs so one caller's
// preferences never become another caller's configuration.

// Consistency selects which replica may answer a routed point read.
type Consistency uint8

const (
	// ReadOwner is the default: the partition's answering owner — the
	// first eligible (alive, not write-quarantined) holder on the
	// read side of any open dual-ownership window. It always observes
	// the latest acknowledged write.
	ReadOwner Consistency = iota
	// ReadOne accepts any alive write-side holder, including a node
	// quarantined for missed writes and the catching-up side of an open
	// hand-off window. It is the cheapest read that can still be served
	// under failures — and it may return a lagging version.
	ReadOne
)

// CallOption tunes one request.
type CallOption func(*callOpts)

// callOpts is the resolved option set a request carries down the stack.
type callOpts struct {
	limit       int
	deadline    time.Duration
	staleReads  bool
	consistency Consistency
	tenant      string
}

// resolveOpts folds the options and applies the deadline to the context.
// The returned cancel must always be called (it releases the deadline
// timer); it does not cancel the caller's own context.
func resolveOpts(ctx context.Context, opts []CallOption) (context.Context, context.CancelFunc, callOpts) {
	var o callOpts
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	if o.deadline > 0 {
		cctx, cancel := context.WithTimeout(ctx, o.deadline)
		return cctx, cancel, o
	}
	return ctx, func() {}, o
}

// WithLimit caps how many rows the call returns (Run) or streams
// (RunStream). A streaming scan stops scheduling partition fan-out the
// moment the cap is reached, so the limit bounds interconnect traffic,
// not just the result slice.
func WithLimit(n int) CallOption {
	return func(o *callOpts) { o.limit = n }
}

// WithDeadline bounds the call's wall time. Past the deadline the
// request behaves exactly as if the caller's context were cancelled:
// outstanding node calls are abandoned and no new partition work is
// scheduled.
func WithDeadline(d time.Duration) CallOption {
	return func(o *callOpts) { o.deadline = d }
}

// WithStaleReads lets a value-predicate read skip the dual-ownership
// window fallback: partitions mid-hand-off are probed on their current
// read-side owners only, instead of broadcasting to every ring member.
// Cheaper under membership churn; rows whose index entry already moved
// to the joining side may be missed until the window closes.
func WithStaleReads() CallOption {
	return func(o *callOpts) { o.staleReads = true }
}

// WithConsistency selects the replica rule for the call's routed point
// reads (Get, GetVersion, and the fetch half of index lookups).
func WithConsistency(c Consistency) CallOption {
	return func(o *callOpts) { o.consistency = c }
}

// WithTenant names the caller for admission control: each tenant gets
// its own token bucket at the facade, so one tenant saturating its rate
// is rejected with ErrOverloaded while others keep flowing. The empty
// string (the default) is the shared anonymous bucket.
func WithTenant(tenant string) CallOption {
	return func(o *callOpts) { o.tenant = tenant }
}
