package core

import (
	"context"
	"errors"
	"fmt"

	"impliance/internal/discovery"
	"impliance/internal/docmodel"
	"impliance/internal/fabric"
	"impliance/internal/sched"
	"impliance/internal/storage"
	"impliance/internal/tail"
	"impliance/internal/virt"
)

// Item is one piece of data to infuse, already mapped into the native
// model (package ingest does the mapping; workload generators emit Items
// directly).
type Item struct {
	Body      docmodel.Value
	MediaType string
	Source    string
	// Class drives replication (default ClassUser).
	Class virt.DataClass
}

// Ingest infuses a document into the stewing pot (paper §2.2): the
// engine mints its ID, the partition map routes it — hash(DocID) →
// partition → ring owners — it is persisted in native format on the
// partition's primary, replicated to the remaining owners per policy, and
// — asynchronously, unless SyncIndexing — indexed, shape-observed, and
// annotated. The returned ID is immediately usable for retrieval even
// before indexing completes.
func (e *Engine) Ingest(item Item) (docmodel.DocID, error) {
	return e.IngestContext(context.Background(), item)
}

// IngestContext is Ingest under a request lifecycle: the context bounds
// the primary write (a cancelled caller abandons the put). Replication
// and derived work are durability traffic, not caller state — they run
// under the engine's own lifetime, never the caller's, so a departed
// client cannot strand a partition under-replicated.
func (e *Engine) IngestContext(ctx context.Context, item Item) (docmodel.DocID, error) {
	if err := e.admitIngest(item.Source, 1); err != nil {
		return docmodel.DocID{}, err
	}
	stored, others, err := e.ingestOne(ctx, item)
	if err != nil {
		return docmodel.DocID{}, err
	}
	e.replicate(stored, others)
	return stored.ID, nil
}

// ingestOne runs the shared front half of every ingest: mint, route,
// persist on the primary, register, and schedule derived work. The
// caller ships the replicas (singly or batched).
func (e *Engine) ingestOne(ctx context.Context, item Item) (*docmodel.Document, []fabric.NodeID, error) {
	id := e.mintDocID()
	primary, others, err := e.routeNewDoc(id, item.Class)
	if err != nil {
		return nil, nil, err
	}
	doc := &docmodel.Document{
		ID:         id,
		MediaType:  item.MediaType,
		Source:     item.Source,
		IngestedAt: e.now(),
		Root:       item.Body,
		Class:      uint8(item.Class),
	}
	stored, err := e.putOn(ctx, primary, doc)
	if err != nil {
		return nil, nil, err
	}
	e.smgr.Register(stored.ID, item.Class)
	// The write is committed and registered: announce it to live tails
	// before the ack returns, so a subscriber's watermark only ever
	// acknowledges durable writes.
	e.tailPublish(tail.KindIngest, stored)
	e.postIngest(primary, stored)
	return stored, others, nil
}

// IngestBatch infuses many items, returning their IDs.
func (e *Engine) IngestBatch(items []Item) ([]docmodel.DocID, error) {
	return e.IngestBatchContext(context.Background(), items)
}

// IngestBatchContext infuses many items with replica batching: instead
// of one replica message per (document, target) pair, every target node
// receives its whole share of the batch in a single replica-batch call
// — the ingest path's interconnect cost drops from O(docs × RF) to
// O(docs + targets) messages. Primary writes still happen per document
// (each put assigns a version and keeps the ID usable immediately);
// only the fan-out to the non-primary owners is coalesced. On error or
// cancellation the already-persisted documents' replicas are still
// flushed — an acked document is never left waiting on a batch that
// will no longer happen — and the IDs acked so far are returned with
// the error.
func (e *Engine) IngestBatchContext(ctx context.Context, items []Item) ([]docmodel.DocID, error) {
	// Admit the whole batch up front, one bucket take per source: a
	// rejected batch costs no primary writes. A mixed-source batch that
	// clears some sources and trips on a later one refunds the admitted
	// heads, so rejection never burns another source's tokens.
	if e.admission != nil {
		counts := map[string]int{}
		var sources []string // first-appearance order: deterministic decisions
		for _, it := range items {
			if counts[it.Source] == 0 {
				sources = append(sources, it.Source)
			}
			counts[it.Source]++
		}
		for i, src := range sources {
			if err := e.admitIngest(src, counts[src]); err != nil {
				for _, prev := range sources[:i] {
					e.admission.Refund(sched.Background, prev, counts[prev])
				}
				return nil, err
			}
		}
	}
	ids := make([]docmodel.DocID, 0, len(items))
	batches := map[*dataNode][]*docmodel.Document{}
	var order []*dataNode // deterministic flush order
	flush := func() {
		e.flushReplicaBatches(batches, order)
	}
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			flush()
			return ids, err
		}
		stored, others, err := e.ingestOne(ctx, it)
		if err != nil {
			flush()
			return ids, err
		}
		ids = append(ids, stored.ID)
		for _, t := range others {
			if dn, ok := e.dataNode(t); ok {
				if _, seen := batches[dn]; !seen {
					order = append(order, dn)
				}
				batches[dn] = append(batches[dn], stored)
			}
		}
	}
	flush()
	return ids, nil
}

// flushReplicaBatches ships each target node its accumulated replica
// versions as one wire call, honoring the SyncReplication ablation and
// the same missed-write quarantine rule as single-document replication.
func (e *Engine) flushReplicaBatches(batches map[*dataNode][]*docmodel.Document, order []*dataNode) {
	for _, dn := range order {
		docs := batches[dn]
		if len(docs) == 0 {
			continue
		}
		dn := dn
		payload := encodeDocs(docs)
		ship := func() {
			// A Call, not a Send: a target killed after the enqueue must
			// still surface the miss (see replicateTo).
			if _, err := e.fab.Call(dn.node.ID, msgReplicaBatch, payload); err != nil {
				dn.dirty.Store(true) // missed writes: quarantined until recovery
			}
		}
		if e.cfg.SyncReplication {
			ship()
		} else {
			// Durability class: replica shipment must survive any
			// caller's departure and outranks background analysis in the
			// pool's weighted rotation.
			e.pool.Submit(sched.Durability, ship)
		}
	}
}

// Update appends a new immutable version of an existing document (paper
// §4: "changes are implemented as the addition of a new version").
func (e *Engine) Update(id docmodel.DocID, newBody docmodel.Value) (docmodel.VersionKey, error) {
	return e.UpdateContext(context.Background(), id, newBody)
}

// UpdateContext is Update under a request lifecycle (the context bounds
// the read-back and the primary write; replication of the new version
// runs under the engine's lifetime — see IngestContext).
func (e *Engine) UpdateContext(ctx context.Context, id docmodel.DocID, newBody docmodel.Value) (docmodel.VersionKey, error) {
	primary, err := e.primaryFor(id)
	if err != nil {
		return docmodel.VersionKey{}, err
	}
	latest, err := primary.store.Get(id)
	if err != nil {
		return docmodel.VersionKey{}, err
	}
	// Updates are write traffic: they draw on the document's source
	// bucket (known only after the local read-back — which costs no
	// fabric traffic).
	if err := e.admitIngest(latest.Source, 1); err != nil {
		return docmodel.VersionKey{}, err
	}
	doc := latest.Clone()
	doc.Version = 0 // store assigns next
	doc.Root = newBody
	doc.IngestedAt = e.now()
	stored, err := e.putOn(ctx, primary, doc)
	if err != nil {
		return docmodel.VersionKey{}, err
	}
	// Replicate the new version to the other *write* holders — both sides
	// of a dual-ownership window, so a mid-hand-off update reaches the
	// owners the document is moving onto as well.
	holders := e.smgr.WriteHolders(id)
	var otherNodes []*dataNode
	for _, h := range holders {
		if dn, ok := e.dataNode(h); ok && dn != primary {
			otherNodes = append(otherNodes, dn)
		}
	}
	e.replicateTo(stored, otherNodes)
	e.tailPublish(tail.KindUpdate, stored)
	e.postIngest(primary, stored)
	return stored.Key(), nil
}

// Delete appends a tombstone version of the document (§4: deletion is a
// change, and changes are new versions — history stays queryable by
// version key).
func (e *Engine) Delete(id docmodel.DocID) (docmodel.VersionKey, error) {
	return e.DeleteContext(context.Background(), id)
}

// DeleteContext is Delete under a request lifecycle. The tombstone
// replicates to the remaining write holders like any other version; the
// document leaves the index and the hot-path caches before the ack. The
// tail event carries the pre-delete head — a content-filtered
// subscription must see which document vanished, and a tombstone body
// (Null) matches nothing.
func (e *Engine) DeleteContext(ctx context.Context, id docmodel.DocID) (docmodel.VersionKey, error) {
	primary, err := e.primaryFor(id)
	if err != nil {
		return docmodel.VersionKey{}, err
	}
	latest, err := primary.store.Get(id)
	if err != nil {
		// Already deleted: the head is a tombstone Get reports as absent.
		// Repeat deletes are no-ops returning the tombstone's key, like
		// Store.Delete itself.
		if errors.Is(err, storage.ErrNotFound) {
			if n := primary.store.VersionCount(id); n > 0 {
				key := docmodel.VersionKey{Doc: id, Ver: uint32(n)}
				if tomb, verr := primary.store.GetVersion(key); verr == nil && tomb.Deleted {
					return key, nil
				}
			}
		}
		return docmodel.VersionKey{}, err
	}
	// Deletes are write traffic on the document's source bucket, like
	// updates.
	if err := e.admitIngest(latest.Source, 1); err != nil {
		return docmodel.VersionKey{}, err
	}
	reply, err := e.fab.CallCtx(ctx, primary.node.ID, msgDelete, []byte(id.String()))
	if err != nil {
		return docmodel.VersionKey{}, err
	}
	tomb, err := docmodel.DecodeDocument(reply)
	if err != nil {
		return docmodel.VersionKey{}, err
	}
	e.cacheInvalidateDoc(id)
	holders := e.smgr.WriteHolders(id)
	var otherNodes []*dataNode
	for _, h := range holders {
		if dn, ok := e.dataNode(h); ok && dn != primary {
			otherNodes = append(otherNodes, dn)
		}
	}
	e.replicateTo(tomb, otherNodes)
	e.indexTargetFor(id, primary).unindexDoc(id)
	e.caches.BumpEpoch(e.smgr.PartitionOf(id))
	e.tailPublish(tail.KindDelete, latest)
	return tomb.Key(), nil
}

// putOn persists the document on the node via the fabric and returns the
// stored version (with assigned ID/version).
func (e *Engine) putOn(ctx context.Context, dn *dataNode, doc *docmodel.Document) (*docmodel.Document, error) {
	reply, err := e.fab.CallCtx(ctx, dn.node.ID, msgPut, docmodel.EncodeDocument(doc))
	if err != nil {
		return nil, err
	}
	stored, err := docmodel.DecodeDocument(reply)
	if err != nil {
		return nil, err
	}
	// Version committed: drop the document's cached point/negative entries
	// and void its partition's partials before acking, so no later read
	// can serve the pre-write state.
	e.cacheInvalidateDoc(stored.ID)
	return stored, nil
}

// replicate ships the stored version to the target node IDs, honoring the
// SyncReplication ablation.
func (e *Engine) replicate(stored *docmodel.Document, targets []fabric.NodeID) {
	var nodes []*dataNode
	for _, t := range targets {
		if dn, ok := e.dataNode(t); ok {
			nodes = append(nodes, dn)
		}
	}
	e.replicateTo(stored, nodes)
}

func (e *Engine) replicateTo(stored *docmodel.Document, nodes []*dataNode) {
	if len(nodes) == 0 {
		return
	}
	payload := docmodel.EncodeDocument(stored)
	if e.cfg.SyncReplication {
		for _, dn := range nodes {
			// Synchronous: the ingest path stalls on every replica (E12
			// ablation of the paper's async versioned replication).
			if _, err := e.fab.Call(dn.node.ID, msgReplica, payload); err != nil {
				dn.dirty.Store(true) // missed a write: quarantined until recovery
			}
		}
		return
	}
	for _, dn := range nodes {
		dn := dn
		// Durability class (see flushReplicaBatches).
		e.pool.Submit(sched.Durability, func() {
			// A Call (not a one-way Send) so a target killed after the
			// enqueue still surfaces the miss — fire-and-forget would let
			// the write vanish with the mailbox and leave the node
			// unquarantined.
			if _, err := e.fab.Call(dn.node.ID, msgReplica, payload); err != nil {
				dn.dirty.Store(true) // missed a write: quarantined until recovery
			}
		})
	}
}

// postIngest schedules (or runs inline) the derived work: indexing, shape
// observation, ref edges, annotation.
func (e *Engine) postIngest(primary *dataNode, stored *docmodel.Document) {
	work := func() {
		// Index on the long-term owner (the post-hand-off answering node
		// during a membership change), not necessarily the node that took
		// the write — keeps each document indexed on exactly one node.
		e.indexTargetFor(stored.ID, primary).indexDoc(stored)
		// Indexing completes after the write ack: void any facet partial
		// filled from the pre-index view in the meantime.
		e.caches.BumpEpoch(e.smgr.PartitionOf(stored.ID))
		e.shapesMu.Lock()
		e.shapes.Observe(stored)
		e.shapesMu.Unlock()
		discovery.BuildRefEdges(e.joinIdx, stored)
		e.annotate(stored)
	}
	e.attributeKeyedWork(sched.TaskIntraAnalysis, e.smgr.RouteKey(stored.ID))
	if e.cfg.SyncIndexing {
		work()
		return
	}
	e.pool.Submit(sched.Background, work)
}

// annotate runs interested annotators and infuses their annotation
// documents back through the normal ingest path — annotations are
// ordinary documents (§3.2) of the derived class, so they hash to their
// own partition and land on its owner, not necessarily beside their base.
// Annotation is background work owned by the engine, so it runs under
// the engine's context, not any caller's.
func (e *Engine) annotate(base *docmodel.Document) {
	for _, ann := range e.registry.Run(base) {
		ann.ID = e.mintDocID()
		ann.IngestedAt = e.now()
		ann.Class = uint8(virt.ClassDerived)
		owner, others, err := e.routeNewDoc(ann.ID, virt.ClassDerived)
		if err != nil {
			continue
		}
		stored, err := e.putOn(context.Background(), owner, ann)
		if err != nil {
			continue
		}
		e.smgr.Register(stored.ID, virt.ClassDerived)
		// Annotations are ordinary documents: a tail filtered on an
		// annotator's output streams them like any other ingest.
		e.tailPublish(tail.KindIngest, stored)
		e.replicate(stored, others)
		e.indexTargetFor(stored.ID, owner).indexDoc(stored)
		e.caches.BumpEpoch(e.smgr.PartitionOf(stored.ID))
		discovery.BuildRefEdges(e.joinIdx, stored)
	}
}

// Get fetches the latest version of a document from any alive holder.
func (e *Engine) Get(id docmodel.DocID) (*docmodel.Document, error) {
	return e.GetContext(context.Background(), id)
}

// GetContext is Get under a request lifecycle: the context bounds the
// fetch, and WithConsistency selects which replica may answer.
//
// The read is cached: a point (or negative) entry stamped with the
// partition's current routing generation answers without touching the
// fabric. ReadOwner consistency refuses fenced entries (the partition
// moved since the fill); WithStaleReads may serve them. Fills only come
// from owner-consistency fetches — a ReadOne answer may be a lagging
// replica and must not poison the cache — and are dropped if a write
// raced the fetch (the partition's write epoch moved).
func (e *Engine) GetContext(ctx context.Context, id docmodel.DocID, opts ...CallOption) (*docmodel.Document, error) {
	ctx, cancel, o := resolveOpts(ctx, opts)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Admission before any work — a rejected read must not even probe
	// the cache, or overload-priced tenants would still heat the LRU.
	if err := e.admitOp(sched.Interactive, o.tenant); err != nil {
		return nil, err
	}
	part := e.smgr.PartitionOf(id)
	pgen := e.smgr.PartitionGen(part)
	if d, neg, ok := e.caches.GetDoc(id, pgen, o.staleReads); ok {
		// A cached read is still logical demand on the partition: charge
		// the load counter so the rebalance skew signal sees hot keys even
		// when the cache absorbs their fabric cost.
		e.smgr.RecordLoad(id)
		if neg {
			return nil, fmt.Errorf("%w: %s", storage.ErrNotFound, id)
		}
		return d, nil
	}
	epoch := e.caches.Epoch(part)
	dn, err := e.holderFor(id, o.consistency)
	if err != nil {
		return nil, err
	}
	reply, err := e.fab.CallCtx(ctx, dn.node.ID, msgGet, []byte(id.String()))
	if err != nil {
		if o.consistency == ReadOwner && errors.Is(err, storage.ErrNotFound) {
			// The owner definitively does not hold the document: remember
			// the miss so repeated probes stop costing round-trips.
			e.caches.PutNegative(id, part, pgen, epoch)
		}
		return nil, err
	}
	d, err := docmodel.DecodeDocument(reply)
	if err != nil {
		return nil, err
	}
	if o.consistency == ReadOwner {
		e.caches.PutDoc(id, part, d, pgen, epoch)
	}
	return d, nil
}

// GetVersion fetches one specific immutable version.
func (e *Engine) GetVersion(key docmodel.VersionKey) (*docmodel.Document, error) {
	return e.GetVersionContext(context.Background(), key)
}

// GetVersionContext is GetVersion under a request lifecycle.
func (e *Engine) GetVersionContext(ctx context.Context, key docmodel.VersionKey, opts ...CallOption) (*docmodel.Document, error) {
	ctx, cancel, o := resolveOpts(ctx, opts)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.admitOp(sched.Interactive, o.tenant); err != nil {
		return nil, err
	}
	dn, err := e.holderFor(key.Doc, o.consistency)
	if err != nil {
		return nil, err
	}
	return dn.store.GetVersion(key)
}

// VersionCount reports how many versions of the document exist.
func (e *Engine) VersionCount(id docmodel.DocID) int {
	dn, err := e.primaryFor(id)
	if err != nil {
		return 0
	}
	return dn.store.VersionCount(id)
}

// VersionCountContext is VersionCount under a request lifecycle.
func (e *Engine) VersionCountContext(ctx context.Context, id docmodel.DocID, opts ...CallOption) int {
	_, cancel, o := resolveOpts(ctx, opts)
	defer cancel()
	if ctx.Err() != nil {
		return 0
	}
	dn, err := e.holderFor(id, o.consistency)
	if err != nil {
		return 0
	}
	return dn.store.VersionCount(id)
}

// primaryFor returns the first alive holder of the document (the
// read-side holder set during a hand-off window), charging the point
// operation to the document's partition load counter — the skew signal
// RebalanceOnSkew consumes.
func (e *Engine) primaryFor(id docmodel.DocID) (*dataNode, error) {
	e.smgr.RecordLoad(id)
	return e.readHolderFor(id)
}

// holderFor resolves the node to serve a routed point read under the
// requested consistency, charging the partition load counter either
// way. ReadOwner is the answering-owner rule primaryFor implements;
// ReadOne accepts any alive write-side holder — both sides of an open
// hand-off window, and even a node quarantined for missed writes — the
// Dynamo-style availability-over-freshness trade.
func (e *Engine) holderFor(id docmodel.DocID, c Consistency) (*dataNode, error) {
	if c == ReadOwner {
		return e.primaryFor(id)
	}
	e.smgr.RecordLoad(id)
	holders := e.smgr.WriteHolders(id)
	if len(holders) == 0 {
		return nil, fmt.Errorf("core: unknown document %s", id)
	}
	for _, h := range holders {
		if dn, ok := e.dataNode(h); ok && dn.node.Alive() {
			return dn, nil
		}
	}
	return nil, errors.New("core: no alive holder for " + id.String())
}

// readHolderFor resolves the first alive read-side holder without
// touching the load counters — internal traffic (index catch-up, repair)
// resolves through this so repair work never skews the rebalance signal.
func (e *Engine) readHolderFor(id docmodel.DocID) (*dataNode, error) {
	holders := e.smgr.Holders(id)
	if len(holders) == 0 {
		return nil, fmt.Errorf("core: unknown document %s", id)
	}
	for _, h := range holders {
		if dn, ok := e.dataNode(h); ok && e.eligible(dn) {
			return dn, nil
		}
	}
	return nil, errors.New("core: no alive holder for " + id.String())
}

// Exclusive runs fn with the execution pool's workers held between
// tasks: anything already running finishes, nothing new starts until fn
// returns. Deterministic simulation drivers wrap each scripted action in
// it so driver-issued transport calls never interleave with background
// catch-up work — on the simulator, two goroutines pumping the event
// loop concurrently would make the virtual-time schedule depend on OS
// scheduling instead of the seed. Follow with DrainBackground to run
// whatever the action queued.
func (e *Engine) Exclusive(fn func()) {
	e.pool.Pause()
	defer e.pool.Resume()
	fn()
}

// DrainBackground blocks until queued background work (indexing,
// annotation, replication) has completed — used by tests and experiments
// that need a quiesced appliance.
func (e *Engine) DrainBackground() {
	e.pool.Drain()
	// Annotation submits follow-on work (replication sends); drain twice
	// to fence the second wave.
	e.pool.Drain()
}
