package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/storage"
	"impliance/internal/tail"
)

func nextTail(t *testing.T, c *TailCursor) tail.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ev, err := c.Next(ctx)
	if err != nil {
		t.Fatalf("tail Next: %v", err)
	}
	return ev
}

// A subscription sees every matching committed write — ingests, the
// update's new version, and the delete carrying the pre-delete head so
// content filters still match the vanished document.
func TestTailDeliversIngestUpdateDelete(t *testing.T) {
	e := testEngine(t)
	c, err := e.Subscribe(expr.SourceIs("watched"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id, err := e.Ingest(Item{Body: docmodel.String("first"), MediaType: "text/plain", Source: "watched"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(Item{Body: docmodel.String("noise"), MediaType: "text/plain", Source: "other"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Update(id, docmodel.String("second")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Delete(id); err != nil {
		t.Fatal(err)
	}

	ev := nextTail(t, c)
	if ev.Kind != tail.KindIngest || ev.Doc.ID != id {
		t.Fatalf("event 1: %v %v, want ingest of %v", ev.Kind, ev.Doc.ID, id)
	}
	ev = nextTail(t, c)
	if ev.Kind != tail.KindUpdate || ev.Doc.ID != id || ev.Doc.Version != 2 {
		t.Fatalf("event 2: %v %v v%d, want update v2", ev.Kind, ev.Doc.ID, ev.Doc.Version)
	}
	ev = nextTail(t, c)
	if ev.Kind != tail.KindDelete || ev.Doc.ID != id {
		t.Fatalf("event 3: %v %v, want delete of %v", ev.Kind, ev.Doc.ID, id)
	}
	if ev.Doc.Source != "watched" {
		t.Fatalf("delete event lost the pre-delete head (source %q)", ev.Doc.Source)
	}
	// The unfiltered "noise" ingest must not have been delivered.
	if got := c.Delivered(); got != 3 {
		t.Fatalf("delivered %d events, want 3", got)
	}
}

// Delete is versioned like any change: a tombstone version lands, Get
// reports the document gone, history stays reachable, and a replica
// holds the tombstone too.
func TestDeleteAppendsTombstoneVersion(t *testing.T) {
	e := testEngine(t)
	id, err := e.Ingest(Item{Body: docmodel.String("doomed"), MediaType: "text/plain", Source: "s"})
	if err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()
	key, err := e.Delete(id)
	if err != nil {
		t.Fatal(err)
	}
	if key.Ver != 2 {
		t.Fatalf("tombstone version %d, want 2", key.Ver)
	}
	if _, err := e.Get(id); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("Get after delete: %v, want not-found", err)
	}
	old, err := e.GetVersion(docmodel.VersionKey{Doc: id, Ver: 1})
	if err != nil || old.Deleted {
		t.Fatalf("history unreachable after delete: %v", err)
	}
	// Idempotent: deleting again returns the same tombstone version.
	again, err := e.Delete(id)
	if err != nil || again.Ver != key.Ver {
		t.Fatalf("repeat delete: %v %v, want %v", again, err, key)
	}
}

// A closed cursor's watermarks resume a new subscription exactly after
// the acknowledged events: the engine-level no-gaps no-duplicates
// property.
func TestTailResumeAcrossCursors(t *testing.T) {
	e := testEngine(t)
	c, err := e.Subscribe(expr.SourceIs("res"))
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := e.Ingest(Item{Body: docmodel.Int(int64(i)), MediaType: "text/plain", Source: "res"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(6)
	seen := map[docmodel.DocID]int{}
	for i := 0; i < 4; i++ {
		seen[nextTail(t, c).Doc.ID]++
	}
	marks := c.Watermarks()
	c.Close()

	ingest(5)
	c2, err := e.Subscribe(expr.SourceIs("res"), WithTailResume(marks))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 7; i++ {
		seen[nextTail(t, c2).Doc.ID]++
	}
	if len(seen) != 11 {
		t.Fatalf("saw %d distinct docs, want 11", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("doc %v delivered %d times across the resume", id, n)
		}
	}
}

// Concurrent Subscribe/Close/ingest on the full engine: the -race
// lifecycle check at the API layer (the broker-level interleaving test
// lives in internal/tail).
func TestTailConcurrentSubscribeCloseIngest(t *testing.T) {
	e := testEngine(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = e.Ingest(Item{Body: docmodel.Int(int64(i)), MediaType: "text/plain", Source: "conc"})
		}
	}()
	for round := 0; round < 20; round++ {
		c, err := e.Subscribe(expr.True())
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		for {
			if _, err := c.Next(ctx); err != nil {
				break
			}
		}
		cancel()
		c.Close()
	}
	close(stop)
	wg.Wait()
	if st := e.TailStats(); st.Published == 0 {
		t.Fatal("no events published during the concurrent run")
	}
}

// Resuming from a *wire* token must not skip partitions the first
// cursor never acked: EncodeTailResume omits zero watermarks, and a
// partition absent from the broker's resume map would attach live —
// so the engine densifies the marks and events landing in previously
// quiet partitions still replay. Regression for a gap observed over
// the HTTP SSE reconnect path.
func TestTailWireResumeNoGaps(t *testing.T) {
	e := testEngine(t)
	c, err := e.Subscribe(expr.SourceIs("wire"))
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := e.Ingest(Item{Body: docmodel.Int(int64(i)), MediaType: "text/plain", Source: "wire"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(3)
	seen := map[docmodel.DocID]int{}
	for i := 0; i < 3; i++ {
		seen[nextTail(t, c).Doc.ID]++
	}
	tok := EncodeTailResume(c.Watermarks())
	c.Close()

	// These land overwhelmingly in partitions the token never mentions.
	ingest(5)
	marks, err := DecodeTailResume(tok)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e.Subscribe(expr.SourceIs("wire"), WithTailResume(marks))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 5; i++ {
		seen[nextTail(t, c2).Doc.ID]++
	}
	if len(seen) != 8 {
		t.Fatalf("saw %d distinct docs across the wire resume, want 8", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("doc %v delivered %d times across the wire resume", id, n)
		}
	}
}

// The tail resume token survives its wire round trip.
func TestTailResumeTokenRoundTrip(t *testing.T) {
	marks := map[int]uint64{3: 17, 0: 1, 12: 400}
	tok := EncodeTailResume(marks)
	got, err := DecodeTailResume(tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(marks) {
		t.Fatalf("round trip lost partitions: %v -> %v", marks, got)
	}
	for p, w := range marks {
		if got[p] != w {
			t.Fatalf("partition %d: %d != %d", p, got[p], w)
		}
	}
	for _, bad := range []string{
		"not-a-token",
		"3:7x9",     // trailing garbage inside a watermark
		"3x:7",      // trailing garbage inside a partition
		"1:2,1:3",   // repeated partition
		"-1:5",      // negative partition
		"3:",        // missing watermark
		":7",        // missing partition
		"1:2,",      // dangling pair
		"1:2, 3:4",  // interior whitespace
		"0x3:7",     // non-decimal partition
		"3:7:9",     // extra field
		"18446744073709551616:1", // partition overflows int
		"1:18446744073709551616", // watermark overflows uint64
	} {
		if _, err := DecodeTailResume(bad); err == nil {
			t.Fatalf("corrupt token %q must not decode", bad)
		}
	}
	if m, err := DecodeTailResume(""); err != nil || m != nil {
		t.Fatalf("empty token: %v %v, want fresh nil", m, err)
	}
}
