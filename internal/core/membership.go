package core

import (
	"fmt"

	"impliance/internal/discovery"
	"impliance/internal/docmodel"
	"impliance/internal/fabric"
	"impliance/internal/sched"
	"impliance/internal/virt"
)

// Elastic ring membership (paper §3.4: the appliance absorbs hardware
// coming and going without operator-visible data movement). A node
// addition — a revived node re-joining after recovery removed it, or a
// freshly provisioned node — opens per-partition dual-ownership windows:
// reads keep routing to the pre-join owners (whose data is complete)
// while writes cover both sides, and background catch-up work copies the
// moved documents, hands the index over, and closes each partition's
// window as its watermark is reached. Point operations therefore see
// zero misses while the ring grows.

// JoinDataNode adds the data node (back) onto the partition ring and
// schedules the resulting hand-off as background work on the execution
// pool, one task per affected partition. It returns immediately with the
// number of document copies scheduled; DrainBackground (or watching
// StorageManager().HandoffPending()) observes completion. Joining a node
// that is already a ring member is a no-op.
func (e *Engine) JoinDataNode(id fabric.NodeID) (int, error) {
	e.joinMu.Lock()
	defer e.joinMu.Unlock()
	return e.joinDataNodeLocked(id)
}

// joinDataNodeLocked is JoinDataNode's body; the caller holds e.joinMu.
func (e *Engine) joinDataNodeLocked(id fabric.NodeID) (int, error) {
	dn, ok := e.dataNode(id)
	if !ok {
		return 0, fmt.Errorf("core: %s is not a data node", id)
	}
	if !dn.node.Alive() {
		return 0, fmt.Errorf("core: %s is down", id)
	}
	if e.smgr.InRing(id) {
		return 0, nil
	}
	// The node may have been off the ring for a while: its index still
	// holds entries for documents whose ownership moved elsewhere, and
	// fan-outs will include the node again the moment it is a member.
	// Purge before joining; catch-up re-indexes what it answers for.
	dn.purgeIndex()
	// The quarantine flag is moot from here on: reads only route to the
	// node after its partition's hand-off completes, and by then catch-up
	// has filled every gap the node accumulated while dead.
	dn.dirty.Store(false)
	plan, err := e.smgr.JoinNode(id, e.eligibleDataIDs())
	if err != nil || plan == nil {
		return 0, err
	}
	e.dataGroup.Add(id)
	moved := plan.MoveCount()
	e.trace("join %s: %d partitions moving, %d copies scheduled", id, len(plan.Partitions), moved)
	for _, pt := range plan.Partitions {
		pt := pt
		// Durability class: catch-up closes hand-off windows — it must
		// not queue behind background analysis or any caller's deadline.
		e.pool.Submit(sched.Durability, func() { e.catchUpPartition(pt) })
	}
	return moved, nil
}

// AddDataNode provisions an entirely new data node at runtime — fabric
// node, store, index — and joins it to the ring through the same
// dual-ownership hand-off a re-join uses. Returns the new node's ID and
// the number of document copies scheduled. Serialized with other
// membership additions, so concurrent calls can neither duplicate store
// origins nor race a heartbeat-driven join of the half-published node;
// the topology publish itself refuses after Close (bootDataNode).
func (e *Engine) AddDataNode() (fabric.NodeID, int, error) {
	e.joinMu.Lock()
	defer e.joinMu.Unlock()
	dn, err := e.bootDataNode(uint32(len(e.dataNodes()) + 1))
	if err != nil {
		return fabric.NodeID{}, 0, err
	}
	moved, err := e.joinDataNodeLocked(dn.node.ID)
	return dn.node.ID, moved, err
}

// catchUpPartition is one partition's background hand-off: copy the
// planned document versions onto the owners the membership change added,
// hand the index (and join-edge state) over to the new answering owner,
// then close the partition's dual-ownership window — the per-partition
// catch-up watermark. Until the close, reads keep routing to the old
// owners, so the hand-off is invisible to point operations.
func (e *Engine) catchUpPartition(pt virt.PartitionTransfer) {
	e.smgr.ExecuteMoves(pt)

	// Index hand-over: the partition's post-hand-off answering owner
	// indexes every registered document; other nodes drop their entries
	// (add before remove, so searches and facets never miss mid-swap).
	// The partition's path statistics move with the postings — Add/Remove
	// maintain them in lockstep — so once the window closes the value-
	// probe router finds the partition admitted on the new owner and
	// drained on the old ones, with no separate statistics transfer.
	var answer *dataNode
	for _, n := range pt.NewOwners {
		if dn, ok := e.dataNode(n); ok && e.eligible(dn) {
			answer = dn
			break
		}
	}
	if answer != nil {
		for _, id := range e.smgr.DocsInPartition(pt.Partition) {
			d, err := answer.store.Get(id)
			if err != nil {
				continue // not caught up (e.g. unrepairable); leave the index alone
			}
			answer.indexDoc(d)
			for _, other := range e.dataNodes() {
				if other != answer {
					other.unindexDoc(id)
				}
			}
			// Replay discovery state for the moved document: edge insertion
			// is idempotent, so re-deriving reference edges on the new owner
			// is safe and covers edges a dead node never contributed.
			discovery.BuildRefEdges(e.joinIdx, d)
		}
	}
	// The partition's index just changed hands: void cached partials before
	// the window closes and reads flip to the new owner.
	e.caches.BumpEpoch(pt.Partition)
	e.smgr.CompleteHandoff(pt)
	// The hand-off closed and the partition's routing generation bumped:
	// migrate tail subscriptions to the new owner's view — void queued
	// pre-change deliveries and replay from each subscriber's acknowledged
	// watermark (no gaps, no duplicates across the re-join).
	e.tails.FencePartition(pt.Partition)
}

// reindexDocs makes each document's current answering owner index it if
// no longer indexed there — the background half of failure recovery
// (ownership moved off the dead node; the successors' stores already
// hold replicas, only the index lags).
func (e *Engine) reindexDocs(ids []docmodel.DocID) {
	for _, id := range ids {
		dn, err := e.readHolderFor(id)
		if err != nil {
			continue
		}
		d, err := dn.store.Get(id)
		if err != nil {
			continue
		}
		dn.mu.Lock()
		_, already := dn.indexedVer[id]
		dn.mu.Unlock()
		if !already {
			dn.indexDoc(d)
			// Recovery re-indexing runs after the failure already bumped the
			// partition's routing generation, so a partial cached from the
			// successor's still-lagging index would otherwise look current.
			e.caches.BumpEpoch(e.smgr.PartitionOf(id))
		}
	}
}

// RebalanceSkewThreshold is the hottest-node-to-mean load ratio above
// which RebalanceOnSkew sheds ring weight from the hottest node.
const RebalanceSkewThreshold = 2.0

// Auto-rebalance pacing: HeartbeatTick runs a rebalance pass every
// AutoRebalanceEvery ticks, and only once at least AutoRebalanceMinOps
// point operations have been recorded since the last pass — a sustained
// hot node sheds weight without any operator invocation (paper §3.4:
// tuning is autonomic), while an idle or barely-loaded cluster never
// churns its ring on noise.
const (
	AutoRebalanceEvery  = 4
	AutoRebalanceMinOps = 256
)

// maybeAutoRebalance is the heartbeat-driven trigger around
// RebalanceOnSkew. PlanRebalance itself enforces the skew threshold and
// the weight floor; this only gates cadence and minimum signal.
func (e *Engine) maybeAutoRebalance() {
	if e.heartbeats.Add(1)%AutoRebalanceEvery != 0 {
		return
	}
	var total uint64
	for _, l := range e.smgr.PartitionLoads() {
		total += l
	}
	if total < AutoRebalanceMinOps {
		return
	}
	e.RebalanceOnSkew()
	// The gate consumed this window's signal whether or not a plan came
	// out (PlanRebalance only resets on a produced plan): reset so a
	// stale burst can trigger at most one pass, and the next window
	// measures fresh load.
	e.smgr.ResetLoads()
}

// RebalanceOnSkew runs one skew-aware rebalance pass: per-partition
// point-op load counters are folded onto their answering primaries, and
// when the hottest node carries more than RebalanceSkewThreshold× the
// mean, a quarter of its ring weight (vnode count) is shed. The resulting
// partition moves execute through the same dual-ownership hand-off
// machinery a join uses, so rebalancing is equally invisible to point
// operations. Returns the number of document copies scheduled and whether
// an adjustment was made.
func (e *Engine) RebalanceOnSkew() (int, bool) {
	plan := e.smgr.PlanRebalance(RebalanceSkewThreshold, e.eligibleDataIDs())
	if plan == nil {
		return 0, false
	}
	moved := plan.MoveCount()
	e.trace("rebalance: %d partitions moving, %d copies scheduled", len(plan.Partitions), moved)
	for _, pt := range plan.Partitions {
		pt := pt
		// Durability class: catch-up closes hand-off windows — it must
		// not queue behind background analysis or any caller's deadline.
		e.pool.Submit(sched.Durability, func() { e.catchUpPartition(pt) })
	}
	return moved, true
}

// indexTargetFor returns the node that should hold a new document
// version's index entry: the first eligible holder under the current
// (post-hand-off) partition map, or the fallback when none is eligible.
// During a hand-off window this is the long-term owner — indexing there
// directly saves the catch-up pass a hand-over and keeps the "each
// document indexed on exactly one node" invariant that facet counting
// relies on.
func (e *Engine) indexTargetFor(id docmodel.DocID, fallback *dataNode) *dataNode {
	for _, h := range e.smgr.TargetHolders(id) {
		if dn, ok := e.dataNode(h); ok && e.eligible(dn) {
			return dn
		}
	}
	return fallback
}
