package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"impliance/internal/annot"
	"impliance/internal/baseline/costopt"
	"impliance/internal/cache"
	"impliance/internal/discovery"
	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/fabric"
	"impliance/internal/index"
	"impliance/internal/plan"
	"impliance/internal/query"
	"impliance/internal/sched"
	"impliance/internal/storage"
	"impliance/internal/storage/compress"
	"impliance/internal/tail"
	"impliance/internal/virt"
	"impliance/internal/workload"
)

// Config sizes and configures an appliance instance. The zero value plus
// Normalize gives a small working appliance — the "operational out of the
// box" requirement (§3.1). The ablation switches exist for the
// experiments in EXPERIMENTS.md and default to the paper's design.
type Config struct {
	// Topology (paper Figure 3).
	DataNodes    int // default 4
	GridNodes    int // default 2
	ClusterNodes int // default 1

	// Workers sizes the background execution pool (default 4).
	Workers int

	// Transport supplies the interconnect implementation. Nil means the
	// real in-process goroutine fabric (fabric.New). The deterministic
	// simulator (fabric/sim) is injected here so cluster scenarios —
	// membership churn, hand-off, rebalance — replay exactly from a
	// seed. The engine owns the transport either way and closes it with
	// Close.
	Transport fabric.Transport

	// Clock supplies the engine's time source (heartbeat bookkeeping,
	// pool wait accounting, minted timestamps). Nil means the wall
	// clock; simulated runs install the simulator's virtual clock so
	// time-derived state reproduces across runs.
	Clock sched.Clock

	// Dir persists data-node WALs under this directory ("" = in-memory).
	Dir string

	// StorageBackend selects each data node's physical store layout:
	// storage.BackendHeapWAL (default; single log, all versions decoded
	// on the heap), storage.BackendSegment (sealed segment files with
	// frame indexes and lazy decode — memory tracks the hot set, not
	// total history), or storage.BackendMmap (the segment layout read
	// through read-only memory maps; cold reads decode straight from the
	// page cache). Ignored when Dir is empty (in-memory stores).
	StorageBackend string

	// SegmentBytes overrides the segment backend's roll-over threshold
	// (0 = the storage default).
	SegmentBytes int64

	// RetainVersions bounds how many trailing versions of each document
	// segment merge keeps on disk (see storage.Options.RetainVersions;
	// 0 keeps every version).
	RetainVersions int

	// ScanPageDocs bounds how many documents a data node returns per
	// scan reply: distributed scans page through each node's corpus, so
	// peak reply size is O(page), not O(corpus). 0 = default (256);
	// negative = unpaged single replies (ablation).
	ScanPageDocs int

	// HotCacheDocs bounds each lazy store's cache of decoded documents
	// (0 = the storage default; see storage.Options.HotCacheDocs).
	HotCacheDocs int

	// Codec compresses stored frames (default compress.Flate; E15 ablation
	// sets compress.None).
	Codec compress.Codec

	// Replication assigns replica counts by data class (§3.4).
	Replication virt.ReplicationPolicy

	// Annotators installs the discovery annotators (default: entity +
	// sentiment with the standard product catalog).
	Annotators []annot.Annotator

	// --- Ablation switches (EXPERIMENTS.md) ---

	// SyncIndexing indexes and annotates inline with ingestion (E10
	// ablation; the paper's design is asynchronous).
	SyncIndexing bool
	// SyncReplication waits for every replica write during ingestion (E12
	// ablation; the paper's versioned design replicates asynchronously).
	SyncReplication bool
	// FIFOScheduling disables priority interleaving (E11 ablation).
	FIFOScheduling bool
	// RandomPlacement ignores operator/node-kind affinity (E5 ablation).
	RandomPlacement bool
	// DisablePushdown ships whole documents to the engine instead of
	// filtering/aggregating inside storage nodes (E9 ablation).
	DisablePushdown bool
	// UseCostOptimizer plans with the statistics-based optimizer instead
	// of the simple planner (E7 comparator). Statistics must be collected
	// with CollectStatistics; they go stale on purpose.
	UseCostOptimizer bool
	// BroadcastValueProbes disables the partition-routed value-index
	// probe router and fans every value lookup out to all data nodes
	// (E19 ablation; the design routes by partition path statistics).
	BroadcastValueProbes bool

	// --- Hot-path caches (docs/ARCHITECTURE.md "Hot-path caches") ---

	// PointCacheEntries bounds the generation-fenced point-read cache
	// (default 4096).
	PointCacheEntries int
	// NegativeCacheEntries bounds the negative (known-missing DocID)
	// cache (default 1024).
	NegativeCacheEntries int
	// PartialCacheEntries bounds the per-partition facet/aggregate
	// partial cache (default 4096).
	PartialCacheEntries int
	// DisablePointCache, DisableNegativeCache and DisablePartialCache
	// turn individual caches off (E22 ablations; the design has all
	// three on).
	DisablePointCache    bool
	DisableNegativeCache bool
	DisablePartialCache  bool

	// --- Overload control (docs/ARCHITECTURE.md "Overload control") ---

	// AdmissionInteractiveRate caps admitted interactive operations
	// (point reads, queries, streams, facets) per tenant per second at
	// the facade; rejected calls fail fast with ErrOverloaded before
	// any pool dispatch or fabric traffic. 0 leaves interactive
	// traffic ungated.
	AdmissionInteractiveRate float64
	// AdmissionInteractiveBurst caps a tenant bucket's accumulated
	// tokens (0 = one second of refill).
	AdmissionInteractiveBurst float64
	// AdmissionIngestRate / AdmissionIngestBurst gate ingestion the
	// same way, keyed by each item's Source. 0 leaves ingest ungated.
	AdmissionIngestRate  float64
	AdmissionIngestBurst float64
	// DisableAdmission turns the gate off regardless of rates (E25
	// ablation).
	DisableAdmission bool

	// SchedWeights overrides the pool's per-class deficit-round-robin
	// quanta (zero entries take the sched defaults 16/1/4).
	SchedWeights sched.Weights

	// TailRetain bounds each partition's tail event ring — how far back
	// a subscription may resume before ErrLagBehind (0 = 4096 events).
	TailRetain int
	// TailBuffer is the default per-subscriber queue capacity (0 = 256).
	TailBuffer int
}

// Normalize fills defaults in place.
func (c *Config) Normalize() {
	if c.DataNodes <= 0 {
		c.DataNodes = 4
	}
	if c.GridNodes <= 0 {
		c.GridNodes = 2
	}
	if c.ClusterNodes <= 0 {
		c.ClusterNodes = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Codec == nil {
		c.Codec = compress.Flate
	}
	if c.Replication.Factor == nil {
		c.Replication = virt.DefaultPolicy()
	}
	if c.Annotators == nil {
		c.Annotators = []annot.Annotator{
			annot.NewDefaultEntityAnnotator(workload.Products),
			annot.NewSentimentAnnotator(),
		}
	}
	if c.PointCacheEntries <= 0 {
		c.PointCacheEntries = 4096
	}
	if c.NegativeCacheEntries <= 0 {
		c.NegativeCacheEntries = 1024
	}
	if c.PartialCacheEntries <= 0 {
		c.PartialCacheEntries = 4096
	}
	if c.TailRetain <= 0 {
		c.TailRetain = 4096
	}
	if c.TailBuffer <= 0 {
		c.TailBuffer = 256
	}
}

// dataNode bundles a fabric node with its store and index. Which
// documents the node answers for is not node state: it is derived from
// the storage manager's partition map (hash(DocID) → partition → owners),
// so ownership moves with ring membership instead of being tracked in
// per-node maps.
// dataTopology is one immutable snapshot of the data-node set.
type dataTopology struct {
	list []*dataNode
	byID map[fabric.NodeID]*dataNode
}

type dataNode struct {
	node  *fabric.Node
	store *storage.Store
	ix    *index.Index

	// dirty marks a node that missed replica writes while dead. A dirty
	// node is quarantined from routing and answering (a revival without
	// recovery must not surface its gaps); recovery removes it from the
	// ring, after which the flag is moot.
	dirty atomic.Bool

	mu         sync.Mutex
	indexedVer map[docmodel.DocID]*docmodel.Document // version currently indexed
}

// Engine is a running appliance instance.
type Engine struct {
	cfg Config

	fab   fabric.Transport
	clock sched.Clock
	// tr is the transport's decision-trace sink (nil on the real
	// fabric). Membership and recovery decisions report through
	// e.trace so simulated failures dump the cluster's reasoning.
	tr fabric.Tracer
	// topo is the data-node topology, replaced copy-on-write so that
	// AddDataNode can grow the cluster while readers (point-op routing,
	// fan-outs, background catch-up) hold lock-free snapshots.
	topo    atomic.Pointer[dataTopology]
	grids   []*fabric.Node
	cluster []*fabric.Node

	placer sched.Placer
	pool   *sched.Pool
	group  *fabric.ConsistencyGroup
	locks  *fabric.LockTable
	broker *virt.Broker
	smgr   *virt.StorageManager

	// caches holds the generation-fenced hot-path caches (point reads,
	// negative lookups, facet/aggregate partials). Entries are stamped
	// with the owning partition's routing generation, so membership
	// movement expires them without a scan; version writes invalidate
	// through cacheInvalidateDoc at the putOn choke point.
	caches *cache.Caches

	// dataGroup is the data-role resource group; re-joining nodes are
	// handed back to it (the broker removed them on failure).
	dataGroup *virt.Group
	// joinMu serializes membership additions (JoinDataNode/AddDataNode):
	// two concurrent joins of the same node must not interleave the
	// index purge with a completed join, or a live member's index would
	// be wiped with nothing scheduled to rebuild it.
	joinMu sync.Mutex

	joinIdx  *discovery.JoinIndex
	registry *annot.Registry
	shapes   *discovery.ShapeAccumulator
	shapesMu sync.Mutex

	planner *plan.Planner
	catalog *query.Catalog

	optMu sync.Mutex
	opt   *costopt.Optimizer

	// idSeq mints appliance-wide document IDs. Placement hashes the ID,
	// so the ID must exist before a node is chosen (ingestpath.go).
	idSeq atomic.Uint64

	// heartbeats counts HeartbeatTick rounds; every AutoRebalanceEvery-th
	// tick runs a skew-aware rebalance pass (membership.go).
	heartbeats atomic.Uint64

	// mergesByKind counts merge operators executed per node kind (E5's
	// placement-quality metric).
	mergesByKind [3]atomic.Uint64

	// valueProbes accounts the routed value-lookup path (E19's metric):
	// how many lookups ran, how many index-probe messages they cost, and
	// how much the partition router pruned.
	valueProbes valueProbeCounters

	// admission is the facade overload gate (nil when unconfigured or
	// disabled: everything admitted).
	admission *sched.Admission

	// streamShed counts node calls a streaming scan never dispatched
	// because the caller's deadline/cancellation arrived first — the
	// fan-out half of deadline shedding.
	streamShed atomic.Uint64

	// tails is the live-tailing broker (tailpath.go): per-partition CDC
	// event logs written at the write-commit points, fanned out to
	// bounded subscriber queues. Membership hooks fence it so
	// subscriptions migrate with their partitions.
	tails *tail.Broker

	closed bool
	mu     sync.Mutex
}

// MergeCountByKind reports how many merge operators each node kind has
// executed (instrumentation for the placement experiments).
func (e *Engine) MergeCountByKind() (data, grid, cluster uint64) {
	return e.mergesByKind[fabric.Data].Load(),
		e.mergesByKind[fabric.Grid].Load(),
		e.mergesByKind[fabric.Cluster].Load()
}

// Open boots an appliance.
func Open(cfg Config) (*Engine, error) {
	cfg.Normalize()
	fab := cfg.Transport
	if fab == nil {
		fab = fabric.New()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = sched.RealClock()
	}
	e := &Engine{
		cfg:      cfg,
		fab:      fab,
		clock:    clock,
		tr:       fab.Tracer(),
		locks:    fabric.NewLockTable(),
		broker:   virt.NewBroker(),
		joinIdx:  discovery.NewJoinIndex(),
		registry: annot.NewRegistry(cfg.Annotators...),
		shapes:   discovery.NewShapeAccumulator(),
		planner:  plan.NewPlanner(),
		catalog:  query.NewCatalog(),
	}
	e.topo.Store(&dataTopology{byID: map[fabric.NodeID]*dataNode{}})

	// Boot data nodes: fabric node + store + index each.
	for i := 0; i < cfg.DataNodes; i++ {
		if _, err := e.bootDataNode(uint32(i + 1)); err != nil {
			e.fab.Close()
			return nil, err
		}
	}
	// Grid nodes.
	for i := 0; i < cfg.GridNodes; i++ {
		n := e.fab.AddNode(fabric.Grid)
		n.SetHandler(e.gridHandler(n))
		e.grids = append(e.grids, n)
	}
	// Cluster nodes and their consistency group.
	var members []fabric.NodeID
	for i := 0; i < cfg.ClusterNodes; i++ {
		n := e.fab.AddNode(fabric.Cluster)
		n.SetHandler(e.clusterHandler(n))
		e.cluster = append(e.cluster, n)
		members = append(members, n.ID)
	}
	e.group = fabric.NewConsistencyGroup(e.fab, members, 3)

	// Virtualization: one group per role, registered with the broker.
	dg := virt.NewGroup("data", virt.RoleData, 1)
	for _, dn := range e.dataNodes() {
		dg.Add(dn.node.ID)
	}
	gg := virt.NewGroup("grid", virt.RoleGrid, 1)
	for _, g := range e.grids {
		gg.Add(g.ID)
	}
	cg := virt.NewGroup("cluster", virt.RoleCluster, 1, members...)
	e.dataGroup = dg
	e.broker.AddGroup(dg)
	e.broker.AddGroup(gg)
	e.broker.AddGroup(cg)

	e.smgr = virt.NewStorageManager(cfg.Replication, replicaAccess{e})
	e.smgr.SetTracer(e.tr)
	e.smgr.SetDataNodes(e.DataNodeIDs())
	e.caches = cache.New(cache.Config{
		Partitions:      e.smgr.Partitions(),
		PointEntries:    cfg.PointCacheEntries,
		NegativeEntries: cfg.NegativeCacheEntries,
		PartialEntries:  cfg.PartialCacheEntries,
		DisablePoint:    cfg.DisablePointCache,
		DisableNegative: cfg.DisableNegativeCache,
		DisablePartial:  cfg.DisablePartialCache,
	})
	e.recoverFromStores()

	if cfg.RandomPlacement {
		e.placer = sched.NewRandomPlacer(e.fab, 1)
	} else {
		ap := sched.NewAffinityPlacer(e.fab)
		ap.SetRouter(e.smgr) // data-affine keyed placement over the ring
		e.placer = ap
	}
	e.pool = sched.NewPoolConfig(sched.PoolConfig{
		Workers: cfg.Workers,
		FIFO:    cfg.FIFOScheduling,
		Weights: cfg.SchedWeights,
	})
	e.pool.SetClock(e.clock)
	if !cfg.DisableAdmission && (cfg.AdmissionInteractiveRate > 0 || cfg.AdmissionIngestRate > 0) {
		var rates, bursts [sched.NumClasses]float64
		rates[sched.Interactive] = cfg.AdmissionInteractiveRate
		bursts[sched.Interactive] = cfg.AdmissionInteractiveBurst
		rates[sched.Background] = cfg.AdmissionIngestRate
		bursts[sched.Background] = cfg.AdmissionIngestBurst
		e.admission = sched.NewAdmission(sched.AdmissionConfig{Clock: e.clock, Rates: rates, Bursts: bursts})
	}
	e.tails = tail.NewBroker(tail.Options{
		Partitions: e.smgr.Partitions(),
		Retain:     cfg.TailRetain,
		Buffer:     cfg.TailBuffer,
		Clock:      e.clock,
		// Replay and catch-up after a fence run as Background pool work —
		// tail delivery must never compete with durability traffic. If the
		// pool is closing, fall back to a goroutine so a terminating fence
		// still drains.
		Run: func(fn func()) {
			if !e.pool.Submit(sched.Background, fn) {
				go fn()
			}
		},
		PartitionGen: e.smgr.PartitionGen,
	})

	e.registerSystemViews()
	return e, nil
}

// trace reports one membership/routing decision to the transport's
// tracer, when there is one (the simulator); on the real fabric it is
// free.
func (e *Engine) trace(format string, args ...any) {
	if e.tr != nil {
		e.tr.Event(format, args...)
	}
}

// Close shuts the appliance down.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.tails.Shutdown()
	e.pool.Close()
	var firstErr error
	for _, dn := range e.dataNodes() {
		if err := dn.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.fab.Close()
	return firstErr
}

// Fabric exposes the underlying transport (experiments kill nodes, read
// interconnect counters).
func (e *Engine) Fabric() fabric.Transport { return e.fab }

// Pool exposes the execution pool (experiments read queue stats).
func (e *Engine) Pool() *sched.Pool { return e.pool }

// admitOp consults the facade admission gate for one operation of the
// given SLO class on the tenant's bucket. It is the fast-reject path:
// a rejection costs one bucket lookup — no pool dispatch, no fabric
// traffic — and returns *sched.OverloadError with a retry-after hint.
func (e *Engine) admitOp(c sched.Class, tenant string) error {
	return e.admission.Admit(c, tenant)
}

// admitIngest gates a batch of n documents from one source through the
// ingest bucket.
func (e *Engine) admitIngest(source string, n int) error {
	return e.admission.AdmitN(sched.Background, source, n)
}

// Broker exposes the resource broker.
func (e *Engine) Broker() *virt.Broker { return e.broker }

// StorageManager exposes placement state.
func (e *Engine) StorageManager() *virt.StorageManager { return e.smgr }

// JoinIndex exposes discovered relationships.
func (e *Engine) JoinIndex() *discovery.JoinIndex { return e.joinIdx }

// Catalog exposes the view catalog for registering application views.
func (e *Engine) Catalog() *query.Catalog { return e.catalog }

// DataStoreStats exposes the i-th data node's store counters (experiment
// instrumentation).
func (e *Engine) DataStoreStats(i int) (puts, gets, scanned, raw, stored uint64) {
	data := e.dataNodes()
	if i < 0 || i >= len(data) {
		return 0, 0, 0, 0, 0
	}
	return data[i].store.StatsSnapshot()
}

// NodeHandledCounts returns, for every node of the kind, how many
// messages its loop has processed (experiment instrumentation for load
// distribution).
func (e *Engine) NodeHandledCounts(kind fabric.NodeKind) map[string]uint64 {
	out := map[string]uint64{}
	for _, id := range e.fab.NodesOf(kind) {
		if n, ok := e.fab.Node(id); ok {
			_, _, handled := n.Stats()
			out[id.String()] = handled
		}
	}
	return out
}

// dataNodes returns the current data-node snapshot (lock-free; the slice
// is immutable — never mutate it).
func (e *Engine) dataNodes() []*dataNode { return e.topo.Load().list }

// dataNode resolves a data node by ID from the current snapshot.
func (e *Engine) dataNode(id fabric.NodeID) (*dataNode, bool) {
	dn, ok := e.topo.Load().byID[id]
	return dn, ok
}

// DataNodeIDs lists the engine's data node IDs.
func (e *Engine) DataNodeIDs() []fabric.NodeID {
	data := e.dataNodes()
	out := make([]fabric.NodeID, len(data))
	for i, dn := range data {
		out[i] = dn.node.ID
	}
	return out
}

// aliveData returns the alive data nodes.
func (e *Engine) aliveData() []*dataNode {
	var out []*dataNode
	for _, dn := range e.dataNodes() {
		if dn.node.Alive() {
			out = append(out, dn)
		}
	}
	return out
}

// eligibleDataIDs lists the data nodes fit to source and receive repair
// copies: alive and not quarantined for missed writes — a dirty node's
// gaps must never propagate into freshly repaired replicas.
func (e *Engine) eligibleDataIDs() []fabric.NodeID {
	var out []fabric.NodeID
	for _, dn := range e.dataNodes() {
		if e.eligible(dn) {
			out = append(out, dn.node.ID)
		}
	}
	return out
}

// bootDataNode provisions one data node — fabric node, store, index,
// handler — and registers it with the engine. origin seeds the store's
// legacy ID allocator (engine-minted IDs use engineIDOrigin instead).
func (e *Engine) bootDataNode(origin uint32) (*dataNode, error) {
	n := e.fab.AddNode(fabric.Data)
	dir := ""
	if e.cfg.Dir != "" {
		dir = filepath.Join(e.cfg.Dir, n.ID.String())
	}
	st, err := storage.Open(origin, e.storeOptions(dir))
	if err != nil {
		return nil, fmt.Errorf("core: boot %s: %w", n.ID, err)
	}
	dn := &dataNode{
		node: n, store: st,
		// The value index is keyed by the same hash(DocID) → partition
		// function the storage manager routes by, so the engine's probe
		// router can name the partitions a probe should consult.
		ix: index.NewPartitioned(nil, virt.DefaultPartitions, func(id docmodel.DocID) int {
			return virt.DocPartition(id, virt.DefaultPartitions)
		}),
		indexedVer: map[docmodel.DocID]*docmodel.Document{},
	}
	n.SetHandler(e.dataHandler(dn))
	// Copy-on-write registration: readers keep their snapshot, the next
	// load sees the grown topology. e.mu serializes writers and orders
	// the publish against Close — a topology published after Close set
	// the flag would hold a store Close never snapshots, so refuse and
	// release the store instead.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = st.Close()
		return nil, fmt.Errorf("core: boot %s: engine closed", n.ID)
	}
	old := e.topo.Load()
	next := &dataTopology{
		list: append(append([]*dataNode{}, old.list...), dn),
		byID: make(map[fabric.NodeID]*dataNode, len(old.byID)+1),
	}
	for id, d := range old.byID {
		next.byID[id] = d
	}
	next.byID[n.ID] = dn
	e.topo.Store(next)
	e.mu.Unlock()
	return dn, nil
}

// storeOptions builds a data-node store configuration: the engine-wide
// backend selection and codec, rooted at the node's directory.
func (e *Engine) storeOptions(dir string) storage.Options {
	return storage.Options{
		Dir:            dir,
		Backend:        e.cfg.StorageBackend,
		SegmentBytes:   e.cfg.SegmentBytes,
		HotCacheDocs:   e.cfg.HotCacheDocs,
		Codec:          e.cfg.Codec,
		RetainVersions: e.cfg.RetainVersions,
	}
}

// defaultScanPageDocs is the per-reply document bound for paged
// distributed scans when Config.ScanPageDocs is unset.
const defaultScanPageDocs = 256

// scanPageSize resolves the configured page bound (0 = unpaged).
func (e *Engine) scanPageSize() int {
	switch {
	case e.cfg.ScanPageDocs < 0:
		return 0
	case e.cfg.ScanPageDocs == 0:
		return defaultScanPageDocs
	}
	return e.cfg.ScanPageDocs
}

// engineIDOrigin is the Origin of engine-minted document IDs. It is
// disjoint from the per-store origins (1..DataNodes), so the central
// allocator and any legacy store-minted IDs can never collide.
const engineIDOrigin uint32 = 0xC1D20000

// mintDocID allocates an appliance-wide document ID. IDs exist before
// placement because placement is hash(DocID) → partition → node.
func (e *Engine) mintDocID() docmodel.DocID {
	return docmodel.DocID{Origin: engineIDOrigin, Seq: e.idSeq.Add(1)}
}

// recoverFromStores rebuilds the volatile routing state a persistent
// appliance needs after WAL replay: the ID allocator advances past every
// recovered engine-minted ID, each recovered document is re-registered
// with the storage manager under the data class persisted in its header
// (so a restarted regulatory document repairs at RF3, not RF2), documents
// are migrated onto their current ring owners (the reopened appliance may
// have a different data-node count, which moves the hash placement), and
// each node re-indexes the documents of its answering partitions.
//
// Registration runs on the stores' metadata stream (EachMeta), not a
// document scan: a segment-backed store registers its whole corpus from
// replayed headers without materializing a single body.
func (e *Engine) recoverFromStores() {
	sources := make([]*storage.Store, 0, len(e.dataNodes()))
	for _, dn := range e.dataNodes() {
		sources = append(sources, dn.store)
	}
	// A previous run may have had more data nodes: their WAL directories
	// are still on disk but back no live node. Scan them too, or their
	// documents would silently vanish and the ID allocator could regress
	// below Seqs they persisted.
	orphans := e.openOrphanStores()
	defer func() {
		for _, st := range orphans {
			_ = st.Close()
		}
	}()
	sources = append(sources, orphans...)

	maxSeq := uint64(0)
	seen := map[docmodel.DocID]struct{}{}
	for _, st := range sources {
		st.EachMeta(func(m storage.DocMeta) bool {
			if m.ID.Origin == engineIDOrigin && m.ID.Seq > maxSeq {
				maxSeq = m.ID.Seq
			}
			if m.Deleted {
				// Tombstoned documents are not routing state: they stay on
				// their stores (for audit, until merge reclaims them) but
				// are neither registered nor migrated — recovery must not
				// resurrect a deleted document into the ring.
				return true
			}
			if _, dup := seen[m.ID]; !dup {
				seen[m.ID] = struct{}{}
				class := virt.DataClass(m.Class)
				if class == virt.ClassUser && m.Annotation {
					// Legacy header without a class byte value: annotations
					// are derived by construction.
					class = virt.ClassDerived
				}
				e.smgr.Register(m.ID, class)
			}
			return true
		})
	}
	if maxSeq > e.idSeq.Load() {
		e.idSeq.Store(maxSeq)
	}
	if len(seen) == 0 {
		return
	}
	// Boot-time migration: every holder the ring names must physically
	// have every version, or routed reads would miss data that is on disk
	// under the old membership's placement — and a lagging replica
	// promoted to answering owner would serve a stale latest version.
	// Each version is sourced independently: chains can have holes (a
	// replica that missed v1 but received v2 has the same length as a
	// complete chain), so no single store is authoritative. Copies go
	// store-to-store (the fabric is not serving yet).
	for id := range seen {
		best := 0
		for _, st := range sources {
			if n := st.VersionCount(id); n > best {
				best = n
			}
		}
		if best == 0 {
			continue
		}
		for _, h := range e.smgr.Holders(id) {
			dst, ok := e.dataNode(h)
			if !ok {
				continue
			}
			for v := uint32(1); v <= uint32(best); v++ {
				key := docmodel.VersionKey{Doc: id, Ver: v}
				if _, err := dst.store.GetVersion(key); err == nil {
					continue // already holds this version
				}
				for _, st := range sources {
					if st == dst.store {
						continue
					}
					if d, err := st.GetVersion(key); err == nil {
						_ = dst.store.PutReplica(d)
						break
					}
				}
			}
		}
	}
	for _, dn := range e.dataNodes() {
		for _, id := range e.smgr.DocsInPartitions(e.answeringPartitions(dn)) {
			d, err := dn.store.Get(id)
			if err != nil {
				continue
			}
			dn.indexDoc(d)
			// Discovery state is in-memory only: replay reference edges
			// (including annotation "annotates" edges) and shape
			// observations alongside the index.
			discovery.BuildRefEdges(e.joinIdx, d)
			if !d.IsAnnotation() {
				e.shapesMu.Lock()
				e.shapes.Observe(d)
				e.shapesMu.Unlock()
			}
		}
	}
}

// openOrphanStores opens the persisted stores of data nodes that existed
// in a previous, larger membership ("data-N" directories beyond the
// configured count). They participate in recovery as read sources only
// and are closed when recovery finishes.
func (e *Engine) openOrphanStores() []*storage.Store {
	if e.cfg.Dir == "" {
		return nil
	}
	entries, err := os.ReadDir(e.cfg.Dir)
	if err != nil {
		return nil
	}
	live := map[string]struct{}{}
	for _, dn := range e.dataNodes() {
		live[dn.node.ID.String()] = struct{}{}
	}
	var out []*storage.Store
	for _, ent := range entries {
		if !ent.IsDir() || !strings.HasPrefix(ent.Name(), "data-") {
			continue
		}
		if _, ok := live[ent.Name()]; ok {
			continue
		}
		st, err := storage.Open(^uint32(0), e.storeOptions(filepath.Join(e.cfg.Dir, ent.Name())))
		if err != nil {
			continue
		}
		out = append(out, st)
	}
	return out
}

// routeNewDoc resolves a new document's replica set into a live primary
// plus the remaining targets. Dead targets stay in the replica set (the
// partition map is membership truth, liveness is transient); their
// copies are restored by recovery. The caller registers the document
// with the storage manager once the primary write succeeds.
func (e *Engine) routeNewDoc(id docmodel.DocID, class virt.DataClass) (primary *dataNode, others []fabric.NodeID, err error) {
	targets, err := e.smgr.PlaceDoc(id, class)
	if err != nil {
		return nil, nil, err
	}
	e.smgr.RecordLoad(id)
	for _, t := range targets {
		if primary == nil {
			if dn, ok := e.dataNode(t); ok && e.eligible(dn) {
				primary = dn
				continue
			}
		}
		others = append(others, t)
	}
	if primary == nil {
		return nil, nil, errors.New("core: no alive data nodes")
	}
	return primary, others, nil
}

// eligible reports whether a data node may serve routed reads and answer
// for its partitions: it must be alive and must not be quarantined for
// missed writes.
func (e *Engine) eligible(dn *dataNode) bool {
	return dn.node.Alive() && !dn.dirty.Load()
}

// answeringPartitions reports, per partition, whether the node is the
// partition's current answering owner (first alive owner). Scan-side
// handlers compute it once per request, then filter their store with an
// O(1) per-document check — the partition map's replacement for the old
// per-node owned maps.
func (e *Engine) answeringPartitions(dn *dataNode) []bool {
	alive := func(id fabric.NodeID) bool {
		n, ok := e.dataNode(id)
		return ok && e.eligible(n)
	}
	out := make([]bool, e.smgr.Partitions())
	for p := range out {
		if owner, ok := e.smgr.AnsweringNode(p, alive); ok && owner == dn.node.ID {
			out[p] = true
		}
	}
	return out
}

// scanOwned streams the latest version of every document the node
// currently answers for — the registered documents of its answering
// partitions — applying the pushed-down filter. Replica copies are never
// visited, so a node's scan work is its owned share of the corpus.
func (e *Engine) scanOwned(dn *dataNode, filter expr.Expr, fn func(*docmodel.Document) bool) {
	ids := e.smgr.DocsInPartitions(e.answeringPartitions(dn))
	dn.store.ScanSubset(ids, filter, fn)
}

// CompactStores re-frames every data node's persistent store with the
// current codec (storage.Store.Compact), one store at a time.
func (e *Engine) CompactStores() error {
	for _, dn := range e.dataNodes() {
		if err := dn.store.Compact(); err != nil {
			return fmt.Errorf("%s: %w", dn.node.ID, err)
		}
	}
	return nil
}

// MergeStores runs segment merge/GC on every data node's store and
// reports how many stores actually folded. Backends without physical
// segments surface storage.ErrMergeUnsupported.
func (e *Engine) MergeStores() (folds int, err error) {
	for _, dn := range e.dataNodes() {
		merged, err := dn.store.Merge()
		if err != nil {
			return folds, fmt.Errorf("%s: %w", dn.node.ID, err)
		}
		if merged {
			folds++
		}
	}
	return folds, nil
}

// StorageFootprint sums every data node's live vs on-disk byte counts
// (storage.Store.StorageFootprint): disk−live is the garbage a merge
// would reclaim.
func (e *Engine) StorageFootprint() (live, disk uint64) {
	for _, dn := range e.dataNodes() {
		l, d := dn.store.StorageFootprint()
		live += l
		disk += d
	}
	return live, disk
}

// Metrics is a point-in-time snapshot of appliance health counters.
type Metrics struct {
	Documents     int
	Annotations   int
	IndexedDocs   int
	JoinEdges     int
	Net           fabric.NetStats
	StoredBytes   uint64
	RawBytes      uint64
	BacklogTasks  int
	GroupEpoch    uint64
	ClusterLeader fabric.NodeID

	// Routed value-lookup accounting (see Engine.ValueProbeStats).
	ValueLookups        uint64
	ValueProbes         uint64
	ValueProbePruned    uint64
	ValueProbeFallbacks uint64

	// Hot-path cache accounting (see Engine.CacheStats).
	Caches CacheMetrics

	// Overload-control accounting (see Engine.OverloadStats): per-class
	// pool scheduling/shedding counters, facade admission decisions,
	// and streaming fan-out sheds.
	Sched           map[string]SchedClassMetrics
	Admission       map[string]AdmissionClassMetrics
	StreamShedCalls uint64

	// AdmissionFairness is Jain's fairness index over the per-tenant
	// interactive admission buckets (1.0 = perfectly even, 1/n = one
	// tenant takes everything; 1.0 when ungated or single-tenant).
	AdmissionFairness float64

	// Live-tailing accounting (see Engine.TailStats).
	Tail TailMetrics
}

// SchedClassMetrics reports one SLO class's pool accounting: executed
// tasks, instantaneous queue depth, queue-wait distribution, and the
// three overload outcomes (shed at submit, shed at dequeue, rejected on
// a full queue).
type SchedClassMetrics struct {
	Tasks         uint64
	QueueDepth    int
	ShedAtSubmit  uint64
	ShedAtDequeue uint64
	RejectedFull  uint64
	MeanWaitUs    int64
	WaitP50Us     int64
	WaitP99Us     int64
	MaxWaitUs     int64
}

// AdmissionClassMetrics reports facade admission decisions for one
// class's buckets (summed over tenants).
type AdmissionClassMetrics struct {
	Admitted uint64
	Rejected uint64
}

// CacheMetrics reports the hot-path caches' counters: hits, misses and
// invalidations per cache. The negative cache's hits are the negative
// hits — a repeated miss answered without a ring round-trip.
type CacheMetrics struct {
	PointHits             uint64
	PointMisses           uint64
	PointInvalidations    uint64
	NegativeHits          uint64
	NegativeMisses        uint64
	NegativeInvalidations uint64
	PartialHits           uint64
	PartialMisses         uint64
	PartialInvalidations  uint64
}

// MetricsSnapshot gathers current counters.
func (e *Engine) MetricsSnapshot() Metrics {
	return e.MetricsSnapshotContext(context.Background())
}

// MetricsSnapshotContext gathers current counters under a request
// lifecycle. Corpus statistics stream over each store's header metadata
// (EachMeta) instead of scanning document bodies, so a snapshot of a
// lazily-decoded segment store counts a 10k-document corpus without
// materializing a single body; a cancelled context stops the walk early
// and returns the partial snapshot.
func (e *Engine) MetricsSnapshotContext(ctx context.Context) Metrics {
	m := Metrics{
		Net:           e.fab.NetStats(),
		BacklogTasks:  e.pool.Backlog(),
		JoinEdges:     e.joinIdx.EdgeCount(),
		GroupEpoch:    e.group.Epoch(),
		ClusterLeader: e.group.Leader(),
	}
	m.ValueLookups, m.ValueProbes, m.ValueProbePruned, m.ValueProbeFallbacks = e.ValueProbeStats()
	m.Caches = e.CacheStats()
	m.Sched, m.Admission, m.StreamShedCalls, m.AdmissionFairness = e.OverloadStats()
	m.Tail = e.TailStats()
	seen := map[docmodel.DocID]struct{}{}
	for _, dn := range e.dataNodes() {
		if ctx.Err() != nil {
			break
		}
		m.IndexedDocs += dn.ix.DocCount()
		_, _, _, raw, stored := dn.store.StatsSnapshot()
		m.RawBytes += raw
		m.StoredBytes += stored
		dn.store.EachMeta(func(meta storage.DocMeta) bool {
			if _, dup := seen[meta.ID]; dup {
				return true // replica: count each document once
			}
			seen[meta.ID] = struct{}{}
			if meta.Annotation {
				m.Annotations++
			} else {
				m.Documents++
			}
			return ctx.Err() == nil
		})
	}
	return m
}

// OverloadStats snapshots the overload-control counters: per-class
// pool scheduling stats, per-class admission decisions, how many
// streaming fan-out node calls were shed un-dispatched, and Jain's
// fairness index over the per-tenant admission buckets.
func (e *Engine) OverloadStats() (map[string]SchedClassMetrics, map[string]AdmissionClassMetrics, uint64, float64) {
	scheds := map[string]SchedClassMetrics{}
	pool := e.pool.StatsAll()
	adm := e.admission.Stats()
	admits := map[string]AdmissionClassMetrics{}
	for _, c := range sched.Classes() {
		qs := pool[c]
		scheds[c.String()] = SchedClassMetrics{
			Tasks:         qs.Tasks,
			QueueDepth:    qs.Depth,
			ShedAtSubmit:  qs.ShedAtSubmit,
			ShedAtDequeue: qs.ShedAtDequeue,
			RejectedFull:  qs.RejectedFull,
			MeanWaitUs:    qs.MeanWait().Microseconds(),
			WaitP50Us:     qs.WaitP50.Microseconds(),
			WaitP99Us:     qs.WaitP99.Microseconds(),
			MaxWaitUs:     qs.MaxWait.Microseconds(),
		}
		admits[c.String()] = AdmissionClassMetrics{
			Admitted: adm.Admitted[c],
			Rejected: adm.Rejected[c],
		}
	}
	return scheds, admits, e.streamShed.Load(), e.admission.FairnessIndex()
}

// CacheStats snapshots the hot-path cache counters.
func (e *Engine) CacheStats() CacheMetrics {
	p, n, f := e.caches.PointStats(), e.caches.NegativeStats(), e.caches.PartialStats()
	return CacheMetrics{
		PointHits:             p.Hits,
		PointMisses:           p.Misses,
		PointInvalidations:    p.Invalidations,
		NegativeHits:          n.Hits,
		NegativeMisses:        n.Misses,
		NegativeInvalidations: n.Invalidations,
		PartialHits:           f.Hits,
		PartialMisses:         f.Misses,
		PartialInvalidations:  f.Invalidations,
	}
}

// cacheInvalidateDoc drops the document's point and negative entries and
// voids its partition's cached partials (via the write epoch) — called
// after every committed primary write and after index mutations that
// change what the partition's facet/aggregate partials derive from.
func (e *Engine) cacheInvalidateDoc(id docmodel.DocID) {
	e.caches.InvalidateDoc(id, e.smgr.PartitionOf(id))
}

// now is the engine clock: the wall clock normally, the simulator's
// virtual clock on a simulated transport — so minted timestamps
// (IngestedAt and friends) reproduce across seeded runs.
func (e *Engine) now() time.Time { return e.clock.Now() }
