// Package core assembles the Impliance appliance: it boots the simulated
// fabric (data/grid/cluster nodes), wires per-data-node stores and
// indexes, runs the asynchronous indexing/annotation pipeline, executes
// planned queries across the nodes, and hosts the discovery and
// virtualization machinery. This is the "single system image" of paper
// §3.3 — clients see one engine; placement, replication, and parallelism
// are internal.
package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"impliance/internal/annot"
	"impliance/internal/baseline/costopt"
	"impliance/internal/discovery"
	"impliance/internal/docmodel"
	"impliance/internal/fabric"
	"impliance/internal/index"
	"impliance/internal/plan"
	"impliance/internal/query"
	"impliance/internal/sched"
	"impliance/internal/storage"
	"impliance/internal/storage/compress"
	"impliance/internal/virt"
	"impliance/internal/workload"
)

// Config sizes and configures an appliance instance. The zero value plus
// Normalize gives a small working appliance — the "operational out of the
// box" requirement (§3.1). The ablation switches exist for the
// experiments in EXPERIMENTS.md and default to the paper's design.
type Config struct {
	// Topology (paper Figure 3).
	DataNodes    int // default 4
	GridNodes    int // default 2
	ClusterNodes int // default 1

	// Workers sizes the background execution pool (default 4).
	Workers int

	// Dir persists data-node WALs under this directory ("" = in-memory).
	Dir string

	// Codec compresses stored frames (default compress.Flate; E15 ablation
	// sets compress.None).
	Codec compress.Codec

	// Replication assigns replica counts by data class (§3.4).
	Replication virt.ReplicationPolicy

	// Annotators installs the discovery annotators (default: entity +
	// sentiment with the standard product catalog).
	Annotators []annot.Annotator

	// --- Ablation switches (EXPERIMENTS.md) ---

	// SyncIndexing indexes and annotates inline with ingestion (E10
	// ablation; the paper's design is asynchronous).
	SyncIndexing bool
	// SyncReplication waits for every replica write during ingestion (E12
	// ablation; the paper's versioned design replicates asynchronously).
	SyncReplication bool
	// FIFOScheduling disables priority interleaving (E11 ablation).
	FIFOScheduling bool
	// RandomPlacement ignores operator/node-kind affinity (E5 ablation).
	RandomPlacement bool
	// DisablePushdown ships whole documents to the engine instead of
	// filtering/aggregating inside storage nodes (E9 ablation).
	DisablePushdown bool
	// UseCostOptimizer plans with the statistics-based optimizer instead
	// of the simple planner (E7 comparator). Statistics must be collected
	// with CollectStatistics; they go stale on purpose.
	UseCostOptimizer bool
}

// Normalize fills defaults in place.
func (c *Config) Normalize() {
	if c.DataNodes <= 0 {
		c.DataNodes = 4
	}
	if c.GridNodes <= 0 {
		c.GridNodes = 2
	}
	if c.ClusterNodes <= 0 {
		c.ClusterNodes = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Codec == nil {
		c.Codec = compress.Flate
	}
	if c.Replication.Factor == nil {
		c.Replication = virt.DefaultPolicy()
	}
	if c.Annotators == nil {
		c.Annotators = []annot.Annotator{
			annot.NewDefaultEntityAnnotator(workload.Products),
			annot.NewSentimentAnnotator(),
		}
	}
}

// dataNode bundles a fabric node with its store and index.
type dataNode struct {
	node  *fabric.Node
	store *storage.Store
	ix    *index.Index

	mu         sync.Mutex
	indexedVer map[docmodel.DocID]*docmodel.Document // version currently indexed
	owned      map[docmodel.DocID]struct{}           // docs this node answers for
}

// setOwned marks this node as the document's answering owner.
func (dn *dataNode) setOwned(id docmodel.DocID) {
	dn.mu.Lock()
	dn.owned[id] = struct{}{}
	dn.mu.Unlock()
}

// isOwned reports whether this node answers for the document.
func (dn *dataNode) isOwned(id docmodel.DocID) bool {
	dn.mu.Lock()
	_, ok := dn.owned[id]
	dn.mu.Unlock()
	return ok
}

// clearOwned strips all ownership (applied to dead nodes at recovery so a
// later revival cannot double-report).
func (dn *dataNode) clearOwned() {
	dn.mu.Lock()
	dn.owned = map[docmodel.DocID]struct{}{}
	dn.mu.Unlock()
}

// ownedIDs snapshots the node's owned documents in deterministic order.
func (dn *dataNode) ownedIDs() []docmodel.DocID {
	dn.mu.Lock()
	out := make([]docmodel.DocID, 0, len(dn.owned))
	for id := range dn.owned {
		out = append(out, id)
	}
	dn.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Engine is a running appliance instance.
type Engine struct {
	cfg Config

	fab     *fabric.Fabric
	data    []*dataNode
	byNode  map[fabric.NodeID]*dataNode
	grids   []*fabric.Node
	cluster []*fabric.Node

	placer sched.Placer
	pool   *sched.Pool
	group  *fabric.ConsistencyGroup
	locks  *fabric.LockTable
	broker *virt.Broker
	smgr   *virt.StorageManager

	joinIdx  *discovery.JoinIndex
	registry *annot.Registry
	shapes   *discovery.ShapeAccumulator
	shapesMu sync.Mutex

	planner *plan.Planner
	catalog *query.Catalog

	optMu sync.Mutex
	opt   *costopt.Optimizer

	rrMu sync.Mutex
	rr   int

	// mergesByKind counts merge operators executed per node kind (E5's
	// placement-quality metric).
	mergesByKind [3]atomic.Uint64

	closed bool
	mu     sync.Mutex
}

// MergeCountByKind reports how many merge operators each node kind has
// executed (instrumentation for the placement experiments).
func (e *Engine) MergeCountByKind() (data, grid, cluster uint64) {
	return e.mergesByKind[fabric.Data].Load(),
		e.mergesByKind[fabric.Grid].Load(),
		e.mergesByKind[fabric.Cluster].Load()
}

// Open boots an appliance.
func Open(cfg Config) (*Engine, error) {
	cfg.Normalize()
	e := &Engine{
		cfg:      cfg,
		fab:      fabric.New(),
		byNode:   map[fabric.NodeID]*dataNode{},
		locks:    fabric.NewLockTable(),
		broker:   virt.NewBroker(),
		joinIdx:  discovery.NewJoinIndex(),
		registry: annot.NewRegistry(cfg.Annotators...),
		shapes:   discovery.NewShapeAccumulator(),
		planner:  plan.NewPlanner(),
		catalog:  query.NewCatalog(),
	}

	// Boot data nodes: fabric node + store + index each.
	for i := 0; i < cfg.DataNodes; i++ {
		n := e.fab.AddNode(fabric.Data)
		dir := ""
		if cfg.Dir != "" {
			dir = filepath.Join(cfg.Dir, n.ID.String())
		}
		st, err := storage.Open(uint32(i+1), storage.Options{Dir: dir, Codec: cfg.Codec})
		if err != nil {
			e.fab.Close()
			return nil, fmt.Errorf("core: boot %s: %w", n.ID, err)
		}
		dn := &dataNode{
			node: n, store: st, ix: index.New(nil),
			indexedVer: map[docmodel.DocID]*docmodel.Document{},
			owned:      map[docmodel.DocID]struct{}{},
		}
		n.SetHandler(e.dataHandler(dn))
		e.data = append(e.data, dn)
		e.byNode[n.ID] = dn
	}
	// Grid nodes.
	for i := 0; i < cfg.GridNodes; i++ {
		n := e.fab.AddNode(fabric.Grid)
		n.SetHandler(e.gridHandler(n))
		e.grids = append(e.grids, n)
	}
	// Cluster nodes and their consistency group.
	var members []fabric.NodeID
	for i := 0; i < cfg.ClusterNodes; i++ {
		n := e.fab.AddNode(fabric.Cluster)
		n.SetHandler(e.clusterHandler(n))
		e.cluster = append(e.cluster, n)
		members = append(members, n.ID)
	}
	e.group = fabric.NewConsistencyGroup(e.fab, members, 3)

	// Virtualization: one group per role, registered with the broker.
	dg := virt.NewGroup("data", virt.RoleData, 1)
	for _, dn := range e.data {
		dg.Add(dn.node.ID)
	}
	gg := virt.NewGroup("grid", virt.RoleGrid, 1)
	for _, g := range e.grids {
		gg.Add(g.ID)
	}
	cg := virt.NewGroup("cluster", virt.RoleCluster, 1, members...)
	e.broker.AddGroup(dg)
	e.broker.AddGroup(gg)
	e.broker.AddGroup(cg)

	e.smgr = virt.NewStorageManager(cfg.Replication, replicaAccess{e})

	if cfg.RandomPlacement {
		e.placer = sched.NewRandomPlacer(e.fab, 1)
	} else {
		e.placer = sched.NewAffinityPlacer(e.fab)
	}
	e.pool = sched.NewPool(cfg.Workers, cfg.FIFOScheduling)

	e.registerSystemViews()
	return e, nil
}

// Close shuts the appliance down.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.pool.Close()
	var firstErr error
	for _, dn := range e.data {
		if err := dn.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.fab.Close()
	return firstErr
}

// Fabric exposes the underlying fabric (experiments kill nodes, read
// interconnect counters).
func (e *Engine) Fabric() *fabric.Fabric { return e.fab }

// Pool exposes the execution pool (experiments read queue stats).
func (e *Engine) Pool() *sched.Pool { return e.pool }

// Broker exposes the resource broker.
func (e *Engine) Broker() *virt.Broker { return e.broker }

// StorageManager exposes placement state.
func (e *Engine) StorageManager() *virt.StorageManager { return e.smgr }

// JoinIndex exposes discovered relationships.
func (e *Engine) JoinIndex() *discovery.JoinIndex { return e.joinIdx }

// Catalog exposes the view catalog for registering application views.
func (e *Engine) Catalog() *query.Catalog { return e.catalog }

// DataStoreStats exposes the i-th data node's store counters (experiment
// instrumentation).
func (e *Engine) DataStoreStats(i int) (puts, gets, scanned, raw, stored uint64) {
	if i < 0 || i >= len(e.data) {
		return 0, 0, 0, 0, 0
	}
	return e.data[i].store.StatsSnapshot()
}

// NodeHandledCounts returns, for every node of the kind, how many
// messages its loop has processed (experiment instrumentation for load
// distribution).
func (e *Engine) NodeHandledCounts(kind fabric.NodeKind) map[string]uint64 {
	out := map[string]uint64{}
	for _, id := range e.fab.NodesOf(kind) {
		if n, ok := e.fab.Node(id); ok {
			_, _, handled := n.Stats()
			out[id.String()] = handled
		}
	}
	return out
}

// DataNodeIDs lists the engine's data node IDs.
func (e *Engine) DataNodeIDs() []fabric.NodeID {
	out := make([]fabric.NodeID, len(e.data))
	for i, dn := range e.data {
		out[i] = dn.node.ID
	}
	return out
}

// aliveData returns the alive data nodes.
func (e *Engine) aliveData() []*dataNode {
	var out []*dataNode
	for _, dn := range e.data {
		if dn.node.Alive() {
			out = append(out, dn)
		}
	}
	return out
}

func (e *Engine) aliveDataIDs() []fabric.NodeID {
	var out []fabric.NodeID
	for _, dn := range e.aliveData() {
		out = append(out, dn.node.ID)
	}
	return out
}

// nextPrimary picks the next primary data node round-robin.
func (e *Engine) nextPrimary() (*dataNode, error) {
	alive := e.aliveData()
	if len(alive) == 0 {
		return nil, errors.New("core: no alive data nodes")
	}
	e.rrMu.Lock()
	dn := alive[e.rr%len(alive)]
	e.rr++
	e.rrMu.Unlock()
	return dn, nil
}

// pickReplicas chooses rf total holders: the primary plus its successors
// in ring order, so replica load spreads evenly across the nodes.
func (e *Engine) pickReplicas(primary *dataNode, rf int) []fabric.NodeID {
	alive := e.aliveData()
	start := 0
	for i, dn := range alive {
		if dn == primary {
			start = i
			break
		}
	}
	targets := []fabric.NodeID{primary.node.ID}
	for i := 1; i < len(alive) && len(targets) < rf; i++ {
		targets = append(targets, alive[(start+i)%len(alive)].node.ID)
	}
	return targets
}

// Metrics is a point-in-time snapshot of appliance health counters.
type Metrics struct {
	Documents     int
	Annotations   int
	IndexedDocs   int
	JoinEdges     int
	Net           fabric.NetStats
	StoredBytes   uint64
	RawBytes      uint64
	BacklogTasks  int
	GroupEpoch    uint64
	ClusterLeader fabric.NodeID
}

// MetricsSnapshot gathers current counters.
func (e *Engine) MetricsSnapshot() Metrics {
	m := Metrics{
		Net:           e.fab.NetStats(),
		BacklogTasks:  e.pool.Backlog(),
		JoinEdges:     e.joinIdx.EdgeCount(),
		GroupEpoch:    e.group.Epoch(),
		ClusterLeader: e.group.Leader(),
	}
	seen := map[docmodel.DocID]struct{}{}
	for _, dn := range e.data {
		m.IndexedDocs += dn.ix.DocCount()
		_, _, _, raw, stored := dn.store.StatsSnapshot()
		m.RawBytes += raw
		m.StoredBytes += stored
		dn.store.Scan(func(d *docmodel.Document) bool {
			if _, dup := seen[d.ID]; dup {
				return true // replica: count each document once
			}
			seen[d.ID] = struct{}{}
			if d.IsAnnotation() {
				m.Annotations++
			} else {
				m.Documents++
			}
			return true
		})
	}
	return m
}

// now is the engine clock (overridable would be for tests; wall time is
// fine since experiments measure relative durations).
func (e *Engine) now() time.Time { return time.Now() }
