package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/plan"
	"impliance/internal/storage"
)

// scanReplyHighWater runs one scan query on a fresh engine configured
// with the given page bound and reports the row count plus the largest
// single reply the fabric saw during the query.
func scanReplyHighWater(t *testing.T, pageDocs int) (rows int, maxReply uint64) {
	t.Helper()
	e := testEngine(t, func(c *Config) { c.ScanPageDocs = pageDocs })
	for i := 0; i < 90; i++ {
		item := Item{Body: docmodel.Object(docmodel.F("k", docmodel.Int(int64(i)))), MediaType: "relational/row", Source: "u"}
		if _, err := e.Ingest(item); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	e.fab.ResetNetStats()
	res, err := e.Run(plan.Query{Filter: expr.Cmp("/k", expr.OpLt, docmodel.Int(80))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Access.Kind != plan.AccessScan {
		t.Fatalf("query did not take the scan path: %s", res.Plan)
	}
	return len(res.Rows), e.fab.NetStats().MaxReplyBytes
}

// TestScanPagingBoundsReplySize: paging changes peak per-reply size, not
// results — a tiny page returns the same rows as the unpaged ablation
// while keeping every reply O(page).
func TestScanPagingBoundsReplySize(t *testing.T) {
	pagedRows, pagedMax := scanReplyHighWater(t, 3)
	unpagedRows, unpagedMax := scanReplyHighWater(t, -1)
	if pagedRows != 80 || unpagedRows != 80 {
		t.Fatalf("rows: paged %d, unpaged %d, want 80 each", pagedRows, unpagedRows)
	}
	if pagedMax == 0 || unpagedMax == 0 {
		t.Fatalf("reply high-water marks not recorded: paged %d, unpaged %d", pagedMax, unpagedMax)
	}
	if pagedMax >= unpagedMax {
		t.Errorf("paged max reply %dB not below unpaged %dB", pagedMax, unpagedMax)
	}
}

// TestScanResumeTokenRestart: a resume token whose ID vanished from the
// node's owned set restarts that node's scan from the top (the caller's
// dedup absorbs the re-delivery), and a paged drive delivers exactly the
// single-reply document set.
func TestScanResumeTokenRestart(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.ScanPageDocs = 2 })
	for i := 0; i < 30; i++ {
		item := Item{Body: docmodel.Object(docmodel.F("k", docmodel.Int(int64(i)))), MediaType: "relational/row", Source: "u"}
		if _, err := e.Ingest(item); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	dn := e.ringNodes()[0]
	filter := expr.True().Encode()

	// Baseline: one unpaged reply names the node's full answering set.
	raw, err := e.fab.Call(dn.node.ID, msgScanFiltered, mustJSON(scanReq{Filter: filter}))
	if err != nil {
		t.Fatal(err)
	}
	all, more, _, _, err := decodeScanPage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if more || len(all) == 0 {
		t.Fatalf("unpaged baseline: %d docs, more=%v", len(all), more)
	}

	// Paged drive with a 2-doc page returns the same set in order.
	paged, err := e.scanNodePaged(context.Background(), dn, msgScanFiltered, filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paged) != len(all) {
		t.Fatalf("paged drive returned %d docs, baseline %d", len(paged), len(all))
	}
	for i := range all {
		if paged[i].ID != all[i].ID {
			t.Fatalf("paged doc %d = %s, baseline %s", i, paged[i].ID, all[i].ID)
		}
	}

	// A token whose ID no longer exists restarts from position 0.
	ghost := docmodel.DocID{Origin: 99, Seq: 9999}
	raw, err = e.fab.Call(dn.node.ID, msgScanFiltered,
		mustJSON(scanReq{Filter: filter, AfterPos: 3, AfterID: ghost.String()}))
	if err != nil {
		t.Fatal(err)
	}
	restarted, _, _, _, err := decodeScanPage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(restarted) != len(all) {
		t.Fatalf("vanished token returned %d docs, want full restart (%d)", len(restarted), len(all))
	}
}

// TestGetBatchDistinguishesMissFromReadError: a genuinely absent ID is
// silently skipped (the caller's negative cache depends on it), while a
// frame read failure surfaces as an error instead of masquerading as a
// miss.
func TestGetBatchDistinguishesMissFromReadError(t *testing.T) {
	dir := t.TempDir()
	e := testEngine(t, func(c *Config) {
		c.Dir = dir
		c.StorageBackend = storage.BackendSegment
		c.HotCacheDocs = 1 // keep reads hitting disk, not the decoded cache
	})
	for i := 0; i < 30; i++ {
		if _, err := e.Ingest(textItem(fmt.Sprintf("doc %d", i), "unit")); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	var dn *dataNode
	var ids []docmodel.DocID
	for _, cand := range e.dataNodes() {
		ids = ids[:0]
		cand.store.EachMeta(func(m storage.DocMeta) bool {
			ids = append(ids, m.ID)
			return true
		})
		if len(ids) >= 2 {
			dn = cand
			break
		}
	}
	if dn == nil {
		t.Fatal("no data node holds two documents; scenario degenerate")
	}

	missing := docmodel.DocID{Origin: 99, Seq: 9999}
	raw, err := e.fab.Call(dn.node.ID, msgGetBatch,
		mustJSON(getBatchReq{IDs: []string{ids[0].String(), missing.String()}}))
	if err != nil {
		t.Fatalf("batch with a missing ID must answer, not error: %v", err)
	}
	docs, err := decodeDocs(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].ID != ids[0] {
		t.Fatalf("batch returned %d docs, want just %s", len(docs), ids[0])
	}

	// Corrupt every frame on disk (same length, so in-flight offsets stay
	// valid) and re-fetch the node's full set: at most one document can
	// still be served from the single-slot decoded cache, so the batch
	// must hit a corrupt frame and surface the failure.
	logs, err := filepath.Glob(filepath.Join(dir, dn.node.ID.String(), "seg-*.log"))
	if err != nil || len(logs) == 0 {
		t.Fatalf("segment logs: %v (%d)", err, len(logs))
	}
	for _, lf := range logs {
		st, err := os.Stat(lf)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(lf, bytes.Repeat([]byte{0xFF}, int(st.Size())), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.fab.Call(dn.node.ID, msgGetBatch, mustJSON(getBatchReq{IDs: idStrings(ids)})); err == nil {
		t.Fatal("corrupt frames answered as if healthy; read errors must not look like misses")
	}
}
