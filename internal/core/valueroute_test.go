package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/plan"
	"impliance/internal/sched"
)

// fieldItem builds a doc with one typed field plus a text field, the
// heterogeneous-corpus shape value routing is about: each source has its
// own path, so a path's postings live in few partitions.
func fieldItem(field string, v docmodel.Value, source string) Item {
	return Item{
		Body: docmodel.Object(
			docmodel.F(field, v),
			docmodel.F("text", docmodel.String("payload for "+source)),
		),
		MediaType: "relational/row",
		Source:    source,
	}
}

// runEq runs an equality value query and returns the matched doc IDs.
func runEq(t *testing.T, e *Engine, path string, v docmodel.Value) []docmodel.DocID {
	t.Helper()
	res, err := e.Run(plan.Query{Filter: expr.Cmp(path, expr.OpEq, v)})
	if err != nil {
		t.Fatal(err)
	}
	var ids []docmodel.DocID
	for _, r := range res.Rows {
		ids = append(ids, r.Docs[0].ID)
	}
	return ids
}

// TestValueLookupRoutesToPathPartitions is the broadcast → routed
// acceptance check for value predicates: a lookup on a path held by only
// a few documents probes only the nodes owning those documents'
// partitions (plus the fetch), never the whole cluster, and returns the
// same documents as the broadcast ablation.
func TestValueLookupRoutesToPathPartitions(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 6 })
	// Filler: 60 docs under unrelated paths, spread over the partitions.
	for i := 0; i < 60; i++ {
		if _, err := e.Ingest(fieldItem(fmt.Sprintf("f%02d", i%20), docmodel.Int(int64(i)), "filler")); err != nil {
			t.Fatal(err)
		}
	}
	// The queried source: 3 docs under the path /rare.
	var want []docmodel.DocID
	for i := 0; i < 3; i++ {
		id, err := e.Ingest(fieldItem("rare", docmodel.Int(42), "needle"))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, id)
	}
	e.DrainBackground()

	_, probesBefore, prunedBefore, _ := e.ValueProbeStats()
	before := handledByNode(e)
	got := runEq(t, e, "/rare", docmodel.Int(42))
	if len(got) != len(want) {
		t.Fatalf("routed lookup = %v, want %d docs", got, len(want))
	}
	touched := touchedSince(e, before)
	// 3 docs hash into ≤ 3 partitions, so probes reach ≤ 3 nodes and the
	// fetch reaches ≤ 3 primaries — strictly fewer than the 6-node
	// broadcast would.
	if len(touched) >= len(e.aliveData()) {
		t.Errorf("value lookup touched %d/%d nodes — still a broadcast", len(touched), len(e.aliveData()))
	}
	_, probes, pruned, _ := e.ValueProbeStats()
	if sent := probes - probesBefore; sent > 3 {
		t.Errorf("lookup sent %d probes, want ≤ 3 (one per partition owner)", sent)
	}
	if pruned == prunedBefore {
		t.Error("path statistics pruned no partitions on a rare path")
	}

	// The broadcast ablation must return exactly the same documents.
	e.cfg.BroadcastValueProbes = true
	broadcast := runEq(t, e, "/rare", docmodel.Int(42))
	if !reflect.DeepEqual(got, broadcast) {
		t.Errorf("routed %v != broadcast %v", got, broadcast)
	}
}

// TestValueLookupKindPruning: an equality probe of a kind a partition
// never stored under the path is pruned by the value-type histogram even
// though the path itself is present.
func TestValueLookupKindPruning(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	for i := 0; i < 10; i++ {
		if _, err := e.Ingest(fieldItem("tag", docmodel.String(fmt.Sprintf("t%d", i)), "tags")); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	_, probesBefore, _, _ := e.ValueProbeStats()
	if got := runEq(t, e, "/tag", docmodel.Int(7)); len(got) != 0 {
		t.Fatalf("Int probe over string postings matched %v", got)
	}
	if _, probes, _, _ := e.ValueProbeStats(); probes != probesBefore {
		t.Errorf("kind histogram should prune every probe, sent %d", probes-probesBefore)
	}
}

// TestValueLookupDuringHandoffWindow is the mid-hand-off correctness
// check: a value query landing while dual-ownership windows are open
// (catch-up pinned behind a blocked single-worker pool) must fall back
// to broadcasting the windowed partitions and return exactly the
// documents the settled, routed probe returns after the windows close —
// including a document written mid-window, whose index entry lives on
// the post-hand-off owner.
func TestValueLookupDuringHandoffWindow(t *testing.T) {
	e := testEngine(t, func(c *Config) {
		c.DataNodes = 5
		c.Workers = 1
		c.SyncIndexing = true // mid-window ingest must be index-visible
	})
	var want []docmodel.DocID
	for i := 0; i < 60; i++ {
		id, err := e.Ingest(fieldItem("k", docmodel.Int(int64(i%7)), "corpus"))
		if err != nil {
			t.Fatal(err)
		}
		if i%7 == 3 {
			want = append(want, id)
		}
	}
	e.DrainBackground()

	// Outage and recovery take the node off the ring...
	victim := e.dataNodes()[1].node.ID
	e.fab.Kill(victim)
	e.HeartbeatTick()
	e.DrainBackground()
	// ...then pin the pool so the re-join's catch-up cannot run and the
	// dual-ownership windows stay open while we query.
	unblock := make(chan struct{})
	e.pool.Submit(sched.Background, func() { <-unblock })
	e.fab.Revive(victim)
	e.HeartbeatTick()
	if e.smgr.HandoffPending() == 0 {
		close(unblock)
		t.Fatal("no hand-off windows open; scenario degenerate")
	}

	got := runEq(t, e, "/k", docmodel.Int(3))
	if !reflect.DeepEqual(got, sortedIDs(want)) {
		t.Errorf("mid-window lookup = %v, want %v", got, sortedIDs(want))
	}
	if _, _, _, fallbacks := e.ValueProbeStats(); fallbacks == 0 {
		t.Error("mid-window lookup did not take the broadcast fallback")
	}
	// A write landing mid-window is indexed on the post-hand-off owner;
	// the fallback probe must still surface it.
	midID, err := e.Ingest(fieldItem("k", docmodel.Int(3), "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, midID)
	if e.smgr.HandoffPending() == 0 {
		t.Fatal("windows closed under the pinned pool; scenario degenerate")
	}
	got = runEq(t, e, "/k", docmodel.Int(3))
	if !reflect.DeepEqual(got, sortedIDs(want)) {
		t.Errorf("mid-window lookup after write = %v, want %v", got, sortedIDs(want))
	}

	// After the windows close, the settled routed probe returns the same
	// set.
	close(unblock)
	e.DrainBackground()
	if pending := e.smgr.HandoffPending(); pending != 0 {
		t.Fatalf("%d windows still open after drain", pending)
	}
	got = runEq(t, e, "/k", docmodel.Int(3))
	if !reflect.DeepEqual(got, sortedIDs(want)) {
		t.Errorf("post-close lookup = %v, want %v", got, sortedIDs(want))
	}
}

// sortedIDs returns a sorted copy.
func sortedIDs(ids []docmodel.DocID) []docmodel.DocID {
	out := append([]docmodel.DocID{}, ids...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
