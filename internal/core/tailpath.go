package core

import (
	"context"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/sched"
	"impliance/internal/tail"
)

// Live tailing / continuous queries (CDC). A TailCursor is the cursor
// layer's "query that never finishes": Subscribe registers a filter
// with the tail broker, every committed write the ingest path publishes
// (ingestOne / UpdateContext / DeleteContext / annotate — all at their
// ack points, so a delivered event is always an acked write) fans out
// through the subscription's bounded queue, and Next streams matching
// documents in per-partition watermark order. Catch-up and replay run
// as Background pool work — delivery is never durability traffic — and
// membership hooks (catchUpPartition, RecoverDataNode) fence moved
// partitions so subscriptions migrate with them: resume from the
// acknowledged watermark, no gaps, no duplicates.

// TailOption configures a subscription.
type TailOption func(*tailOpts)

type tailOpts struct {
	policy tail.DropPolicy
	class  sched.Class
	buffer int
	resume map[int]uint64
	parts  []int
	tenant string
}

// WithTailPolicy overrides the lag policy (default: the subscription
// class's policy — see tail.PolicyFor).
func WithTailPolicy(p tail.DropPolicy) TailOption {
	return func(o *tailOpts) { o.policy = p }
}

// WithTailClass sets the subscription's SLO class (default Background:
// tail delivery is background work). The class picks the default lag
// policy — interactive cancels laggards, background sheds oldest,
// durability blocks.
func WithTailClass(c sched.Class) TailOption {
	return func(o *tailOpts) { o.class = c }
}

// WithTailBuffer overrides the per-subscriber queue capacity.
func WithTailBuffer(n int) TailOption {
	return func(o *tailOpts) { o.buffer = n }
}

// WithTailResume resumes delivery exactly after the given acknowledged
// watermarks (a previous cursor's Watermarks snapshot).
func WithTailResume(marks map[int]uint64) TailOption {
	return func(o *tailOpts) { o.resume = marks }
}

// WithTailPartitions restricts the subscription to a partition subset
// (default all — new documents hash anywhere).
func WithTailPartitions(parts []int) TailOption {
	return func(o *tailOpts) { o.parts = parts }
}

// WithTailTenant names the admission bucket the subscribe call draws
// from (the per-call WithTenant analog for the tail surface).
func WithTailTenant(t string) TailOption {
	return func(o *tailOpts) { o.tenant = t }
}

// TailCursor is a long-lived cursor over the appliance's committed
// writes. Unlike *Cursor it never finishes: Next blocks for the next
// matching event until Close or a policy termination (ErrSlowConsumer,
// ErrLagBehind).
type TailCursor struct {
	sub *tail.Subscription
}

// Next blocks until the next matching event, the context ends, or the
// subscription terminates. Delivery acknowledges the event's watermark.
func (c *TailCursor) Next(ctx context.Context) (tail.Event, error) {
	return c.sub.Next(ctx)
}

// Watermarks snapshots the acknowledged per-partition watermarks — the
// resume token for a later Subscribe(WithTailResume(...)).
func (c *TailCursor) Watermarks() map[int]uint64 { return c.sub.Watermarks() }

// Delivered reports events handed out so far.
func (c *TailCursor) Delivered() uint64 { return c.sub.Delivered() }

// Dropped reports events shed under the shed-oldest policy.
func (c *TailCursor) Dropped() uint64 { return c.sub.Dropped() }

// Err reports the termination error, if any.
func (c *TailCursor) Err() error { return c.sub.Err() }

// Close ends the subscription and releases any blocked publisher.
func (c *TailCursor) Close() { c.sub.Close() }

// Subscribe opens a live tail for documents matching the filter.
func (e *Engine) Subscribe(filter expr.Expr, opts ...TailOption) (*TailCursor, error) {
	return e.SubscribeContext(context.Background(), filter, opts...)
}

// SubscribeContext is Subscribe under a request lifecycle: the context
// bounds the registration (consumption is bounded per-Next). The
// subscribe itself is admission-gated as one interactive operation on
// the tenant's bucket; delivery afterwards is accounted to the broker,
// not the bucket — a subscription is one admitted long-lived operation,
// not one operation per event.
func (e *Engine) SubscribeContext(ctx context.Context, filter expr.Expr, opts ...TailOption) (*TailCursor, error) {
	o := tailOpts{class: sched.Background}
	for _, fn := range opts {
		fn(&o)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.admitOp(sched.Interactive, o.tenant); err != nil {
		return nil, err
	}
	var match func(tail.Event) bool
	if !filter.IsTrue() {
		f := filter
		match = func(ev tail.Event) bool { return ev.Doc != nil && f.Eval(ev.Doc) }
	}
	// Densify resume marks: the wire token omits zero watermarks, but at
	// the broker a partition absent from the map attaches live (skipping
	// history). A resuming subscriber means "after these marks, and from
	// the beginning elsewhere" — a zero mark IS from the beginning, so
	// fill the gaps rather than silently skip a partition's backlog.
	resume := o.resume
	if resume != nil {
		parts := o.parts
		if parts == nil {
			parts = make([]int, e.smgr.Partitions())
			for i := range parts {
				parts[i] = i
			}
		}
		dense := make(map[int]uint64, len(parts))
		for _, p := range parts {
			dense[p] = resume[p]
		}
		resume = dense
	}
	sub, err := e.tails.Subscribe(tail.SubOptions{
		Match:      match,
		Partitions: o.parts,
		Class:      o.class,
		Policy:     o.policy,
		Buffer:     o.buffer,
		Resume:     resume,
	})
	if err != nil {
		return nil, err
	}
	return &TailCursor{sub: sub}, nil
}

// tailPublish announces one committed write to the tail broker, stamped
// with its partition's current routing generation (the generation
// fence's publish-side half).
func (e *Engine) tailPublish(kind tail.Kind, doc *docmodel.Document) {
	if e.tails == nil || doc == nil {
		return
	}
	part := e.smgr.PartitionOf(doc.ID)
	e.tails.Publish(part, e.smgr.PartitionGen(part), kind, doc)
}

// TailMetrics reports the live-tailing subsystem's accounting (the
// MetricsSnapshot.Tail block): subscription population, event flow,
// the delivery-lag distribution, and the churn counters — migrations
// across generation fences, voided deliveries, and lag outcomes per
// policy.
type TailMetrics struct {
	ActiveSubscriptions int
	Published           uint64
	Delivered           uint64
	Drops               uint64
	Cancelled           uint64
	FencedPublishes     uint64
	VoidedDeliveries    uint64
	Migrations          uint64
	LagTruncations      uint64
	LagMeanUs           int64
	LagP50Us            int64
	LagP99Us            int64
}

// TailStats snapshots the tail broker.
func (e *Engine) TailStats() TailMetrics {
	if e.tails == nil {
		return TailMetrics{}
	}
	st := e.tails.Stats()
	return TailMetrics{
		ActiveSubscriptions: st.Active,
		Published:           st.Published,
		Delivered:           st.Delivered,
		Drops:               st.Drops,
		Cancelled:           st.Cancelled,
		FencedPublishes:     st.FencedPublishes,
		VoidedDeliveries:    st.VoidedDeliveries,
		Migrations:          st.Migrations,
		LagTruncations:      st.LagTruncations,
		LagMeanUs:           st.LagMean.Microseconds(),
		LagP50Us:            st.LagP50.Microseconds(),
		LagP99Us:            st.LagP99.Microseconds(),
	}
}
