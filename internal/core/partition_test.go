package core

import (
	"context"
	"fmt"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/fabric"
	"impliance/internal/query"
	"impliance/internal/storage"
	"impliance/internal/virt"
)

// handledByNode snapshots each data node's handled-message counter.
func handledByNode(e *Engine) map[fabric.NodeID]uint64 {
	out := map[fabric.NodeID]uint64{}
	for _, dn := range e.dataNodes() {
		_, _, handled := dn.node.Stats()
		out[dn.node.ID] = handled
	}
	return out
}

// touchedSince lists the data nodes whose handled counter moved.
func touchedSince(e *Engine, before map[fabric.NodeID]uint64) []fabric.NodeID {
	var out []fabric.NodeID
	for _, dn := range e.dataNodes() {
		_, _, handled := dn.node.Stats()
		if handled > before[dn.node.ID] {
			out = append(out, dn.node.ID)
		}
	}
	return out
}

// TestPointGetRoutesToOwners is the broadcast → routed acceptance check:
// a point Get on a healthy cluster contacts exactly one data node (≤ RF),
// and that node is one of the document's partition owners, while keyword
// search still fans out to every alive data node.
func TestPointGetRoutesToOwners(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 6 })
	var ids []docmodel.DocID
	for i := 0; i < 40; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("routed document %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()

	rf := e.cfg.Replication.FactorFor(0) // ClassUser
	for _, id := range ids {
		holders := e.smgr.Holders(id)
		if len(holders) != rf {
			t.Fatalf("doc %s holders = %v, want %d", id, holders, rf)
		}
		before := handledByNode(e)
		e.fab.ResetNetStats()
		if _, err := e.Get(id); err != nil {
			t.Fatal(err)
		}
		if msgs := e.fab.NetStats().Messages; msgs > uint64(2*rf) {
			t.Errorf("Get(%s) moved %d messages, want ≤ %d (request+reply per holder)", id, msgs, 2*rf)
		}
		touched := touchedSince(e, before)
		if len(touched) > rf {
			t.Errorf("Get(%s) touched %v, more than RF=%d nodes", id, touched, rf)
		}
		for _, n := range touched {
			owner := false
			for _, h := range holders {
				if h == n {
					owner = true
				}
			}
			if !owner {
				t.Errorf("Get(%s) touched non-owner %v (holders %v)", id, n, holders)
			}
		}
	}

	// Keyword search is semantically a fan-out: every alive data node
	// must be probed.
	before := handledByNode(e)
	if _, err := e.Search("routed", 0); err != nil {
		t.Fatal(err)
	}
	touched := touchedSince(e, before)
	if len(touched) < len(e.aliveData()) {
		t.Errorf("search touched %d/%d data nodes; index probes must fan out", len(touched), len(e.aliveData()))
	}
}

// TestFetchByIDGroupsPerOwner checks the batch point path: fetching many
// documents contacts each owning node once with a batch, never the whole
// cluster per document.
func TestFetchByIDGroupsPerOwner(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 5 })
	var ids []docmodel.DocID
	for i := 0; i < 30; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("batch doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	e.fab.ResetNetStats()
	docs, err := e.fetchByID(context.Background(), ids, callOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(ids) {
		t.Fatalf("fetched %d/%d", len(docs), len(ids))
	}
	// At most one get-batch call (plus reply) per data node.
	if msgs := e.fab.NetStats().Messages; msgs > uint64(2*len(e.dataNodes())) {
		t.Errorf("fetchByID moved %d messages for %d nodes", msgs, len(e.dataNodes()))
	}
}

// TestReplicaSetsStableUnderUnrelatedFailure is the ring-successor
// acceptance check: killing and recovering one data node must not move
// any document whose replica set did not include it.
func TestReplicaSetsStableUnderUnrelatedFailure(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 5 })
	var ids []docmodel.DocID
	for i := 0; i < 60; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("stable doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	before := map[docmodel.DocID][]fabric.NodeID{}
	for _, id := range ids {
		before[id] = e.smgr.Holders(id)
	}
	dead := e.dataNodes()[2].node.ID
	e.fab.Kill(dead)
	if _, err := e.RecoverDataNode(dead); err != nil {
		t.Fatal(err)
	}
	unrelated, moved := 0, 0
	for _, id := range ids {
		old := before[id]
		now := e.smgr.Holders(id)
		hadDead := false
		for _, n := range old {
			if n == dead {
				hadDead = true
			}
		}
		if hadDead {
			moved++
			continue
		}
		unrelated++
		if len(old) != len(now) {
			t.Fatalf("doc %s holder count changed %v -> %v", id, old, now)
		}
		for i := range old {
			if old[i] != now[i] {
				t.Errorf("doc %s moved %v -> %v though %v held no replica", id, old, now, dead)
			}
		}
	}
	if unrelated == 0 || moved == 0 {
		t.Fatalf("degenerate distribution: %d unrelated, %d moved", unrelated, moved)
	}
}

// TestHeartbeatTickReassignsDeadDataNode: heartbeat-driven membership —
// a dead data node still on the ring is recovered by the next tick.
func TestHeartbeatTickReassignsDeadDataNode(t *testing.T) {
	e := testEngine(t)
	var ids []docmodel.DocID
	for i := 0; i < 20; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("tick doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	dead := e.dataNodes()[0].node.ID
	e.fab.Kill(dead)
	if !e.smgr.InRing(dead) {
		t.Fatal("node should be on the ring before the tick")
	}
	e.HeartbeatTick()
	if e.smgr.InRing(dead) {
		t.Error("heartbeat tick should drop the dead node from the ring")
	}
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("doc %s unreadable after heartbeat recovery: %v", id, err)
		}
	}
}

// TestDerivedReplicationFollowsPolicy: annotation documents honor the
// derived-class replication factor — a policy asking for RF>1 gets real
// copies on every holder, not just a wider holder list.
func TestDerivedReplicationFollowsPolicy(t *testing.T) {
	e := testEngine(t, func(c *Config) {
		c.Replication = virt.ReplicationPolicy{Factor: map[virt.DataClass]int{
			virt.ClassUser: 2, virt.ClassDerived: 2, virt.ClassRegulatory: 3,
		}}
	})
	id, err := e.Ingest(textItem("John Smith loves the WidgetPro, it is excellent", "cc"))
	if err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()
	anns, err := e.AnnotationsOf(id)
	if err != nil || len(anns) == 0 {
		t.Fatalf("annotations = %d (%v)", len(anns), err)
	}
	for _, ann := range anns {
		holders := e.smgr.Holders(ann.ID)
		if len(holders) != 2 {
			t.Fatalf("annotation %s holders = %v, want RF 2", ann.ID, holders)
		}
		for _, h := range holders {
			if _, err := mustDataNode(t, e, h).store.Get(ann.ID); err != nil {
				t.Errorf("annotation %s replica missing on %s: %v", ann.ID, h, err)
			}
		}
	}
}

// TestRestartRecoversRoutingAndIndex: placement is a pure function of
// the ID and the ring, so a restarted appliance rebuilds routing and
// indexes from its WALs — old documents stay retrievable and searchable
// and the ID allocator never re-mints a live ID.
func TestRestartRecoversRoutingAndIndex(t *testing.T) {
	testRestartRecoversRoutingAndIndex(t, "")
}

// TestRestartRecoversRoutingAndIndexSegmentBackend: the same restart
// contract holds when the data nodes persist through the segment
// backend — recovery registration runs on replayed headers and reads
// materialize lazily, but nothing observable changes.
func TestRestartRecoversRoutingAndIndexSegmentBackend(t *testing.T) {
	testRestartRecoversRoutingAndIndex(t, storage.BackendSegment)
}

func testRestartRecoversRoutingAndIndex(t *testing.T, backend string) {
	dir := t.TempDir()
	cfg := Config{DataNodes: 4, GridNodes: 1, ClusterNodes: 1, Workers: 2, Dir: dir, StorageBackend: backend}
	e1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []docmodel.DocID
	for i := 0; i < 12; i++ {
		id, err := e1.Ingest(textItem(fmt.Sprintf("durable record %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	annotated, err := e1.Ingest(textItem("John Smith loves the WidgetPro, it is excellent", "cc"))
	if err != nil {
		t.Fatal(err)
	}
	e1.DrainBackground()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e2.Close() })
	for _, id := range ids {
		d, err := e2.Get(id)
		if err != nil {
			t.Fatalf("doc %s unreadable after restart: %v", id, err)
		}
		if d.Source != "u" {
			t.Errorf("doc %s header lost: %+v", id, d)
		}
	}
	rows, err := e2.Search("durable", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ids) {
		t.Errorf("search after restart = %d/%d", len(rows), len(ids))
	}
	// Discovery state replays too: annotation edges survive the restart.
	anns, err := e2.AnnotationsOf(annotated)
	if err != nil || len(anns) == 0 {
		t.Errorf("annotations lost across restart: %d (%v)", len(anns), err)
	}
	fresh, err := e2.Ingest(textItem("minted after restart", "u"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if fresh == id {
			t.Fatalf("ID allocator re-minted live ID %s", id)
		}
	}
	e2.DrainBackground()
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening with a different data-node count moves the hash
	// placement; boot-time migration must put every document onto its
	// new ring owners so routed reads still find it.
	grown := cfg
	grown.DataNodes = 7
	e3, err := Open(grown)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e3.Close() })
	for _, id := range append(ids, fresh) {
		if _, err := e3.Get(id); err != nil {
			t.Errorf("doc %s unreadable after reopening with more nodes: %v", id, err)
		}
	}
	rows, err = e3.Search("durable", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ids) {
		t.Errorf("search after regrow = %d/%d", len(rows), len(ids))
	}
}

// TestRevivedNodeQuarantinedUntilRecovery: a node that missed replica
// writes while dead must not resume routing or answering after a bare
// Revive — its gaps would surface as missing documents. The dirty
// quarantine keeps successors serving until recovery reassigns the ring.
func TestRevivedNodeQuarantinedUntilRecovery(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	var ids []docmodel.DocID
	for i := 0; i < 20; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("pre kill %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()

	victim := e.dataNodes()[1]
	e.fab.Kill(victim.node.ID)
	for i := 0; i < 20; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("during outage %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	if !victim.dirty.Load() {
		t.Fatal("victim missed replica writes but was not quarantined")
	}

	e.fab.Revive(victim.node.ID)
	// No recovery ran: the revived node must stay out of routing.
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("doc %s unreadable after bare revival: %v", id, err)
		}
	}
	docs, err := e.distributedScan(context.Background(), expr.True())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(ids) {
		t.Errorf("scan after bare revival = %d/%d (revived node answering with gaps?)", len(docs), len(ids))
	}
	// The next heartbeat notices the quarantine and reassigns the ring.
	e.HeartbeatTick()
	if e.smgr.InRing(victim.node.ID) {
		t.Error("heartbeat should remove the quarantined node from the ring")
	}
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("doc %s unreadable after quarantine recovery: %v", id, err)
		}
	}
}

// TestFacetsDoNotDoubleCountAfterRevival: a node recovery removed from
// the ring must stay out of index fan-outs even when revived, or its
// stale index entries double-count facets and re-answer searches.
func TestFacetsDoNotDoubleCountAfterRevival(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	const n = 30
	for i := 0; i < n; i++ {
		if _, err := e.Ingest(Item{
			Body: docmodel.Object(
				docmodel.F("text", docmodel.String("facet corpus entry")),
				docmodel.F("kind", docmodel.String([]string{"a", "b"}[i%2])),
			),
			MediaType: "text/plain", Source: "f",
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	victim := e.dataNodes()[0].node.ID
	e.fab.Kill(victim)
	e.HeartbeatTick()   // ring removal + background re-index on new owners
	e.DrainBackground() // fence the index catch-up
	e.fab.Revive(victim)

	res, err := e.Facets(query.FacetRequest{Keyword: "facet", Dimensions: []string{"/kind"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != n {
		t.Errorf("facet total after revival = %d, want %d", res.Total, n)
	}
	sum := 0
	for _, b := range res.Dimensions[0].Buckets {
		sum += b.Count
	}
	if sum != n {
		t.Errorf("facet counts sum to %d after revival, want %d (revived index double-counted)", sum, n)
	}
	rows, err := e.Search("facet", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Errorf("search after revival = %d/%d", len(rows), n)
	}
}

// TestRejoinServesPointOpsWithZeroMisses is the elastic-membership
// acceptance check: a node removed by HandleNodeFailure and then revived
// re-joins the ring on the next heartbeat tick, point operations see zero
// Get misses during the dual-ownership window (reads route to old owners
// until each partition's catch-up watermark closes), and afterwards the
// node serves point ops again with no double-counted search or facets.
func TestRejoinServesPointOpsWithZeroMisses(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	var ids []docmodel.DocID
	for i := 0; i < 50; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("elastic doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()

	victim := e.dataNodes()[1]
	e.fab.Kill(victim.node.ID)
	// The workload continues through the outage; the victim misses
	// replica writes and is quarantined.
	for i := 0; i < 30; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("outage doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	e.HeartbeatTick() // dead node: ring removal + repair
	e.DrainBackground()
	if e.smgr.InRing(victim.node.ID) {
		t.Fatal("dead node still on the ring")
	}

	e.fab.Revive(victim.node.ID)
	e.HeartbeatTick() // revived node: re-join with background catch-up
	if !e.smgr.InRing(victim.node.ID) {
		t.Fatal("revived node did not re-join the ring on the heartbeat tick")
	}
	// Zero Get misses during the dual-ownership window: catch-up tasks
	// are racing these reads on the background pool.
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("Get(%s) missed during the hand-off window: %v", id, err)
		}
	}
	e.DrainBackground()
	if pending := e.smgr.HandoffPending(); pending != 0 {
		t.Fatalf("%d hand-off windows still open after drain", pending)
	}

	// The re-joined node serves point ops again: it is the read primary
	// for a share of the corpus, and routed Gets reach it.
	_, _, handledBefore := victim.node.Stats()
	primaries := 0
	for _, id := range ids {
		holders := e.smgr.Holders(id)
		if len(holders) > 0 && holders[0] == victim.node.ID {
			primaries++
			if _, err := e.Get(id); err != nil {
				t.Errorf("Get(%s) via re-joined primary failed: %v", id, err)
			}
		}
	}
	if primaries == 0 {
		t.Fatal("re-joined node is primary for nothing")
	}
	if _, _, handled := victim.node.Stats(); handled == handledBefore {
		t.Error("re-joined node handled no routed point ops")
	}
	// No ghosts, no double counts: search and scans see each doc once.
	rows, err := e.Search("doc", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ids) {
		t.Errorf("search after re-join = %d/%d", len(rows), len(ids))
	}
	docs, err := e.distributedScan(context.Background(), expr.True())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(ids) {
		t.Errorf("scan after re-join = %d/%d", len(docs), len(ids))
	}
	if under := len(e.smgr.UnderReplicated()); under != 0 {
		t.Errorf("%d documents under-replicated after re-join", under)
	}
}

// TestHeartbeatHealsDegradedWhenBlockedTargetRevives: a document left
// Unrepaired because its repair target was down must leave
// UnderReplicated via the heartbeat's repair pass once the target serves
// again.
func TestHeartbeatHealsDegradedWhenBlockedTargetRevives(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	for i := 0; i < 60; i++ {
		if _, err := e.Ingest(textItem(fmt.Sprintf("degraded doc %d", i), "u")); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	// Two nodes go down; recovering the first blocks on the second.
	blocked := e.dataNodes()[3]
	e.fab.Kill(blocked.node.ID)
	dead := e.dataNodes()[0].node.ID
	e.fab.Kill(dead)
	if _, err := e.RecoverDataNode(dead); err != nil {
		t.Fatal(err)
	}
	if len(e.smgr.UnderReplicated()) == 0 {
		t.Skip("no repairs blocked on the down target (unlucky hash layout)")
	}
	// The blocked target revives; heartbeat recovery + repair passes heal
	// the degraded set (the revived node is first recovered off the ring,
	// then re-joined, then the repair pass fills remaining gaps).
	e.fab.Revive(blocked.node.ID)
	for i := 0; i < 3; i++ {
		e.HeartbeatTick()
		e.DrainBackground()
	}
	if under := e.smgr.UnderReplicated(); len(under) != 0 {
		t.Errorf("%d documents still under-replicated after the blocked target revived", len(under))
	}
}

// TestRegulatoryClassSurvivesRestart: the data class is persisted in the
// document header, so a restarted appliance re-registers a regulatory
// document at RF3 — not the RF2 a shape-based guess would give it.
func TestRegulatoryClassSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataNodes: 4, GridNodes: 1, ClusterNodes: 1, Workers: 2, Dir: dir}
	e1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []docmodel.DocID
	for i := 0; i < 8; i++ {
		item := textItem(fmt.Sprintf("retention record %d", i), "ledger")
		item.Class = virt.ClassRegulatory
		id, err := e1.Ingest(item)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e1.DrainBackground()
	for _, id := range ids {
		if got := len(e1.smgr.Holders(id)); got != 3 {
			t.Fatalf("regulatory doc %s placed at RF%d before restart", id, got)
		}
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e2.Close() })
	for _, id := range ids {
		holders := e2.smgr.Holders(id)
		if len(holders) != 3 {
			t.Errorf("regulatory doc %s recovered at RF%d, want 3 (class lost in header?)", id, len(holders))
		}
		// Boot-time migration must have put real copies on every holder.
		for _, h := range holders {
			if _, err := mustDataNode(t, e2, h).store.Get(id); err != nil {
				t.Errorf("regulatory doc %s missing on holder %s after restart: %v", id, h, err)
			}
		}
	}
}

// TestRebalanceOnSkewMovesLoadOffHotNode: skewed point reads trigger a
// ring-weight cut executed through the hand-off machinery, with every
// document still reachable afterwards.
func TestRebalanceOnSkewMovesLoadOffHotNode(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 3 })
	var ids []docmodel.DocID
	for i := 0; i < 150; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("hot doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	// Hammer the docs whose primary is data-1 to skew the load signal.
	hot := e.dataNodes()[0].node.ID
	for _, id := range ids {
		if e.smgr.Holders(id)[0] == hot {
			for r := 0; r < 12; r++ {
				if _, err := e.Get(id); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	moved, adjusted := e.RebalanceOnSkew()
	if !adjusted {
		t.Fatal("skewed load did not trigger a rebalance")
	}
	if moved == 0 {
		t.Fatal("rebalance moved no documents")
	}
	// Reads stay clean while the rebalance hand-off runs in background.
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("Get(%s) missed during rebalance: %v", id, err)
		}
	}
	e.DrainBackground()
	if pending := e.smgr.HandoffPending(); pending != 0 {
		t.Fatalf("%d rebalance windows still open after drain", pending)
	}
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("Get(%s) failed after rebalance: %v", id, err)
		}
	}
	rows, err := e.Search("hot", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ids) {
		t.Errorf("search after rebalance = %d/%d", len(rows), len(ids))
	}
}

// TestHeartbeatAutoRebalancesSustainedHotNode: a sustained hot node
// sheds ring weight purely through heartbeat ticks — no explicit
// RebalanceOnSkew call — once the cadence and load threshold are met,
// and every document stays reachable through the hand-off.
func TestHeartbeatAutoRebalancesSustainedHotNode(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 3 })
	var ids []docmodel.DocID
	for i := 0; i < 150; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("sustained doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()

	hot := e.dataNodes()[0].node.ID
	weightBefore := e.smgr.NodeWeight(hot)
	if weightBefore == 0 {
		t.Fatal("hot node has no ring weight")
	}
	// Sustained skew: hammer the docs whose primary is the hot node,
	// ticking the heartbeat as time passes. No rebalance call anywhere.
	for round := 0; round < AutoRebalanceEvery+1; round++ {
		for _, id := range ids {
			if e.smgr.Holders(id)[0] == hot {
				for r := 0; r < 8; r++ {
					if _, err := e.Get(id); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		e.HeartbeatTick()
	}
	if after := e.smgr.NodeWeight(hot); after >= weightBefore {
		t.Fatalf("heartbeat never shed hot node weight: %d -> %d", weightBefore, after)
	}
	e.DrainBackground()
	if pending := e.smgr.HandoffPending(); pending != 0 {
		t.Fatalf("%d auto-rebalance windows still open after drain", pending)
	}
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("Get(%s) failed after auto-rebalance: %v", id, err)
		}
	}
}

// TestHeartbeatSkipsRebalanceWithoutLoad: an idle cluster's heartbeat
// must not churn ring weights on noise — the load threshold gates the
// pass.
func TestHeartbeatSkipsRebalanceWithoutLoad(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 3 })
	var weights []int
	for _, id := range e.DataNodeIDs() {
		weights = append(weights, e.smgr.NodeWeight(id))
	}
	for round := 0; round < 3*AutoRebalanceEvery; round++ {
		e.HeartbeatTick()
	}
	for i, id := range e.DataNodeIDs() {
		if w := e.smgr.NodeWeight(id); w != weights[i] {
			t.Errorf("idle heartbeat changed %s weight %d -> %d", id, weights[i], w)
		}
	}
}

// TestAddDataNodeGrowsCluster: a brand-new data node provisioned at
// runtime joins through the same hand-off machinery and ends up serving
// a share of the corpus.
func TestAddDataNodeGrowsCluster(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 3 })
	var ids []docmodel.DocID
	for i := 0; i < 80; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("growth doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	fresh, moved, err := e.AddDataNode()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("new node attracted no documents")
	}
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("Get(%s) missed while the new node joins: %v", id, err)
		}
	}
	e.DrainBackground()
	primaries := 0
	for _, id := range ids {
		holders := e.smgr.Holders(id)
		if holders[0] == fresh {
			primaries++
		}
		if _, err := e.Get(id); err != nil {
			t.Errorf("Get(%s) failed after growth: %v", id, err)
		}
	}
	if primaries == 0 {
		t.Error("new node is primary for nothing after joining")
	}
	docs, err := e.distributedScan(context.Background(), expr.True())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(ids) {
		t.Errorf("scan after growth = %d/%d", len(docs), len(ids))
	}
}

// TestFailureDuringHandoffWindowStillCloses: a node failure while
// hand-off windows are open fences the in-flight catch-up plans
// (generation re-arm) and re-plans them, so every window still closes
// with complete copies and no document is stranded on a promoted
// successor that never received it.
func TestFailureDuringHandoffWindowStillCloses(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 5; c.Workers = 1 })
	var ids []docmodel.DocID
	for i := 0; i < 60; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("window doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()

	rejoiner := e.dataNodes()[1].node.ID
	e.fab.Kill(rejoiner)
	e.HeartbeatTick()
	e.DrainBackground()
	e.fab.Revive(rejoiner)
	e.HeartbeatTick() // windows open, catch-up queued on the single worker
	if e.smgr.HandoffPending() == 0 {
		t.Fatal("no windows open; scenario degenerate")
	}
	// A different node dies while the windows are still open.
	casualty := e.dataNodes()[3].node.ID
	e.fab.Kill(casualty)
	if _, err := e.RecoverDataNode(casualty); err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()
	if pending := e.smgr.HandoffPending(); pending != 0 {
		t.Fatalf("%d windows never closed after mid-window failure", pending)
	}
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("Get(%s) failed after mid-window failure: %v", id, err)
			continue
		}
		// Every named holder physically has the document.
		for _, h := range e.smgr.Holders(id) {
			if _, err := mustDataNode(t, e, h).store.Get(id); err != nil {
				t.Errorf("doc %s missing on holder %s: %v", id, h, err)
			}
		}
	}
}

// TestAddDataNodeConcurrentWithReads: growing the cluster races point
// reads and background work — the copy-on-write topology must keep every
// concurrent Get safe (this test is load-bearing under -race).
func TestAddDataNodeConcurrentWithReads(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 3 })
	var ids []docmodel.DocID
	for i := 0; i < 60; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("race doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 400; i++ {
			if _, err := e.Get(ids[i%len(ids)]); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	if _, _, err := e.AddDataNode(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Errorf("concurrent Get failed while the cluster grew: %v", err)
	}
	e.DrainBackground()
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("Get(%s) failed after growth: %v", id, err)
		}
	}
}

// TestReopenWithFewerNodesKeepsDocsReachable: WAL directories beyond the
// configured node count still feed recovery — their documents migrate to
// the current owners and the ID allocator never regresses below their
// persisted Seqs.
func TestReopenWithFewerNodesKeepsDocsReachable(t *testing.T) {
	dir := t.TempDir()
	big := Config{DataNodes: 5, GridNodes: 1, ClusterNodes: 1, Workers: 2, Dir: dir}
	e1, err := Open(big)
	if err != nil {
		t.Fatal(err)
	}
	var ids []docmodel.DocID
	for i := 0; i < 25; i++ {
		id, err := e1.Ingest(textItem(fmt.Sprintf("shrink survivor %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e1.DrainBackground()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	small := big
	small.DataNodes = 2
	e2, err := Open(small)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e2.Close() })
	for _, id := range ids {
		if _, err := e2.Get(id); err != nil {
			t.Errorf("doc %s unreadable after shrinking membership: %v", id, err)
		}
	}
	rows, err := e2.Search("shrink", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ids) {
		t.Errorf("search after shrink = %d/%d", len(rows), len(ids))
	}
	fresh, err := e2.Ingest(textItem("minted after shrink", "u"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if fresh == id {
			t.Fatalf("ID allocator re-minted live ID %s from an orphan WAL", id)
		}
	}
}

// TestScanStillReachesAllNodes: distributed scans are semantically a
// fan-out — every alive data node contributes its answering partitions.
func TestScanStillReachesAllNodes(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	for i := 0; i < 40; i++ {
		if _, err := e.Ingest(Item{
			Body:      docmodel.Object(docmodel.F("k", docmodel.Int(int64(i)))),
			MediaType: "relational/row", Source: "u",
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	before := handledByNode(e)
	docs, err := e.distributedScan(context.Background(), expr.True())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 40 {
		t.Fatalf("scan docs = %d (ownership dedup broken?)", len(docs))
	}
	if touched := touchedSince(e, before); len(touched) != len(e.dataNodes()) {
		t.Errorf("scan touched %d/%d nodes", len(touched), len(e.dataNodes()))
	}
}
