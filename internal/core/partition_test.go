package core

import (
	"fmt"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/fabric"
	"impliance/internal/query"
	"impliance/internal/virt"
)

// handledByNode snapshots each data node's handled-message counter.
func handledByNode(e *Engine) map[fabric.NodeID]uint64 {
	out := map[fabric.NodeID]uint64{}
	for _, dn := range e.data {
		_, _, handled := dn.node.Stats()
		out[dn.node.ID] = handled
	}
	return out
}

// touchedSince lists the data nodes whose handled counter moved.
func touchedSince(e *Engine, before map[fabric.NodeID]uint64) []fabric.NodeID {
	var out []fabric.NodeID
	for _, dn := range e.data {
		_, _, handled := dn.node.Stats()
		if handled > before[dn.node.ID] {
			out = append(out, dn.node.ID)
		}
	}
	return out
}

// TestPointGetRoutesToOwners is the broadcast → routed acceptance check:
// a point Get on a healthy cluster contacts exactly one data node (≤ RF),
// and that node is one of the document's partition owners, while keyword
// search still fans out to every alive data node.
func TestPointGetRoutesToOwners(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 6 })
	var ids []docmodel.DocID
	for i := 0; i < 40; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("routed document %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()

	rf := e.cfg.Replication.FactorFor(0) // ClassUser
	for _, id := range ids {
		holders := e.smgr.Holders(id)
		if len(holders) != rf {
			t.Fatalf("doc %s holders = %v, want %d", id, holders, rf)
		}
		before := handledByNode(e)
		e.fab.ResetNetStats()
		if _, err := e.Get(id); err != nil {
			t.Fatal(err)
		}
		if msgs := e.fab.NetStats().Messages; msgs > uint64(2*rf) {
			t.Errorf("Get(%s) moved %d messages, want ≤ %d (request+reply per holder)", id, msgs, 2*rf)
		}
		touched := touchedSince(e, before)
		if len(touched) > rf {
			t.Errorf("Get(%s) touched %v, more than RF=%d nodes", id, touched, rf)
		}
		for _, n := range touched {
			owner := false
			for _, h := range holders {
				if h == n {
					owner = true
				}
			}
			if !owner {
				t.Errorf("Get(%s) touched non-owner %v (holders %v)", id, n, holders)
			}
		}
	}

	// Keyword search is semantically a fan-out: every alive data node
	// must be probed.
	before := handledByNode(e)
	if _, err := e.Search("routed", 0); err != nil {
		t.Fatal(err)
	}
	touched := touchedSince(e, before)
	if len(touched) < len(e.aliveData()) {
		t.Errorf("search touched %d/%d data nodes; index probes must fan out", len(touched), len(e.aliveData()))
	}
}

// TestFetchByIDGroupsPerOwner checks the batch point path: fetching many
// documents contacts each owning node once with a batch, never the whole
// cluster per document.
func TestFetchByIDGroupsPerOwner(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 5 })
	var ids []docmodel.DocID
	for i := 0; i < 30; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("batch doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	e.fab.ResetNetStats()
	docs, err := e.fetchByID(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(ids) {
		t.Fatalf("fetched %d/%d", len(docs), len(ids))
	}
	// At most one get-batch call (plus reply) per data node.
	if msgs := e.fab.NetStats().Messages; msgs > uint64(2*len(e.data)) {
		t.Errorf("fetchByID moved %d messages for %d nodes", msgs, len(e.data))
	}
}

// TestReplicaSetsStableUnderUnrelatedFailure is the ring-successor
// acceptance check: killing and recovering one data node must not move
// any document whose replica set did not include it.
func TestReplicaSetsStableUnderUnrelatedFailure(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 5 })
	var ids []docmodel.DocID
	for i := 0; i < 60; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("stable doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	before := map[docmodel.DocID][]fabric.NodeID{}
	for _, id := range ids {
		before[id] = e.smgr.Holders(id)
	}
	dead := e.data[2].node.ID
	e.fab.Kill(dead)
	if _, err := e.RecoverDataNode(dead); err != nil {
		t.Fatal(err)
	}
	unrelated, moved := 0, 0
	for _, id := range ids {
		old := before[id]
		now := e.smgr.Holders(id)
		hadDead := false
		for _, n := range old {
			if n == dead {
				hadDead = true
			}
		}
		if hadDead {
			moved++
			continue
		}
		unrelated++
		if len(old) != len(now) {
			t.Fatalf("doc %s holder count changed %v -> %v", id, old, now)
		}
		for i := range old {
			if old[i] != now[i] {
				t.Errorf("doc %s moved %v -> %v though %v held no replica", id, old, now, dead)
			}
		}
	}
	if unrelated == 0 || moved == 0 {
		t.Fatalf("degenerate distribution: %d unrelated, %d moved", unrelated, moved)
	}
}

// TestHeartbeatTickReassignsDeadDataNode: heartbeat-driven membership —
// a dead data node still on the ring is recovered by the next tick.
func TestHeartbeatTickReassignsDeadDataNode(t *testing.T) {
	e := testEngine(t)
	var ids []docmodel.DocID
	for i := 0; i < 20; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("tick doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	dead := e.data[0].node.ID
	e.fab.Kill(dead)
	if !e.smgr.InRing(dead) {
		t.Fatal("node should be on the ring before the tick")
	}
	e.HeartbeatTick()
	if e.smgr.InRing(dead) {
		t.Error("heartbeat tick should drop the dead node from the ring")
	}
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("doc %s unreadable after heartbeat recovery: %v", id, err)
		}
	}
}

// TestDerivedReplicationFollowsPolicy: annotation documents honor the
// derived-class replication factor — a policy asking for RF>1 gets real
// copies on every holder, not just a wider holder list.
func TestDerivedReplicationFollowsPolicy(t *testing.T) {
	e := testEngine(t, func(c *Config) {
		c.Replication = virt.ReplicationPolicy{Factor: map[virt.DataClass]int{
			virt.ClassUser: 2, virt.ClassDerived: 2, virt.ClassRegulatory: 3,
		}}
	})
	id, err := e.Ingest(textItem("John Smith loves the WidgetPro, it is excellent", "cc"))
	if err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()
	anns, err := e.AnnotationsOf(id)
	if err != nil || len(anns) == 0 {
		t.Fatalf("annotations = %d (%v)", len(anns), err)
	}
	for _, ann := range anns {
		holders := e.smgr.Holders(ann.ID)
		if len(holders) != 2 {
			t.Fatalf("annotation %s holders = %v, want RF 2", ann.ID, holders)
		}
		for _, h := range holders {
			if _, err := e.byNode[h].store.Get(ann.ID); err != nil {
				t.Errorf("annotation %s replica missing on %s: %v", ann.ID, h, err)
			}
		}
	}
}

// TestRestartRecoversRoutingAndIndex: placement is a pure function of
// the ID and the ring, so a restarted appliance rebuilds routing and
// indexes from its WALs — old documents stay retrievable and searchable
// and the ID allocator never re-mints a live ID.
func TestRestartRecoversRoutingAndIndex(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataNodes: 4, GridNodes: 1, ClusterNodes: 1, Workers: 2, Dir: dir}
	e1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []docmodel.DocID
	for i := 0; i < 12; i++ {
		id, err := e1.Ingest(textItem(fmt.Sprintf("durable record %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	annotated, err := e1.Ingest(textItem("John Smith loves the WidgetPro, it is excellent", "cc"))
	if err != nil {
		t.Fatal(err)
	}
	e1.DrainBackground()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e2.Close() })
	for _, id := range ids {
		d, err := e2.Get(id)
		if err != nil {
			t.Fatalf("doc %s unreadable after restart: %v", id, err)
		}
		if d.Source != "u" {
			t.Errorf("doc %s header lost: %+v", id, d)
		}
	}
	rows, err := e2.Search("durable", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ids) {
		t.Errorf("search after restart = %d/%d", len(rows), len(ids))
	}
	// Discovery state replays too: annotation edges survive the restart.
	anns, err := e2.AnnotationsOf(annotated)
	if err != nil || len(anns) == 0 {
		t.Errorf("annotations lost across restart: %d (%v)", len(anns), err)
	}
	fresh, err := e2.Ingest(textItem("minted after restart", "u"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if fresh == id {
			t.Fatalf("ID allocator re-minted live ID %s", id)
		}
	}
	e2.DrainBackground()
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening with a different data-node count moves the hash
	// placement; boot-time migration must put every document onto its
	// new ring owners so routed reads still find it.
	grown := cfg
	grown.DataNodes = 7
	e3, err := Open(grown)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e3.Close() })
	for _, id := range append(ids, fresh) {
		if _, err := e3.Get(id); err != nil {
			t.Errorf("doc %s unreadable after reopening with more nodes: %v", id, err)
		}
	}
	rows, err = e3.Search("durable", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ids) {
		t.Errorf("search after regrow = %d/%d", len(rows), len(ids))
	}
}

// TestRevivedNodeQuarantinedUntilRecovery: a node that missed replica
// writes while dead must not resume routing or answering after a bare
// Revive — its gaps would surface as missing documents. The dirty
// quarantine keeps successors serving until recovery reassigns the ring.
func TestRevivedNodeQuarantinedUntilRecovery(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	var ids []docmodel.DocID
	for i := 0; i < 20; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("pre kill %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()

	victim := e.data[1]
	e.fab.Kill(victim.node.ID)
	for i := 0; i < 20; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("during outage %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	if !victim.dirty.Load() {
		t.Fatal("victim missed replica writes but was not quarantined")
	}

	e.fab.Revive(victim.node.ID)
	// No recovery ran: the revived node must stay out of routing.
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("doc %s unreadable after bare revival: %v", id, err)
		}
	}
	docs, err := e.distributedScan(expr.True())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(ids) {
		t.Errorf("scan after bare revival = %d/%d (revived node answering with gaps?)", len(docs), len(ids))
	}
	// The next heartbeat notices the quarantine and reassigns the ring.
	e.HeartbeatTick()
	if e.smgr.InRing(victim.node.ID) {
		t.Error("heartbeat should remove the quarantined node from the ring")
	}
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("doc %s unreadable after quarantine recovery: %v", id, err)
		}
	}
}

// TestFacetsDoNotDoubleCountAfterRevival: a node recovery removed from
// the ring must stay out of index fan-outs even when revived, or its
// stale index entries double-count facets and re-answer searches.
func TestFacetsDoNotDoubleCountAfterRevival(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	const n = 30
	for i := 0; i < n; i++ {
		if _, err := e.Ingest(Item{
			Body: docmodel.Object(
				docmodel.F("text", docmodel.String("facet corpus entry")),
				docmodel.F("kind", docmodel.String([]string{"a", "b"}[i%2])),
			),
			MediaType: "text/plain", Source: "f",
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	victim := e.data[0].node.ID
	e.fab.Kill(victim)
	e.HeartbeatTick() // ring removal + re-index on new owners
	e.fab.Revive(victim)

	res, err := e.Facets(query.FacetRequest{Keyword: "facet", Dimensions: []string{"/kind"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != n {
		t.Errorf("facet total after revival = %d, want %d", res.Total, n)
	}
	sum := 0
	for _, b := range res.Dimensions[0].Buckets {
		sum += b.Count
	}
	if sum != n {
		t.Errorf("facet counts sum to %d after revival, want %d (revived index double-counted)", sum, n)
	}
	rows, err := e.Search("facet", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Errorf("search after revival = %d/%d", len(rows), n)
	}
}

// TestReopenWithFewerNodesKeepsDocsReachable: WAL directories beyond the
// configured node count still feed recovery — their documents migrate to
// the current owners and the ID allocator never regresses below their
// persisted Seqs.
func TestReopenWithFewerNodesKeepsDocsReachable(t *testing.T) {
	dir := t.TempDir()
	big := Config{DataNodes: 5, GridNodes: 1, ClusterNodes: 1, Workers: 2, Dir: dir}
	e1, err := Open(big)
	if err != nil {
		t.Fatal(err)
	}
	var ids []docmodel.DocID
	for i := 0; i < 25; i++ {
		id, err := e1.Ingest(textItem(fmt.Sprintf("shrink survivor %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e1.DrainBackground()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	small := big
	small.DataNodes = 2
	e2, err := Open(small)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e2.Close() })
	for _, id := range ids {
		if _, err := e2.Get(id); err != nil {
			t.Errorf("doc %s unreadable after shrinking membership: %v", id, err)
		}
	}
	rows, err := e2.Search("shrink", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ids) {
		t.Errorf("search after shrink = %d/%d", len(rows), len(ids))
	}
	fresh, err := e2.Ingest(textItem("minted after shrink", "u"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if fresh == id {
			t.Fatalf("ID allocator re-minted live ID %s from an orphan WAL", id)
		}
	}
}

// TestScanStillReachesAllNodes: distributed scans are semantically a
// fan-out — every alive data node contributes its answering partitions.
func TestScanStillReachesAllNodes(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	for i := 0; i < 40; i++ {
		if _, err := e.Ingest(Item{
			Body:      docmodel.Object(docmodel.F("k", docmodel.Int(int64(i)))),
			MediaType: "relational/row", Source: "u",
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	before := handledByNode(e)
	docs, err := e.distributedScan(expr.True())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 40 {
		t.Fatalf("scan docs = %d (ownership dedup broken?)", len(docs))
	}
	if touched := touchedSince(e, before); len(touched) != len(e.data) {
		t.Errorf("scan touched %d/%d nodes", len(touched), len(e.data))
	}
}
