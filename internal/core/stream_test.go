package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"impliance/internal/annot"
	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/plan"
	"impliance/internal/sched"
)

// ingestRows loads n small row documents and quiesces the appliance.
func ingestRows(t *testing.T, e *Engine, n int) []docmodel.DocID {
	t.Helper()
	var ids []docmodel.DocID
	for i := 0; i < n; i++ {
		id, err := e.Ingest(Item{
			Body: docmodel.Object(
				docmodel.F("k", docmodel.Int(int64(i))),
				docmodel.F("cat", docmodel.String("c")),
			),
			MediaType: "relational/row",
			Source:    "stream-test",
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	return ids
}

// collectStream drains a cursor into a row slice and closes it.
func collectStream(t *testing.T, c *Cursor) []docmodel.DocID {
	t.Helper()
	var ids []docmodel.DocID
	for c.Next() {
		ids = append(ids, c.Row().Docs[0].ID)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	return ids
}

// TestRunStreamMatchesMaterialized: a streaming scan delivers exactly
// the documents the materializing path returns (as a set — streams
// arrive in per-partition arrival order).
func TestRunStreamMatchesMaterialized(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	ingestRows(t, e, 120)

	q := plan.Query{Filter: expr.Cmp("/k", expr.OpLt, docmodel.Int(80))}
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := e.RunStream(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	streamed := collectStream(t, cur)
	if len(streamed) != len(res.Rows) {
		t.Fatalf("stream delivered %d rows, materialized %d", len(streamed), len(res.Rows))
	}
	want := map[docmodel.DocID]struct{}{}
	for _, r := range res.Rows {
		want[r.Docs[0].ID] = struct{}{}
	}
	for _, id := range streamed {
		if _, ok := want[id]; !ok {
			t.Fatalf("stream delivered %s, not in materialized result", id)
		}
	}
}

// TestRunStreamFallbackShapes: ordering/grouping/keyword queries flow
// through the same cursor API (materialized internally, delivered
// incrementally) and agree with Run.
func TestRunStreamFallbackShapes(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 3 })
	ingestRows(t, e, 60)
	q := plan.Query{
		Filter:  expr.True(),
		OrderBy: &plan.SortSpec{Path: "/k", Desc: true},
		K:       7,
	}
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := e.RunStream(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	streamed := collectStream(t, cur)
	if len(streamed) != len(res.Rows) {
		t.Fatalf("stream delivered %d rows, want %d", len(streamed), len(res.Rows))
	}
	for i, id := range streamed {
		if res.Rows[i].Docs[0].ID != id {
			t.Fatalf("row %d: stream %s != materialized %s (ordered shape must preserve order)",
				i, id, res.Rows[i].Docs[0].ID)
		}
	}
}

// TestRunStreamCancelStopsFanOut is the acceptance check for
// cancellation: closing a cursor after the first row stops the
// remaining partition fan-out — asserted via the fabric message
// counters — releases the pool worker running the stream, and leaks no
// goroutines.
func TestRunStreamCancelStopsFanOut(t *testing.T) {
	e := testEngine(t, func(c *Config) {
		c.DataNodes = 8
		c.SyncIndexing = true // keep the pool free of background noise
	})
	ingestRows(t, e, 200)
	baseGoroutines := runtime.NumGoroutine()

	// Full query: the scan fans out to all 8 ring nodes.
	e.fab.ResetNetStats()
	if _, err := e.Run(plan.Query{Filter: expr.True()}); err != nil {
		t.Fatal(err)
	}
	fullMsgs := e.fab.NetStats().Messages

	// Streamed and cancelled after the first row: only the in-flight
	// window of scans (plus stragglers' replies) is ever paid.
	e.fab.ResetNetStats()
	cur, err := e.RunStream(context.Background(), plan.Query{Filter: expr.True()})
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("no first row: %v", cur.Err())
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	cancelledMsgs := e.fab.NetStats().Messages
	if cancelledMsgs >= fullMsgs {
		t.Errorf("cancelled stream cost %d msgs, full query %d — cancellation did not stop the fan-out",
			cancelledMsgs, fullMsgs)
	}

	// The pool worker that ran the stream must be free again: an
	// interactive task must get a worker promptly.
	done := make(chan struct{})
	go func() {
		if _, err := e.pool.SubmitWait(sched.Interactive, func() {}); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("pool worker not released after cursor close")
	}

	// No goroutine leaks: the scatter goroutines and the producer all
	// unwind (allow scheduler/runtime slack, retry briefly).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseGoroutines+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > baseline %d after cancelled stream",
				runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCursorCloseMidStreamConcurrent: Close racing Next from another
// goroutine is safe (run under -race in CI) and always terminates.
func TestCursorCloseMidStreamConcurrent(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	ingestRows(t, e, 300)
	for round := 0; round < 5; round++ {
		cur, err := e.RunStream(context.Background(), plan.Query{Filter: expr.True()})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for cur.Next() {
				_ = cur.Row()
			}
		}()
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(round) * 100 * time.Microsecond)
			if err := cur.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		wg.Wait()
		if err := cur.Err(); err != nil {
			t.Fatalf("round %d: cursor error %v", round, err)
		}
	}
}

// TestRunStreamDeadlineTruncationSurfacesError: a non-streamable shape
// whose delivery is cut off by the deadline must report the error —
// a truncated prefix must not look like a complete result.
func TestRunStreamDeadlineTruncationSurfacesError(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 3 })
	ingestRows(t, e, 300)
	// Ordered shape → materializing path; buffer (64) < rows (300), so
	// the producer must still be emitting when the deadline fires.
	cur, err := e.RunStream(context.Background(), plan.Query{
		Filter:  expr.True(),
		OrderBy: &plan.SortSpec{Path: "/k"},
	}, WithDeadline(80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("no first row: %v", cur.Err())
	}
	time.Sleep(150 * time.Millisecond) // let the deadline fire mid-emit
	n := 1
	for cur.Next() {
		n++
	}
	if n >= 300 {
		t.Fatalf("delivered all %d rows; scenario degenerate", n)
	}
	if err := cur.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("truncated stream Err() = %v, want DeadlineExceeded", err)
	}
	_ = cur.Close()
}

// TestRunContextDeadline: WithDeadline (and an already-expired caller
// context) surfaces context.DeadlineExceeded instead of hanging.
func TestRunContextDeadline(t *testing.T) {
	e := testEngine(t)
	ingestRows(t, e, 30)
	if _, err := e.RunContext(context.Background(), plan.Query{Filter: expr.True()},
		WithDeadline(time.Nanosecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx, plan.Query{Filter: expr.True()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if _, err := e.GetContext(ctx, docmodel.DocID{Origin: 1, Seq: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get err = %v, want Canceled", err)
	}
}

// TestWithLimitStopsStream: a satisfied limit ends the stream after
// exactly n rows and stops scheduling the remaining ring scans.
func TestWithLimitStopsStream(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 8 })
	ingestRows(t, e, 200)
	e.fab.ResetNetStats()
	cur, err := e.RunStream(context.Background(), plan.Query{Filter: expr.True()}, WithLimit(5))
	if err != nil {
		t.Fatal(err)
	}
	got := collectStream(t, cur)
	if len(got) != 5 {
		t.Fatalf("limit 5 delivered %d rows", len(got))
	}
	limitMsgs := e.fab.NetStats().Messages

	e.fab.ResetNetStats()
	if _, err := e.Run(plan.Query{Filter: expr.True()}); err != nil {
		t.Fatal(err)
	}
	if fullMsgs := e.fab.NetStats().Messages; limitMsgs >= fullMsgs {
		t.Errorf("limited stream cost %d msgs, full scan %d — limit did not bound the fan-out",
			limitMsgs, fullMsgs)
	}
}

// TestReadOneConsistencyServesFromQuarantinedHolder: the ReadOne
// per-call consistency accepts a holder the owner rule refuses — a
// node quarantined for missed writes — trading freshness for
// availability when every other holder is gone.
func TestReadOneConsistencyServesFromQuarantinedHolder(t *testing.T) {
	e := testEngine(t, func(c *Config) {
		c.DataNodes = 4
		c.SyncReplication = true // replica misses quarantine synchronously
		c.SyncIndexing = true
	})
	ids := ingestRows(t, e, 40)

	victim := e.dataNodes()[0]
	// A document whose primary holder is the victim, written while the
	// cluster is healthy — the victim physically has it.
	var target docmodel.DocID
	for _, id := range ids {
		if h := e.smgr.Holders(id); len(h) >= 2 && h[0] == victim.node.ID {
			target = id
			break
		}
	}
	if target.IsZero() {
		t.Skip("no document primary on the first node (hash landed elsewhere)")
	}

	// Kill the victim and write documents until one of them routes a
	// replica at it: the missed write quarantines the node.
	e.fab.Kill(victim.node.ID)
	for i := 0; i < 64 && !victim.dirty.Load(); i++ {
		if _, err := e.Ingest(Item{
			Body:      docmodel.Object(docmodel.F("x", docmodel.Int(int64(i)))),
			MediaType: "relational/row", Source: "quarantine-bait",
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !victim.dirty.Load() {
		t.Fatal("victim never quarantined")
	}
	e.fab.Revive(victim.node.ID) // alive again, but dirty: owner rule skips it

	// Kill every other holder of the target document.
	for _, h := range e.smgr.Holders(target)[1:] {
		e.fab.Kill(h)
	}

	ctx := context.Background()
	if _, err := e.GetContext(ctx, target); err == nil {
		t.Fatal("ReadOwner served from a quarantined holder")
	}
	d, err := e.GetContext(ctx, target, WithConsistency(ReadOne))
	if err != nil {
		t.Fatalf("ReadOne refused the only live holder: %v", err)
	}
	if d.ID != target {
		t.Fatalf("ReadOne returned %s, want %s", d.ID, target)
	}
}

// TestStaleReadsSkipsWindowFallback: with dual-ownership windows pinned
// open, a default value lookup takes the broadcast fallback while a
// WithStaleReads lookup does not.
func TestStaleReadsSkipsWindowFallback(t *testing.T) {
	e := testEngine(t, func(c *Config) {
		c.DataNodes = 5
		c.Workers = 1
		c.SyncIndexing = true
	})
	for i := 0; i < 60; i++ {
		if _, err := e.Ingest(fieldItem("k", docmodel.Int(int64(i%7)), "corpus")); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()

	victim := e.dataNodes()[1].node.ID
	e.fab.Kill(victim)
	e.HeartbeatTick()
	e.DrainBackground()
	unblock := make(chan struct{})
	defer close(unblock)
	e.pool.Submit(sched.Background, func() { <-unblock })
	e.fab.Revive(victim)
	e.HeartbeatTick()
	if e.smgr.HandoffPending() == 0 {
		t.Fatal("no hand-off windows open; scenario degenerate")
	}

	q := plan.Query{Filter: expr.Cmp("/k", expr.OpEq, docmodel.Int(3))}
	_, _, _, fallbacksBefore := e.ValueProbeStats()
	if _, err := e.RunContext(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if _, _, _, fb := e.ValueProbeStats(); fb == fallbacksBefore {
		t.Fatal("default lookup did not take the window fallback; scenario degenerate")
	}

	_, _, _, fallbacksBefore = e.ValueProbeStats()
	if _, err := e.RunContext(context.Background(), q, WithStaleReads()); err != nil {
		t.Fatal(err)
	}
	if _, _, _, fb := e.ValueProbeStats(); fb != fallbacksBefore {
		t.Error("WithStaleReads still took the dual-ownership window fallback")
	}
}

// TestIngestBatchGroupsReplicaSends: a batch's replica traffic is one
// message per target node, not one per document — and the replicas are
// really there (every document readable from every holder).
func TestIngestBatchGroupsReplicaSends(t *testing.T) {
	e := testEngine(t, func(c *Config) {
		c.DataNodes = 4
		c.Annotators = []annot.Annotator{}
	})
	items := make([]Item, 50)
	for i := range items {
		items[i] = Item{
			Body:      docmodel.Object(docmodel.F("k", docmodel.Int(int64(i)))),
			MediaType: "relational/row", Source: "batch",
		}
	}
	e.fab.ResetNetStats()
	ids, err := e.IngestBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()
	msgs := e.fab.NetStats().Messages
	// Per document: one put call (2 messages with its reply) plus index
	// attribution noise; replicas add at most one batched call per data
	// node. The unbatched path paid ~1 replica call per doc (RF2): assert
	// we are far under that.
	unbatchedFloor := uint64(len(items)) * 3
	if msgs >= unbatchedFloor {
		t.Errorf("batched ingest cost %d msgs for %d docs — replica batching not effective (unbatched ≈ %d)",
			msgs, len(items), unbatchedFloor)
	}
	for _, id := range ids {
		for _, h := range e.smgr.Holders(id) {
			dn, ok := e.dataNode(h)
			if !ok {
				t.Fatalf("holder %s not a data node", h)
			}
			if _, err := dn.store.Get(id); err != nil {
				t.Errorf("holder %s missing replica of %s: %v", h, id, err)
			}
		}
	}
}
