package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/fabric"
	"impliance/internal/index"
	"impliance/internal/storage"
	"impliance/internal/text"
)

// Message kinds understood by the node handlers. Data nodes serve the
// storage-local operations that the paper pushes down (§3.1, §3.3); grid
// nodes merge partial aggregates; cluster nodes serve heartbeats and the
// lock service.
const (
	msgPut          = "put"            // data: store a new document/version
	msgReplica      = "replica"        // data: install a replicated version
	msgReplicaBatch = "replica-batch"  // data: install many replicated versions in one call
	msgDelete       = "delete"         // data: append a tombstone version
	msgGet          = "get"            // data: fetch latest version by id
	msgGetBatch     = "get-batch"      // data: fetch many latest versions
	msgScanFiltered = "scan-filtered"  // data: pushed-down filtered scan
	msgScanAll      = "scan-all"       // data: full scan (pushdown ablation)
	msgAggPartial   = "agg-partial"    // data: pushed-down partial aggregate
	msgSearch       = "search"         // data: ranked keyword search
	msgValueLookup  = "value-lookup"   // data: value index eq/range probe
	msgPathLookup   = "path-lookup"    // data: structural path probe
	msgFacets       = "facets"         // data: facet counts over candidates
	msgMerge        = "merge-partials" // grid: merge partial aggregates
	msgHeartbeat    = "heartbeat"      // cluster: liveness probe
	msgLock         = "lock"           // cluster: acquire named lock
	msgUnlock       = "unlock"         // cluster: release named lock
)

// dataHandler serves a data node's messages against its store and index.
func (e *Engine) dataHandler(dn *dataNode) fabric.Handler {
	return func(kind string, payload []byte) ([]byte, error) {
		switch kind {
		case msgPut:
			doc, err := docmodel.DecodeDocument(payload)
			if err != nil {
				return nil, err
			}
			key, err := dn.store.Put(doc)
			if err != nil {
				return nil, err
			}
			stored, err := dn.store.GetVersion(key)
			if err != nil {
				return nil, err
			}
			return docmodel.EncodeDocument(stored), nil

		case msgReplica:
			doc, err := docmodel.DecodeDocument(payload)
			if err != nil {
				return nil, err
			}
			if err := dn.store.PutReplica(doc); err != nil {
				return nil, err
			}
			// A replica install can change what the partition's answering
			// owner scans (repair, hand-off copies, a lagging replica that
			// became the answerer): void the partition's cached partials.
			e.caches.BumpEpoch(e.smgr.PartitionOf(doc.ID))
			return nil, nil

		case msgReplicaBatch:
			// The ingest path groups replica traffic per target: every
			// version this node owes from a batch arrives in one call
			// instead of one message per document (PutReplica is
			// idempotent, so a retried batch is safe).
			docs, err := decodeDocs(payload)
			if err != nil {
				return nil, err
			}
			for _, d := range docs {
				if err := dn.store.PutReplica(d); err != nil {
					return nil, err
				}
				e.caches.BumpEpoch(e.smgr.PartitionOf(d.ID))
			}
			return nil, nil

		case msgDelete:
			// Deletion is versioned like any other change (§4): the store
			// appends a tombstone version and the reply ships it back so
			// the caller can replicate it to the remaining write holders.
			id, err := docmodel.ParseDocID(string(payload))
			if err != nil {
				return nil, err
			}
			key, err := dn.store.Delete(id)
			if err != nil {
				return nil, err
			}
			tomb, err := dn.store.GetVersion(key)
			if err != nil {
				return nil, err
			}
			return docmodel.EncodeDocument(tomb), nil

		case msgGet:
			id, err := docmodel.ParseDocID(string(payload))
			if err != nil {
				return nil, err
			}
			d, err := dn.store.Get(id)
			if err != nil {
				return nil, err
			}
			return docmodel.EncodeDocument(d), nil

		case msgGetBatch:
			var req getBatchReq
			if err := json.Unmarshal(payload, &req); err != nil {
				return nil, err
			}
			ids, err := parseIDs(req.IDs)
			if err != nil {
				return nil, err
			}
			var docs []*docmodel.Document
			for _, id := range ids {
				d, err := dn.store.Get(id)
				if err != nil {
					// A miss is an answer (the caller's negative cache relies
					// on "owner answered but did not return the ID"); a read
					// or corruption failure is not — surfacing it keeps the
					// caller from caching a phantom miss.
					if errors.Is(err, storage.ErrNotFound) {
						continue
					}
					return nil, err
				}
				docs = append(docs, d)
			}
			return encodeDocs(docs), nil

		case msgScanFiltered, msgScanAll:
			var req scanReq
			if len(payload) > 0 {
				if err := json.Unmarshal(payload, &req); err != nil {
					return nil, err
				}
			}
			filter := expr.True()
			if kind == msgScanFiltered {
				f, err := expr.Decode(req.Filter)
				if err != nil {
					return nil, err
				}
				filter = f
			}
			return e.scanPageReply(dn, filter, req)

		case msgAggPartial:
			var req aggReq
			if err := json.Unmarshal(payload, &req); err != nil {
				return nil, err
			}
			filter, err := expr.Decode(req.Filter)
			if err != nil {
				return nil, err
			}
			if req.Parts != nil {
				// Routed form: one partial per requested partition, so the
				// engine can cache each partition's contribution under its
				// own routing generation.
				out := make([]aggPartialWire, 0, len(req.Parts))
				for _, p := range req.Parts {
					g := expr.NewGroupState(req.spec())
					dn.store.ScanSubset(e.smgr.DocsInPartition(p), filter, func(d *docmodel.Document) bool {
						g.Update(d)
						return true
					})
					out = append(out, aggPartialWire{Part: p, Partial: g.EncodePartials()})
				}
				return mustJSON(out), nil
			}
			g := expr.NewGroupState(req.spec())
			e.scanOwned(dn, filter, func(d *docmodel.Document) bool {
				g.Update(d)
				return true
			})
			return g.EncodePartials(), nil

		case msgSearch:
			var req searchReq
			if err := json.Unmarshal(payload, &req); err != nil {
				return nil, err
			}
			hits := dn.ix.SearchTerms(req.Terms, req.K)
			return mustJSON(hitsToWire(hits)), nil

		case msgValueLookup:
			var req valueLookupReq
			if err := json.Unmarshal(payload, &req); err != nil {
				return nil, err
			}
			var ids []docmodel.DocID
			if req.Range {
				var lo, hi *docmodel.Value
				if req.Lo != nil {
					v, err := docmodel.DecodeValue(req.Lo)
					if err != nil {
						return nil, err
					}
					lo = &v
				}
				if req.Hi != nil {
					v, err := docmodel.DecodeValue(req.Hi)
					if err != nil {
						return nil, err
					}
					hi = &v
				}
				ids = dn.ix.ValueRangeIn(req.Parts, req.Path, lo, hi, req.LoInc, req.HiInc)
			} else {
				v, err := docmodel.DecodeValue(req.Value)
				if err != nil {
					return nil, err
				}
				ids = dn.ix.ValueLookupIn(req.Parts, req.Path, v)
			}
			return mustJSON(idListResp{IDs: idStrings(ids)}), nil

		case msgPathLookup:
			ids := dn.ix.PathLookup(string(payload))
			return mustJSON(idListResp{IDs: idStrings(ids)}), nil

		case msgMerge, msgHeartbeat:
			// Any node kind can execute any operator (paper §3.3); the
			// affinity placer just avoids it. The random-placement ablation
			// exercises this path.
			return e.mergeOrHeartbeat(fabricDataKind, kind, payload)

		case msgFacets:
			var req facetsReq
			if err := json.Unmarshal(payload, &req); err != nil {
				return nil, err
			}
			var candidates map[docmodel.DocID]struct{}
			if !req.All {
				ids, err := parseIDs(req.IDs)
				if err != nil {
					return nil, err
				}
				candidates = map[docmodel.DocID]struct{}{}
				for _, id := range ids {
					candidates[id] = struct{}{}
				}
			}
			if req.Parts != nil {
				// Routed form: count each requested partition separately so
				// the engine can cache per-partition partials.
				out := make([]facetPartialWire, 0, len(req.Parts))
				for _, p := range req.Parts {
					fc := dn.ix.FacetsIn([]int{p}, req.Path, candidates, 0)
					ws := make([]facetBucketWire, len(fc))
					for i, b := range fc {
						ws[i] = facetBucketWire{Value: docmodel.EncodeValue(b.Value), Count: b.Count}
					}
					out = append(out, facetPartialWire{Part: p, Buckets: ws})
				}
				return mustJSON(out), nil
			}
			fc := dn.ix.Facets(req.Path, candidates, req.Limit)
			out := make([]facetBucketWire, len(fc))
			for i, b := range fc {
				out[i] = facetBucketWire{Value: docmodel.EncodeValue(b.Value), Count: b.Count}
			}
			return mustJSON(out), nil

		default:
			return nil, fmt.Errorf("core: data node %s: unknown message %q", dn.node.ID, kind)
		}
	}
}

// scanPageReply serves one page of a data node's owned scan: resolve the
// resume token against the node's current owned-ID list, scan forward
// collecting at most req.Page matches, and frame the page with the next
// token. The token names the last *examined* position, not the last
// match, so a page of non-matching documents still advances the cursor.
func (e *Engine) scanPageReply(dn *dataNode, filter expr.Expr, req scanReq) ([]byte, error) {
	ids := e.smgr.DocsInPartitions(e.answeringPartitions(dn))
	start := 0
	if req.AfterID != "" {
		after, err := docmodel.ParseDocID(req.AfterID)
		if err != nil {
			return nil, err
		}
		if req.AfterPos >= 0 && req.AfterPos < len(ids) && ids[req.AfterPos] == after {
			start = req.AfterPos + 1
		} else {
			// The owned set shifted under the cursor (membership change,
			// new registrations ahead of the position): find the ID; if it
			// vanished, restart from the top — the caller dedups.
			for i, id := range ids {
				if id == after {
					start = i + 1
					break
				}
			}
		}
	}
	var docs []*docmodel.Document
	more := false
	lastPos := start - 1
	for i := start; i < len(ids); i++ {
		if req.Page > 0 && len(docs) >= req.Page {
			more = true
			break
		}
		dn.store.ScanSubset(ids[i:i+1], filter, func(d *docmodel.Document) bool {
			docs = append(docs, d)
			return true
		})
		lastPos = i
	}
	var lastID docmodel.DocID
	if lastPos >= 0 && lastPos < len(ids) {
		lastID = ids[lastPos]
	}
	return encodeScanPage(docs, more, lastPos, lastID), nil
}

// scanNodePaged drives one node's paged scan to completion. With onPage
// set, each page is handed over as it arrives (streaming) and the
// returned slice is nil; otherwise pages are collected and returned.
func (e *Engine) scanNodePaged(ctx context.Context, dn *dataNode, kind string, filter []byte,
	onPage func([]*docmodel.Document) error) ([]*docmodel.Document, error) {
	req := scanReq{Filter: filter, Page: e.scanPageSize()}
	var out []*docmodel.Document
	for {
		raw, err := e.fab.CallCtx(ctx, dn.node.ID, kind, mustJSON(req))
		if err != nil {
			return nil, err
		}
		docs, more, pos, lastID, err := decodeScanPage(raw)
		if err != nil {
			return nil, err
		}
		if onPage != nil {
			if err := onPage(docs); err != nil {
				return nil, err
			}
		} else {
			out = append(out, docs...)
		}
		if !more {
			return out, nil
		}
		req.AfterPos, req.AfterID = pos, lastID.String()
	}
}

// gridHandler serves grid-node computations (merge phases).
func (e *Engine) gridHandler(n *fabric.Node) fabric.Handler {
	return func(kind string, payload []byte) ([]byte, error) {
		switch kind {
		case msgHeartbeat, msgMerge:
			return e.mergeOrHeartbeat(fabric.Grid, kind, payload)
		default:
			return nil, fmt.Errorf("core: grid node %s: unknown message %q", n.ID, kind)
		}
	}
}

// fabricDataKind avoids importing fabric.Data at every data-handler call
// site.
const fabricDataKind = fabric.Data

// mergeOrHeartbeat implements the node-kind-independent operations,
// attributing merge executions to the hosting node kind.
func (e *Engine) mergeOrHeartbeat(nodeKind fabric.NodeKind, kind string, payload []byte) ([]byte, error) {
	if kind == msgHeartbeat {
		return nil, nil
	}
	e.mergesByKind[nodeKind].Add(1)
	var req mergeReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	spec := aggReq{By: req.By, Aggs: req.Aggs}.spec()
	merged := expr.NewGroupState(spec)
	for _, pb := range req.Partials {
		g, err := expr.DecodePartials(spec, pb)
		if err != nil {
			return nil, err
		}
		merged.Merge(g)
	}
	// Reply with the merged state re-encoded; the caller finalizes.
	return merged.EncodePartials(), nil
}

// clusterHandler serves consistency-group and lock-service messages.
func (e *Engine) clusterHandler(n *fabric.Node) fabric.Handler {
	return func(kind string, payload []byte) ([]byte, error) {
		switch kind {
		case msgHeartbeat, msgMerge:
			return e.mergeOrHeartbeat(fabric.Cluster, kind, payload)
		case msgLock:
			var req lockReq
			if err := json.Unmarshal(payload, &req); err != nil {
				return nil, err
			}
			token, ok := e.locks.Acquire(req.Name, req.Owner)
			return mustJSON(lockResp{Token: token, OK: ok}), nil
		case msgUnlock:
			var req lockReq
			if err := json.Unmarshal(payload, &req); err != nil {
				return nil, err
			}
			e.locks.Release(req.Name, req.Owner)
			return nil, nil
		default:
			return nil, fmt.Errorf("core: cluster node %s: unknown message %q", n.ID, kind)
		}
	}
}

// indexDoc makes the given version the node's live-indexed version,
// removing the previously indexed one (incremental maintenance, §3.3).
func (dn *dataNode) indexDoc(d *docmodel.Document) {
	dn.mu.Lock()
	old := dn.indexedVer[d.ID]
	dn.indexedVer[d.ID] = d
	dn.mu.Unlock()
	if old != nil {
		dn.ix.Remove(old)
	}
	dn.ix.Add(d)
}

// unindexDoc drops the node's index entry for the document, if any. Used
// when ownership hands off to another node mid-membership-change.
func (dn *dataNode) unindexDoc(id docmodel.DocID) {
	dn.mu.Lock()
	old := dn.indexedVer[id]
	delete(dn.indexedVer, id)
	dn.mu.Unlock()
	if old != nil {
		dn.ix.Remove(old)
	}
}

// purgeIndex drops every index entry the node holds. A node re-joining
// the ring purges first: entries from before its absence point at
// documents whose ownership moved, and the moment the node is a ring
// member again fan-outs would surface them as duplicates.
func (dn *dataNode) purgeIndex() {
	dn.mu.Lock()
	old := dn.indexedVer
	dn.indexedVer = map[docmodel.DocID]*docmodel.Document{}
	dn.mu.Unlock()
	for _, d := range old {
		dn.ix.Remove(d)
	}
}

// searchAllNodes fans a keyword search out to every alive data node and
// merges ranked hits (paper §3.3's example: "a query can be parallelized
// by performing full-text index search on a set of data nodes").
func (e *Engine) searchAllNodes(ctx context.Context, keyword string, k int) ([]index.Hit, error) {
	terms := text.DefaultAnalyzer.Terms(keyword)
	if len(terms) == 0 {
		return nil, nil
	}
	payload := mustJSON(searchReq{Terms: terms, K: k})
	results, err := e.fanOutData(ctx, msgSearch, func(*dataNode) []byte { return payload })
	if err != nil {
		return nil, err
	}
	var all []index.Hit
	for _, raw := range results {
		var ws []searchHit
		if err := json.Unmarshal(raw, &ws); err != nil {
			return nil, err
		}
		hits, err := hitsFromWire(ws)
		if err != nil {
			return nil, err
		}
		all = append(all, hits...)
	}
	sortHits(all)
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all, nil
}

func sortHits(hits []index.Hit) {
	// Descending score, ascending ID tie-break (same as index package).
	sort.Slice(hits, func(i, j int) bool { return hitLess(hits[i], hits[j]) })
}

func hitLess(a, b index.Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID.Compare(b.ID) < 0
}

// fanOutData calls every alive ring-member data node concurrently and
// gathers raw replies in node order. Nodes recovery removed from the
// ring are excluded even when revived: their stores and indexes hold
// entries whose ownership moved, and fanning them in would double-count
// facets and surface stale index answers.
func (e *Engine) fanOutData(ctx context.Context, kind string, payloadFor func(*dataNode) []byte) ([][]byte, error) {
	return e.callEach(ctx, e.ringNodes(), kind, payloadFor)
}

// ringNodes lists the alive ring-member data nodes — the fan-out set.
func (e *Engine) ringNodes() []*dataNode {
	alive := make([]*dataNode, 0, len(e.dataNodes()))
	for _, dn := range e.dataNodes() {
		if dn.node.Alive() && e.smgr.InRing(dn.node.ID) {
			alive = append(alive, dn)
		}
	}
	return alive
}

// callEach calls each node concurrently with its payload and gathers
// raw replies in node order, failing on the first error — the shared
// scatter-gather under fanOutData and the routed value probe. A
// cancelled context stops the scatter before un-dispatched calls are
// sent and abandons the in-flight ones (fabric.CallCtx), so a dead
// caller stops consuming the interconnect.
func (e *Engine) callEach(ctx context.Context, nodes []*dataNode, kind string, payloadFor func(*dataNode) []byte) ([][]byte, error) {
	results := make([][]byte, len(nodes))
	errs := make([]error, len(nodes))
	done := make(chan int, len(nodes))
	launched := 0
	for i, dn := range nodes {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		launched++
		go func(i int, dn *dataNode) {
			results[i], errs[i] = e.fab.CallCtx(ctx, dn.node.ID, kind, payloadFor(dn))
			done <- i
		}(i, dn)
	}
	for n := 0; n < launched; n++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
