package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"impliance/internal/annot"
	"impliance/internal/discovery"
	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/fabric"
	"impliance/internal/sched"
	"impliance/internal/virt"
)

// Discovery orchestration (paper §3.3: "Annotation extraction requires
// the capabilities of all three node types. Data nodes perform
// intra-document analyses... The output of intra-document analyses may be
// fed to grid nodes for inter-document analyses that identify
// relationships spanning multiple documents. Finally, cluster nodes are
// responsible for persisting newly extracted structures and relationships
// reliably and consistently.")
//
// Intra-document annotation runs at ingest time (ingestpath.go). This
// file hosts the inter-document passes: entity resolution across the
// accumulated entity annotations, value-join discovery across document
// shapes, and schema-family mapping — each producing join-index edges
// persisted through the cluster node lock service.

// DiscoveryReport summarizes one inter-document discovery pass.
type DiscoveryReport struct {
	Mentions       int
	EntityClusters int
	EntityEdges    int
	ValueJoins     int
	SchemaFamilies int
	JoinEdgesTotal int
}

// RunDiscovery executes one full inter-document discovery pass. It can be
// invoked any time ("permitting automated information discovery at any
// time, not just at data loading time", §3.2); typically the appliance
// runs it as background work via ScheduleDiscovery.
func (e *Engine) RunDiscovery() (*DiscoveryReport, error) {
	return e.RunDiscoveryContext(context.Background())
}

// RunDiscoveryContext is RunDiscovery under a request lifecycle: the
// context bounds the mention gather, the cross-cluster scan, and the
// lock round-trips — a cancelled pass stops between phases and abandons
// its in-flight node calls.
func (e *Engine) RunDiscoveryContext(ctx context.Context) (*DiscoveryReport, error) {
	report := &DiscoveryReport{}

	// Phase 1 (data-node output): gather entity mentions from existing
	// annotation documents.
	mentions, err := e.collectMentions()
	if err != nil {
		return nil, err
	}
	report.Mentions = len(mentions)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2 (grid-node analysis): resolve entities, propose value joins.
	e.attributeWork(sched.TaskInterAnalysis)
	clusters := discovery.NewResolver().Resolve(mentions)
	report.EntityClusters = len(clusters)

	latest, err := e.latestBaseDocs(ctx)
	if err != nil {
		return nil, err
	}
	e.shapesMu.Lock()
	families := discovery.NewSchemaMapper().Map(e.shapes.Groups())
	e.shapesMu.Unlock()
	report.SchemaFamilies = len(families)

	// Phase 3 (cluster-node persistence): take the join-index lock, then
	// materialize edges.
	token, release, err := e.acquireClusterLock(ctx, "joinindex", "discovery")
	if err != nil {
		return nil, err
	}
	defer release()
	if !e.locks.Validate("joinindex", token) {
		return nil, fmt.Errorf("core: fencing token invalidated mid-discovery")
	}
	report.EntityEdges = discovery.BuildEntityEdges(e.joinIdx, clusters, 32)
	joins := discovery.NewValueJoinDiscoverer().Discover(latest, e.joinIdx)
	report.ValueJoins = len(joins)
	report.JoinEdgesTotal = e.joinIdx.EdgeCount()
	return report, nil
}

// ScheduleDiscovery queues RunDiscovery as background work, returning a
// channel that yields the report (or nil on failure).
func (e *Engine) ScheduleDiscovery() <-chan *DiscoveryReport {
	out := make(chan *DiscoveryReport, 1)
	e.pool.Submit(sched.Background, func() {
		rep, err := e.RunDiscovery()
		if err != nil {
			out <- nil
			return
		}
		out <- rep
	})
	return out
}

// collectMentions walks entity annotation documents on all data nodes.
func (e *Engine) collectMentions() ([]discovery.Mention, error) {
	var mentions []discovery.Mention
	seen := map[docmodel.DocID]struct{}{}
	for _, dn := range e.aliveData() {
		dn.store.Scan(func(d *docmodel.Document) bool {
			if !d.IsAnnotation() || d.Annotator != "entity" {
				return true
			}
			if _, dup := seen[d.ID]; dup {
				return true
			}
			seen[d.ID] = struct{}{}
			for _, ent := range annot.EntitiesFromAnnotation(d) {
				mentions = append(mentions, discovery.Mention{
					Doc:  d.Annotates,
					Type: ent.Type,
					Norm: ent.Norm,
				})
			}
			return true
		})
	}
	return mentions, nil
}

// latestBaseDocs returns the deduplicated latest versions of all
// non-annotation documents.
func (e *Engine) latestBaseDocs(ctx context.Context) ([]*docmodel.Document, error) {
	return e.distributedScan(ctx, expr.Not(expr.MediaTypeIs(annot.MediaAnnotation)))
}

// acquireClusterLock takes a named lock through the cluster leader's lock
// service and returns the fencing token plus a release func. The release
// deliberately ignores the request context: a cancelled caller must
// still return the lock, or cancellation would leak lock ownership.
func (e *Engine) acquireClusterLock(ctx context.Context, name, owner string) (uint64, func(), error) {
	leader := e.group.Leader()
	if leader.IsZero() {
		return 0, nil, fmt.Errorf("core: no cluster leader")
	}
	raw, err := e.fab.CallCtx(ctx, leader, msgLock, mustJSON(lockReq{Name: name, Owner: owner}))
	if err != nil {
		return 0, nil, err
	}
	var resp lockResp
	if err := unmarshal(raw, &resp); err != nil {
		return 0, nil, err
	}
	if !resp.OK {
		return 0, nil, fmt.Errorf("core: lock %q busy", name)
	}
	release := func() {
		_, _ = e.fab.Call(leader, msgUnlock, mustJSON(lockReq{Name: name, Owner: owner}))
	}
	return resp.Token, release, nil
}

// Connect answers the paper's flagship structured question — "given two
// pieces of data, we should be able to ask how they are connected"
// (§3.2.1) — over the discovered join index.
func (e *Engine) Connect(a, b docmodel.DocID, maxHops int) []discovery.Edge {
	return e.joinIdx.Connect(a, b, maxHops)
}

// ConnectContext is Connect with the uniform ctx-first signature. The
// walk is engine-local (no node calls); the context gates entry only.
func (e *Engine) ConnectContext(ctx context.Context, a, b docmodel.DocID, maxHops int) []discovery.Edge {
	if ctx.Err() != nil {
		return nil
	}
	return e.Connect(a, b, maxHops)
}

// RelatedTo returns the transitive closure of relationships around a
// document (legal-compliance discovery, §2.1.3).
func (e *Engine) RelatedTo(id docmodel.DocID, maxHops int) []docmodel.DocID {
	return e.joinIdx.ConnectedComponent(id, maxHops)
}

// RelatedToContext is RelatedTo with the uniform ctx-first signature
// (engine-local walk; the context gates entry only).
func (e *Engine) RelatedToContext(ctx context.Context, id docmodel.DocID, maxHops int) []docmodel.DocID {
	if ctx.Err() != nil {
		return nil
	}
	return e.RelatedTo(id, maxHops)
}

// AnnotationsOf returns the annotation documents attached to a base
// document (any annotator), via the join index "annotates" edges.
func (e *Engine) AnnotationsOf(id docmodel.DocID) ([]*docmodel.Document, error) {
	return e.AnnotationsOfContext(context.Background(), id)
}

// AnnotationsOfContext is AnnotationsOf under a request lifecycle: each
// annotation fetch is a routed point read bounded by the context and
// the per-call options.
func (e *Engine) AnnotationsOfContext(ctx context.Context, id docmodel.DocID, opts ...CallOption) ([]*docmodel.Document, error) {
	var out []*docmodel.Document
	for _, edge := range e.joinIdx.Neighbors(id) {
		if edge.Label != "annotates" && edge.Label != "ref" {
			continue
		}
		if err := ctx.Err(); err != nil {
			return out, err
		}
		d, err := e.GetContext(ctx, edge.To, opts...)
		if err != nil {
			continue
		}
		if d.IsAnnotation() && d.Annotates == id {
			out = append(out, d)
		}
	}
	return out, nil
}

// SchemaFamilies exposes the current schema-mapping state.
func (e *Engine) SchemaFamilies() []discovery.SchemaFamily {
	e.shapesMu.Lock()
	defer e.shapesMu.Unlock()
	return discovery.NewSchemaMapper().Map(e.shapes.Groups())
}

// HeartbeatTick advances the consistency group one round (experiments
// drive time explicitly). Evicted cluster nodes trigger broker
// replacement requests and lock eviction. Data-node membership is driven
// both ways — the two halves of paper §3.4's autonomic repair:
//
//   - a dead (or write-missing, quarantined) data node still on the
//     partition ring is recovered: ring removal + partition reassignment;
//   - an alive data node *off* the ring — a recovered node the previous
//     ticks quarantined and removed, or a freshly added one — is promoted
//     back on via JoinDataNode, which opens dual-ownership hand-off
//     windows and schedules background catch-up instead of quarantining
//     the node forever.
//
// A node takes at most one step per tick (recover this tick, re-join a
// later one), so a flapping node never joins with unfilled gaps. Every
// AutoRebalanceEvery-th tick also runs a skew-aware rebalance pass when
// enough load signal has accumulated (membership.go).
func (e *Engine) HeartbeatTick() []fabric.NodeID {
	evicted := e.group.Tick()
	e.trace("heartbeat: round complete, evicted=%d", len(evicted))
	for range evicted {
		e.locks.Evict("discovery")
	}
	for _, dn := range e.dataNodes() {
		switch {
		case (!dn.node.Alive() || dn.dirty.Load()) && e.smgr.InRing(dn.node.ID):
			_, _ = e.RecoverDataNode(dn.node.ID)
		case dn.node.Alive() && !e.smgr.InRing(dn.node.ID):
			_, _ = e.JoinDataNode(dn.node.ID)
		}
	}
	// Re-attempt under-replicated documents each round: a repair target
	// that was down (blocked) may be serving again by now.
	e.smgr.RepairDegraded(e.eligibleDataIDs())
	// Periodic skew check: a sustained hot node sheds ring weight with no
	// operator action (cadence + load threshold in membership.go).
	e.maybeAutoRebalance()
	return evicted
}

// RecoverDataNode handles a data-node failure end to end: the broker
// replaces the group member, the storage manager drops the node from the
// partition ring — reassigning exactly its partitions to their ring
// successors — and re-replicates the affected documents onto the owners
// they gained. The index catch-up (each affected document re-indexed on
// its new answering owner) is scheduled as background work on the
// execution pool, one task per affected partition, so recovery returns as
// soon as the data itself is safe; DrainBackground fences the index debt.
// A recovered node re-joins the ring through a later heartbeat tick's
// JoinDataNode. Returns the number of repaired replicas.
func (e *Engine) RecoverDataNode(dead fabric.NodeID) (int, error) {
	affected := e.smgr.DocsOn(dead)
	// Ask the broker for a replacement member; lacking spares/donors is
	// not fatal — replication is repaired among survivors regardless.
	if _, err := e.broker.RequestReplacement("data", dead); err != nil && !errors.Is(err, virt.ErrNoResources) {
		return 0, err
	}
	repaired, err := e.smgr.HandleNodeFailure(dead, e.eligibleDataIDs())
	if err != nil {
		return repaired, err
	}
	// The ring lost a member and every partition the dead node owned
	// re-routed under a fresh generation: fence the tail broker so
	// subscriptions void pre-failure queued deliveries and resume from
	// their acknowledged watermarks against the surviving owners.
	e.tails.FenceAll()
	e.trace("recover %s: %d docs affected, %d replicas repaired", dead, len(affected), repaired)
	byPart := map[int][]docmodel.DocID{}
	for _, id := range affected {
		p := e.smgr.PartitionOf(id)
		byPart[p] = append(byPart[p], id)
	}
	// Submit in partition order: recovery driven from a simulated run
	// must schedule identical task sequences, not map-iteration ones.
	parts := make([]int, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		ids := byPart[p]
		// Durability class: repair work restores promised replica counts.
		e.pool.Submit(sched.Durability, func() { e.reindexDocs(ids) })
	}
	// A failure during open hand-off windows re-armed them under fresh
	// generations (the in-flight plans may miss owners the removal
	// promoted); re-plan and schedule catch-up so every window closes
	// with complete copies.
	if replan := e.smgr.ReplanHandoffs(e.eligibleDataIDs()); replan != nil {
		for _, pt := range replan.Partitions {
			pt := pt
			e.pool.Submit(sched.Durability, func() { e.catchUpPartition(pt) })
		}
	}
	return repaired, nil
}
