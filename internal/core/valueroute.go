package core

import (
	"context"
	"sort"
	"sync/atomic"

	"impliance/internal/docmodel"
)

// Partition-routed value-index probes. A value predicate used to be a
// broadcast: every data node probed its whole value index, so
// value-predicate queries cost O(nodes) messages while routed point Gets
// cost O(RF). The router below closes that asymmetry. Postings are keyed
// by (partition, path, value) on each node (internal/index), and every
// partition carries path statistics — distinct paths with live postings
// and their value-kind histograms. The router walks the partition map:
// for each partition it asks the read-side owners' local statistics
// whether the (path, value) can match there, and fans the probe out only
// to the nodes that admit it, each probe carrying the partitions that
// node was selected for. Partitions inside an open dual-ownership window
// are probed on every ring member instead — their index is mid-hand-over
// (the same generation-fenced window rule reads already respect), so the
// broadcast fallback is the only set guaranteed to cover both sides.

// valueProbeCounters accounts the routed value-lookup path.
type valueProbeCounters struct {
	lookups          atomic.Uint64 // value lookups executed
	probes           atomic.Uint64 // index-probe calls sent
	partitionsPruned atomic.Uint64 // partitions skipped by path statistics
	windowFallbacks  atomic.Uint64 // lookups that crossed an open hand-off window
}

// ValueProbeStats reports the routed value-lookup accounting: lookups
// executed, index-probe messages sent, partitions pruned by path
// statistics, and lookups that fell back to a per-partition broadcast
// because a dual-ownership window was open.
func (e *Engine) ValueProbeStats() (lookups, probes, pruned, windowFallbacks uint64) {
	return e.valueProbes.lookups.Load(),
		e.valueProbes.probes.Load(),
		e.valueProbes.partitionsPruned.Load(),
		e.valueProbes.windowFallbacks.Load()
}

// valueProbeKind extracts the kind-pruning hint from a lookup request:
// the queried value's kind for an equality probe; for a range, the kind
// shared by both bounds when they agree (the total value order groups
// non-numeric kinds, and Int/Float are matched as one numeric class), or
// no hint for open or kind-crossing ranges.
func valueProbeKind(req valueLookupReq) (docmodel.Kind, bool) {
	if !req.Range {
		v, err := docmodel.DecodeValue(req.Value)
		if err != nil {
			return 0, false
		}
		return v.Kind(), true
	}
	if req.Lo == nil || req.Hi == nil {
		return 0, false
	}
	lo, err := docmodel.DecodeValue(req.Lo)
	if err != nil {
		return 0, false
	}
	hi, err := docmodel.DecodeValue(req.Hi)
	if err != nil {
		return 0, false
	}
	if lo.Kind() == hi.Kind() || (numericKind(lo.Kind()) && numericKind(hi.Kind())) {
		return lo.Kind(), true
	}
	return 0, false
}

func numericKind(k docmodel.Kind) bool {
	return k == docmodel.KindInt || k == docmodel.KindFloat
}

// valueProbeBounds extracts the value interval a lookup constrains — the
// probed value itself for an equality probe ([v, v], both inclusive),
// the request's bounds for a range — so the planner can consult the
// partitions' observed min/max statistics. A decode failure or a fully
// open range drops the hint (no bounds pruning) rather than failing the
// plan.
func valueProbeBounds(req valueLookupReq) (lo, hi *docmodel.Value, loInc, hiInc, ok bool) {
	if !req.Range {
		v, err := docmodel.DecodeValue(req.Value)
		if err != nil {
			return nil, nil, false, false, false
		}
		return &v, &v, true, true, true
	}
	if req.Lo != nil {
		v, err := docmodel.DecodeValue(req.Lo)
		if err != nil {
			return nil, nil, false, false, false
		}
		lo = &v
	}
	if req.Hi != nil {
		v, err := docmodel.DecodeValue(req.Hi)
		if err != nil {
			return nil, nil, false, false, false
		}
		hi = &v
	}
	if lo == nil && hi == nil {
		return nil, nil, false, false, false
	}
	return lo, hi, req.LoInc, req.HiInc, true
}

// valueProbePlan computes the minimal probe set for a value predicate:
// which nodes to call and, per node, which of its partitions to consult.
// For each settled partition the candidates are its read-side owners
// that are alive ring members (the postings live on exactly one of them
// — the answering owner at index time — and each candidate's own
// statistics decide whether it is probed, so a quarantined owner still
// holding the partition's postings keeps answering). Returns the plan
// plus the number of partitions pruned by statistics and the number
// routed through the open-window broadcast fallback.
//
// staleReads (the WithStaleReads call option) turns the open-window
// fallback off: a partition mid-hand-off is treated like a settled one
// and probed on its read-side owners only. The probe may then miss rows
// whose index entry already moved to the joining side — the caller
// traded that staleness for not broadcasting under churn.
func (e *Engine) valueProbePlan(req valueLookupReq, staleReads bool) (targets map[*dataNode][]int, pruned, windowed int) {
	targets = map[*dataNode][]int{}
	kind, haveKind := valueProbeKind(req)
	lo, hi, loInc, hiInc, haveBounds := valueProbeBounds(req)
	var ring []*dataNode // built lazily: only open windows need it
	for p := 0; p < e.smgr.Partitions(); p++ {
		if !staleReads && e.smgr.InHandoff(p) {
			windowed++
			if ring == nil {
				for _, dn := range e.dataNodes() {
					if dn.node.Alive() && e.smgr.InRing(dn.node.ID) {
						ring = append(ring, dn)
					}
				}
			}
			for _, dn := range ring {
				targets[dn] = append(targets[dn], p)
			}
			continue
		}
		matched := false
		consulted := false
		for _, owner := range e.smgr.ReadOwnersOf(p) {
			dn, ok := e.dataNode(owner)
			if !ok || !dn.node.Alive() || !e.smgr.InRing(owner) {
				continue
			}
			consulted = true
			// Path/kind admission first, then the observed value bounds:
			// a partition whose min/max provably excludes the probed
			// interval cannot match and is pruned from the fan-out.
			if dn.ix.Admits(p, req.Path, kind, haveKind) &&
				(!haveBounds || dn.ix.AdmitsValueRange(p, req.Path, lo, hi, loInc, hiInc)) {
				targets[dn] = append(targets[dn], p)
				matched = true
			}
		}
		// Only statistics rejections count as pruning; a partition with no
		// reachable candidate at all (every read owner dead or off-ring) is
		// a coverage gap, not a prune — the broadcast could not have
		// reached it either, but the counter must not claim credit for it.
		if consulted && !matched {
			pruned++
		}
	}
	return targets, pruned, windowed
}

// probeValueTargets calls each planned node concurrently with its
// partition filter and gathers raw replies in node order.
func (e *Engine) probeValueTargets(ctx context.Context, req valueLookupReq, targets map[*dataNode][]int) ([][]byte, error) {
	nodes := make([]*dataNode, 0, len(targets))
	for dn := range targets {
		nodes = append(nodes, dn)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].node.ID.Num < nodes[j].node.ID.Num })
	payloads := make(map[*dataNode][]byte, len(nodes))
	for _, dn := range nodes {
		r := req
		r.Parts = targets[dn]
		sort.Ints(r.Parts)
		payloads[dn] = mustJSON(r)
	}
	return e.callEach(ctx, nodes, msgValueLookup, func(dn *dataNode) []byte { return payloads[dn] })
}
