package core

import (
	"context"
	"fmt"

	"impliance/internal/annot"
	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/plan"
	"impliance/internal/query"
)

// System-supplied views (paper Figure 2): native and annotation documents
// re-exposed to SQL "without having to rewrite the entire application to
// use new APIs".

// registerSystemViews installs the built-in views at boot.
func (e *Engine) registerSystemViews() {
	// sentiments: the sentiment annotations as a relational table.
	e.catalog.Register(query.NewView("sentiments",
		expr.And(expr.MediaTypeIs(annot.MediaAnnotation), expr.Exists("/score")),
		map[string]string{
			"base":          "/base",
			"score":         "/score",
			"label":         "/label",
			"positive_hits": "/positive_hits",
			"negative_hits": "/negative_hits",
		}))
	// entities: one row per entity annotation document.
	e.catalog.Register(query.NewView("entities",
		expr.And(expr.MediaTypeIs(annot.MediaAnnotation), expr.Exists("/entities")),
		map[string]string{
			"base":  "/base",
			"count": "/count",
			"type":  "/entities/type",
			"norm":  "/entities/norm",
		}))
	// documents: generic metadata over every base document.
	e.catalog.Register(query.NewView("documents",
		expr.Not(expr.MediaTypeIs(annot.MediaAnnotation)),
		map[string]string{
			"text": "/text",
		}))
}

// RegisterView adds an application view over the native documents.
func (e *Engine) RegisterView(name string, base expr.Expr, attrs map[string]string) {
	e.catalog.Register(query.NewView(name, base, attrs))
}

// SQLResult is a completed SQL query: column labels and value rows.
type SQLResult struct {
	Columns []string
	Rows    [][]docmodel.Value
	Plan    *plan.Plan
}

// ExecSQL parses, compiles, and executes a SQL statement against the view
// catalog — the Figure 2 path from SQL applications to native documents.
func (e *Engine) ExecSQL(sql string) (*SQLResult, error) {
	return e.ExecSQLContext(context.Background(), sql)
}

// ExecSQLContext is ExecSQL under a request lifecycle; the options
// thread through to the compiled query's execution (see RunContext).
func (e *Engine) ExecSQLContext(ctx context.Context, sql string, opts ...CallOption) (*SQLResult, error) {
	st, err := query.ParseSQL(sql)
	if err != nil {
		return nil, err
	}
	compiled, err := st.Compile(e.catalog)
	if err != nil {
		return nil, err
	}
	res, err := e.RunContext(ctx, compiled.Query, opts...)
	if err != nil {
		return nil, err
	}
	out := &SQLResult{Columns: compiled.Columns, Plan: res.Plan}

	if compiled.Query.GroupBy != nil {
		// Aggregated: row columns are group keys then aggregates; project
		// them into the select-list order.
		spec := compiled.Query.GroupBy
		for _, r := range res.Rows {
			row := make([]docmodel.Value, 0, len(compiled.Items))
			aggIdx := 0
			for _, it := range compiled.Items {
				if it.IsAgg {
					row = append(row, r.Cols[len(spec.By)+aggIdx])
					aggIdx++
					continue
				}
				gi, err := groupKeyIndex(st.GroupBy, it.Attr)
				if err != nil {
					return nil, err
				}
				row = append(row, r.Cols[gi])
			}
			out.Rows = append(out.Rows, row)
		}
		return out, nil
	}

	// Plain projection: map each result document through the view.
	for _, r := range res.Rows {
		if len(r.Docs) == 0 {
			continue
		}
		d := r.Docs[0]
		row := make([]docmodel.Value, 0, len(compiled.Items))
		for _, it := range compiled.Items {
			path, err := compiled.View.PathOf(it.Attr)
			if err != nil {
				return nil, err
			}
			row = append(row, d.First(path))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func groupKeyIndex(groupBy []string, attr string) (int, error) {
	for i, g := range groupBy {
		if equalFold(g, attr) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: %s not in GROUP BY", attr)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// NativeToXML exports a document's body as XML (the XML view of
// Figure 2). It lives here rather than in package ingest so callers reach
// every Figure 2 projection through the engine.
func (e *Engine) ViewAsRow(viewName string, id docmodel.DocID) (docmodel.Value, error) {
	v, err := e.catalog.Lookup(viewName)
	if err != nil {
		return docmodel.Null, err
	}
	d, err := e.Get(id)
	if err != nil {
		return docmodel.Null, err
	}
	return v.RowFromDoc(d), nil
}
