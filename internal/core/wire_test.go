package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/index"
)

func groupSpecFixture() expr.GroupSpec {
	return expr.GroupSpec{
		By:   []string{"/cat"},
		Aggs: []expr.AggSpec{{Kind: expr.AggCount}, {Kind: expr.AggSum, Path: "/val"}},
	}
}

func wireDoc(seq uint64, text string) *docmodel.Document {
	return &docmodel.Document{
		ID:        docmodel.DocID{Origin: 7, Seq: seq},
		Version:   1,
		MediaType: "text/plain",
		Source:    "wire-test",
		Root:      docmodel.Object(docmodel.F("text", docmodel.String(text))),
	}
}

func TestEncodeDecodeDocsRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 17} {
		docs := make([]*docmodel.Document, n)
		for i := range docs {
			docs[i] = wireDoc(uint64(i+1), "payload")
		}
		raw := encodeDocs(docs)
		got, err := decodeDocs(raw)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d", n, len(got))
		}
		for i, d := range got {
			if d.ID != docs[i].ID || d.Version != docs[i].Version {
				t.Errorf("doc %d header mismatch: %+v", i, d)
			}
			if d.First("/text").StringVal() != "payload" {
				t.Errorf("doc %d body mismatch", i)
			}
		}
	}
}

func TestDecodeDocsRejectsTruncation(t *testing.T) {
	raw := encodeDocs([]*docmodel.Document{wireDoc(1, "abc"), wireDoc(2, "def")})
	// Every proper prefix must fail cleanly, never panic or succeed.
	for cut := 0; cut < len(raw); cut++ {
		if _, err := decodeDocs(raw[:cut]); err == nil {
			t.Errorf("truncation at %d/%d decoded successfully", cut, len(raw))
		}
	}
}

func TestDecodeDocsRejectsTrailingGarbage(t *testing.T) {
	raw := encodeDocs([]*docmodel.Document{wireDoc(1, "abc")})
	if _, err := decodeDocs(append(append([]byte{}, raw...), 0xFF)); err == nil {
		t.Error("trailing bytes must be rejected")
	}
}

func TestDecodeDocsRejectsCorruptHeader(t *testing.T) {
	if _, err := decodeDocs(nil); err == nil {
		t.Error("empty input must fail")
	}
	// A count far beyond the payload must fail, not allocate unbounded.
	huge := binary.AppendUvarint(nil, 1<<40)
	if _, err := decodeDocs(huge); err == nil {
		t.Error("absurd count with no payload must fail")
	}
	// Length prefix larger than the remaining bytes.
	bad := binary.AppendUvarint(nil, 1)
	bad = binary.AppendUvarint(bad, 1<<30)
	bad = append(bad, 0x01)
	if _, err := decodeDocs(bad); err == nil {
		t.Error("oversized length prefix must fail")
	}
	// Valid framing around a corrupt document body.
	body := bytes.Repeat([]byte{0xEE}, 24)
	corrupt := binary.AppendUvarint(nil, 1)
	corrupt = binary.AppendUvarint(corrupt, uint64(len(body)))
	corrupt = append(corrupt, body...)
	if _, err := decodeDocs(corrupt); err == nil {
		t.Error("corrupt document body must fail")
	}
}

func TestHitsWireRoundTrip(t *testing.T) {
	hits := []index.Hit{
		{ID: docmodel.DocID{Origin: 1, Seq: 5}, Score: 2.5},
		{ID: docmodel.DocID{Origin: 2, Seq: 9}, Score: 0.25},
	}
	back, err := hitsFromWire(hitsToWire(hits))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != hits[0] || back[1] != hits[1] {
		t.Errorf("round trip = %v", back)
	}
	if _, err := hitsFromWire([]searchHit{{ID: "not-an-id", Score: 1}}); err == nil {
		t.Error("malformed hit ID must fail")
	}
}

func TestParseIDsErrors(t *testing.T) {
	ids, err := parseIDs([]string{"1.5", "4294967295.18446744073709551615"})
	if err != nil || len(ids) != 2 {
		t.Fatalf("parse valid: %v %v", ids, err)
	}
	for _, bad := range []string{"", "x.y", "1.", ".2", "1.2.3", "-1.2"} {
		if _, err := parseIDs([]string{bad}); err == nil {
			t.Errorf("parseIDs(%q) must fail", bad)
		}
	}
}

func TestAggSpecWireRoundTrip(t *testing.T) {
	spec := specToWire(groupSpecFixture())
	back := spec.spec()
	if len(back.By) != 1 || back.By[0] != "/cat" {
		t.Errorf("group-by lost: %v", back.By)
	}
	if len(back.Aggs) != 2 || back.Aggs[1].Path != "/val" {
		t.Errorf("aggs lost: %v", back.Aggs)
	}
}
