package core
