// Package core assembles the Impliance appliance: it boots the simulated
// fabric (data/grid/cluster nodes), wires per-data-node stores and
// indexes, runs the asynchronous indexing/annotation pipeline, executes
// planned queries across the nodes, and hosts the discovery and
// virtualization machinery. This is the "single system image" of paper
// §3.3 — clients see one engine; placement, replication, and parallelism
// are internal.
//
// Ownership boundary: core owns *orchestration*, not placement or search
// state. The engine's own state is the node topology (which fabric
// nodes, stores, and indexes exist — engine.go), the central document-ID
// allocator, and instrumentation counters. Every routing decision is
// *derived* at the point of use from internal/virt's partition map
// (hash(DocID) → partition → owners, dual-ownership windows included)
// and, for value predicates, from internal/index's per-partition path
// statistics (valueroute.go). The split keeps each path honest:
//
//   - ingestpath.go routes writes to the partition's owners (both sides
//     of an open hand-off window) and schedules derived work;
//   - querypath.go routes point fetches to ≤ RF owners, value probes to
//     the partitions that can match, and keeps scans/aggregates at one
//     answering node per partition;
//   - membership.go and discoverpath.go drive joins, failures, and
//     rebalances through virt's transfer plans, moving data and handing
//     indexes (with their statistics) to the new owners;
//   - handlers.go serves the node-local messages against store and
//     index, which hold the only per-node state.
//
// See docs/ARCHITECTURE.md for the full layer map.
package core
