package core

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"impliance/internal/baseline/costopt"
	"impliance/internal/docmodel"
	"impliance/internal/exec"
	"impliance/internal/expr"
	"impliance/internal/fabric"
	"impliance/internal/index"
	"impliance/internal/plan"
	"impliance/internal/query"
	"impliance/internal/sched"
)

// Result is a completed query: result rows plus the plan that produced
// them (EXPLAIN comes for free).
type Result struct {
	Rows []*exec.Row
	Plan *plan.Plan
}

// Run plans and executes a logical query across the appliance.
func (e *Engine) Run(q plan.Query) (*Result, error) {
	return e.RunContext(context.Background(), q)
}

// RunContext plans and executes a logical query under a request
// lifecycle: the context (and any WithDeadline option) bounds the
// call, cancellation abandons outstanding node calls and stops
// scheduling new partition fan-out, and the remaining options thread
// per-call read knobs down to the partition layer. For incremental
// delivery use RunStream instead — RunContext materializes the full
// result set.
func (e *Engine) RunContext(ctx context.Context, q plan.Query, opts ...CallOption) (*Result, error) {
	ctx, cancel, o := resolveOpts(ctx, opts)
	defer cancel()
	// Fast-reject before planning: an overloaded tenant costs one
	// bucket lookup, no plan, no fan-out.
	if err := e.admitOp(sched.Interactive, o.tenant); err != nil {
		return nil, err
	}
	if o.limit > 0 && (q.K == 0 || o.limit < q.K) {
		q.K = o.limit
	}
	if q.Filter.IsTrue() {
		q.Filter = expr.True()
	}
	p := e.planFor(q)
	rows, err := e.execute(ctx, p, q, o)
	if err != nil {
		return nil, err
	}
	return &Result{Rows: rows, Plan: p}, nil
}

// planFor plans with the simple planner, or — for the E7 comparator —
// the cost-based optimizer over whatever statistics were last collected.
func (e *Engine) planFor(q plan.Query) *plan.Plan {
	if e.cfg.UseCostOptimizer {
		e.optMu.Lock()
		opt := e.opt
		e.optMu.Unlock()
		if opt != nil {
			return opt.Plan(q)
		}
	}
	return e.planner.Plan(q)
}

// CollectStatistics runs the full statistics pass the cost-based
// comparator needs (the maintenance burden the simple planner avoids).
// Statistics are a snapshot: they do not track subsequent ingestion.
func (e *Engine) CollectStatistics() {
	var docs []*docmodel.Document
	for _, dn := range e.aliveData() {
		dn.store.Scan(func(d *docmodel.Document) bool {
			docs = append(docs, d)
			return true
		})
	}
	e.optMu.Lock()
	e.opt = costopt.NewOptimizer(costopt.CollectStats(docs))
	e.optMu.Unlock()
}

// execute interprets a plan against the cluster.
func (e *Engine) execute(ctx context.Context, p *plan.Plan, q plan.Query, o callOpts) ([]*exec.Row, error) {
	// Fast path first: pushed-down distributed aggregation (scan access,
	// no join) never materializes the matching documents at all — data
	// nodes compute partials, a grid node merges (§3.1, §3.3).
	if p.GroupBy != nil && p.Join == plan.JoinNone && p.Access.Kind == plan.AccessScan && !e.cfg.DisablePushdown {
		return e.distributedAggregate(ctx, p.Residual, *p.GroupBy)
	}

	outer, err := e.gather(ctx, p, o)
	if err != nil {
		return nil, err
	}
	var op exec.Operator = outer
	if p.Join != plan.JoinNone && p.JoinSpec != nil {
		op, err = e.buildJoin(ctx, p, op, o)
		if err != nil {
			return nil, err
		}
	}
	if p.GroupBy != nil {
		e.attributeWork(sched.TaskAgg)
		op = exec.NewGroupAgg(op, 0, *p.GroupBy)
	}
	if p.OrderBy != nil {
		e.attributeWork(sched.TaskSort)
		key := exec.RowKey{ColIdx: -1, DocIdx: 0, Path: p.OrderBy.Path, ByScore: p.OrderBy.ByScore}
		if p.GroupBy != nil {
			// After aggregation rows have only columns; order by first col.
			key = exec.RowKey{ColIdx: 0}
		}
		if p.K > 0 {
			op = exec.NewTopK(op, key, p.OrderBy.Desc, p.K)
		} else {
			op = exec.NewSort(op, key, p.OrderBy.Desc)
		}
	} else if p.K > 0 {
		op = exec.NewLimit(op, p.K)
	}
	return exec.CollectContext(ctx, op)
}

// gather materializes the access path into an operator over outer rows.
func (e *Engine) gather(ctx context.Context, p *plan.Plan, o callOpts) (exec.Operator, error) {
	switch p.Access.Kind {
	case plan.AccessKeyword:
		k := p.K
		if p.Join != plan.JoinNone || p.GroupBy != nil {
			k = 0 // downstream operators need the full candidate set
		}
		hits, err := e.searchAllNodes(ctx, p.Access.Keyword, k)
		if err != nil {
			return nil, err
		}
		docs, scores, err := e.fetchHits(ctx, hits, o)
		if err != nil {
			return nil, err
		}
		rows := make([]*exec.Row, 0, len(docs))
		for i, d := range docs {
			if !p.Residual.Eval(d) {
				continue
			}
			rows = append(rows, &exec.Row{Docs: []*docmodel.Document{d}, Score: scores[i]})
		}
		return &rowSource{rows: rows}, nil

	case plan.AccessValueEq, plan.AccessValueRange:
		req := valueLookupReq{Path: p.Access.Path}
		if p.Access.Kind == plan.AccessValueEq {
			req.Value = docmodel.EncodeValue(p.Access.Value)
		} else {
			req.Range = true
			req.LoInc, req.HiInc = p.Access.LoInc, p.Access.HiInc
			if p.Access.Lo != nil {
				req.Lo = docmodel.EncodeValue(*p.Access.Lo)
			}
			if p.Access.Hi != nil {
				req.Hi = docmodel.EncodeValue(*p.Access.Hi)
			}
		}
		docs, err := e.lookupAndFetch(ctx, req, o)
		if err != nil {
			return nil, err
		}
		rows := make([]*exec.Row, 0, len(docs))
		for _, d := range docs {
			if p.Residual.Eval(d) {
				rows = append(rows, &exec.Row{Docs: []*docmodel.Document{d}})
			}
		}
		return &rowSource{rows: rows}, nil

	case plan.AccessScan:
		docs, err := e.distributedScan(ctx, p.Residual)
		if err != nil {
			return nil, err
		}
		rows := make([]*exec.Row, 0, len(docs))
		for _, d := range docs {
			rows = append(rows, &exec.Row{Docs: []*docmodel.Document{d}})
		}
		return &rowSource{rows: rows}, nil

	default:
		return nil, fmt.Errorf("core: unsupported access kind %s", p.Access.Kind)
	}
}

// distributedScan runs the (possibly pushed-down) scan on every data node
// and returns deduplicated latest versions. With pushdown the filter runs
// inside the storage nodes and only matches cross the interconnect; the
// ablation ships everything and filters engine-side (adaptively). Each
// node is paged through independently (scanNodePaged), so no single
// reply — and no node-side buffer — ever holds more than a page.
func (e *Engine) distributedScan(ctx context.Context, filter expr.Expr) ([]*docmodel.Document, error) {
	kind := msgScanFiltered
	var payload []byte
	if e.cfg.DisablePushdown {
		kind = msgScanAll
	} else {
		payload = filter.Encode()
	}
	nodes := e.ringNodes()
	perNode := make([][]*docmodel.Document, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, dn := range nodes {
		wg.Add(1)
		go func(i int, dn *dataNode) {
			defer wg.Done()
			perNode[i], errs[i] = e.scanNodePaged(ctx, dn, kind, payload, nil)
		}(i, dn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	seen := map[docmodel.DocID]struct{}{}
	var docs []*docmodel.Document
	for _, batch := range perNode {
		for _, d := range batch {
			if _, dup := seen[d.ID]; dup {
				continue // replicas: count each document once
			}
			seen[d.ID] = struct{}{}
			if e.cfg.DisablePushdown && !filter.Eval(d) {
				continue
			}
			docs = append(docs, d)
		}
	}
	sortDocs(docs)
	return docs, nil
}

// distributedAggregate runs two-phase aggregation: partials on data
// nodes, merge on a grid node, finalize here.
//
// With the partial cache enabled the data-node phase is partition-routed:
// each partition's partial is computed by its answering owner and cached
// under the partition's routing generation and write epoch, so a repeated
// aggregate recomputes only the partitions that changed (wrote or moved)
// since the last run — the rest merge from cache without touching the
// fabric. With the cache disabled, or under persistent churn, the legacy
// node-level fan-out runs unchanged.
func (e *Engine) distributedAggregate(ctx context.Context, filter expr.Expr, spec expr.GroupSpec) ([]*exec.Row, error) {
	req := specToWire(spec)
	req.Filter = filter.Encode()
	var partials [][]byte
	var err error
	if e.caches.PartialEnabled() {
		partials, err = e.aggPartials(ctx, req)
	} else {
		payload := mustJSON(req)
		partials, err = e.fanOutData(ctx, msgAggPartial, func(*dataNode) []byte { return payload })
	}
	if err != nil {
		return nil, err
	}
	gridID, err := e.placer.Place(sched.TaskAgg)
	if err != nil {
		return nil, err
	}
	merged, err := e.fab.CallCtx(ctx, gridID, msgMerge, mustJSON(mergeReq{
		By: spec.By, Aggs: req.Aggs, Partials: partials,
	}))
	if err != nil {
		return nil, err
	}
	state, err := expr.DecodePartials(spec, merged)
	if err != nil {
		return nil, err
	}
	var rows []*exec.Row
	for _, gr := range state.Rows() {
		row := &exec.Row{}
		row.Cols = append(row.Cols, gr.Key...)
		row.Cols = append(row.Cols, gr.Aggs...)
		rows = append(rows, row)
	}
	return rows, nil
}

// aggPartials gathers one aggregate partial per non-empty partition,
// serving cached ones and fanning out to the answering owners only for
// the rest. Partitions inside an open hand-off window are computed (by
// their pre-change answering owner, whose data is complete) but not
// cached. The plan → probe window is bracketed by the membership
// generation like the value-probe router; persistent churn degrades to
// the legacy node-level broadcast.
func (e *Engine) aggPartials(ctx context.Context, req aggReq) ([][]byte, error) {
	digest := aggDigest(req)
	for attempt := 0; ; attempt++ {
		gen := e.smgr.MembershipGeneration()
		type fill struct{ pgen, epoch uint64 }
		var (
			out     [][]byte
			targets = map[*dataNode][]int{}
			fills   = map[int]fill{}
		)
		for p := 0; p < e.smgr.Partitions(); p++ {
			pgen := e.smgr.PartitionGen(p)
			if data, ok := e.caches.GetPartial(p, digest, pgen); ok {
				out = append(out, data)
				continue
			}
			if e.smgr.PartitionDocCount(p) == 0 {
				continue // nothing registered there: no partial to compute
			}
			epoch := e.caches.Epoch(p)
			dn, ok := e.answeringDataNode(p)
			if !ok {
				continue // no reachable owner: the node fan-out could not cover it either
			}
			targets[dn] = append(targets[dn], p)
			if !e.smgr.InHandoff(p) {
				fills[p] = fill{pgen: pgen, epoch: epoch}
			}
		}
		if len(targets) == 0 {
			return out, nil
		}
		nodes := make([]*dataNode, 0, len(targets))
		for dn := range targets {
			nodes = append(nodes, dn)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].node.ID.Num < nodes[j].node.ID.Num })
		payloads := make(map[*dataNode][]byte, len(nodes))
		for _, dn := range nodes {
			r := req
			r.Parts = targets[dn]
			sort.Ints(r.Parts)
			payloads[dn] = mustJSON(r)
		}
		results, err := e.callEach(ctx, nodes, msgAggPartial, func(dn *dataNode) []byte { return payloads[dn] })
		if err != nil {
			return nil, err
		}
		if e.smgr.MembershipGeneration() != gen {
			if attempt < 2 {
				continue // membership moved mid-probe: re-plan, nothing cached
			}
			payload := mustJSON(aggReq{Filter: req.Filter, By: req.By, Aggs: req.Aggs})
			return e.fanOutData(ctx, msgAggPartial, func(*dataNode) []byte { return payload })
		}
		for _, raw := range results {
			var pws []aggPartialWire
			if err := json.Unmarshal(raw, &pws); err != nil {
				return nil, err
			}
			for _, pw := range pws {
				out = append(out, pw.Partial)
				if f, ok := fills[pw.Part]; ok {
					e.caches.PutPartial(pw.Part, digest, f.pgen, f.epoch, pw.Partial)
				}
			}
		}
		return out, nil
	}
}

// aggDigest keys a partition's aggregate partial by the full query shape:
// filter bytes, group-by paths, and aggregate specs.
func aggDigest(req aggReq) uint64 {
	h := fnv.New64a()
	h.Write(req.Filter)
	for _, by := range req.By {
		h.Write([]byte{0})
		h.Write([]byte(by))
	}
	for _, a := range req.Aggs {
		h.Write([]byte{1, a.Kind})
		h.Write([]byte(a.Path))
	}
	return h.Sum64()
}

// answeringDataNode resolves the partition's answering owner — the first
// eligible read-side owner — to a local data node.
func (e *Engine) answeringDataNode(p int) (*dataNode, bool) {
	owner, ok := e.smgr.AnsweringNode(p, func(id fabric.NodeID) bool {
		n, ok := e.dataNode(id)
		return ok && e.eligible(n)
	})
	if !ok {
		return nil, false
	}
	return e.dataNode(owner)
}

// buildJoin attaches the planned join operator.
func (e *Engine) buildJoin(ctx context.Context, p *plan.Plan, outer exec.Operator, o callOpts) (exec.Operator, error) {
	spec := p.JoinSpec
	rf := spec.RightFilter
	if rf.IsTrue() {
		rf = expr.True()
	}
	e.attributeWork(sched.TaskJoin)
	switch p.Join {
	case plan.JoinINL:
		probe := func(v docmodel.Value) []*docmodel.Document {
			docs, err := e.lookupAndFetch(ctx, valueLookupReq{
				Path:  spec.RightPath,
				Value: docmodel.EncodeValue(v),
			}, o)
			if err != nil {
				return nil
			}
			out := docs[:0]
			for _, d := range docs {
				if rf.Eval(d) {
					out = append(out, d)
				}
			}
			return out
		}
		return exec.NewIndexedNLJoin(outer, 0, spec.LeftPath, probe), nil
	case plan.JoinHash:
		inner, err := e.distributedScan(ctx, rf)
		if err != nil {
			return nil, err
		}
		build := exec.NewScan(exec.NewSliceCursor(inner), expr.True())
		return exec.NewHashJoin(build, outer, 0, spec.RightPath, 0, spec.LeftPath), nil
	default:
		return nil, fmt.Errorf("core: unsupported join method %s", p.Join)
	}
}

// lookupAndFetch resolves a value predicate through the partition-routed
// probe plan (valueroute.go): the partition map plus per-partition path
// statistics name the minimal node set whose partitions can contain the
// (path, value), each selected node is probed with its partition filter,
// and partitions inside an open dual-ownership window fall back to an
// all-ring probe. Matching documents are then fetched from their
// partition owners — never from the reporting node, whose copy could lag
// behind the owner's latest version. A call carrying WithStaleReads
// skips the open-window fallback and probes read-side owners only. The
// BroadcastValueProbes ablation restores the pre-router behavior: every
// ring member probes its whole value index.
func (e *Engine) lookupAndFetch(ctx context.Context, req valueLookupReq, o callOpts) ([]*docmodel.Document, error) {
	e.valueProbes.lookups.Add(1)
	var results [][]byte
	var err error
	if e.cfg.BroadcastValueProbes {
		payload := mustJSON(req)
		results, err = e.fanOutData(ctx, msgValueLookup, func(*dataNode) []byte { return payload })
	} else {
		// Plan → probe is not atomic against membership changes: a window
		// opening mid-flight can move a partition's postings off the node
		// the plan selected before the probe arrives. Bracket the probe
		// with the membership generation and re-plan when it moved; churn
		// is rare, so the retry is almost never taken, and persistent
		// churn degrades to the always-correct broadcast.
		for attempt := 0; ; attempt++ {
			gen := e.smgr.MembershipGeneration()
			targets, pruned, windowed := e.valueProbePlan(req, o.staleReads)
			results, err = e.probeValueTargets(ctx, req, targets)
			if err != nil {
				return nil, err
			}
			if e.smgr.MembershipGeneration() == gen {
				e.valueProbes.partitionsPruned.Add(uint64(pruned))
				if windowed > 0 {
					e.valueProbes.windowFallbacks.Add(1)
				}
				break
			}
			if attempt == 2 {
				payload := mustJSON(req)
				results, err = e.fanOutData(ctx, msgValueLookup, func(*dataNode) []byte { return payload })
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	e.valueProbes.probes.Add(uint64(len(results)))
	seen := map[docmodel.DocID]struct{}{}
	var ids []docmodel.DocID
	for _, raw := range results {
		var resp idListResp
		if err := json.Unmarshal(raw, &resp); err != nil {
			return nil, err
		}
		parsed, err := parseIDs(resp.IDs)
		if err != nil {
			return nil, err
		}
		for _, id := range parsed {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				ids = append(ids, id)
			}
		}
	}
	fetched, err := e.fetchByID(ctx, ids, o)
	if err != nil {
		return nil, err
	}
	docs := make([]*docmodel.Document, 0, len(fetched))
	for _, id := range ids {
		if d, ok := fetched[id]; ok {
			docs = append(docs, d)
		}
	}
	sortDocs(docs)
	return docs, nil
}

// fetchHits retrieves the documents behind search hits. Hits that land on
// *annotation* documents resolve to their base document — the paper's
// point that annotations enrich retrieval of the underlying data ("the
// end user uses an interactive retrieval interface... optionally making
// use of the annotations added by the discovery process", §2.2). A base
// document hit both directly and via its annotations keeps its best
// score; results come back score-descending, deduplicated.
func (e *Engine) fetchHits(ctx context.Context, hits []index.Hit, o callOpts) ([]*docmodel.Document, []float64, error) {
	fetched, err := e.fetchByID(ctx, hitIDs(hits), o)
	if err != nil {
		return nil, nil, err
	}
	// Resolve annotation hits to their bases.
	bestScore := map[docmodel.DocID]float64{}
	var order []docmodel.DocID
	var baseNeeded []docmodel.DocID
	for _, h := range hits {
		d, ok := fetched[h.ID]
		if !ok {
			continue // index slightly ahead of placement: skip ghost hit
		}
		target := h.ID
		if d.IsAnnotation() {
			target = d.Annotates
			if _, have := fetched[target]; !have {
				baseNeeded = append(baseNeeded, target)
			}
		}
		if s, seen := bestScore[target]; !seen {
			bestScore[target] = h.Score
			order = append(order, target)
		} else if h.Score > s {
			bestScore[target] = h.Score
		}
	}
	if len(baseNeeded) > 0 {
		bases, err := e.fetchByID(ctx, baseNeeded, o)
		if err != nil {
			return nil, nil, err
		}
		for id, d := range bases {
			fetched[id] = d
		}
	}
	var docs []*docmodel.Document
	var scores []float64
	for _, id := range order {
		if d, ok := fetched[id]; ok {
			docs = append(docs, d)
			scores = append(scores, bestScore[id])
		}
	}
	// Dedup can disturb score order; restore descending.
	sortDocsByScore(docs, scores)
	return docs, scores, nil
}

func hitIDs(hits []index.Hit) []docmodel.DocID {
	out := make([]docmodel.DocID, len(hits))
	for i, h := range hits {
		out[i] = h.ID
	}
	return out
}

// fetchByID batch-fetches documents from their owning nodes under the
// call's consistency rule. The per-node loop checks the context between
// batches, so a cancelled caller stops scheduling the remaining nodes'
// fetches instead of finishing the gather it no longer wants.
//
// The fetch reads through the point cache: generation-current entries
// (point and negative) are served locally — a negative hit skips the ID
// entirely, matching the batch handler's silent skip of missing documents
// — and only the misses go over the fabric. Like GetContext, fills happen
// only under ReadOwner consistency, and an ID a successful owner batch
// did not return is negative-filled.
func (e *Engine) fetchByID(ctx context.Context, ids []docmodel.DocID, o callOpts) (map[docmodel.DocID]*docmodel.Document, error) {
	out := map[docmodel.DocID]*docmodel.Document{}
	type fill struct {
		part        int
		pgen, epoch uint64
	}
	fills := map[docmodel.DocID]fill{}
	perNode := map[*dataNode][]docmodel.DocID{}
	for _, id := range ids {
		part := e.smgr.PartitionOf(id)
		pgen := e.smgr.PartitionGen(part)
		if d, neg, ok := e.caches.GetDoc(id, pgen, o.staleReads); ok {
			e.smgr.RecordLoad(id) // cached fetch is still demand on the partition
			if !neg {
				out[id] = d
			}
			continue
		}
		epoch := e.caches.Epoch(part)
		dn, err := e.holderFor(id, o.consistency)
		if err != nil {
			continue
		}
		perNode[dn] = append(perNode[dn], id)
		if o.consistency == ReadOwner {
			fills[id] = fill{part: part, pgen: pgen, epoch: epoch}
		}
	}
	for dn, nodeIDs := range perNode {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		raw, err := e.fab.CallCtx(ctx, dn.node.ID, msgGetBatch, mustJSON(getBatchReq{IDs: idStrings(nodeIDs)}))
		if err != nil {
			return nil, err
		}
		batch, err := decodeDocs(raw)
		if err != nil {
			return nil, err
		}
		got := make(map[docmodel.DocID]struct{}, len(batch))
		for _, d := range batch {
			out[d.ID] = d
			got[d.ID] = struct{}{}
			if f, ok := fills[d.ID]; ok {
				e.caches.PutDoc(d.ID, f.part, d, f.pgen, f.epoch)
			}
		}
		for _, id := range nodeIDs {
			if _, ok := got[id]; ok {
				continue
			}
			if f, ok := fills[id]; ok {
				// The owner answered and did not return the ID: remember the
				// miss so repeated ghost hits stop costing round-trips.
				e.caches.PutNegative(id, f.part, f.pgen, f.epoch)
			}
		}
	}
	return out, nil
}

func sortDocsByScore(docs []*docmodel.Document, scores []float64) {
	idx := make([]int, len(docs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return docs[idx[a]].ID.Compare(docs[idx[b]].ID) < 0
	})
	nd := make([]*docmodel.Document, len(docs))
	ns := make([]float64, len(scores))
	for i, j := range idx {
		nd[i], ns[i] = docs[j], scores[j]
	}
	copy(docs, nd)
	copy(scores, ns)
}

// Search is the out-of-the-box ranked keyword interface (paper §3.2.1),
// returning hydrated documents with scores.
func (e *Engine) Search(keyword string, k int) ([]*exec.Row, error) {
	return e.SearchContext(context.Background(), keyword, k)
}

// SearchContext is Search under a request lifecycle (see RunContext).
func (e *Engine) SearchContext(ctx context.Context, keyword string, k int, opts ...CallOption) ([]*exec.Row, error) {
	res, err := e.RunContext(ctx, plan.Query{Keyword: keyword, Filter: expr.True(), K: k,
		OrderBy: &plan.SortSpec{ByScore: true, Desc: true}}, opts...)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// Facets executes one faceted-search interaction step (paper §3.2.1).
func (e *Engine) Facets(req query.FacetRequest) (*query.FacetResult, error) {
	return e.FacetsContext(context.Background(), req)
}

// FacetsContext is Facets under a request lifecycle: cancellation stops
// the per-dimension and per-bucket fan-outs between steps as well as
// abandoning the in-flight ones.
func (e *Engine) FacetsContext(ctx context.Context, req query.FacetRequest, opts ...CallOption) (*query.FacetResult, error) {
	ctx, cancel, o := resolveOpts(ctx, opts)
	defer cancel()
	if err := e.admitOp(sched.Interactive, o.tenant); err != nil {
		return nil, err
	}
	req.Normalize()
	// Candidate set: keyword hits refined by the drill-down predicate, or
	// a pushed-down scan when there is no keyword.
	var hits []index.Hit
	var candidates []docmodel.DocID
	if req.Keyword != "" {
		all, err := e.searchAllNodes(ctx, req.Keyword, 0)
		if err != nil {
			return nil, err
		}
		docs, scores, err := e.fetchHits(ctx, all, o)
		if err != nil {
			return nil, err
		}
		for i, d := range docs {
			if req.Refine.Eval(d) {
				candidates = append(candidates, d.ID)
				hits = append(hits, index.Hit{ID: d.ID, Score: scores[i]})
			}
		}
	} else {
		docs, err := e.distributedScan(ctx, req.Refine)
		if err != nil {
			return nil, err
		}
		for _, d := range docs {
			candidates = append(candidates, d.ID)
			hits = append(hits, index.Hit{ID: d.ID})
		}
	}
	result := &query.FacetResult{Total: len(candidates)}
	if len(hits) > req.K {
		result.Hits = hits[:req.K]
	} else {
		result.Hits = hits
	}

	idStrs := idStrings(candidates)
	for dimIdx, dim := range req.Dimensions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		buckets, err := e.facetDim(ctx, dim, idStrs, req.FacetLimit)
		if err != nil {
			return nil, err
		}
		// OLAP flavor: per-bucket aggregates for the first dimension.
		if dimIdx == 0 && len(req.Aggregates) > 0 {
			for bi := range buckets {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				rows, err := e.distributedAggregate(ctx,
					query.Drill(req.Refine, dim, buckets[bi].Value),
					expr.GroupSpec{Aggs: req.Aggregates},
				)
				if err != nil {
					return nil, err
				}
				if len(rows) == 1 {
					buckets[bi].Aggregates = rows[0].Cols
				}
			}
		}
		result.Dimensions = append(result.Dimensions, query.FacetDimension{Path: dim, Buckets: buckets})
	}
	return result, nil
}

// facetDim merges facet counts for one dimension across the cluster.
//
// The fan-out is partition-routed: candidates are grouped by partition,
// each partition's count is requested from its read-side owners only —
// pruned entirely when no owner's path statistics admit the dimension
// there — and the per-partition result is cached under the partition's
// routing generation and write epoch. A steady-state repeat of the same
// facet interaction is then a local merge of cached partials, and a
// membership change recomputes only the moved partitions (their
// generation bump fences exactly their entries). Partitions inside an
// open hand-off window are counted by every ring member (the same rule
// value probes use — their postings are mid-hand-over) and not cached.
// Persistent churn, or a disabled partial cache, degrades to the legacy
// whole-index broadcast.
func (e *Engine) facetDim(ctx context.Context, path string, candidateIDs []string, limit int) ([]query.FacetBucket, error) {
	if !e.caches.PartialEnabled() {
		return e.facetDimBroadcast(ctx, path, candidateIDs, limit)
	}
	parsed, err := parseIDs(candidateIDs)
	if err != nil {
		return nil, err
	}
	byPart := map[int][]string{}
	for i, id := range parsed {
		p := e.smgr.PartitionOf(id)
		byPart[p] = append(byPart[p], candidateIDs[i])
	}
	parts := make([]int, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Ints(parts)

	for attempt := 0; ; attempt++ {
		gen := e.smgr.MembershipGeneration()
		type fill struct{ digest, pgen, epoch uint64 }
		var (
			cached  [][]facetBucketWire
			targets = map[*dataNode][]int{}
			fills   = map[int]fill{}
			ring    []*dataNode
		)
		for _, p := range parts {
			digest := facetDigest(path, byPart[p])
			pgen := e.smgr.PartitionGen(p)
			if data, ok := e.caches.GetPartial(p, digest, pgen); ok {
				var ws []facetBucketWire
				if err := json.Unmarshal(data, &ws); err != nil {
					return nil, err
				}
				cached = append(cached, ws)
				continue
			}
			epoch := e.caches.Epoch(p)
			if e.smgr.InHandoff(p) {
				// Mid-hand-off the postings can sit on either side: count on
				// every ring member and do not cache the answer.
				if ring == nil {
					ring = e.ringNodes()
				}
				for _, dn := range ring {
					targets[dn] = append(targets[dn], p)
				}
				continue
			}
			admitted := false
			for _, owner := range e.smgr.ReadOwnersOf(p) {
				dn, ok := e.dataNode(owner)
				if !ok || !e.eligible(dn) || !e.smgr.InRing(owner) {
					continue
				}
				if dn.ix.MayContainPath(p, path) {
					targets[dn] = append(targets[dn], p)
					admitted = true
				}
			}
			if admitted {
				fills[p] = fill{digest: digest, pgen: pgen, epoch: epoch}
			} else {
				// No owner has postings for the path in this partition:
				// remember the empty partial so the repeat skips the
				// statistics walk too.
				e.caches.PutPartial(p, digest, pgen, epoch, mustJSON([]facetBucketWire{}))
			}
		}

		fresh := map[int][]facetBucketWire{}
		if len(targets) > 0 {
			results, err := e.probeFacetTargets(ctx, path, byPart, targets)
			if err != nil {
				return nil, err
			}
			if e.smgr.MembershipGeneration() != gen {
				if attempt < 2 {
					continue // membership moved mid-probe: re-plan, nothing cached
				}
				return e.facetDimBroadcast(ctx, path, candidateIDs, limit)
			}
			for _, raw := range results {
				var pws []facetPartialWire
				if err := json.Unmarshal(raw, &pws); err != nil {
					return nil, err
				}
				for _, pw := range pws {
					fresh[pw.Part] = mergeBucketWires(fresh[pw.Part], pw.Buckets)
				}
			}
			for p, ws := range fresh {
				if f, ok := fills[p]; ok {
					e.caches.PutPartial(p, f.digest, f.pgen, f.epoch, mustJSON(ws))
				}
			}
		}
		all := cached
		for _, p := range parts {
			if ws, ok := fresh[p]; ok {
				all = append(all, ws)
			}
		}
		return mergeFacetWires(all, limit)
	}
}

// facetDimBroadcast is the legacy facet fan-out: every ring member counts
// the candidates over its whole index, uncached. The ablation path, and
// the fallback under persistent membership churn.
func (e *Engine) facetDimBroadcast(ctx context.Context, path string, candidateIDs []string, limit int) ([]query.FacetBucket, error) {
	payload := mustJSON(facetsReq{Path: path, IDs: candidateIDs, Limit: 0})
	results, err := e.fanOutData(ctx, msgFacets, func(*dataNode) []byte { return payload })
	if err != nil {
		return nil, err
	}
	wires := make([][]facetBucketWire, 0, len(results))
	for _, raw := range results {
		var ws []facetBucketWire
		if err := json.Unmarshal(raw, &ws); err != nil {
			return nil, err
		}
		wires = append(wires, ws)
	}
	return mergeFacetWires(wires, limit)
}

// probeFacetTargets calls each planned node with its partition filter and
// the candidates of those partitions, gathering raw replies in node
// order.
func (e *Engine) probeFacetTargets(ctx context.Context, path string, byPart map[int][]string, targets map[*dataNode][]int) ([][]byte, error) {
	nodes := make([]*dataNode, 0, len(targets))
	for dn := range targets {
		nodes = append(nodes, dn)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].node.ID.Num < nodes[j].node.ID.Num })
	payloads := make(map[*dataNode][]byte, len(nodes))
	for _, dn := range nodes {
		parts := targets[dn]
		sort.Ints(parts)
		var ids []string
		for _, p := range parts {
			ids = append(ids, byPart[p]...)
		}
		payloads[dn] = mustJSON(facetsReq{Path: path, IDs: ids, Parts: parts})
	}
	return e.callEach(ctx, nodes, msgFacets, func(dn *dataNode) []byte { return payloads[dn] })
}

// facetDigest keys a partition's facet partial by dimension path and its
// (sorted) candidate IDs.
func facetDigest(path string, ids []string) uint64 {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	h := fnv.New64a()
	h.Write([]byte(path))
	for _, s := range sorted {
		h.Write([]byte{0})
		h.Write([]byte(s))
	}
	return h.Sum64()
}

// mergeBucketWires merges two wire-level bucket lists, summing counts of
// equal values (a windowed partition's counts arrive from several nodes).
func mergeBucketWires(a, b []facetBucketWire) []facetBucketWire {
	if len(a) == 0 {
		return b
	}
	idx := make(map[string]int, len(a))
	out := append([]facetBucketWire{}, a...)
	for i, w := range out {
		idx[string(w.Value)] = i
	}
	for _, w := range b {
		if i, ok := idx[string(w.Value)]; ok {
			out[i].Count += w.Count
		} else {
			idx[string(w.Value)] = len(out)
			out = append(out, w)
		}
	}
	return out
}

// mergeFacetWires merges per-source bucket lists into the final facet
// result: counts summed by value, sorted count-descending with ascending
// value tie-break, truncated to limit.
func mergeFacetWires(wires [][]facetBucketWire, limit int) ([]query.FacetBucket, error) {
	merged := map[string]*query.FacetBucket{}
	for _, ws := range wires {
		for _, w := range ws {
			v, err := docmodel.DecodeValue(w.Value)
			if err != nil {
				return nil, err
			}
			key := string(w.Value)
			if b, ok := merged[key]; ok {
				b.Count += w.Count
			} else {
				merged[key] = &query.FacetBucket{Value: v, Count: w.Count}
			}
		}
	}
	out := make([]query.FacetBucket, 0, len(merged))
	for _, b := range merged {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value.Compare(out[j].Value) < 0
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// attributeWork records that a unit of the given task kind ran, charging
// the chosen node's work counter (scheduler-visible load accounting).
func (e *Engine) attributeWork(kind sched.TaskKind) {
	if id, err := e.placer.Place(kind); err == nil {
		if n, ok := e.fab.Node(id); ok {
			n.AddWork(1)
		}
	}
}

// attributeKeyedWork charges document-keyed work to the node the placer
// selects for the routing key — with the affinity placer, the data node
// owning the key's partition on the ring.
func (e *Engine) attributeKeyedWork(kind sched.TaskKind, key uint64) {
	kp, ok := e.placer.(sched.KeyedPlacer)
	if !ok {
		e.attributeWork(kind)
		return
	}
	if id, err := kp.PlaceKeyed(kind, key); err == nil {
		if n, ok := e.fab.Node(id); ok {
			n.AddWork(1)
		}
	}
}

// rowSource adapts a materialized row slice to the Operator interface.
type rowSource struct {
	rows []*exec.Row
	pos  int
}

func (r *rowSource) Open() error { return nil }
func (r *rowSource) Next() (*exec.Row, error) {
	if r.pos >= len(r.rows) {
		return nil, nil
	}
	row := r.rows[r.pos]
	r.pos++
	return row, nil
}
func (r *rowSource) Close() error { return nil }

func sortDocs(docs []*docmodel.Document) {
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID.Compare(docs[j].ID) < 0 })
}
