package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/query"
	"impliance/internal/storage"
	"impliance/internal/virt"
)

// catItem is a document with a facetable category field.
func catItem(text, cat string) Item {
	return Item{
		Body: docmodel.Object(
			docmodel.F("text", docmodel.String(text)),
			docmodel.F("cat", docmodel.String(cat)),
		),
		MediaType: "text/plain",
		Source:    "cache-test",
	}
}

// TestRepeatedGetServesFromCache: the second owner-consistency Get of an
// unchanged document moves zero fabric messages and is counted as a point
// hit — the tentpole's steady-state claim.
func TestRepeatedGetServesFromCache(t *testing.T) {
	e := testEngine(t)
	id, err := e.Ingest(textItem("cached read", "u"))
	if err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()

	if _, err := e.Get(id); err != nil {
		t.Fatal(err) // fill
	}
	e.fab.ResetNetStats()
	d, err := e.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if d.Version != 1 {
		t.Errorf("cached version = %d, want 1", d.Version)
	}
	if msgs := e.fab.NetStats().Messages; msgs != 0 {
		t.Errorf("cached Get moved %d messages, want 0", msgs)
	}
	if st := e.caches.PointStats(); st.Hits == 0 {
		t.Errorf("point stats = %+v, want a hit", st)
	}

	// WithStaleReads is served from cache too (fresher than required).
	e.fab.ResetNetStats()
	if _, err := e.GetContext(context.Background(), id, WithStaleReads()); err != nil {
		t.Fatal(err)
	}
	if msgs := e.fab.NetStats().Messages; msgs != 0 {
		t.Errorf("stale-reads Get moved %d messages, want 0", msgs)
	}
}

// TestUpdateInvalidatesCachedRead: a version write drops the document's
// cached entry before the ack, so the next read observes the new version
// (never the cached old one).
func TestUpdateInvalidatesCachedRead(t *testing.T) {
	e := testEngine(t)
	id, err := e.Ingest(textItem("version one", "u"))
	if err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()
	if _, err := e.Get(id); err != nil {
		t.Fatal(err) // fill v1
	}
	if _, err := e.Update(id, docmodel.Object(docmodel.F("text", docmodel.String("version two")))); err != nil {
		t.Fatal(err)
	}
	d, err := e.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if d.Version != 2 {
		t.Fatalf("post-update read = version %d, want 2 (stale cache served)", d.Version)
	}
	if d.First("/text").StringVal() != "version two" {
		t.Errorf("post-update body = %s", d.Root)
	}
	if st := e.caches.PointStats(); st.Invalidations == 0 {
		t.Errorf("point stats = %+v, want an invalidation", st)
	}
}

// TestNegativeCacheClearedByLaterIngest: a registered-but-missing ID is
// negative-cached (repeat probes stop touching the fabric), and a later
// write of that ID clears the entry so the document becomes readable.
func TestNegativeCacheClearedByLaterIngest(t *testing.T) {
	e := testEngine(t)
	id := e.mintDocID()
	e.smgr.Register(id, virt.ClassUser)

	if _, err := e.Get(id); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("first Get = %v, want ErrNotFound", err)
	}
	e.fab.ResetNetStats()
	if _, err := e.Get(id); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("second Get = %v, want ErrNotFound", err)
	}
	if msgs := e.fab.NetStats().Messages; msgs != 0 {
		t.Errorf("negative-cached Get moved %d messages, want 0", msgs)
	}
	if st := e.caches.NegativeStats(); st.Hits == 0 {
		t.Errorf("negative stats = %+v, want a hit", st)
	}

	// The ID is ingested after the miss was cached: the write must clear
	// the negative entry.
	primary, err := e.readHolderFor(id)
	if err != nil {
		t.Fatal(err)
	}
	doc := &docmodel.Document{
		ID:        id,
		MediaType: "text/plain",
		Source:    "late",
		Root:      docmodel.Object(docmodel.F("text", docmodel.String("arrived late"))),
	}
	if _, err := e.putOn(context.Background(), primary, doc); err != nil {
		t.Fatal(err)
	}
	d, err := e.Get(id)
	if err != nil {
		t.Fatalf("Get after late ingest = %v (negative entry not cleared)", err)
	}
	if d.First("/text").StringVal() != "arrived late" {
		t.Errorf("late body = %s", d.Root)
	}
}

// TestRejoinWindowServesNoStaleReads is the churn acceptance check: fill
// the point cache, update part of the corpus, then run a kill → removal →
// re-join cycle and read continuously while the dual-ownership windows
// are open (catch-up tasks race the reads on the background pool). Every
// read must return the latest version — a partition generation fence
// failure would surface as a pre-update version here.
func TestRejoinWindowServesNoStaleReads(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	var ids []docmodel.DocID
	for i := 0; i < 40; i++ {
		id, err := e.Ingest(textItem(fmt.Sprintf("churn doc %d", i), "u"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Fatal(err) // fill the point cache with version 1
		}
	}

	// Every document moves to version 2; the invalidation must beat any
	// cached v1.
	for _, id := range ids {
		if _, err := e.Update(id, docmodel.Object(docmodel.F("text", docmodel.String("v2 "+id.String())))); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()

	victim := e.dataNodes()[1]
	e.fab.Kill(victim.node.ID)
	e.HeartbeatTick() // ring removal bumps the moved partitions' generations
	for _, id := range ids {
		d, err := e.Get(id)
		if err != nil {
			t.Fatalf("Get(%s) during outage: %v", id, err)
		}
		if d.Version != 2 {
			t.Fatalf("Get(%s) during outage = version %d, want 2 (stale read)", id, d.Version)
		}
	}
	e.DrainBackground()

	e.fab.Revive(victim.node.ID)
	e.HeartbeatTick() // re-join opens dual-ownership windows
	// Read while the windows are open and catch-up races on the pool.
	stale := 0
	for round := 0; ; round++ {
		for _, id := range ids {
			d, err := e.Get(id)
			if err != nil {
				t.Fatalf("Get(%s) during hand-off window: %v", id, err)
			}
			if d.Version != 2 {
				stale++
			}
		}
		if e.smgr.HandoffPending() == 0 || round > 200 {
			break
		}
	}
	e.DrainBackground()
	if stale != 0 {
		t.Fatalf("%d stale reads across the re-join windows", stale)
	}
	if pending := e.smgr.HandoffPending(); pending != 0 {
		t.Fatalf("%d hand-off windows still open after drain", pending)
	}
	// Post-close reads route correctly (fenced entries must not short-
	// circuit the moved partitions) and still see version 2.
	for _, id := range ids {
		d, err := e.Get(id)
		if err != nil {
			t.Fatalf("Get(%s) after window close: %v", id, err)
		}
		if d.Version != 2 {
			t.Fatalf("Get(%s) after window close = version %d, want 2", id, d.Version)
		}
	}
}

// TestFacetPartialCacheReuseAndInvalidation: a repeated facet interaction
// reuses cached per-partition partials (fewer messages, identical
// buckets), and a later ingest is reflected — the write epoch voids the
// affected partition's partial.
func TestFacetPartialCacheReuseAndInvalidation(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	for i := 0; i < 30; i++ {
		if _, err := e.Ingest(catItem(fmt.Sprintf("facet doc %d", i), fmt.Sprintf("c%d", i%3))); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	req := query.FacetRequest{Keyword: "facet", Dimensions: []string{"/cat"}}

	first, err := e.Facets(req)
	if err != nil {
		t.Fatal(err)
	}
	e.fab.ResetNetStats()
	second, err := e.Facets(req)
	if err != nil {
		t.Fatal(err)
	}
	coldMsgs := e.fab.NetStats().Messages
	if st := e.caches.PartialStats(); st.Hits == 0 {
		t.Errorf("partial stats = %+v, want hits on the repeat", st)
	}
	if len(first.Dimensions[0].Buckets) != len(second.Dimensions[0].Buckets) {
		t.Fatalf("bucket count changed across repeat: %d vs %d",
			len(first.Dimensions[0].Buckets), len(second.Dimensions[0].Buckets))
	}
	for i, b := range first.Dimensions[0].Buckets {
		if second.Dimensions[0].Buckets[i].Count != b.Count {
			t.Errorf("bucket %s count %d vs %d across repeat",
				b.Value, b.Count, second.Dimensions[0].Buckets[i].Count)
		}
	}
	_ = coldMsgs

	// New document in c0: its partition's partial is voided, the next
	// interaction counts it.
	if _, err := e.Ingest(catItem("facet doc late", "c0")); err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()
	third, err := e.Facets(req)
	if err != nil {
		t.Fatal(err)
	}
	count := func(r *query.FacetResult, cat string) int {
		for _, b := range r.Dimensions[0].Buckets {
			if b.Value.StringVal() == cat {
				return b.Count
			}
		}
		return 0
	}
	if got, want := count(third, "c0"), count(first, "c0")+1; got != want {
		t.Errorf("c0 count after late ingest = %d, want %d (stale partial served)", got, want)
	}
}

// TestAggregatePartialCacheTracksWrites: repeated distributed aggregates
// reuse per-partition partials yet always reflect the latest corpus.
func TestAggregatePartialCacheTracksWrites(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	for i := 0; i < 24; i++ {
		if _, err := e.Ingest(catItem(fmt.Sprintf("agg doc %d", i), fmt.Sprintf("c%d", i%2))); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	spec := expr.GroupSpec{Aggs: []expr.AggSpec{{Kind: expr.AggCount}}}

	countRows := func() int64 {
		rows, err := e.distributedAggregate(context.Background(), expr.True(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || len(rows[0].Cols) != 1 {
			t.Fatalf("aggregate shape = %v", rows)
		}
		return rows[0].Cols[0].IntVal()
	}
	if n := countRows(); n != 24 {
		t.Fatalf("initial count = %d, want 24", n)
	}
	e.fab.ResetNetStats()
	if n := countRows(); n != 24 {
		t.Fatalf("repeat count = %d, want 24", n)
	}
	if st := e.caches.PartialStats(); st.Hits == 0 {
		t.Errorf("partial stats = %+v, want hits on the repeat", st)
	}
	if _, err := e.Ingest(catItem("agg doc late", "c0")); err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()
	if n := countRows(); n != 25 {
		t.Fatalf("count after late ingest = %d, want 25 (stale partial served)", n)
	}
}

// TestConcurrentReadWriteInvalidate hammers the cached read path with
// concurrent Gets, version writes, and fan-out queries (run under -race
// in CI). Each reader asserts per-document version monotonicity: a cached
// read may lag a concurrent write it did not synchronize with, but once a
// reader has observed version v it must never observe an older one.
func TestConcurrentReadWriteInvalidate(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.DataNodes = 4 })
	var ids []docmodel.DocID
	for i := 0; i < 8; i++ {
		id, err := e.Ingest(catItem(fmt.Sprintf("hot doc %d", i), "c0"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.DrainBackground()

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := map[docmodel.DocID]uint32{}
			for i := 0; i < 300; i++ {
				id := ids[i%len(ids)]
				d, err := e.Get(id)
				if err != nil {
					errCh <- fmt.Errorf("Get(%s): %w", id, err)
					return
				}
				if d.Version < seen[id] {
					errCh <- fmt.Errorf("Get(%s) went backwards: %d after %d", id, d.Version, seen[id])
					return
				}
				seen[id] = d.Version
			}
		}()
	}
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := ids[(2*i+w)%len(ids)]
				body := docmodel.Object(docmodel.F("text", docmodel.String(fmt.Sprintf("rev %d.%d", w, i))))
				if _, err := e.Update(id, body); err != nil {
					errCh <- fmt.Errorf("Update(%s): %w", id, err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		spec := expr.GroupSpec{Aggs: []expr.AggSpec{{Kind: expr.AggCount}}}
		for i := 0; i < 20; i++ {
			if _, err := e.distributedAggregate(context.Background(), expr.True(), spec); err != nil {
				errCh <- fmt.Errorf("aggregate: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	e.DrainBackground()
}
