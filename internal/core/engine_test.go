package core

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"impliance/internal/docmodel"
	"impliance/internal/expr"
	"impliance/internal/fabric"
	"impliance/internal/fabric/sim"
	"impliance/internal/plan"
	"impliance/internal/query"
	"impliance/internal/storage/compress"
	"impliance/internal/virt"
	"impliance/internal/workload"
)

// testEngine boots the standard test topology. With IMPL_SIM=1 in the
// environment the whole suite runs on the deterministic simulator
// instead of the real goroutine fabric — same tests, both transports —
// and a failed test logs the decision-trace tail with the seed.
func testEngine(t *testing.T, mutate ...func(*Config)) *Engine {
	t.Helper()
	cfg := Config{DataNodes: 3, GridNodes: 2, ClusterNodes: 2, Workers: 4, Codec: compress.None}
	var sc *sim.Cluster
	if os.Getenv("IMPL_SIM") == "1" {
		sc = sim.New(sim.Options{Seed: 1})
		cfg.Transport = sc
		cfg.Clock = sc
	}
	for _, m := range mutate {
		m(&cfg)
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		e.Close()
		if sc != nil && t.Failed() {
			t.Logf("sim transport (IMPL_SIM=1, seed %d):\n%s", sc.Seed(), sc.Trace().Dump(80))
		}
	})
	return e
}

// mustDataNode resolves a data node by ID or fails the test.
func mustDataNode(t *testing.T, e *Engine, id fabric.NodeID) *dataNode {
	t.Helper()
	dn, ok := e.dataNode(id)
	if !ok {
		t.Fatalf("no data node %s", id)
	}
	return dn
}

func textItem(s, source string) Item {
	return Item{
		Body:      docmodel.Object(docmodel.F("text", docmodel.String(s))),
		MediaType: "text/plain",
		Source:    source,
	}
}

func TestIngestGetRoundTrip(t *testing.T) {
	e := testEngine(t)
	id, err := e.Ingest(textItem("hello impliance", "unit"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if d.First("/text").StringVal() != "hello impliance" {
		t.Errorf("body = %s", d.Root)
	}
	if d.Version != 1 || d.Source != "unit" {
		t.Errorf("header = %+v", d)
	}
	if _, err := e.Get(docmodel.DocID{Origin: 99, Seq: 99}); err == nil {
		t.Error("unknown id must fail")
	}
}

func TestIngestDistributesAcrossDataNodes(t *testing.T) {
	e := testEngine(t)
	for i := 0; i < 30; i++ {
		if _, err := e.Ingest(textItem(fmt.Sprintf("doc %d", i), "unit")); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	perNode := 0
	for _, dn := range e.dataNodes() {
		if dn.store.Len() > 0 {
			perNode++
		}
		if dn.store.Len() > 25 {
			t.Errorf("node %s hoards %d docs", dn.node.ID, dn.store.Len())
		}
	}
	if perNode != 3 {
		t.Errorf("only %d/3 nodes hold data", perNode)
	}
}

func TestReplicationFactorByClass(t *testing.T) {
	e := testEngine(t)
	uid, _ := e.Ingest(textItem("user data", "u"))
	e.DrainBackground()
	if got := len(e.smgr.Holders(uid)); got != 2 {
		t.Errorf("user data holders = %d, want 2", got)
	}
	it := textItem("derived data", "d")
	it.Class = virt.ClassDerived
	did, _ := e.Ingest(it)
	if got := len(e.smgr.Holders(did)); got != 1 {
		t.Errorf("derived holders = %d, want 1", got)
	}
	it = textItem("regulated data", "r")
	it.Class = virt.ClassRegulatory
	rid, _ := e.Ingest(it)
	if got := len(e.smgr.Holders(rid)); got != 3 {
		t.Errorf("regulatory holders = %d, want 3", got)
	}
}

func TestAsyncReplicaConvergence(t *testing.T) {
	e := testEngine(t)
	id, _ := e.Ingest(textItem("replicate me", "u"))
	e.DrainBackground()
	holders := e.smgr.Holders(id)
	if len(holders) != 2 {
		t.Fatalf("holders = %v", holders)
	}
	for _, h := range holders {
		dn, _ := e.dataNode(h)
		if _, err := dn.store.Get(id); err != nil {
			t.Errorf("replica missing on %s: %v", h, err)
		}
	}
}

func TestUpdateCreatesVersions(t *testing.T) {
	e := testEngine(t)
	id, _ := e.Ingest(textItem("version one", "u"))
	e.DrainBackground()
	key, err := e.Update(id, docmodel.Object(docmodel.F("text", docmodel.String("version two"))))
	if err != nil {
		t.Fatal(err)
	}
	if key.Ver != 2 {
		t.Errorf("version = %d", key.Ver)
	}
	e.DrainBackground()
	latest, _ := e.Get(id)
	if latest.First("/text").StringVal() != "version two" {
		t.Error("latest should be v2")
	}
	v1, err := e.GetVersion(docmodel.VersionKey{Doc: id, Ver: 1})
	if err != nil || v1.First("/text").StringVal() != "version one" {
		t.Error("v1 must remain readable")
	}
	if e.VersionCount(id) != 2 {
		t.Errorf("version count = %d", e.VersionCount(id))
	}
	// The index serves the new version only.
	rows, err := e.Search("version two", 10)
	if err != nil || len(rows) != 1 {
		t.Errorf("search v2: %v %v", rows, err)
	}
	rows, _ = e.Search("one", 10)
	for _, r := range rows {
		if r.Docs[0].ID == id {
			t.Error("stale version still indexed")
		}
	}
}

func TestKeywordSearchAcrossNodes(t *testing.T) {
	e := testEngine(t)
	for i := 0; i < 20; i++ {
		e.Ingest(textItem(fmt.Sprintf("common token plus unique%d", i), "u"))
	}
	e.DrainBackground()
	rows, err := e.Search("common", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Errorf("hits = %d, want 20 (across all nodes, deduplicated)", len(rows))
	}
	rows, _ = e.Search("unique7", 10)
	if len(rows) != 1 {
		t.Errorf("unique hit = %d", len(rows))
	}
	rows, _ = e.Search("common", 5)
	if len(rows) != 5 {
		t.Errorf("top-k = %d", len(rows))
	}
}

func TestStructuredQueryValueIndex(t *testing.T) {
	e := testEngine(t)
	g := workload.New(1)
	items := g.UniformRows(200, 100, 5, 2)
	for _, it := range items {
		e.Ingest(Item{Body: it.Body, MediaType: it.MediaType, Source: it.Source})
	}
	e.DrainBackground()
	res, err := e.Run(plan.Query{Filter: expr.Cmp("/cat", expr.OpEq, docmodel.String("c01"))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Access.Kind != plan.AccessValueEq {
		t.Errorf("plan should use value index: %s", res.Plan)
	}
	want := 0
	for _, it := range items {
		if it.Body.Get("cat").StringVal() == "c01" {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestStructuredQueryScanWithRange(t *testing.T) {
	e := testEngine(t)
	for i := 0; i < 100; i++ {
		e.Ingest(Item{Body: docmodel.Object(docmodel.F("k", docmodel.Int(int64(i)))), MediaType: "relational/row", Source: "u"})
	}
	e.DrainBackground()
	res, err := e.Run(plan.Query{Filter: expr.Cmp("/k", expr.OpLt, docmodel.Int(10))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Access.Kind != plan.AccessScan {
		t.Errorf("range should scan under simple planner: %s", res.Plan)
	}
	if len(res.Rows) != 10 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestDistributedAggregation(t *testing.T) {
	e := testEngine(t)
	for i := 0; i < 60; i++ {
		e.Ingest(Item{Body: docmodel.Object(
			docmodel.F("region", docmodel.String([]string{"e", "w", "n"}[i%3])),
			docmodel.F("amt", docmodel.Int(int64(i))),
		), MediaType: "relational/row", Source: "sales"})
	}
	e.DrainBackground()
	res, err := e.Run(plan.Query{
		Filter:  expr.SourceIs("sales"),
		GroupBy: &expr.GroupSpec{By: []string{"/region"}, Aggs: []expr.AggSpec{{Kind: expr.AggCount}, {Kind: expr.AggSum, Path: "/amt"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	totalCount := int64(0)
	for _, r := range res.Rows {
		totalCount += r.Cols[1].IntVal()
	}
	if totalCount != 60 {
		t.Errorf("total count = %d (replica double counting?)", totalCount)
	}
}

func TestTopKJoinUsesINL(t *testing.T) {
	e := testEngine(t)
	g := workload.New(2)
	customers := g.CustomerProfiles(30)
	for _, c := range customers {
		e.Ingest(Item{Body: c.Body, MediaType: c.MediaType, Source: c.Source})
	}
	orders := g.PurchaseOrders(100, customers, 0)
	for _, o := range orders {
		e.Ingest(Item{Body: o.Body, MediaType: o.MediaType, Source: o.Source})
	}
	e.DrainBackground()
	q := plan.Query{
		Filter: expr.SourceIs("po-feed"),
		Join: &plan.JoinClause{
			LeftPath:    "/customer_ref",
			RightPath:   "/customer_id",
			RightFilter: expr.SourceIs("crm-profiles"),
		},
		K: 5,
	}
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Join != plan.JoinINL {
		t.Errorf("top-k join should be INL: %s", res.Plan)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if len(r.Docs) != 2 {
			t.Fatal("join should pair docs")
		}
		if r.Docs[0].First("/customer_ref").StringVal() != r.Docs[1].First("/customer_id").StringVal() {
			t.Error("join key mismatch")
		}
	}
	// Full join (no K) uses hash join and returns everything.
	q.K = 0
	res, err = e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Join != plan.JoinHash {
		t.Errorf("full join should hash: %s", res.Plan)
	}
	if len(res.Rows) != 100 {
		t.Errorf("full join rows = %d", len(res.Rows))
	}
}

func TestAnnotationsProducedAndQueryable(t *testing.T) {
	e := testEngine(t)
	id, _ := e.Ingest(textItem("John Smith from Boston loves the WidgetPro, it is excellent and wonderful", "cc"))
	e.DrainBackground()
	anns, err := e.AnnotationsOf(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) < 2 {
		t.Fatalf("annotations = %d, want entity + sentiment", len(anns))
	}
	byAnnotator := map[string]*docmodel.Document{}
	for _, a := range anns {
		byAnnotator[a.Annotator] = a
	}
	ent := byAnnotator["entity"]
	if ent == nil {
		t.Fatal("entity annotation missing")
	}
	sent := byAnnotator["sentiment"]
	if sent == nil || sent.First("/label").StringVal() != "positive" {
		t.Errorf("sentiment annotation: %v", sent)
	}
	// Annotations are searchable through the normal interfaces.
	res, err := e.ExecSQL("SELECT base, label, score FROM sentiments WHERE label = 'positive'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("sentiment view rows = %d", len(res.Rows))
	}
}

func TestSQLEndToEnd(t *testing.T) {
	e := testEngine(t)
	g := workload.New(3)
	for _, c := range g.InsuranceClaims(50, 0.2) {
		e.Ingest(Item{Body: c.Body, MediaType: c.MediaType, Source: c.Source})
	}
	e.DrainBackground()
	e.RegisterView("claims", expr.SourceIs("claims"), map[string]string{
		"id":        "/claim/@id",
		"patient":   "/claim/patient",
		"amount":    "/claim/amount",
		"flagged":   "/claim/flagged",
		"procedure": "/claim/procedure",
	})
	res, err := e.ExecSQL("SELECT id, amount FROM claims WHERE flagged = true ORDER BY amount DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "id" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) == 0 || len(res.Rows) > 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1].IntVal() < res.Rows[i][1].IntVal() {
			t.Error("not sorted desc")
		}
	}
	agg, err := e.ExecSQL("SELECT procedure, count(*), avg(amount) FROM claims GROUP BY procedure")
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, r := range agg.Rows {
		total += r[1].IntVal()
	}
	if total != 50 {
		t.Errorf("grouped counts sum to %d", total)
	}
}

func TestFacetedSearchWithDrillDown(t *testing.T) {
	e := testEngine(t)
	g := workload.New(4)
	for _, c := range g.InsuranceClaims(80, 0.25) {
		e.Ingest(Item{Body: c.Body, MediaType: c.MediaType, Source: c.Source})
	}
	e.DrainBackground()
	res, err := e.Facets(query.FacetRequest{
		Refine:     expr.SourceIs("claims"),
		Dimensions: []string{"/claim/procedure", "/claim/flagged"},
		Aggregates: []expr.AggSpec{{Kind: expr.AggAvg, Path: "/claim/amount"}},
		K:          5,
		FacetLimit: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 80 {
		t.Errorf("total = %d", res.Total)
	}
	if len(res.Dimensions) != 2 {
		t.Fatalf("dimensions = %d", len(res.Dimensions))
	}
	procs := res.Dimensions[0]
	if len(procs.Buckets) == 0 || len(procs.Buckets) > 4 {
		t.Fatalf("buckets = %d", len(procs.Buckets))
	}
	sum := 0
	for _, b := range res.Dimensions[1].Buckets {
		sum += b.Count
	}
	if sum != 80 {
		t.Errorf("flagged facet counts sum to %d", sum)
	}
	// Per-bucket aggregates on first dimension.
	if len(procs.Buckets[0].Aggregates) != 1 || procs.Buckets[0].Aggregates[0].FloatVal() <= 0 {
		t.Errorf("bucket aggregates = %v", procs.Buckets[0].Aggregates)
	}
	// Drill-down narrows the candidate set.
	drilled, err := e.Facets(query.FacetRequest{
		Refine:     query.Drill(expr.SourceIs("claims"), procs.Path, procs.Buckets[0].Value),
		Dimensions: []string{"/claim/flagged"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if drilled.Total != procs.Buckets[0].Count {
		t.Errorf("drill total = %d, want %d", drilled.Total, procs.Buckets[0].Count)
	}
}

func TestKeywordFacets(t *testing.T) {
	e := testEngine(t)
	for i := 0; i < 10; i++ {
		e.Ingest(Item{Body: docmodel.Object(
			docmodel.F("text", docmodel.String("contract renewal pending")),
			docmodel.F("dept", docmodel.String([]string{"legal", "sales"}[i%2])),
		), MediaType: "text/plain", Source: "m"})
	}
	e.Ingest(textItem("unrelated memo", "m"))
	e.DrainBackground()
	res, err := e.Facets(query.FacetRequest{Keyword: "contract renewal", Dimensions: []string{"/dept"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 10 {
		t.Errorf("keyword facet total = %d", res.Total)
	}
	if len(res.Dimensions[0].Buckets) != 2 {
		t.Errorf("dept buckets = %v", res.Dimensions[0].Buckets)
	}
}

func TestDiscoveryAndConnectionQueries(t *testing.T) {
	e := testEngine(t)
	g := workload.New(5)
	customers := g.CustomerProfiles(10)
	for _, c := range customers {
		e.Ingest(Item{Body: c.Body, MediaType: c.MediaType, Source: c.Source})
	}
	// Transcripts always mention a known customer.
	for _, c := range g.CallTranscripts(30, customers, 1.0) {
		e.Ingest(Item{Body: c.Body, MediaType: c.MediaType, Source: c.Source})
	}
	for _, o := range g.PurchaseOrders(40, customers, 0.3) {
		e.Ingest(Item{Body: o.Body, MediaType: o.MediaType, Source: o.Source})
	}
	e.DrainBackground()
	rep, err := e.RunDiscovery()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mentions == 0 || rep.EntityClusters == 0 {
		t.Fatalf("discovery found nothing: %+v", rep)
	}
	if rep.EntityEdges == 0 {
		t.Error("no entity edges")
	}
	if rep.ValueJoins == 0 {
		t.Error("no value joins (orders should join profiles on customer id)")
	}
	if rep.SchemaFamilies == 0 {
		t.Error("no schema families")
	}
	// A purchase order should connect to its customer profile.
	orders, err := e.Run(plan.Query{Filter: expr.SourceIs("po-feed"), K: 1})
	if err != nil || len(orders.Rows) == 0 {
		t.Fatal("no orders")
	}
	order := orders.Rows[0].Docs[0]
	ref := order.First("/customer_ref").StringVal()
	profiles, err := e.Run(plan.Query{Filter: expr.Cmp("/customer_id", expr.OpEq, docmodel.String(ref))})
	if err != nil || len(profiles.Rows) == 0 {
		t.Fatal("customer profile missing")
	}
	path := e.Connect(order.ID, profiles.Rows[0].Docs[0].ID, 4)
	if path == nil {
		t.Error("order should connect to its customer profile via join edges")
	}
	// Transitive closure is non-trivial.
	comp := e.RelatedTo(order.ID, 3)
	if len(comp) < 2 {
		t.Errorf("related component = %d", len(comp))
	}
}

func TestSchemaFamiliesUnifyOrderShapes(t *testing.T) {
	e := testEngine(t)
	g := workload.New(6)
	customers := g.CustomerProfiles(5)
	for _, o := range g.PurchaseOrders(40, customers, 0.5) {
		e.Ingest(Item{Body: o.Body, MediaType: o.MediaType, Source: o.Source})
	}
	e.DrainBackground()
	fams := e.SchemaFamilies()
	// Orders in two shapes should fold into one family.
	var orderFam *discoveryFamily
	for i := range fams {
		if len(fams[i].Groups) == 2 {
			orderFam = &discoveryFamily{paths: fams[i].PathsFor("customerref")}
		}
	}
	if orderFam == nil {
		t.Fatalf("order shapes not unified: %d families", len(fams))
	}
	if len(orderFam.paths) != 2 {
		t.Errorf("customer_ref should map to both shapes: %v", orderFam.paths)
	}
}

type discoveryFamily struct{ paths []string }

func TestConsistencyGroupAndFailover(t *testing.T) {
	e := testEngine(t)
	leader := e.group.Leader()
	if leader.IsZero() {
		t.Fatal("no leader")
	}
	e.fab.Kill(leader)
	for i := 0; i < 3; i++ {
		e.HeartbeatTick()
	}
	if e.group.Leader() == leader {
		t.Error("leadership should move after eviction")
	}
}

func TestDataNodeFailureRecovery(t *testing.T) {
	e := testEngine(t)
	var ids []docmodel.DocID
	for i := 0; i < 30; i++ {
		id, _ := e.Ingest(textItem(fmt.Sprintf("important payload %d", i), "u"))
		ids = append(ids, id)
	}
	e.DrainBackground()
	dead := e.dataNodes()[0].node.ID
	e.fab.Kill(dead)
	repaired, err := e.RecoverDataNode(dead)
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Error("nothing repaired")
	}
	// Recovery schedules the index catch-up as background work; fence it
	// before asserting search results.
	e.DrainBackground()
	// Every document remains readable and searchable.
	for _, id := range ids {
		if _, err := e.Get(id); err != nil {
			t.Errorf("doc %s unreadable after recovery: %v", id, err)
		}
	}
	rows, err := e.Search("important payload", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Errorf("search after recovery = %d/30", len(rows))
	}
}

func TestSyncVsAsyncIngestVisibility(t *testing.T) {
	sync := testEngine(t, func(c *Config) { c.SyncIndexing = true })
	id, _ := sync.Ingest(textItem("immediately searchable", "u"))
	rows, err := sync.Search("immediately", 1)
	if err != nil || len(rows) != 1 || rows[0].Docs[0].ID != id {
		t.Error("sync indexing should make docs searchable immediately")
	}
}

func TestCostOptimizerPathWorks(t *testing.T) {
	e := testEngine(t, func(c *Config) { c.UseCostOptimizer = true })
	for i := 0; i < 200; i++ {
		e.Ingest(Item{Body: docmodel.Object(docmodel.F("k", docmodel.Int(int64(i)))), MediaType: "relational/row", Source: "u"})
	}
	e.DrainBackground()
	e.CollectStatistics()
	res, err := e.Run(plan.Query{Filter: expr.Cmp("/k", expr.OpLt, docmodel.Int(10))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Access.Kind != plan.AccessValueRange {
		t.Errorf("fresh stats should pick index range: %s (%v)", res.Plan, res.Plan.Explain)
	}
	if len(res.Rows) != 10 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestPushdownReducesInterconnectBytes(t *testing.T) {
	run := func(disable bool) uint64 {
		e := testEngine(t, func(c *Config) { c.DisablePushdown = disable })
		for i := 0; i < 200; i++ {
			e.Ingest(Item{Body: docmodel.Object(
				docmodel.F("k", docmodel.Int(int64(i))),
				docmodel.F("pad", docmodel.String(strings.Repeat("x", 200))),
			), MediaType: "relational/row", Source: "u"})
		}
		e.DrainBackground()
		e.fab.ResetNetStats()
		res, err := e.Run(plan.Query{Filter: expr.Cmp("/k", expr.OpLt, docmodel.Int(4))})
		if err != nil || len(res.Rows) != 4 {
			t.Fatalf("query failed: %v rows=%d", err, len(res.Rows))
		}
		return e.fab.NetStats().Bytes
	}
	with := run(false)
	without := run(true)
	if with*3 > without {
		t.Errorf("pushdown should move >3x fewer bytes: with=%d without=%d", with, without)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	e := testEngine(t)
	e.Ingest(textItem("Grace Hopper is wonderful and excellent, truly great work", "u"))
	e.DrainBackground()
	m := e.MetricsSnapshot()
	if m.Documents != 1 {
		t.Errorf("documents = %d", m.Documents)
	}
	if m.Annotations == 0 {
		t.Error("annotations missing from metrics")
	}
	if m.IndexedDocs == 0 || m.StoredBytes == 0 {
		t.Error("index/storage metrics empty")
	}
	if m.ClusterLeader.IsZero() {
		t.Error("no leader in metrics")
	}
}

func TestViewAsRow(t *testing.T) {
	e := testEngine(t)
	e.RegisterView("notes", expr.True(), map[string]string{"text": "/text"})
	id, _ := e.Ingest(textItem("note body", "u"))
	e.DrainBackground()
	row, err := e.ViewAsRow("notes", id)
	if err != nil {
		t.Fatal(err)
	}
	if row.Get("text").StringVal() != "note body" {
		t.Errorf("row = %s", row)
	}
	if _, err := e.ViewAsRow("ghost", id); err == nil {
		t.Error("unknown view must fail")
	}
}

func TestCloseIdempotent(t *testing.T) {
	e := testEngine(t)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

var _ = fabric.NodeID{}
