package core

import (
	"fmt"

	"impliance/internal/docmodel"
	"impliance/internal/fabric"
)

// replicaAccess implements virt.ReplicaAccess over the engine's data
// nodes, letting the storage manager repair replication after failures.
// Fetches read the surviving node's store directly (the storage manager
// runs inside the appliance); installs go over the fabric so repair
// traffic is visible in the interconnect accounting.
type replicaAccess struct {
	e *Engine
}

// FetchVersions implements virt.ReplicaAccess.
func (ra replicaAccess) FetchVersions(node fabric.NodeID, id docmodel.DocID) ([]*docmodel.Document, error) {
	dn, ok := ra.e.dataNode(node)
	if !ok {
		return nil, fmt.Errorf("core: %s is not a data node", node)
	}
	if !dn.node.Alive() {
		return nil, fmt.Errorf("core: %s is down", node)
	}
	n := dn.store.VersionCount(id)
	if n == 0 {
		return nil, fmt.Errorf("core: %s does not hold %s", node, id)
	}
	out := make([]*docmodel.Document, 0, n)
	for v := uint32(1); v <= uint32(n); v++ {
		d, err := dn.store.GetVersion(docmodel.VersionKey{Doc: id, Ver: v})
		if err != nil {
			continue // sparse chain on a lagging replica
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: %s holds no readable versions of %s", node, id)
	}
	return out, nil
}

// Install implements virt.ReplicaAccess.
func (ra replicaAccess) Install(node fabric.NodeID, doc *docmodel.Document) error {
	_, err := ra.e.fab.Call(node, msgReplica, docmodel.EncodeDocument(doc))
	return err
}
