package core

import (
	"context"
	"errors"
	"sync"

	"impliance/internal/docmodel"
	"impliance/internal/exec"
	"impliance/internal/expr"
	"impliance/internal/plan"
	"impliance/internal/sched"
)

// Streaming structured queries. RunContext materializes a full result
// slice before the caller sees row one; for large scans that is both a
// memory bill (the whole matching set lives on the engine's heap) and a
// latency bill (time-to-first-row is the full gather). RunStream
// instead returns a Cursor fed by a bounded channel: rows are delivered
// as per-partition partial results arrive, the buffer is the
// backpressure bound (a slow consumer stalls the producer, not the
// heap), and closing the cursor cancels the fan-out — remaining node
// calls are abandoned and un-dispatched ones never sent.

// streamBuffer is the cursor's row buffer — the backpressure bound
// between the scatter-gather producer and the consumer.
const streamBuffer = 64

// streamInFlight bounds how many node scans a streaming query keeps in
// flight at once. Small on purpose: time-to-first-row needs only the
// first reply, and a cancelled or limit-satisfied cursor should have
// paid for a window of calls, not the whole ring.
const streamInFlight = 2

// Cursor streams the rows of one structured query.
//
//	cur, err := eng.RunStream(ctx, q)
//	...
//	defer cur.Close()
//	for cur.Next() {
//	    use(cur.Row())
//	}
//	err = cur.Err()
//
// Next/Row/Err/Close may be used from one consumer goroutine; Close is
// additionally safe to call concurrently with Next (and more than
// once). Rows from a streaming scan arrive in per-partition arrival
// order, not global ID order — ordering, grouping, and joining queries
// stream their operator output instead (materialized internally, then
// delivered incrementally).
type Cursor struct {
	rows   chan *exec.Row
	cancel context.CancelFunc
	done   chan struct{} // closed when the producer has fully exited
	plan   *plan.Plan

	cur *exec.Row // consumer-side current row

	mu     sync.Mutex
	err    error
	closed bool
}

func newCursor(p *plan.Plan, cancel context.CancelFunc) *Cursor {
	return &Cursor{
		rows:   make(chan *exec.Row, streamBuffer),
		cancel: cancel,
		done:   make(chan struct{}),
		plan:   p,
	}
}

// Next advances to the next row, blocking until one is available or the
// stream ends. It returns false at end of stream — check Err to
// distinguish completion from failure.
func (c *Cursor) Next() bool {
	row, ok := <-c.rows
	if !ok {
		c.cur = nil
		return false
	}
	c.cur = row
	return true
}

// Row returns the row Next advanced to (nil before the first Next and
// after the stream ends).
func (c *Cursor) Row() *exec.Row { return c.cur }

// Err returns the terminal error, if any. Cancellation caused by Close
// is a normal end of stream, not an error.
func (c *Cursor) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Plan returns the plan the stream executes (EXPLAIN for cursors).
func (c *Cursor) Plan() *plan.Plan { return c.plan }

// Close cancels the stream: the producer's context is cancelled, so
// in-flight node calls are abandoned and no new partition work is
// scheduled. Close drains undelivered rows, waits for the producer to
// exit, and is idempotent.
func (c *Cursor) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	if !already {
		// Wake a producer blocked on a full buffer and discard what it
		// already queued; the channel close below ends the drain.
		for range c.rows {
		}
	}
	<-c.done
	return c.Err()
}

// fail records the stream's terminal error. Context errors after Close
// are the cursor's own cancellation echoing back — a normal shutdown.
func (c *Cursor) fail(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return
	}
	if c.err == nil {
		c.err = err
	}
}

// emit delivers one row, blocking on the backpressure bound; false
// means the stream was cancelled and the producer should stop.
func (c *Cursor) emit(ctx context.Context, row *exec.Row) bool {
	select {
	case c.rows <- row:
		return true
	case <-ctx.Done():
		return false
	}
}

// finish is the producer's epilogue: record the error, end the stream,
// and cancel the request context so any stragglers (abandoned calls
// still draining into their buffered reply channels) unwind promptly.
func (c *Cursor) finish(err error) {
	c.fail(err)
	c.cancel()
	close(c.rows)
	close(c.done)
}

// RunStream plans a logical query and executes it as a stream. The
// returned cursor must be closed. Scan-shaped queries (scan access, no
// join/group/order) stream for real: each data node's partial result is
// delivered as it arrives, so time-to-first-row tracks the first
// node's scan rather than the full gather, and WithLimit stops the
// remaining fan-out once satisfied. Other shapes execute through the
// materializing pipeline and deliver its rows incrementally, keeping
// one API for every query.
//
// The producer runs as interactive work on the execution pool, so
// streaming queries interleave with (and take priority over)
// background analysis exactly like materialized ones; cancellation
// frees the pool worker along with the fan-out.
func (e *Engine) RunStream(ctx context.Context, q plan.Query, opts ...CallOption) (*Cursor, error) {
	ctx, optCancel, o := resolveOpts(ctx, opts)
	// Fast-reject before planning or pool dispatch.
	if err := e.admitOp(sched.Interactive, o.tenant); err != nil {
		optCancel()
		return nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	cancelAll := func() { cancel(); optCancel() }

	// Fold WithLimit into the query's K before planning (same clamp as
	// RunContext), so limited non-streamable shapes plan and hydrate a
	// K-bounded result instead of materializing everything and
	// discarding past the limit at emit time.
	if o.limit > 0 && (q.K == 0 || o.limit < q.K) {
		q.K = o.limit
	}
	if q.Filter.IsTrue() {
		q.Filter = expr.True()
	}
	p := e.planFor(q)
	c := newCursor(p, cancelAll)
	limit := q.K

	streamable := p.Access.Kind == plan.AccessScan &&
		p.Join == plan.JoinNone && p.GroupBy == nil && p.OrderBy == nil &&
		!e.cfg.DisablePushdown

	work := func() {
		if streamable {
			c.finish(e.streamScan(sctx, p.Residual, limit, c))
			return
		}
		rows, err := e.execute(sctx, p, q, o)
		if err != nil {
			c.finish(err)
			return
		}
		var streamErr error
		for i, row := range rows {
			if limit > 0 && i >= limit {
				break
			}
			if !c.emit(sctx, row) {
				// Truncated by cancellation/deadline, not a completed
				// stream; fail() suppresses the echo of the cursor's own
				// Close, so only a real deadline/caller cancel surfaces.
				streamErr = sctx.Err()
				break
			}
		}
		c.finish(streamErr)
	}
	// The producer carries the stream's ctx: if the caller's deadline
	// dies while the task is still queued, the pool sheds it (counted,
	// never executed) and OnShed settles the cursor so Next/Close
	// unwind. A saturated interactive queue surfaces as typed
	// ErrQueueFull rather than silently blocking the submitter.
	err := e.pool.Enqueue(sched.Task{
		Class:  sched.Interactive,
		Ctx:    sctx,
		Run:    work,
		OnShed: func(shedErr error) { c.finish(shedErr) },
	})
	if err != nil {
		c.finish(err)
		return nil, err
	}
	return c, nil
}

// streamScan is the incremental scan behind streaming cursors: the
// pushed-down filter is dispatched to the ring a bounded window
// (streamInFlight) at a time, and each node's matching rows are
// delivered page by page as they arrive — time-to-first-row no longer
// waits on any node's full partial, and no reply ever exceeds a page.
// Cancellation (or a satisfied limit) stops scheduling the remaining
// nodes; in-flight calls are abandoned by the context.
func (e *Engine) streamScan(ctx context.Context, filter expr.Expr, limit int, c *Cursor) error {
	payload := filter.Encode()
	nodes := e.ringNodes()
	next, inFlight := 0, 0
	// Fan-out shedding: node calls never dispatched because the
	// caller's deadline/cancellation arrived first are counted, not
	// issued. (A satisfied limit also leaves nodes undispatched, but
	// the ctx is alive then — that's completion, not shedding.)
	defer func() {
		if ctx.Err() != nil && next < len(nodes) {
			e.streamShed.Add(uint64(len(nodes) - next))
		}
	}()
	type partial struct {
		docs []*docmodel.Document
		err  error
		done bool // node finished (err says how)
	}
	// Buffered so a node goroutine racing cancellation can always post
	// its final done marker without blocking; page sends still apply
	// backpressure through the ctx.Done select below.
	replies := make(chan partial, len(nodes)+streamInFlight)
	send := func(pr partial) bool {
		select {
		case replies <- pr:
			return true
		case <-ctx.Done():
			return false
		}
	}
	dispatch := func() {
		for inFlight < streamInFlight && next < len(nodes) && ctx.Err() == nil {
			dn := nodes[next]
			next++
			inFlight++
			go func() {
				_, err := e.scanNodePaged(ctx, dn, msgScanFiltered, payload,
					func(docs []*docmodel.Document) error {
						if !send(partial{docs: docs}) {
							return ctx.Err()
						}
						return nil
					})
				replies <- partial{err: err, done: true} // buffered: never blocks
			}()
		}
	}
	dispatch()
	seen := map[docmodel.DocID]struct{}{}
	emitted := 0
	for inFlight > 0 {
		pr := <-replies
		if pr.done {
			inFlight--
			if pr.err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return pr.err
			}
			dispatch()
			continue
		}
		for _, d := range pr.docs {
			if _, dup := seen[d.ID]; dup {
				continue // replicas: deliver each document once
			}
			seen[d.ID] = struct{}{}
			if !c.emit(ctx, &exec.Row{Docs: []*docmodel.Document{d}}) {
				return ctx.Err()
			}
			emitted++
			if limit > 0 && emitted >= limit {
				return nil // satisfied: stop scheduling the rest of the ring
			}
		}
	}
	return ctx.Err()
}
