// Package cache holds the partition layer's hot-path caches: a
// read-through point-read cache, a negative cache for repeated misses,
// and a per-partition partial cache for facet and aggregate fan-outs.
// All three are fenced by the owning partition's routing generation
// (virt.PartitionMap.PartitionGen): an entry is stamped with the
// generation current when it was filled, and a later hand-off window,
// re-join, or rebalance that moves the partition advances the counter,
// expiring every entry of that partition at once without a scan.
// Version writes are invalidated explicitly (point/negative entries by
// document ID, partials lazily through per-partition write epochs), so
// steady-state hot sets are served from memory while the fabric only
// carries true misses — the memory-resident hot-set design the paper's
// interactive-query promise leans on.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"impliance/internal/docmodel"
)

const shardCount = 16

// Config sizes and gates the caches. Zero entry counts disable the
// corresponding cache just like the explicit flags.
type Config struct {
	Partitions      int // partition-space size; epochs are per partition
	PointEntries    int
	NegativeEntries int
	PartialEntries  int
	DisablePoint    bool
	DisableNegative bool
	DisablePartial  bool
}

// Stats is one cache's counter snapshot. The negative cache's Hits are
// the "negative hits" surfaced in engine metrics.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// counters is the live, atomically-updated form of Stats.
type counters struct {
	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// docEntry is a point or negative cache slot: the document (nil for a
// negative entry) plus the partition generation it was filled under.
type docEntry struct {
	doc *docmodel.Document // shared read-only; documents are immutable by convention
	gen uint64
}

// partialEntry is one partition's cached facet/aggregate partial: the
// wire-encoded partial plus the (generation, write-epoch) pair it is
// valid for.
type partialEntry struct {
	data  []byte
	gen   uint64
	epoch uint64
}

// partialKey identifies a partial: the partition it covers and a digest
// of the query shape (path + candidates for facets, filter + spec for
// aggregates).
type partialKey struct {
	part   int
	digest uint64
}

// lru is one bounded, mutex-guarded LRU shard.
type lru[K comparable, V any] struct {
	mu  sync.Mutex
	cap int
	m   map[K]*list.Element
	l   *list.List // front = most recently used
}

type lruSlot[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](capacity int) *lru[K, V] {
	return &lru[K, V]{cap: capacity, m: make(map[K]*list.Element, capacity), l: list.New()}
}

func (c *lru[K, V]) get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		var zero V
		return zero, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*lruSlot[K, V]).val, true
}

func (c *lru[K, V]) put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*lruSlot[K, V]).val = v
		c.l.MoveToFront(el)
		return
	}
	c.m[k] = c.l.PushFront(&lruSlot[K, V]{key: k, val: v})
	for c.l.Len() > c.cap {
		back := c.l.Back()
		c.l.Remove(back)
		delete(c.m, back.Value.(*lruSlot[K, V]).key)
	}
}

func (c *lru[K, V]) del(k K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return false
	}
	c.l.Remove(el)
	delete(c.m, k)
	return true
}

func (c *lru[K, V]) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}

// sharded spreads an LRU over shardCount locks.
type sharded[K comparable, V any] struct {
	shards [shardCount]*lru[K, V]
	pick   func(K) int
}

func newSharded[K comparable, V any](entries int, pick func(K) int) *sharded[K, V] {
	perShard := entries / shardCount
	if perShard < 1 {
		perShard = 1
	}
	s := &sharded[K, V]{pick: pick}
	for i := range s.shards {
		s.shards[i] = newLRU[K, V](perShard)
	}
	return s
}

func (s *sharded[K, V]) get(k K) (V, bool) { return s.shards[s.pick(k)].get(k) }
func (s *sharded[K, V]) put(k K, v V)      { s.shards[s.pick(k)].put(k, v) }
func (s *sharded[K, V]) del(k K) bool      { return s.shards[s.pick(k)].del(k) }
func (s *sharded[K, V]) size() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.size()
	}
	return n
}

func docShard(id docmodel.DocID) int {
	return int((id.Seq ^ uint64(id.Origin)*2654435761) % shardCount)
}

func partShard(k partialKey) int { return int(uint64(k.part) % shardCount) }

// Caches bundles the three hot-path caches plus the per-partition write
// epochs that guard read-through fills against racing writes: a fill
// captured the epoch before fetching, and is dropped if the epoch moved
// while the fetch was in flight (a write landed; the fetched value may
// predate it).
type Caches struct {
	point    *sharded[docmodel.DocID, docEntry] // nil = disabled
	negative *sharded[docmodel.DocID, docEntry]
	partial  *sharded[partialKey, partialEntry]
	epochs   []atomic.Uint64

	pointStats    counters
	negativeStats counters
	partialStats  counters
}

// New builds the cache set. Disabled caches are fully inert: gets miss
// silently (without counting), puts and invalidations no-op.
func New(cfg Config) *Caches {
	parts := cfg.Partitions
	if parts <= 0 {
		parts = 1
	}
	c := &Caches{epochs: make([]atomic.Uint64, parts)}
	if !cfg.DisablePoint && cfg.PointEntries > 0 {
		c.point = newSharded[docmodel.DocID, docEntry](cfg.PointEntries, docShard)
	}
	if !cfg.DisableNegative && cfg.NegativeEntries > 0 {
		c.negative = newSharded[docmodel.DocID, docEntry](cfg.NegativeEntries, docShard)
	}
	if !cfg.DisablePartial && cfg.PartialEntries > 0 {
		c.partial = newSharded[partialKey, partialEntry](cfg.PartialEntries, partShard)
	}
	return c
}

// PointEnabled reports whether the point-read cache is active.
func (c *Caches) PointEnabled() bool { return c != nil && c.point != nil }

// NegativeEnabled reports whether the negative cache is active.
func (c *Caches) NegativeEnabled() bool { return c != nil && c.negative != nil }

// PartialEnabled reports whether the facet/aggregate partial cache is
// active.
func (c *Caches) PartialEnabled() bool { return c != nil && c.partial != nil }

// Epoch returns the partition's write epoch. Read-through callers
// capture it before fetching and pass it back to the fill so a write
// racing the fetch voids the fill instead of pinning a stale value.
func (c *Caches) Epoch(part int) uint64 {
	if c == nil || part < 0 || part >= len(c.epochs) {
		return 0
	}
	return c.epochs[part].Load()
}

// BumpEpoch advances the partition's write epoch: every in-flight fill
// and every cached partial of the partition is voided. Called on primary
// version writes and on index mutations (facet partials derive from the
// index, aggregate partials from the stores — both must re-derive).
func (c *Caches) BumpEpoch(part int) {
	if c == nil || part < 0 || part >= len(c.epochs) {
		return
	}
	c.epochs[part].Add(1)
}

// InvalidateDoc drops the document's point and negative entries and
// bumps its partition's epoch — the single call write paths make after a
// version commit.
func (c *Caches) InvalidateDoc(id docmodel.DocID, part int) {
	if c == nil {
		return
	}
	if c.point != nil && c.point.del(id) {
		c.pointStats.invalidations.Add(1)
	}
	if c.negative != nil && c.negative.del(id) {
		c.negativeStats.invalidations.Add(1)
	}
	c.BumpEpoch(part)
}

// GetDoc looks the document up in the point then negative cache. An
// entry whose generation no longer matches pgen is fenced: the partition
// moved since the fill, so owner-consistency reads must refetch.
// allowStale (WithStaleReads) may serve a fenced-but-unexpired entry.
// Returns (doc, false, true) on a point hit, (nil, true, true) on a
// negative hit, and ok=false otherwise.
func (c *Caches) GetDoc(id docmodel.DocID, pgen uint64, allowStale bool) (*docmodel.Document, bool, bool) {
	if c == nil {
		return nil, false, false
	}
	if c.point != nil {
		if e, ok := c.point.get(id); ok && (e.gen == pgen || allowStale) {
			c.pointStats.hits.Add(1)
			return e.doc, false, true
		}
	}
	if c.negative != nil {
		if e, ok := c.negative.get(id); ok && (e.gen == pgen || allowStale) {
			c.negativeStats.hits.Add(1)
			return nil, true, true
		}
	}
	if c.point != nil {
		c.pointStats.misses.Add(1)
	} else if c.negative != nil {
		c.negativeStats.misses.Add(1)
	}
	return nil, false, false
}

// PutDoc fills a point entry fetched from the partition's owner. epoch
// must be the Epoch(part) captured before the fetch: if a write moved it
// meanwhile, the fill is dropped (the fetched version may be stale).
func (c *Caches) PutDoc(id docmodel.DocID, part int, doc *docmodel.Document, pgen, epoch uint64) {
	if c == nil || c.point == nil || c.Epoch(part) != epoch {
		return
	}
	c.point.put(id, docEntry{doc: doc, gen: pgen})
}

// PutNegative records a definitive miss from the partition's owner,
// with the same epoch race guard as PutDoc.
func (c *Caches) PutNegative(id docmodel.DocID, part int, pgen, epoch uint64) {
	if c == nil || c.negative == nil || c.Epoch(part) != epoch {
		return
	}
	c.negative.put(id, docEntry{gen: pgen})
}

// GetPartial returns the partition's cached partial for the query
// digest, valid only if both the routing generation and the write epoch
// still match — a moved partition or a later write voids it (counted as
// an invalidation, and the entry is dropped).
func (c *Caches) GetPartial(part int, digest, pgen uint64) ([]byte, bool) {
	if c == nil || c.partial == nil {
		return nil, false
	}
	k := partialKey{part: part, digest: digest}
	e, ok := c.partial.get(k)
	if !ok {
		c.partialStats.misses.Add(1)
		return nil, false
	}
	if e.gen != pgen || e.epoch != c.Epoch(part) {
		c.partial.del(k)
		c.partialStats.invalidations.Add(1)
		c.partialStats.misses.Add(1)
		return nil, false
	}
	c.partialStats.hits.Add(1)
	return e.data, true
}

// PutPartial caches one partition's freshly computed partial. pgen and
// epoch are the values captured when the fan-out was planned; if the
// epoch moved while the partial was computed the fill is dropped.
func (c *Caches) PutPartial(part int, digest, pgen, epoch uint64, data []byte) {
	if c == nil || c.partial == nil || c.Epoch(part) != epoch {
		return
	}
	c.partial.put(partialKey{part: part, digest: digest}, partialEntry{data: data, gen: pgen, epoch: epoch})
}

// PointStats snapshots the point cache's counters.
func (c *Caches) PointStats() Stats {
	if c == nil {
		return Stats{}
	}
	return c.pointStats.snapshot()
}

// NegativeStats snapshots the negative cache's counters (Hits are
// negative hits).
func (c *Caches) NegativeStats() Stats {
	if c == nil {
		return Stats{}
	}
	return c.negativeStats.snapshot()
}

// PartialStats snapshots the facet/aggregate partial cache's counters.
func (c *Caches) PartialStats() Stats {
	if c == nil {
		return Stats{}
	}
	return c.partialStats.snapshot()
}

// PointLen reports resident point entries (tests and introspection).
func (c *Caches) PointLen() int {
	if c == nil || c.point == nil {
		return 0
	}
	return c.point.size()
}

// NegativeLen reports resident negative entries.
func (c *Caches) NegativeLen() int {
	if c == nil || c.negative == nil {
		return 0
	}
	return c.negative.size()
}

// PartialLen reports resident partial entries.
func (c *Caches) PartialLen() int {
	if c == nil || c.partial == nil {
		return 0
	}
	return c.partial.size()
}
