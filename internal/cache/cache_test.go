package cache

import (
	"sync"
	"testing"

	"impliance/internal/docmodel"
)

func testID(seq uint64) docmodel.DocID { return docmodel.DocID{Origin: 1, Seq: seq} }

func testDoc(seq uint64) *docmodel.Document {
	return &docmodel.Document{ID: testID(seq)}
}

func fullConfig() Config {
	return Config{Partitions: 8, PointEntries: 64, NegativeEntries: 64, PartialEntries: 64}
}

func TestPointHitMissAndFence(t *testing.T) {
	c := New(fullConfig())
	id := testID(1)
	if _, _, ok := c.GetDoc(id, 0, false); ok {
		t.Fatal("empty cache must miss")
	}
	c.PutDoc(id, 0, testDoc(1), 0, c.Epoch(0))
	d, neg, ok := c.GetDoc(id, 0, false)
	if !ok || neg || d == nil {
		t.Fatalf("expected point hit, got ok=%v neg=%v", ok, neg)
	}
	// A moved partition (pgen advanced) fences the entry for owner reads…
	if _, _, ok := c.GetDoc(id, 1, false); ok {
		t.Fatal("fenced entry served to an owner-consistency read")
	}
	// …but a stale read may still serve it.
	if _, _, ok := c.GetDoc(id, 1, true); !ok {
		t.Fatal("stale read refused a fenced-but-unexpired entry")
	}
	st := c.PointStats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits 2 misses", st)
	}
}

func TestNegativeEntryAndInvalidation(t *testing.T) {
	c := New(fullConfig())
	id := testID(7)
	c.PutNegative(id, 2, 0, c.Epoch(2))
	if _, neg, ok := c.GetDoc(id, 0, false); !ok || !neg {
		t.Fatalf("expected negative hit, got ok=%v neg=%v", ok, neg)
	}
	c.InvalidateDoc(id, 2)
	if _, _, ok := c.GetDoc(id, 0, false); ok {
		t.Fatal("negative entry survived invalidation")
	}
	if inv := c.NegativeStats().Invalidations; inv != 1 {
		t.Fatalf("negative invalidations = %d, want 1", inv)
	}
}

func TestFillRaceGuard(t *testing.T) {
	c := New(fullConfig())
	id := testID(3)
	epoch := c.Epoch(0)
	c.BumpEpoch(0) // a write lands while the fetch is in flight
	c.PutDoc(id, 0, testDoc(3), 0, epoch)
	if _, _, ok := c.GetDoc(id, 0, false); ok {
		t.Fatal("fill with a stale epoch must be dropped")
	}
	c.PutNegative(id, 0, 0, epoch)
	if _, _, ok := c.GetDoc(id, 0, false); ok {
		t.Fatal("negative fill with a stale epoch must be dropped")
	}
}

func TestPartialGenAndEpochFencing(t *testing.T) {
	c := New(fullConfig())
	c.PutPartial(4, 99, 0, c.Epoch(4), []byte("blob"))
	if d, ok := c.GetPartial(4, 99, 0); !ok || string(d) != "blob" {
		t.Fatalf("expected partial hit, got ok=%v data=%q", ok, d)
	}
	// A write to the partition voids the partial lazily.
	c.BumpEpoch(4)
	if _, ok := c.GetPartial(4, 99, 0); ok {
		t.Fatal("partial served across an epoch bump")
	}
	if inv := c.PartialStats().Invalidations; inv != 1 {
		t.Fatalf("partial invalidations = %d, want 1", inv)
	}
	// Refill, then move the partition: the generation fence voids it too.
	c.PutPartial(4, 99, 0, c.Epoch(4), []byte("blob2"))
	if _, ok := c.GetPartial(4, 99, 1); ok {
		t.Fatal("partial served across a partition-generation change")
	}
}

func TestLRUBound(t *testing.T) {
	c := New(Config{Partitions: 1, PointEntries: 32, NegativeEntries: 32, PartialEntries: 32})
	for i := 0; i < 1000; i++ {
		c.PutDoc(testID(uint64(i)), 0, testDoc(uint64(i)), 0, 0)
	}
	if n := c.PointLen(); n > 32 {
		t.Fatalf("point cache grew to %d entries, cap 32", n)
	}
	for i := 0; i < 1000; i++ {
		c.PutPartial(0, uint64(i), 0, 0, []byte("x"))
	}
	if n := c.PartialLen(); n > 32 {
		t.Fatalf("partial cache grew to %d entries, cap 32", n)
	}
}

func TestDisabledCachesAreInert(t *testing.T) {
	c := New(Config{Partitions: 4, DisablePoint: true, DisableNegative: true, DisablePartial: true,
		PointEntries: 16, NegativeEntries: 16, PartialEntries: 16})
	c.PutDoc(testID(1), 0, testDoc(1), 0, 0)
	c.PutNegative(testID(2), 0, 0, 0)
	c.PutPartial(0, 1, 0, 0, []byte("x"))
	if _, _, ok := c.GetDoc(testID(1), 0, false); ok {
		t.Fatal("disabled point cache served an entry")
	}
	if _, ok := c.GetPartial(0, 1, 0); ok {
		t.Fatal("disabled partial cache served an entry")
	}
	st := c.PointStats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("disabled cache counted traffic: %+v", st)
	}
	var nilCaches *Caches
	nilCaches.InvalidateDoc(testID(1), 0) // nil receiver must be safe
	if _, _, ok := nilCaches.GetDoc(testID(1), 0, false); ok {
		t.Fatal("nil caches served an entry")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(fullConfig())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id := testID(uint64(i % 100))
				part := i % 8
				switch (i + w) % 4 {
				case 0:
					c.PutDoc(id, part, testDoc(id.Seq), 0, c.Epoch(part))
				case 1:
					c.GetDoc(id, 0, false)
				case 2:
					c.InvalidateDoc(id, part)
				default:
					c.PutPartial(part, uint64(i%16), 0, c.Epoch(part), []byte("p"))
					c.GetPartial(part, uint64(i%16), 0)
				}
			}
		}(w)
	}
	wg.Wait()
}
