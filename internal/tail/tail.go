// Package tail implements live tailing / continuous queries (CDC): a
// subscription broker that turns the appliance's committed writes into
// ordered, exactly-once delivery streams for long-lived cursors.
//
// The paper's appliance *continuously absorbs* enterprise content
// (§2.2's stewing pot), yet a query engine alone only answers about the
// past. The broker closes that gap: every acked ingest/update/delete is
// published into its partition's event log, where a monotonically
// increasing per-partition sequence number — the partition watermark —
// defines both delivery order and exactly-where-to-resume. Subscribers
// attach a filter and consume matching events through a bounded queue
// with a typed lag policy (block, shed-oldest, or cancel).
//
// Membership churn is the hard part. A partition's delivery attachment
// is stamped with the partition's routing generation (the same
// PartitionGen that fences the read caches); when a hand-off window
// closes or a failure re-routes the partition, the engine fences the
// partition and every subscription migrates: queued-but-undelivered
// events from the pre-change attachment are voided and the new
// attachment resumes from the subscriber's acknowledged watermark,
// replaying from the log. Because acknowledgment advances exactly at
// delivery, the replay re-offers precisely the voided suffix — a
// re-join produces no gaps and no duplicates.
package tail

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"impliance/internal/docmodel"
	"impliance/internal/sched"
	"impliance/internal/workload"
)

// Kind classifies a published change.
type Kind uint8

// Event kinds: the three committed-write shapes the ingest path
// publishes.
const (
	KindIngest Kind = iota // a new document's first version
	KindUpdate             // a new version of an existing document
	KindDelete             // a tombstone version (Doc is the last live version)
)

var kindNames = [...]string{"ingest", "update", "delete"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Event is one committed write as seen by subscribers.
type Event struct {
	// Partition and Seq position the event on its partition's watermark
	// axis: Seq is assigned under the partition log's lock, so events of
	// one partition are totally ordered and delivered in order. Seq is
	// 1-based; a watermark of w acknowledges every event with Seq ≤ w.
	Partition int
	Seq       uint64
	// Gen is the partition's routing generation when the event was
	// published (diagnostics: a migration replays events whose Gen
	// predates the subscriber's current attachment generation).
	Gen  uint64
	Kind Kind
	// Doc is the committed version (for KindDelete, the last live
	// version the tombstone superseded — so content filters still match).
	Doc *docmodel.Document
	// At is the publish instant on the engine clock; delivery lag is
	// measured against it.
	At time.Time
}

// DropPolicy is a subscription's typed response to its queue filling up
// faster than the consumer drains it.
type DropPolicy uint8

// Lag policies.
const (
	// PolicyDefault resolves per the subscription's SLO class — see
	// PolicyFor.
	PolicyDefault DropPolicy = iota
	// PolicyBlock applies backpressure: the publisher waits for queue
	// space. Nothing is lost; the ingest ack path absorbs the stall.
	PolicyBlock
	// PolicyShedOldest drops the oldest queued event and counts it; the
	// consumer observes the loss via Dropped(). Delivery stays live at
	// the cost of completeness.
	PolicyShedOldest
	// PolicyCancel terminates the subscription with ErrSlowConsumer —
	// a lagging consumer is cut rather than allowed to hold memory or
	// stall publishers.
	PolicyCancel
)

var policyNames = [...]string{"default", "block", "shed-oldest", "cancel"}

// String names the policy.
func (p DropPolicy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return "policy?"
}

// PolicyFor maps an SLO class to its default lag policy: durability
// subscribers (downstream replication) must not lose events, so they
// block; interactive subscribers are cancelled rather than allowed to
// lag invisibly; background subscribers (the default class for tail
// delivery) shed oldest and keep streaming.
func PolicyFor(c sched.Class) DropPolicy {
	switch c {
	case sched.Durability:
		return PolicyBlock
	case sched.Interactive:
		return PolicyCancel
	default:
		return PolicyShedOldest
	}
}

// Typed subscription-termination errors; match with errors.Is.
var (
	// ErrSlowConsumer: the queue filled under PolicyCancel.
	ErrSlowConsumer = errors.New("tail: subscriber lagged past its queue (policy cancel)")
	// ErrLagBehind: a resume or migration needed events the partition
	// log no longer retains.
	ErrLagBehind = errors.New("tail: watermark fell behind the partition log retention")
	// ErrClosed: the broker (or the subscription itself) was closed.
	ErrClosed = errors.New("tail: closed")
)

// Options configures a Broker.
type Options struct {
	// Partitions is the partition count (required, > 0).
	Partitions int
	// Retain bounds each partition's event log (default 4096 events):
	// the resume/migration horizon. A subscriber whose watermark falls
	// off the horizon fails with ErrLagBehind.
	Retain int
	// Buffer is the default per-subscriber queue capacity (default 256).
	Buffer int
	// Clock stamps publish instants and measures delivery lag (nil =
	// wall clock; the simulator passes its virtual clock).
	Clock sched.Clock
	// Run executes catch-up replay work (resume and post-migration
	// replays). The engine wires the pool's Background class here —
	// delivery is background work, never durability. Nil runs inline.
	Run func(func())
	// PartitionGen reports a partition's current routing generation
	// (virt.PartitionMap.PartitionGen). Nil pins every generation to 0.
	PartitionGen func(int) uint64
}

// plog is one partition's event log: a bounded ring of recent events,
// the watermark counter, the newest routing generation stamped into the
// partition, and the subscriptions attached to it.
type plog struct {
	mu   sync.Mutex
	seq  uint64 // last assigned watermark (first event is 1)
	gen  uint64 // newest routing generation observed
	ring []Event
	subs []*Subscription
}

// oldestLocked is the lowest retained watermark (1 until the ring wraps).
func (lg *plog) oldestLocked() uint64 {
	if lg.seq > uint64(len(lg.ring)) {
		return lg.seq - uint64(len(lg.ring)) + 1
	}
	return 1
}

// rangeLocked returns events with Seq in [from, to), reporting false if
// the range begins before the retention horizon.
func (lg *plog) rangeLocked(from, to uint64) ([]Event, bool) {
	if to > lg.seq+1 {
		to = lg.seq + 1
	}
	if from >= to {
		return nil, true
	}
	if from < lg.oldestLocked() {
		return nil, false
	}
	out := make([]Event, 0, to-from)
	for s := from; s < to; s++ {
		out = append(out, lg.ring[(s-1)%uint64(len(lg.ring))])
	}
	return out, true
}

// Broker is the appliance-wide subscription registry and fan-out hub.
// Safe for concurrent use.
type Broker struct {
	opt  Options
	logs []plog

	mu     sync.Mutex
	subs   map[uint64]*Subscription
	nextID uint64
	closed bool

	published  atomic.Uint64
	delivered  atomic.Uint64
	drops      atomic.Uint64
	cancelled  atomic.Uint64
	fencedPubs atomic.Uint64
	voided     atomic.Uint64
	migrations atomic.Uint64
	truncated  atomic.Uint64
	lag        workload.LatencyHist
}

// NewBroker builds the hub.
func NewBroker(opt Options) *Broker {
	if opt.Partitions <= 0 {
		opt.Partitions = 1
	}
	if opt.Retain <= 0 {
		opt.Retain = 4096
	}
	if opt.Buffer <= 0 {
		opt.Buffer = 256
	}
	if opt.Clock == nil {
		opt.Clock = sched.RealClock()
	}
	if opt.Run == nil {
		opt.Run = func(fn func()) { fn() }
	}
	if opt.PartitionGen == nil {
		opt.PartitionGen = func(int) uint64 { return 0 }
	}
	b := &Broker{opt: opt, subs: map[uint64]*Subscription{}}
	b.logs = make([]plog, opt.Partitions)
	for i := range b.logs {
		b.logs[i].ring = make([]Event, opt.Retain)
	}
	return b
}

// Publish appends one committed write to its partition's log — under
// the log lock, so the assigned Seq is the partition's total order —
// and fans it out to the attached subscriptions. gen is the partition
// routing generation the publisher observed at commit; a publisher
// overtaken by a fence (gen older than the log's) is counted but its
// event is still appended under the current generation — the write is
// history either way, and the fence machinery operates on queued
// deliveries, not on the log. Returns the assigned watermark.
func (b *Broker) Publish(part int, gen uint64, kind Kind, doc *docmodel.Document) uint64 {
	if part < 0 || part >= len(b.logs) || doc == nil {
		return 0
	}
	lg := &b.logs[part]
	lg.mu.Lock()
	if gen < lg.gen {
		b.fencedPubs.Add(1)
		gen = lg.gen
	} else {
		lg.gen = gen
	}
	lg.seq++
	ev := Event{Partition: part, Seq: lg.seq, Gen: gen, Kind: kind, Doc: doc, At: b.opt.Clock.Now()}
	lg.ring[(ev.Seq-1)%uint64(len(lg.ring))] = ev
	subs := append([]*Subscription(nil), lg.subs...)
	lg.mu.Unlock()
	b.published.Add(1)
	for _, s := range subs {
		s.offer(ev)
	}
	return ev.Seq
}

// Watermark reports a partition's current (latest-published) watermark.
func (b *Broker) Watermark(part int) uint64 {
	if part < 0 || part >= len(b.logs) {
		return 0
	}
	lg := &b.logs[part]
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.seq
}

// FencePartition applies a generation fence after a membership change
// re-routed the partition (CompleteHandoff, failure re-routing): every
// attached subscription whose attachment generation predates the
// partition's current routing generation migrates — its queued
// undelivered events for the partition are voided and it re-attaches at
// its acknowledged watermark, replaying the gap from the log as
// background work.
func (b *Broker) FencePartition(part int) {
	if part < 0 || part >= len(b.logs) {
		return
	}
	gen := b.opt.PartitionGen(part)
	lg := &b.logs[part]
	lg.mu.Lock()
	if gen > lg.gen {
		lg.gen = gen
	}
	subs := append([]*Subscription(nil), lg.subs...)
	lg.mu.Unlock()
	for _, s := range subs {
		if s.migrate(part, gen) {
			s := s
			b.opt.Run(func() { b.replay(s, part) })
		}
	}
}

// FenceAll sweeps every partition — the failure-path hook, where the
// set of re-routed partitions is not enumerated for the caller.
func (b *Broker) FenceAll() {
	for p := range b.logs {
		b.FencePartition(p)
	}
}

// replay re-offers logged events past the subscription's cursor for one
// partition (post-resume and post-migration catch-up). offer dedups and
// gap-fills internally, so replay racing live publishes stays
// exactly-once.
func (b *Broker) replay(s *Subscription, part int) {
	lg := &b.logs[part]
	lg.mu.Lock()
	seq := lg.seq
	lg.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	from, ok := s.next[part]
	if !ok || from > seq {
		return
	}
	evs, ok := b.logRange(part, from, seq+1)
	if !ok {
		b.truncated.Add(1)
		s.failLocked(ErrLagBehind)
		return
	}
	for _, ev := range evs {
		if s.closed || s.err != nil {
			return
		}
		s.offerLocked(ev, true)
	}
}

// logRange fetches [from, to) from one partition's log.
func (b *Broker) logRange(part int, from, to uint64) ([]Event, bool) {
	lg := &b.logs[part]
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.rangeLocked(from, to)
}

// SubOptions configures one subscription.
type SubOptions struct {
	// Match filters events; nil matches everything. It runs on the
	// publish fan-out path under the subscription lock — keep it pure.
	Match func(Event) bool
	// Partitions restricts the watched set (nil = all). New documents
	// hash to arbitrary partitions, so content subscriptions watch all;
	// partition-scoped consumers (downstream shard replication) narrow.
	Partitions []int
	// Class is the subscription's SLO class; it resolves PolicyDefault
	// (see PolicyFor). The zero value is Interactive — pass explicitly.
	Class sched.Class
	// Policy overrides the class default lag policy.
	Policy DropPolicy
	// Buffer overrides the broker's default queue capacity.
	Buffer int
	// Resume holds acknowledged watermarks from a previous incarnation:
	// delivery resumes exactly after them. Partitions absent from the
	// map attach live (from the current watermark).
	Resume map[int]uint64
}

// Subscription is one live tail: a filter, a bounded queue, and
// per-partition cursors. Consume with Next; stop with Close.
type Subscription struct {
	b      *Broker
	id     uint64
	policy DropPolicy
	cap    int
	match  func(Event) bool
	parts  []int

	mu    sync.Mutex
	space *sync.Cond    // publishers waiting for queue room (PolicyBlock)
	data  chan struct{} // consumer wake-up, capacity 1

	queue []Event
	// next[p] is the partition cursor: every event with Seq < next[p]
	// has settled (queued, filtered out, or shed). The cursor advances
	// only at the settle instant, never before: a publisher parked in
	// space.Wait() still has next[p] == its event's Seq, so next[p] is
	// an enqueue ticket — whoever holds the lock while next[p] equals
	// an event's Seq owns that event's delivery, and a woken publisher
	// whose ticket moved (a migration rewound the cursor, or a replay
	// settled the event first) bails without enqueueing. acked[p] is
	// the acknowledged watermark: every matching event with Seq ≤
	// acked[p] was delivered (or shed under PolicyShedOldest — the
	// policy's accepted loss). acked derives from next, so it can never
	// cover an event a parked publisher has yet to enqueue. pend[p]
	// counts queued events, i.e. the settled-but-undelivered window
	// (acked, next).
	next  map[int]uint64
	acked map[int]uint64
	pend  map[int]int
	gens  map[int]uint64 // attachment generation per partition

	err       error
	closed    bool
	delivered uint64
	dropped   uint64
}

// Subscribe attaches a new subscription. With Resume watermarks the
// missed suffix replays from the partition logs (as broker Run work)
// before live events continue — or the call fails with ErrLagBehind if
// the suffix fell off the retention horizon.
func (b *Broker) Subscribe(o SubOptions) (*Subscription, error) {
	policy := o.Policy
	if policy == PolicyDefault {
		policy = PolicyFor(o.Class)
	}
	capacity := o.Buffer
	if capacity <= 0 {
		capacity = b.opt.Buffer
	}
	parts := o.Partitions
	if parts == nil {
		parts = make([]int, len(b.logs))
		for i := range parts {
			parts[i] = i
		}
	}
	s := &Subscription{
		b:      b,
		policy: policy,
		cap:    capacity,
		match:  o.Match,
		parts:  append([]int(nil), parts...),
		data:   make(chan struct{}, 1),
		next:   make(map[int]uint64, len(parts)),
		acked:  make(map[int]uint64, len(parts)),
		pend:   make(map[int]int, len(parts)),
		gens:   make(map[int]uint64, len(parts)),
	}
	s.space = sync.NewCond(&s.mu)

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.nextID++
	s.id = b.nextID
	b.subs[s.id] = s
	b.mu.Unlock()

	var replayParts []int
	s.mu.Lock()
	for _, p := range s.parts {
		if p < 0 || p >= len(b.logs) {
			continue
		}
		lg := &b.logs[p]
		lg.mu.Lock()
		w := lg.seq // live attach: acknowledge everything already written
		if r, ok := o.Resume[p]; ok {
			if r > lg.seq {
				r = lg.seq
			}
			if r+1 < lg.oldestLocked() {
				lg.mu.Unlock()
				s.mu.Unlock()
				b.detach(s)
				b.truncated.Add(1)
				return nil, ErrLagBehind
			}
			w = r
		}
		s.next[p] = w + 1
		s.acked[p] = w
		s.gens[p] = lg.gen
		lg.subs = append(lg.subs, s)
		if w < lg.seq {
			replayParts = append(replayParts, p)
		}
		lg.mu.Unlock()
	}
	s.mu.Unlock()
	for _, p := range replayParts {
		p := p
		b.opt.Run(func() { b.replay(s, p) })
	}
	return s, nil
}

// offer feeds one freshly published event to the subscription.
func (s *Subscription) offer(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offerLocked(ev, true)
}

// offerLocked delivers ev if it is the partition cursor's next expected
// event, first pulling any missed range from the partition log (two
// publishers release the log lock before fanning out, so a later event
// can arrive first — the log is the order authority). fill guards the
// recursion. The cursor advances only when ev settles (enqueued,
// filtered, or the subscription dies) — never before a PolicyBlock
// park — so a fence racing a parked publisher cannot double-deliver
// and the acknowledged watermark cannot pass an event still in a
// publisher's hands. Caller holds s.mu.
func (s *Subscription) offerLocked(ev Event, fill bool) {
	if s.closed || s.err != nil {
		return
	}
	want, watched := s.next[ev.Partition]
	if !watched || ev.Seq < want {
		return // not our partition, or already offered (dup)
	}
	if ev.Seq > want {
		if !fill {
			return
		}
		evs, ok := s.b.logRange(ev.Partition, want, ev.Seq)
		if !ok {
			s.b.truncated.Add(1)
			s.failLocked(ErrLagBehind)
			return
		}
		for _, m := range evs {
			s.offerLocked(m, false)
			if s.closed || s.err != nil {
				return
			}
		}
		if s.next[ev.Partition] != ev.Seq {
			return // a concurrent migration rewound the cursor mid-fill
		}
	}
	if s.match != nil && !s.match(ev) {
		// A non-matching event settles immediately and is acknowledged
		// when nothing is pending below it — otherwise a quiet filter
		// would pin the watermark and every migration would replay the
		// whole horizon.
		s.next[ev.Partition] = ev.Seq + 1
		if s.pend[ev.Partition] == 0 {
			s.acked[ev.Partition] = ev.Seq
		}
		return
	}
	for len(s.queue) >= s.cap {
		switch s.policy {
		case PolicyShedOldest:
			drop := s.queue[0]
			s.queue = s.queue[1:]
			s.pend[drop.Partition]--
			if s.pend[drop.Partition] == 0 {
				s.acked[drop.Partition] = s.next[drop.Partition] - 1
			}
			s.dropped++
			s.b.drops.Add(1)
		case PolicyCancel:
			s.b.cancelled.Add(1)
			s.failLocked(ErrSlowConsumer)
			return
		default: // PolicyBlock: backpressure onto the publisher
			s.space.Wait()
			if s.closed || s.err != nil {
				return
			}
			if s.next[ev.Partition] != ev.Seq {
				// The enqueue ticket moved while we were parked: a
				// migration rewound the cursor (its replay re-offers
				// this event) or a replay settled it already. Either
				// way another path owns the delivery — enqueueing here
				// would duplicate it.
				return
			}
		}
	}
	s.next[ev.Partition] = ev.Seq + 1
	s.queue = append(s.queue, ev)
	s.pend[ev.Partition]++
	select {
	case s.data <- struct{}{}:
	default:
	}
}

// migrate re-attaches one partition under a newer routing generation:
// queued undelivered events are voided (they were deliveries from the
// pre-change attachment) and the cursor rewinds to the acknowledged
// watermark for the caller to replay. Reports whether a replay is
// needed.
func (s *Subscription) migrate(part int, gen uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return false
	}
	cur, watched := s.gens[part]
	if !watched || gen <= cur {
		return false // already attached under this generation (or newer)
	}
	s.gens[part] = gen
	kept := s.queue[:0]
	voided := 0
	for _, ev := range s.queue {
		if ev.Partition == part {
			voided++
			continue
		}
		kept = append(kept, ev)
	}
	s.queue = kept
	s.pend[part] = 0
	s.next[part] = s.acked[part] + 1
	s.b.migrations.Add(1)
	if voided > 0 {
		s.b.voided.Add(uint64(voided))
	}
	// Wake parked publishers unconditionally: the rewind may have
	// invalidated their enqueue tickets, and they should bail (the
	// replay now owns their events) rather than stall the ingest path
	// until the consumer next drains.
	s.space.Broadcast()
	return true
}

// Next blocks until an event is deliverable, the context ends, or the
// subscription terminates. Delivery acknowledges: the event's watermark
// is owned by the consumer the moment Next returns it, which is exactly
// what makes migration-resume duplicate-free. Queued events drain
// before a termination error is reported.
func (s *Subscription) Next(ctx context.Context) (Event, error) {
	for {
		s.mu.Lock()
		if len(s.queue) > 0 {
			ev := s.queue[0]
			s.queue = s.queue[1:]
			s.pend[ev.Partition]--
			if s.pend[ev.Partition] == 0 {
				s.acked[ev.Partition] = s.next[ev.Partition] - 1
			} else {
				s.acked[ev.Partition] = ev.Seq
			}
			s.delivered++
			s.space.Broadcast()
			s.mu.Unlock()
			s.b.delivered.Add(1)
			s.b.lag.Observe(s.b.opt.Clock.Now().Sub(ev.At))
			return ev, nil
		}
		err, closed := s.err, s.closed
		s.mu.Unlock()
		if err != nil {
			return Event{}, err
		}
		if closed {
			return Event{}, ErrClosed
		}
		select {
		case <-ctx.Done():
			return Event{}, ctx.Err()
		case <-s.data:
		}
	}
}

// failLocked terminates the subscription with err and schedules its
// detach (offer is a no-op once err is set, so deferring the fan-out
// removal is safe). Caller holds s.mu.
func (s *Subscription) failLocked(err error) {
	if s.closed || s.err != nil {
		return
	}
	s.err = err
	s.space.Broadcast()
	select {
	case s.data <- struct{}{}:
	default:
	}
	go s.b.detach(s)
}

// Watermarks snapshots the acknowledged per-partition watermarks — the
// resume token: Subscribe with these as Resume continues exactly after
// the last delivered event.
func (s *Subscription) Watermarks() map[int]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]uint64, len(s.acked))
	for p, w := range s.acked {
		out[p] = w
	}
	return out
}

// Delivered reports events handed to the consumer.
func (s *Subscription) Delivered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// Dropped reports events shed under PolicyShedOldest.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Err reports the termination error, if any.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close detaches and terminates the subscription (consumer initiated):
// Next returns ErrClosed once the queue is abandoned, and blocked
// publishers are released.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.space.Broadcast()
	select {
	case s.data <- struct{}{}:
	default:
	}
	s.mu.Unlock()
	s.b.detach(s)
}

// detach removes the subscription from the registry and every log's
// fan-out list.
func (b *Broker) detach(s *Subscription) {
	b.mu.Lock()
	delete(b.subs, s.id)
	b.mu.Unlock()
	for _, p := range s.parts {
		if p < 0 || p >= len(b.logs) {
			continue
		}
		lg := &b.logs[p]
		lg.mu.Lock()
		for i, other := range lg.subs {
			if other == s {
				lg.subs = append(lg.subs[:i], lg.subs[i+1:]...)
				break
			}
		}
		lg.mu.Unlock()
	}
}

// Shutdown terminates every subscription with ErrClosed and refuses new
// ones (engine close).
func (b *Broker) Shutdown() {
	b.mu.Lock()
	b.closed = true
	subs := make([]*Subscription, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.mu.Lock()
		s.failLocked(ErrClosed)
		s.mu.Unlock()
	}
}

// Stats is a point-in-time snapshot of the broker's accounting.
type Stats struct {
	// Active is the number of live subscriptions.
	Active int
	// Published counts events appended across all partition logs.
	Published uint64
	// Delivered counts events handed to consumers.
	Delivered uint64
	// Drops counts events shed under PolicyShedOldest.
	Drops uint64
	// Cancelled counts subscriptions cut by PolicyCancel.
	Cancelled uint64
	// FencedPublishes counts publishes that arrived with a routing
	// generation older than the partition's (a pre-change publisher
	// overtaken by a fence).
	FencedPublishes uint64
	// VoidedDeliveries counts queued events voided at generation fences.
	VoidedDeliveries uint64
	// Migrations counts partition re-attachments across fences.
	Migrations uint64
	// LagTruncations counts resume/replay attempts that fell off the
	// retention horizon.
	LagTruncations uint64
	// Delivery-lag distribution (publish instant → Next return).
	LagMean, LagP50, LagP99 time.Duration
}

// Stats snapshots the broker.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	active := len(b.subs)
	b.mu.Unlock()
	return Stats{
		Active:           active,
		Published:        b.published.Load(),
		Delivered:        b.delivered.Load(),
		Drops:            b.drops.Load(),
		Cancelled:        b.cancelled.Load(),
		FencedPublishes:  b.fencedPubs.Load(),
		VoidedDeliveries: b.voided.Load(),
		Migrations:       b.migrations.Load(),
		LagTruncations:   b.truncated.Load(),
		LagMean:          b.lag.Mean(),
		LagP50:           b.lag.Quantile(0.50),
		LagP99:           b.lag.Quantile(0.99),
	}
}

// Clock exposes the broker's time source (consumers measure lag against
// the same clock that stamped the event).
func (b *Broker) Clock() sched.Clock { return b.opt.Clock }
