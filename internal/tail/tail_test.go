package tail

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"impliance/internal/docmodel"
	"impliance/internal/sched"
)

func doc(n uint64) *docmodel.Document {
	return &docmodel.Document{
		ID:     docmodel.DocID{Origin: 1, Seq: n},
		Source: "test",
		Root:   docmodel.String("body"),
	}
}

func drain(t *testing.T, s *Subscription, n int) []Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out := make([]Event, 0, n)
	for len(out) < n {
		ev, err := s.Next(ctx)
		if err != nil {
			t.Fatalf("Next after %d events: %v", len(out), err)
		}
		out = append(out, ev)
	}
	return out
}

func TestPublishDeliversInWatermarkOrder(t *testing.T) {
	b := NewBroker(Options{Partitions: 4})
	s, err := b.Subscribe(SubOptions{Policy: PolicyBlock})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(1); i <= 20; i++ {
		b.Publish(int(i%4), 0, KindIngest, doc(i))
	}
	evs := drain(t, s, 20)
	last := map[int]uint64{}
	for _, ev := range evs {
		if ev.Seq <= last[ev.Partition] {
			t.Fatalf("partition %d: seq %d after %d", ev.Partition, ev.Seq, last[ev.Partition])
		}
		last[ev.Partition] = ev.Seq
	}
	if got := s.Delivered(); got != 20 {
		t.Fatalf("delivered %d, want 20", got)
	}
}

func TestFilterAdvancesWatermark(t *testing.T) {
	b := NewBroker(Options{Partitions: 1})
	s, err := b.Subscribe(SubOptions{
		Policy: PolicyBlock,
		Match:  func(ev Event) bool { return ev.Doc.ID.Seq%2 == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(1); i <= 10; i++ {
		b.Publish(0, 0, KindIngest, doc(i))
	}
	evs := drain(t, s, 5)
	for _, ev := range evs {
		if ev.Doc.ID.Seq%2 != 0 {
			t.Fatalf("filter leaked doc %v", ev.Doc.ID)
		}
	}
	// The trailing event (seq 10) matched and was delivered, so the
	// acknowledged watermark must sit at the partition head — quiet
	// filters must not pin migrations to the whole horizon.
	if w := s.Watermarks()[0]; w != 10 {
		t.Fatalf("acked watermark %d, want 10", w)
	}
}

func TestResumeFromWatermark(t *testing.T) {
	b := NewBroker(Options{Partitions: 2})
	s, err := b.Subscribe(SubOptions{Policy: PolicyBlock})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		b.Publish(int(i%2), 0, KindIngest, doc(i))
	}
	seen := map[docmodel.DocID]int{}
	for _, ev := range drain(t, s, 6) {
		seen[ev.Doc.ID]++
	}
	marks := s.Watermarks()
	s.Close()

	// More traffic while nobody is subscribed.
	for i := uint64(11); i <= 16; i++ {
		b.Publish(int(i%2), 0, KindIngest, doc(i))
	}
	s2, err := b.Subscribe(SubOptions{Policy: PolicyBlock, Resume: marks})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, ev := range drain(t, s2, 10) {
		seen[ev.Doc.ID]++
	}
	if len(seen) != 16 {
		t.Fatalf("saw %d distinct docs, want 16", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("doc %v delivered %d times", id, n)
		}
	}
}

func TestResumePastRetentionFails(t *testing.T) {
	b := NewBroker(Options{Partitions: 1, Retain: 8})
	for i := uint64(1); i <= 30; i++ {
		b.Publish(0, 0, KindIngest, doc(i))
	}
	if _, err := b.Subscribe(SubOptions{Resume: map[int]uint64{0: 2}}); !errors.Is(err, ErrLagBehind) {
		t.Fatalf("resume past retention: got %v, want ErrLagBehind", err)
	}
}

func TestShedOldestCountsDrops(t *testing.T) {
	b := NewBroker(Options{Partitions: 1})
	s, err := b.Subscribe(SubOptions{Policy: PolicyShedOldest, Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(1); i <= 20; i++ {
		b.Publish(0, 0, KindIngest, doc(i))
	}
	if s.Dropped() != 16 {
		t.Fatalf("dropped %d, want 16", s.Dropped())
	}
	evs := drain(t, s, 4)
	// The survivors are the newest four, in order.
	for i, ev := range evs {
		if want := uint64(17 + i); ev.Seq != want {
			t.Fatalf("survivor %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if st := b.Stats(); st.Drops != 16 {
		t.Fatalf("broker drops %d, want 16", st.Drops)
	}
}

func TestCancelPolicyCutsSlowConsumer(t *testing.T) {
	b := NewBroker(Options{Partitions: 1})
	s, err := b.Subscribe(SubOptions{Policy: PolicyCancel, Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		b.Publish(0, 0, KindIngest, doc(i))
	}
	drain(t, s, 2) // queued before the overflow
	if _, err := s.Next(context.Background()); !errors.Is(err, ErrSlowConsumer) {
		t.Fatalf("got %v, want ErrSlowConsumer", err)
	}
}

func TestBlockPolicyLosesNothing(t *testing.T) {
	b := NewBroker(Options{Partitions: 1})
	s, err := b.Subscribe(SubOptions{Policy: PolicyBlock, Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 50
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); i <= n; i++ {
			b.Publish(0, 0, KindIngest, doc(i)) // blocks on the full queue
		}
	}()
	evs := drain(t, s, n)
	<-done
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// genSource is a settable PartitionGen for fence tests.
type genSource struct{ gen atomic.Uint64 }

func (g *genSource) fn(int) uint64 { return g.gen.Load() }

func TestFenceMigrationNoGapsNoDuplicates(t *testing.T) {
	gens := &genSource{}
	b := NewBroker(Options{Partitions: 1, PartitionGen: gens.fn})
	s, err := b.Subscribe(SubOptions{Policy: PolicyBlock, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(1); i <= 10; i++ {
		b.Publish(0, gens.gen.Load(), KindIngest, doc(i))
	}
	seen := map[uint64]int{}
	for _, ev := range drain(t, s, 4) {
		seen[ev.Seq]++
	}
	// The partition re-routes: events 5..10 are queued but undelivered —
	// the fence voids them and the migration replays from the acked
	// watermark (4).
	gens.gen.Store(7)
	b.FencePartition(0)
	for i := uint64(11); i <= 14; i++ {
		b.Publish(0, gens.gen.Load(), KindIngest, doc(i))
	}
	for _, ev := range drain(t, s, 10) {
		seen[ev.Seq]++
	}
	if len(seen) != 14 {
		t.Fatalf("saw %d distinct seqs, want 14", len(seen))
	}
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d delivered %d times", seq, n)
		}
	}
	st := b.Stats()
	if st.Migrations == 0 {
		t.Fatal("fence did not count a migration")
	}
	if st.VoidedDeliveries == 0 {
		t.Fatal("fence did not void the queued deliveries")
	}
}

// waitParked polls until event seq is in the partition log with the
// subscription's cursor still at seq and the queue full — the state a
// PolicyBlock publisher parks in — then yields a beat so the publisher
// reaches space.Wait().
func waitParked(t *testing.T, b *Broker, s *Subscription, part int, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		published := b.Watermark(part) >= seq
		s.mu.Lock()
		parked := published && s.next[part] == seq && len(s.queue) >= s.cap
		s.mu.Unlock()
		if parked {
			time.Sleep(20 * time.Millisecond)
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("publisher never filled the queue")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFenceWhilePublisherBlockedNoDuplicates fences the partition while
// a PolicyBlock publisher is parked on the full queue: the migration
// rewinds the cursor and replays from the acked watermark, and the
// woken publisher must notice its enqueue ticket moved and bail — not
// enqueue a second copy of an event the replay already owns.
func TestFenceWhilePublisherBlockedNoDuplicates(t *testing.T) {
	gens := &genSource{}
	b := NewBroker(Options{Partitions: 1, PartitionGen: gens.fn})
	s, err := b.Subscribe(SubOptions{Policy: PolicyBlock, Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b.Publish(0, 0, KindIngest, doc(1))
	b.Publish(0, 0, KindIngest, doc(2))
	released := make(chan struct{})
	go func() {
		defer close(released)
		b.Publish(0, 0, KindIngest, doc(3)) // queue full: parks
	}()
	waitParked(t, b, s, 0, 3)
	// Fence with the publisher parked: events 1,2 are voided (acked=0),
	// the cursor rewinds to 1, and the inline replay re-offers 1..3.
	gens.gen.Store(2)
	fenced := make(chan struct{})
	go func() { defer close(fenced); b.FencePartition(0) }()
	seen := map[uint64]int{}
	for _, ev := range drain(t, s, 3) {
		seen[ev.Seq]++
	}
	<-released
	<-fenced
	for seq := uint64(1); seq <= 3; seq++ {
		if seen[seq] != 1 {
			t.Fatalf("seq %d delivered %d times, want exactly once (saw %v)", seq, seen[seq], seen)
		}
	}
	// Nothing further may dribble out of the voided/replayed window.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if ev, err := s.Next(ctx); err == nil {
		t.Fatalf("unexpected extra delivery seq %d", ev.Seq)
	}
	if w := s.Watermarks()[0]; w != 3 {
		t.Fatalf("acked watermark %d, want 3", w)
	}
}

// TestAckedNeverCoversParkedPublisher drains the queue to empty while a
// PolicyBlock publisher is still parked holding an undelivered event:
// the acknowledged watermark (the resume token) must stop short of that
// event, or a snapshot taken at that instant would skip it forever.
func TestAckedNeverCoversParkedPublisher(t *testing.T) {
	b := NewBroker(Options{Partitions: 1})
	s, err := b.Subscribe(SubOptions{Policy: PolicyBlock, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b.Publish(0, 0, KindIngest, doc(1))
	released := make(chan struct{})
	go func() {
		defer close(released)
		b.Publish(0, 0, KindIngest, doc(2)) // queue full: parks
	}()
	waitParked(t, b, s, 0, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ev, err := s.Next(ctx)
	if err != nil || ev.Seq != 1 {
		t.Fatalf("Next = %v, %v; want seq 1", ev, err)
	}
	// pend hit 0 with event 2 still in the parked publisher's hands:
	// the watermark may acknowledge 1, never 2.
	if w := s.Watermarks()[0]; w != 1 {
		t.Fatalf("acked watermark %d with seq 2 undelivered, want 1", w)
	}
	if ev := drain(t, s, 1)[0]; ev.Seq != 2 {
		t.Fatalf("second delivery seq %d, want 2", ev.Seq)
	}
	<-released
	if w := s.Watermarks()[0]; w != 2 {
		t.Fatalf("acked watermark %d after draining, want 2", w)
	}
}

func TestStalePublishGenIsCountedAndStamped(t *testing.T) {
	gens := &genSource{}
	b := NewBroker(Options{Partitions: 1, PartitionGen: gens.fn})
	b.Publish(0, 5, KindIngest, doc(1))
	seq := b.Publish(0, 3, KindIngest, doc(2)) // pre-change publisher
	if seq == 0 {
		t.Fatal("stale-gen publish must still append (the write is history)")
	}
	evs, ok := b.logRange(0, 2, 3)
	if !ok || len(evs) != 1 {
		t.Fatalf("logRange: %v %v", evs, ok)
	}
	if evs[0].Gen != 5 {
		t.Fatalf("stale publish stamped gen %d, want current 5", evs[0].Gen)
	}
	if st := b.Stats(); st.FencedPublishes != 1 {
		t.Fatalf("fenced publishes %d, want 1", st.FencedPublishes)
	}
}

func TestPolicyForClassDefaults(t *testing.T) {
	cases := map[sched.Class]DropPolicy{
		sched.Interactive: PolicyCancel,
		sched.Background:  PolicyShedOldest,
		sched.Durability:  PolicyBlock,
	}
	for class, want := range cases {
		if got := PolicyFor(class); got != want {
			t.Fatalf("PolicyFor(%v) = %v, want %v", class, got, want)
		}
	}
}

func TestShutdownTerminatesSubscribers(t *testing.T) {
	b := NewBroker(Options{Partitions: 1})
	s, err := b.Subscribe(SubOptions{Policy: PolicyBlock})
	if err != nil {
		t.Fatal(err)
	}
	b.Shutdown()
	if _, err := s.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if _, err := b.Subscribe(SubOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe after shutdown: got %v, want ErrClosed", err)
	}
}

// TestConcurrentSubscribeCloseIngest is the -race lifecycle test:
// publishers, subscribers, fences, and closes all interleave freely.
func TestConcurrentSubscribeCloseIngest(t *testing.T) {
	gens := &genSource{}
	b := NewBroker(Options{Partitions: 8, PartitionGen: gens.fn})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.Publish(int(i%8), gens.gen.Load(), KindIngest, doc(i*4+uint64(w)))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			gens.gen.Add(1)
			b.FenceAll()
		}
	}()
	for round := 0; round < 30; round++ {
		s, err := b.Subscribe(SubOptions{Policy: PolicyShedOldest, Buffer: 16})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		for {
			if _, err := s.Next(ctx); err != nil {
				break
			}
		}
		cancel()
		s.Close()
	}
	close(stop)
	wg.Wait()
}
