// Package clustertest consolidates the cluster bootstrap that the
// engine's cluster-level tests share: boot an appliance on either
// transport — the real goroutine fabric or the deterministic simulator
// (fabric/sim) — and, when a simulated test fails, dump the tail of the
// decision trace together with the seed so the failure replays exactly.
//
// The package also hosts the scripted-churn runner (churn.go) whose
// report feeds three consumers: the seed-replay regression corpus
// (testdata/seeds), the ring-invariant property test, and implbench's
// E24 churn scenario.
package clustertest

import (
	"testing"

	"impliance/internal/core"
	"impliance/internal/fabric/sim"
	"impliance/internal/storage/compress"
)

// Options configures Boot. The zero value boots the same topology the
// core package's own tests use (3 data / 2 grid / 2 cluster nodes, 4
// workers) on the real fabric.
type Options struct {
	DataNodes    int // default 3
	GridNodes    int // default 2
	ClusterNodes int // default 2
	Workers      int // default 4

	// Sim boots on the deterministic simulator instead of the real
	// fabric; Seed selects the run. On failure the trace tail is logged
	// with the seed.
	Sim  bool
	Seed int64

	// TraceTail bounds how many trace events a failure dump logs
	// (default 80).
	TraceTail int

	// Mutate edits the assembled config before Open — ablation switches,
	// replication policy, or a caller-owned Transport.
	Mutate []func(*core.Config)
}

// Cluster is a booted appliance plus its transport handle.
type Cluster struct {
	Engine *core.Engine
	Sim    *sim.Cluster // nil when booted on the real fabric
	Seed   int64
}

// Boot opens an appliance for a test and registers cleanup: the engine
// closes when the test ends, and a failed simulated test logs the
// decision-trace tail with the seed that replays it.
func Boot(t testing.TB, opt Options) *Cluster {
	t.Helper()
	if opt.DataNodes == 0 {
		opt.DataNodes = 3
	}
	if opt.GridNodes == 0 {
		opt.GridNodes = 2
	}
	if opt.ClusterNodes == 0 {
		opt.ClusterNodes = 2
	}
	if opt.Workers == 0 {
		opt.Workers = 4
	}
	if opt.TraceTail == 0 {
		opt.TraceTail = 80
	}
	cfg := core.Config{
		DataNodes:    opt.DataNodes,
		GridNodes:    opt.GridNodes,
		ClusterNodes: opt.ClusterNodes,
		Workers:      opt.Workers,
		Codec:        compress.None,
	}
	var sc *sim.Cluster
	if opt.Sim {
		sc = sim.New(sim.Options{Seed: opt.Seed})
		cfg.Transport = sc
		cfg.Clock = sc
	}
	for _, m := range opt.Mutate {
		m(&cfg)
	}
	e, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		e.Close()
		if sc != nil && t.Failed() {
			t.Logf("replay: go test -run '%s' with seed=%d\n%s",
				t.Name(), opt.Seed, sc.Trace().Dump(opt.TraceTail))
		}
	})
	return &Cluster{Engine: e, Sim: sc, Seed: opt.Seed}
}
